#include "workload/trace.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace dynamo::workload {

Trace::Trace(std::vector<TracePoint> points) : points_(std::move(points))
{
    if (!std::is_sorted(points_.begin(), points_.end(),
                        [](const TracePoint& a, const TracePoint& b) {
                            return a.time < b.time;
                        })) {
        throw std::invalid_argument("trace points must be time-ordered");
    }
}

Trace
Trace::Parse(std::istream& in)
{
    std::vector<TracePoint> points;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const auto first = line.find_first_not_of(" \t");
        if (first == std::string::npos || line[first] == '#') continue;
        std::istringstream fields(line);
        TracePoint point;
        if (!(fields >> point.time >> point.value)) {
            throw std::runtime_error("trace parse error at line " +
                                     std::to_string(line_no) + ": " + line);
        }
        points.push_back(point);
    }
    return Trace(std::move(points));
}

Trace
Trace::Load(const std::string& path)
{
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open trace file: " + path);
    return Parse(in);
}

void
Trace::Write(std::ostream& out) const
{
    out << "# dynamo trace: <time_ms> <value>\n";
    for (const TracePoint& p : points_) {
        out << p.time << " " << p.value << "\n";
    }
}

void
Trace::Save(const std::string& path) const
{
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot write trace file: " + path);
    Write(out);
}

SimTime
Trace::Duration() const
{
    if (points_.size() < 2) return 0;
    return points_.back().time - points_.front().time;
}

double
Trace::ValueAt(SimTime time) const
{
    if (points_.empty()) return 0.0;
    if (time <= points_.front().time) return points_.front().value;
    if (time >= points_.back().time) return points_.back().value;
    const auto it = std::lower_bound(
        points_.begin(), points_.end(), time,
        [](const TracePoint& p, SimTime t) { return p.time < t; });
    const TracePoint& b = *it;
    const TracePoint& a = *(it - 1);
    if (b.time == a.time) return b.value;
    const double frac =
        static_cast<double>(time - a.time) / static_cast<double>(b.time - a.time);
    return a.value + frac * (b.value - a.value);
}

double
Trace::MeanValue() const
{
    if (points_.empty()) return 0.0;
    double sum = 0.0;
    for (const TracePoint& p : points_) sum += p.value;
    return sum / static_cast<double>(points_.size());
}

TraceTraffic::TraceTraffic(Trace trace, bool loop)
    : trace_(std::move(trace)), loop_(loop)
{
    const double mean = trace_.MeanValue();
    mean_ = mean > 0.0 ? mean : 1.0;
}

double
TraceTraffic::FactorAt(SimTime now) const
{
    if (trace_.empty()) return 1.0;
    SimTime t = now;
    if (loop_ && trace_.Duration() > 0) {
        const SimTime start = trace_.points().front().time;
        const SimTime duration = trace_.Duration();
        t = start + (now - start) % duration;
        if (t < start) t += duration;
    }
    return trace_.ValueAt(t) / mean_;
}

}  // namespace dynamo::workload
