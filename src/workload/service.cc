#include "workload/service.h"

#include "common/names.h"

namespace dynamo::workload {
namespace {

// Priority groups follow Section III-C3 and the Fig. 15 experiment:
// cache (and the databases behind it) above web/feed/f4; batch Hadoop
// lowest, i.e. first to be capped. QoS tiers mirror the groups: the
// batch tier is sheddable, user-facing stateless tiers degradable,
// and the stateful cache/database tier protected.
constexpr ServiceTraits kTraits[] = {
    /* kWeb       */ {"web", 1, 0.20, QosTier::kDegradable},
    /* kCache     */ {"cache", 2, 0.50, QosTier::kProtected},
    /* kHadoop    */ {"hadoop", 0, 0.05, QosTier::kSheddable},
    /* kDatabase  */ {"database", 2, 0.40, QosTier::kProtected},
    /* kNewsfeed  */ {"newsfeed", 1, 0.20, QosTier::kDegradable},
    /* kF4Storage */ {"f4storage", 1, 0.30, QosTier::kDegradable},
};

constexpr NameEntry<ServiceType> kServiceNames[] = {
    {ServiceType::kWeb, "web"},
    {ServiceType::kCache, "cache"},
    {ServiceType::kHadoop, "hadoop"},
    {ServiceType::kDatabase, "database"},
    {ServiceType::kNewsfeed, "newsfeed"},
    {ServiceType::kF4Storage, "f4storage"},
};

}  // namespace

const ServiceTraits&
TraitsFor(ServiceType service)
{
    return kTraits[static_cast<int>(service)];
}

const char*
ServiceName(ServiceType service)
{
    return TraitsFor(service).name;
}

ServiceType
ParseServiceType(const std::string& name)
{
    return ParseName(kServiceNames, "service type", name);
}

}  // namespace dynamo::workload
