#include "workload/service.h"

#include <stdexcept>

namespace dynamo::workload {
namespace {

// Priority groups follow Section III-C3 and the Fig. 15 experiment:
// cache (and the databases behind it) above web/feed/f4; batch Hadoop
// lowest, i.e. first to be capped.
constexpr ServiceTraits kTraits[] = {
    /* kWeb       */ {"web", 1, 0.20},
    /* kCache     */ {"cache", 2, 0.50},
    /* kHadoop    */ {"hadoop", 0, 0.05},
    /* kDatabase  */ {"database", 2, 0.40},
    /* kNewsfeed  */ {"newsfeed", 1, 0.20},
    /* kF4Storage */ {"f4storage", 1, 0.30},
};

}  // namespace

const ServiceTraits&
TraitsFor(ServiceType service)
{
    return kTraits[static_cast<int>(service)];
}

const char*
ServiceName(ServiceType service)
{
    return TraitsFor(service).name;
}

ServiceType
ParseServiceType(const std::string& name)
{
    for (ServiceType s : kAllServices) {
        if (name == ServiceName(s)) return s;
    }
    throw std::invalid_argument("unknown service type: " + name);
}

}  // namespace dynamo::workload
