/**
 * @file
 * Cluster-level traffic models.
 *
 * Server load has a component common to every server in a cluster —
 * the actual user traffic — and an idiosyncratic per-server component
 * (modeled by LoadProcess). The common component is what makes power
 * variation at SB/MSB level nonzero even after aggregating thousands
 * of servers, and it is the lever the scenario drivers use for the
 * Fig. 11 load test and the Fig. 12 outage/recovery surge.
 */
#ifndef DYNAMO_WORKLOAD_TRAFFIC_H_
#define DYNAMO_WORKLOAD_TRAFFIC_H_

#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace dynamo::workload {

/** A multiplicative traffic factor as a function of simulated time. */
class TrafficModel
{
  public:
    virtual ~TrafficModel() = default;

    /** Traffic multiplier at `now` (1.0 = nominal). */
    virtual double FactorAt(SimTime now) const = 0;
};

/** Always the same factor. */
class ConstantTraffic : public TrafficModel
{
  public:
    explicit ConstantTraffic(double factor = 1.0) : factor_(factor) {}

    double FactorAt(SimTime) const override { return factor_; }

    void set_factor(double factor) { factor_ = factor; }

    double factor() const { return factor_; }

  private:
    double factor_;
};

/**
 * Smooth diurnal curve: factor(t) = 1 + amplitude * sin(...) with the
 * peak at `peak_hour` local time. Repeats every 24 h.
 */
class DiurnalTraffic : public TrafficModel
{
  public:
    DiurnalTraffic(double amplitude, double peak_hour = 20.0)
        : amplitude_(amplitude), peak_hour_(peak_hour)
    {
    }

    double FactorAt(SimTime now) const override;

  private:
    double amplitude_;
    double peak_hour_;
};

/**
 * Weekly modulation on top of the diurnal curve: weekdays run at
 * full traffic, weekends dip. Day 0 of simulated time is a Monday.
 */
class WeeklyTraffic : public TrafficModel
{
  public:
    /** @param weekend_factor multiplier applied on days 5 and 6. */
    explicit WeeklyTraffic(double weekend_factor = 0.85)
        : weekend_factor_(weekend_factor)
    {
    }

    double FactorAt(SimTime now) const override;

  private:
    double weekend_factor_;
};

/**
 * Piecewise-linear schedule through (time, factor) breakpoints;
 * clamped to the first/last factor outside the covered range. Used to
 * script load tests and outage/recovery scenarios.
 */
class PiecewiseTraffic : public TrafficModel
{
  public:
    /** Append a breakpoint; times must be added in increasing order. */
    void AddPoint(SimTime time, double factor);

    /**
     * Append one step of a square wave: ramp from `low` to `high` over
     * `edge_ms` starting at `rise`, hold `high`, ramp back down over
     * `edge_ms` starting at `fall`. The interpolation is linear, so a
     * near-vertical edge is two breakpoints `edge_ms` apart — the
     * synchronized on/off load of an AI-training job (compute phase
     * vs. all-reduce stall), scripted deterministically.
     */
    void AddSquarePulse(SimTime rise, SimTime fall, double low, double high,
                        SimTime edge_ms = 1000);

    double FactorAt(SimTime now) const override;

    std::size_t size() const { return points_.size(); }

  private:
    struct Point
    {
        SimTime time;
        double factor;
    };

    std::vector<Point> points_;
};

/**
 * Mean-reverting stochastic traffic factor shared by a group of
 * servers (e.g. one rack or row running the same service): models
 * correlated dynamics like job phases or request-mix shifts that move
 * a whole group together and therefore survive aggregation. Factor is
 * 1 + OU(sigma, tau), floored at `min_factor`.
 *
 * Queries must use non-decreasing times (same-time re-queries are
 * served from cache), matching how the simulator advances.
 */
class GroupTraffic : public TrafficModel
{
  public:
    GroupTraffic(double sigma, double tau_s, Rng rng, double min_factor = 0.2)
        : sigma_(sigma), tau_s_(tau_s), min_factor_(min_factor), rng_(rng)
    {
    }

    double FactorAt(SimTime now) const override;

  private:
    double sigma_;
    double tau_s_;
    double min_factor_;
    mutable Rng rng_;
    mutable double state_ = 0.0;
    mutable SimTime last_time_ = 0;
    mutable bool started_ = false;
};

/** Product of component models (non-owning; caller keeps them alive). */
class CompositeTraffic : public TrafficModel
{
  public:
    /** Add one multiplicative component. */
    void Add(const TrafficModel* model) { parts_.push_back(model); }

    double FactorAt(SimTime now) const override
    {
        double f = 1.0;
        for (const TrafficModel* part : parts_) f *= part->FactorAt(now);
        return f;
    }

  private:
    std::vector<const TrafficModel*> parts_;
};

}  // namespace dynamo::workload

#endif  // DYNAMO_WORKLOAD_TRAFFIC_H_
