#include "workload/perf_model.h"

#include <algorithm>

namespace dynamo::workload {

PerfModelParams
PerfModelParams::For(ServiceType service)
{
    PerfModelParams p;
    switch (service) {
      case ServiceType::kWeb:
        // Matches the Fig. 13 control-group experiment directly.
        p = {20.0, 0.5, 4.0};
        break;
      case ServiceType::kCache:
        // Memory-bound: modest latency sensitivity to frequency.
        p = {25.0, 0.4, 2.5};
        break;
      case ServiceType::kHadoop:
        // CPU-bound map-reduce: throughput tracks frequency closely.
        p = {15.0, 0.8, 4.5};
        break;
      case ServiceType::kDatabase:
        p = {20.0, 0.6, 3.5};
        break;
      case ServiceType::kNewsfeed:
        p = {20.0, 0.6, 4.0};
        break;
      case ServiceType::kF4Storage:
        // IO-bound: frequency barely matters until deep cuts.
        p = {30.0, 0.3, 2.0};
        break;
    }
    return p;
}

double
SlowdownPercent(const PerfModelParams& params, double power_reduction_pct)
{
    if (power_reduction_pct <= 0.0) return 0.0;
    if (power_reduction_pct <= params.knee_reduction_pct) {
        return params.slope_low * power_reduction_pct;
    }
    return params.slope_low * params.knee_reduction_pct +
           params.slope_high * (power_reduction_pct - params.knee_reduction_pct);
}

double
ThrottleFactor(const PerfModelParams& params, double power_reduction_frac)
{
    const double s =
        SlowdownPercent(params, std::max(0.0, power_reduction_frac) * 100.0) / 100.0;
    return 1.0 / (1.0 + s);
}

}  // namespace dynamo::workload
