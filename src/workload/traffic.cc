#include "workload/traffic.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace dynamo::workload {

double
DiurnalTraffic::FactorAt(SimTime now) const
{
    const double hours = ToSeconds(now) / 3600.0;
    const double phase = 2.0 * M_PI * (hours - peak_hour_) / 24.0;
    return 1.0 + amplitude_ * std::cos(phase);
}

double
WeeklyTraffic::FactorAt(SimTime now) const
{
    const auto day =
        static_cast<int>((ToSeconds(now) / 86400.0)) % 7;
    return (day == 5 || day == 6) ? weekend_factor_ : 1.0;
}

double
GroupTraffic::FactorAt(SimTime now) const
{
    if (!started_) {
        started_ = true;
        last_time_ = now;
        state_ = rng_.Normal(0.0, sigma_);
    } else if (now > last_time_) {
        const double dt_s = ToSeconds(now - last_time_);
        last_time_ = now;
        const double decay = std::exp(-dt_s / tau_s_);
        const double noise_std =
            sigma_ * std::sqrt(std::max(0.0, 1.0 - decay * decay));
        state_ = state_ * decay + rng_.Normal(0.0, noise_std);
    }
    return std::max(min_factor_, 1.0 + state_);
}

void
PiecewiseTraffic::AddPoint(SimTime time, double factor)
{
    // Scenario scripting is user-facing configuration: fail loudly in
    // every build type rather than silently mis-interpolating.
    if (!points_.empty() && time < points_.back().time) {
        throw std::invalid_argument(
            "PiecewiseTraffic breakpoints must be added in time order");
    }
    points_.push_back(Point{time, factor});
}

void
PiecewiseTraffic::AddSquarePulse(SimTime rise, SimTime fall, double low,
                                 double high, SimTime edge_ms)
{
    if (fall < rise + edge_ms) {
        throw std::invalid_argument(
            "PiecewiseTraffic square pulse must hold at least one edge");
    }
    AddPoint(rise, low);
    AddPoint(rise + edge_ms, high);
    AddPoint(fall, high);
    AddPoint(fall + edge_ms, low);
}

double
PiecewiseTraffic::FactorAt(SimTime now) const
{
    if (points_.empty()) return 1.0;
    if (now <= points_.front().time) return points_.front().factor;
    if (now >= points_.back().time) return points_.back().factor;
    for (std::size_t i = 1; i < points_.size(); ++i) {
        if (now <= points_[i].time) {
            const Point& a = points_[i - 1];
            const Point& b = points_[i];
            if (b.time == a.time) return b.factor;
            const double frac = static_cast<double>(now - a.time) /
                                static_cast<double>(b.time - a.time);
            return a.factor + frac * (b.factor - a.factor);
        }
    }
    return points_.back().factor;
}

}  // namespace dynamo::workload
