/**
 * @file
 * Facebook-style service taxonomy.
 *
 * Section II-B of the paper characterizes six production services
 * (web, cache, Hadoop, MySQL database, news feed, f4/photo storage);
 * Section III-C3 groups services into priority groups, where a higher
 * priority group is capped later and each group carries an SLA on the
 * lowest allowable power cap. Cache sits above web and news feed
 * because a few capped cache servers can degrade many users.
 */
#ifndef DYNAMO_WORKLOAD_SERVICE_H_
#define DYNAMO_WORKLOAD_SERVICE_H_

#include <array>
#include <string>

namespace dynamo::workload {

/** The service running on a server. */
enum class ServiceType {
    kWeb,
    kCache,
    kHadoop,
    kDatabase,
    kNewsfeed,
    kF4Storage,
};

/** All service types, for iteration in tests and benches. */
inline constexpr std::array<ServiceType, 6> kAllServices = {
    ServiceType::kWeb,      ServiceType::kCache,    ServiceType::kHadoop,
    ServiceType::kDatabase, ServiceType::kNewsfeed, ServiceType::kF4Storage,
};

/**
 * Multi-tenant QoS tier (the nvPAX-style shed-before-cap ordering):
 * sheddable tenants give up load before any protected tenant is
 * power-capped; degradable tenants sit between — cappable early, but
 * never shed wholesale while protected tiers still have headroom.
 */
enum class QosTier {
    kSheddable,
    kDegradable,
    kProtected,
};

/** Static, capping-relevant properties of a service. */
struct ServiceTraits
{
    const char* name;

    /** Priority group: lower groups are capped first (0 = first). */
    int priority_group;

    /**
     * SLA floor for the power cap, as a fraction of the server's
     * dynamic power span above idle. 0.0 allows capping all the way to
     * idle power; 0.5 protects half the dynamic range.
     */
    double sla_floor_frac;

    /** Tenant tier for the shed-before-cap ordering. */
    QosTier qos_tier;
};

/** Traits table lookup. */
const ServiceTraits& TraitsFor(ServiceType service);

/** Short name ("web", "cache", ...). */
const char* ServiceName(ServiceType service);

/** Inverse of ServiceName; throws std::invalid_argument on unknown names. */
ServiceType ParseServiceType(const std::string& name);

}  // namespace dynamo::workload

#endif  // DYNAMO_WORKLOAD_SERVICE_H_
