/**
 * @file
 * Traffic trace recording and replay.
 *
 * The paper's design space was derived from recorded fleet traces
 * (3 s power samples over six months). This module provides the
 * equivalent plumbing for the simulator: record any time series to a
 * simple text format ("<time_ms> <value>" per line, '#' comments),
 * load it back, and replay it as a TrafficModel so recorded incidents
 * (or externally supplied traces) can drive synthetic fleets
 * deterministically.
 */
#ifndef DYNAMO_WORKLOAD_TRACE_H_
#define DYNAMO_WORKLOAD_TRACE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/units.h"
#include "workload/traffic.h"

namespace dynamo::workload {

/** One recorded (time, value) pair. */
struct TracePoint
{
    SimTime time = 0;
    double value = 0.0;
};

/** A loaded trace: time-ordered points plus replay options. */
class Trace
{
  public:
    Trace() = default;
    explicit Trace(std::vector<TracePoint> points);

    /** Parse the text format from a stream; throws on malformed input. */
    static Trace Parse(std::istream& in);

    /** Load from a file; throws std::runtime_error if unreadable. */
    static Trace Load(const std::string& path);

    /** Serialize to the text format. */
    void Write(std::ostream& out) const;

    /** Save to a file; throws std::runtime_error on failure. */
    void Save(const std::string& path) const;

    bool empty() const { return points_.empty(); }
    std::size_t size() const { return points_.size(); }
    const std::vector<TracePoint>& points() const { return points_; }

    /** Duration covered (last minus first time). */
    SimTime Duration() const;

    /**
     * Value at `time`: linear interpolation between points, clamped to
     * the end values outside the covered range.
     */
    double ValueAt(SimTime time) const;

    /** Mean of point values; 0 if empty. */
    double MeanValue() const;

  private:
    std::vector<TracePoint> points_;
};

/**
 * Replays a trace as a multiplicative traffic factor.
 *
 * The trace's values are normalized by its mean so the replay composes
 * naturally with a LoadProcess's base utilization; with `loop` set the
 * trace repeats past its end.
 */
class TraceTraffic : public TrafficModel
{
  public:
    explicit TraceTraffic(Trace trace, bool loop = false);

    double FactorAt(SimTime now) const override;

    const Trace& trace() const { return trace_; }

  private:
    Trace trace_;
    bool loop_;
    double mean_ = 1.0;
};

}  // namespace dynamo::workload

#endif  // DYNAMO_WORKLOAD_TRACE_H_
