/**
 * @file
 * Performance impact of power capping.
 *
 * Fig. 13 of the paper measures web-server latency slowdown against
 * the power reduction applied by capping: performance degrades slowly
 * within a ~20 % power reduction (there is slack — lower frequency,
 * same work) and much faster beyond it, where CPU frequency becomes
 * the bottleneck. We model that as a two-slope piecewise-linear curve
 * per service and derive a throughput throttle factor from it.
 */
#ifndef DYNAMO_WORKLOAD_PERF_MODEL_H_
#define DYNAMO_WORKLOAD_PERF_MODEL_H_

#include "workload/service.h"

namespace dynamo::workload {

/** Two-slope slowdown curve parameters. */
struct PerfModelParams
{
    /** Power-reduction percentage where the slope steepens. */
    double knee_reduction_pct = 20.0;

    /** Slowdown %-points per reduction %-point below the knee. */
    double slope_low = 0.5;

    /** Slowdown %-points per reduction %-point above the knee. */
    double slope_high = 4.0;

    /** Per-service curves; CPU-bound services steepen harder. */
    static PerfModelParams For(ServiceType service);
};

/**
 * Latency slowdown in percent for a given power reduction in percent
 * (Fig. 13's axes). 0 when reduction <= 0.
 */
double SlowdownPercent(const PerfModelParams& params, double power_reduction_pct);

/**
 * Throughput multiplier in (0, 1] corresponding to a fractional power
 * reduction: throttle = 1 / (1 + slowdown).
 */
double ThrottleFactor(const PerfModelParams& params, double power_reduction_frac);

}  // namespace dynamo::workload

#endif  // DYNAMO_WORKLOAD_PERF_MODEL_H_
