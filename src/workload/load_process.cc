#include "workload/load_process.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dynamo::workload {

LoadProcessParams
LoadProcessParams::For(ServiceType service)
{
    // Calibrated against the Fig. 6 per-service 60 s power-variation
    // distributions (see tests/workload_variation_test.cc for the
    // ordering checks and bench_fig06 for the measured p50/p99).
    LoadProcessParams p;
    switch (service) {
      case ServiceType::kWeb:
        p.base_util = 0.45;
        p.ou_sigma = 0.38;
        p.ou_tau_s = 25.0;
        p.spike_rate_per_hour = 2.0;
        p.spike_util = 0.10;
        p.spike_shape = 2.5;
        p.spike_dur_s = 30.0;
        break;
      case ServiceType::kCache:
        p.base_util = 0.40;
        p.ou_sigma = 0.105;
        p.ou_tau_s = 40.0;
        p.spike_rate_per_hour = 1.0;
        p.spike_util = 0.10;
        p.spike_shape = 2.5;
        p.spike_dur_s = 30.0;
        break;
      case ServiceType::kHadoop:
        p.base_util = 0.60;
        p.ou_sigma = 0.135;
        p.ou_tau_s = 90.0;
        p.spike_rate_per_hour = 4.0;
        p.spike_util = 0.12;
        p.spike_shape = 2.2;
        p.spike_dur_s = 90.0;
        break;
      case ServiceType::kDatabase:
        p.base_util = 0.35;
        p.ou_sigma = 0.21;
        p.ou_tau_s = 45.0;
        p.spike_rate_per_hour = 3.0;
        p.spike_util = 0.12;
        p.spike_shape = 2.5;
        p.spike_dur_s = 60.0;
        break;
      case ServiceType::kNewsfeed:
        p.base_util = 0.50;
        p.ou_sigma = 0.46;
        p.ou_tau_s = 30.0;
        p.spike_rate_per_hour = 4.0;
        p.spike_util = 0.25;
        p.spike_shape = 2.0;
        p.spike_dur_s = 45.0;
        break;
      case ServiceType::kF4Storage:
        p.base_util = 0.22;
        p.ou_sigma = 0.13;
        p.ou_tau_s = 60.0;
        p.spike_rate_per_hour = 0.8;
        p.spike_util = 0.55;
        p.spike_shape = 1.75;
        p.spike_dur_s = 50.0;
        break;
    }
    return p;
}

LoadProcess::LoadProcess(LoadProcessParams params, Rng rng,
                         const TrafficModel* traffic)
    : params_(params), rng_(rng), traffic_(traffic)
{
}

void
LoadProcess::AdvanceTo(SimTime now)
{
    if (!started_) {
        started_ = true;
        last_time_ = now;
        // Start the OU fluctuation in its stationary distribution and
        // draw the first burst arrival.
        ou_state_ = rng_.Normal(0.0, params_.ou_sigma);
        const double gap_s =
            rng_.Exponential(params_.spike_rate_per_hour / 3600.0);
        spike_start_ = now + Seconds(gap_s);
        spike_end_ = spike_start_;
        spike_mag_ = 0.0;
        return;
    }
    if (now <= last_time_) return;

    const double dt_s = ToSeconds(now - last_time_);
    last_time_ = now;

    // Exact OU step: valid for any dt, which is what makes lazy
    // advancement sound.
    const double decay = std::exp(-dt_s / params_.ou_tau_s);
    const double noise_std =
        params_.ou_sigma * std::sqrt(std::max(0.0, 1.0 - decay * decay));
    ou_state_ = ou_state_ * decay + rng_.Normal(0.0, noise_std);

    // Roll the burst process forward past `now`. Bursts that started
    // and ended entirely between two reads are skipped, just as a 3 s
    // sampler misses sub-interval bursts in production.
    while (now >= spike_end_) {
        if (params_.spike_rate_per_hour <= 0.0) {
            spike_start_ = spike_end_ = std::numeric_limits<SimTime>::max();
            spike_mag_ = 0.0;
            break;
        }
        const double gap_s =
            rng_.Exponential(params_.spike_rate_per_hour / 3600.0);
        const double dur_s = rng_.Exponential(1.0 / params_.spike_dur_s);
        spike_start_ = spike_end_ + Seconds(gap_s);
        spike_end_ = spike_start_ + Seconds(dur_s);
        spike_mag_ = rng_.Pareto(params_.spike_util, params_.spike_shape);
    }
}

double
LoadProcess::UtilAt(SimTime now)
{
    AdvanceTo(now);
    double traffic_factor = traffic_ ? traffic_->FactorAt(now) : 1.0;
    traffic_factor *= balancer_factor_ * shed_factor_;
    double util = params_.base_util * traffic_factor * (1.0 + ou_state_);
    if (now >= spike_start_ && now < spike_end_) util += spike_mag_;
    return std::clamp(util, params_.min_util, 1.0);
}

void
LoadProcess::Snapshot(Archive& ar) const
{
    ar.F64(balancer_factor_);
    ar.F64(shed_factor_);
    ar.F64(ou_state_);
    ar.I64(last_time_);
    ar.Bool(started_);
    ar.I64(spike_start_);
    ar.I64(spike_end_);
    ar.F64(spike_mag_);
    for (const std::uint64_t w : rng_.state()) ar.U64(w);
    ar.U64(rng_.draws());
}

}  // namespace dynamo::workload
