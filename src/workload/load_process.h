/**
 * @file
 * Per-server stochastic utilization processes.
 *
 * Each simulated server's CPU utilization is
 *
 *     util(t) = clamp( base * traffic(t) * balancer(t) * (1 + X_t)
 *               + spike(t), min_util, 1 )
 *
 * where X_t is an Ornstein-Uhlenbeck fluctuation (exact discretization,
 * so the process can be advanced lazily by arbitrary steps) and
 * spike(t) is a compound-Poisson burst process with Pareto magnitudes
 * and exponential durations. The per-service parameterization is
 * calibrated so the 60 s power-variation distributions reproduce the
 * ordering and rough magnitudes of Fig. 6: f4 has the lowest median
 * but the heaviest tail; newsfeed and web have high medians; cache is
 * quiet.
 */
#ifndef DYNAMO_WORKLOAD_LOAD_PROCESS_H_
#define DYNAMO_WORKLOAD_LOAD_PROCESS_H_

#include "common/archive.h"
#include "common/rng.h"
#include "common/units.h"
#include "workload/service.h"
#include "workload/traffic.h"

namespace dynamo::workload {

/** Parameters of one utilization process. */
struct LoadProcessParams
{
    /** Mean utilization at nominal traffic. */
    double base_util = 0.40;

    /** Stationary standard deviation of the OU fluctuation (relative). */
    double ou_sigma = 0.15;

    /** OU mean-reversion time constant, seconds. */
    double ou_tau_s = 60.0;

    /** Burst arrivals per hour. */
    double spike_rate_per_hour = 1.0;

    /** Pareto scale of burst magnitude, in utilization units. */
    double spike_util = 0.15;

    /** Pareto shape of burst magnitude (smaller = heavier tail). */
    double spike_shape = 2.0;

    /** Mean burst duration, seconds (exponential). */
    double spike_dur_s = 60.0;

    /** Utilization never drops below this. */
    double min_util = 0.02;

    /** Calibrated parameters per service (Fig. 6 reproduction). */
    static LoadProcessParams For(ServiceType service);
};

/**
 * One server's utilization trajectory.
 *
 * Reads must be at non-decreasing times; the process advances its
 * internal state lazily, so servers need no periodic events of their
 * own and 30 K-server characterization sweeps stay cheap.
 */
class LoadProcess
{
  public:
    /**
     * @param params   Process parameters.
     * @param rng      Private random stream for this server.
     * @param traffic  Optional shared traffic model (not owned).
     */
    LoadProcess(LoadProcessParams params, Rng rng,
                const TrafficModel* traffic = nullptr);

    /** Demanded utilization in [min_util, 1] at time `now` (>= last read). */
    double UtilAt(SimTime now);

    /**
     * External modulation, e.g. the load balancer steering requests
     * away from capped servers (Section IV-A) or a scenario dropping
     * load. Multiplies the traffic factor.
     */
    void set_balancer_factor(double f) { balancer_factor_ = f; }

    double balancer_factor() const { return balancer_factor_; }

    /**
     * Emergency-shed multiplier (see core::LoadShedder): kept separate
     * from the balancer factor so controller-initiated shedding
     * composes with scenario-driven balancing instead of overwriting
     * it. 1.0 = no shedding.
     */
    void set_shed_factor(double f) { shed_factor_ = f; }

    double shed_factor() const { return shed_factor_; }

    const LoadProcessParams& params() const { return params_; }

    /**
     * Serialize the process position — OU state, burst schedule,
     * modulation factors, and the private RNG stream — so replay
     * checkpoints pin the exact utilization trajectory.
     */
    void Snapshot(Archive& ar) const;

  private:
    void AdvanceTo(SimTime now);

    LoadProcessParams params_;
    Rng rng_;
    const TrafficModel* traffic_;
    double balancer_factor_ = 1.0;
    double shed_factor_ = 1.0;

    double ou_state_ = 0.0;
    SimTime last_time_ = 0;
    bool started_ = false;

    // Burst process state: the next burst begins at `spike_start_` and
    // ends at `spike_end_` with additive magnitude `spike_mag_`.
    SimTime spike_start_ = 0;
    SimTime spike_end_ = 0;
    double spike_mag_ = 0.0;
};

}  // namespace dynamo::workload

#endif  // DYNAMO_WORKLOAD_LOAD_PROCESS_H_
