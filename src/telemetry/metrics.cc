#include "telemetry/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace dynamo::telemetry {

const char*
MetricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::kCounter: return "counter";
      case MetricKind::kGauge: return "gauge";
      case MetricKind::kHistogram: return "histogram";
    }
    return "?";
}

std::vector<double>
Histogram::DefaultBounds()
{
    std::vector<double> bounds;
    bounds.reserve(14);
    double b = 1.0;
    for (int i = 0; i < 14; ++i) {
        bounds.push_back(b);
        b *= 2.0;
    }
    return bounds;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds))
{
    if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
        throw std::invalid_argument("Histogram bounds must be sorted");
    }
    counts_.assign(bounds_.size() + 1, 0);
}

void
Histogram::Observe(double value)
{
    std::size_t i = 0;
    while (i < bounds_.size() && value > bounds_[i]) ++i;
    ++counts_[i];
    ++count_;
    sum_ += value;
    if (count_ == 1) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
}

double
Histogram::Quantile(double q) const
{
    if (count_ == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double rank = q * static_cast<double>(count_);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0) continue;
        const double lo = static_cast<double>(seen);
        seen += counts_[i];
        if (static_cast<double>(seen) < rank) continue;

        // Interpolate within [bucket_lo, bucket_hi], clamped to the
        // recorded min/max so sparse tails don't overshoot.
        double bucket_lo = i == 0 ? min_ : bounds_[i - 1];
        double bucket_hi = i < bounds_.size() ? bounds_[i] : max_;
        bucket_lo = std::max(bucket_lo, min_);
        bucket_hi = std::min(bucket_hi, max_);
        if (bucket_hi <= bucket_lo) return bucket_hi;
        const double within =
            (rank - lo) / static_cast<double>(counts_[i]);
        return bucket_lo + within * (bucket_hi - bucket_lo);
    }
    return max_;
}

MetricId
MetricsRegistry::Intern(const std::string& name, MetricKind kind)
{
    const auto it = by_name_.find(name);
    if (it != by_name_.end()) {
        const Entry& entry = entries_[it->second];
        if (entry.kind != kind) {
            throw std::invalid_argument(
                "metric '" + name + "' already registered as " +
                MetricKindName(entry.kind) + ", requested " +
                MetricKindName(kind));
        }
        return it->second;
    }
    const MetricId id = static_cast<MetricId>(entries_.size());
    Entry entry;
    entry.name = name;
    entry.kind = kind;
    entries_.push_back(std::move(entry));
    by_name_.emplace(name, id);
    return id;
}

Counter*
MetricsRegistry::GetCounter(const std::string& name)
{
    const MetricId id = Intern(name, MetricKind::kCounter);
    Entry& entry = entries_[id];
    if (entry.counter == nullptr) {
        counters_.emplace_back();
        entry.counter = &counters_.back();
    }
    return entry.counter;
}

Gauge*
MetricsRegistry::GetGauge(const std::string& name)
{
    const MetricId id = Intern(name, MetricKind::kGauge);
    Entry& entry = entries_[id];
    if (entry.gauge == nullptr) {
        gauges_.emplace_back();
        entry.gauge = &gauges_.back();
    }
    return entry.gauge;
}

Histogram*
MetricsRegistry::GetHistogram(const std::string& name,
                              std::vector<double> bounds)
{
    const MetricId id = Intern(name, MetricKind::kHistogram);
    Entry& entry = entries_[id];
    if (entry.histogram == nullptr) {
        histograms_.emplace_back(std::move(bounds));
        entry.histogram = &histograms_.back();
    }
    return entry.histogram;
}

MetricId
MetricsRegistry::Find(const std::string& name) const
{
    const auto it = by_name_.find(name);
    return it == by_name_.end() ? kInvalidMetric : it->second;
}

}  // namespace dynamo::telemetry
