/**
 * @file
 * Low-overhead metrics registry.
 *
 * Dynamo's monitoring half needs attributable counters on the control
 * plane's hot paths — transport sends/failures, controller cycles,
 * capping cut sizes — without perturbing the paths it measures. The
 * registry interns metric names into dense 32-bit ids (mirroring
 * rpc/endpoint.h) and hands out *stable handles*: a hot path resolves
 * its metric once at attach time and then increments through a plain
 * pointer — no hashing, no lookup, no allocation per event.
 *
 * Three instrument kinds:
 *   - Counter:   monotonically increasing u64 (events, failures);
 *   - Gauge:     last-written double (queue depths, kernel stats);
 *   - Histogram: fixed-bucket distribution with recorded sum/min/max
 *     and interpolated quantiles (p50/p99 of cycle latency, cut sizes).
 *
 * Naming scheme (see DESIGN.md §8): dot-separated `<subsystem>.<what>`
 * with unit suffixes (`_us`, `_w`) — e.g. `rpc.calls`, `leaf.cycle_us`,
 * `leaf.cut_w`. Names are fleet-wide (not per-endpoint) so cardinality
 * stays O(subsystems), not O(servers).
 */
#ifndef DYNAMO_TELEMETRY_METRICS_H_
#define DYNAMO_TELEMETRY_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

namespace dynamo::telemetry {

/** Dense interned metric identity (index into the registry's tables). */
using MetricId = std::uint32_t;

/** Sentinel for "no such metric". */
inline constexpr MetricId kInvalidMetric = 0xffffffffu;

/** Instrument kind. */
enum class MetricKind { kCounter, kGauge, kHistogram };

/** Readable name for a metric kind ("counter", "gauge", "histogram"). */
const char* MetricKindName(MetricKind kind);

/** Monotonic event counter. */
class Counter
{
  public:
    void Inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void Reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Last-written value. */
class Gauge
{
  public:
    void Set(double value) { value_ = value; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/**
 * Fixed-bucket histogram.
 *
 * Bucket i counts observations in (bounds[i-1], bounds[i]]; a final
 * overflow bucket catches everything above the last bound. Bounds are
 * fixed at creation, so Observe is a branchless-ish linear scan over a
 * small array (default 14 exponential buckets) — no allocation, no
 * re-binning.
 */
class Histogram
{
  public:
    /** Exponential default bounds: 1, 2, 4, ... 8192 (14 buckets). */
    static std::vector<double> DefaultBounds();

    explicit Histogram(std::vector<double> bounds = DefaultBounds());

    void Observe(double value);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ > 0 ? min_ : 0.0; }
    double max() const { return count_ > 0 ? max_ : 0.0; }
    double mean() const
    {
        return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
    }

    /**
     * Quantile estimate for q in [0, 1] by linear interpolation inside
     * the containing bucket (the overflow bucket reports the recorded
     * max). 0 when empty.
     */
    double Quantile(double q) const;

    double p50() const { return Quantile(0.50); }
    double p99() const { return Quantile(0.99); }

    const std::vector<double>& bounds() const { return bounds_; }

    /** Per-bucket counts; size() == bounds().size() + 1 (overflow last). */
    const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

  private:
    std::vector<double> bounds_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * The registry: name -> instrument, with stable handle pointers.
 *
 * Get* interns the name on first use and returns the same handle ever
 * after (instruments live in deques, so handles stay valid as the
 * registry grows). Requesting an existing name with a different kind
 * throws std::invalid_argument — one name, one instrument.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /** Counter handle for `name` (created on first use). */
    Counter* GetCounter(const std::string& name);

    /** Gauge handle for `name` (created on first use). */
    Gauge* GetGauge(const std::string& name);

    /**
     * Histogram handle for `name`. `bounds` applies only on creation;
     * later calls return the existing instrument regardless of bounds.
     */
    Histogram* GetHistogram(const std::string& name,
                            std::vector<double> bounds = Histogram::DefaultBounds());

    /** Id for `name`, or kInvalidMetric if never registered. */
    MetricId Find(const std::string& name) const;

    std::size_t size() const { return entries_.size(); }

    /** One registered instrument, for iteration/export. */
    struct Entry
    {
        std::string name;
        MetricKind kind = MetricKind::kCounter;
        Counter* counter = nullptr;
        Gauge* gauge = nullptr;
        Histogram* histogram = nullptr;
    };

    /** All instruments in registration (id) order. */
    const std::deque<Entry>& entries() const { return entries_; }

  private:
    MetricId Intern(const std::string& name, MetricKind kind);

    std::unordered_map<std::string, MetricId> by_name_;
    std::deque<Entry> entries_;
    std::deque<Counter> counters_;
    std::deque<Gauge> gauges_;
    std::deque<Histogram> histograms_;
};

}  // namespace dynamo::telemetry

#endif  // DYNAMO_TELEMETRY_METRICS_H_
