/**
 * @file
 * Structured log of control-plane events.
 *
 * Every consequential Dynamo action — capping triggered, caps updated,
 * uncapping, aggregation declared invalid, failover, breaker trip —
 * is recorded here so experiments can count and time them (e.g.
 * Table I's "18 potential outages prevented", Fig. 14's "capping was
 * triggered seven times").
 *
 * The log is a bounded ring: long soak runs evict the oldest events
 * instead of growing without bound. Per-kind counters are maintained
 * on Record, so `CountOf` is O(1) and stays correct (it reports the
 * lifetime total, including evicted events) no matter how much the
 * ring has turned over.
 */
#ifndef DYNAMO_TELEMETRY_EVENT_LOG_H_
#define DYNAMO_TELEMETRY_EVENT_LOG_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/units.h"

namespace dynamo::telemetry {

/** Kind of control-plane event. */
enum class EventKind {
    kCapStart,      ///< Three-band capping newly triggered.
    kCapUpdate,     ///< Additional cut while already capping.
    kUncap,         ///< Uncapping triggered.
    kAlarm,         ///< Aggregation invalid / human intervention needed.
    kBreakerTrip,   ///< A physical breaker tripped (an outage).
    kFailover,      ///< Backup controller took over.
    kAgentRestart,  ///< Watchdog restarted a crashed agent.
    kLoadShed,      ///< Emergency traffic shed requested (caps exhausted).
    kDegradedEnter, ///< Controller entered degraded mode (pulls unreliable).
    kDegradedExit,  ///< Controller recovered to normal operation.
    kCapHold,       ///< Cap release frozen while not in normal health.
    kChaosFault,    ///< Chaos campaign injected or cleared a fault.
    kReconfig,      ///< A fleet reconfiguration transaction committed.
};

/** Number of EventKind values (for per-kind counter arrays). */
inline constexpr std::size_t kEventKindCount = 13;

/** Readable name for an event kind. */
const char* EventKindName(EventKind kind);

/** One logged event. */
struct Event
{
    SimTime time = 0;
    EventKind kind = EventKind::kAlarm;
    std::string source;       ///< Controller / device name.
    double aggregated_power = 0.0;
    double limit = 0.0;
    int servers_affected = 0;
    std::string detail;
};

/** Bounded event log with simple query helpers. */
class EventLog
{
  public:
    /** Default ring capacity; plenty for any single experiment. */
    static constexpr std::size_t kDefaultCapacity = 8192;

    explicit EventLog(std::size_t capacity = kDefaultCapacity);

    /** Record one event (evicts the oldest when the ring is full). */
    void Record(Event event);

    /** Retained events, oldest first. */
    const std::deque<Event>& events() const { return events_; }

    /**
     * Lifetime number of events of the given kind, including events
     * already evicted from the ring. O(1).
     */
    std::size_t CountOf(EventKind kind) const;

    /** Retained events of one kind, in time order. */
    std::vector<Event> OfKind(EventKind kind) const;

    /**
     * Number of distinct capping episodes: a kCapStart opens an
     * episode for its source, the next kUncap *from the same source*
     * closes it. With an empty `source`, episodes are counted across
     * all sources (each source tracked independently).
     */
    std::size_t CappingEpisodes(const std::string& source = "") const;

    /**
     * Durations of capping episodes for `source` (kCapStart to the
     * matching kUncap), in ms. An episode still open at the end of
     * the log is closed out at `end_time` when `end_time >= 0`;
     * with the default end_time = -1 it is not reported.
     */
    std::vector<SimTime> EpisodeDurations(const std::string& source,
                                          SimTime end_time = -1) const;

    std::size_t capacity() const { return capacity_; }

    /** Lifetime number of events recorded (including evicted). */
    std::uint64_t total_recorded() const { return total_recorded_; }

    /** Events dropped by ring eviction. */
    std::uint64_t evicted() const { return evicted_; }

    /** Drop all events and reset counters. */
    void Clear();

  private:
    std::size_t capacity_;
    std::deque<Event> events_;
    std::array<std::uint64_t, kEventKindCount> counts_{};
    std::uint64_t total_recorded_ = 0;
    std::uint64_t evicted_ = 0;
};

}  // namespace dynamo::telemetry

#endif  // DYNAMO_TELEMETRY_EVENT_LOG_H_
