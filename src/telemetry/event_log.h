/**
 * @file
 * Structured log of control-plane events.
 *
 * Every consequential Dynamo action — capping triggered, caps updated,
 * uncapping, aggregation declared invalid, failover, breaker trip —
 * is recorded here so experiments can count and time them (e.g.
 * Table I's "18 potential outages prevented", Fig. 14's "capping was
 * triggered seven times").
 */
#ifndef DYNAMO_TELEMETRY_EVENT_LOG_H_
#define DYNAMO_TELEMETRY_EVENT_LOG_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/units.h"

namespace dynamo::telemetry {

/** Kind of control-plane event. */
enum class EventKind {
    kCapStart,      ///< Three-band capping newly triggered.
    kCapUpdate,     ///< Additional cut while already capping.
    kUncap,         ///< Uncapping triggered.
    kAlarm,         ///< Aggregation invalid / human intervention needed.
    kBreakerTrip,   ///< A physical breaker tripped (an outage).
    kFailover,      ///< Backup controller took over.
    kAgentRestart,  ///< Watchdog restarted a crashed agent.
    kLoadShed,      ///< Emergency traffic shed requested (caps exhausted).
    kDegradedEnter, ///< Controller entered degraded mode (pulls unreliable).
    kDegradedExit,  ///< Controller recovered to normal operation.
    kCapHold,       ///< Cap release frozen while not in normal health.
    kChaosFault,    ///< Chaos campaign injected or cleared a fault.
};

/** Readable name for an event kind. */
const char* EventKindName(EventKind kind);

/** One logged event. */
struct Event
{
    SimTime time = 0;
    EventKind kind = EventKind::kAlarm;
    std::string source;       ///< Controller / device name.
    double aggregated_power = 0.0;
    double limit = 0.0;
    int servers_affected = 0;
    std::string detail;
};

/** Append-only event log with simple query helpers. */
class EventLog
{
  public:
    /** Record one event. */
    void Record(Event event);

    const std::vector<Event>& events() const { return events_; }

    /** Number of events of the given kind. */
    std::size_t CountOf(EventKind kind) const;

    /** Events of one kind, in time order. */
    std::vector<Event> OfKind(EventKind kind) const;

    /**
     * Number of distinct capping episodes: a kCapStart opens an
     * episode, the next kUncap from the same source closes it.
     */
    std::size_t CappingEpisodes(const std::string& source = "") const;

    /**
     * Durations of closed capping episodes for `source` (kCapStart to
     * the matching kUncap), in ms. An episode still open at the end of
     * the log is not reported.
     */
    std::vector<SimTime> EpisodeDurations(const std::string& source) const;

    /** Drop all events. */
    void Clear() { events_.clear(); }

  private:
    std::vector<Event> events_;
};

}  // namespace dynamo::telemetry

#endif  // DYNAMO_TELEMETRY_EVENT_LOG_H_
