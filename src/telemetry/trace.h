/**
 * @file
 * Hierarchical decision traces.
 *
 * Dynamo operators debug capping incidents from per-cycle evidence:
 * which band the controller was in, how the measured power compared to
 * the threshold, which priority group and power bucket absorbed the
 * cut, which child was an offender over quota, and what contractual
 * limit / RAPL cap was actually sent (PAPER.md §3, Fig. 11/15/16).
 *
 * Each controller cycle that takes (or withholds) an action emits one
 * structured `TraceSpan`. Spans carry a parent id: an upper-level
 * controller stamps its span id onto the contractual-limit commands it
 * sends, and the child's next decision under that contract links back
 * to it — so an MSB decision can be followed through the SB and leaf
 * levels down to the per-server RAPL caps recorded in the leaf span's
 * allocations.
 *
 * The log is a bounded ring: span ids are dense and monotonically
 * increasing, eviction drops the oldest spans, and `Find` resolves an
 * id in O(1) while it is retained. Consumers that must not miss spans
 * (the chaos InvariantChecker) poll incrementally by id watermark.
 */
#ifndef DYNAMO_TELEMETRY_TRACE_H_
#define DYNAMO_TELEMETRY_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/units.h"

namespace dynamo {
class Archive;
class ArchiveReader;
}  // namespace dynamo

namespace dynamo::telemetry {

/** Span identity; ids are dense, increasing, and never recycled. */
using SpanId = std::uint64_t;

/** "No parent" / "no span". Real ids start at 1. */
inline constexpr SpanId kNoSpan = 0;

/** Which control level emitted a span. */
enum class SpanKind {
    kLeafDecision,   ///< Leaf controller cycle (server-level capping).
    kUpperDecision,  ///< Upper controller cycle (contractual limits).
};

/** Readable name for a span kind ("leaf", "upper"). */
const char* SpanKindName(SpanKind kind);

/** Band action the cycle decided on (mirrors core::BandAction). */
enum class TraceBand { kNone, kCap, kUncap, kHold };

/** Readable name ("none", "cap", "uncap", "hold"). */
const char* TraceBandName(TraceBand band);

/** One priority group's share of a leaf cut. */
struct TraceGroupCut
{
    int priority_group = 0;
    Watts cut = 0.0;
    int servers = 0;  ///< Servers in the group that received a cap.
};

/**
 * One target's share of the plan: a server's RAPL cap (leaf spans) or
 * a child controller's contractual limit (upper spans).
 */
struct TraceAllocation
{
    std::string target;       ///< Agent / child controller endpoint.
    Watts power = 0.0;        ///< Reading the plan was computed from.
    Watts floor = 0.0;        ///< SLA min cap (leaf) or child floor.
    Watts quota = 0.0;        ///< Child quota (upper spans only).
    Watts cut = 0.0;          ///< Allocated cut.
    Watts limit_sent = 0.0;   ///< RAPL cap or contractual limit issued.
    int bucket = -1;          ///< High-bucket-first bucket index; -1 n/a.
    bool offender = false;    ///< power > quota (upper spans only).
};

/** One controller cycle's decision, fully attributable. */
struct TraceSpan
{
    SpanId id = kNoSpan;      ///< Assigned by TraceLog::Append.
    SpanId parent = kNoSpan;  ///< Contract span this decision ran under.
    SimTime time = 0;
    SpanKind kind = SpanKind::kLeafDecision;
    std::string source;       ///< Controller endpoint.

    TraceBand band = TraceBand::kNone;
    bool was_capping = false; ///< Capping already in force before this cycle.

    /**
     * Fleet spec epoch the deciding controller observed. Audits that
     * compare the span against fleet-wide aggregates (cut sums, SLA
     * floors) must evaluate it against this epoch's topology, not the
     * boot-time fleet — reconfiguration can change both mid-run.
     * 0 = controller not attached to a versioned fleet.
     */
    std::uint64_t epoch = 0;

    Watts measured = 0.0;     ///< Aggregated power this cycle.
    Watts limit = 0.0;        ///< Effective limit min(physical, contract).
    Watts threshold = 0.0;    ///< Capping threshold the measure crossed.
    Watts target = 0.0;       ///< Level capping aims at (kCap only).
    Watts cut = 0.0;          ///< Total cut the band policy requested.
    Watts planned_cut = 0.0;  ///< Cut the planner actually allocated.
    bool satisfied = true;    ///< Plan covered the full cut within floors.
    bool dry_run = false;

    std::vector<TraceGroupCut> groups;     ///< Leaf: per-priority-group split.
    std::vector<TraceAllocation> allocs;   ///< Per-server / per-child detail.
};

/**
 * Human-readable band transition for a span, e.g. "settled->capping",
 * "capping->capping", "capping->released", "capping->held".
 */
std::string TraceTransitionName(const TraceSpan& span);

/** Canonical binary encoding of one span (bit-exact doubles). */
void WriteSpan(Archive& ar, const TraceSpan& span);

/** Inverse of WriteSpan; throws std::runtime_error on truncation. */
TraceSpan ReadSpan(ArchiveReader& ar);

/** Field-exact equality (bit-exact doubles), including allocations. */
bool SpansIdentical(const TraceSpan& a, const TraceSpan& b);

/** Bounded ring of decision spans. */
class TraceLog
{
  public:
    static constexpr std::size_t kDefaultCapacity = 4096;

    explicit TraceLog(std::size_t capacity = kDefaultCapacity);

    /** Record one span; assigns and returns its id. */
    SpanId Append(TraceSpan span);

    /** Retained spans, oldest first. */
    const std::deque<TraceSpan>& spans() const { return spans_; }

    /** Span by id; nullptr if evicted or never appended. */
    const TraceSpan* Find(SpanId id) const;

    /** Retained spans whose parent is `id`, oldest first. */
    std::vector<const TraceSpan*> ChildrenOf(SpanId id) const;

    /** Oldest retained id (kNoSpan when empty). */
    SpanId first_id() const
    {
        return spans_.empty() ? kNoSpan : spans_.front().id;
    }

    /** Id the next Append will assign. */
    SpanId next_id() const { return next_id_; }

    std::size_t size() const { return spans_.size(); }
    std::size_t capacity() const { return capacity_; }

    /** Spans appended over the log's lifetime (including evicted). */
    std::uint64_t total_appended() const { return next_id_ - 1; }

    /** Spans dropped by ring eviction. */
    std::uint64_t evicted() const { return evicted_; }

    /** Drop all retained spans (ids keep increasing). */
    void Clear();

    /**
     * Serialize the full ring — every retained span plus the id /
     * eviction counters — in canonical binary form. Restore() on a
     * log of any prior state reproduces the ring exactly: Find()
     * misses on evicted ids, watermark consumers resume at the same
     * next id, and evicted() survives the round trip.
     */
    void Snapshot(Archive& ar) const;

    /** Replace this log's contents with a snapshotted state. */
    void Restore(ArchiveReader& ar);

  private:
    std::size_t capacity_;
    std::deque<TraceSpan> spans_;
    SpanId next_id_ = 1;
    std::uint64_t evicted_ = 0;
};

}  // namespace dynamo::telemetry

#endif  // DYNAMO_TELEMETRY_TRACE_H_
