#include "telemetry/timeseries.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dynamo::telemetry {

void
TimeSeries::Add(SimTime time, double value)
{
    assert((samples_.empty() || time >= samples_.back().time) &&
           "samples must be appended in time order");
    samples_.push_back(Sample{time, value});
}

std::vector<double>
TimeSeries::Values() const
{
    std::vector<double> out;
    out.reserve(samples_.size());
    for (const Sample& s : samples_) out.push_back(s.value);
    return out;
}

std::vector<double>
TimeSeries::ValuesBetween(SimTime begin, SimTime end) const
{
    std::vector<double> out;
    for (const Sample& s : samples_) {
        if (s.time >= begin && s.time < end) out.push_back(s.value);
    }
    return out;
}

double
TimeSeries::Min() const
{
    if (samples_.empty()) return 0.0;
    double m = samples_.front().value;
    for (const Sample& s : samples_) m = std::min(m, s.value);
    return m;
}

double
TimeSeries::Max() const
{
    if (samples_.empty()) return 0.0;
    double m = samples_.front().value;
    for (const Sample& s : samples_) m = std::max(m, s.value);
    return m;
}

double
TimeSeries::MeanValue() const
{
    if (samples_.empty()) return 0.0;
    double sum = 0.0;
    for (const Sample& s : samples_) sum += s.value;
    return sum / static_cast<double>(samples_.size());
}

double
TimeSeries::PeakHoursMean(double frac) const
{
    if (samples_.empty()) return 0.0;
    frac = std::clamp(frac, 0.0, 1.0);
    if (frac <= 0.0) return 0.0;
    std::vector<double> values = Values();
    std::sort(values.begin(), values.end());
    // Window size rounds up so any positive fraction sees at least one
    // sample; the epsilon absorbs fp artifacts like 0.25*100 = 25.0000…4
    // that would otherwise round a whole-sample fraction up by one.
    const double want =
        std::ceil(static_cast<double>(values.size()) * frac - 1e-9);
    const std::size_t count = std::clamp<std::size_t>(
        static_cast<std::size_t>(want), 1, values.size());
    const std::size_t first = values.size() - count;
    double sum = 0.0;
    for (std::size_t i = first; i < values.size(); ++i) sum += values[i];
    return sum / static_cast<double>(count);
}

}  // namespace dynamo::telemetry
