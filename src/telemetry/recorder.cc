#include "telemetry/recorder.h"

#include <utility>

namespace dynamo::telemetry {

Recorder::Recorder(sim::Simulation& sim, SimTime period, Probe probe,
                   TimeSeries* series)
{
    task_ = sim.SchedulePeriodic(
        period, [&sim, probe = std::move(probe), series]() {
            series->Add(sim.Now(), probe());
        });
}

}  // namespace dynamo::telemetry
