#include "telemetry/event_log.h"

#include <unordered_map>
#include <utility>

namespace dynamo::telemetry {

const char*
EventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::kCapStart: return "cap_start";
      case EventKind::kCapUpdate: return "cap_update";
      case EventKind::kUncap: return "uncap";
      case EventKind::kAlarm: return "alarm";
      case EventKind::kBreakerTrip: return "breaker_trip";
      case EventKind::kFailover: return "failover";
      case EventKind::kAgentRestart: return "agent_restart";
      case EventKind::kLoadShed: return "load_shed";
      case EventKind::kDegradedEnter: return "degraded_enter";
      case EventKind::kDegradedExit: return "degraded_exit";
      case EventKind::kCapHold: return "cap_hold";
      case EventKind::kChaosFault: return "chaos_fault";
      case EventKind::kReconfig: return "reconfig";
    }
    return "?";
}

EventLog::EventLog(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{
}

void
EventLog::Record(Event event)
{
    ++counts_[static_cast<std::size_t>(event.kind)];
    ++total_recorded_;
    events_.push_back(std::move(event));
    while (events_.size() > capacity_) {
        events_.pop_front();
        ++evicted_;
    }
}

std::size_t
EventLog::CountOf(EventKind kind) const
{
    return static_cast<std::size_t>(counts_[static_cast<std::size_t>(kind)]);
}

std::vector<Event>
EventLog::OfKind(EventKind kind) const
{
    std::vector<Event> out;
    for (const Event& e : events_) {
        if (e.kind == kind) out.push_back(e);
    }
    return out;
}

std::vector<SimTime>
EventLog::EpisodeDurations(const std::string& source, SimTime end_time) const
{
    std::vector<SimTime> durations;
    SimTime open_since = -1;
    for (const Event& e : events_) {
        if (e.source != source) continue;
        if (e.kind == EventKind::kCapStart && open_since < 0) {
            open_since = e.time;
        } else if (e.kind == EventKind::kUncap && open_since >= 0) {
            durations.push_back(e.time - open_since);
            open_since = -1;
        }
    }
    // Close out an episode still capping at end-of-run, so "capped and
    // never released" contributes its (ongoing) duration instead of
    // silently vanishing from the report.
    if (open_since >= 0 && end_time >= 0 && end_time >= open_since) {
        durations.push_back(end_time - open_since);
    }
    return durations;
}

std::size_t
EventLog::CappingEpisodes(const std::string& source) const
{
    // Track open state per source: an uncap only closes episodes of the
    // controller that issued it, never a sibling's.
    std::size_t episodes = 0;
    std::unordered_map<std::string, bool> open;
    for (const Event& e : events_) {
        if (!source.empty() && e.source != source) continue;
        bool& is_open = open[e.source];
        if (e.kind == EventKind::kCapStart && !is_open) {
            is_open = true;
            ++episodes;
        } else if (e.kind == EventKind::kUncap) {
            is_open = false;
        }
    }
    return episodes;
}

void
EventLog::Clear()
{
    events_.clear();
    counts_.fill(0);
    total_recorded_ = 0;
    evicted_ = 0;
}

}  // namespace dynamo::telemetry
