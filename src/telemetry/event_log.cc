#include "telemetry/event_log.h"

#include <utility>

namespace dynamo::telemetry {

const char*
EventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::kCapStart: return "cap_start";
      case EventKind::kCapUpdate: return "cap_update";
      case EventKind::kUncap: return "uncap";
      case EventKind::kAlarm: return "alarm";
      case EventKind::kBreakerTrip: return "breaker_trip";
      case EventKind::kFailover: return "failover";
      case EventKind::kAgentRestart: return "agent_restart";
      case EventKind::kLoadShed: return "load_shed";
      case EventKind::kDegradedEnter: return "degraded_enter";
      case EventKind::kDegradedExit: return "degraded_exit";
      case EventKind::kCapHold: return "cap_hold";
      case EventKind::kChaosFault: return "chaos_fault";
    }
    return "?";
}

void
EventLog::Record(Event event)
{
    events_.push_back(std::move(event));
}

std::size_t
EventLog::CountOf(EventKind kind) const
{
    std::size_t n = 0;
    for (const Event& e : events_) {
        if (e.kind == kind) ++n;
    }
    return n;
}

std::vector<Event>
EventLog::OfKind(EventKind kind) const
{
    std::vector<Event> out;
    for (const Event& e : events_) {
        if (e.kind == kind) out.push_back(e);
    }
    return out;
}

std::vector<SimTime>
EventLog::EpisodeDurations(const std::string& source) const
{
    std::vector<SimTime> durations;
    SimTime open_since = -1;
    for (const Event& e : events_) {
        if (e.source != source) continue;
        if (e.kind == EventKind::kCapStart && open_since < 0) {
            open_since = e.time;
        } else if (e.kind == EventKind::kUncap && open_since >= 0) {
            durations.push_back(e.time - open_since);
            open_since = -1;
        }
    }
    return durations;
}

std::size_t
EventLog::CappingEpisodes(const std::string& source) const
{
    std::size_t episodes = 0;
    bool open = false;
    for (const Event& e : events_) {
        if (!source.empty() && e.source != source) continue;
        if (e.kind == EventKind::kCapStart && !open) {
            open = true;
            ++episodes;
        } else if (e.kind == EventKind::kUncap) {
            open = false;
        }
    }
    return episodes;
}

}  // namespace dynamo::telemetry
