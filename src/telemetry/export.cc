#include "telemetry/export.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/units.h"

namespace dynamo::telemetry {
namespace {

/** Index of the last sample at or before `time`; -1 if none. */
std::ptrdiff_t
LastIndexAtOrBefore(const TimeSeries& series, SimTime time,
                    std::ptrdiff_t start_hint)
{
    std::ptrdiff_t i = start_hint;
    while (i + 1 < static_cast<std::ptrdiff_t>(series.size()) &&
           series.at(static_cast<std::size_t>(i + 1)).time <= time) {
        ++i;
    }
    return i;
}

/** 17 significant digits: enough for strtod to reproduce the bits. */
std::string
ExactDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::string
JoinDoubles(const std::vector<double>& values)
{
    std::string out;
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i > 0) out += ',';
        out += ExactDouble(values[i]);
    }
    return out;
}

std::string
JoinCounts(const std::vector<std::uint64_t>& values)
{
    std::string out;
    char buf[32];
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i > 0) out += ',';
        std::snprintf(buf, sizeof buf, "%" PRIu64, values[i]);
        out += buf;
    }
    return out;
}

std::vector<std::string>
SplitList(const std::string& joined)
{
    std::vector<std::string> out;
    if (joined.empty()) return out;
    std::size_t begin = 0;
    for (;;) {
        const std::size_t comma = joined.find(',', begin);
        if (comma == std::string::npos) {
            out.push_back(joined.substr(begin));
            return out;
        }
        out.push_back(joined.substr(begin, comma - begin));
        begin = comma + 1;
    }
}

double
ParseDoubleOrThrow(const std::string& text, const std::string& line)
{
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0') {
        throw std::runtime_error("bad double '" + text + "' in: " + line);
    }
    return v;
}

std::uint64_t
ParseU64OrThrow(const std::string& text, const std::string& line)
{
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0') {
        throw std::runtime_error("bad integer '" + text + "' in: " + line);
    }
    return v;
}

/** Value of a `key=` token on the line; throws if missing. */
std::string
TokenValue(const std::vector<std::string>& tokens, const std::string& key,
           const std::string& line)
{
    const std::string prefix = key + "=";
    for (const std::string& token : tokens) {
        if (token.compare(0, prefix.size(), prefix) == 0) {
            return token.substr(prefix.size());
        }
    }
    throw std::runtime_error("missing '" + prefix + "' in: " + line);
}

void
JsonEscape(std::ostream& out, const std::string& text)
{
    for (char c : text) {
        switch (c) {
          case '"': out << "\\\""; break;
          case '\\': out << "\\\\"; break;
          case '\n': out << "\\n"; break;
          case '\t': out << "\\t"; break;
          default: out << c;
        }
    }
}

}  // namespace

void
WriteCsv(std::ostream& out, const std::vector<NamedSeries>& columns)
{
    if (columns.empty() || columns[0].series == nullptr) {
        throw std::invalid_argument("WriteCsv requires at least one series");
    }
    out << "time_s";
    for (const NamedSeries& col : columns) out << "," << col.name;
    out << "\n";

    const TimeSeries& anchor = *columns[0].series;
    std::vector<std::ptrdiff_t> cursor(columns.size(), -1);
    for (std::size_t row = 0; row < anchor.size(); ++row) {
        const SimTime t = anchor.at(row).time;
        out << ToSeconds(t);
        for (std::size_t c = 0; c < columns.size(); ++c) {
            cursor[c] = LastIndexAtOrBefore(*columns[c].series, t, cursor[c]);
            out << ",";
            if (cursor[c] >= 0) {
                out << columns[c].series->at(
                    static_cast<std::size_t>(cursor[c])).value;
            }
        }
        out << "\n";
    }
}

void
WriteCsvFile(const std::string& path, const std::vector<NamedSeries>& columns)
{
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot write CSV file: " + path);
    WriteCsv(out, columns);
}

void
WriteGnuplot(std::ostream& out, const std::vector<NamedSeries>& columns)
{
    bool first = true;
    for (const NamedSeries& col : columns) {
        if (col.series == nullptr) continue;
        if (!first) out << "\n\n";
        first = false;
        out << "# " << col.name << "\n";
        for (std::size_t i = 0; i < col.series->size(); ++i) {
            const Sample& s = col.series->at(i);
            out << ToSeconds(s.time) << " " << s.value << "\n";
        }
    }
}

MetricsSnapshot
SnapshotOf(const MetricsRegistry& registry)
{
    MetricsSnapshot snapshot;
    snapshot.metrics.reserve(registry.size());
    for (const MetricsRegistry::Entry& entry : registry.entries()) {
        MetricValue value;
        value.name = entry.name;
        value.kind = entry.kind;
        switch (entry.kind) {
          case MetricKind::kCounter:
            if (entry.counter != nullptr) value.count = entry.counter->value();
            break;
          case MetricKind::kGauge:
            if (entry.gauge != nullptr) value.value = entry.gauge->value();
            break;
          case MetricKind::kHistogram:
            if (entry.histogram != nullptr) {
                const Histogram& h = *entry.histogram;
                value.count = h.count();
                value.sum = h.sum();
                value.min = h.min();
                value.max = h.max();
                value.bounds = h.bounds();
                value.bucket_counts = h.bucket_counts();
            }
            break;
        }
        snapshot.metrics.push_back(std::move(value));
    }
    return snapshot;
}

void
WriteMetricsText(std::ostream& out, const MetricsSnapshot& snapshot)
{
    out << "# dynamo metrics v1\n";
    for (const MetricValue& m : snapshot.metrics) {
        out << "metric " << m.name << " " << MetricKindName(m.kind);
        switch (m.kind) {
          case MetricKind::kCounter:
            out << " " << m.count;
            break;
          case MetricKind::kGauge:
            out << " " << ExactDouble(m.value);
            break;
          case MetricKind::kHistogram:
            out << " count=" << m.count
                << " sum=" << ExactDouble(m.sum)
                << " min=" << ExactDouble(m.min)
                << " max=" << ExactDouble(m.max)
                << " bounds=" << JoinDoubles(m.bounds)
                << " buckets=" << JoinCounts(m.bucket_counts);
            break;
        }
        out << "\n";
    }
}

MetricsSnapshot
ParseMetricsText(std::istream& in)
{
    MetricsSnapshot snapshot;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#') continue;

        std::vector<std::string> tokens;
        std::istringstream fields(line);
        std::string token;
        while (fields >> token) tokens.push_back(token);
        if (tokens.size() < 4 || tokens[0] != "metric") {
            throw std::runtime_error("malformed metrics line: " + line);
        }

        MetricValue m;
        m.name = tokens[1];
        const std::string& kind = tokens[2];
        if (kind == "counter") {
            m.kind = MetricKind::kCounter;
            m.count = ParseU64OrThrow(tokens[3], line);
        } else if (kind == "gauge") {
            m.kind = MetricKind::kGauge;
            m.value = ParseDoubleOrThrow(tokens[3], line);
        } else if (kind == "histogram") {
            m.kind = MetricKind::kHistogram;
            m.count = ParseU64OrThrow(TokenValue(tokens, "count", line), line);
            m.sum = ParseDoubleOrThrow(TokenValue(tokens, "sum", line), line);
            m.min = ParseDoubleOrThrow(TokenValue(tokens, "min", line), line);
            m.max = ParseDoubleOrThrow(TokenValue(tokens, "max", line), line);
            for (const std::string& b :
                 SplitList(TokenValue(tokens, "bounds", line))) {
                m.bounds.push_back(ParseDoubleOrThrow(b, line));
            }
            for (const std::string& b :
                 SplitList(TokenValue(tokens, "buckets", line))) {
                m.bucket_counts.push_back(ParseU64OrThrow(b, line));
            }
        } else {
            throw std::runtime_error("unknown metric kind in: " + line);
        }
        snapshot.metrics.push_back(std::move(m));
    }
    return snapshot;
}

void
WriteMetricsJson(std::ostream& out, const MetricsSnapshot& snapshot)
{
    out << "{\"metrics\":[";
    for (std::size_t i = 0; i < snapshot.metrics.size(); ++i) {
        const MetricValue& m = snapshot.metrics[i];
        if (i > 0) out << ",";
        out << "\n  {\"name\":\"";
        JsonEscape(out, m.name);
        out << "\",\"kind\":\"" << MetricKindName(m.kind) << "\"";
        switch (m.kind) {
          case MetricKind::kCounter:
            out << ",\"value\":" << m.count;
            break;
          case MetricKind::kGauge:
            out << ",\"value\":" << ExactDouble(m.value);
            break;
          case MetricKind::kHistogram:
            out << ",\"count\":" << m.count
                << ",\"sum\":" << ExactDouble(m.sum)
                << ",\"min\":" << ExactDouble(m.min)
                << ",\"max\":" << ExactDouble(m.max)
                << ",\"bounds\":[" << JoinDoubles(m.bounds) << "]"
                << ",\"buckets\":[" << JoinCounts(m.bucket_counts) << "]";
            break;
        }
        out << "}";
    }
    out << "\n]}\n";
}

bool
SnapshotsEqual(const MetricsSnapshot& a, const MetricsSnapshot& b,
               std::string* why)
{
    auto differ = [&](const std::string& what) {
        if (why != nullptr) *why = what;
        return false;
    };
    if (a.metrics.size() != b.metrics.size()) {
        return differ("metric count differs: " +
                      std::to_string(a.metrics.size()) + " vs " +
                      std::to_string(b.metrics.size()));
    }
    for (std::size_t i = 0; i < a.metrics.size(); ++i) {
        const MetricValue& x = a.metrics[i];
        const MetricValue& y = b.metrics[i];
        if (x.name != y.name) {
            return differ("name differs at " + std::to_string(i) + ": " +
                          x.name + " vs " + y.name);
        }
        if (x.kind != y.kind) return differ(x.name + ": kind differs");
        if (x.count != y.count) return differ(x.name + ": count differs");
        if (x.value != y.value) return differ(x.name + ": value differs");
        if (x.sum != y.sum) return differ(x.name + ": sum differs");
        if (x.min != y.min) return differ(x.name + ": min differs");
        if (x.max != y.max) return differ(x.name + ": max differs");
        if (x.bounds != y.bounds) return differ(x.name + ": bounds differ");
        if (x.bucket_counts != y.bucket_counts) {
            return differ(x.name + ": bucket counts differ");
        }
    }
    return true;
}

namespace {

void
Indent(std::ostream& out, int n)
{
    for (int i = 0; i < n; ++i) out << ' ';
}

void
WriteSpanSubtree(std::ostream& out, const TraceLog& log,
                 const TraceSpan& span, int indent)
{
    WriteTraceSpan(out, span, indent);
    for (const TraceSpan* child : log.ChildrenOf(span.id)) {
        WriteSpanSubtree(out, log, *child, indent + 4);
    }
}

}  // namespace

void
WriteTraceSpan(std::ostream& out, const TraceSpan& span, int indent)
{
    Indent(out, indent);
    out << "span#" << span.id;
    if (span.parent != kNoSpan) out << " parent=" << span.parent;
    out << " " << SpanKindName(span.kind)
        << " " << (span.source.empty() ? "?" : span.source)
        << " t=" << ToSeconds(span.time) << "s"
        << " band=" << TraceBandName(span.band)
        << " transition=" << TraceTransitionName(span)
        << " measured=" << span.measured << "W"
        << " limit=" << span.limit << "W"
        << " threshold=" << span.threshold << "W";
    if (span.band == TraceBand::kCap) {
        out << " target=" << span.target << "W"
            << " cut=" << span.cut << "W"
            << " planned=" << span.planned_cut << "W"
            << " satisfied=" << (span.satisfied ? "yes" : "NO");
    }
    if (span.dry_run) out << " dry_run";
    out << "\n";
    for (const TraceGroupCut& group : span.groups) {
        Indent(out, indent + 2);
        out << "group pg=" << group.priority_group
            << " cut=" << group.cut << "W"
            << " servers=" << group.servers << "\n";
    }
    for (const TraceAllocation& alloc : span.allocs) {
        Indent(out, indent + 2);
        out << "alloc " << alloc.target;
        if (alloc.bucket >= 0) out << " bucket=" << alloc.bucket;
        out << " power=" << alloc.power << "W"
            << " floor=" << alloc.floor << "W";
        if (span.kind == SpanKind::kUpperDecision) {
            out << " quota=" << alloc.quota << "W"
                << " offender=" << (alloc.offender ? "yes" : "no");
        }
        out << " cut=" << alloc.cut << "W"
            << " limit_sent=" << alloc.limit_sent << "W\n";
    }
}

void
WriteTraceTree(std::ostream& out, const TraceLog& log)
{
    out << "# dynamo decision traces: " << log.size() << " retained, "
        << log.evicted() << " evicted\n";
    for (const TraceSpan& span : log.spans()) {
        const bool is_root =
            span.parent == kNoSpan || log.Find(span.parent) == nullptr;
        if (is_root) WriteSpanSubtree(out, log, span, 0);
    }
}

void
WriteTraceJson(std::ostream& out, const TraceLog& log)
{
    out << "{\"spans\":[";
    bool first = true;
    for (const TraceSpan& span : log.spans()) {
        if (!first) out << ",";
        first = false;
        out << "\n  {\"id\":" << span.id
            << ",\"parent\":" << span.parent
            << ",\"time_ms\":" << span.time
            << ",\"kind\":\"" << SpanKindName(span.kind) << "\""
            << ",\"source\":\"";
        JsonEscape(out, span.source);
        out << "\",\"band\":\"" << TraceBandName(span.band) << "\""
            << ",\"transition\":\"" << TraceTransitionName(span) << "\""
            << ",\"measured\":" << ExactDouble(span.measured)
            << ",\"limit\":" << ExactDouble(span.limit)
            << ",\"threshold\":" << ExactDouble(span.threshold)
            << ",\"target\":" << ExactDouble(span.target)
            << ",\"cut\":" << ExactDouble(span.cut)
            << ",\"planned_cut\":" << ExactDouble(span.planned_cut)
            << ",\"satisfied\":" << (span.satisfied ? "true" : "false")
            << ",\"dry_run\":" << (span.dry_run ? "true" : "false")
            << ",\"groups\":[";
        for (std::size_t i = 0; i < span.groups.size(); ++i) {
            const TraceGroupCut& g = span.groups[i];
            if (i > 0) out << ",";
            out << "{\"pg\":" << g.priority_group
                << ",\"cut\":" << ExactDouble(g.cut)
                << ",\"servers\":" << g.servers << "}";
        }
        out << "],\"allocs\":[";
        for (std::size_t i = 0; i < span.allocs.size(); ++i) {
            const TraceAllocation& a = span.allocs[i];
            if (i > 0) out << ",";
            out << "{\"target\":\"";
            JsonEscape(out, a.target);
            out << "\",\"bucket\":" << a.bucket
                << ",\"power\":" << ExactDouble(a.power)
                << ",\"floor\":" << ExactDouble(a.floor)
                << ",\"quota\":" << ExactDouble(a.quota)
                << ",\"offender\":" << (a.offender ? "true" : "false")
                << ",\"cut\":" << ExactDouble(a.cut)
                << ",\"limit_sent\":" << ExactDouble(a.limit_sent) << "}";
        }
        out << "]}";
    }
    out << "\n]}\n";
}

}  // namespace dynamo::telemetry
