#include "telemetry/export.h"

#include <fstream>
#include <ostream>
#include <stdexcept>

#include "common/units.h"

namespace dynamo::telemetry {
namespace {

/** Index of the last sample at or before `time`; -1 if none. */
std::ptrdiff_t
LastIndexAtOrBefore(const TimeSeries& series, SimTime time,
                    std::ptrdiff_t start_hint)
{
    std::ptrdiff_t i = start_hint;
    while (i + 1 < static_cast<std::ptrdiff_t>(series.size()) &&
           series.at(static_cast<std::size_t>(i + 1)).time <= time) {
        ++i;
    }
    return i;
}

}  // namespace

void
WriteCsv(std::ostream& out, const std::vector<NamedSeries>& columns)
{
    if (columns.empty() || columns[0].series == nullptr) {
        throw std::invalid_argument("WriteCsv requires at least one series");
    }
    out << "time_s";
    for (const NamedSeries& col : columns) out << "," << col.name;
    out << "\n";

    const TimeSeries& anchor = *columns[0].series;
    std::vector<std::ptrdiff_t> cursor(columns.size(), -1);
    for (std::size_t row = 0; row < anchor.size(); ++row) {
        const SimTime t = anchor.at(row).time;
        out << ToSeconds(t);
        for (std::size_t c = 0; c < columns.size(); ++c) {
            cursor[c] = LastIndexAtOrBefore(*columns[c].series, t, cursor[c]);
            out << ",";
            if (cursor[c] >= 0) {
                out << columns[c].series->at(
                    static_cast<std::size_t>(cursor[c])).value;
            }
        }
        out << "\n";
    }
}

void
WriteCsvFile(const std::string& path, const std::vector<NamedSeries>& columns)
{
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot write CSV file: " + path);
    WriteCsv(out, columns);
}

void
WriteGnuplot(std::ostream& out, const std::vector<NamedSeries>& columns)
{
    bool first = true;
    for (const NamedSeries& col : columns) {
        if (col.series == nullptr) continue;
        if (!first) out << "\n\n";
        first = false;
        out << "# " << col.name << "\n";
        for (std::size_t i = 0; i < col.series->size(); ++i) {
            const Sample& s = col.series->at(i);
            out << ToSeconds(s.time) << " " << s.value << "\n";
        }
    }
}

}  // namespace dynamo::telemetry
