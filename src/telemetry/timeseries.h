/**
 * @file
 * Sampled time series.
 *
 * The monitoring half of Dynamo — which the paper calls "as important
 * as capping" — boils down to regularly sampled power series and the
 * analyses computed over them. This container stores (time, value)
 * samples appended in time order.
 */
#ifndef DYNAMO_TELEMETRY_TIMESERIES_H_
#define DYNAMO_TELEMETRY_TIMESERIES_H_

#include <cstddef>
#include <vector>

#include "common/units.h"

namespace dynamo::telemetry {

/** One sample. */
struct Sample
{
    SimTime time;
    double value;
};

/** Append-only series of time-ordered samples. */
class TimeSeries
{
  public:
    /** Append a sample; `time` must be >= the last appended time. */
    void Add(SimTime time, double value);

    std::size_t size() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    const Sample& at(std::size_t i) const { return samples_[i]; }
    const std::vector<Sample>& samples() const { return samples_; }

    /** All values, in time order. */
    std::vector<double> Values() const;

    /** Values with time in [begin, end). */
    std::vector<double> ValuesBetween(SimTime begin, SimTime end) const;

    /** Minimum value; 0 for an empty series. */
    double Min() const;

    /** Maximum value; 0 for an empty series. */
    double Max() const;

    /** Mean value; 0 for an empty series. */
    double MeanValue() const;

    /**
     * Mean of the top `frac` fraction of values — the paper's
     * "average power during peak hours" normalizer for variation
     * percentages (we use the busiest quartile by default).
     *
     * `frac` is clamped to [0, 1]; frac == 0 yields 0 (an empty
     * window), any positive frac sees at least the single largest
     * sample, and frac == 1 equals MeanValue().
     */
    double PeakHoursMean(double frac = 0.25) const;

    /** First sample time; 0 if empty. */
    SimTime StartTime() const { return empty() ? 0 : samples_.front().time; }

    /** Last sample time; 0 if empty. */
    SimTime EndTime() const { return empty() ? 0 : samples_.back().time; }

  private:
    std::vector<Sample> samples_;
};

}  // namespace dynamo::telemetry

#endif  // DYNAMO_TELEMETRY_TIMESERIES_H_
