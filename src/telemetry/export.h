/**
 * @file
 * Telemetry export for offline analysis.
 *
 * Three families of writers:
 *   - time series as CSV / gnuplot blocks, so bench outputs can be
 *     re-plotted against the paper's figures without re-running;
 *   - metrics-registry snapshots as a line-oriented text format (with
 *     an exact round-trip parser — doubles are printed with 17
 *     significant digits) and as JSON;
 *   - decision-trace trees, human-readable (indented parent→child,
 *     naming the band transition and per-group/per-target split) and
 *     as JSON.
 */
#ifndef DYNAMO_TELEMETRY_EXPORT_H_
#define DYNAMO_TELEMETRY_EXPORT_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/timeseries.h"
#include "telemetry/trace.h"

namespace dynamo::telemetry {

/** One named column for export. */
struct NamedSeries
{
    std::string name;
    const TimeSeries* series = nullptr;
};

/**
 * Write CSV with a time column (seconds) plus one column per series.
 * Rows follow the first series' timestamps; other series contribute
 * their most recent value at or before each timestamp (empty cell if
 * none yet). Throws std::invalid_argument when no series is given.
 */
void WriteCsv(std::ostream& out, const std::vector<NamedSeries>& columns);

/** WriteCsv to a file; throws std::runtime_error on failure. */
void WriteCsvFile(const std::string& path,
                  const std::vector<NamedSeries>& columns);

/**
 * Write a two-column "time_s value" block per series, separated by
 * blank lines and titled with '#' comments — gnuplot's `index` format.
 */
void WriteGnuplot(std::ostream& out, const std::vector<NamedSeries>& columns);

/** Point-in-time value of one instrument. */
struct MetricValue
{
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    std::uint64_t count = 0;  ///< Counter value / histogram count.
    double value = 0.0;       ///< Gauge value.
    double sum = 0.0;         ///< Histogram sum.
    double min = 0.0;         ///< Histogram min.
    double max = 0.0;         ///< Histogram max.
    std::vector<double> bounds;               ///< Histogram bounds.
    std::vector<std::uint64_t> bucket_counts; ///< bounds.size() + 1.
};

/** Copy of every instrument's value at one instant. */
struct MetricsSnapshot
{
    std::vector<MetricValue> metrics;
};

/** Snapshot the registry (values copied, registration order kept). */
MetricsSnapshot SnapshotOf(const MetricsRegistry& registry);

/**
 * Line-oriented text format, one `metric <name> <kind> ...` line per
 * instrument. Doubles use 17 significant digits so ParseMetricsText
 * reproduces the snapshot bit-exactly.
 */
void WriteMetricsText(std::ostream& out, const MetricsSnapshot& snapshot);

/** Parse WriteMetricsText output; throws std::runtime_error on a
 * malformed line. */
MetricsSnapshot ParseMetricsText(std::istream& in);

/** JSON object {"metrics": [...]} with one entry per instrument. */
void WriteMetricsJson(std::ostream& out, const MetricsSnapshot& snapshot);

/**
 * Exact equality (names, kinds, counts, bit-exact doubles) — the
 * round-trip check. On mismatch, returns false and (if `why` is
 * non-null) describes the first difference.
 */
bool SnapshotsEqual(const MetricsSnapshot& a, const MetricsSnapshot& b,
                    std::string* why = nullptr);

/**
 * Human-readable rendering of one span: header line naming the band
 * transition and measured-vs-threshold evidence, then one indented
 * line per priority-group cut and per-target allocation. `indent` is
 * the number of leading spaces on the header.
 */
void WriteTraceSpan(std::ostream& out, const TraceSpan& span, int indent = 0);

/**
 * Render retained spans as parent→child trees, oldest root first.
 * Spans whose parent was evicted (or never traced) are roots.
 */
void WriteTraceTree(std::ostream& out, const TraceLog& log);

/** JSON array of span objects (flat; parent linkage via ids). */
void WriteTraceJson(std::ostream& out, const TraceLog& log);

}  // namespace dynamo::telemetry

#endif  // DYNAMO_TELEMETRY_EXPORT_H_
