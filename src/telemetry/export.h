/**
 * @file
 * Time-series export for offline analysis.
 *
 * Writes one or more aligned series as CSV (and a gnuplot-friendly
 * whitespace format) so bench outputs can be re-plotted against the
 * paper's figures without re-running the simulation.
 */
#ifndef DYNAMO_TELEMETRY_EXPORT_H_
#define DYNAMO_TELEMETRY_EXPORT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/timeseries.h"

namespace dynamo::telemetry {

/** One named column for export. */
struct NamedSeries
{
    std::string name;
    const TimeSeries* series = nullptr;
};

/**
 * Write CSV with a time column (seconds) plus one column per series.
 * Rows follow the first series' timestamps; other series contribute
 * their most recent value at or before each timestamp (empty cell if
 * none yet). Throws std::invalid_argument when no series is given.
 */
void WriteCsv(std::ostream& out, const std::vector<NamedSeries>& columns);

/** WriteCsv to a file; throws std::runtime_error on failure. */
void WriteCsvFile(const std::string& path,
                  const std::vector<NamedSeries>& columns);

/**
 * Write a two-column "time_s value" block per series, separated by
 * blank lines and titled with '#' comments — gnuplot's `index` format.
 */
void WriteGnuplot(std::ostream& out, const std::vector<NamedSeries>& columns);

}  // namespace dynamo::telemetry

#endif  // DYNAMO_TELEMETRY_EXPORT_H_
