#include "telemetry/trace.h"

namespace dynamo::telemetry {

const char*
SpanKindName(SpanKind kind)
{
    switch (kind) {
      case SpanKind::kLeafDecision: return "leaf";
      case SpanKind::kUpperDecision: return "upper";
    }
    return "?";
}

const char*
TraceBandName(TraceBand band)
{
    switch (band) {
      case TraceBand::kNone: return "none";
      case TraceBand::kCap: return "cap";
      case TraceBand::kUncap: return "uncap";
      case TraceBand::kHold: return "hold";
    }
    return "?";
}

std::string
TraceTransitionName(const TraceSpan& span)
{
    const char* from = span.was_capping ? "capping" : "settled";
    const char* to = "?";
    switch (span.band) {
      case TraceBand::kNone: to = span.was_capping ? "capping" : "settled"; break;
      case TraceBand::kCap: to = "capping"; break;
      case TraceBand::kUncap: to = "released"; break;
      case TraceBand::kHold: to = "held"; break;
    }
    return std::string(from) + "->" + to;
}

TraceLog::TraceLog(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{
}

SpanId
TraceLog::Append(TraceSpan span)
{
    span.id = next_id_++;
    spans_.push_back(std::move(span));
    while (spans_.size() > capacity_) {
        spans_.pop_front();
        ++evicted_;
    }
    return spans_.back().id;
}

const TraceSpan*
TraceLog::Find(SpanId id) const
{
    if (spans_.empty()) return nullptr;
    const SpanId first = spans_.front().id;
    if (id < first || id >= next_id_) return nullptr;
    return &spans_[static_cast<std::size_t>(id - first)];
}

std::vector<const TraceSpan*>
TraceLog::ChildrenOf(SpanId id) const
{
    std::vector<const TraceSpan*> out;
    for (const TraceSpan& span : spans_) {
        if (span.parent == id) out.push_back(&span);
    }
    return out;
}

void
TraceLog::Clear()
{
    spans_.clear();
}

}  // namespace dynamo::telemetry
