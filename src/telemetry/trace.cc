#include "telemetry/trace.h"

#include <utility>

#include "common/archive.h"

namespace dynamo::telemetry {

const char*
SpanKindName(SpanKind kind)
{
    switch (kind) {
      case SpanKind::kLeafDecision: return "leaf";
      case SpanKind::kUpperDecision: return "upper";
    }
    return "?";
}

const char*
TraceBandName(TraceBand band)
{
    switch (band) {
      case TraceBand::kNone: return "none";
      case TraceBand::kCap: return "cap";
      case TraceBand::kUncap: return "uncap";
      case TraceBand::kHold: return "hold";
    }
    return "?";
}

std::string
TraceTransitionName(const TraceSpan& span)
{
    const char* from = span.was_capping ? "capping" : "settled";
    const char* to = "?";
    switch (span.band) {
      case TraceBand::kNone: to = span.was_capping ? "capping" : "settled"; break;
      case TraceBand::kCap: to = "capping"; break;
      case TraceBand::kUncap: to = "released"; break;
      case TraceBand::kHold: to = "held"; break;
    }
    return std::string(from) + "->" + to;
}

TraceLog::TraceLog(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{
}

SpanId
TraceLog::Append(TraceSpan span)
{
    span.id = next_id_++;
    spans_.push_back(std::move(span));
    while (spans_.size() > capacity_) {
        spans_.pop_front();
        ++evicted_;
    }
    return spans_.back().id;
}

const TraceSpan*
TraceLog::Find(SpanId id) const
{
    if (spans_.empty()) return nullptr;
    const SpanId first = spans_.front().id;
    if (id < first || id >= next_id_) return nullptr;
    return &spans_[static_cast<std::size_t>(id - first)];
}

std::vector<const TraceSpan*>
TraceLog::ChildrenOf(SpanId id) const
{
    std::vector<const TraceSpan*> out;
    for (const TraceSpan& span : spans_) {
        if (span.parent == id) out.push_back(&span);
    }
    return out;
}

void
TraceLog::Clear()
{
    spans_.clear();
}

void
WriteSpan(Archive& ar, const TraceSpan& span)
{
    ar.U64(span.id);
    ar.U64(span.parent);
    ar.I64(span.time);
    ar.U8(static_cast<std::uint8_t>(span.kind));
    ar.Str(span.source);
    ar.U8(static_cast<std::uint8_t>(span.band));
    ar.Bool(span.was_capping);
    ar.U64(span.epoch);
    ar.F64(span.measured);
    ar.F64(span.limit);
    ar.F64(span.threshold);
    ar.F64(span.target);
    ar.F64(span.cut);
    ar.F64(span.planned_cut);
    ar.Bool(span.satisfied);
    ar.Bool(span.dry_run);
    ar.U64(span.groups.size());
    for (const TraceGroupCut& g : span.groups) {
        ar.I64(g.priority_group);
        ar.F64(g.cut);
        ar.I64(g.servers);
    }
    ar.U64(span.allocs.size());
    for (const TraceAllocation& a : span.allocs) {
        ar.Str(a.target);
        ar.F64(a.power);
        ar.F64(a.floor);
        ar.F64(a.quota);
        ar.F64(a.cut);
        ar.F64(a.limit_sent);
        ar.I64(a.bucket);
        ar.Bool(a.offender);
    }
}

TraceSpan
ReadSpan(ArchiveReader& ar)
{
    TraceSpan span;
    span.id = ar.U64();
    span.parent = ar.U64();
    span.time = ar.I64();
    span.kind = static_cast<SpanKind>(ar.U8());
    span.source = ar.Str();
    span.band = static_cast<TraceBand>(ar.U8());
    span.was_capping = ar.Bool();
    span.epoch = ar.U64();
    span.measured = ar.F64();
    span.limit = ar.F64();
    span.threshold = ar.F64();
    span.target = ar.F64();
    span.cut = ar.F64();
    span.planned_cut = ar.F64();
    span.satisfied = ar.Bool();
    span.dry_run = ar.Bool();
    const std::uint64_t groups = ar.U64();
    span.groups.reserve(groups);
    for (std::uint64_t i = 0; i < groups; ++i) {
        TraceGroupCut g;
        g.priority_group = static_cast<int>(ar.I64());
        g.cut = ar.F64();
        g.servers = static_cast<int>(ar.I64());
        span.groups.push_back(g);
    }
    const std::uint64_t allocs = ar.U64();
    span.allocs.reserve(allocs);
    for (std::uint64_t i = 0; i < allocs; ++i) {
        TraceAllocation a;
        a.target = ar.Str();
        a.power = ar.F64();
        a.floor = ar.F64();
        a.quota = ar.F64();
        a.cut = ar.F64();
        a.limit_sent = ar.F64();
        a.bucket = static_cast<int>(ar.I64());
        a.offender = ar.Bool();
        span.allocs.push_back(std::move(a));
    }
    return span;
}

bool
SpansIdentical(const TraceSpan& a, const TraceSpan& b)
{
    // Serialize-and-compare gives bit-exact double comparison (NaN-safe,
    // -0.0 != +0.0) with no field forgotten when TraceSpan grows.
    Archive aa;
    Archive ab;
    WriteSpan(aa, a);
    WriteSpan(ab, b);
    return aa.bytes() == ab.bytes();
}

void
TraceLog::Snapshot(Archive& ar) const
{
    ar.U64(capacity_);
    ar.U64(next_id_);
    ar.U64(evicted_);
    ar.U64(spans_.size());
    for (const TraceSpan& span : spans_) WriteSpan(ar, span);
}

void
TraceLog::Restore(ArchiveReader& ar)
{
    capacity_ = ar.U64();
    next_id_ = ar.U64();
    evicted_ = ar.U64();
    const std::uint64_t count = ar.U64();
    spans_.clear();
    for (std::uint64_t i = 0; i < count; ++i) spans_.push_back(ReadSpan(ar));
}

}  // namespace dynamo::telemetry
