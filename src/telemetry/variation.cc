#include "telemetry/variation.h"

#include <algorithm>
#include <limits>

namespace dynamo::telemetry {

std::vector<double>
WindowVariations(const TimeSeries& series, SimTime window)
{
    std::vector<double> variations;
    if (series.empty() || window <= 0) return variations;

    const SimTime start = series.StartTime();
    SimTime window_end = start + window;
    double lo = series.at(0).value;
    double hi = series.at(0).value;
    bool have_sample = false;
    // The last sample before a window opens seeds it (when it is
    // recent enough to belong to the adjacent window), so a window of
    // one sampling period measures consecutive-sample deltas — the
    // Fig. 4 "power slope" reading of max-minus-min over the window.
    double carry = series.at(0).value;
    SimTime carry_time = std::numeric_limits<SimTime>::min();

    for (std::size_t i = 0; i < series.size(); ++i) {
        const Sample& s = series.at(i);
        while (s.time >= window_end) {
            if (have_sample) {
                variations.push_back(hi - lo);
                carry = series.at(i - 1).value;
                carry_time = series.at(i - 1).time;
            }
            window_end += window;
            have_sample = false;
        }
        if (!have_sample) {
            lo = hi = s.value;
            if (carry_time >= window_end - 2 * window) {
                lo = std::min(lo, carry);
                hi = std::max(hi, carry);
            }
            have_sample = true;
        } else {
            lo = std::min(lo, s.value);
            hi = std::max(hi, s.value);
        }
    }
    if (have_sample) variations.push_back(hi - lo);
    return variations;
}

std::vector<double>
NormalizedWindowVariations(const TimeSeries& series, SimTime window)
{
    std::vector<double> variations = WindowVariations(series, window);
    const double norm = series.PeakHoursMean();
    if (norm <= 0.0) return variations;
    for (double& v : variations) v = v / norm * 100.0;
    return variations;
}

VariationSummary
SummarizeVariation(const TimeSeries& series, SimTime window)
{
    std::vector<double> vars = NormalizedWindowVariations(series, window);
    VariationSummary summary;
    summary.window = window;
    summary.window_count = vars.size();
    summary.p50 = Percentile(vars, 50.0);
    summary.p99 = Percentile(std::move(vars), 99.0);
    return summary;
}

double
MaxPowerSlope(const TimeSeries& series)
{
    double max_slope = 0.0;
    for (std::size_t i = 1; i < series.size(); ++i) {
        const Sample& a = series.at(i - 1);
        const Sample& b = series.at(i);
        const double dt_s = ToSeconds(b.time - a.time);
        if (dt_s <= 0.0) continue;
        max_slope = std::max(max_slope, (b.value - a.value) / dt_s);
    }
    return max_slope;
}

}  // namespace dynamo::telemetry
