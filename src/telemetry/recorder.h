/**
 * @file
 * Periodic samplers bound to the simulation clock.
 *
 * A Recorder polls an arbitrary probe (device power, server count,
 * controller state) at a fixed period and appends into a TimeSeries —
 * the simulated counterpart of the fleet's 3 s power collection.
 */
#ifndef DYNAMO_TELEMETRY_RECORDER_H_
#define DYNAMO_TELEMETRY_RECORDER_H_

#include <functional>

#include "sim/simulation.h"
#include "telemetry/timeseries.h"

namespace dynamo::telemetry {

/** Samples `probe` every `period` ms into `series`. */
class Recorder
{
  public:
    using Probe = std::function<double()>;

    /**
     * Sampling starts `period` after construction (then every period).
     * `series` must outlive the recorder.
     */
    Recorder(sim::Simulation& sim, SimTime period, Probe probe, TimeSeries* series);

    ~Recorder() { task_.Cancel(); }

    Recorder(const Recorder&) = delete;
    Recorder& operator=(const Recorder&) = delete;

    /** Stop sampling early. */
    void Stop() { task_.Cancel(); }

  private:
    sim::TaskHandle task_;
};

}  // namespace dynamo::telemetry

#endif  // DYNAMO_TELEMETRY_RECORDER_H_
