/**
 * @file
 * Power-variation analysis (Section II-B of the paper).
 *
 * For a time window W, the worst-case power variation is the
 * difference between the maximum and minimum power values within the
 * window (Fig. 4). Variations from many (non-overlapping) windows
 * across a study period form a distribution; the paper reports its CDF
 * normalized to the average power during peak hours, for windows of
 * 3 s to 600 s, at every level of the hierarchy (Fig. 5) and per
 * service (Fig. 6).
 */
#ifndef DYNAMO_TELEMETRY_VARIATION_H_
#define DYNAMO_TELEMETRY_VARIATION_H_

#include <vector>

#include "common/stats.h"
#include "common/units.h"
#include "telemetry/timeseries.h"

namespace dynamo::telemetry {

/**
 * Max-minus-min variation in each consecutive non-overlapping window
 * of `window` milliseconds, in raw units (watts).
 */
std::vector<double> WindowVariations(const TimeSeries& series, SimTime window);

/**
 * Window variations normalized (percent) by the series' peak-hours
 * mean, matching the paper's Fig. 5 / Fig. 6 x-axes.
 */
std::vector<double> NormalizedWindowVariations(const TimeSeries& series,
                                               SimTime window);

/** Summary of a variation distribution at one window size. */
struct VariationSummary
{
    SimTime window;
    double p50;
    double p99;
    std::size_t window_count;
};

/** Compute the normalized-variation summary for one window size. */
VariationSummary SummarizeVariation(const TimeSeries& series, SimTime window);

/**
 * The paper's power-slope metric: maximum increase (watts per second)
 * between consecutive samples, over the whole series.
 */
double MaxPowerSlope(const TimeSeries& series);

}  // namespace dynamo::telemetry

#endif  // DYNAMO_TELEMETRY_VARIATION_H_
