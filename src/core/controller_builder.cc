#include "core/controller_builder.h"

#include <stdexcept>
#include <utility>

namespace dynamo::core {

ControllerBuilder::ControllerBuilder(sim::Simulation& sim,
                                     rpc::Transport& transport)
    : sim_(sim), transport_(transport)
{
}

ControllerBuilder&
ControllerBuilder::Endpoint(std::string endpoint)
{
    endpoint_ = std::move(endpoint);
    return *this;
}

ControllerBuilder&
ControllerBuilder::ForDevice(power::PowerDevice& device)
{
    device_ = &device;
    return *this;
}

ControllerBuilder&
ControllerBuilder::Limits(Watts physical_limit, Watts quota)
{
    if (physical_limit <= 0.0 || quota <= 0.0 || quota > physical_limit) {
        throw std::invalid_argument(
            "ControllerBuilder: Limits requires 0 < quota <= physical_limit; "
            "got physical=" + std::to_string(physical_limit) +
            " quota=" + std::to_string(quota));
    }
    physical_limit_ = physical_limit;
    quota_ = quota;
    return *this;
}

ControllerBuilder&
ControllerBuilder::LeafConfig(LeafController::Config config)
{
    leaf_config_ = std::move(config);
    return *this;
}

ControllerBuilder&
ControllerBuilder::UpperConfig(UpperController::Config config)
{
    upper_config_ = std::move(config);
    return *this;
}

ControllerBuilder&
ControllerBuilder::Policy(policy::PolicyKind kind)
{
    policy_ = kind;
    return *this;
}

ControllerBuilder&
ControllerBuilder::Log(telemetry::EventLog* log)
{
    log_ = log;
    return *this;
}

ControllerBuilder&
ControllerBuilder::Telemetry(telemetry::MetricsRegistry* metrics,
                             telemetry::TraceLog* traces)
{
    metrics_ = metrics;
    traces_ = traces;
    return *this;
}

ControllerBuilder&
ControllerBuilder::Agent(AgentInfo info)
{
    agents_.push_back(std::move(info));
    return *this;
}

ControllerBuilder&
ControllerBuilder::Child(std::string endpoint)
{
    children_.push_back(std::move(endpoint));
    return *this;
}

std::unique_ptr<LeafController>
ControllerBuilder::BuildLeaf() const
{
    if (endpoint_.empty()) {
        throw std::invalid_argument("ControllerBuilder: Endpoint is required");
    }
    if (device_ == nullptr) {
        throw std::invalid_argument(
            "ControllerBuilder: a leaf controller protects a concrete "
            "device; call ForDevice");
    }
    if (physical_limit_) {
        throw std::invalid_argument(
            "ControllerBuilder: leaf limits come from the device; "
            "Limits is for device-less uppers only");
    }
    if (upper_config_) {
        throw std::invalid_argument(
            "ControllerBuilder: UpperConfig set but BuildLeaf called");
    }
    if (!children_.empty()) {
        throw std::invalid_argument(
            "ControllerBuilder: child controllers belong to uppers; "
            "a leaf roster is added with Agent");
    }
    LeafController::Config config =
        leaf_config_ ? *leaf_config_ : LeafController::Config{};
    if (policy_) config.capping_policy = *policy_;
    std::unique_ptr<LeafController> leaf(new LeafController(
        sim_, transport_, endpoint_, *device_, config, log_));
    for (const AgentInfo& info : agents_) leaf->AddAgent(info);
    if (metrics_ != nullptr || traces_ != nullptr) {
        leaf->AttachTelemetry(metrics_, traces_);
    }
    return leaf;
}

std::unique_ptr<UpperController>
ControllerBuilder::BuildUpper() const
{
    if (endpoint_.empty()) {
        throw std::invalid_argument("ControllerBuilder: Endpoint is required");
    }
    if (device_ != nullptr && physical_limit_) {
        throw std::invalid_argument(
            "ControllerBuilder: ForDevice and Limits are mutually "
            "exclusive (ambiguous limit source)");
    }
    if (device_ == nullptr && !physical_limit_) {
        throw std::invalid_argument(
            "ControllerBuilder: an upper controller needs its limits; "
            "call ForDevice or Limits");
    }
    if (leaf_config_) {
        throw std::invalid_argument(
            "ControllerBuilder: LeafConfig set but BuildUpper called");
    }
    if (!agents_.empty()) {
        throw std::invalid_argument(
            "ControllerBuilder: agents belong to leaves; an upper "
            "roster is added with Child");
    }
    const Watts physical =
        device_ != nullptr ? device_->rated_power() : *physical_limit_;
    const Watts quota = device_ != nullptr ? device_->quota() : *quota_;
    UpperController::Config config =
        upper_config_ ? *upper_config_ : UpperController::Config{};
    if (policy_) config.capping_policy = *policy_;
    std::unique_ptr<UpperController> upper(new UpperController(
        sim_, transport_, endpoint_, physical, quota, config, log_));
    for (const std::string& child : children_) upper->AddChild(child);
    if (metrics_ != nullptr || traces_ != nullptr) {
        upper->AttachTelemetry(metrics_, traces_);
    }
    return upper;
}

}  // namespace dynamo::core
