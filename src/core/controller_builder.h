/**
 * @file
 * The single construction path for Dynamo controllers.
 *
 * Historically controllers grew two ways to come to life: tests
 * aggregate-initialized them directly, while deployment.cc had its own
 * wiring (limits pulled out of the device, telemetry attached in a
 * second pass). The two drifted — and with sharded execution a
 * mis-wired controller (wrong limits, missing trace log, roster on the
 * wrong level) becomes a cross-thread bug. ControllerBuilder is now
 * the only way to construct a LeafController or UpperController: the
 * concrete constructors are protected (subclassing for tests and
 * benchmarks remains possible), and every wiring rule is validated
 * loudly at Build time.
 *
 * The builder is reusable: Build* does not consume its state, so a
 * primary/backup pair comes from one configured builder via two Build
 * calls (deployment failover relies on this — both instances must be
 * configured identically or the promoted backup behaves differently).
 */
#ifndef DYNAMO_CORE_CONTROLLER_BUILDER_H_
#define DYNAMO_CORE_CONTROLLER_BUILDER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/leaf_controller.h"
#include "core/upper_controller.h"

namespace dynamo::core {

/** Fluent, validated construction of leaf and upper controllers. */
class ControllerBuilder
{
  public:
    ControllerBuilder(sim::Simulation& sim, rpc::Transport& transport);

    /** Logical endpoint name (required, non-empty). */
    ControllerBuilder& Endpoint(std::string endpoint);

    /**
     * The protected power device. For leaves this is required (the
     * controller validates against and estimates for this breaker);
     * for uppers it supplies rated power and quota, replacing the old
     * hand-extracted `device.rated_power(), device.quota()` pair.
     */
    ControllerBuilder& ForDevice(power::PowerDevice& device);

    /**
     * Explicit limits for device-less upper controllers (test rigs
     * that model the SB as raw watts). Mutually exclusive with
     * ForDevice; requires 0 < quota <= physical_limit.
     */
    ControllerBuilder& Limits(Watts physical_limit, Watts quota);

    ControllerBuilder& LeafConfig(LeafController::Config config);
    ControllerBuilder& UpperConfig(UpperController::Config config);

    /**
     * Select the capping brain for the built controller (leaf or
     * upper). Applied on top of the Leaf/UpperConfig — or the default
     * config — at Build time, so callers that only care about the
     * brain don't have to spell out a full config.
     */
    ControllerBuilder& Policy(policy::PolicyKind kind);

    /** Event log sink (may be nullptr; default none). */
    ControllerBuilder& Log(telemetry::EventLog* log);

    /** Metrics + decision traces, attached at Build (either nullable). */
    ControllerBuilder& Telemetry(telemetry::MetricsRegistry* metrics,
                                 telemetry::TraceLog* traces);

    /** Add one downstream agent (leaf only). */
    ControllerBuilder& Agent(AgentInfo info);

    /** Add one child controller endpoint (upper only). */
    ControllerBuilder& Child(std::string endpoint);

    /**
     * @throws std::invalid_argument on wiring errors: empty endpoint,
     *         no device, a child roster (children belong to uppers),
     *         an upper config, or explicit Limits (leaf limits come
     *         from the device). Config-value violations propagate from
     *         the Controller constructor.
     */
    std::unique_ptr<LeafController> BuildLeaf() const;

    /**
     * @throws std::invalid_argument on wiring errors: empty endpoint,
     *         neither device nor Limits (or ambiguously both), an
     *         agent roster (agents belong to leaves), or a leaf
     *         config. Config-value violations propagate from the
     *         Controller constructor.
     */
    std::unique_ptr<UpperController> BuildUpper() const;

  private:
    sim::Simulation& sim_;
    rpc::Transport& transport_;
    std::string endpoint_;
    power::PowerDevice* device_ = nullptr;
    std::optional<Watts> physical_limit_;
    std::optional<Watts> quota_;
    std::optional<LeafController::Config> leaf_config_;
    std::optional<UpperController::Config> upper_config_;
    std::optional<policy::PolicyKind> policy_;
    telemetry::EventLog* log_ = nullptr;
    telemetry::MetricsRegistry* metrics_ = nullptr;
    telemetry::TraceLog* traces_ = nullptr;
    std::vector<AgentInfo> agents_;
    std::vector<std::string> children_;
};

}  // namespace dynamo::core

#endif  // DYNAMO_CORE_CONTROLLER_BUILDER_H_
