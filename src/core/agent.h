/**
 * @file
 * The Dynamo agent (Section III-B).
 *
 * A deliberately thin request-handler daemon on every server: it reads
 * host power (sensor firmware if present, estimation model otherwise)
 * and executes cap/uncap commands through RAPL. All intelligence lives
 * in the controllers; agents never talk to each other. The agent can
 * be crashed and restarted to exercise the watchdog and the
 * controller's pull-failure estimation paths.
 */
#ifndef DYNAMO_CORE_AGENT_H_
#define DYNAMO_CORE_AGENT_H_

#include <cstdint>
#include <string>

#include "common/archive.h"
#include "core/api.h"
#include "rpc/transport.h"
#include "server/sim_server.h"
#include "sim/simulation.h"

namespace dynamo::telemetry {
class Counter;
class MetricsRegistry;
}  // namespace dynamo::telemetry

namespace dynamo::core {

/** One server's Dynamo agent. */
class DynamoAgent
{
  public:
    /**
     * @param sim        Simulation clock (reads are timestamped on it).
     * @param transport  RPC transport to register on.
     * @param server     Host server (not owned; must outlive the agent).
     * @param endpoint   Transport endpoint name, unique per server.
     */
    DynamoAgent(sim::Simulation& sim, rpc::Transport& transport,
                server::SimServer& server, std::string endpoint);

    ~DynamoAgent();

    DynamoAgent(const DynamoAgent&) = delete;
    DynamoAgent& operator=(const DynamoAgent&) = delete;

    const std::string& endpoint() const { return endpoint_; }

    /** Interned id of this agent's endpoint (hot-path RPC key). */
    rpc::EndpointId endpoint_id() const { return endpoint_id_; }
    server::SimServer& server() { return server_; }

    /** Simulate an agent crash: stop serving requests. */
    void Crash();

    /** Restart after a crash (what the watchdog does). */
    void Restart();

    bool alive() const { return alive_; }

    std::uint64_t reads_served() const { return reads_served_; }
    std::uint64_t caps_applied() const { return caps_applied_; }
    std::uint64_t uncaps_applied() const { return uncaps_applied_; }
    std::uint64_t tunes_applied() const { return tunes_applied_; }

    /**
     * Wire fleet-wide agent counters (`agent.reads`, `agent.caps`,
     * `agent.uncaps`, `agent.tunes`) into `registry`; every agent
     * shares the same instruments, so cardinality stays O(1). Pass
     * nullptr to detach.
     */
    void AttachMetrics(telemetry::MetricsRegistry* registry);

    /** Serialize liveness and served-command counters (canonical). */
    void Snapshot(Archive& ar) const
    {
        ar.Str(endpoint_);
        ar.Bool(alive_);
        ar.U64(reads_served_);
        ar.U64(caps_applied_);
        ar.U64(uncaps_applied_);
        ar.U64(tunes_applied_);
    }

  private:
    rpc::Payload Handle(const rpc::Payload& request);

    sim::Simulation& sim_;
    rpc::Transport& transport_;
    server::SimServer& server_;
    std::string endpoint_;
    rpc::EndpointId endpoint_id_ = rpc::kInvalidEndpoint;
    bool alive_ = false;
    std::uint64_t reads_served_ = 0;
    std::uint64_t caps_applied_ = 0;
    std::uint64_t uncaps_applied_ = 0;
    std::uint64_t tunes_applied_ = 0;

    /** Cached metric handles; null when no registry is attached. */
    telemetry::Counter* m_reads_ = nullptr;
    telemetry::Counter* m_caps_ = nullptr;
    telemetry::Counter* m_uncaps_ = nullptr;
    telemetry::Counter* m_tunes_ = nullptr;
};

}  // namespace dynamo::core

#endif  // DYNAMO_CORE_AGENT_H_
