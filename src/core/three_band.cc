#include "core/three_band.h"

#include <cassert>

namespace dynamo::core {

ThreeBandPolicy::ThreeBandPolicy(ThreeBandConfig config) : config_(config)
{
    assert(config_.Valid() && "three-band thresholds must be ordered");
}

BandDecision
ThreeBandPolicy::Evaluate(Watts aggregated, Watts limit, bool allow_uncap)
{
    BandDecision decision;
    const Watts cap_threshold = config_.cap_threshold_frac * limit;
    const Watts cap_target = config_.cap_target_frac * limit;
    const Watts uncap_threshold = config_.uncap_threshold_frac * limit;

    if (aggregated > cap_threshold) {
        decision.action = BandAction::kCap;
        decision.target = cap_target;
        decision.cut = aggregated - cap_target;
        capping_ = true;
    } else if (capping_ && aggregated < uncap_threshold) {
        if (allow_uncap) {
            decision.action = BandAction::kUncap;
            capping_ = false;
        } else {
            decision.action = BandAction::kHold;
        }
    }
    return decision;
}

}  // namespace dynamo::core
