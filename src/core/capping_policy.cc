#include "core/capping_policy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace dynamo::core {
namespace {

constexpr Watts kEpsilon = 1e-6;

/**
 * Even water-fill of `cut` across `included` items bounded by
 * per-item headroom, accumulating into `cuts`. The active set is
 * compacted in place each round instead of rebuilt; the arithmetic
 * (iteration order, per-round split, exit condition) is identical to
 * the reference implementation, so results are bit-equal.
 */
void
WaterFillInPlace(std::vector<std::uint32_t>& active,
                 const std::vector<std::uint32_t>& included,
                 const Watts* headroom, Watts cut, Watts* cuts)
{
    active.clear();
    for (std::uint32_t i : included) {
        if (headroom[i] - cuts[i] > kEpsilon) active.push_back(i);
    }
    std::size_t n_active = active.size();
    Watts left = cut;
    while (left > kEpsilon && n_active > 0) {
        const Watts per = left / static_cast<double>(n_active);
        std::size_t keep = 0;
        for (std::size_t r = 0; r < n_active; ++r) {
            const std::uint32_t i = active[r];
            const Watts avail = headroom[i] - cuts[i];
            const Watts take = std::min(per, avail);
            cuts[i] += take;
            left -= take;
            if (headroom[i] - cuts[i] > kEpsilon) active[keep++] = i;
        }
        if (keep == n_active) break;  // everyone took `per`; done
        n_active = keep;
    }
}

/**
 * Core of BucketedEvenCut over an index subset: items[0..n) select
 * rows of powers/floors, per-item cuts land in cuts[items[r]] (which
 * must be zero on entry for those rows). Scratch comes from `ws`.
 */
void
BucketedEvenCutInto(const Watts* powers, const Watts* floors,
                    const std::uint32_t* item_indices, std::size_t n, Watts cut,
                    Watts bucket_size, CappingWorkspace& ws, Watts* cuts)
{
    if (cut <= kEpsilon || n == 0) return;

    Watts max_power = powers[item_indices[0]];
    for (std::size_t r = 1; r < n; ++r) {
        max_power = std::max(max_power, powers[item_indices[r]]);
    }

    // Degenerate bucket: pure water-filling — find the level L such
    // that shaving every item down to max(L, floor) yields the cut.
    if (bucket_size <= kEpsilon) {
        Watts lo = floors[item_indices[0]];
        for (std::size_t r = 1; r < n; ++r) {
            lo = std::min(lo, floors[item_indices[r]]);
        }
        Watts hi = max_power;
        auto capacity_at = [&](Watts level) {
            Watts c = 0.0;
            for (std::size_t r = 0; r < n; ++r) {
                const std::uint32_t i = item_indices[r];
                c += std::max(0.0, powers[i] - std::max(level, floors[i]));
            }
            return c;
        };
        if (capacity_at(lo) <= cut) {
            hi = lo;  // cut exceeds headroom: shave to the floors
        }
        for (int iter = 0; iter < 64 && hi - lo > 1e-9; ++iter) {
            const Watts mid = 0.5 * (lo + hi);
            (capacity_at(mid) > cut ? lo : hi) = mid;
        }
        for (std::size_t r = 0; r < n; ++r) {
            const std::uint32_t i = item_indices[r];
            cuts[i] = std::max(0.0, powers[i] - std::max(hi, floors[i]));
        }
        return;
    }

    Watts bucket_floor = std::floor(max_power / bucket_size) * bucket_size;
    Watts* headroom = ws.headroom.data();

    // Expand the included bucket range downward until the headroom
    // above max(bucket floor, item floor) covers the cut or everything
    // is included down to the item floors.
    while (true) {
        ws.included.clear();
        Watts capacity = 0.0;
        Watts min_floor = std::numeric_limits<Watts>::infinity();
        for (std::size_t r = 0; r < n; ++r) {
            const std::uint32_t i = item_indices[r];
            min_floor = std::min(min_floor, floors[i]);
            const Watts eff_floor = std::max(bucket_floor, floors[i]);
            if (powers[i] > eff_floor + kEpsilon) {
                ws.included.push_back(i);
                headroom[i] = powers[i] - eff_floor;
                capacity += headroom[i];
            }
        }
        const bool fully_expanded = bucket_floor <= min_floor;
        if (capacity >= cut - kEpsilon || fully_expanded) {
            WaterFillInPlace(ws.active, ws.included, headroom,
                             std::min(cut, capacity), cuts);
            return;
        }
        bucket_floor -= bucket_size;
    }
}

/** Cut proportional to each item's headroom above its floor. */
void
ProportionalCutInto(const Watts* powers, const Watts* floors,
                    const std::uint32_t* item_indices, std::size_t n, Watts cut,
                    Watts* cuts)
{
    Watts total_headroom = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
        const std::uint32_t i = item_indices[r];
        total_headroom += std::max(0.0, powers[i] - floors[i]);
    }
    if (total_headroom <= kEpsilon) return;
    const double frac = std::min(1.0, cut / total_headroom);
    for (std::size_t r = 0; r < n; ++r) {
        const std::uint32_t i = item_indices[r];
        cuts[i] = frac * std::max(0.0, powers[i] - floors[i]);
    }
}

void
GroupCutInto(const Watts* powers, const Watts* floors,
             const std::uint32_t* item_indices, std::size_t n, Watts cut,
             Watts bucket_size, AllocationPolicy policy, CappingWorkspace& ws,
             Watts* cuts)
{
    switch (policy) {
      case AllocationPolicy::kHighBucketFirst:
        BucketedEvenCutInto(powers, floors, item_indices, n, cut, bucket_size,
                            ws, cuts);
        return;
      case AllocationPolicy::kProportional:
        ProportionalCutInto(powers, floors, item_indices, n, cut, cuts);
        return;
      case AllocationPolicy::kWaterFill:
        BucketedEvenCutInto(powers, floors, item_indices, n, cut, 0.0, ws,
                            cuts);
        return;
    }
}

}  // namespace

void
CappingWorkspace::Prepare(std::size_t n)
{
    powers.resize(n);
    floors.resize(n);
    headroom.resize(n);
    cuts.resize(n);
    stage.resize(n);
    order.resize(n);
    items.reserve(n);
    included.reserve(n);
    active.reserve(n);
}

const char*
AllocationPolicyName(AllocationPolicy policy)
{
    switch (policy) {
      case AllocationPolicy::kHighBucketFirst: return "high-bucket-first";
      case AllocationPolicy::kProportional: return "proportional";
      case AllocationPolicy::kWaterFill: return "water-fill";
    }
    return "?";
}

void
BucketedEvenCut(const std::vector<Watts>& powers,
                const std::vector<Watts>& floors, Watts cut, Watts bucket_size,
                CappingWorkspace& ws)
{
    const std::size_t n = powers.size();
    ws.Prepare(n);
    std::fill(ws.cuts.begin(), ws.cuts.end(), 0.0);
    std::iota(ws.order.begin(), ws.order.end(), 0u);
    BucketedEvenCutInto(powers.data(), floors.data(), ws.order.data(), n, cut,
                        bucket_size, ws, ws.cuts.data());
}

std::vector<Watts>
BucketedEvenCut(const std::vector<Watts>& powers, const std::vector<Watts>& floors,
                Watts cut, Watts bucket_size)
{
    CappingWorkspace ws;
    BucketedEvenCut(powers, floors, cut, bucket_size, ws);
    return ws.cuts;
}

void
ComputeCappingPlan(const std::vector<ServerPowerInfo>& servers,
                   Watts total_power_cut, Watts bucket_size,
                   AllocationPolicy policy, CappingWorkspace& ws,
                   CappingPlan* plan)
{
    plan->assignments.clear();
    plan->planned_cut = 0.0;
    plan->satisfied = false;
    if (total_power_cut <= kEpsilon) {
        plan->satisfied = true;
        return;
    }

    const std::size_t n = servers.size();
    ws.Prepare(n);
    bool single_group = true;
    for (std::size_t i = 0; i < n; ++i) {
        ws.powers[i] = servers[i].power;
        ws.floors[i] = servers[i].sla_min_cap;
        ws.cuts[i] = 0.0;
        single_group = single_group &&
                       servers[i].priority_group == servers[0].priority_group;
    }

    // Priority grouping as one sort-index pass: a stable sort on the
    // group key yields contiguous runs per group, lowest first, with
    // members in input order inside each run — the same member order a
    // per-group map of index lists would produce. The common
    // one-group roster skips the sort entirely.
    std::iota(ws.order.begin(), ws.order.end(), 0u);
    if (!single_group) {
        std::stable_sort(ws.order.begin(), ws.order.end(),
                         [&servers](std::uint32_t a, std::uint32_t b) {
                             return servers[a].priority_group <
                                    servers[b].priority_group;
                         });
    }

    Watts remaining = total_power_cut;
    std::size_t start = 0;
    while (start < n) {
        if (remaining <= kEpsilon) break;
        std::size_t end = start + 1;
        const int group = servers[ws.order[start]].priority_group;
        while (end < n && servers[ws.order[end]].priority_group == group) {
            ++end;
        }
        GroupCutInto(ws.powers.data(), ws.floors.data(), ws.order.data() + start,
                     end - start, remaining, bucket_size, policy, ws,
                     ws.cuts.data());
        for (std::size_t r = start; r < end; ++r) {
            remaining -= ws.cuts[ws.order[r]];
        }
        start = end;
    }

    for (std::size_t i = 0; i < n; ++i) {
        if (ws.cuts[i] > kEpsilon) {
            CapAssignment assignment;
            assignment.index = i;
            assignment.cap = servers[i].power - ws.cuts[i];
            assignment.cut = ws.cuts[i];
            plan->assignments.push_back(std::move(assignment));
            plan->planned_cut += ws.cuts[i];
        }
    }
    plan->satisfied = remaining <= 1e-3;
}

CappingPlan
ComputeCappingPlan(const std::vector<ServerPowerInfo>& servers,
                   Watts total_power_cut, Watts bucket_size,
                   AllocationPolicy policy)
{
    CappingWorkspace ws;
    CappingPlan plan;
    ComputeCappingPlan(servers, total_power_cut, bucket_size, policy, ws,
                       &plan);
    for (CapAssignment& assignment : plan.assignments) {
        assignment.name = servers[assignment.index].name;
    }
    return plan;
}

void
ComputeOffenderPlan(const std::vector<ChildPowerInfo>& children,
                    Watts total_power_cut, Watts bucket_size,
                    CappingWorkspace& ws, OffenderPlan* plan)
{
    plan->limits.clear();
    plan->planned_cut = 0.0;
    plan->satisfied = false;
    if (total_power_cut <= kEpsilon) {
        plan->satisfied = true;
        return;
    }

    const std::size_t n = children.size();
    ws.Prepare(n);
    std::fill(ws.cuts.begin(), ws.cuts.end(), 0.0);
    Watts remaining = total_power_cut;

    // Stage 1: punish the offenders (power above quota), never pushing
    // them below quota, high-bucket-first among them.
    ws.items.clear();
    for (std::size_t i = 0; i < n; ++i) {
        if (children[i].power > children[i].quota + kEpsilon) {
            ws.items.push_back(static_cast<std::uint32_t>(i));
            ws.powers[i] = children[i].power;
            // Quota is the stage-1 floor, but never contract a child
            // below the floor it can actually honor.
            ws.floors[i] = std::max(children[i].quota, children[i].floor);
            ws.stage[i] = 0.0;
        }
    }
    if (!ws.items.empty()) {
        BucketedEvenCutInto(ws.powers.data(), ws.floors.data(), ws.items.data(),
                            ws.items.size(), remaining, bucket_size, ws,
                            ws.stage.data());
        for (std::uint32_t i : ws.items) {
            ws.cuts[i] += ws.stage[i];
            remaining -= ws.stage[i];
        }
    }

    // Stage 2: if the offenders' excess was not enough, spread the
    // remainder across all children down to their floors.
    if (remaining > kEpsilon) {
        std::iota(ws.order.begin(), ws.order.end(), 0u);
        for (std::size_t i = 0; i < n; ++i) {
            ws.powers[i] = children[i].power - ws.cuts[i];
            ws.floors[i] = children[i].floor;
            ws.stage[i] = 0.0;
        }
        BucketedEvenCutInto(ws.powers.data(), ws.floors.data(), ws.order.data(),
                            n, remaining, bucket_size, ws, ws.stage.data());
        for (std::size_t i = 0; i < n; ++i) {
            ws.cuts[i] += ws.stage[i];
            remaining -= ws.stage[i];
        }
    }

    for (std::size_t i = 0; i < n; ++i) {
        if (ws.cuts[i] > kEpsilon) {
            ChildLimit limit;
            limit.index = i;
            limit.contractual_limit = children[i].power - ws.cuts[i];
            limit.cut = ws.cuts[i];
            plan->limits.push_back(std::move(limit));
            plan->planned_cut += ws.cuts[i];
        }
    }
    plan->satisfied = remaining <= 1e-3;
}

OffenderPlan
ComputeOffenderPlan(const std::vector<ChildPowerInfo>& children,
                    Watts total_power_cut, Watts bucket_size)
{
    CappingWorkspace ws;
    OffenderPlan plan;
    ComputeOffenderPlan(children, total_power_cut, bucket_size, ws, &plan);
    for (ChildLimit& limit : plan.limits) {
        limit.name = children[limit.index].name;
    }
    return plan;
}

}  // namespace dynamo::core
