#include "core/early_warning.h"

namespace dynamo::core {

EarlyWarningMonitor::EarlyWarningMonitor(sim::Simulation& sim, Config config,
                                         telemetry::EventLog* log)
    : sim_(sim), config_(config), log_(log)
{
    task_ = sim_.SchedulePeriodic(config_.period, [this]() { Check(); });
}

void
EarlyWarningMonitor::Watch(const Controller* controller)
{
    WatchState state;
    state.controller = controller;
    watched_.push_back(state);
}

bool
EarlyWarningMonitor::Unwatch(const Controller* controller)
{
    for (auto it = watched_.begin(); it != watched_.end(); ++it) {
        if (it->controller == controller) {
            watched_.erase(it);
            return true;
        }
    }
    return false;
}

std::vector<std::string>
EarlyWarningMonitor::HotDevices() const
{
    std::vector<std::string> hot;
    for (const WatchState& w : watched_) {
        if (w.hot_streak >= config_.consecutive_checks) {
            hot.push_back(w.controller->endpoint());
        }
    }
    return hot;
}

void
EarlyWarningMonitor::Check()
{
    const SimTime now = sim_.Now();
    for (WatchState& w : watched_) {
        const Controller& c = *w.controller;
        const Watts limit = c.EffectiveLimit();
        const bool hot = c.last_valid() && limit > 0.0 &&
                         c.last_aggregated_power() >
                             config_.warning_fraction * limit;
        if (!hot) {
            w.hot_streak = 0;
            continue;
        }
        ++w.hot_streak;
        if (w.hot_streak < config_.consecutive_checks) continue;
        if (w.last_alert >= 0 &&
            now - w.last_alert < config_.realert_interval) {
            continue;
        }
        w.last_alert = now;
        ++alerts_;
        if (log_ != nullptr) {
            telemetry::Event event;
            event.time = now;
            event.kind = telemetry::EventKind::kAlarm;
            event.source = c.endpoint();
            event.aggregated_power = c.last_aggregated_power();
            event.limit = limit;
            event.detail = "early warning: sustained power above watermark";
            log_->Record(std::move(event));
        }
    }
}

}  // namespace dynamo::core
