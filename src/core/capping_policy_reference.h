/**
 * @file
 * Reference (pre-optimization) capping allocators.
 *
 * Verbatim copies of the original clarity-first implementations of
 * BucketedEvenCut / ComputeCappingPlan / ComputeOffenderPlan, kept as
 * the behavioural oracle for the optimized, allocation-free versions
 * in capping_policy.cc: equivalence tests assert the optimized paths
 * produce bit-identical plans for the same inputs. Not for production
 * use — these allocate per call (per-group array copies, a std::map
 * for priority grouping, rebuilt active sets in the water-fill).
 */
#ifndef DYNAMO_CORE_CAPPING_POLICY_REFERENCE_H_
#define DYNAMO_CORE_CAPPING_POLICY_REFERENCE_H_

#include <vector>

#include "common/units.h"
#include "core/capping_policy.h"

namespace dynamo::core::reference {

/** Original ComputeCappingPlan (names filled, allocates per call). */
CappingPlan ComputeCappingPlan(
    const std::vector<ServerPowerInfo>& servers, Watts total_power_cut,
    Watts bucket_size = 20.0,
    AllocationPolicy policy = AllocationPolicy::kHighBucketFirst);

/** Original ComputeOffenderPlan. */
OffenderPlan ComputeOffenderPlan(const std::vector<ChildPowerInfo>& children,
                                 Watts total_power_cut,
                                 Watts bucket_size = 2000.0);

/** Original BucketedEvenCut. */
std::vector<Watts> BucketedEvenCut(const std::vector<Watts>& powers,
                                   const std::vector<Watts>& floors, Watts cut,
                                   Watts bucket_size);

}  // namespace dynamo::core::reference

#endif  // DYNAMO_CORE_CAPPING_POLICY_REFERENCE_H_
