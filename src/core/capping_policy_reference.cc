#include "core/capping_policy_reference.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

namespace dynamo::core::reference {
namespace {

constexpr Watts kEpsilon = 1e-6;

/** Even water-fill of `cut` across items bounded by per-item headroom. */
void
WaterFill(const std::vector<std::size_t>& included,
          const std::vector<Watts>& headroom, Watts cut, std::vector<Watts>* cuts)
{
    std::vector<std::size_t> active;
    for (std::size_t i : included) {
        if (headroom[i] - (*cuts)[i] > kEpsilon) active.push_back(i);
    }
    Watts left = cut;
    while (left > kEpsilon && !active.empty()) {
        const Watts per = left / static_cast<double>(active.size());
        std::vector<std::size_t> next;
        for (std::size_t i : active) {
            const Watts avail = headroom[i] - (*cuts)[i];
            const Watts take = std::min(per, avail);
            (*cuts)[i] += take;
            left -= take;
            if (headroom[i] - (*cuts)[i] > kEpsilon) next.push_back(i);
        }
        if (next.size() == active.size()) break;  // everyone took `per`; done
        active = std::move(next);
    }
}

/** Cut proportional to each item's headroom above its floor. */
std::vector<Watts>
ProportionalCut(const std::vector<Watts>& powers, const std::vector<Watts>& floors,
                Watts cut)
{
    std::vector<Watts> cuts(powers.size(), 0.0);
    Watts total_headroom = 0.0;
    for (std::size_t i = 0; i < powers.size(); ++i) {
        total_headroom += std::max(0.0, powers[i] - floors[i]);
    }
    if (total_headroom <= kEpsilon) return cuts;
    const double frac = std::min(1.0, cut / total_headroom);
    for (std::size_t i = 0; i < powers.size(); ++i) {
        cuts[i] = frac * std::max(0.0, powers[i] - floors[i]);
    }
    return cuts;
}

std::vector<Watts>
GroupCut(const std::vector<Watts>& powers, const std::vector<Watts>& floors,
         Watts cut, Watts bucket_size, AllocationPolicy policy)
{
    switch (policy) {
      case AllocationPolicy::kHighBucketFirst:
        return BucketedEvenCut(powers, floors, cut, bucket_size);
      case AllocationPolicy::kProportional:
        return ProportionalCut(powers, floors, cut);
      case AllocationPolicy::kWaterFill:
        return BucketedEvenCut(powers, floors, cut, 0.0);
    }
    return std::vector<Watts>(powers.size(), 0.0);
}

}  // namespace

std::vector<Watts>
BucketedEvenCut(const std::vector<Watts>& powers, const std::vector<Watts>& floors,
                Watts cut, Watts bucket_size)
{
    std::vector<Watts> cuts(powers.size(), 0.0);
    if (cut <= kEpsilon || powers.empty()) return cuts;

    const Watts max_power = *std::max_element(powers.begin(), powers.end());

    // Degenerate bucket: pure water-filling — find the level L such
    // that shaving every item down to max(L, floor) yields the cut.
    if (bucket_size <= kEpsilon) {
        Watts lo = *std::min_element(floors.begin(), floors.end());
        Watts hi = max_power;
        auto capacity_at = [&](Watts level) {
            Watts c = 0.0;
            for (std::size_t i = 0; i < powers.size(); ++i) {
                c += std::max(0.0, powers[i] - std::max(level, floors[i]));
            }
            return c;
        };
        if (capacity_at(lo) <= cut) {
            hi = lo;  // cut exceeds headroom: shave to the floors
        }
        for (int iter = 0; iter < 64 && hi - lo > 1e-9; ++iter) {
            const Watts mid = 0.5 * (lo + hi);
            (capacity_at(mid) > cut ? lo : hi) = mid;
        }
        for (std::size_t i = 0; i < powers.size(); ++i) {
            cuts[i] = std::max(0.0, powers[i] - std::max(hi, floors[i]));
        }
        return cuts;
    }

    Watts bucket_floor = std::floor(max_power / bucket_size) * bucket_size;
    const bool bucketed = true;

    // Expand the included bucket range downward until the headroom
    // above max(bucket floor, item floor) covers the cut or everything
    // is included down to the item floors.
    while (true) {
        std::vector<std::size_t> included;
        std::vector<Watts> headroom(powers.size(), 0.0);
        Watts capacity = 0.0;
        Watts min_floor = std::numeric_limits<Watts>::infinity();
        for (std::size_t i = 0; i < powers.size(); ++i) {
            min_floor = std::min(min_floor, floors[i]);
            const Watts eff_floor = std::max(bucket_floor, floors[i]);
            if (powers[i] > eff_floor + kEpsilon) {
                included.push_back(i);
                headroom[i] = powers[i] - eff_floor;
                capacity += headroom[i];
            }
        }
        const bool fully_expanded = !bucketed || bucket_floor <= min_floor;
        if (capacity >= cut - kEpsilon || fully_expanded) {
            WaterFill(included, headroom, std::min(cut, capacity), &cuts);
            return cuts;
        }
        bucket_floor -= bucket_size;
    }
}

CappingPlan
ComputeCappingPlan(const std::vector<ServerPowerInfo>& servers,
                   Watts total_power_cut, Watts bucket_size,
                   AllocationPolicy policy)
{
    CappingPlan plan;
    if (total_power_cut <= kEpsilon) {
        plan.satisfied = true;
        return plan;
    }

    // Partition by priority group, lowest (capped first) to highest.
    std::map<int, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < servers.size(); ++i) {
        groups[servers[i].priority_group].push_back(i);
    }

    std::vector<Watts> cuts(servers.size(), 0.0);
    Watts remaining = total_power_cut;
    for (const auto& [priority, members] : groups) {
        (void)priority;
        if (remaining <= kEpsilon) break;
        std::vector<Watts> powers;
        std::vector<Watts> floors;
        powers.reserve(members.size());
        floors.reserve(members.size());
        for (std::size_t i : members) {
            powers.push_back(servers[i].power);
            floors.push_back(servers[i].sla_min_cap);
        }
        const std::vector<Watts> group_cuts =
            GroupCut(powers, floors, remaining, bucket_size, policy);
        for (std::size_t k = 0; k < members.size(); ++k) {
            cuts[members[k]] = group_cuts[k];
            remaining -= group_cuts[k];
        }
    }

    for (std::size_t i = 0; i < servers.size(); ++i) {
        if (cuts[i] > kEpsilon) {
            CapAssignment assignment;
            assignment.index = i;
            assignment.name = servers[i].name;
            assignment.cap = servers[i].power - cuts[i];
            assignment.cut = cuts[i];
            plan.assignments.push_back(std::move(assignment));
            plan.planned_cut += cuts[i];
        }
    }
    plan.satisfied = remaining <= 1e-3;
    return plan;
}

OffenderPlan
ComputeOffenderPlan(const std::vector<ChildPowerInfo>& children,
                    Watts total_power_cut, Watts bucket_size)
{
    OffenderPlan plan;
    if (total_power_cut <= kEpsilon) {
        plan.satisfied = true;
        return plan;
    }

    std::vector<Watts> cuts(children.size(), 0.0);
    Watts remaining = total_power_cut;

    // Stage 1: punish the offenders (power above quota), never pushing
    // them below quota, high-bucket-first among them.
    {
        std::vector<std::size_t> offenders;
        std::vector<Watts> powers;
        std::vector<Watts> floors;
        for (std::size_t i = 0; i < children.size(); ++i) {
            if (children[i].power > children[i].quota + kEpsilon) {
                offenders.push_back(i);
                powers.push_back(children[i].power);
                // Quota is the stage-1 floor, but never contract a
                // child below the floor it can actually honor.
                floors.push_back(std::max(children[i].quota, children[i].floor));
            }
        }
        if (!offenders.empty()) {
            const std::vector<Watts> stage_cuts =
                BucketedEvenCut(powers, floors, remaining, bucket_size);
            for (std::size_t k = 0; k < offenders.size(); ++k) {
                cuts[offenders[k]] += stage_cuts[k];
                remaining -= stage_cuts[k];
            }
        }
    }

    // Stage 2: if the offenders' excess was not enough, spread the
    // remainder across all children down to their floors.
    if (remaining > kEpsilon) {
        std::vector<Watts> powers;
        std::vector<Watts> floors;
        powers.reserve(children.size());
        floors.reserve(children.size());
        for (std::size_t i = 0; i < children.size(); ++i) {
            powers.push_back(children[i].power - cuts[i]);
            floors.push_back(children[i].floor);
        }
        const std::vector<Watts> stage_cuts =
            BucketedEvenCut(powers, floors, remaining, bucket_size);
        for (std::size_t i = 0; i < children.size(); ++i) {
            cuts[i] += stage_cuts[i];
            remaining -= stage_cuts[i];
        }
    }

    for (std::size_t i = 0; i < children.size(); ++i) {
        if (cuts[i] > kEpsilon) {
            ChildLimit limit;
            limit.index = i;
            limit.name = children[i].name;
            limit.contractual_limit = children[i].power - cuts[i];
            limit.cut = cuts[i];
            plan.limits.push_back(std::move(limit));
            plan.planned_cut += cuts[i];
        }
    }
    plan.satisfied = remaining <= 1e-3;
    return plan;
}

}  // namespace dynamo::core::reference
