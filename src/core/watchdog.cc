#include "core/watchdog.h"

namespace dynamo::core {

Watchdog::Watchdog(sim::Simulation& sim, SimTime period,
                   telemetry::EventLog* log)
    : sim_(sim), log_(log)
{
    task_ = sim_.SchedulePeriodic(period, [this]() { Check(); });
}

void
Watchdog::Check()
{
    for (DynamoAgent* agent : agents_) {
        if (agent->alive()) continue;
        agent->Restart();
        ++restarts_;
        if (log_ != nullptr) {
            telemetry::Event event;
            event.time = sim_.Now();
            event.kind = telemetry::EventKind::kAgentRestart;
            event.source = agent->endpoint();
            log_->Record(std::move(event));
        }
    }
}

}  // namespace dynamo::core
