/**
 * @file
 * Agent watchdog (Section III-E, fault tolerance).
 *
 * "A script periodically checks the health of an agent and restarts
 * the agents in case the agent crashes." The watchdog scans its agent
 * roster on a fixed period and restarts any dead agent, logging the
 * restart.
 */
#ifndef DYNAMO_CORE_WATCHDOG_H_
#define DYNAMO_CORE_WATCHDOG_H_

#include <cstdint>
#include <vector>

#include "core/agent.h"
#include "sim/simulation.h"
#include "telemetry/event_log.h"

namespace dynamo::core {

/** Periodically restarts crashed agents. */
class Watchdog
{
  public:
    /**
     * @param period  Check period in ms (default 30 s).
     * @param log     Event log for kAgentRestart records (may be null).
     */
    Watchdog(sim::Simulation& sim, SimTime period = 30000,
             telemetry::EventLog* log = nullptr);

    ~Watchdog() { task_.Cancel(); }

    Watchdog(const Watchdog&) = delete;
    Watchdog& operator=(const Watchdog&) = delete;

    /** Add one agent to the watched roster (not owned). */
    void Watch(DynamoAgent* agent) { agents_.push_back(agent); }

    /**
     * Drop one agent from the roster (the server was decommissioned).
     * Must be called before the agent is destroyed, or the next check
     * would "restart" a dangling pointer. Returns false if unknown.
     */
    bool Unwatch(const DynamoAgent* agent)
    {
        for (auto it = agents_.begin(); it != agents_.end(); ++it) {
            if (*it == agent) {
                agents_.erase(it);
                return true;
            }
        }
        return false;
    }

    std::uint64_t restarts() const { return restarts_; }
    std::size_t watched_count() const { return agents_.size(); }

  private:
    void Check();

    sim::Simulation& sim_;
    telemetry::EventLog* log_;
    std::vector<DynamoAgent*> agents_;
    std::uint64_t restarts_ = 0;
    sim::TaskHandle task_;
};

}  // namespace dynamo::core

#endif  // DYNAMO_CORE_WATCHDOG_H_
