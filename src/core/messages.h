/**
 * @file
 * Wire messages between Dynamo components.
 *
 * Production Dynamo defines these as Thrift structs; here they are
 * plain structs carried through the simulated transport. The agent
 * handles two request types (power read, cap/uncap); controllers
 * additionally expose a read endpoint to their parent controller, the
 * contractual-limit endpoints used by punish-offender-first
 * coordination, and a health endpoint used for failover.
 */
#ifndef DYNAMO_CORE_MESSAGES_H_
#define DYNAMO_CORE_MESSAGES_H_

#include <cstdint>
#include <string>

#include "common/units.h"
#include "workload/service.h"

namespace dynamo::core {

/** Controller → agent: report your power. */
struct PowerReadRequest
{
};

/** Agent → controller: current power and context. */
struct PowerReadResponse
{
    std::string server;
    Watts power = 0.0;

    /** True when the value came from the estimation model, not a sensor. */
    bool estimated = false;

    workload::ServiceType service = workload::ServiceType::kWeb;
    bool capped = false;
    Watts power_limit = 0.0;

    /** Power breakdown (Section III-B: CPU, memory, AC-DC loss, rest). */
    Watts cpu_power = 0.0;
    Watts memory_power = 0.0;
    Watts other_power = 0.0;
    Watts conversion_loss = 0.0;
};

/** Controller → agent: enforce this power limit via RAPL. */
struct SetCapRequest
{
    Watts limit = 0.0;
};

/** Controller → agent: remove the power limit. */
struct UncapRequest
{
};

/** Agent → controller: command status. */
struct AckResponse
{
    bool ok = false;
};

/**
 * Controller → agent (sensorless servers only): scale your power
 * estimation model by `reference_ratio` (breaker-derived truth over
 * reported estimate), per the dynamic-tuning lesson of Section VI.
 */
struct TuneEstimateRequest
{
    double reference_ratio = 1.0;
};

/** Parent controller → child controller: report your aggregate. */
struct ControllerReadRequest
{
};

/** Child controller → parent controller. */
struct ControllerReadResponse
{
    std::string controller;

    /** Last aggregated power for the child's device. */
    Watts power = 0.0;

    /** False if the child's last aggregation was invalid. */
    bool valid = false;

    /** Planned peak (power quota) of the child's device. */
    Watts quota = 0.0;

    /** Lowest contractual limit the child can honor (SLA floors). */
    Watts floor = 0.0;
};

/** Parent → child: enforce a contractual power limit. */
struct SetContractualLimitRequest
{
    Watts limit = 0.0;

    /**
     * Decision-trace span of the parent cycle that issued this limit
     * (telemetry::SpanId; plain integer here to keep wire messages
     * free of telemetry types). 0 = untraced. The child links its next
     * decision spans to it, making upper → leaf → RAPL chains
     * followable.
     */
    std::uint64_t span_id = 0;
};

/** Parent → child: lift the contractual power limit. */
struct ClearContractualLimitRequest
{
};

/** Liveness probe used by the failover manager. */
struct HealthCheckRequest
{
};

/** Liveness reply. */
struct HealthCheckResponse
{
    bool ok = false;
};

}  // namespace dynamo::core

#endif  // DYNAMO_CORE_MESSAGES_H_
