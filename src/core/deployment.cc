#include "core/deployment.h"

#include "core/controller_builder.h"

#include <utility>

#include "server/sim_server.h"
#include "workload/load_process.h"

namespace dynamo::core {

/** Private-access helper used only by BuildDeployment. */
class DeploymentBuilder
{
  public:
    /** All SimServer loads in `device`'s subtree. */
    static std::vector<server::SimServer*> ServersUnder(
        power::PowerDevice& device);

    /**
     * Recursive construction: returns the controller endpoint for
     * `device`, or "" when the subtree contains no controllers.
     */
    static std::string BuildControllersFor(power::PowerDevice& device,
                                           sim::Simulation& sim,
                                           rpc::Transport& transport,
                                           const DeploymentConfig& config,
                                           Deployment* deployment);

    static std::unique_ptr<Deployment> Build(sim::Simulation& sim,
                                             rpc::Transport& transport,
                                             power::PowerDevice& root,
                                             const DeploymentConfig& config);
};

std::vector<server::SimServer*>
DeploymentBuilder::ServersUnder(power::PowerDevice& device)
{
    std::vector<server::SimServer*> servers;
    device.ForEach([&](power::PowerDevice& d) {
        for (power::PowerLoad* load : d.loads()) {
            if (auto* srv = dynamic_cast<server::SimServer*>(load)) {
                servers.push_back(srv);
            }
        }
    });
    return servers;
}

std::string
DeploymentBuilder::BuildControllersFor(power::PowerDevice& device,
                                       sim::Simulation& sim,
                                       rpc::Transport& transport,
                                       const DeploymentConfig& config,
                                       Deployment* deployment)
{
    const std::string endpoint = Deployment::ControllerEndpoint(device.name());

    if (device.level() == config.leaf_level) {
        ControllerBuilder builder(sim, transport);
        builder.Endpoint(endpoint)
            .ForDevice(device)
            .LeafConfig(config.leaf)
            .Log(&deployment->log_);
        for (server::SimServer* srv : ServersUnder(device)) {
            builder.Agent(AgentInfoFor(*srv));
        }
        auto leaf = builder.BuildLeaf();
        SimTime phase = -1;
        if (config.stagger_cycles) {
            const std::size_t index = deployment->leaves_.size();
            phase = 1 + static_cast<SimTime>((index * 997) %
                                             static_cast<std::size_t>(
                                                 config.leaf.base.pull_cycle));
        }
        leaf->Activate(phase);
        deployment->leaf_by_endpoint_[endpoint] = leaf.get();
        deployment->leaves_.push_back(std::move(leaf));
        if (config.with_backup_controllers) {
            auto backup = builder.BuildLeaf();
            deployment->failovers_.push_back(std::make_unique<FailoverManager>(
                sim, transport, *deployment->leaves_.back(), *backup,
                config.failover_check_period, config.failover_miss_threshold,
                &deployment->log_));
            deployment->leaf_backups_.push_back(std::move(backup));
        }
        return endpoint;
    }

    std::vector<std::string> child_endpoints;
    for (const auto& child : device.children()) {
        std::string ep =
            BuildControllersFor(*child, sim, transport, config, deployment);
        if (!ep.empty()) child_endpoints.push_back(std::move(ep));
    }
    if (child_endpoints.empty()) return "";

    ControllerBuilder builder(sim, transport);
    builder.Endpoint(endpoint)
        .ForDevice(device)
        .UpperConfig(config.upper)
        .Log(&deployment->log_);
    for (const std::string& ep : child_endpoints) builder.Child(ep);
    auto upper = builder.BuildUpper();
    upper->Activate();
    deployment->upper_by_endpoint_[endpoint] = upper.get();
    deployment->uppers_.push_back(std::move(upper));
    if (config.with_backup_controllers) {
        auto backup = builder.BuildUpper();
        deployment->failovers_.push_back(std::make_unique<FailoverManager>(
            sim, transport, *deployment->uppers_.back(), *backup,
            config.failover_check_period, config.failover_miss_threshold,
            &deployment->log_));
        deployment->upper_backups_.push_back(std::move(backup));
    }
    return endpoint;
}

std::unique_ptr<Deployment>
DeploymentBuilder::Build(sim::Simulation& sim, rpc::Transport& transport,
                         power::PowerDevice& root, const DeploymentConfig& config)
{
    auto deployment = std::make_unique<Deployment>();
    deployment->traces_ = telemetry::TraceLog(config.trace_capacity);

    // Agents for every server anywhere under the root.
    for (server::SimServer* srv : ServersUnder(root)) {
        auto agent = std::make_unique<DynamoAgent>(
            sim, transport, *srv, Deployment::AgentEndpoint(srv->name()));
        deployment->agent_by_endpoint_[agent->endpoint()] = agent.get();
        deployment->agents_.push_back(std::move(agent));
    }

    BuildControllersFor(root, sim, transport, config, deployment.get());

    if (config.with_telemetry) {
        deployment->telemetry_wired_ = true;
        telemetry::MetricsRegistry* metrics = &deployment->metrics_;
        telemetry::TraceLog* traces = &deployment->traces_;
        for (const auto& agent : deployment->agents_) {
            agent->AttachMetrics(metrics);
        }
        for (const auto& leaf : deployment->leaves_) {
            leaf->AttachTelemetry(metrics, traces);
        }
        for (const auto& upper : deployment->uppers_) {
            upper->AttachTelemetry(metrics, traces);
        }
        // Backups share the same instruments: a promoted standby keeps
        // recording into the fleet-wide series without a gap.
        for (const auto& leaf : deployment->leaf_backups_) {
            leaf->AttachTelemetry(metrics, traces);
        }
        for (const auto& upper : deployment->upper_backups_) {
            upper->AttachTelemetry(metrics, traces);
        }
    }

    if (config.with_watchdog) {
        deployment->watchdog_ = std::make_unique<Watchdog>(
            sim, config.watchdog_period, &deployment->log_);
        for (const auto& agent : deployment->agents_) {
            deployment->watchdog_->Watch(agent.get());
        }
    }
    if (config.with_early_warning) {
        deployment->early_warning_ = std::make_unique<EarlyWarningMonitor>(
            sim, config.early_warning, &deployment->log_);
        for (const auto& leaf : deployment->leaves_) {
            deployment->early_warning_->Watch(leaf.get());
        }
        for (const auto& upper : deployment->uppers_) {
            deployment->early_warning_->Watch(upper.get());
        }
    }
    return deployment;
}

Watts
SlaMinCapFor(const server::SimServer& server)
{
    const server::ServerPowerSpec& spec = server.spec();
    const workload::ServiceTraits& traits = workload::TraitsFor(server.service());
    return spec.idle + traits.sla_floor_frac * (spec.peak - spec.idle);
}

AgentInfo
AgentInfoFor(const server::SimServer& server)
{
    AgentInfo info;
    info.endpoint = Deployment::AgentEndpoint(server.name());
    info.service = server.service();
    info.priority_group = workload::TraitsFor(server.service()).priority_group;
    info.sla_min_cap = SlaMinCapFor(server);
    const double base_util =
        workload::LoadProcessParams::For(server.service()).base_util;
    info.nominal_power = server::PowerAtUtil(server.spec(), base_util,
                                             server.turbo_enabled());
    return info;
}

DynamoAgent*
Deployment::FindAgent(const std::string& endpoint)
{
    const auto it = agent_by_endpoint_.find(endpoint);
    return it == agent_by_endpoint_.end() ? nullptr : it->second;
}

LeafController*
Deployment::FindLeaf(const std::string& endpoint)
{
    const auto it = leaf_by_endpoint_.find(endpoint);
    return it == leaf_by_endpoint_.end() ? nullptr : it->second;
}

UpperController*
Deployment::FindUpper(const std::string& endpoint)
{
    const auto it = upper_by_endpoint_.find(endpoint);
    return it == upper_by_endpoint_.end() ? nullptr : it->second;
}

LeafController*
Deployment::FindLeafBackup(const std::string& endpoint)
{
    for (const auto& c : leaf_backups_) {
        if (c->endpoint() == endpoint) return c.get();
    }
    return nullptr;
}

UpperController*
Deployment::FindUpperBackup(const std::string& endpoint)
{
    for (const auto& c : upper_backups_) {
        if (c->endpoint() == endpoint) return c.get();
    }
    return nullptr;
}

FailoverManager*
Deployment::FindFailover(const std::string& endpoint)
{
    for (const auto& mgr : failovers_) {
        if (mgr->primary().endpoint() == endpoint) return mgr.get();
    }
    return nullptr;
}

bool
Deployment::SwapController(const std::string& endpoint)
{
    FailoverManager* mgr = FindFailover(endpoint);
    return mgr != nullptr && mgr->WarmSwap();
}

DynamoAgent*
Deployment::AdoptServer(sim::Simulation& sim, rpc::Transport& transport,
                        server::SimServer& server)
{
    auto agent = std::make_unique<DynamoAgent>(
        sim, transport, server, AgentEndpoint(server.name()));
    DynamoAgent* raw = agent.get();
    if (telemetry_wired_) raw->AttachMetrics(&metrics_);
    if (watchdog_) watchdog_->Watch(raw);
    agent_by_endpoint_[raw->endpoint()] = raw;
    agents_.push_back(std::move(agent));
    return raw;
}

bool
Deployment::RemoveAgent(const std::string& endpoint,
                        rpc::Transport& transport)
{
    const auto it = agent_by_endpoint_.find(endpoint);
    if (it == agent_by_endpoint_.end()) return false;
    DynamoAgent* agent = it->second;
    // Off the watchdog roster first: a watchdog check between Crash
    // and destruction would otherwise resurrect the agent.
    if (watchdog_) watchdog_->Unwatch(agent);
    agent->Crash();
    agent_by_endpoint_.erase(it);
    for (auto vec_it = agents_.begin(); vec_it != agents_.end(); ++vec_it) {
        if (vec_it->get() == agent) {
            agents_.erase(vec_it);
            break;
        }
    }
    transport.Deregister(endpoint);
    return true;
}

bool
Deployment::RemoveLeaf(const std::string& endpoint,
                       rpc::Transport& transport)
{
    const auto it = leaf_by_endpoint_.find(endpoint);
    if (it == leaf_by_endpoint_.end()) return false;
    LeafController* leaf = it->second;
    LeafController* backup = FindLeafBackup(endpoint);
    // The failover manager goes first — its probe task must not fire
    // between the controllers' teardown and its own.
    for (auto mgr = failovers_.begin(); mgr != failovers_.end(); ++mgr) {
        if (&(*mgr)->primary() == leaf) {
            failovers_.erase(mgr);
            break;
        }
    }
    if (early_warning_) early_warning_->Unwatch(leaf);
    leaf->Deactivate();
    if (backup != nullptr) {
        backup->Deactivate();  // covers a post-failover active standby
        for (auto b = leaf_backups_.begin(); b != leaf_backups_.end(); ++b) {
            if (b->get() == backup) {
                leaf_backups_.erase(b);
                break;
            }
        }
    }
    leaf_by_endpoint_.erase(it);
    for (auto vec_it = leaves_.begin(); vec_it != leaves_.end(); ++vec_it) {
        if (vec_it->get() == leaf) {
            leaves_.erase(vec_it);
            break;
        }
    }
    transport.Deregister(endpoint);
    return true;
}

void
Deployment::Snapshot(Archive& ar) const
{
    ar.U64(agents_.size());
    for (const auto& a : agents_) a->Snapshot(ar);
    ar.U64(leaves_.size());
    for (const auto& c : leaves_) c->Snapshot(ar);
    ar.U64(uppers_.size());
    for (const auto& c : uppers_) c->Snapshot(ar);
    ar.U64(leaf_backups_.size());
    for (const auto& c : leaf_backups_) c->Snapshot(ar);
    ar.U64(upper_backups_.size());
    for (const auto& c : upper_backups_) c->Snapshot(ar);
    traces_.Snapshot(ar);
}

std::unique_ptr<Deployment>
BuildDeployment(sim::Simulation& sim, rpc::Transport& transport,
                power::PowerDevice& root, const DeploymentConfig& config)
{
    return DeploymentBuilder::Build(sim, transport, root, config);
}

}  // namespace dynamo::core
