/**
 * @file
 * Early-warning monitor (Section VI: "Monitoring is as important as
 * capping ... many power problems we had in the past could have been
 * avoided if we had close power monitoring to catch bottlenecks
 * early").
 *
 * Capping is the emergency brake; the early-warning monitor is the
 * dashboard light. It periodically inspects every controller's
 * utilization of its effective limit and raises operator alerts when a
 * device spends sustained time above a warning watermark (default
 * 90 %) — before the three-band capping threshold is ever reached — so
 * capacity problems surface as tickets instead of capping events.
 */
#ifndef DYNAMO_CORE_EARLY_WARNING_H_
#define DYNAMO_CORE_EARLY_WARNING_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/controller.h"
#include "sim/simulation.h"
#include "telemetry/event_log.h"

namespace dynamo::core {

/** Watches controllers and alarms on sustained high utilization. */
class EarlyWarningMonitor
{
  public:
    struct Config
    {
        /** Check period in ms (coarser than control cycles). */
        SimTime period = 60000;

        /** Fraction of the effective limit that counts as "hot". */
        double warning_fraction = 0.90;

        /** Consecutive hot checks before an alert is raised. */
        int consecutive_checks = 3;

        /** Minimum gap between repeated alerts for one device, ms. */
        SimTime realert_interval = 1800000;  // 30 min
    };

    EarlyWarningMonitor(sim::Simulation& sim, Config config,
                        telemetry::EventLog* log);

    ~EarlyWarningMonitor() { task_.Cancel(); }

    EarlyWarningMonitor(const EarlyWarningMonitor&) = delete;
    EarlyWarningMonitor& operator=(const EarlyWarningMonitor&) = delete;

    /** Add a controller to watch (not owned). */
    void Watch(const Controller* controller);

    /** Stop watching a controller (it is being decommissioned). */
    bool Unwatch(const Controller* controller);

    /** Alerts raised so far. */
    std::uint64_t alerts() const { return alerts_; }

    /** Devices currently flagged hot. */
    std::vector<std::string> HotDevices() const;

  private:
    void Check();

    struct WatchState
    {
        const Controller* controller = nullptr;
        int hot_streak = 0;
        SimTime last_alert = -1;
    };

    sim::Simulation& sim_;
    Config config_;
    telemetry::EventLog* log_;
    std::vector<WatchState> watched_;
    std::uint64_t alerts_ = 0;
    sim::TaskHandle task_;
};

}  // namespace dynamo::core

#endif  // DYNAMO_CORE_EARLY_WARNING_H_
