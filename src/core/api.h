/**
 * @file
 * The versioned Dynamo control-plane API.
 *
 * Production Dynamo defines its wire surface as Thrift structs; here
 * it is a single versioned namespace of plain structs carried through
 * the simulated transport. Every result type carries an explicit
 * `Status` (code + retriability + detail) instead of ad-hoc booleans,
 * sentinel watt values, or out-params, so agents, controllers, shard
 * proxies, and transport handlers all speak one uniform surface — the
 * property the sharded parallel engine depends on: a request crossing
 * a shard boundary is indistinguishable from a local one.
 *
 * Versioning: types live in `dynamo::api::v1`, re-exported through an
 * inline namespace. A breaking change adds `v2` alongside and moves
 * the inline marker; handlers that must bridge versions can then name
 * both explicitly.
 *
 * The agent serves PowerReadRequest, CapRequest, and TuneEstimate;
 * controllers additionally serve PowerReadRequest to their parent
 * (with the quota/floor fields filled in), ContractUpdate from the
 * punish-offender-first coordination, and HealthProbe from the
 * failover manager.
 */
#ifndef DYNAMO_CORE_API_H_
#define DYNAMO_CORE_API_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "common/units.h"
#include "workload/service.h"

namespace dynamo::api {

inline namespace v1 {

/** Outcome classes; kept coarse on purpose (Thrift-style). */
enum class StatusCode : std::uint8_t {
    kOk = 0,

    /** The handler exists but cannot serve the request right now
     *  (e.g. a controller whose last aggregation was invalid). */
    kUnavailable = 1,

    /** The request was understood and refused (bad argument, policy). */
    kRejected = 2,

    /** The endpoint does not implement this request type. */
    kUnimplemented = 3,
};

/** Readable name ("ok", "unavailable", ...). */
inline const char*
StatusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::kOk: return "ok";
      case StatusCode::kUnavailable: return "unavailable";
      case StatusCode::kRejected: return "rejected";
      case StatusCode::kUnimplemented: return "unimplemented";
    }
    return "?";
}

/**
 * Per-result status: what happened, whether retrying the same request
 * can help, and a human-readable detail for logs and alarms.
 */
struct Status
{
    StatusCode code = StatusCode::kOk;
    bool retriable = false;
    std::string detail;

    bool ok() const { return code == StatusCode::kOk; }

    static Status Ok() { return Status{}; }

    static Status Unavailable(std::string detail, bool retriable = true)
    {
        return Status{StatusCode::kUnavailable, retriable, std::move(detail)};
    }

    static Status Rejected(std::string detail)
    {
        return Status{StatusCode::kRejected, false, std::move(detail)};
    }

    static Status Unimplemented(std::string detail)
    {
        return Status{StatusCode::kUnimplemented, false, std::move(detail)};
    }
};

/**
 * Puller → pullee: report your power. Served by agents (server power)
 * and by controllers (aggregated device power, for the parent).
 */
struct PowerReadRequest
{
};

/**
 * The uniform read result. Agents fill the server fields; controllers
 * fill power/quota/floor and report an invalid aggregation as a
 * non-ok status (retriable — the next cycle may aggregate cleanly).
 */
struct PowerReadResult
{
    Status status;

    /** Reporting server or controller endpoint. */
    std::string source;

    Watts power = 0.0;

    /** True when the value came from the estimation model, not a sensor. */
    bool estimated = false;

    workload::ServiceType service = workload::ServiceType::kWeb;
    bool capped = false;
    Watts power_limit = 0.0;

    /** Power breakdown (Section III-B: CPU, memory, AC-DC loss, rest). */
    Watts cpu_power = 0.0;
    Watts memory_power = 0.0;
    Watts other_power = 0.0;
    Watts conversion_loss = 0.0;

    /** Controller reads only: planned peak of the pullee's device. */
    Watts quota = 0.0;

    /** Controller reads only: lowest honorable contractual limit. */
    Watts floor = 0.0;

    /**
     * Controller reads only: the contractual limit the pullee believes
     * is in force (empty when uncontracted). Lets a freshly promoted
     * parent adopt contracts it never issued — the upper-level
     * analogue of a leaf adopting orphaned RAPL caps — instead of
     * silently letting the child run against its raw physical limit.
     */
    std::optional<Watts> contract;
};

/**
 * Controller → agent: enforce (or lift, when `limit` is empty) a RAPL
 * power limit.
 */
struct CapRequest
{
    std::optional<Watts> limit;
};

/** Command acknowledgement for cap/contract/tune requests. */
struct CapResult
{
    Status status;
};

/**
 * Parent controller → child controller: set (or lift, when `limit` is
 * empty) the contractual power limit from punish-offender-first
 * coordination.
 */
struct ContractUpdate
{
    std::optional<Watts> limit;

    /**
     * Decision-trace span of the parent cycle that issued this limit
     * (telemetry::SpanId; plain integer here to keep wire messages
     * free of telemetry types). 0 = untraced. The child links its next
     * decision spans to it, making upper → leaf → RAPL chains
     * followable.
     */
    std::uint64_t span_id = 0;

    /**
     * Fleet-spec epoch the issuer observed when it computed this
     * limit. Reconfiguration transactions bump the epoch at a window
     * barrier; a contract stamped with an older epoch was computed
     * against a topology that no longer exists and is rejected by the
     * receiver. 0 = unversioned (accepted, for senders outside any
     * fleet — test rigs, hand-wired deployments).
     */
    std::uint64_t spec_epoch = 0;
};

/**
 * Controller → agent (sensorless servers only): scale your power
 * estimation model by `reference_ratio` (breaker-derived truth over
 * reported estimate), per the dynamic-tuning lesson of Section VI.
 */
struct TuneEstimate
{
    double reference_ratio = 1.0;
};

/** Liveness probe used by the failover manager. */
struct HealthProbe
{
};

/** Liveness reply. */
struct HealthResult
{
    Status status;
};

/**
 * Operator/test → daemon: report the hosted component's runtime
 * state. Served by the daemon wrapper (under "<endpoint>.status"),
 * not by the controller itself, so controllers run unchanged in
 * deployment mode while tools can still observe the health FSM and
 * the adoption counters the chaos invariants are stated in.
 */
struct StatusRequest
{
};

/** Daemon status reply. */
struct StatusResult
{
    Status status;

    /** The endpoint of the hosted controller/agent. */
    std::string endpoint;

    /** Health FSM state name: "normal", "degraded", or "recovering". */
    std::string health;

    /** Pull cycles completed since boot. */
    std::uint64_t cycles = 0;

    /** Leaf only: orphaned RAPL caps adopted after restart/failover. */
    std::uint64_t caps_adopted = 0;

    /** Upper only: standing contracts adopted from children. */
    std::uint64_t contracts_adopted = 0;

    /** Last aggregated device power (controllers) or reading (agents). */
    Watts power = 0.0;

    /** True while a capping episode is in force. */
    bool capping = false;
};

}  // inline namespace v1

}  // namespace dynamo::api

#endif  // DYNAMO_CORE_API_H_
