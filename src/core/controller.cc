#include "core/controller.h"

#include <functional>
#include <stdexcept>
#include <utility>

namespace dynamo::core {

const char*
HealthStateName(HealthState state)
{
    switch (state) {
      case HealthState::kNormal: return "normal";
      case HealthState::kDegraded: return "degraded";
      case HealthState::kRecovering: return "recovering";
    }
    return "?";
}

Controller::Controller(sim::Simulation& sim, rpc::Transport& transport,
                       std::string endpoint, Watts physical_limit, Watts quota,
                       ControllerBaseConfig config, telemetry::EventLog* log)
    : sim_(sim),
      transport_(transport),
      config_(config),
      bands_(config.bands),
      log_(log),
      endpoint_(std::move(endpoint)),
      endpoint_id_(transport.Resolve(endpoint_)),
      physical_limit_(physical_limit),
      quota_(quota),
      // FNV-1a rather than std::hash: the retry-jitter stream must be
      // identical across standard libraries for replay journals to be
      // portable between builds.
      retry_rng_(Fnv1a64(endpoint_) ^ 0x9e3779b97f4a7c15ULL)
{
    if (config_.rpc_timeout <= 0 || config_.rpc_timeout >= config_.response_wait) {
        throw std::invalid_argument(
            "ControllerBaseConfig: rpc_timeout must be in (0, response_wait); "
            "got rpc_timeout=" + std::to_string(config_.rpc_timeout) +
            " response_wait=" + std::to_string(config_.response_wait));
    }
    if (config_.pull_retries < 0 || config_.retry_backoff < 0 ||
        config_.retry_jitter < 0) {
        throw std::invalid_argument(
            "ControllerBaseConfig: retry knobs must be non-negative");
    }
    if (config_.degraded_entry_cycles < 1 || config_.recovery_exit_cycles < 1) {
        throw std::invalid_argument(
            "ControllerBaseConfig: hysteresis cycle counts must be >= 1");
    }
    if (config_.flap_window_cycles < 0) {
        throw std::invalid_argument(
            "ControllerBaseConfig: flap_window_cycles must be >= 0");
    }
}

Controller::~Controller()
{
    Deactivate();
}

void
Controller::Activate(SimTime initial_delay)
{
    if (active_) return;
    active_ = true;
    transport_.Register(endpoint_id_,
                        [this](const rpc::Payload& req) { return Handle(req); });
    cycle_task_ = sim_.SchedulePeriodic(
        config_.pull_cycle, [this]() {
            if (active_) RunCycle();
        },
        initial_delay);
}

void
Controller::Deactivate()
{
    if (!active_) return;
    active_ = false;
    cycle_task_.Cancel();
    transport_.Unregister(endpoint_id_);
    // Invalidate any in-flight cycle so late responses are dropped.
    ++cycle_id_;
}

rpc::Payload
Controller::Handle(const rpc::Payload& request)
{
    if (std::any_cast<api::PowerReadRequest>(&request) != nullptr) {
        api::PowerReadResult resp;
        resp.source = endpoint_;
        resp.power = last_power_;
        if (!last_valid_) {
            resp.status = api::Status::Unavailable("aggregation invalid");
        }
        resp.quota = quota_;
        resp.floor = Floor();
        resp.contract = contractual_limit_;
        return resp;
    }
    if (const auto* update = std::any_cast<api::ContractUpdate>(&request)) {
        // A contract stamped with an older spec epoch was computed
        // against a pre-reconfiguration topology; applying it could
        // cap a subtree that no longer exists under that parent (or
        // lift a limit the new parent still relies on). Unversioned
        // senders (epoch 0) are accepted for hand-wired rigs.
        if (update->spec_epoch != 0 && update->spec_epoch < current_epoch()) {
            ++stale_epoch_rejections_;
            return api::CapResult{api::Status::Rejected(
                "stale spec epoch " + std::to_string(update->spec_epoch) +
                " < " + std::to_string(current_epoch()))};
        }
        if (update->limit) {
            SetContractualLimit(*update->limit);
            contract_span_ = update->span_id;
        } else {
            ClearContractualLimit();
            contract_span_ = telemetry::kNoSpan;
        }
        return api::CapResult{api::Status::Ok()};
    }
    if (std::any_cast<api::HealthProbe>(&request) != nullptr) {
        return api::HealthResult{api::Status::Ok()};
    }
    return HandleExtra(request);
}

rpc::Payload
Controller::HandleExtra(const rpc::Payload&)
{
    return api::CapResult{
        api::Status::Unimplemented("unknown controller request")};
}

void
Controller::PullWithRetry(rpc::EndpointId endpoint, rpc::Payload request,
                          rpc::ResponseCallback on_ok, rpc::ErrorCallback on_err)
{
    const int attempts = 1 + config_.pull_retries;
    const SimTime per_attempt =
        std::max<SimTime>(1, config_.rpc_timeout / attempts);
    PullAttempt(endpoint, std::move(request), std::move(on_ok),
                std::move(on_err), 0, per_attempt, cycle_id_);
}

void
Controller::PullAttempt(rpc::EndpointId endpoint, rpc::Payload request,
                        rpc::ResponseCallback on_ok, rpc::ErrorCallback on_err,
                        int attempt, SimTime per_attempt_timeout,
                        std::uint64_t cycle)
{
    transport_.Call(
        endpoint, request, on_ok,
        [this, endpoint, request, on_ok, on_err, attempt, per_attempt_timeout,
         cycle](const std::string& reason) {
            if (cycle != cycle_id_) return;  // cycle moved on; abandon
            if (attempt >= config_.pull_retries) {
                on_err(reason);
                return;
            }
            ++retries_issued_;
            SimTime backoff = config_.retry_backoff << attempt;
            if (config_.retry_jitter > 0) {
                backoff += static_cast<SimTime>(retry_rng_.UniformInt(
                    static_cast<std::uint64_t>(config_.retry_jitter) + 1));
            }
            sim_.ScheduleAfter(backoff, [this, endpoint, request, on_ok, on_err,
                                         attempt, per_attempt_timeout, cycle]() {
                if (cycle != cycle_id_) return;
                PullAttempt(endpoint, request, on_ok, on_err, attempt + 1,
                            per_attempt_timeout, cycle);
            });
        },
        per_attempt_timeout);
}

void
Controller::UpdateHealth(bool cycle_valid)
{
    if (health_ != HealthState::kNormal) ++unhealthy_cycles_;

    if (!cycle_valid) {
        consecutive_healthy_ = 0;
        ++consecutive_invalid_;
        const bool enter =
            (health_ == HealthState::kNormal &&
             consecutive_invalid_ >= config_.degraded_entry_cycles) ||
            health_ == HealthState::kRecovering;
        if (enter) {
            health_ = HealthState::kDegraded;
            ++degraded_entries_;
            LogEvent(telemetry::EventKind::kDegradedEnter, last_power_,
                     EffectiveLimit(), 0,
                     "cap releases frozen after " +
                         std::to_string(consecutive_invalid_) +
                         " invalid aggregations");
        }
        return;
    }

    consecutive_invalid_ = 0;
    switch (health_) {
      case HealthState::kNormal:
        break;
      case HealthState::kDegraded:
        health_ = HealthState::kRecovering;
        consecutive_healthy_ = 1;
        break;
      case HealthState::kRecovering:
        if (++consecutive_healthy_ >= config_.recovery_exit_cycles) {
            health_ = HealthState::kNormal;
            LogEvent(telemetry::EventKind::kDegradedExit, last_power_,
                     EffectiveLimit(), 0,
                     "recovered after " + std::to_string(consecutive_healthy_) +
                         " healthy cycles");
        }
        break;
    }
}

BandDecision
Controller::DecideBand(Watts aggregated, bool allow_uncap)
{
    BandDecision decision =
        bands_.Evaluate(aggregated, EffectiveLimit(), allow_uncap);
    if (decision.action == BandAction::kCap && contractual_limit_ &&
        *contractual_limit_ < physical_limit_) {
        const Watts target =
            std::min(config_.bands.cap_target_frac * physical_limit_,
                     kContractTargetFrac * *contractual_limit_);
        if (target < aggregated) {
            decision.target = target;
            decision.cut = aggregated - target;
        }
    }
    return decision;
}

Controller::Status
Controller::GetStatus() const
{
    Status status;
    status.endpoint = endpoint_;
    status.active = active_;
    status.capping = bands_.capping();
    status.last_valid = last_valid_;
    status.health = health_;
    status.physical_limit = physical_limit_;
    status.contractual_limit = contractual_limit_;
    status.last_power = last_power_;
    status.aggregations = aggregations_;
    status.invalid_aggregations = invalid_aggregations_;
    status.degraded_entries = degraded_entries_;
    status.frozen_releases = frozen_releases_;
    status.controlled = ControlledCount();
    return status;
}

void
Controller::Snapshot(Archive& ar) const
{
    ar.Str(endpoint_);
    ar.Bool(active_);
    ar.F64(physical_limit_);
    ar.F64(quota_);
    ar.Bool(contractual_limit_.has_value());
    ar.F64(contractual_limit_.value_or(0.0));
    ar.Bool(bands_.capping());
    ar.F64(last_power_);
    ar.Bool(last_valid_);
    ar.U64(aggregations_);
    ar.U64(invalid_aggregations_);
    ar.U64(frozen_releases_);
    ar.U64(cycle_id_);
    // Degraded-mode FSM.
    ar.U8(static_cast<std::uint8_t>(health_));
    ar.I64(consecutive_invalid_);
    ar.I64(consecutive_healthy_);
    ar.U64(degraded_entries_);
    ar.U64(unhealthy_cycles_);
    ar.U64(retries_issued_);
    // Contract provenance + retry-jitter stream position.
    ar.U64(contract_span_);
    for (const std::uint64_t w : retry_rng_.state()) ar.U64(w);
    ar.U64(retry_rng_.draws());
}

std::string
Controller::StatusLine() const
{
    const Status s = GetStatus();
    std::string line = s.endpoint;
    line += s.active ? " [active]" : " [standby]";
    line += " power=" + std::to_string(static_cast<long long>(s.last_power)) +
            "W/" + std::to_string(static_cast<long long>(EffectiveLimit())) +
            "W";
    if (s.contractual_limit) {
        line += " (contract " +
                std::to_string(static_cast<long long>(*s.contractual_limit)) +
                "W)";
    }
    if (!s.last_valid) line += " INVALID";
    if (s.health == HealthState::kDegraded) line += " DEGRADED";
    if (s.health == HealthState::kRecovering) line += " RECOVERING";
    if (s.capping) {
        line += " CAPPING(" + std::to_string(s.controlled) + ")";
    }
    return line;
}

void
Controller::AttachTelemetry(telemetry::MetricsRegistry* registry,
                            telemetry::TraceLog* traces)
{
    traces_ = traces;
    if (registry == nullptr) {
        m_cycles_ = m_caps_ = m_uncaps_ = m_holds_ = m_flaps_ = nullptr;
        m_cycle_us_ = m_cut_w_ = nullptr;
        return;
    }
    const std::string prefix = MetricPrefix();
    m_cycles_ = registry->GetCounter(prefix + ".cycles");
    m_caps_ = registry->GetCounter(prefix + ".caps");
    m_uncaps_ = registry->GetCounter(prefix + ".uncaps");
    m_holds_ = registry->GetCounter(prefix + ".holds");
    m_flaps_ = registry->GetCounter(prefix + ".flaps");
    m_cycle_us_ = registry->GetHistogram(prefix + ".cycle_us");
    // Cut sizes span single-server trims to multi-rack sheds: extend
    // the exponential bounds up to ~1 MW.
    std::vector<double> cut_bounds;
    for (double b = 1.0; b <= 1048576.0; b *= 4.0) cut_bounds.push_back(b);
    m_cut_w_ = registry->GetHistogram(prefix + ".cut_w", std::move(cut_bounds));
}

void
Controller::NoteCapStart()
{
    if (have_release_time_ &&
        sim_.Now() - last_release_time_ <=
            static_cast<SimTime>(config_.flap_window_cycles) *
                config_.pull_cycle) {
        ++flaps_;
        if (m_flaps_ != nullptr) m_flaps_->Inc();
    }
}

void
Controller::NoteRelease()
{
    last_release_time_ = sim_.Now();
    have_release_time_ = true;
}

void
Controller::LogEvent(telemetry::EventKind kind, Watts aggregated, Watts limit,
                     int servers_affected, const std::string& detail)
{
    if (log_ == nullptr) return;
    telemetry::Event event;
    event.time = sim_.Now();
    event.kind = kind;
    event.source = endpoint_;
    event.aggregated_power = aggregated;
    event.limit = limit;
    event.servers_affected = servers_affected;
    event.detail = detail;
    log_->Record(std::move(event));
}

}  // namespace dynamo::core
