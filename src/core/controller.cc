#include "core/controller.h"

#include <utility>

namespace dynamo::core {

Controller::Controller(sim::Simulation& sim, rpc::SimTransport& transport,
                       std::string endpoint, Watts physical_limit, Watts quota,
                       ControllerBaseConfig config, telemetry::EventLog* log)
    : sim_(sim),
      transport_(transport),
      config_(config),
      bands_(config.bands),
      log_(log),
      endpoint_(std::move(endpoint)),
      physical_limit_(physical_limit),
      quota_(quota)
{
}

Controller::~Controller()
{
    Deactivate();
}

void
Controller::Activate(SimTime initial_delay)
{
    if (active_) return;
    active_ = true;
    transport_.Register(endpoint_,
                        [this](const rpc::Payload& req) { return Handle(req); });
    cycle_task_ = sim_.SchedulePeriodic(
        config_.pull_cycle, [this]() {
            if (active_) RunCycle();
        },
        initial_delay);
}

void
Controller::Deactivate()
{
    if (!active_) return;
    active_ = false;
    cycle_task_.Cancel();
    transport_.Unregister(endpoint_);
    // Invalidate any in-flight cycle so late responses are dropped.
    ++cycle_id_;
}

rpc::Payload
Controller::Handle(const rpc::Payload& request)
{
    if (std::any_cast<ControllerReadRequest>(&request) != nullptr) {
        ControllerReadResponse resp;
        resp.controller = endpoint_;
        resp.power = last_power_;
        resp.valid = last_valid_;
        resp.quota = quota_;
        resp.floor = Floor();
        return resp;
    }
    if (const auto* set = std::any_cast<SetContractualLimitRequest>(&request)) {
        SetContractualLimit(set->limit);
        return AckResponse{true};
    }
    if (std::any_cast<ClearContractualLimitRequest>(&request) != nullptr) {
        ClearContractualLimit();
        return AckResponse{true};
    }
    if (std::any_cast<HealthCheckRequest>(&request) != nullptr) {
        return HealthCheckResponse{true};
    }
    return HandleExtra(request);
}

rpc::Payload
Controller::HandleExtra(const rpc::Payload&)
{
    return AckResponse{false};
}

BandDecision
Controller::DecideBand(Watts aggregated)
{
    BandDecision decision = bands_.Evaluate(aggregated, EffectiveLimit());
    if (decision.action == BandAction::kCap && contractual_limit_ &&
        *contractual_limit_ < physical_limit_) {
        const Watts target =
            std::min(config_.bands.cap_target_frac * physical_limit_,
                     kContractTargetFrac * *contractual_limit_);
        if (target < aggregated) {
            decision.target = target;
            decision.cut = aggregated - target;
        }
    }
    return decision;
}

Controller::Status
Controller::GetStatus() const
{
    Status status;
    status.endpoint = endpoint_;
    status.active = active_;
    status.capping = bands_.capping();
    status.last_valid = last_valid_;
    status.physical_limit = physical_limit_;
    status.contractual_limit = contractual_limit_;
    status.last_power = last_power_;
    status.aggregations = aggregations_;
    status.invalid_aggregations = invalid_aggregations_;
    status.controlled = ControlledCount();
    return status;
}

std::string
Controller::StatusLine() const
{
    const Status s = GetStatus();
    std::string line = s.endpoint;
    line += s.active ? " [active]" : " [standby]";
    line += " power=" + std::to_string(static_cast<long long>(s.last_power)) +
            "W/" + std::to_string(static_cast<long long>(EffectiveLimit())) +
            "W";
    if (s.contractual_limit) {
        line += " (contract " +
                std::to_string(static_cast<long long>(*s.contractual_limit)) +
                "W)";
    }
    if (!s.last_valid) line += " INVALID";
    if (s.capping) {
        line += " CAPPING(" + std::to_string(s.controlled) + ")";
    }
    return line;
}

void
Controller::LogEvent(telemetry::EventKind kind, Watts aggregated, Watts limit,
                     int servers_affected, const std::string& detail)
{
    if (log_ == nullptr) return;
    telemetry::Event event;
    event.time = sim_.Now();
    event.kind = kind;
    event.source = endpoint_;
    event.aggregated_power = aggregated;
    event.limit = limit;
    event.servers_affected = servers_affected;
    event.detail = detail;
    log_->Record(std::move(event));
}

}  // namespace dynamo::core
