/**
 * @file
 * Dynamo deployment builder.
 *
 * Constructs the full control plane over a power-delivery tree: one
 * agent per server, one leaf controller per device at the configured
 * leaf level (RPP/PDU breaker in Facebook's production setup, which
 * skips rack-level monitoring), and upper-level controllers mirroring
 * the device hierarchy above, each wired to its children. Optionally
 * adds a per-controller backup with failover management, and a
 * watchdog over all agents.
 */
#ifndef DYNAMO_CORE_DEPLOYMENT_H_
#define DYNAMO_CORE_DEPLOYMENT_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/agent.h"
#include "core/early_warning.h"
#include "core/failover.h"
#include "core/leaf_controller.h"
#include "core/upper_controller.h"
#include "core/watchdog.h"
#include "power/device.h"
#include "rpc/transport.h"
#include "sim/simulation.h"
#include "telemetry/event_log.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace dynamo::core {

/** Knobs for BuildDeployment. */
struct DeploymentConfig
{
    LeafController::Config leaf;
    UpperController::Config upper;

    /** Hierarchy level that gets leaf controllers. */
    power::DeviceLevel leaf_level = power::DeviceLevel::kRpp;

    /** Create standby controller instances plus failover managers. */
    bool with_backup_controllers = false;

    /** Create the agent watchdog. */
    bool with_watchdog = true;

    /**
     * Stagger controller cycle phases so consolidated instances (the
     * paper runs ~100 per binary) don't issue their pull broadcasts in
     * lock-step. Off by default for reproducible single-controller
     * experiments.
     */
    bool stagger_cycles = false;

    /** Create the early-warning monitor over every controller. */
    bool with_early_warning = false;

    /**
     * Wire the deployment's metrics registry and decision-trace log
     * into every controller and agent. On by default; the scale bench
     * turns it off to measure instrumentation overhead.
     */
    bool with_telemetry = true;

    /** Decision-trace ring capacity (spans retained). */
    std::size_t trace_capacity = telemetry::TraceLog::kDefaultCapacity;

    EarlyWarningMonitor::Config early_warning;

    SimTime watchdog_period = 30000;
    SimTime failover_check_period = 5000;
    int failover_miss_threshold = 3;
};

/** The constructed control plane; owns agents, controllers, log. */
class Deployment
{
  public:
    Deployment() = default;
    Deployment(const Deployment&) = delete;
    Deployment& operator=(const Deployment&) = delete;

    telemetry::EventLog& event_log() { return log_; }

    /**
     * Fleet-wide metrics registry. Always present; instruments only
     * record when the config wired them in (with_telemetry).
     */
    telemetry::MetricsRegistry& metrics() { return metrics_; }

    /** Hierarchical decision-trace ring shared by every controller. */
    telemetry::TraceLog& trace_log() { return traces_; }

    const std::vector<std::unique_ptr<DynamoAgent>>& agents() const
    {
        return agents_;
    }

    const std::vector<std::unique_ptr<LeafController>>& leaf_controllers() const
    {
        return leaves_;
    }

    const std::vector<std::unique_ptr<UpperController>>& upper_controllers() const
    {
        return uppers_;
    }

    /** Standby leaf controllers (empty unless backups configured). */
    const std::vector<std::unique_ptr<LeafController>>& leaf_backups() const
    {
        return leaf_backups_;
    }

    /** Standby upper controllers (empty unless backups configured). */
    const std::vector<std::unique_ptr<UpperController>>& upper_backups() const
    {
        return upper_backups_;
    }

    const std::vector<std::unique_ptr<FailoverManager>>& failovers() const
    {
        return failovers_;
    }

    Watchdog* watchdog() { return watchdog_.get(); }

    /** Early-warning monitor; nullptr unless configured. */
    EarlyWarningMonitor* early_warning() { return early_warning_.get(); }

    /** Agent by endpoint ("agent:<server>"); nullptr if absent. */
    DynamoAgent* FindAgent(const std::string& endpoint);

    /** Leaf controller by endpoint ("ctl:<device>"); nullptr if absent. */
    LeafController* FindLeaf(const std::string& endpoint);

    /** Upper controller by endpoint ("ctl:<device>"); nullptr if absent. */
    UpperController* FindUpper(const std::string& endpoint);

    /** Standby leaf instance for a logical endpoint; nullptr if none. */
    LeafController* FindLeafBackup(const std::string& endpoint);

    /** Standby upper instance for a logical endpoint; nullptr if none. */
    UpperController* FindUpperBackup(const std::string& endpoint);

    /**
     * Failover manager guarding a logical endpoint (matched against the
     * manager's primary); nullptr if the endpoint has no standby.
     */
    FailoverManager* FindFailover(const std::string& endpoint);

    /**
     * Planned warm restart of the controller serving `endpoint`: the
     * standby inherits the primary's standing contractual limit (and
     * the span that set it) *before* activating, so the device never
     * sees an uncontracted instant — the difference from an unplanned
     * failover, where the promoted backup must re-learn the contract
     * through reaffirmation. Consumes the standby (the failover
     * manager is marked switched). Returns false when the endpoint has
     * no unswitched standby.
     */
    bool SwapController(const std::string& endpoint);

    /**
     * Adopt a newly provisioned server into the control plane: create
     * and activate its agent, wire the shared metrics (when telemetry
     * was built in), and add it to the watchdog roster. The caller
     * wires the agent into its leaf controller(s) via AddAgent.
     */
    DynamoAgent* AdoptServer(sim::Simulation& sim,
                             rpc::Transport& transport,
                             server::SimServer& server);

    /**
     * Decommission one agent: off the watchdog roster, destroyed, and
     * its transport endpoint deregistered (name released, id
     * recycled). Returns false if unknown.
     */
    bool RemoveAgent(const std::string& endpoint,
                     rpc::Transport& transport);

    /**
     * Decommission a leaf controller: deactivates primary and standby,
     * destroys their failover manager, drops them from the
     * early-warning roster, and deregisters the logical endpoint.
     * Returns false if unknown.
     */
    bool RemoveLeaf(const std::string& endpoint,
                    rpc::Transport& transport);

    /** Conventional endpoint names. */
    static std::string AgentEndpoint(const std::string& server_name)
    {
        return "agent:" + server_name;
    }

    static std::string ControllerEndpoint(const std::string& device_name)
    {
        return "ctl:" + device_name;
    }

    /**
     * Serialize the whole control plane: every agent, leaf and upper
     * controller (including standbys), and the decision-trace ring.
     * Wall-clock metrics (cycle-duration histograms) are deliberately
     * excluded — they are nondeterministic across runs.
     */
    void Snapshot(Archive& ar) const;

  private:
    friend class DeploymentBuilder;

    telemetry::EventLog log_;
    telemetry::MetricsRegistry metrics_;
    telemetry::TraceLog traces_;
    std::vector<std::unique_ptr<DynamoAgent>> agents_;
    std::vector<std::unique_ptr<LeafController>> leaves_;
    std::vector<std::unique_ptr<UpperController>> uppers_;
    std::vector<std::unique_ptr<LeafController>> leaf_backups_;
    std::vector<std::unique_ptr<UpperController>> upper_backups_;
    std::vector<std::unique_ptr<FailoverManager>> failovers_;
    std::unique_ptr<Watchdog> watchdog_;
    std::unique_ptr<EarlyWarningMonitor> early_warning_;
    std::unordered_map<std::string, DynamoAgent*> agent_by_endpoint_;
    std::unordered_map<std::string, LeafController*> leaf_by_endpoint_;
    std::unordered_map<std::string, UpperController*> upper_by_endpoint_;

    /** True when BuildDeployment wired metrics/traces (with_telemetry). */
    bool telemetry_wired_ = false;
};

/**
 * Build and activate the control plane for the subtree under `root`.
 * Servers are discovered as SimServer loads attached to devices in
 * each leaf-level subtree. The returned deployment must not outlive
 * `sim`, `transport`, `root`, or the servers.
 */
std::unique_ptr<Deployment> BuildDeployment(sim::Simulation& sim,
                                            rpc::Transport& transport,
                                            power::PowerDevice& root,
                                            const DeploymentConfig& config);

/** The SLA minimum power cap for a server per its service traits. */
Watts SlaMinCapFor(const server::SimServer& server);

/** AgentInfo for a server, using its spec and service traits. */
AgentInfo AgentInfoFor(const server::SimServer& server);

}  // namespace dynamo::core

#endif  // DYNAMO_CORE_DEPLOYMENT_H_
