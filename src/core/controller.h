/**
 * @file
 * Shared machinery of Dynamo power controllers.
 *
 * Every protected power device gets a matching controller instance
 * (Section III-A). Leaf and upper-level controllers share: a periodic
 * pull/aggregate cycle, the three-band policy, the effective limit
 * min(physical, contractual), a transport endpoint serving parent
 * reads + contractual-limit commands + health checks, and activation
 * state used by primary/backup failover. The endpoint name is a
 * *logical* identity: when a backup activates it registers under the
 * same endpoint, so parents and the failover manager are oblivious to
 * which instance is serving.
 */
#ifndef DYNAMO_CORE_CONTROLLER_H_
#define DYNAMO_CORE_CONTROLLER_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "common/archive.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/api.h"
#include "core/three_band.h"
#include "rpc/transport.h"
#include "sim/simulation.h"
#include "telemetry/event_log.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace dynamo::core {

/** Configuration shared by all controller types. */
struct ControllerBaseConfig
{
    /** Power pull period in ms (3 s leaf / 9 s upper in the paper). */
    SimTime pull_cycle = 3000;

    /** Delay between issuing pulls and aggregating responses, ms. */
    SimTime response_wait = 1000;

    /**
     * Per-pull RPC budget, ms. Must be < response_wait (enforced at
     * controller construction); shared across all attempts when pulls
     * are retried.
     */
    SimTime rpc_timeout = 900;

    /** Three-band thresholds relative to the effective limit. */
    ThreeBandConfig bands;

    /**
     * If more than this fraction of pulls fail, the aggregation is
     * invalid: no action is taken and an alarm is raised instead
     * (Section III-C1 uses 20 %).
     */
    double max_failure_fraction = 0.2;

    /**
     * Dry-run mode (Section VI, service-aware testing): monitor, run
     * the full decision logic, and log every action it *would* take —
     * but never actually throttle servers or send contractual limits.
     * Logged events carry the "dry-run" detail tag.
     */
    bool dry_run = false;

    /**
     * Extra pull attempts after a failed first try. The rpc_timeout
     * budget is split evenly across attempts so the whole retry chain
     * still finishes before aggregation; retries are spaced by
     * exponential backoff with jitter.
     */
    int pull_retries = 2;

    /** Backoff before the first retry, ms (doubles per attempt). */
    SimTime retry_backoff = 25;

    /** Max uniform jitter added to each backoff, ms. */
    SimTime retry_jitter = 10;

    /**
     * TTL for last-known-good readings, ms. A failed pull is first
     * patched with the endpoint's own cached reading while it is
     * fresher than this; only stale entries fall back to neighbour
     * estimation. 0 selects the default of 4 pull cycles.
     */
    SimTime reading_ttl = 0;

    /**
     * Consecutive invalid aggregations (failure fraction above
     * max_failure_fraction) before the controller drops from NORMAL
     * to DEGRADED and freezes cap releases.
     */
    int degraded_entry_cycles = 2;

    /**
     * Consecutive healthy cycles required in RECOVERING before the
     * controller returns to NORMAL and may release caps again
     * (hysteresis against flapping inputs).
     */
    int recovery_exit_cycles = 3;

    /**
     * Flap window: a capping episode that starts within this many
     * pull cycles of the previous release counts as a *flap* — the
     * controller released too eagerly and was immediately forced to
     * re-cap. Surfaced as the `<prefix>.flaps` counter and audited by
     * the invariant checker; the policy-lab judge scores brains on it.
     */
    int flap_window_cycles = 5;
};

/**
 * Controller health (degraded-mode state machine).
 *
 *   NORMAL --(N consecutive invalid aggregations)--> DEGRADED
 *   DEGRADED --(one valid aggregation)--> RECOVERING
 *   RECOVERING --(M consecutive valid)--> NORMAL
 *   RECOVERING --(any invalid)--> DEGRADED
 *
 * Outside NORMAL the controller still caps on valid data (capping is
 * the safe direction) but never releases caps: uncapping on partial or
 * stale readings could let a genuinely overloaded breaker trip.
 */
enum class HealthState { kNormal, kDegraded, kRecovering };

/** Readable name ("normal", "degraded", "recovering"). */
const char* HealthStateName(HealthState state);

/**
 * RAII wall-clock timer: observes the scope's duration in microseconds
 * into `hist` on destruction. Null-safe — with no histogram attached
 * it never touches the clock, so untelemetered runs pay nothing.
 */
class CycleTimer
{
  public:
    explicit CycleTimer(telemetry::Histogram* hist) : hist_(hist)
    {
        if (hist_ != nullptr) start_ = std::chrono::steady_clock::now();
    }

    ~CycleTimer()
    {
        if (hist_ == nullptr) return;
        const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_);
        hist_->Observe(static_cast<double>(us.count()));
    }

    CycleTimer(const CycleTimer&) = delete;
    CycleTimer& operator=(const CycleTimer&) = delete;

  private:
    telemetry::Histogram* hist_;
    std::chrono::steady_clock::time_point start_;
};

/** Abstract controller: one instance protects one power device. */
class Controller
{
  public:
    /**
     * @param sim       Simulation clock.
     * @param transport RPC transport (endpoint registered on Activate).
     * @param endpoint  Logical endpoint / controller name.
     * @param physical_limit  The device breaker's rated power.
     * @param quota     The device's planned-peak power quota.
     * @param config    Shared configuration.
     * @param log       Event log (may be nullptr).
     *
     * @throws std::invalid_argument if the config violates
     *         rpc_timeout < response_wait or has negative retry /
     *         hysteresis knobs.
     */
    Controller(sim::Simulation& sim, rpc::Transport& transport,
               std::string endpoint, Watts physical_limit, Watts quota,
               ControllerBaseConfig config, telemetry::EventLog* log);

    virtual ~Controller();

    Controller(const Controller&) = delete;
    Controller& operator=(const Controller&) = delete;

    const std::string& endpoint() const { return endpoint_; }

    /** Interned id of this controller's endpoint (hot-path RPC key). */
    rpc::EndpointId endpoint_id() const { return endpoint_id_; }
    Watts physical_limit() const { return physical_limit_; }
    Watts quota() const { return quota_; }

    /**
     * Register the endpoint and start the periodic cycle. The first
     * cycle fires after `initial_delay` ms (default: one full period);
     * deployments stagger this across controllers so hundreds of
     * consolidated instances don't pull in lock-step.
     */
    void Activate(SimTime initial_delay = -1);

    /** Stop cycling and unregister the endpoint. */
    void Deactivate();

    /** Simulated crash (== Deactivate; named for test readability). */
    void Crash() { Deactivate(); }

    bool active() const { return active_; }

    /** Parent-imposed limit (punish-offender-first coordination). */
    void SetContractualLimit(Watts limit) { contractual_limit_ = limit; }
    void ClearContractualLimit() { contractual_limit_.reset(); }

    /**
     * Re-rate the physical limit (grid demand-response / thermal
     * derate scenarios). The effective limit follows immediately; the
     * next cycle's band decision caps toward the derated budget.
     */
    void SetPhysicalLimit(Watts limit) { physical_limit_ = limit; }
    std::optional<Watts> contractual_limit() const { return contractual_limit_; }

    /**
     * Copy the standing contractual limit (and the parent span that set
     * it) from another instance — the warm-restart handover: a planned
     * controller swap moves the contract to the standby *before* it
     * activates, so the device is never momentarily uncontracted the
     * way an unplanned failover leaves it until reaffirmation.
     */
    void InheritContract(const Controller& from)
    {
        contractual_limit_ = from.contractual_limit_;
        contract_span_ = from.contract_span_;
    }

    /**
     * Wire this controller to the fleet's spec-epoch counter (owned by
     * the fleet; outlives the controller). Once attached, outgoing
     * contracts are stamped with the current epoch and incoming
     * ContractUpdates from an older epoch are rejected — they were
     * computed against a topology a reconfiguration has since
     * replaced. Pass nullptr to detach (hand-wired rigs).
     */
    void AttachEpoch(const std::uint64_t* epoch) { epoch_ = epoch; }

    /** Fleet spec epoch this controller observes (0 when detached). */
    std::uint64_t current_epoch() const
    {
        return epoch_ != nullptr ? *epoch_ : 0;
    }

    /** ContractUpdates refused for carrying a stale spec epoch. */
    std::uint64_t stale_epoch_rejections() const
    {
        return stale_epoch_rejections_;
    }

    /** min(physical, contractual): the limit capping decisions use. */
    Watts EffectiveLimit() const
    {
        if (contractual_limit_) return std::min(*contractual_limit_, physical_limit_);
        return physical_limit_;
    }

    /** Last aggregated power (valid only if last_valid()). */
    Watts last_aggregated_power() const { return last_power_; }

    /** False after an invalid aggregation (too many pull failures). */
    bool last_valid() const { return last_valid_; }

    /** True while this controller's caps are in force. */
    bool capping() const { return bands_.capping(); }

    /** Current degraded-mode state. */
    HealthState health() const { return health_; }

    /** True while cap releases are frozen (health != NORMAL). */
    bool releases_frozen() const { return health_ != HealthState::kNormal; }

    /** Times the controller entered DEGRADED. */
    std::uint64_t degraded_entries() const { return degraded_entries_; }

    /** Aggregation cycles spent outside NORMAL so far. */
    std::uint64_t unhealthy_cycles() const { return unhealthy_cycles_; }

    /** Uncap decisions suppressed by the release freeze. */
    std::uint64_t frozen_releases() const { return frozen_releases_; }

    /** Pull retry attempts issued so far. */
    std::uint64_t retries_issued() const { return retries_issued_; }

    /**
     * Capping episodes re-entered within flap_window_cycles of the
     * previous release. Caps adopted from a predecessor never count:
     * adoption re-enters the existing episode instead of starting a
     * fresh one.
     */
    std::uint64_t flaps() const { return flaps_; }

    /** Lowest contractual limit this controller could honor. */
    virtual Watts Floor() const = 0;

    std::uint64_t aggregations() const { return aggregations_; }
    std::uint64_t invalid_aggregations() const { return invalid_aggregations_; }

    /** Operator-facing snapshot of one controller's state. */
    struct Status
    {
        std::string endpoint;
        bool active = false;
        bool capping = false;
        bool last_valid = false;
        HealthState health = HealthState::kNormal;
        Watts physical_limit = 0.0;
        std::optional<Watts> contractual_limit;
        Watts last_power = 0.0;
        std::uint64_t aggregations = 0;
        std::uint64_t invalid_aggregations = 0;
        std::uint64_t degraded_entries = 0;
        std::uint64_t frozen_releases = 0;

        /** Servers capped (leaf) or children contracted (upper). */
        std::size_t controlled = 0;
    };

    /** Snapshot the controller's state. */
    Status GetStatus() const;

    /** One-line human-readable rendering of GetStatus(). */
    std::string StatusLine() const;

    /**
     * Wire this controller into the observability layer. Metric
     * handles (`<prefix>.cycles`, `<prefix>.cycle_us`, `<prefix>.cut_w`,
     * `<prefix>.caps` / `.uncaps` / `.holds`, prefix = MetricPrefix())
     * are resolved once here; decision cycles then emit spans into
     * `traces` and increment through cached pointers. Either argument
     * may be nullptr to leave that half detached.
     */
    void AttachTelemetry(telemetry::MetricsRegistry* registry,
                         telemetry::TraceLog* traces);

    /** Decision-trace sink (nullptr when not attached). */
    telemetry::TraceLog* trace_log() const { return traces_; }

    /**
     * Span id of the parent decision that set the current contractual
     * limit (kNoSpan when none); child decision spans link to it.
     */
    telemetry::SpanId contract_span() const { return contract_span_; }

    /**
     * Serialize the controller's full decision state in canonical
     * binary form: endpoint, activation, contractual limit, band
     * (capping) state, the degraded-mode FSM (health, hysteresis
     * counters, entry/freeze tallies), aggregation counters, and the
     * retry-jitter RNG position. Subclasses extend this with their
     * caches (leaf: per-agent last-known-good readings and issued
     * caps; upper: per-child contract state). Used by replay
     * checkpoints; must not mutate state or the simulation.
     */
    virtual void Snapshot(Archive& ar) const;

  protected:
    /** Subclass contribution to Status::controlled. */
    virtual std::size_t ControlledCount() const = 0;

    /** Metric name prefix for this controller level ("leaf"/"upper"). */
    virtual const char* MetricPrefix() const = 0;

    /** Issue this cycle's pulls; called every pull_cycle while active. */
    virtual void RunCycle() = 0;

    /**
     * Three-band decision with contract-aware target correction.
     *
     * A contractual limit is already the parent's conservative
     * allocation (parent power minus the needed cut). Aiming the usual
     * 5 %-below-limit target at it would stack another cut on top at
     * every hierarchy level — three levels deep that overshoots past
     * the uncap threshold and the whole hierarchy oscillates. Under a
     * binding contract the target is therefore placed just below the
     * contract itself (kContractTargetFrac), which settles each level
     * inside its hysteresis band.
     *
     * With `allow_uncap` false (controller not in NORMAL health) a due
     * release comes back as kHold; callers count it and log kCapHold.
     */
    BandDecision DecideBand(Watts aggregated, bool allow_uncap = true);

    /** Target fraction of a binding contractual limit. */
    static constexpr double kContractTargetFrac = 0.985;

    /** Hook for subclasses to serve extra request types; default nack. */
    virtual rpc::Payload HandleExtra(const rpc::Payload& request);

    /**
     * Issue one pull with bounded retry: the rpc_timeout budget is
     * split evenly across 1 + pull_retries attempts; failed attempts
     * are retried after exponential backoff with jitter. Exactly one
     * of `on_ok` / `on_err` fires unless the cycle advances first, in
     * which case the chain is abandoned (the next cycle re-pulls).
     */
    void PullWithRetry(rpc::EndpointId endpoint, rpc::Payload request,
                       rpc::ResponseCallback on_ok, rpc::ErrorCallback on_err);

    /**
     * Advance the health state machine after one aggregation attempt
     * (valid or not), logging kDegradedEnter / kDegradedExit events on
     * transitions.
     */
    void UpdateHealth(bool cycle_valid);

    /** Effective last-known-good TTL (resolves the 0 = auto default). */
    SimTime ReadingTtl() const
    {
        return config_.reading_ttl > 0 ? config_.reading_ttl
                                       : 4 * config_.pull_cycle;
    }

    /** Append to the event log (no-op when log is null). */
    void LogEvent(telemetry::EventKind kind, Watts aggregated, Watts limit,
                  int servers_affected, const std::string& detail = "");

    /**
     * Flap accounting: subclasses call NoteCapStart when a fresh
     * capping episode begins (kCap with was_capping false) and
     * NoteRelease on every uncap. A start within flap_window_cycles ×
     * pull_cycle of the last release increments the flap counter.
     * Deliberately NOT part of Snapshot: the committed golden-journal
     * checkpoints predate the counter and the metric is diagnostic,
     * not decision state.
     */
    void NoteCapStart();
    void NoteRelease();

    sim::Simulation& sim_;
    rpc::Transport& transport_;
    ControllerBaseConfig config_;
    ThreeBandPolicy bands_;
    telemetry::EventLog* log_;

    /** Decision-trace sink; nullptr when telemetry is not attached. */
    telemetry::TraceLog* traces_ = nullptr;

    /** Parent span that set the current contractual limit (or kNoSpan). */
    telemetry::SpanId contract_span_ = telemetry::kNoSpan;

    /** Cached metric handles; null when no registry is attached. */
    telemetry::Counter* m_cycles_ = nullptr;
    telemetry::Counter* m_caps_ = nullptr;
    telemetry::Counter* m_uncaps_ = nullptr;
    telemetry::Counter* m_holds_ = nullptr;
    telemetry::Counter* m_flaps_ = nullptr;
    telemetry::Histogram* m_cycle_us_ = nullptr;
    telemetry::Histogram* m_cut_w_ = nullptr;

    Watts last_power_ = 0.0;
    bool last_valid_ = false;
    std::uint64_t aggregations_ = 0;
    std::uint64_t invalid_aggregations_ = 0;
    std::uint64_t frozen_releases_ = 0;

    /** Incremented per cycle; stale async responses are discarded. */
    std::uint64_t cycle_id_ = 0;

  private:
    void PullAttempt(rpc::EndpointId endpoint, rpc::Payload request,
                     rpc::ResponseCallback on_ok, rpc::ErrorCallback on_err,
                     int attempt, SimTime per_attempt_timeout,
                     std::uint64_t cycle);

    rpc::Payload Handle(const rpc::Payload& request);

    std::string endpoint_;
    rpc::EndpointId endpoint_id_ = rpc::kInvalidEndpoint;
    Watts physical_limit_;
    Watts quota_;
    std::optional<Watts> contractual_limit_;
    bool active_ = false;
    sim::TaskHandle cycle_task_;

    /** Fleet spec-epoch counter; nullptr for hand-wired rigs. */
    const std::uint64_t* epoch_ = nullptr;
    std::uint64_t stale_epoch_rejections_ = 0;

    HealthState health_ = HealthState::kNormal;
    int consecutive_invalid_ = 0;
    int consecutive_healthy_ = 0;
    std::uint64_t degraded_entries_ = 0;
    std::uint64_t unhealthy_cycles_ = 0;
    std::uint64_t retries_issued_ = 0;
    Rng retry_rng_;

    /** Flap accounting (see NoteCapStart; excluded from Snapshot). */
    std::uint64_t flaps_ = 0;
    SimTime last_release_time_ = 0;
    bool have_release_time_ = false;
};

}  // namespace dynamo::core

#endif  // DYNAMO_CORE_CONTROLLER_H_
