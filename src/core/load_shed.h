/**
 * @file
 * Emergency traffic shedding — one of the "new types of emergency
 * response actions" the paper's conclusion names as future work.
 *
 * RAPL capping bottoms out at the SLA floors: when a power cut cannot
 * be satisfied by frequency throttling alone (the plan comes back
 * unsatisfied), the only remaining levers are the traffic layer's.
 * The paper already observes the interplay in Fig. 11 — "load
 * balancing responded by sending less traffic to those servers" — and
 * this interface makes it an explicit, controller-initiated action:
 * the leaf controller asks the traffic layer to drain a fraction of
 * its domain's load, and releases the request when it uncaps.
 */
#ifndef DYNAMO_CORE_LOAD_SHED_H_
#define DYNAMO_CORE_LOAD_SHED_H_

#include <string>

namespace dynamo::core {

/** Traffic-layer hook a controller can ask to drain its domain. */
class LoadShedder
{
  public:
    virtual ~LoadShedder() = default;

    /**
     * Reduce the load directed at `domain` (a controller endpoint) by
     * `fraction` of nominal (0 = none, 1 = drain fully). Repeated
     * calls replace the previous request.
     */
    virtual void RequestShed(const std::string& domain, double fraction) = 0;

    /** Restore full traffic to `domain`. */
    virtual void ClearShed(const std::string& domain) = 0;
};

}  // namespace dynamo::core

#endif  // DYNAMO_CORE_LOAD_SHED_H_
