/**
 * @file
 * The three-band capping/uncapping algorithm (Fig. 10, Section III-C2).
 *
 * A controller compares its aggregated power against three bands
 * derived from the breaker limit:
 *
 *   - capping threshold (top, typically 99 % of the limit): when
 *     exceeded, cap down to the capping target;
 *   - capping target (middle, conservatively 5 % below the limit);
 *   - uncapping threshold (bottom): uncap only once power falls below
 *     it, which is what eliminates cap/uncap oscillation.
 *
 * The paper chose this deliberately simple policy to be debuggable at
 * fleet scale ("keep the design simple to achieve reliability at
 * scale"); the thresholds are per-controller configurable to trade
 * power efficiency against performance at each hierarchy level.
 */
#ifndef DYNAMO_CORE_THREE_BAND_H_
#define DYNAMO_CORE_THREE_BAND_H_

#include "common/units.h"

namespace dynamo::core {

/** Band fractions relative to the (effective) breaker limit. */
struct ThreeBandConfig
{
    double cap_threshold_frac = 0.99;
    double cap_target_frac = 0.95;
    double uncap_threshold_frac = 0.90;

    /** True if thresholds are ordered sensibly. */
    bool Valid() const
    {
        return cap_threshold_frac > cap_target_frac &&
               cap_target_frac > uncap_threshold_frac &&
               uncap_threshold_frac > 0.0 && cap_threshold_frac <= 1.0;
    }
};

/**
 * What the policy wants done this cycle. kHold is reported when an
 * uncap would have fired but the caller disallowed releases (degraded
 * or recovering controller health): caps stay in force and the policy
 * keeps its capping state so the release fires once allowed again.
 */
enum class BandAction { kNone, kCap, kUncap, kHold };

/** Decision plus the numbers behind it. */
struct BandDecision
{
    BandAction action = BandAction::kNone;

    /** Power level to cap down to (valid when action == kCap). */
    Watts target = 0.0;

    /** Total power cut needed (aggregated - target). */
    Watts cut = 0.0;
};

/**
 * Stateful three-band evaluator. Tracks whether capping is currently
 * in force so that uncapping only triggers from the capped state and
 * repeated over-threshold readings are reported as further kCap
 * actions (the caller distinguishes start vs update via capping()).
 */
class ThreeBandPolicy
{
  public:
    explicit ThreeBandPolicy(ThreeBandConfig config = ThreeBandConfig{});

    /**
     * Evaluate one aggregated reading against `limit`. With
     * `allow_uncap` false a due release is reported as kHold instead
     * of kUncap and the capping state is retained.
     */
    BandDecision Evaluate(Watts aggregated, Watts limit,
                          bool allow_uncap = true);

    /** True while caps issued by this policy are in force. */
    bool capping() const { return capping_; }

    /** Forget capping state (e.g. after failover). */
    void Reset() { capping_ = false; }

    /**
     * Adopt an in-flight capping event discovered rather than started
     * — caps found already applied on the hardware (a predecessor's
     * event surviving controller failover, or a lost uncap command).
     * Puts the policy in the capping state so updates and the eventual
     * release follow the normal three-band path.
     */
    void AdoptCappingEvent() { capping_ = true; }

    const ThreeBandConfig& config() const { return config_; }

  private:
    ThreeBandConfig config_;
    bool capping_ = false;
};

}  // namespace dynamo::core

#endif  // DYNAMO_CORE_THREE_BAND_H_
