/**
 * @file
 * Controller failover (Section III-E).
 *
 * "In case a controller crashes, we use a redundant backup controller
 * that resides in a different location and can take control as soon
 * as the primary controller fails." The failover manager health-checks
 * the controller's logical endpoint; after a run of missed checks it
 * activates the backup instance, which registers under the same
 * logical endpoint so parents and agents are unaffected.
 */
#ifndef DYNAMO_CORE_FAILOVER_H_
#define DYNAMO_CORE_FAILOVER_H_

#include <cstdint>

#include "core/controller.h"
#include "rpc/transport.h"
#include "sim/simulation.h"
#include "telemetry/event_log.h"

namespace dynamo::core {

/** Health-checks a primary controller and promotes its backup. */
class FailoverManager
{
  public:
    /**
     * @param primary  Initially active instance.
     * @param backup   Standby instance; must share the primary's
     *                 logical endpoint and roster. Activated on
     *                 failover.
     * @param check_period    Health-check period, ms.
     * @param miss_threshold  Consecutive misses before promoting.
     */
    FailoverManager(sim::Simulation& sim, rpc::Transport& transport,
                    Controller& primary, Controller& backup,
                    SimTime check_period = 5000, int miss_threshold = 3,
                    telemetry::EventLog* log = nullptr);

    ~FailoverManager() { task_.Cancel(); }

    FailoverManager(const FailoverManager&) = delete;
    FailoverManager& operator=(const FailoverManager&) = delete;

    /** True once the backup has been promoted. */
    bool switched() const { return switched_; }

    int consecutive_misses() const { return misses_; }

    Controller& primary() { return primary_; }
    Controller& backup() { return backup_; }

    /**
     * Promote the backup immediately, without waiting for the probe
     * cadence to accumulate misses — the unplanned-kill path of a
     * reconfiguration storm (a planned warm restart goes through
     * Deployment::SwapController instead). Deactivates the primary,
     * activates the backup under the same logical endpoint, and logs
     * kFailover. No-op if already switched.
     */
    void ForceSwitch();

    /**
     * Planned warm restart: the standby inherits the primary's
     * standing contractual limit (and its decision span) *before*
     * activating, so the device's effective limit is continuous across
     * the swap — the difference from ForceSwitch, where a promoted
     * backup must re-learn the contract through parent reaffirmation.
     * Consumes the standby (probing stops). Returns false if already
     * switched.
     */
    bool WarmSwap();

  private:
    void Check();

    /** Common promotion step for Check() and ForceSwitch(). */
    void Promote();

    sim::Simulation& sim_;
    rpc::Transport& transport_;
    Controller& primary_;
    Controller& backup_;
    int miss_threshold_;
    telemetry::EventLog* log_;
    int misses_ = 0;
    bool switched_ = false;
    sim::TaskHandle task_;
};

}  // namespace dynamo::core

#endif  // DYNAMO_CORE_FAILOVER_H_
