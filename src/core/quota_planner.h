/**
 * @file
 * Power quota planning.
 *
 * The punish-offender-first algorithm judges children against their
 * power quota — "planned peak power consumption" — but the paper takes
 * the quotas themselves as given by capacity planning. This module
 * closes that loop: given each device's observed power history, it
 * proposes quotas as a high percentile of observed draw plus headroom,
 * then scales the proposal so siblings fit inside the parent's budget
 * (oversubscription ratio ≤ requested). Re-planning from live history
 * is how stranded power gets reclaimed over time ("with Dynamo
 * guaranteeing power safety, we are able to experiment with more
 * aggressive power subscription").
 */
#ifndef DYNAMO_CORE_QUOTA_PLANNER_H_
#define DYNAMO_CORE_QUOTA_PLANNER_H_

#include <string>
#include <vector>

#include "common/units.h"
#include "telemetry/timeseries.h"

namespace dynamo::core {

/** Planning inputs for one device. */
struct QuotaInput
{
    std::string name;

    /** Observed power history for the device. */
    const telemetry::TimeSeries* history = nullptr;

    /** Lowest quota to ever assign (e.g. sum of SLA floors). */
    Watts min_quota = 0.0;
};

/** Planner knobs. */
struct QuotaPlanSpec
{
    /** Percentile of observed power treated as the planning peak. */
    double peak_percentile = 99.0;

    /** Multiplicative headroom above the planning peak. */
    double headroom = 1.10;

    /**
     * Budget the quotas must fit inside (typically the parent device's
     * rating, or rating x an oversubscription allowance).
     */
    Watts parent_budget = 0.0;
};

/** One device's proposed quota. */
struct QuotaAssignment
{
    std::string name;
    Watts planning_peak = 0.0;
    Watts quota = 0.0;
};

/** Result of a planning round. */
struct QuotaPlan
{
    std::vector<QuotaAssignment> assignments;

    /** Sum of assigned quotas. */
    Watts total = 0.0;

    /**
     * True if the raw proposals fit the budget without scaling; false
     * means the fleet is hotter than the budget and proposals were
     * scaled down (respecting min_quota floors).
     */
    bool fits_unscaled = false;
};

/**
 * Propose quotas for sibling devices sharing `spec.parent_budget`.
 * Devices with empty history receive their min_quota.
 */
QuotaPlan PlanQuotas(const std::vector<QuotaInput>& devices,
                     const QuotaPlanSpec& spec);

}  // namespace dynamo::core

#endif  // DYNAMO_CORE_QUOTA_PLANNER_H_
