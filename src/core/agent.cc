#include "core/agent.h"

#include <utility>

#include "telemetry/metrics.h"

namespace dynamo::core {

DynamoAgent::DynamoAgent(sim::Simulation& sim, rpc::Transport& transport,
                         server::SimServer& server, std::string endpoint)
    : sim_(sim), transport_(transport), server_(server),
      endpoint_(std::move(endpoint)),
      endpoint_id_(transport.Resolve(endpoint_))
{
    Restart();
}

DynamoAgent::~DynamoAgent()
{
    if (alive_) transport_.Unregister(endpoint_id_);
}

void
DynamoAgent::Crash()
{
    if (!alive_) return;
    alive_ = false;
    transport_.Unregister(endpoint_id_);
}

void
DynamoAgent::Restart()
{
    if (alive_) return;
    alive_ = true;
    transport_.Register(endpoint_id_,
                        [this](const rpc::Payload& req) { return Handle(req); });
}

void
DynamoAgent::AttachMetrics(telemetry::MetricsRegistry* registry)
{
    if (registry == nullptr) {
        m_reads_ = m_caps_ = m_uncaps_ = m_tunes_ = nullptr;
        return;
    }
    m_reads_ = registry->GetCounter("agent.reads");
    m_caps_ = registry->GetCounter("agent.caps");
    m_uncaps_ = registry->GetCounter("agent.uncaps");
    m_tunes_ = registry->GetCounter("agent.tunes");
}

rpc::Payload
DynamoAgent::Handle(const rpc::Payload& request)
{
    const SimTime now = sim_.Now();

    if (std::any_cast<api::PowerReadRequest>(&request) != nullptr) {
        ++reads_served_;
        if (m_reads_ != nullptr) m_reads_->Inc();
        api::PowerReadResult resp;
        resp.source = server_.name();
        resp.service = server_.service();
        resp.capped = server_.capped();
        resp.power_limit = server_.power_limit();
        if (server_.has_sensor()) {
            resp.power = server_.SensorRead(now);
            resp.estimated = false;
        } else {
            resp.power = server_.EstimateRead(now);
            resp.estimated = true;
        }
        const server::SimServer::Breakdown bd = server_.BreakdownAt(now);
        resp.cpu_power = bd.cpu;
        resp.memory_power = bd.memory;
        resp.other_power = bd.other;
        resp.conversion_loss = bd.conversion_loss;
        return resp;
    }
    if (const auto* cap = std::any_cast<api::CapRequest>(&request)) {
        if (cap->limit) {
            ++caps_applied_;
            if (m_caps_ != nullptr) m_caps_->Inc();
            server_.SetPowerLimit(*cap->limit, now);
        } else {
            ++uncaps_applied_;
            if (m_uncaps_ != nullptr) m_uncaps_->Inc();
            server_.ClearPowerLimit(now);
        }
        return api::CapResult{api::Status::Ok()};
    }
    if (const auto* tune = std::any_cast<api::TuneEstimate>(&request)) {
        // Estimate=1 / reference=ratio nudges the model's bias by the
        // controller-computed correction factor.
        server_.estimator().Tune(1.0, tune->reference_ratio);
        ++tunes_applied_;
        if (m_tunes_ != nullptr) m_tunes_->Inc();
        return api::CapResult{api::Status::Ok()};
    }
    return api::CapResult{api::Status::Unimplemented("unknown agent request")};
}

}  // namespace dynamo::core
