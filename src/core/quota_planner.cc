#include "core/quota_planner.h"

#include <algorithm>

#include "common/stats.h"

namespace dynamo::core {

QuotaPlan
PlanQuotas(const std::vector<QuotaInput>& devices, const QuotaPlanSpec& spec)
{
    QuotaPlan plan;
    plan.assignments.reserve(devices.size());

    // Raw proposals: percentile peak x headroom, floored at min_quota.
    Watts raw_total = 0.0;
    Watts floor_total = 0.0;
    for (const QuotaInput& device : devices) {
        QuotaAssignment assignment;
        assignment.name = device.name;
        if (device.history != nullptr && !device.history->empty()) {
            assignment.planning_peak =
                Percentile(device.history->Values(), spec.peak_percentile);
        }
        assignment.quota = std::max(device.min_quota,
                                    assignment.planning_peak * spec.headroom);
        raw_total += assignment.quota;
        floor_total += device.min_quota;
        plan.assignments.push_back(std::move(assignment));
    }

    plan.fits_unscaled = raw_total <= spec.parent_budget;
    if (plan.fits_unscaled || raw_total <= 0.0) {
        plan.total = raw_total;
        return plan;
    }

    // Scale the above-floor portion of every proposal down uniformly so
    // the total meets the budget; floors are never violated (if even
    // the floors exceed the budget, the plan reports the floor total
    // and the operator has a provisioning problem, not a planning one).
    const Watts scalable = raw_total - floor_total;
    const Watts target_scalable =
        std::max(0.0, spec.parent_budget - floor_total);
    const double scale = scalable > 0.0 ? target_scalable / scalable : 0.0;
    plan.total = 0.0;
    for (std::size_t i = 0; i < plan.assignments.size(); ++i) {
        QuotaAssignment& a = plan.assignments[i];
        const Watts floor = devices[i].min_quota;
        a.quota = floor + (a.quota - floor) * scale;
        plan.total += a.quota;
    }
    return plan;
}

}  // namespace dynamo::core
