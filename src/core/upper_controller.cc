#include "core/upper_controller.h"

#include <utility>

namespace dynamo::core {

UpperController::UpperController(sim::Simulation& sim,
                                 rpc::Transport& transport,
                                 std::string endpoint, Watts physical_limit,
                                 Watts quota, Config config,
                                 telemetry::EventLog* log)
    : Controller(sim, transport, std::move(endpoint), physical_limit, quota,
                 config.base, log),
      upper_config_(config),
      policy_(policy::MakeCappingPolicy(config.capping_policy))
{
}

void
UpperController::AddChild(const std::string& endpoint)
{
    ChildState state;
    state.endpoint = endpoint;
    state.id = transport_.Resolve(endpoint);
    children_.push_back(std::move(state));
}

bool
UpperController::RemoveChild(const std::string& endpoint)
{
    for (auto it = children_.begin(); it != children_.end(); ++it) {
        if (it->endpoint == endpoint) {
            children_.erase(it);
            return true;
        }
    }
    return false;
}

std::size_t
UpperController::contracted_count() const
{
    std::size_t n = 0;
    for (const ChildState& c : children_) {
        if (c.contracted) ++n;
    }
    return n;
}

std::optional<api::PowerReadResult>
UpperController::LastChildResponse(const std::string& endpoint) const
{
    for (const ChildState& c : children_) {
        if (c.endpoint == endpoint && c.have_last) return c.last;
    }
    return std::nullopt;
}

Watts
UpperController::Floor() const
{
    Watts floor = 0.0;
    for (const ChildState& c : children_) {
        if (c.have_last) floor += c.last.floor;
    }
    return floor;
}

void
UpperController::RunCycle()
{
    const std::uint64_t id = ++cycle_id_;
    for (ChildState& c : children_) c.current.reset();
    for (std::size_t i = 0; i < children_.size(); ++i) {
        PullWithRetry(
            children_[i].id, api::PowerReadRequest{},
            [this, i, id](const rpc::Payload& resp) {
                if (id != cycle_id_) return;
                if (const auto* r =
                        std::any_cast<api::PowerReadResult>(&resp)) {
                    children_[i].current = *r;
                }
            },
            [](const std::string&) {
                // Failure is implicit: `current` stays empty and
                // Aggregate falls back to the child's cached reading.
            });
    }
    sim_.ScheduleAfter(config_.response_wait, [this, id]() {
        if (id != cycle_id_) return;
        Aggregate();
    });
}

void
UpperController::Aggregate()
{
    if (children_.empty()) return;
    const CycleTimer timer(m_cycle_us_);
    if (m_cycles_ != nullptr) m_cycles_->Inc();
    const SimTime now = sim_.Now();

    std::size_t failures = 0;
    Watts aggregated = 0.0;
    // Names are deliberately left empty: the plan refers to fresh
    // children by index (via fresh_child_), so no per-cycle string
    // copies are needed.
    infos_.clear();
    fresh_child_.clear();
    infos_.reserve(children_.size());
    fresh_child_.reserve(children_.size());

    std::size_t adopted = 0;
    for (std::size_t i = 0; i < children_.size(); ++i) {
        ChildState& c = children_[i];
        // A child whose own aggregation was invalid reports a non-ok
        // status; treat it like a pull failure and fall back to its
        // last good value — but only while that cached value is
        // fresher than the TTL.
        if (c.current && c.current->status.ok()) {
            c.last = *c.current;
            c.have_last = true;
            c.last_time = now;
            // The child reports a standing contract this instance
            // never issued — a predecessor's limit surviving our
            // promotion, or an uncap lost in flight. Adopt it so it is
            // reaffirmed, updated, and eventually released through the
            // normal band path instead of stranding the subtree.
            if (!config_.dry_run && c.current->contract && !c.contracted) {
                c.contracted = true;
                c.limit = *c.current->contract;
                c.span = telemetry::kNoSpan;
                ++adopted;
            }
        } else {
            ++failures;
        }
        if (!c.have_last) continue;  // never heard from it; skip
        if (now - c.last_time > ReadingTtl()) continue;  // stale cache
        aggregated += c.last.power;
        ChildPowerInfo info;
        info.power = c.last.power;
        info.quota = c.last.quota;
        info.floor = c.last.floor;
        infos_.push_back(std::move(info));
        fresh_child_.push_back(static_cast<std::uint32_t>(i));
    }
    last_failure_count_ = failures;

    const double failure_fraction = static_cast<double>(failures) /
                                    static_cast<double>(children_.size());
    if (failure_fraction > config_.max_failure_fraction) {
        ++invalid_aggregations_;
        last_valid_ = false;
        LogEvent(telemetry::EventKind::kAlarm, 0.0, EffectiveLimit(),
                 static_cast<int>(failures),
                 "upper-level aggregation invalid");
        UpdateHealth(false);
        return;
    }

    if (adopted > 0) {
        contracts_adopted_ += adopted;
        if (!bands_.capping()) bands_.AdoptCappingEvent();
        LogEvent(telemetry::EventKind::kCapUpdate, aggregated,
                 EffectiveLimit(), static_cast<int>(adopted),
                 "adopted in-flight contracts");
    }

    last_power_ = aggregated;
    last_valid_ = true;
    ++aggregations_;
    UpdateHealth(true);

    const Watts limit = EffectiveLimit();

    policy::PolicyContext pctx;
    pctx.bucket_size = upper_config_.bucket_size;
    pctx.aggregated = aggregated;
    pctx.limit = limit;
    pctx.now = now;
    pctx.cycle_ms = config_.pull_cycle;
    // The fresh-children view is built every cycle anyway, so
    // observing brains track demand here at no extra roster cost.
    if (policy_->WantsObservations()) {
        policy_->ObserveChildren(infos_, pctx);
    }

    const bool was_capping = bands_.capping();
    const BandDecision decision = DecideBand(aggregated, !releases_frozen());

    auto new_span = [&](telemetry::TraceBand band) {
        telemetry::TraceSpan span;
        span.parent = contract_span_;
        span.time = now;
        span.kind = telemetry::SpanKind::kUpperDecision;
        span.source = endpoint();
        span.band = band;
        span.was_capping = was_capping;
        span.epoch = current_epoch();
        span.measured = aggregated;
        span.limit = limit;
        span.dry_run = config_.dry_run;
        return span;
    };

    if (decision.action == BandAction::kCap) {
        pctx.target = decision.target;
        policy_->PlanChildLimits(infos_, decision.cut, pctx, offender_ws_,
                                 &offender_plan_);
        const OffenderPlan& plan = offender_plan_;
        if (!was_capping) NoteCapStart();

        // The span is appended before the contract commands go out so
        // its id can ride along in SetContractualLimitRequest and the
        // children's decisions link back to this one.
        telemetry::SpanId span_id = telemetry::kNoSpan;
        if (traces_ != nullptr) {
            telemetry::TraceSpan span = new_span(telemetry::TraceBand::kCap);
            span.threshold = config_.bands.cap_threshold_frac * limit;
            span.target = decision.target;
            span.cut = decision.cut;
            span.planned_cut = plan.planned_cut;
            span.satisfied = plan.satisfied;
            // Record every fresh child, not just the ones the plan
            // cuts: a zero-cut innocent is evidence the split was
            // offender-first, not an omission.
            span.allocs.resize(infos_.size());
            for (std::size_t i = 0; i < infos_.size(); ++i) {
                const ChildPowerInfo& info = infos_[i];
                telemetry::TraceAllocation& alloc = span.allocs[i];
                alloc.target = children_[fresh_child_[i]].endpoint;
                alloc.power = info.power;
                alloc.floor = info.floor;
                alloc.quota = info.quota;
                alloc.offender = info.power > info.quota;
                alloc.bucket = static_cast<int>(
                    info.power / upper_config_.bucket_size);
            }
            for (const ChildLimit& child_limit : plan.limits) {
                if (child_limit.index >= span.allocs.size()) continue;
                span.allocs[child_limit.index].cut = child_limit.cut;
                span.allocs[child_limit.index].limit_sent =
                    child_limit.contractual_limit;
            }
            span_id = traces_->Append(std::move(span));
        }

        if (!config_.dry_run) ExecutePlan(plan, span_id);
        LogEvent(was_capping ? telemetry::EventKind::kCapUpdate
                             : telemetry::EventKind::kCapStart,
                 aggregated, limit, static_cast<int>(plan.limits.size()),
                 config_.dry_run ? "dry-run" : "");
        if (m_caps_ != nullptr) m_caps_->Inc();
        if (m_cut_w_ != nullptr) m_cut_w_->Observe(decision.cut);
        if (!plan.satisfied) {
            LogEvent(telemetry::EventKind::kAlarm, aggregated, limit,
                     static_cast<int>(plan.limits.size()),
                     "offender plan unsatisfiable within floors");
        }
    } else if (decision.action == BandAction::kUncap) {
        NoteRelease();
        if (!config_.dry_run) ClearContracts();
        LogEvent(telemetry::EventKind::kUncap, aggregated, limit,
                 static_cast<int>(children_.size()),
                 config_.dry_run ? "dry-run" : "");
        if (m_uncaps_ != nullptr) m_uncaps_->Inc();
        if (traces_ != nullptr) {
            telemetry::TraceSpan span = new_span(telemetry::TraceBand::kUncap);
            span.threshold = config_.bands.uncap_threshold_frac * limit;
            traces_->Append(std::move(span));
        }
    } else if (decision.action == BandAction::kHold) {
        ++frozen_releases_;
        LogEvent(telemetry::EventKind::kCapHold, aggregated, limit,
                 static_cast<int>(contracted_count()),
                 std::string("release frozen: health ") +
                     HealthStateName(health()));
        if (m_holds_ != nullptr) m_holds_->Inc();
        if (traces_ != nullptr) {
            telemetry::TraceSpan span = new_span(telemetry::TraceBand::kHold);
            span.threshold = config_.bands.uncap_threshold_frac * limit;
            traces_->Append(std::move(span));
        }
    } else if (!config_.dry_run) {
        // Settled in-band: keep standing contracts alive so children
        // that failed over (losing in-memory state) re-learn them.
        ReaffirmContracts();
    }
}

void
UpperController::ExecutePlan(const OffenderPlan& plan,
                             telemetry::SpanId span_id)
{
    for (const ChildLimit& child_limit : plan.limits) {
        if (child_limit.index >= fresh_child_.size()) continue;
        ChildState& c = children_[fresh_child_[child_limit.index]];
        c.contracted = true;
        c.limit = child_limit.contractual_limit;
        c.span = span_id;
        transport_.Call(
            c.id,
            api::ContractUpdate{child_limit.contractual_limit, span_id,
                                current_epoch()},
            [](const rpc::Payload&) {},
            [](const std::string&) {
                // Re-issued next cycle if still needed.
            },
            config_.rpc_timeout);
    }
}

void
UpperController::ReaffirmContracts()
{
    for (ChildState& c : children_) {
        if (!c.contracted) continue;
        ++contracts_reaffirmed_;
        transport_.Call(
            c.id, api::ContractUpdate{c.limit, c.span, current_epoch()},
            [](const rpc::Payload&) {}, [](const std::string&) {},
            config_.rpc_timeout);
    }
}

void
UpperController::ClearContracts()
{
    for (ChildState& c : children_) {
        if (!c.contracted) continue;
        c.contracted = false;
        c.limit = 0.0;
        transport_.Call(
            c.id,
            api::ContractUpdate{std::nullopt, telemetry::kNoSpan,
                                current_epoch()},
            [](const rpc::Payload&) {}, [](const std::string&) {},
            config_.rpc_timeout);
    }
}

void
UpperController::Snapshot(Archive& ar) const
{
    Controller::Snapshot(ar);
    ar.U64(contracts_reaffirmed_);
    ar.U64(contracts_adopted_);
    ar.U64(last_failure_count_);
    // Per-child contract cache: standing limits, the decision spans
    // that set them, and the last-known-good child readings.
    ar.U64(children_.size());
    for (const ChildState& c : children_) {
        ar.Str(c.endpoint);
        ar.Bool(c.contracted);
        ar.F64(c.limit);
        ar.U64(c.span);
        ar.Bool(c.have_last);
        ar.I64(c.last_time);
        ar.F64(c.last.power);
        // `last` is only ever stored from an ok reading, so its
        // validity bit equals have_last; serialized explicitly to keep
        // the checkpoint byte layout identical to the v0 wire structs
        // (the committed golden journal depends on it).
        ar.Bool(c.have_last);
        ar.F64(c.last.quota);
        ar.F64(c.last.floor);
    }
    // Brain state last: three_band writes nothing (pinning the
    // pre-interface checkpoint byte layout the golden journals carry);
    // stateful brains append their forecast state.
    policy_->Snapshot(ar);
}

}  // namespace dynamo::core
