#include "core/failover.h"

#include "core/api.h"

namespace dynamo::core {

FailoverManager::FailoverManager(sim::Simulation& sim,
                                 rpc::Transport& transport,
                                 Controller& primary, Controller& backup,
                                 SimTime check_period, int miss_threshold,
                                 telemetry::EventLog* log)
    : sim_(sim),
      transport_(transport),
      primary_(primary),
      backup_(backup),
      miss_threshold_(miss_threshold),
      log_(log)
{
    task_ = sim_.SchedulePeriodic(check_period, [this]() { Check(); });
}

void
FailoverManager::Promote()
{
    switched_ = true;
    // Make sure a half-dead primary stops acting, then promote
    // the backup under the same logical endpoint.
    primary_.Deactivate();
    backup_.Activate();
    if (log_ != nullptr) {
        telemetry::Event event;
        event.time = sim_.Now();
        event.kind = telemetry::EventKind::kFailover;
        event.source = primary_.endpoint();
        log_->Record(std::move(event));
    }
}

void
FailoverManager::ForceSwitch()
{
    if (switched_) return;
    Promote();
}

bool
FailoverManager::WarmSwap()
{
    if (switched_) return false;
    switched_ = true;
    backup_.InheritContract(primary_);
    primary_.Deactivate();
    backup_.Activate();
    if (log_ != nullptr) {
        telemetry::Event event;
        event.time = sim_.Now();
        event.kind = telemetry::EventKind::kFailover;
        event.source = primary_.endpoint();
        event.detail = "planned warm swap";
        log_->Record(std::move(event));
    }
    return true;
}

void
FailoverManager::Check()
{
    if (switched_) return;
    transport_.Call(
        primary_.endpoint_id(), api::HealthProbe{},
        [this](const rpc::Payload&) { misses_ = 0; },
        [this](const std::string&) {
            ++misses_;
            if (misses_ < miss_threshold_ || switched_) return;
            Promote();
        },
        /*timeout_ms=*/1000);
}

}  // namespace dynamo::core
