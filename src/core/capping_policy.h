/**
 * @file
 * Performance-aware power-cut allocation (Sections III-C3 and III-D).
 *
 * Two pure allocation algorithms, kept free of I/O so they are
 * directly unit- and property-testable:
 *
 * 1. ComputeCappingPlan — the leaf controller's server-level policy.
 *    Services are pre-assigned to priority groups; the total-power-cut
 *    is absorbed by the lowest priority group first. Within a group a
 *    *high-bucket-first* rule applies: servers are bucketed by current
 *    power (default 20 W buckets, the paper recommends 10–30 W); the
 *    highest bucket absorbs the cut first, split evenly, expanding
 *    into lower buckets only as needed, and never capping a server
 *    below its group's SLA floor. The cap sent to a server is its
 *    current power minus its allocated cut (Fig. 16).
 *
 * 2. ComputeOffenderPlan — the upper-level controller's
 *    *punish-offender-first* policy. Children whose power exceeds
 *    their quota (planned peak) absorb the cut first, high-bucket-
 *    first among offenders and never below their quota; only if the
 *    offenders' excess cannot cover the cut is the remainder spread
 *    over all children down to their floors. The result is expressed
 *    as contractual power limits (power minus cut).
 */
#ifndef DYNAMO_CORE_CAPPING_POLICY_H_
#define DYNAMO_CORE_CAPPING_POLICY_H_

#include <string>
#include <vector>

#include "common/units.h"

namespace dynamo::core {

/** Leaf-controller view of one downstream server. */
struct ServerPowerInfo
{
    std::string name;

    /** Latest power reading (or estimate). */
    Watts power = 0.0;

    /** Priority group; lower groups are capped first. */
    int priority_group = 0;

    /** SLA: the lowest power cap allowed for this server. */
    Watts sla_min_cap = 0.0;
};

/** One server's assignment in a capping plan. */
struct CapAssignment
{
    std::string name;
    Watts cap = 0.0;
    Watts cut = 0.0;
};

/** Result of a leaf capping allocation. */
struct CappingPlan
{
    std::vector<CapAssignment> assignments;

    /** Total cut actually allocated. */
    Watts planned_cut = 0.0;

    /** True if the full requested cut was allocated within SLA floors. */
    bool satisfied = false;
};

/**
 * Within-priority-group allocation rule.
 *
 * The paper ships kHighBucketFirst and names "new capping algorithms"
 * as future work; the alternatives are provided for comparison (see
 * bench_ablation_alloc_policy) and selectable per controller.
 */
enum class AllocationPolicy {
    /** Production policy: bucket by power, punish the hottest first. */
    kHighBucketFirst,

    /** Cut proportional to each server's headroom above its floor. */
    kProportional,

    /** Pure water-filling: level the hottest servers to a common cap. */
    kWaterFill,
};

/** Name of an allocation policy ("high-bucket-first", ...). */
const char* AllocationPolicyName(AllocationPolicy policy);

/**
 * Allocate `total_power_cut` watts of cut across `servers`.
 *
 * @param servers          Current readings plus capping metadata.
 * @param total_power_cut  Aggregated power minus the capping target.
 * @param bucket_size      High-bucket-first bucket width in watts
 *                         (<= 0 degenerates to pure water-filling).
 * @param policy           Within-group allocation rule.
 */
CappingPlan ComputeCappingPlan(
    const std::vector<ServerPowerInfo>& servers, Watts total_power_cut,
    Watts bucket_size = 20.0,
    AllocationPolicy policy = AllocationPolicy::kHighBucketFirst);

/** Upper-controller view of one child controller/device. */
struct ChildPowerInfo
{
    std::string name;

    /** Child's last aggregated power. */
    Watts power = 0.0;

    /** Child's power quota (planned peak). Offender iff power > quota. */
    Watts quota = 0.0;

    /** Lowest contractual limit the child can honor. */
    Watts floor = 0.0;
};

/** One child's assignment: the contractual limit to send. */
struct ChildLimit
{
    std::string name;
    Watts contractual_limit = 0.0;
    Watts cut = 0.0;
};

/** Result of an upper-level allocation. */
struct OffenderPlan
{
    std::vector<ChildLimit> limits;
    Watts planned_cut = 0.0;
    bool satisfied = false;
};

/**
 * Allocate `total_power_cut` across children, offenders first.
 *
 * @param bucket_size  High-bucket-first width in watts; upper levels
 *                     use a larger bucket (KW scale) than leaves.
 */
OffenderPlan ComputeOffenderPlan(const std::vector<ChildPowerInfo>& children,
                                 Watts total_power_cut,
                                 Watts bucket_size = 2000.0);

/**
 * Shared primitive: distribute `cut` over items high-bucket-first.
 *
 * Items are bucketed by power; buckets are included from the top until
 * their combined headroom (power minus max(bucket floor, item floor))
 * covers the cut, then the cut is split evenly (water-filled) among
 * included items. Exposed for direct testing.
 *
 * @returns per-item cuts, aligned with `powers`; the sum is
 *          min(cut, total headroom above floors).
 */
std::vector<Watts> BucketedEvenCut(const std::vector<Watts>& powers,
                                   const std::vector<Watts>& floors, Watts cut,
                                   Watts bucket_size);

}  // namespace dynamo::core

#endif  // DYNAMO_CORE_CAPPING_POLICY_H_
