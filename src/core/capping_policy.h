/**
 * @file
 * Performance-aware power-cut allocation (Sections III-C3 and III-D).
 *
 * Two pure allocation algorithms, kept free of I/O so they are
 * directly unit- and property-testable:
 *
 * 1. ComputeCappingPlan — the leaf controller's server-level policy.
 *    Services are pre-assigned to priority groups; the total-power-cut
 *    is absorbed by the lowest priority group first. Within a group a
 *    *high-bucket-first* rule applies: servers are bucketed by current
 *    power (default 20 W buckets, the paper recommends 10–30 W); the
 *    highest bucket absorbs the cut first, split evenly, expanding
 *    into lower buckets only as needed, and never capping a server
 *    below its group's SLA floor. The cap sent to a server is its
 *    current power minus its allocated cut (Fig. 16).
 *
 * 2. ComputeOffenderPlan — the upper-level controller's
 *    *punish-offender-first* policy. Children whose power exceeds
 *    their quota (planned peak) absorb the cut first, high-bucket-
 *    first among offenders and never below their quota; only if the
 *    offenders' excess cannot cover the cut is the remainder spread
 *    over all children down to their floors. The result is expressed
 *    as contractual power limits (power minus cut).
 *
 * These run every capping cycle on every controller, so the primary
 * entry points are allocation-free on the steady path: callers own a
 * `CappingWorkspace` whose buffers are reused across cycles, priority
 * grouping is a sort-index pass (no per-group map or array copies),
 * and plans identify servers by *index* into the input vector — names
 * are only materialized by the legacy by-value wrappers. The optimized
 * paths are pinned bit-identical to the originals by equivalence tests
 * against capping_policy_reference.h.
 */
#ifndef DYNAMO_CORE_CAPPING_POLICY_H_
#define DYNAMO_CORE_CAPPING_POLICY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace dynamo::core {

/** Leaf-controller view of one downstream server. */
struct ServerPowerInfo
{
    /** Display name; may be empty on the hot path (plans carry indices). */
    std::string name;

    /** Latest power reading (or estimate). */
    Watts power = 0.0;

    /** Priority group; lower groups are capped first. */
    int priority_group = 0;

    /** SLA: the lowest power cap allowed for this server. */
    Watts sla_min_cap = 0.0;
};

/** One server's assignment in a capping plan. */
struct CapAssignment
{
    /** Position of the server in the input vector. */
    std::size_t index = 0;

    /** Name copied from the input (empty in workspace-API plans). */
    std::string name;

    Watts cap = 0.0;
    Watts cut = 0.0;
};

/** Result of a leaf capping allocation. */
struct CappingPlan
{
    std::vector<CapAssignment> assignments;

    /** Total cut actually allocated. */
    Watts planned_cut = 0.0;

    /** True if the full requested cut was allocated within SLA floors. */
    bool satisfied = false;
};

/**
 * Within-priority-group allocation rule.
 *
 * The paper ships kHighBucketFirst and names "new capping algorithms"
 * as future work; the alternatives are provided for comparison (see
 * bench_ablation_alloc_policy) and selectable per controller.
 */
enum class AllocationPolicy {
    /** Production policy: bucket by power, punish the hottest first. */
    kHighBucketFirst,

    /** Cut proportional to each server's headroom above its floor. */
    kProportional,

    /** Pure water-filling: level the hottest servers to a common cap. */
    kWaterFill,
};

/** Name of an allocation policy ("high-bucket-first", ...). */
const char* AllocationPolicyName(AllocationPolicy policy);

/**
 * Caller-owned scratch arena for the allocation entry points.
 *
 * All buffers grow to the fleet size on first use and are reused on
 * every subsequent call, so a controller that computes a plan per
 * cycle performs no heap allocation in steady state. A workspace may
 * be shared by any number of sequential calls but not concurrent ones.
 */
struct CappingWorkspace
{
    std::vector<Watts> powers;
    std::vector<Watts> floors;
    std::vector<Watts> headroom;
    std::vector<Watts> cuts;
    std::vector<Watts> stage;
    std::vector<std::uint32_t> order;
    std::vector<std::uint32_t> items;
    std::vector<std::uint32_t> included;
    std::vector<std::uint32_t> active;

    /** Resize every per-item buffer for `n` items. */
    void Prepare(std::size_t n);
};

/**
 * Allocate `total_power_cut` watts of cut across `servers`.
 *
 * @param servers          Current readings plus capping metadata.
 * @param total_power_cut  Aggregated power minus the capping target.
 * @param bucket_size      High-bucket-first bucket width in watts
 *                         (<= 0 degenerates to pure water-filling).
 * @param policy           Within-group allocation rule.
 */
CappingPlan ComputeCappingPlan(
    const std::vector<ServerPowerInfo>& servers, Watts total_power_cut,
    Watts bucket_size = 20.0,
    AllocationPolicy policy = AllocationPolicy::kHighBucketFirst);

/**
 * Allocation-free variant: scratch lives in `ws`, the result in
 * `plan` (its assignment vector is reused), and assignments carry only
 * indices into `servers` — names are not copied.
 */
void ComputeCappingPlan(const std::vector<ServerPowerInfo>& servers,
                        Watts total_power_cut, Watts bucket_size,
                        AllocationPolicy policy, CappingWorkspace& ws,
                        CappingPlan* plan);

/** Upper-controller view of one child controller/device. */
struct ChildPowerInfo
{
    /** Display name; may be empty on the hot path (plans carry indices). */
    std::string name;

    /** Child's last aggregated power. */
    Watts power = 0.0;

    /** Child's power quota (planned peak). Offender iff power > quota. */
    Watts quota = 0.0;

    /** Lowest contractual limit the child can honor. */
    Watts floor = 0.0;
};

/** One child's assignment: the contractual limit to send. */
struct ChildLimit
{
    /** Position of the child in the input vector. */
    std::size_t index = 0;

    /** Name copied from the input (empty in workspace-API plans). */
    std::string name;

    Watts contractual_limit = 0.0;
    Watts cut = 0.0;
};

/** Result of an upper-level allocation. */
struct OffenderPlan
{
    std::vector<ChildLimit> limits;
    Watts planned_cut = 0.0;
    bool satisfied = false;
};

/**
 * Allocate `total_power_cut` across children, offenders first.
 *
 * @param bucket_size  High-bucket-first width in watts; upper levels
 *                     use a larger bucket (KW scale) than leaves.
 */
OffenderPlan ComputeOffenderPlan(const std::vector<ChildPowerInfo>& children,
                                 Watts total_power_cut,
                                 Watts bucket_size = 2000.0);

/** Allocation-free variant of ComputeOffenderPlan (see above). */
void ComputeOffenderPlan(const std::vector<ChildPowerInfo>& children,
                         Watts total_power_cut, Watts bucket_size,
                         CappingWorkspace& ws, OffenderPlan* plan);

/**
 * Shared primitive: distribute `cut` over items high-bucket-first.
 *
 * Items are bucketed by power; buckets are included from the top until
 * their combined headroom (power minus max(bucket floor, item floor))
 * covers the cut, then the cut is split evenly (water-filled) among
 * included items. Exposed for direct testing.
 *
 * @returns per-item cuts, aligned with `powers`; the sum is
 *          min(cut, total headroom above floors).
 */
std::vector<Watts> BucketedEvenCut(const std::vector<Watts>& powers,
                                   const std::vector<Watts>& floors, Watts cut,
                                   Watts bucket_size);

/** Workspace variant of BucketedEvenCut; cuts land in `ws.cuts[0..n)`. */
void BucketedEvenCut(const std::vector<Watts>& powers,
                     const std::vector<Watts>& floors, Watts cut,
                     Watts bucket_size, CappingWorkspace& ws);

}  // namespace dynamo::core

#endif  // DYNAMO_CORE_CAPPING_POLICY_H_
