/**
 * @file
 * Upper-level power controllers (Section III-D).
 *
 * One upper-level controller protects each non-leaf power device (SB,
 * MSB). It pulls aggregated power from its child controllers on a
 * cycle 3× the leaf cycle (9 s, to stay slower than downstream
 * settling per control-theory practice), runs the same three-band
 * algorithm against min(physical, contractual) limit, and coordinates
 * with its children through *punish-offender-first*: children over
 * their planned-peak quota absorb the cut first, expressed as
 * contractual power limits that the children fold into their own
 * decisions (recursively, for multi-level hierarchies).
 */
#ifndef DYNAMO_CORE_UPPER_CONTROLLER_H_
#define DYNAMO_CORE_UPPER_CONTROLLER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/capping_policy.h"
#include "core/controller.h"
#include "policy/capping_policy.h"

namespace dynamo::core {

/** Upper-level (SB/MSB) power controller. */
class UpperController : public Controller
{
  public:
    struct Config
    {
        ControllerBaseConfig base{/*pull_cycle=*/9000, /*response_wait=*/1000,
                                  /*rpc_timeout=*/900, ThreeBandConfig{},
                                  /*max_failure_fraction=*/0.34};

        /** High-bucket-first width for child cuts (KW scale). */
        Watts bucket_size = 2000.0;

        /**
         * Capping brain computing the child-limit split (the policy
         * lab). three_band is the paper's punish-offender-first
         * planner and the default.
         */
        policy::PolicyKind capping_policy = policy::PolicyKind::kThreeBand;
    };

    /** Register one child controller endpoint. */
    void AddChild(const std::string& endpoint);

    /**
     * Drop one child from the roster (reconfiguration: the subtree was
     * decommissioned or re-parented). Any standing contract bookkeeping
     * for it goes with it — the new parent re-learns the child's
     * contract through adoption. Returns false if unknown.
     */
    bool RemoveChild(const std::string& endpoint);

    std::size_t child_count() const { return children_.size(); }

    /** Children currently under a contractual limit from us. */
    std::size_t contracted_count() const;

    /** Contract re-issues sent to already-contracted children. */
    std::uint64_t contracts_reaffirmed() const { return contracts_reaffirmed_; }

    /**
     * Child-reported contracts this instance adopted without having
     * issued them — a predecessor's limits surviving promotion, or an
     * uncap command lost in flight. The upper-level analogue of a leaf
     * adopting orphaned RAPL caps.
     */
    std::uint64_t contracts_adopted() const { return contracts_adopted_; }

    /** Quota/floor data discovered from a child (for tests). */
    std::optional<api::PowerReadResult> LastChildResponse(
        const std::string& endpoint) const;

    /** The capping brain in force (for tests and status surfaces). */
    policy::PolicyKind capping_policy() const { return policy_->kind(); }

    Watts Floor() const override;

    const Config& config() const { return upper_config_; }

    /** Base state plus the per-child contract cache. */
    void Snapshot(Archive& ar) const override;

  protected:
    /**
     * Construction goes through ControllerBuilder (the one validated
     * path); kept protected so tests and benchmarks may still
     * subclass.
     */
    UpperController(sim::Simulation& sim, rpc::Transport& transport,
                    std::string endpoint, Watts physical_limit, Watts quota,
                    Config config, telemetry::EventLog* log);

    void RunCycle() override;

    std::size_t ControlledCount() const override { return contracted_count(); }

    const char* MetricPrefix() const override { return "upper"; }

  private:
    friend class ControllerBuilder;

    struct ChildState
    {
        std::string endpoint;

        /** Interned endpoint id, resolved once in AddChild. */
        rpc::EndpointId id = rpc::kInvalidEndpoint;

        std::optional<api::PowerReadResult> current;
        api::PowerReadResult last;
        bool have_last = false;
        SimTime last_time = 0;  ///< When `last` was read (TTL check).
        bool contracted = false;
        Watts limit = 0.0;

        /** Decision span that set the standing contract (or kNoSpan). */
        telemetry::SpanId span = telemetry::kNoSpan;
    };

    void Aggregate();
    void ExecutePlan(const OffenderPlan& plan, telemetry::SpanId span_id);

    /**
     * Re-send standing contractual limits to contracted children.
     * Children keep no durable state across failover, so a promoted
     * backup only learns its outstanding contract when the parent
     * repeats it; re-issuing every settled cycle bounds that window
     * to one pull period.
     */
    void ReaffirmContracts();

    void ClearContracts();

    Config upper_config_;

    /** The selected capping brain (never null). */
    std::unique_ptr<policy::CappingPolicy> policy_;

    std::vector<ChildState> children_;

    /**
     * Per-cycle scratch, reused so aggregation is allocation-free.
     * `fresh_child_[i]` maps infos_[i] (fresh children only) back to
     * its index in children_, letting plan limits address children by
     * index without name lookups.
     */
    std::vector<ChildPowerInfo> infos_;
    std::vector<std::uint32_t> fresh_child_;
    CappingWorkspace offender_ws_;
    OffenderPlan offender_plan_;

    std::size_t last_failure_count_ = 0;
    std::uint64_t contracts_reaffirmed_ = 0;
    std::uint64_t contracts_adopted_ = 0;
};

}  // namespace dynamo::core

#endif  // DYNAMO_CORE_UPPER_CONTROLLER_H_
