/**
 * @file
 * The leaf power controller (Section III-C).
 *
 * One leaf controller protects one lowest-level power device (an RPP
 * or PDU breaker in Facebook's deployment) and is the only controller
 * type that talks to agents. Every pull cycle (3 s — fast enough per
 * the variation study, slower than the 2 s RAPL settling) it
 * broadcasts power pulls to all downstream agents, aggregates,
 * estimates readings for failed pulls from same-service neighbours
 * (alarming instead of acting when more than 20 % fail), runs the
 * three-band algorithm against min(physical, contractual) limit, and
 * when capping distributes the total-power-cut priority-group-first /
 * high-bucket-first and pushes per-server RAPL caps.
 */
#ifndef DYNAMO_CORE_LEAF_CONTROLLER_H_
#define DYNAMO_CORE_LEAF_CONTROLLER_H_

#include <optional>
#include <string>
#include <vector>

#include <memory>

#include "core/capping_policy.h"
#include "core/controller.h"
#include "core/load_shed.h"
#include "policy/capping_policy.h"
#include "power/breaker_telemetry.h"
#include "power/device.h"
#include "workload/service.h"

namespace dynamo::core {

/** Static metadata the controller keeps per downstream agent. */
struct AgentInfo
{
    std::string endpoint;
    workload::ServiceType service = workload::ServiceType::kWeb;

    /** Priority group (lower = capped first). */
    int priority_group = 0;

    /** SLA: lowest power cap allowed for this server. */
    Watts sla_min_cap = 0.0;

    /** Fallback power when no reading or history exists. */
    Watts nominal_power = 150.0;
};

/** Leaf power controller. */
class LeafController : public Controller
{
  public:
    struct Config
    {
        ControllerBaseConfig base{/*pull_cycle=*/3000, /*response_wait=*/1000,
                                  /*rpc_timeout=*/900, ThreeBandConfig{},
                                  /*max_failure_fraction=*/0.2};

        /** High-bucket-first width; the paper uses 20 W (10–30 W ok). */
        Watts bucket_size = 20.0;

        /** Within-group allocation rule (paper: high-bucket-first). */
        AllocationPolicy allocation_policy = AllocationPolicy::kHighBucketFirst;

        /**
         * Capping brain computing the cut split (the policy lab).
         * three_band is the paper's planner and the default; see
         * policy/capping_policy.h for the alternatives.
         */
        policy::PolicyKind capping_policy = policy::PolicyKind::kThreeBand;

        /**
         * Safety margin on emergency shed requests: the requested
         * traffic reduction is the unsatisfied cut fraction times
         * this factor.
         */
        double shed_margin = 1.5;

        /**
         * Relative disagreement between the server-side aggregation
         * and the breaker's own (coarse) reading that raises an alarm
         * when breaker telemetry is attached.
         */
        double mismatch_alarm_frac = 0.15;

        /** Mismatch below which no estimator tuning is attempted. */
        double tune_deadband_frac = 0.02;
    };

    /** Add one downstream agent to the roster (before or after Activate). */
    void AddAgent(AgentInfo info);

    std::size_t agent_count() const { return agents_.size(); }

    /** Number of servers currently capped by this controller. */
    std::size_t capped_count() const;

    /** Pull failures observed in the most recent aggregation. */
    std::size_t last_failure_count() const { return last_failure_count_; }

    /** Readings replaced by estimates so far (failed pulls). */
    std::uint64_t estimated_readings() const { return estimated_readings_; }

    /**
     * Failed pulls patched with the agent's own last-known-good
     * reading while still within the TTL (subset of
     * estimated_readings).
     */
    std::uint64_t cache_hits() const { return cache_hits_; }

    /**
     * Caps found already in force on servers but not issued by this
     * instance (predecessor's event surviving failover, or a lost
     * uncap command) and adopted into the local capping state.
     */
    std::uint64_t caps_adopted() const { return caps_adopted_; }

    /** Device power used for validation, as the paper's breaker check. */
    power::PowerDevice& device() { return device_; }

    /**
     * Attach the breaker's own coarse power readings; when present,
     * every aggregation is validated against the latest reading and
     * sensorless servers' estimation models are dynamically tuned.
     */
    void AttachBreakerTelemetry(const power::BreakerTelemetry* telemetry)
    {
        breaker_telemetry_ = telemetry;
    }

    /**
     * Attach an emergency traffic shedder (not owned). When a capping
     * plan cannot satisfy the needed cut within SLA floors, the
     * controller requests a proportional traffic reduction for its
     * domain and clears it on uncap.
     */
    void SetLoadShedder(LoadShedder* shedder) { shedder_ = shedder; }

    /** True while an emergency shed request is outstanding. */
    bool shedding() const { return shedding_; }

    /** Shed requests issued so far. */
    std::uint64_t sheds_requested() const { return sheds_requested_; }

    /** Estimator tuning commands sent so far. */
    std::uint64_t tunes_sent() const { return tunes_sent_; }

    /** Validation mismatches that crossed the alarm threshold. */
    std::uint64_t validation_alarms() const { return validation_alarms_; }

    /** Most recent breaker-vs-aggregation relative mismatch. */
    double last_validation_mismatch() const { return last_mismatch_; }

    /** The capping brain in force (for tests and status surfaces). */
    policy::PolicyKind capping_policy() const { return policy_->kind(); }

    Watts Floor() const override;

    const Config& config() const { return leaf_config_; }

    /** Base state plus the per-agent reading cache and issued caps. */
    void Snapshot(Archive& ar) const override;

  protected:
    /**
     * Construction goes through ControllerBuilder (the one validated
     * path); kept protected so tests and benchmarks may still
     * subclass.
     *
     * @param device  The protected power device (rating, quota,
     *                non-cappable loads); not owned.
     */
    LeafController(sim::Simulation& sim, rpc::Transport& transport,
                   std::string endpoint, power::PowerDevice& device,
                   Config config, telemetry::EventLog* log);

    void RunCycle() override;

    std::size_t ControlledCount() const override { return capped_count(); }

    const char* MetricPrefix() const override { return "leaf"; }

  private:
    friend class ControllerBuilder;

    struct AgentState
    {
        AgentInfo info;

        /** Interned endpoint id, resolved once in AddAgent. */
        rpc::EndpointId id = rpc::kInvalidEndpoint;

        /**
         * This cycle's reading; nullopt covers both "no response yet"
         * and "pull failed" (the result's Status distinguishes an
         * unreachable agent from one reporting an error).
         */
        std::optional<api::PowerReadResult> current;
        Watts last_power = 0.0;
        bool have_last = false;
        SimTime last_time = 0;  ///< When last_power was read (TTL check).
        bool capped = false;
        Watts cap = 0.0;
    };

    void Aggregate();

    /** Validate `aggregated` against breaker telemetry; tune estimators. */
    void ValidateAgainstBreaker(Watts aggregated);

    /**
     * Substitute a failed agent's reading: its own last-known-good
     * value while fresh (within the TTL), then same-service neighbour
     * estimation, then the stale cache, then nominal power.
     */
    Watts EstimateFor(AgentState& agent);

    void ExecuteCapPlan(const CappingPlan& plan);
    void ExecuteUncap();

    power::PowerDevice& device_;
    Config leaf_config_;

    /** The selected capping brain (never null). */
    std::unique_ptr<policy::CappingPolicy> policy_;

    std::vector<AgentState> agents_;

    /** Per-cycle scratch, reused so aggregation is allocation-free. */
    std::vector<Watts> powers_;
    std::vector<ServerPowerInfo> infos_;
    CappingWorkspace capping_ws_;
    CappingPlan capping_plan_;

    std::size_t last_failure_count_ = 0;
    std::uint64_t estimated_readings_ = 0;
    std::uint64_t cache_hits_ = 0;
    std::uint64_t caps_adopted_ = 0;
    Watts last_noncappable_ = 0.0;
    const power::BreakerTelemetry* breaker_telemetry_ = nullptr;
    LoadShedder* shedder_ = nullptr;
    bool shedding_ = false;
    double shed_fraction_ = 0.0;
    std::uint64_t sheds_requested_ = 0;
    std::uint64_t tunes_sent_ = 0;
    std::uint64_t validation_alarms_ = 0;
    double last_mismatch_ = 0.0;
};

}  // namespace dynamo::core

#endif  // DYNAMO_CORE_LEAF_CONTROLLER_H_
