#include "core/leaf_controller.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

namespace dynamo::core {

LeafController::LeafController(sim::Simulation& sim, rpc::Transport& transport,
                               std::string endpoint, power::PowerDevice& device,
                               Config config, telemetry::EventLog* log)
    : Controller(sim, transport, std::move(endpoint), device.rated_power(),
                 device.quota(), config.base, log),
      device_(device),
      leaf_config_(config),
      policy_(policy::MakeCappingPolicy(config.capping_policy))
{
}

void
LeafController::AddAgent(AgentInfo info)
{
    AgentState state;
    state.info = std::move(info);
    state.id = transport_.Resolve(state.info.endpoint);
    agents_.push_back(std::move(state));
}

std::size_t
LeafController::capped_count() const
{
    std::size_t n = 0;
    for (const AgentState& a : agents_) {
        if (a.capped) ++n;
    }
    return n;
}

Watts
LeafController::Floor() const
{
    Watts floor = last_noncappable_;
    for (const AgentState& a : agents_) floor += a.info.sla_min_cap;
    return floor;
}

void
LeafController::RunCycle()
{
    const std::uint64_t id = ++cycle_id_;
    for (AgentState& a : agents_) a.current.reset();
    for (std::size_t i = 0; i < agents_.size(); ++i) {
        PullWithRetry(
            agents_[i].id, api::PowerReadRequest{},
            [this, i, id](const rpc::Payload& resp) {
                if (id != cycle_id_) return;  // stale cycle
                const auto* r = std::any_cast<api::PowerReadResult>(&resp);
                if (r != nullptr && r->status.ok()) {
                    agents_[i].current = *r;
                }
            },
            [](const std::string&) {
                // Failure is implicit: `current` stays empty and
                // Aggregate substitutes an estimate.
            });
    }
    sim_.ScheduleAfter(config_.response_wait, [this, id]() {
        if (id != cycle_id_) return;
        Aggregate();
    });
}

void
LeafController::ValidateAgainstBreaker(Watts aggregated)
{
    if (breaker_telemetry_ == nullptr || aggregated <= 0.0) return;
    const auto reading = breaker_telemetry_->last();
    if (!reading) return;
    // Ignore stale readings (e.g. around a telemetry outage).
    if (sim_.Now() - reading->time > 2 * breaker_telemetry_->period()) return;

    last_mismatch_ = (reading->power - aggregated) / reading->power;
    if (std::abs(last_mismatch_) > leaf_config_.mismatch_alarm_frac) {
        ++validation_alarms_;
        LogEvent(telemetry::EventKind::kAlarm, aggregated, EffectiveLimit(), 0,
                 "aggregation disagrees with breaker reading");
        return;
    }
    if (std::abs(last_mismatch_) < leaf_config_.tune_deadband_frac) return;

    // Attribute the residual to the estimation models: the breaker
    // reading minus trusted sensor power is what the sensorless
    // servers actually drew; scale their estimates toward it.
    Watts sensor_sum = 0.0;
    Watts estimate_sum = 0.0;
    for (const AgentState& a : agents_) {
        if (!a.current) continue;
        (a.current->estimated ? estimate_sum : sensor_sum) += a.current->power;
    }
    if (estimate_sum <= 0.0) return;
    const Watts implied = reading->power - sensor_sum - last_noncappable_;
    double ratio = implied / estimate_sum;
    ratio = std::clamp(ratio, 0.5, 2.0);
    for (const AgentState& a : agents_) {
        if (!a.current || !a.current->estimated) continue;
        ++tunes_sent_;
        transport_.Call(
            a.id, api::TuneEstimate{ratio},
            [](const rpc::Payload&) {}, [](const std::string&) {},
            config_.rpc_timeout);
    }
}

Watts
LeafController::EstimateFor(AgentState& agent)
{
    // The agent's own recent reading beats any cross-server estimate:
    // use the last-known-good value while it is fresher than the TTL.
    if (agent.have_last && sim_.Now() - agent.last_time <= ReadingTtl()) {
        ++cache_hits_;
        return agent.last_power;
    }
    // Then the mean of this cycle's successful readings from the same
    // service — "estimate the power reading for the failed servers
    // using power readings from neighboring servers running similar
    // workloads".
    Watts sum = 0.0;
    std::size_t n = 0;
    for (const AgentState& other : agents_) {
        if (!other.current) continue;
        if (other.info.service != agent.info.service) continue;
        sum += other.current->power;
        ++n;
    }
    if (n > 0) return sum / static_cast<double>(n);
    if (agent.have_last) return agent.last_power;
    return agent.info.nominal_power;
}

void
LeafController::Aggregate()
{
    if (agents_.empty()) return;
    const CycleTimer timer(m_cycle_us_);
    if (m_cycles_ != nullptr) m_cycles_->Inc();
    const SimTime now = sim_.Now();

    std::size_t failures = 0;
    for (const AgentState& a : agents_) {
        if (!a.current) ++failures;
    }
    last_failure_count_ = failures;

    const double failure_fraction =
        static_cast<double>(failures) / static_cast<double>(agents_.size());
    if (failure_fraction > config_.max_failure_fraction) {
        // Too many unknowns to act safely: raise an alarm for human
        // intervention rather than risk a false-positive cap storm.
        ++invalid_aggregations_;
        last_valid_ = false;
        LogEvent(telemetry::EventKind::kAlarm, 0.0, EffectiveLimit(),
                 static_cast<int>(failures), "power aggregation invalid");
        UpdateHealth(false);
        return;
    }

    last_noncappable_ = device_.NonCappableLoadPower(now);
    Watts aggregated = last_noncappable_;
    powers_.assign(agents_.size(), 0.0);
    std::vector<Watts>& powers = powers_;
    std::size_t adopted = 0;
    for (std::size_t i = 0; i < agents_.size(); ++i) {
        AgentState& a = agents_[i];
        if (a.current) {
            powers[i] = a.current->power;
            a.last_power = a.current->power;
            a.have_last = true;
            a.last_time = now;
            // Caps in force that this instance didn't issue — a
            // predecessor's capping event surviving failover, or a
            // lost uncap command. Adopt them so they are updated and
            // eventually released through the normal band path
            // instead of being stranded on the servers.
            if (!config_.dry_run && a.current->capped && !a.capped) {
                a.capped = true;
                a.cap = a.current->power_limit;
                ++adopted;
            }
        } else {
            powers[i] = EstimateFor(a);
            ++estimated_readings_;
        }
        aggregated += powers[i];
    }
    if (adopted > 0) {
        caps_adopted_ += adopted;
        if (!bands_.capping()) bands_.AdoptCappingEvent();
        LogEvent(telemetry::EventKind::kCapUpdate, aggregated,
                 EffectiveLimit(), static_cast<int>(adopted),
                 "adopted in-flight caps");
    }

    last_power_ = aggregated;
    last_valid_ = true;
    ++aggregations_;
    UpdateHealth(true);

    ValidateAgainstBreaker(aggregated);

    const Watts limit = EffectiveLimit();

    // Roster view for the brain. Names are deliberately left empty:
    // plans refer to agents by index, so no per-cycle string copies
    // are needed. Stateless brains only see it while capping (the
    // pre-interface hot path); observing brains get it every valid
    // cycle so they can track demand between episodes.
    auto fill_infos = [&]() {
        infos_.resize(agents_.size());
        for (std::size_t i = 0; i < agents_.size(); ++i) {
            infos_[i].power = powers[i];
            infos_[i].priority_group = agents_[i].info.priority_group;
            infos_[i].sla_min_cap = agents_[i].info.sla_min_cap;
        }
    };
    policy::PolicyContext pctx;
    pctx.bucket_size = leaf_config_.bucket_size;
    pctx.allocation_policy = leaf_config_.allocation_policy;
    pctx.aggregated = aggregated;
    pctx.limit = limit;
    pctx.now = now;
    pctx.cycle_ms = config_.pull_cycle;
    const bool observing = policy_->WantsObservations();
    if (observing) {
        fill_infos();
        policy_->ObserveServers(infos_, pctx);
    }

    const bool was_capping = bands_.capping();
    const BandDecision decision = DecideBand(aggregated, !releases_frozen());

    // Decision spans share this header; each branch fills in the band
    // evidence and (for caps) the per-group / per-server split.
    auto new_span = [&](telemetry::TraceBand band) {
        telemetry::TraceSpan span;
        span.parent = contract_span_;
        span.time = now;
        span.kind = telemetry::SpanKind::kLeafDecision;
        span.source = endpoint();
        span.band = band;
        span.was_capping = was_capping;
        span.epoch = current_epoch();
        span.measured = aggregated;
        span.limit = limit;
        span.dry_run = config_.dry_run;
        return span;
    };

    if (decision.action == BandAction::kCap) {
        if (!observing) fill_infos();
        pctx.target = decision.target;
        policy_->PlanServerCuts(infos_, decision.cut, pctx, capping_ws_,
                                &capping_plan_);
        const CappingPlan& plan = capping_plan_;
        if (!was_capping) NoteCapStart();
        if (!config_.dry_run) ExecuteCapPlan(plan);
        LogEvent(was_capping ? telemetry::EventKind::kCapUpdate
                             : telemetry::EventKind::kCapStart,
                 aggregated, limit, static_cast<int>(plan.assignments.size()),
                 config_.dry_run ? "dry-run" : "");
        if (m_caps_ != nullptr) m_caps_->Inc();
        if (m_cut_w_ != nullptr) m_cut_w_->Observe(decision.cut);
        if (traces_ != nullptr) {
            telemetry::TraceSpan span = new_span(telemetry::TraceBand::kCap);
            span.threshold = config_.bands.cap_threshold_frac * limit;
            span.target = decision.target;
            span.cut = decision.cut;
            span.planned_cut = plan.planned_cut;
            span.satisfied = plan.satisfied;
            std::map<int, std::pair<Watts, int>> by_group;
            for (const CapAssignment& assignment : plan.assignments) {
                if (assignment.index >= agents_.size()) continue;
                const AgentState& a = agents_[assignment.index];
                auto& group = by_group[a.info.priority_group];
                group.first += assignment.cut;
                ++group.second;
                telemetry::TraceAllocation alloc;
                alloc.target = a.info.endpoint;
                alloc.power = powers[assignment.index];
                alloc.floor = a.info.sla_min_cap;
                alloc.cut = assignment.cut;
                alloc.limit_sent = assignment.cap;
                alloc.bucket = static_cast<int>(
                    powers[assignment.index] / leaf_config_.bucket_size);
                span.allocs.push_back(std::move(alloc));
            }
            for (const auto& [pg, cut_servers] : by_group) {
                span.groups.push_back(telemetry::TraceGroupCut{
                    pg, cut_servers.first, cut_servers.second});
            }
            traces_->Append(std::move(span));
        }
        if (!plan.satisfied) {
            LogEvent(telemetry::EventKind::kAlarm, aggregated, limit,
                     static_cast<int>(plan.assignments.size()),
                     "power cut unsatisfiable within SLA floors");
            // Emergency response: capping has bottomed out at the SLA
            // floors; ask the traffic layer to drain part of the load.
            // Escalates while the plan stays unsatisfiable — RAPL caps
            // pin power at the floors, so only draining demand (and
            // with it the floor-level draw) closes the remaining gap.
            if (shedder_ != nullptr && !config_.dry_run) {
                const Watts missing = decision.cut - plan.planned_cut;
                shed_fraction_ = std::clamp(
                    shed_fraction_ +
                        leaf_config_.shed_margin * missing / aggregated,
                    0.0, 0.9);
                shedder_->RequestShed(endpoint(), shed_fraction_);
                shedding_ = true;
                ++sheds_requested_;
                LogEvent(telemetry::EventKind::kLoadShed, aggregated, limit,
                         static_cast<int>(agents_.size()),
                         "shed " + std::to_string(shed_fraction_));
            }
        }
    } else if (decision.action == BandAction::kUncap) {
        NoteRelease();
        if (!config_.dry_run) ExecuteUncap();
        if (shedding_ && shedder_ != nullptr) {
            shedder_->ClearShed(endpoint());
            shedding_ = false;
            shed_fraction_ = 0.0;
        }
        LogEvent(telemetry::EventKind::kUncap, aggregated, limit,
                 static_cast<int>(agents_.size()),
                 config_.dry_run ? "dry-run" : "");
        if (m_uncaps_ != nullptr) m_uncaps_->Inc();
        if (traces_ != nullptr) {
            telemetry::TraceSpan span = new_span(telemetry::TraceBand::kUncap);
            span.threshold = config_.bands.uncap_threshold_frac * limit;
            traces_->Append(std::move(span));
        }
    } else if (decision.action == BandAction::kHold) {
        // A release was due but the controller is not back to NORMAL
        // health: hold current caps rather than uncap on data we only
        // just started trusting again.
        ++frozen_releases_;
        LogEvent(telemetry::EventKind::kCapHold, aggregated, limit,
                 static_cast<int>(capped_count()),
                 std::string("release frozen: health ") +
                     HealthStateName(health()));
        if (m_holds_ != nullptr) m_holds_->Inc();
        if (traces_ != nullptr) {
            telemetry::TraceSpan span = new_span(telemetry::TraceBand::kHold);
            span.threshold = config_.bands.uncap_threshold_frac * limit;
            traces_->Append(std::move(span));
        }
    }
}

void
LeafController::ExecuteCapPlan(const CappingPlan& plan)
{
    for (const CapAssignment& assignment : plan.assignments) {
        if (assignment.index >= agents_.size()) continue;
        AgentState& a = agents_[assignment.index];
        a.capped = true;
        a.cap = assignment.cap;
        transport_.Call(
            a.id, api::CapRequest{assignment.cap},
            [](const rpc::Payload&) {},
            [](const std::string&) {
                // A lost cap command is retried implicitly: the next
                // cycle re-evaluates and re-issues caps as needed.
            },
            config_.rpc_timeout);
    }
}

void
LeafController::ExecuteUncap()
{
    for (AgentState& a : agents_) {
        if (!a.capped) continue;
        a.capped = false;
        a.cap = 0.0;
        transport_.Call(
            a.id, api::CapRequest{std::nullopt}, [](const rpc::Payload&) {},
            [](const std::string&) {}, config_.rpc_timeout);
    }
}

void
LeafController::Snapshot(Archive& ar) const
{
    Controller::Snapshot(ar);
    ar.U64(estimated_readings_);
    ar.U64(cache_hits_);
    ar.U64(caps_adopted_);
    ar.U64(last_failure_count_);
    ar.F64(last_noncappable_);
    ar.Bool(shedding_);
    ar.F64(shed_fraction_);
    ar.U64(sheds_requested_);
    ar.U64(tunes_sent_);
    ar.U64(validation_alarms_);
    ar.F64(last_mismatch_);
    // Per-agent cache: the last-known-good readings (TTL-patched on
    // pull failure) and the caps this instance believes are in force.
    ar.U64(agents_.size());
    for (const AgentState& a : agents_) {
        ar.Str(a.info.endpoint);
        ar.F64(a.last_power);
        ar.Bool(a.have_last);
        ar.I64(a.last_time);
        ar.Bool(a.capped);
        ar.F64(a.cap);
    }
    // Brain state last: three_band writes nothing (pinning the
    // pre-interface checkpoint byte layout the golden journals carry);
    // stateful brains append their forecast state.
    policy_->Snapshot(ar);
}

}  // namespace dynamo::core
