/**
 * @file
 * Continuous invariant checking during chaos campaigns.
 *
 * The point of a campaign is not that the fleet survives one scripted
 * fault, but that Dynamo's safety contract holds at every instant
 * while faults are active and is restored promptly once they clear:
 *
 *   1. no breaker trips (its inverse-time trip curve is never
 *      exceeded long enough to fire);
 *   2. every controller enforces min(physical, contractual) as its
 *      effective limit;
 *   3. no server is capped below its SLA power floor (which implies
 *      every priority group keeps its aggregate floor);
 *   4. after the campaign's last fault clears — and demand has
 *      receded — all caps, contracts, and shed requests are released
 *      and every controller returns to NORMAL health within a bound;
 *   5. every *decision* (not just the resulting fleet state) respects
 *      the policy: leaf cap plans never assign a RAPL limit below a
 *      server's SLA floor, upper cap plans punish offenders (children
 *      over quota) before cutting innocents, and a plan that claims
 *      to be satisfied allocated the full requested cut.
 *
 * Invariants 1–4 are sampled from fleet state on the sim clock;
 * invariant 5 is checked from the controllers' decision traces
 * (telemetry::TraceLog), consumed incrementally by span-id watermark
 * so ring eviction is detected rather than silently skipped. The
 * checker records violations as human-readable strings (tests assert
 * the list is empty) and accumulates recovery-time / over-limit
 * metrics for the chaos bench.
 */
#ifndef DYNAMO_CHAOS_INVARIANTS_H_
#define DYNAMO_CHAOS_INVARIANTS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/units.h"
#include "fleet/fleet.h"
#include "sim/simulation.h"
#include "telemetry/trace.h"

namespace dynamo::chaos {

/** Periodic invariant checker over one fleet. */
class InvariantChecker
{
  public:
    struct Config
    {
        /** Sampling period, ms (1 s default: finer than pull cycles). */
        SimTime check_period = 1000;

        /** Tolerance on SLA floor comparisons (cap quantization), W. */
        double sla_epsilon = 1.5;

        /**
         * Once faults clear, all caps/contracts must be released and
         * all controllers back to NORMAL within this bound, ms.
         */
        SimTime release_bound = 180000;

        /** Cap on recorded violation strings (counting continues). */
        std::size_t max_recorded = 100;

        /**
         * Opt-in multi-tenant shed-order audit: the first time a
         * protected-tier server is observed capped, every
         * sheddable-tier server must already be shedding load (or be
         * capped itself) — shed-before-cap is the QoS contract.
         * Default off: the replayer recreates a default-config checker
         * from the journal header, so the default must keep behaving
         * exactly as pre-catalog journals recorded.
         */
        bool audit_qos_shed_order = false;
    };

    /** Starts sampling immediately; must not outlive `fleet`. */
    explicit InvariantChecker(fleet::Fleet& fleet);
    InvariantChecker(fleet::Fleet& fleet, Config config);

    ~InvariantChecker() { task_.Cancel(); }

    InvariantChecker(const InvariantChecker&) = delete;
    InvariantChecker& operator=(const InvariantChecker&) = delete;

    /**
     * Arm the release-bound invariant: the campaign's faults have all
     * cleared as of now, so full release must be observed within
     * release_bound.
     */
    void NoteFaultsCleared();

    /**
     * True when no controller is capping or degraded, no server is
     * capped, and no contractual limits are outstanding.
     */
    bool AllReleased();

    /** True if no invariant has been violated so far. */
    bool ok() const { return violation_count_ == 0; }

    /** Recorded violation descriptions (capped at max_recorded). */
    const std::vector<std::string>& violations() const { return violations_; }

    /** Total violations observed (recorded or not). */
    std::uint64_t violation_count() const { return violation_count_; }

    std::uint64_t checks_run() const { return checks_run_; }

    /** Decision spans verified against the policy invariants. */
    std::uint64_t spans_checked() const { return spans_checked_; }

    /** Spans evicted from the trace ring before we could check them. */
    std::uint64_t spans_missed() const { return spans_missed_; }

    /**
     * Capping flaps derived from decision spans: a controller started
     * a fresh capping episode within its flap window of its own last
     * release. Cross-checked against the controllers' own flap
     * counters — the metric may never exceed what the spans show
     * (when span coverage is complete).
     */
    std::uint64_t span_flaps() const { return span_flaps_; }

    /** Accumulated time any controlled device drew above its limit. */
    SimTime over_limit_ms() const { return over_limit_ms_; }

    /** Peak breaker thermal stress observed, in [0, 1]. */
    double max_breaker_stress() const { return max_breaker_stress_; }

    /**
     * Time from NoteFaultsCleared to the first fully-released sample;
     * -1 while not yet recovered.
     */
    SimTime recovery_time() const { return recovery_time_; }

    /**
     * Hook invoked on every violation (even past max_recorded), with
     * the description. The replay recorder uses it to dump a
     * reproduction journal the moment an invariant fails; chaos never
     * depends on the replay library.
     */
    using ViolationHook = std::function<void(const std::string&)>;

    void set_violation_hook(ViolationHook hook) { hook_ = std::move(hook); }

  private:
    void Check();
    void CheckTraces();
    void CheckSpan(const telemetry::TraceSpan& span);
    void Violation(const std::string& description);

    fleet::Fleet& fleet_;
    Config config_;
    std::vector<std::string> violations_;
    std::uint64_t violation_count_ = 0;
    std::uint64_t checks_run_ = 0;
    SimTime over_limit_ms_ = 0;
    double max_breaker_stress_ = 0.0;
    SimTime faults_cleared_at_ = -1;
    SimTime recovery_time_ = -1;

    /**
     * Spec epoch at the last sample. Audits always run against the
     * *current* fleet (rosters are re-read every check, so mid-run
     * server adds/removes never leave the checker holding stale
     * pointers); the epoch is tracked so the release bound re-arms
     * when a reconfiguration lands mid-recovery.
     */
    std::uint64_t last_epoch_ = 0;
    telemetry::SpanId trace_cursor_ = 1;  ///< Next span id to verify.
    std::uint64_t spans_checked_ = 0;
    std::uint64_t spans_missed_ = 0;

    /** Protected-tier servers already seen capped (QoS onset audit). */
    std::unordered_set<std::string> qos_capped_seen_;

    /** Per-controller time of the last observed kUncap span. */
    std::unordered_map<std::string, SimTime> last_uncap_;
    std::uint64_t span_flaps_ = 0;
    bool flap_violation_reported_ = false;
    bool release_violation_reported_ = false;
    ViolationHook hook_;
    sim::TaskHandle task_;
};

}  // namespace dynamo::chaos

#endif  // DYNAMO_CHAOS_INVARIANTS_H_
