#include "chaos/campaign.h"

#include <algorithm>
#include <utility>

namespace dynamo::chaos {

namespace {

/**
 * Pre-resolve endpoint names to interned ids at campaign-build time so
 * the scheduled fault actions touch only the id-indexed injector fast
 * paths (and capture 4-byte ids instead of strings).
 */
std::vector<rpc::EndpointId>
ResolveAll(rpc::SimTransport& transport, const std::vector<std::string>& names)
{
    std::vector<rpc::EndpointId> ids;
    ids.reserve(names.size());
    for (const std::string& name : names) ids.push_back(transport.Resolve(name));
    return ids;
}

}  // namespace

CampaignEngine::CampaignEngine(sim::Simulation& sim,
                               rpc::SimTransport& transport,
                               telemetry::EventLog* log)
    : sim_(sim), transport_(transport), log_(log)
{
}

void
CampaignEngine::Log(const std::string& description)
{
    if (log_ == nullptr) return;
    telemetry::Event event;
    event.time = sim_.Now();
    event.kind = telemetry::EventKind::kChaosFault;
    event.source = "chaos";
    event.detail = description;
    log_->Record(std::move(event));
}

void
CampaignEngine::At(SimTime when, std::string description,
                   std::function<void()> action)
{
    last_action_time_ = std::max(last_action_time_, when);
    tasks_.push_back(sim_.ScheduleAt(
        when, [this, when, description = std::move(description),
               action = std::move(action)]() {
            ++faults_applied_;
            Log(description);
            action();
            if (fault_observer_) fault_observer_(when, description);
        }));
}

void
CampaignEngine::Partition(SimTime start, SimTime end,
                          std::vector<std::string> endpoints)
{
    const std::string size = std::to_string(endpoints.size());
    std::vector<rpc::EndpointId> ids = ResolveAll(transport_, endpoints);
    At(start, "partition start (" + size + " endpoints)", [this, ids]() {
        for (rpc::EndpointId e : ids) {
            transport_.failures().SetEndpointDown(e, true);
        }
    });
    At(end, "partition heal (" + size + " endpoints)",
       [this, ids = std::move(ids)]() {
           for (rpc::EndpointId e : ids) {
               transport_.failures().SetEndpointDown(e, false);
           }
       });
}

void
CampaignEngine::Flap(SimTime start, SimTime end, const std::string& endpoint,
                     SimTime period)
{
    const rpc::EndpointId id = transport_.Resolve(endpoint);
    bool down = true;
    for (SimTime t = start; t < end; t += period) {
        At(t, (down ? "flap down " : "flap up ") + endpoint,
           [this, id, down]() {
               transport_.failures().SetEndpointDown(id, down);
           });
        down = !down;
    }
    At(end, "flap settle up " + endpoint, [this, id]() {
        transport_.failures().SetEndpointDown(id, false);
    });
}

void
CampaignEngine::LatencyStorm(SimTime start, SimTime end,
                             std::vector<std::string> endpoints,
                             SimTime extra_latency)
{
    const std::string what = std::to_string(endpoints.size()) +
                             " endpoints +" + std::to_string(extra_latency) +
                             "ms";
    std::vector<rpc::EndpointId> ids = ResolveAll(transport_, endpoints);
    At(start, "latency storm start (" + what + ")",
       [this, ids, extra_latency]() {
           for (rpc::EndpointId e : ids) {
               transport_.failures().SetEndpointExtraLatency(e, extra_latency);
           }
       });
    At(end, "latency storm end (" + what + ")",
       [this, ids = std::move(ids)]() {
           for (rpc::EndpointId e : ids) {
               transport_.failures().ClearEndpointExtraLatency(e);
           }
       });
}

void
CampaignEngine::DegradePulls(SimTime start, SimTime end,
                             std::vector<std::string> endpoints, double p)
{
    const std::string what =
        std::to_string(endpoints.size()) + " endpoints p=" + std::to_string(p);
    std::vector<rpc::EndpointId> ids = ResolveAll(transport_, endpoints);
    At(start, "pull degradation start (" + what + ")",
       [this, ids, p]() {
           for (rpc::EndpointId e : ids) {
               transport_.failures().SetEndpointFailureProbability(e, p);
           }
       });
    At(end, "pull degradation end (" + what + ")",
       [this, ids = std::move(ids)]() {
           for (rpc::EndpointId e : ids) {
               transport_.failures().ClearEndpointFailureProbability(e);
           }
       });
}

void
CampaignEngine::CrashController(SimTime when, core::Controller& controller)
{
    At(when, "crash controller " + controller.endpoint(),
       [&controller]() { controller.Crash(); });
}

void
CampaignEngine::TelemetryBlackout(SimTime start, SimTime end,
                                  power::BreakerTelemetry& telemetry)
{
    At(start, "telemetry blackout start",
       [&telemetry]() { telemetry.set_blackout(true); });
    At(end, "telemetry blackout end",
       [&telemetry]() { telemetry.set_blackout(false); });
}

}  // namespace dynamo::chaos
