/**
 * @file
 * Scripted fault-campaign engine.
 *
 * Dynamo's safety story (Sections III-C1/III-E) is about what happens
 * when the control plane's inputs fail: pulls time out, agents flap,
 * controllers crash mid-capping-event. The campaign engine drives
 * those fault patterns deterministically on the simulation clock,
 * layered on SimTransport::failures(): correlated sub-tree partitions,
 * agent flapping, latency storms (slow-responder injection), pull
 * degradation, controller crashes, and telemetry blackouts. Every
 * fault application and clearance is logged as a kChaosFault event so
 * experiment output interleaves faults with the controller reactions
 * they provoked.
 */
#ifndef DYNAMO_CHAOS_CAMPAIGN_H_
#define DYNAMO_CHAOS_CAMPAIGN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/units.h"
#include "core/controller.h"
#include "power/breaker_telemetry.h"
#include "rpc/transport.h"
#include "sim/simulation.h"
#include "telemetry/event_log.h"

namespace dynamo::chaos {

/**
 * Schedules scripted faults against one transport. All times are
 * absolute simulation times; helpers schedule immediately, so build
 * the campaign before (or while) the simulation runs past its start
 * times. The engine must outlive the scheduled actions.
 */
class CampaignEngine
{
  public:
    CampaignEngine(sim::Simulation& sim, rpc::SimTransport& transport,
                   telemetry::EventLog* log = nullptr);

    CampaignEngine(const CampaignEngine&) = delete;
    CampaignEngine& operator=(const CampaignEngine&) = delete;

    /** Schedule an arbitrary fault action (logged as kChaosFault). */
    void At(SimTime when, std::string description, std::function<void()> action);

    /**
     * Correlated partition: every endpoint in the set is hard-down
     * from `start` to `end` — the paper's "sub-tree loses its network
     * segment" case.
     */
    void Partition(SimTime start, SimTime end,
                   std::vector<std::string> endpoints);

    /**
     * Flapping: the endpoint alternates down/up every `period` from
     * `start`, and is left up at `end`.
     */
    void Flap(SimTime start, SimTime end, const std::string& endpoint,
              SimTime period);

    /**
     * Latency storm: each endpoint responds `extra_latency` ms slower
     * between `start` and `end`. Overrides above the caller's RPC
     * timeout turn the endpoints into de-facto blackholes.
     */
    void LatencyStorm(SimTime start, SimTime end,
                      std::vector<std::string> endpoints,
                      SimTime extra_latency);

    /**
     * Degraded network: every listed endpoint independently fails each
     * call with probability `p` between `start` and `end`.
     */
    void DegradePulls(SimTime start, SimTime end,
                      std::vector<std::string> endpoints, double p);

    /** Crash a controller at `when` (failover managers take it from there). */
    void CrashController(SimTime when, core::Controller& controller);

    /** Suppress a breaker-telemetry feed between `start` and `end`. */
    void TelemetryBlackout(SimTime start, SimTime end,
                           power::BreakerTelemetry& telemetry);

    /** Faults applied so far (actions that have fired). */
    std::uint64_t faults_applied() const { return faults_applied_; }

    /**
     * Observer invoked as each fault action fires (after it runs),
     * with the fire time and the fault description. The replay
     * recorder hooks this to journal the fault stream; chaos itself
     * never depends on the replay library.
     */
    using FaultObserver = std::function<void(SimTime, const std::string&)>;

    void set_fault_observer(FaultObserver observer)
    {
        fault_observer_ = std::move(observer);
    }

    /**
     * Latest scheduled action time — after this the campaign injects
     * nothing further, so invariant checkers can arm their
     * all-caps-released deadline against it.
     */
    SimTime last_action_time() const { return last_action_time_; }

  private:
    void Log(const std::string& description);

    sim::Simulation& sim_;
    rpc::SimTransport& transport_;
    telemetry::EventLog* log_;
    std::uint64_t faults_applied_ = 0;
    SimTime last_action_time_ = 0;
    FaultObserver fault_observer_;
    std::vector<sim::TaskHandle> tasks_;
};

}  // namespace dynamo::chaos

#endif  // DYNAMO_CHAOS_CAMPAIGN_H_
