#include "chaos/invariants.h"

#include <algorithm>

#include "core/deployment.h"

namespace dynamo::chaos {
namespace {

/** Device protected by a controller endpoint ("ctl:<name>"). */
power::PowerDevice*
DeviceFor(fleet::Fleet& fleet, const std::string& endpoint)
{
    const std::string prefix = "ctl:";
    if (endpoint.rfind(prefix, 0) != 0) return nullptr;
    return fleet.root().Find(endpoint.substr(prefix.size()));
}

}  // namespace

InvariantChecker::InvariantChecker(fleet::Fleet& fleet)
    : InvariantChecker(fleet, Config{})
{
}

InvariantChecker::InvariantChecker(fleet::Fleet& fleet, Config config)
    : fleet_(fleet), config_(config)
{
    task_ = fleet_.sim().SchedulePeriodic(config_.check_period,
                                          [this]() { Check(); });
}

void
InvariantChecker::NoteFaultsCleared()
{
    faults_cleared_at_ = fleet_.sim().Now();
    recovery_time_ = -1;
    release_violation_reported_ = false;
}

void
InvariantChecker::Violation(const std::string& description)
{
    ++violation_count_;
    if (violations_.size() < config_.max_recorded) {
        violations_.push_back(
            "t=" + std::to_string(fleet_.sim().Now()) + "ms " + description);
    }
}

bool
InvariantChecker::AllReleased()
{
    for (const auto& srv : fleet_.servers()) {
        if (srv->capped()) return false;
    }
    core::Deployment* dynamo = fleet_.dynamo();
    if (dynamo == nullptr) return true;
    const auto controller_released = [](const core::Controller& c) {
        if (!c.active()) return true;  // crashed/standby: no authority
        return !c.capping() && !c.releases_frozen() && !c.contractual_limit();
    };
    for (const auto& leaf : dynamo->leaf_controllers()) {
        if (!controller_released(*leaf)) return false;
        if (leaf->active() && leaf->shedding()) return false;
    }
    for (const auto& leaf : dynamo->leaf_backups()) {
        if (!controller_released(*leaf)) return false;
        if (leaf->active() && leaf->shedding()) return false;
    }
    for (const auto& upper : dynamo->upper_controllers()) {
        if (!controller_released(*upper)) return false;
        if (upper->active() && upper->contracted_count() > 0) return false;
    }
    for (const auto& upper : dynamo->upper_backups()) {
        if (!controller_released(*upper)) return false;
        if (upper->active() && upper->contracted_count() > 0) return false;
    }
    return true;
}

void
InvariantChecker::Check()
{
    ++checks_run_;
    const SimTime now = fleet_.sim().Now();

    // 1. Breakers hold: the trip curve was never exceeded to firing.
    bool over_limit = false;
    fleet_.root().ForEach([&](power::PowerDevice& device) {
        max_breaker_stress_ =
            std::max(max_breaker_stress_, device.breaker().stress());
        if (device.breaker().tripped()) {
            Violation("breaker tripped: " + device.name());
        }
    });

    core::Deployment* dynamo = fleet_.dynamo();
    if (dynamo != nullptr) {
        // 2. Effective limit is min(physical, contractual) everywhere.
        const auto check_limits = [&](const core::Controller& c) {
            if (c.EffectiveLimit() > c.physical_limit()) {
                Violation("effective limit above physical: " + c.endpoint());
            }
            if (c.contractual_limit() &&
                c.EffectiveLimit() > *c.contractual_limit()) {
                Violation("effective limit above contract: " + c.endpoint());
            }
        };
        for (const auto& leaf : dynamo->leaf_controllers()) check_limits(*leaf);
        for (const auto& upper : dynamo->upper_controllers()) {
            check_limits(*upper);
        }

        // Over-limit accounting for the bench: any controlled device
        // drawing above its active controller's effective limit.
        for (const auto& leaf : dynamo->leaf_controllers()) {
            power::PowerDevice* device = DeviceFor(fleet_, leaf->endpoint());
            if (device == nullptr) continue;
            const Watts draw = device->TotalPower(now);
            if (draw > leaf->EffectiveLimit()) over_limit = true;
        }

        // 3. SLA floors: no capped server below its floor.
        for (const auto& srv : fleet_.servers()) {
            if (!srv->capped()) continue;
            const Watts floor = core::SlaMinCapFor(*srv);
            if (srv->power_limit() < floor - config_.sla_epsilon) {
                Violation("server below SLA floor: " + srv->name());
            }
        }
    }
    if (over_limit) over_limit_ms_ += config_.check_period;

    // 4. Prompt release once faults cleared.
    if (faults_cleared_at_ >= 0 && recovery_time_ < 0 && AllReleased()) {
        recovery_time_ = now - faults_cleared_at_;
    }
    if (faults_cleared_at_ >= 0 && recovery_time_ < 0 &&
        now - faults_cleared_at_ > config_.release_bound &&
        !release_violation_reported_) {
        release_violation_reported_ = true;
        Violation("caps not released within " +
                  std::to_string(config_.release_bound) +
                  "ms of faults clearing");
    }
}

}  // namespace dynamo::chaos
