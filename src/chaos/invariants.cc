#include "chaos/invariants.h"

#include <algorithm>
#include <cmath>

#include "core/deployment.h"
#include "policy/capping_policy.h"
#include "telemetry/metrics.h"
#include "workload/service.h"

namespace dynamo::chaos {
namespace {

/** Device protected by a controller endpoint ("ctl:<name>"). */
power::PowerDevice*
DeviceFor(fleet::Fleet& fleet, const std::string& endpoint)
{
    const std::string prefix = "ctl:";
    if (endpoint.rfind(prefix, 0) != 0) return nullptr;
    return fleet.root().Find(endpoint.substr(prefix.size()));
}

}  // namespace

InvariantChecker::InvariantChecker(fleet::Fleet& fleet)
    : InvariantChecker(fleet, Config{})
{
}

InvariantChecker::InvariantChecker(fleet::Fleet& fleet, Config config)
    : fleet_(fleet), config_(config)
{
    task_ = fleet_.sim().SchedulePeriodic(config_.check_period,
                                          [this]() { Check(); });
}

void
InvariantChecker::NoteFaultsCleared()
{
    faults_cleared_at_ = fleet_.sim().Now();
    recovery_time_ = -1;
    release_violation_reported_ = false;
}

void
InvariantChecker::Violation(const std::string& description)
{
    ++violation_count_;
    if (violations_.size() < config_.max_recorded) {
        violations_.push_back(
            "t=" + std::to_string(fleet_.sim().Now()) + "ms " + description);
    }
    if (hook_) hook_(description);
}

bool
InvariantChecker::AllReleased()
{
    for (const auto& srv : fleet_.servers()) {
        if (srv->capped()) return false;
    }
    core::Deployment* dynamo = fleet_.dynamo();
    if (dynamo == nullptr) return true;
    const auto controller_released = [](const core::Controller& c) {
        if (!c.active()) return true;  // crashed/standby: no authority
        return !c.capping() && !c.releases_frozen() && !c.contractual_limit();
    };
    for (const auto& leaf : dynamo->leaf_controllers()) {
        if (!controller_released(*leaf)) return false;
        if (leaf->active() && leaf->shedding()) return false;
    }
    for (const auto& leaf : dynamo->leaf_backups()) {
        if (!controller_released(*leaf)) return false;
        if (leaf->active() && leaf->shedding()) return false;
    }
    for (const auto& upper : dynamo->upper_controllers()) {
        if (!controller_released(*upper)) return false;
        if (upper->active() && upper->contracted_count() > 0) return false;
    }
    for (const auto& upper : dynamo->upper_backups()) {
        if (!controller_released(*upper)) return false;
        if (upper->active() && upper->contracted_count() > 0) return false;
    }
    return true;
}

void
InvariantChecker::Check()
{
    ++checks_run_;
    const SimTime now = fleet_.sim().Now();

    // Elasticity: a committed reconfiguration is a deliberate
    // disturbance (rosters and topology change under the controllers),
    // so if one lands while the post-fault release clock is running,
    // recovery is re-measured from the commit — the bound judges the
    // fleet that exists now, not the boot-time one.
    if (fleet_.spec_epoch() != last_epoch_) {
        last_epoch_ = fleet_.spec_epoch();
        if (faults_cleared_at_ >= 0 && recovery_time_ < 0) {
            faults_cleared_at_ = now;
            release_violation_reported_ = false;
        }
    }

    // 1. Breakers hold: the trip curve was never exceeded to firing.
    bool over_limit = false;
    fleet_.root().ForEach([&](power::PowerDevice& device) {
        max_breaker_stress_ =
            std::max(max_breaker_stress_, device.breaker().stress());
        if (device.breaker().tripped()) {
            Violation("breaker tripped: " + device.name());
        }
    });

    core::Deployment* dynamo = fleet_.dynamo();
    if (dynamo != nullptr) {
        // 2. Effective limit is min(physical, contractual) everywhere.
        const auto check_limits = [&](const core::Controller& c) {
            if (c.EffectiveLimit() > c.physical_limit()) {
                Violation("effective limit above physical: " + c.endpoint());
            }
            if (c.contractual_limit() &&
                c.EffectiveLimit() > *c.contractual_limit()) {
                Violation("effective limit above contract: " + c.endpoint());
            }
        };
        for (const auto& leaf : dynamo->leaf_controllers()) check_limits(*leaf);
        for (const auto& upper : dynamo->upper_controllers()) {
            check_limits(*upper);
        }

        // Over-limit accounting for the bench: any controlled device
        // drawing above its active controller's effective limit.
        for (const auto& leaf : dynamo->leaf_controllers()) {
            power::PowerDevice* device = DeviceFor(fleet_, leaf->endpoint());
            if (device == nullptr) continue;
            const Watts draw = device->TotalPower(now);
            if (draw > leaf->EffectiveLimit()) over_limit = true;
        }

        // 3. SLA floors: no capped server below its floor.
        for (const auto& srv : fleet_.servers()) {
            if (!srv->capped()) continue;
            const Watts floor = core::SlaMinCapFor(*srv);
            if (srv->power_limit() < floor - config_.sla_epsilon) {
                Violation("server below SLA floor: " + srv->name());
            }
        }
    }
    if (over_limit) over_limit_ms_ += config_.check_period;

    // 3b. Multi-tenant shed ordering (opt-in): the sample where a
    // protected-tier server is *first* seen capped, the sheddable tier
    // must already have given up load. Onset-based — once capping is
    // in force, later samples stay quiet so a single ordering mistake
    // is reported once, not every second until release.
    if (config_.audit_qos_shed_order) {
        bool protected_onset = false;
        for (const auto& srv : fleet_.servers()) {
            if (!srv->capped()) continue;
            if (workload::TraitsFor(srv->service()).qos_tier !=
                workload::QosTier::kProtected) {
                continue;
            }
            if (qos_capped_seen_.insert(srv->name()).second) {
                protected_onset = true;
            }
        }
        if (protected_onset) {
            for (const auto& srv : fleet_.servers()) {
                if (workload::TraitsFor(srv->service()).qos_tier !=
                    workload::QosTier::kSheddable) {
                    continue;
                }
                if (srv->load().shed_factor() < 1.0 || srv->capped()) {
                    continue;
                }
                Violation("qos: protected tenant capped while sheddable "
                          "server " +
                          srv->name() + " runs unshed");
                break;  // One violation per onset sample, not per server.
            }
        }
    }

    // 5. Policy invariants on every decision span since the last check.
    CheckTraces();

    // Flap-counter audit: with complete span coverage, the
    // controllers' flap counters can never exceed the span-derived
    // count (each metric increment corresponds to a fresh kCap span
    // within the flap window of that controller's kUncap span). The
    // converse is not checked — a controller detached from telemetry
    // counts nothing while still emitting spans.
    if (spans_missed_ == 0 && fleet_.trace_log() != nullptr &&
        !flap_violation_reported_) {
        telemetry::MetricsRegistry* metrics = fleet_.metrics();
        if (metrics != nullptr) {
            const std::uint64_t counted =
                metrics->GetCounter("leaf.flaps")->value() +
                metrics->GetCounter("upper.flaps")->value();
            if (counted > span_flaps_) {
                flap_violation_reported_ = true;
                Violation("flap counters report " + std::to_string(counted) +
                          " flaps but decision spans support only " +
                          std::to_string(span_flaps_));
            }
        }
    }

    // 4. Prompt release once faults cleared.
    if (faults_cleared_at_ >= 0 && recovery_time_ < 0 && AllReleased()) {
        recovery_time_ = now - faults_cleared_at_;
    }
    if (faults_cleared_at_ >= 0 && recovery_time_ < 0 &&
        now - faults_cleared_at_ > config_.release_bound &&
        !release_violation_reported_) {
        release_violation_reported_ = true;
        Violation("caps not released within " +
                  std::to_string(config_.release_bound) +
                  "ms of faults clearing");
    }
}

void
InvariantChecker::CheckTraces()
{
    telemetry::TraceLog* log = fleet_.trace_log();
    if (log == nullptr) return;

    // Incremental watermark: spans are dense by id, so anything between
    // the cursor and the oldest retained id was evicted unseen. Count
    // it instead of pretending coverage.
    const telemetry::SpanId first = log->first_id();
    if (first != telemetry::kNoSpan && trace_cursor_ < first) {
        spans_missed_ += first - trace_cursor_;
        trace_cursor_ = first;
    }
    for (; trace_cursor_ < log->next_id(); ++trace_cursor_) {
        const telemetry::TraceSpan* span = log->Find(trace_cursor_);
        if (span == nullptr) continue;
        CheckSpan(*span);
        ++spans_checked_;
    }
}

void
InvariantChecker::CheckSpan(const telemetry::TraceSpan& span)
{
    if (span.band == telemetry::TraceBand::kUncap) {
        last_uncap_[span.source] = span.time;
        return;
    }
    if (span.band != telemetry::TraceBand::kCap) return;
    const std::string where =
        " (span#" + std::to_string(span.id) + " " + span.source + ")";

    // Flap bookkeeping: a *fresh* capping episode (not a re-plan of an
    // episode already in force, not an adoption — both have
    // was_capping set) that starts within the controller's flap
    // window of its own last release. Mirrors Controller::NoteCapStart
    // exactly, so the controllers' flap counters can be audited
    // against span-derived truth.
    if (!span.was_capping) {
        const auto& dep = fleet_.spec().deployment;
        const core::ControllerBaseConfig& base =
            span.kind == telemetry::SpanKind::kLeafDecision
                ? dep.leaf.base
                : dep.upper.base;
        const auto it = last_uncap_.find(span.source);
        if (it != last_uncap_.end() &&
            span.time - it->second <=
                static_cast<SimTime>(base.flap_window_cycles) *
                    base.pull_cycle) {
            ++span_flaps_;
        }
    }

    // The plan's allocations must sum to what it claims it cut.
    Watts allocated = 0.0;
    for (const telemetry::TraceAllocation& alloc : span.allocs) {
        allocated += alloc.cut;
    }
    const double sum_tolerance =
        1e-6 * std::max(1.0, std::max(allocated, span.planned_cut));
    if (std::abs(allocated - span.planned_cut) > sum_tolerance) {
        Violation("trace: allocations sum to " + std::to_string(allocated) +
                  "W but planned cut is " + std::to_string(span.planned_cut) +
                  "W" + where);
    }
    if (span.satisfied && span.planned_cut < span.cut - config_.sla_epsilon) {
        Violation("trace: plan claims satisfied but allocated " +
                  std::to_string(span.planned_cut) + "W of " +
                  std::to_string(span.cut) + "W" + where);
    }

    if (span.kind == telemetry::SpanKind::kLeafDecision) {
        // SLA floor: no RAPL cap in the plan dips below the server's floor.
        for (const telemetry::TraceAllocation& alloc : span.allocs) {
            if (alloc.limit_sent < alloc.floor - config_.sla_epsilon) {
                Violation("trace: cap " + std::to_string(alloc.limit_sent) +
                          "W below SLA floor " + std::to_string(alloc.floor) +
                          "W for " + alloc.target + where);
            }
        }
        return;
    }

    // Upper spans: offender-first. An innocent (child at/under quota)
    // may only be cut once every offender has been pushed down to its
    // quota — i.e. absorbed its full overage. This is a *three-band*
    // contract: the other policy-lab brains (waterfill, fairshare)
    // deliberately spread cuts across innocents by weight, so the
    // audit applies only when the fleet runs the paper's planner.
    if (fleet_.spec().deployment.upper.capping_policy !=
        policy::PolicyKind::kThreeBand) {
        return;
    }
    bool innocent_cut = false;
    for (const telemetry::TraceAllocation& alloc : span.allocs) {
        if (!alloc.offender && alloc.cut > config_.sla_epsilon) {
            innocent_cut = true;
        }
    }
    if (!innocent_cut) return;
    for (const telemetry::TraceAllocation& alloc : span.allocs) {
        if (!alloc.offender) continue;
        const Watts overage = alloc.power - alloc.quota;
        const bool fully_punished =
            alloc.cut >= overage - config_.sla_epsilon;
        // An offender whose aggregate floor sits above its quota can
        // only be pushed to the floor; that still counts as punished.
        const bool at_floor =
            alloc.limit_sent <= alloc.floor + config_.sla_epsilon;
        if (!fully_punished && !at_floor) {
            Violation("trace: innocent child cut while offender " +
                      alloc.target + " kept " +
                      std::to_string(overage - alloc.cut) +
                      "W of its overage" + where);
        }
    }
}

}  // namespace dynamo::chaos
