/**
 * @file
 * Canned traffic scenarios from the paper's production case studies.
 *
 * Each function appends breakpoints to a fleet's scenario traffic
 * curve (a multiplicative factor on top of the diurnal curve):
 *
 *  - ScriptLoadTest: the Fig. 11 event — normal daily increase, then a
 *    production load test shifts extra user traffic to the cluster
 *    until power capping triggers, then the test ends.
 *  - ScriptOutageRecovery: the Fig. 12 event — an unplanned site issue
 *    drops traffic sharply, two partial recovery attempts oscillate,
 *    then a successful recovery floods the data center to ~1.3× its
 *    normal daily peak.
 */
#ifndef DYNAMO_FLEET_SCENARIOS_H_
#define DYNAMO_FLEET_SCENARIOS_H_

#include "common/units.h"
#include "workload/traffic.h"

namespace dynamo::fleet {

/**
 * Fig. 11-style load test.
 *
 * @param start         When the load test begins.
 * @param ramp          Ramp-up duration to full surge.
 * @param hold          How long the surge is held.
 * @param surge_factor  Traffic multiplier during the test (e.g. 1.25).
 */
void ScriptLoadTest(workload::PiecewiseTraffic* scenario, SimTime start,
                    SimTime ramp, SimTime hold, double surge_factor);

/**
 * Fig. 12-style site outage and recovery surge.
 *
 * @param issue_start   When the site issue begins (traffic collapses).
 * @param surge_factor  Peak traffic multiplier after recovery (~1.3).
 * @param settle        When extra traffic is shifted away again.
 */
void ScriptOutageRecovery(workload::PiecewiseTraffic* scenario,
                          SimTime issue_start, double surge_factor,
                          SimTime settle);

/**
 * Chaos-campaign traffic backdrop: ramp to `factor` by `start + ramp`,
 * hold until `release`, then decay back to 1.0. Campaigns use this to
 * pin a fleet near its limits while faults are injected, and to drop
 * demand afterwards so cap-release behaviour is observable.
 */
void ScriptSurgeHold(workload::PiecewiseTraffic* scenario, SimTime start,
                     SimTime ramp, SimTime release, double factor);

}  // namespace dynamo::fleet

#endif  // DYNAMO_FLEET_SCENARIOS_H_
