#include "fleet/sharded_scenarios.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "server/power_model.h"

namespace dynamo::fleet {
namespace {

/** Window whose closing barrier is the first at or after `when`. */
std::uint64_t
WindowAt(SimTime when)
{
    if (when <= 0) return 0;
    return static_cast<std::uint64_t>((when - 1) / kShardWindowMs);
}

void
GridDemandResponse(ShardedFleet& fleet, const replay::ScenarioParams& p)
{
    const SimTime start = Seconds(p.at("start_s"));
    const SimTime hold = Seconds(p.at("hold_s"));
    const double keep = 1.0 - p.at("drop_frac");
    const double surge = p.at("surge_factor");
    const std::uint64_t w_start = WindowAt(start);
    const std::uint64_t w_end = std::max(w_start + 1, WindowAt(start + hold));

    auto saved = std::make_shared<std::vector<Watts>>();
    fleet.ScheduleAction(
        w_start, "grid-dr: derate every SB budget", [&fleet, saved, keep,
                                                     surge] {
            for (std::size_t s = 0; s < fleet.plan().n_sbs; ++s) {
                core::UpperController& sb = fleet.sb(s);
                saved->push_back(sb.physical_limit());
                sb.SetPhysicalLimit(saved->back() * keep);
            }
            fleet.ForEachServer([surge](server::SimServer& srv) {
                srv.load().set_balancer_factor(surge);
            });
        });
    fleet.ScheduleAction(w_end, "grid-dr: restore every SB budget",
                         [&fleet, saved] {
                             for (std::size_t s = 0; s < saved->size(); ++s) {
                                 fleet.sb(s).SetPhysicalLimit((*saved)[s]);
                             }
                             fleet.ForEachServer([](server::SimServer& srv) {
                                 srv.load().set_balancer_factor(1.0);
                             });
                         });
}

void
ThermalEmergency(ShardedFleet& fleet, const replay::ScenarioParams& p)
{
    const double start_s = p.at("start_s");
    const double stagger_s = p.at("stagger_s");
    const double hold_s = p.at("hold_s");
    const double keep = 1.0 - p.at("drop_frac");

    for (std::size_t l = 0; l < fleet.plan().n_leaves; ++l) {
        const SimTime at = Seconds(start_s + static_cast<double>(l) *
                                                 stagger_s);
        const std::uint64_t w_derate = WindowAt(at);
        const std::uint64_t w_restore =
            std::max(w_derate + 1, WindowAt(at + Seconds(hold_s)));
        auto saved = std::make_shared<Watts>(0.0);
        fleet.ScheduleAction(w_derate,
                             "thermal: derate rpp" + std::to_string(l),
                             [&fleet, l, saved, keep] {
                                 if (!fleet.leaf_alive(l)) return;
                                 core::LeafController& leaf = fleet.leaf(l);
                                 *saved = leaf.physical_limit();
                                 leaf.SetPhysicalLimit(*saved * keep);
                             });
        fleet.ScheduleAction(w_restore,
                             "thermal: restore rpp" + std::to_string(l),
                             [&fleet, l, saved] {
                                 if (!fleet.leaf_alive(l) || *saved <= 0.0) {
                                     return;
                                 }
                                 fleet.leaf(l).SetPhysicalLimit(*saved);
                             });
    }
}

void
GpuTrainingSurge(ShardedFleet& fleet, const replay::ScenarioParams& p)
{
    const double start_s = p.at("start_s");
    const double period_s = p.at("period_s");
    const auto pulses = static_cast<int>(p.at("pulses"));
    const double high = p.at("high");
    const double low = p.at("low");

    const auto set_gpu = [&fleet](double factor) {
        fleet.ForEachServer([factor](server::SimServer& srv) {
            if (srv.generation() == server::ServerGeneration::kGpuTrain2024) {
                srv.load().set_balancer_factor(factor);
            }
        });
    };
    for (int k = 0; k < pulses; ++k) {
        const SimTime rise =
            Seconds(start_s + static_cast<double>(k) * period_s);
        const std::uint64_t w_rise = WindowAt(rise);
        const std::uint64_t w_fall =
            std::max(w_rise + 1, WindowAt(rise + Seconds(period_s / 2.0)));
        fleet.ScheduleAction(w_rise,
                             "gpu-surge: compute step " + std::to_string(k + 1),
                             [set_gpu, high] { set_gpu(high); });
        fleet.ScheduleAction(
            w_fall, "gpu-surge: all-reduce stall " + std::to_string(k + 1),
            [set_gpu, low] { set_gpu(low); });
    }
    fleet.ScheduleAction(
        WindowAt(Seconds(start_s + pulses * period_s)) + 1,
        "gpu-surge: training job done", [set_gpu] { set_gpu(1.0); });
}

void
EstimatorDrift(ShardedFleet& fleet, const replay::ScenarioParams& p)
{
    const double start_s = p.at("start_s");
    const double step_s = p.at("step_s");
    const auto steps = static_cast<int>(p.at("steps"));
    const double step_bias = p.at("step_bias");

    const auto set_bias = [&fleet](double bias) {
        fleet.ForEachServer([bias](server::SimServer& srv) {
            if (!srv.has_sensor()) srv.estimator().set_bias_frac(bias);
        });
    };
    for (int k = 0; k < steps; ++k) {
        const double bias = (k + 1) * step_bias;
        fleet.ScheduleAction(
            WindowAt(Seconds(start_s + static_cast<double>(k) * step_s)),
            "drift: sensorless bias step " + std::to_string(k + 1),
            [set_bias, bias] { set_bias(bias); });
    }
    fleet.ScheduleAction(WindowAt(Seconds(start_s + steps * step_s)) + 1,
                         "drift: bias cleared",
                         [set_bias] { set_bias(0.0); });
}

void
QosDowngrade(ShardedFleet& fleet, const replay::ScenarioParams& p)
{
    const SimTime start = Seconds(p.at("start_s"));
    const SimTime hold = Seconds(p.at("hold_s"));
    const double surge = p.at("surge_factor");
    const double shed_frac = p.at("shed_frac");
    const std::uint64_t w_start = WindowAt(start);
    const std::uint64_t w_end = std::max(w_start + 1, WindowAt(start + hold));

    // One action does both legs in a fixed order: the sheddable tier
    // gives up load in the same barrier the surge lands, so no window
    // ever runs surged-but-unshed.
    fleet.ScheduleAction(
        w_start, "qos: surge tenants, shed sheddable tier",
        [&fleet, surge, shed_frac] {
            fleet.ForEachServer([surge, shed_frac](server::SimServer& srv) {
                srv.load().set_balancer_factor(surge);
                if (workload::TraitsFor(srv.service()).qos_tier ==
                    workload::QosTier::kSheddable) {
                    srv.load().set_shed_factor(1.0 - shed_frac);
                }
            });
        });
    fleet.ScheduleAction(w_end, "qos: restore tenants", [&fleet] {
        fleet.ForEachServer([](server::SimServer& srv) {
            srv.load().set_balancer_factor(1.0);
            srv.load().set_shed_factor(1.0);
        });
    });
}

}  // namespace

bool
ApplyShardedScenario(ShardedFleet& fleet, const replay::ScenarioSpec& spec)
{
    const std::string& name = spec.scenario->name;
    const replay::ScenarioParams& p = spec.params;
    if (name == "quiet") return true;
    if (name == "grid-dr") {
        GridDemandResponse(fleet, p);
        return true;
    }
    if (name == "thermal-emergency") {
        ThermalEmergency(fleet, p);
        return true;
    }
    if (name == "gpu-surge") {
        GpuTrainingSurge(fleet, p);
        return true;
    }
    if (name == "estimator-drift") {
        EstimatorDrift(fleet, p);
        return true;
    }
    if (name == "qos-downgrade") {
        QosDowngrade(fleet, p);
        return true;
    }
    return false;
}

}  // namespace dynamo::fleet
