#include "fleet/scenarios.h"

namespace dynamo::fleet {

void
ScriptLoadTest(workload::PiecewiseTraffic* scenario, SimTime start, SimTime ramp,
               SimTime hold, double surge_factor)
{
    scenario->AddPoint(0, 1.0);
    scenario->AddPoint(start, 1.0);
    scenario->AddPoint(start + ramp, surge_factor);
    scenario->AddPoint(start + ramp + hold, surge_factor);
    // Traffic returns to normal over roughly half the ramp time.
    scenario->AddPoint(start + ramp + hold + ramp / 2, 1.0);
}

void
ScriptOutageRecovery(workload::PiecewiseTraffic* scenario, SimTime issue_start,
                     double surge_factor, SimTime settle)
{
    const SimTime m = Minutes(1);
    scenario->AddPoint(0, 1.0);
    scenario->AddPoint(issue_start, 1.0);
    // Sharp power drop over ~10 minutes as the site issue hits.
    scenario->AddPoint(issue_start + 10 * m, 0.35);
    // Two unsuccessful partial recoveries oscillate for ~30 minutes.
    scenario->AddPoint(issue_start + 16 * m, 0.75);
    scenario->AddPoint(issue_start + 22 * m, 0.45);
    scenario->AddPoint(issue_start + 30 * m, 0.85);
    scenario->AddPoint(issue_start + 36 * m, 0.50);
    // Successful recovery: traffic floods in well above the daily peak.
    scenario->AddPoint(issue_start + 48 * m, surge_factor);
    scenario->AddPoint(settle, surge_factor);
    // Load shifted to other data centers; back to normal in ~25 min.
    scenario->AddPoint(settle + 25 * m, 1.0);
}

void
ScriptSurgeHold(workload::PiecewiseTraffic* scenario, SimTime start,
                SimTime ramp, SimTime release, double factor)
{
    scenario->AddPoint(0, 1.0);
    scenario->AddPoint(start, 1.0);
    scenario->AddPoint(start + ramp, factor);
    scenario->AddPoint(release, factor);
    scenario->AddPoint(release + ramp, 1.0);
}

}  // namespace dynamo::fleet
