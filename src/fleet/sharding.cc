#include "fleet/sharding.h"

#include <algorithm>
#include <any>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/archive.h"
#include "common/rng.h"
#include "core/api.h"
#include "core/controller_builder.h"
#include "power/topology.h"
#include "telemetry/metrics.h"
#include "workload/load_process.h"

namespace dynamo::fleet {

namespace {

/** Stable per-shard transport seed (independent of thread count). */
std::uint64_t
ShardSeed(std::uint64_t base, const std::string& label)
{
    return base ^ Fnv1a64(label);
}

}  // namespace

ShardPlan
ShardPlan::For(std::size_t n_servers)
{
    ShardPlan plan;
    plan.n_servers = n_servers;
    plan.n_leaves =
        (n_servers + kShardServersPerLeaf - 1) / kShardServersPerLeaf;
    plan.n_sbs =
        (plan.n_leaves + kShardLeavesPerSb - 1) / kShardLeavesPerSb;
    plan.n_msbs = plan.n_sbs > 1
                      ? (plan.n_sbs + kShardSbsPerMsb - 1) / kShardSbsPerMsb
                      : 0;
    plan.shards.reserve(plan.n_sbs);
    for (std::size_t s = 0; s < plan.n_sbs; ++s) {
        Shard shard;
        shard.first_leaf = s * kShardLeavesPerSb;
        shard.last_leaf =
            std::min(shard.first_leaf + kShardLeavesPerSb, plan.n_leaves);
        plan.shards.push_back(shard);
    }
    return plan;
}

/**
 * One SB subtree as a private sub-world. Everything here is touched by
 * exactly one thread per window; the pool barrier orders windows.
 */
struct ShardedFleet::WorkerShard : sim::ShardRunner
{
    WorkerShard(std::size_t index_in, std::uint64_t transport_seed)
        : index(index_in), transport(sim, transport_seed)
    {
        sim.set_event_observer([this](SimTime t, std::uint64_t seq) {
            kernel_hash.Mix(static_cast<std::uint64_t>(t));
            kernel_hash.Mix(seq);
        });
        transport.set_call_observer(
            [this](rpc::EndpointId id, rpc::CallFate fate, SimTime now) {
                rpc_hash.Mix(id);
                rpc_hash.Mix(static_cast<std::uint64_t>(fate));
                rpc_hash.Mix(static_cast<std::uint64_t>(now));
            });
    }

    void RunWindow(SimTime until) override
    {
        sim.RunUntil(until);
        StageLeafSnapshots();
    }

    /** Canonical state bytes for merged checkpoints. */
    void Snapshot(Archive& ar) const
    {
        ar.U64(index);
        sim.Snapshot(ar);
        transport.Snapshot(ar);
        ar.U64(servers.size());
        for (const auto& server : servers) server->Snapshot(ar);
        ar.U64(leaves.size());
        for (const auto& leaf : leaves) leaf->Snapshot(ar);
    }

    /**
     * What the barrier publishes to one leaf's proxy: the exact fields
     * a real leaf answers a PowerReadRequest with.
     */
    struct LeafStage
    {
        Watts power = 0.0;
        Watts quota = 0.0;
        Watts floor = 0.0;
        bool valid = false;

        bool operator==(const LeafStage&) const = default;
    };

    /**
     * End-of-window capture, run by this shard's worker thread inside
     * the parallel region: read every local leaf's proxy-served fields
     * and diff them against the last published copy, recording changed
     * local indices in `dirty`. The barrier then publishes only the
     * dirty entries — O(changed leaves) of serial work instead of a
     * full O(n_leaves) sweep with a cross-shard pointer chase per leaf.
     *
     * The capture happens *before* the barrier commits reconfiguration
     * transactions, so a commit's effect on quota/floor surfaces one
     * window later than the old in-barrier sweep published it. That
     * staleness is already part of the contract: the pull cadence
     * absorbs a full window everywhere else (DESIGN.md §10).
     */
    void StageLeafSnapshots()
    {
        if (published.size() != leaves.size()) {
            // First window: sentinel power forces every leaf to
            // publish once (a real power can never be negative).
            LeafStage sentinel;
            sentinel.power = -1.0;
            published.resize(leaves.size(), sentinel);
        }
        dirty.clear();
        for (std::size_t i = 0; i < leaves.size(); ++i) {
            const core::LeafController& leaf = *leaves[i];
            LeafStage stage;
            stage.power = leaf.last_aggregated_power();
            stage.quota = leaf.quota();
            stage.floor = leaf.Floor();
            stage.valid = leaf.last_valid();
            if (stage != published[i]) {
                published[i] = stage;
                dirty.push_back(i);
            }
        }
    }

    std::size_t index;
    sim::Simulation sim;
    rpc::SimTransport transport;

    std::vector<std::unique_ptr<server::SimServer>> servers;
    std::vector<std::unique_ptr<core::DynamoAgent>> agents;
    std::vector<std::unique_ptr<power::PowerDevice>> devices;
    std::vector<std::unique_ptr<core::LeafController>> leaves;

    /**
     * Inbound contract updates from the control shard. Written by the
     * *control* shard's thread mid-window (the proxy push), drained by
     * the barrier — its own cache line so those pushes never contend
     * with this shard's per-event hash writes below.
     */
    alignas(64) rpc::ShardMailbox mailbox;

    /**
     * Hot per-window state written by this shard's worker thread:
     * digests mixed on every event/call, and the staged leaf snapshots
     * captured at window close. Cache-line aligned away from the
     * mailbox for the same false-sharing reason.
     */
    alignas(64) HashAccumulator rpc_hash;
    HashAccumulator kernel_hash;

    /** Last values handed to the proxies (local leaf index). */
    std::vector<LeafStage> published;

    /** Local leaf indices whose `published` entry changed this window. */
    std::vector<std::uint32_t> dirty;
};

/** The upper-controller world plus the per-leaf proxy state. */
struct ShardedFleet::ControlShard : sim::ShardRunner
{
    explicit ControlShard(std::uint64_t transport_seed)
        : transport(sim, transport_seed)
    {
        sim.set_event_observer([this](SimTime t, std::uint64_t seq) {
            kernel_hash.Mix(static_cast<std::uint64_t>(t));
            kernel_hash.Mix(seq);
        });
        transport.set_call_observer(
            [this](rpc::EndpointId id, rpc::CallFate fate, SimTime now) {
                rpc_hash.Mix(id);
                rpc_hash.Mix(static_cast<std::uint64_t>(fate));
                rpc_hash.Mix(static_cast<std::uint64_t>(now));
            });
    }

    void RunWindow(SimTime until) override { sim.RunUntil(until); }

    void Snapshot(Archive& ar) const
    {
        sim.Snapshot(ar);
        transport.Snapshot(ar);
        ar.U64(uppers.size());
        for (const auto& upper : uppers) upper->Snapshot(ar);
    }

    /**
     * What the proxy endpoint for one leaf serves its SB parent: the
     * exact fields a real leaf answers a PowerReadRequest with, frozen
     * at the last barrier.
     */
    struct LeafProxy
    {
        std::string endpoint;
        Watts power = 0.0;
        Watts quota = 0.0;
        Watts floor = 0.0;

        /** Mirrors LeafController::last_valid(); false until the leaf
         *  has aggregated once, so uppers see the same cold start a
         *  real child would give them. */
        bool valid = false;
    };

    sim::Simulation sim;
    rpc::SimTransport transport;

    /** SB uppers first (index = SB index), then MSB uppers. */
    std::vector<std::unique_ptr<core::UpperController>> uppers;

    /** Indexed by global leaf. */
    std::vector<LeafProxy> proxies;

    std::uint64_t reads_proxied = 0;
    std::uint64_t contracts_forwarded = 0;

    HashAccumulator rpc_hash;
    HashAccumulator kernel_hash;
};

ShardedFleet::ShardedFleet(ShardedFleetConfig config)
    : config_(std::move(config)), plan_(ShardPlan::For(config_.n_servers))
{
    std::vector<Watts> leaf_rated;
    leaf_rated.reserve(plan_.n_leaves);

    shards_.reserve(plan_.shards.size());
    for (std::size_t s = 0; s < plan_.shards.size(); ++s) {
        shards_.push_back(std::make_unique<WorkerShard>(
            s, ShardSeed(config_.seed, "shard:" + std::to_string(s))));
    }
    control_ = std::make_unique<ControlShard>(
        ShardSeed(config_.seed, "control"));

    // --- Servers, agents, leaf controllers, routed to owning shards.
    // One global RNG sequence over global server order, so per-server
    // seeds depend only on the config (the bench fleet's recipe).
    Rng rng(config_.seed ^ (config_.n_servers * 0x9e3779b97f4a7c15ULL));
    const workload::ServiceType services[] = {
        workload::ServiceType::kWeb, workload::ServiceType::kCache,
        workload::ServiceType::kHadoop, workload::ServiceType::kDatabase};

    leaf_alive_.assign(plan_.n_leaves, 1);
    leaf_parent_.reserve(plan_.n_leaves);
    leaf_agents_.resize(plan_.n_leaves);
    for (std::size_t l = 0; l < plan_.n_leaves; ++l) {
        WorkerShard& shard = *shards_[plan_.shard_of_leaf(l)];
        const std::size_t first = l * kShardServersPerLeaf;
        const std::size_t last =
            std::min(first + kShardServersPerLeaf, plan_.n_servers);
        leaf_parent_.push_back(plan_.shard_of_leaf(l));

        const std::size_t leaf_first_server = shard.servers.size();
        for (std::size_t i = first; i < last; ++i) {
            server::SimServer::Config server_config;
            server_config.name = "srv" + std::to_string(i);
            server_config.service = services[i % 4];
            server_config.generation =
                (i % 10 < 7) ? server::ServerGeneration::kHaswell2015
                             : server::ServerGeneration::kWestmere2011;
            // Conditional draws: a zero fraction consumes nothing, so
            // pre-catalog seeds keep their exact per-server streams.
            if (config_.gpu_fraction > 0.0 &&
                rng.Bernoulli(config_.gpu_fraction)) {
                server_config.generation =
                    server::ServerGeneration::kGpuTrain2024;
            }
            if (config_.sensorless_fraction > 0.0) {
                server_config.has_sensor =
                    !rng.Bernoulli(config_.sensorless_fraction);
            }
            server_config.seed = rng.NextU64();
            workload::LoadProcessParams params =
                workload::LoadProcessParams::For(server_config.service);
            params.base_util = rng.Uniform(0.35, 0.75);
            params.spike_rate_per_hour = 0.0;  // steady-state scale run
            shard.servers.push_back(std::make_unique<server::SimServer>(
                std::move(server_config), params));
            shard.agents.push_back(std::make_unique<core::DynamoAgent>(
                shard.sim, shard.transport, *shard.servers.back(),
                "agent:" + std::to_string(i)));
            leaf_agents_[l].push_back(shard.agents.size() - 1);
        }

        // Size the breaker just above the domain's initial draw (the
        // bench fleet's rule) so the three-band policy works near its
        // thresholds and capping actually runs.
        Watts draw = 0.0;
        for (std::size_t k = leaf_first_server; k < shard.servers.size();
             ++k) {
            draw += shard.servers[k]->PowerAt(0);
        }
        const Watts rated = draw / 0.965;
        leaf_rated.push_back(rated);
        shard.devices.push_back(power::BuildRpp("rpp" + std::to_string(l),
                                                rated, /*quota=*/0.95 * rated));

        core::ControllerBuilder builder(shard.sim, shard.transport);
        builder.Endpoint("ctl:rpp:" + std::to_string(l))
            .ForDevice(*shard.devices.back())
            .Policy(config_.policy);
        for (std::size_t k = leaf_first_server; k < shard.servers.size();
             ++k) {
            const std::size_t i = first + (k - leaf_first_server);
            core::AgentInfo info;
            info.endpoint = shard.agents[k]->endpoint();
            info.service = shard.servers[k]->service();
            info.priority_group = static_cast<int>(i % 3);
            info.sla_min_cap = 70.0 + static_cast<double>(i % 3) * 15.0;
            builder.Agent(std::move(info));
        }
        shard.leaves.push_back(builder.BuildLeaf());
        shard.leaves.back()->AttachEpoch(&spec_epoch_);
        shard.leaves.back()->Activate(static_cast<SimTime>((l * 37) % 3000));
        leaf_targets_.push_back(shard.leaves.back()->endpoint_id());
    }

    BuildControlShard(leaf_rated);

    // --- Execution: shard-index order is the canonical merge order;
    // the control shard runs last in it.
    runners_.reserve(shards_.size() + 1);
    for (const auto& shard : shards_) runners_.push_back(shard.get());
    runners_.push_back(control_.get());
    pool_ = std::make_unique<sim::WorkerPool>(config_.threads);
    kernel_ = std::make_unique<sim::ParallelKernel>(
        *pool_, runners_, kShardWindowMs,
        [this](SimTime t) { Barrier(t); });

    if (config_.record_journal) {
        std::ostringstream spec;
        spec << "sharded-fleet v1\n"
             << "servers=" << plan_.n_servers << "\n"
             << "shards=" << plan_.shards.size() << "\n"
             << "seed=" << config_.seed << "\n"
             << "window_ms=" << kShardWindowMs << "\n";
        // Non-default only: committed sharded goldens predate the
        // policy lab and must keep their exact spec text.
        if (config_.policy != policy::PolicyKind::kThreeBand) {
            spec << "policy=" << policy::PolicyKindName(config_.policy)
                 << "\n";
        }
        if (config_.sensorless_fraction != 0.0) {
            spec << "sensorless_fraction=" << config_.sensorless_fraction
                 << "\n";
        }
        if (config_.gpu_fraction != 0.0) {
            spec << "gpu_fraction=" << config_.gpu_fraction << "\n";
        }
        journal_.spec_text = spec.str();
        journal_.scenario = config_.scenario;
        journal_.cycle_period = kShardWindowMs;
        journal_.checkpoint_every = config_.checkpoint_every;
    }
}

ShardedFleet::~ShardedFleet() = default;

void
ShardedFleet::BuildControlShard(const std::vector<Watts>& leaf_rated)
{
    // Per-leaf proxy endpoints stand in for the children; register
    // them before the uppers so the control transport's intern order
    // is leaf-major (fixed, therefore hash-stable).
    control_->proxies.resize(plan_.n_leaves);
    for (std::size_t l = 0; l < plan_.n_leaves; ++l) {
        ControlShard::LeafProxy& proxy = control_->proxies[l];
        proxy.endpoint = "ctl:rpp:" + std::to_string(l);
        control_->transport.Register(
            proxy.endpoint, [this, l](const rpc::Payload& request) {
                return ProxyHandle(l, request);
            });
    }

    sb_rated_.reserve(plan_.n_sbs);
    for (std::size_t s = 0; s < plan_.n_sbs; ++s) {
        const ShardPlan::Shard& shard = plan_.shards[s];
        Watts rated = 0.0;
        for (std::size_t l = shard.first_leaf; l < shard.last_leaf; ++l) {
            rated += leaf_rated[l];
        }
        rated *= 0.99;  // slightly oversubscribed, as real SBs are
        sb_rated_.push_back(rated);

        core::ControllerBuilder builder(control_->sim, control_->transport);
        builder.Endpoint("ctl:sb:" + std::to_string(s))
            .Limits(rated, /*quota=*/0.95 * rated)
            .Policy(config_.policy);
        for (std::size_t l = shard.first_leaf; l < shard.last_leaf; ++l) {
            builder.Child("ctl:rpp:" + std::to_string(l));
        }
        control_->uppers.push_back(builder.BuildUpper());
        control_->uppers.back()->AttachEpoch(&spec_epoch_);
        control_->uppers.back()->Activate(
            static_cast<SimTime>((s * 113) % 9000));
    }

    for (std::size_t m = 0; m < plan_.n_msbs; ++m) {
        const std::size_t first = m * kShardSbsPerMsb;
        const std::size_t last =
            std::min(first + kShardSbsPerMsb, plan_.n_sbs);
        Watts rated = 0.0;
        for (std::size_t s = first; s < last; ++s) rated += sb_rated_[s];
        rated *= 0.99;

        core::ControllerBuilder builder(control_->sim, control_->transport);
        builder.Endpoint("ctl:msb:" + std::to_string(m))
            .Limits(rated, /*quota=*/0.95 * rated)
            .Policy(config_.policy);
        for (std::size_t s = first; s < last; ++s) {
            builder.Child("ctl:sb:" + std::to_string(s));
        }
        control_->uppers.push_back(builder.BuildUpper());
        control_->uppers.back()->AttachEpoch(&spec_epoch_);
        control_->uppers.back()->Activate(
            static_cast<SimTime>((m * 199) % 9000));
    }
}

rpc::Payload
ShardedFleet::ProxyHandle(std::size_t global_leaf,
                          const rpc::Payload& request)
{
    ControlShard::LeafProxy& proxy = control_->proxies[global_leaf];
    if (std::any_cast<api::PowerReadRequest>(&request) != nullptr) {
        ++control_->reads_proxied;
        api::PowerReadResult result;
        result.source = proxy.endpoint;
        result.power = proxy.power;
        result.quota = proxy.quota;
        result.floor = proxy.floor;
        if (!proxy.valid) {
            result.status =
                api::Status::Unavailable("aggregation invalid");
        }
        return result;
    }
    if (std::any_cast<api::ContractUpdate>(&request) != nullptr) {
        // Accepted for forwarding: the ack means "queued", delivery
        // lands at the next barrier. The parent's punish-offender
        // protocol already tolerates a cycle of staleness, so the
        // extra window behaves like ordinary pull-cadence lag.
        ++control_->contracts_forwarded;
        shards_[plan_.shard_of_leaf(global_leaf)]->mailbox.Push(
            leaf_targets_[global_leaf], request);
        return api::CapResult{api::Status::Ok()};
    }
    if (std::any_cast<api::HealthProbe>(&request) != nullptr) {
        return api::HealthResult{api::Status::Ok()};
    }
    return api::CapResult{
        api::Status::Unimplemented("unknown proxy request")};
}

void
ShardedFleet::Barrier(SimTime barrier_time)
{
    using Clock = std::chrono::steady_clock;
    // Each call returns the seconds since the previous call (or since
    // barrier entry), so `profile_.x += clock()` closes stage x.
    auto clock = [t = Clock::now()]() mutable {
        const Clock::time_point now = Clock::now();
        const double s = std::chrono::duration<double>(now - t).count();
        t = now;
        return s;
    };

    // 1. Close the window's journal record first: hashes must cover
    //    exactly the window's events, and the mailbox drain below
    //    issues calls whose observer hits count toward the *next*
    //    window.
    if (config_.record_journal) RecordWindow(barrier_time);
    profile_.record_s += clock();

    // 2. Commit reconfiguration transactions scheduled for the window
    //    that just closed. Single-threaded, after the record and
    //    before the proxy refresh: the closed window hashed the old
    //    topology, the next one runs wholly on the new.
    if (!pending_reconfigs_.empty()) {
        auto it = pending_reconfigs_.begin();
        while (it != pending_reconfigs_.end()) {
            if (it->first == barriers_completed_) {
                ApplyReconfig(barrier_time, it->second);
                it = pending_reconfigs_.erase(it);
            } else {
                ++it;
            }
        }
    }
    // Scenario actions for the closed window run after reconfigs, in
    // schedule order, and are journaled as faults so the byte-compare
    // gate covers the scenario script too.
    if (!pending_actions_.empty()) {
        auto it = pending_actions_.begin();
        while (it != pending_actions_.end()) {
            if (it->window == barriers_completed_) {
                it->action();
                if (config_.record_journal) {
                    journal_.faults.push_back(
                        replay::FaultRecord{barrier_time, it->description});
                }
                it = pending_actions_.erase(it);
            } else {
                ++it;
            }
        }
    }
    ++barriers_completed_;
    profile_.reconfig_s += clock();

    // 3. Publish the staged leaf snapshots the uppers will read next
    //    window. The workers already captured and diffed their leaves
    //    inside the parallel region (StageLeafSnapshots), so the
    //    serial step is a copy of just the *changed* entries, walked
    //    in shard-index order (= global leaf order, since shards own
    //    contiguous leaf ranges). Decommissioned leaves keep their
    //    last snapshot but stay invalid — and parentless, so nothing
    //    reads them anyway.
    for (const auto& shard : shards_) {
        const std::size_t first = plan_.shards[shard->index].first_leaf;
        for (const std::uint32_t local : shard->dirty) {
            const std::size_t l = first + local;
            if (leaf_alive_[l] == 0) continue;
            const WorkerShard::LeafStage& stage = shard->published[local];
            ControlShard::LeafProxy& proxy = control_->proxies[l];
            proxy.power = stage.power;
            proxy.valid = stage.valid;
            proxy.quota = stage.quota;
            proxy.floor = stage.floor;
            ++profile_.proxy_leaves_published;
        }
        shard->dirty.clear();
    }
    profile_.proxy_publish_s += clock();

    // 4. Deliver queued contract updates, shard-index order outside,
    //    FIFO inside: each shard's drained queue becomes ONE batched
    //    transport delivery issued at the window boundary, so every
    //    message reaches its leaf (after one shared latency sample)
    //    early in window W+1. A crashed leaf drops its item at
    //    delivery; the parent re-issues every settled cycle.
    for (const auto& shard : shards_) {
        std::vector<rpc::ShardMessage> messages = shard->mailbox.Drain();
        if (messages.empty()) continue;
        mailbox_delivered_ += messages.size();
        profile_.mailbox_messages += messages.size();
        shard->transport.CallBatch(std::move(messages));
    }
    profile_.mailbox_drain_s += clock();

    // 5. Checkpoint last: it must capture the post-commit, post-drain
    //    state the next window starts from.
    if (config_.record_journal && config_.checkpoint_every > 0 &&
        windows_completed() % config_.checkpoint_every == 0) {
        RecordCheckpoint(barrier_time);
    }
    profile_.checkpoint_s += clock();
}

void
ShardedFleet::RecordWindow(SimTime barrier_time)
{
    // Merge per-shard window digests in shard-index order (control
    // last). Completion order of the worker threads never appears in
    // the journal.
    HashAccumulator rpc_merged;
    HashAccumulator kernel_merged;
    for (const auto& shard : shards_) {
        rpc_merged.Mix(shard->rpc_hash.value());
        kernel_merged.Mix(shard->kernel_hash.value());
        shard->rpc_hash.Reset();
        shard->kernel_hash.Reset();
    }
    rpc_merged.Mix(control_->rpc_hash.value());
    kernel_merged.Mix(control_->kernel_hash.value());
    control_->rpc_hash.Reset();
    control_->kernel_hash.Reset();

    replay::CycleRecord record;
    record.cycle = journal_.cycles.size();
    record.time = barrier_time;
    record.rpc_hash = rpc_merged.value();
    record.kernel_hash = kernel_merged.value();
    journal_.cycles.push_back(std::move(record));
}

void
ShardedFleet::RecordCheckpoint(SimTime barrier_time)
{
    Archive ar;
    ar.Str("sharded-fleet-checkpoint");
    ar.U64(spec_epoch_);
    ar.U64(shards_.size());

    // Fill one private archive per shard on the worker pool, then fold
    // them into the master archive in canonical order (shards by
    // index, control last). Archive::Append is byte- and digest-exact,
    // so the checkpoint is identical to the old serial sweep — only
    // the wall time is divided by the thread count.
    const std::size_t n = shards_.size();
    std::vector<Archive> parts(n + 1);
    const sim::WorkerPool::StageFn fill = [&](std::size_t i) {
        if (i < n) {
            shards_[i]->Snapshot(parts[i]);
        } else {
            control_->Snapshot(parts[n]);
        }
    };
    pool_->RunStage(fill, n + 1);
    for (const Archive& part : parts) ar.Append(part);

    replay::CheckpointRecord record;
    record.cycle = journal_.cycles.empty() ? 0 : journal_.cycles.size() - 1;
    record.time = barrier_time;
    record.digest = ar.digest();
    record.state = ar.bytes();
    journal_.checkpoints.push_back(std::move(record));
}

std::size_t
ShardedFleet::LeafIndex(const std::string& target) const
{
    std::size_t pos = 0;
    while (pos < target.size() && (target[pos] < '0' || target[pos] > '9')) {
        ++pos;
    }
    if (pos == target.size()) {
        throw std::invalid_argument("sharded reconfig: leaf target \"" +
                                    target + "\" has no index");
    }
    std::size_t l = 0;
    try {
        l = std::stoul(target.substr(pos));
    } catch (const std::out_of_range&) {
        // stoul throws out_of_range for an index too wide for unsigned
        // long; surface it as the same invalid-argument class every
        // other malformed target gets, with the offending string.
        throw std::invalid_argument("sharded reconfig: leaf target \"" +
                                    target + "\" index overflows");
    }
    if (l >= plan_.n_leaves) {
        throw std::invalid_argument("sharded reconfig: leaf index " +
                                    std::to_string(l) + " out of range (" +
                                    std::to_string(plan_.n_leaves) +
                                    " leaves)");
    }
    return l;
}

std::size_t
ShardedFleet::UpperIndex(const std::string& target) const
{
    std::size_t pos = 0;
    while (pos < target.size() && (target[pos] < '0' || target[pos] > '9')) {
        ++pos;
    }
    if (pos == target.size()) {
        throw std::invalid_argument("sharded reconfig: upper target \"" +
                                    target + "\" has no index");
    }
    std::size_t s = 0;
    try {
        s = std::stoul(target.substr(pos));
    } catch (const std::out_of_range&) {
        throw std::invalid_argument("sharded reconfig: upper target \"" +
                                    target + "\" index overflows");
    }
    if (s >= plan_.n_sbs) {
        throw std::invalid_argument("sharded reconfig: SB index " +
                                    std::to_string(s) + " out of range (" +
                                    std::to_string(plan_.n_sbs) + " SBs)");
    }
    return s;
}

void
ShardedFleet::ScheduleReconfig(std::uint64_t window, ReconfigTxn txn)
{
    if (txn.empty()) {
        throw std::invalid_argument("sharded reconfig: empty transaction");
    }
    if (window < barriers_completed_) {
        throw std::invalid_argument(
            "sharded reconfig: window " + std::to_string(window) +
            " already closed (" + std::to_string(barriers_completed_) +
            " barriers done)");
    }
    for (const ReconfigOp& op : txn.ops) {
        switch (op.kind) {
          case ReconfigOp::Kind::kAddServers:
            if (op.count == 0) {
                throw std::invalid_argument(
                    "sharded reconfig: add-servers(" + op.target +
                    ") with count 0");
            }
            LeafIndex(op.target);
            break;
          case ReconfigOp::Kind::kRemoveSubtree:
          case ReconfigOp::Kind::kRestartController:
            LeafIndex(op.target);
            break;
          case ReconfigOp::Kind::kReparent:
            LeafIndex(op.target);
            UpperIndex(op.new_parent);
            break;
          case ReconfigOp::Kind::kPromoteUpper:
            UpperIndex(op.target);
            break;
        }
    }
    pending_reconfigs_.emplace_back(window, std::move(txn));
}

void
ShardedFleet::ScheduleAction(std::uint64_t window, std::string description,
                             std::function<void()> action)
{
    if (window < barriers_completed_) {
        throw std::invalid_argument(
            "sharded action: window " + std::to_string(window) +
            " already closed (" + std::to_string(barriers_completed_) +
            " barriers done)");
    }
    pending_actions_.push_back(
        PendingAction{window, std::move(description), std::move(action)});
}

void
ShardedFleet::ForEachServer(const std::function<void(server::SimServer&)>& fn)
{
    for (const auto& shard : shards_) {
        for (const auto& server : shard->servers) fn(*server);
    }
}

void
ShardedFleet::ApplyReconfig(SimTime barrier_time, const ReconfigTxn& txn)
{
    ++spec_epoch_;
    for (const ReconfigOp& op : txn.ops) {
        switch (op.kind) {
          case ReconfigOp::Kind::kAddServers: ApplyAddServers(op); break;
          case ReconfigOp::Kind::kRemoveSubtree:
            ApplyRemoveSubtree(op);
            break;
          case ReconfigOp::Kind::kReparent: ApplyReparent(op); break;
          case ReconfigOp::Kind::kRestartController:
            ApplyRestartController(op);
            break;
          case ReconfigOp::Kind::kPromoteUpper: ApplyPromoteUpper(op); break;
        }
    }
    ++reconfigs_applied_;
    if (config_.record_journal) {
        journal_.reconfigs.push_back(
            replay::ReconfigRecord{spec_epoch_, barrier_time, txn.Describe()});
    }
}

void
ShardedFleet::ApplyAddServers(const ReconfigOp& op)
{
    const std::size_t l = LeafIndex(op.target);
    if (leaf_alive_[l] == 0) {
        throw std::runtime_error("sharded reconfig: add-servers target \"" +
                                 op.target + "\" was decommissioned");
    }
    WorkerShard& shard = *shards_[plan_.shard_of_leaf(l)];
    core::LeafController& lf = leaf(l);

    // Epoch-keyed RNG: provisioning draws never perturb the boot-time
    // sequence, and repeated expansions stay distinct.
    Rng rng(config_.seed ^ (0x9e3779b97f4a7c15ULL * spec_epoch_));
    const workload::ServiceType services[] = {
        workload::ServiceType::kWeb, workload::ServiceType::kCache,
        workload::ServiceType::kHadoop, workload::ServiceType::kDatabase};

    for (std::size_t i = 0; i < op.count; ++i) {
        const std::string name = "srv:" + op.target + ":e" +
                                 std::to_string(spec_epoch_) + "s" +
                                 std::to_string(i);
        server::SimServer::Config server_config;
        server_config.name = name;
        server_config.service = services[i % 4];
        server_config.generation =
            (i % 10 < 7) ? server::ServerGeneration::kHaswell2015
                         : server::ServerGeneration::kWestmere2011;
        if (config_.gpu_fraction > 0.0 &&
            rng.Bernoulli(config_.gpu_fraction)) {
            server_config.generation = server::ServerGeneration::kGpuTrain2024;
        }
        if (config_.sensorless_fraction > 0.0) {
            server_config.has_sensor =
                !rng.Bernoulli(config_.sensorless_fraction);
        }
        server_config.seed = rng.NextU64();
        workload::LoadProcessParams params =
            workload::LoadProcessParams::For(server_config.service);
        params.base_util = rng.Uniform(0.35, 0.75);
        params.spike_rate_per_hour = 0.0;
        shard.servers.push_back(std::make_unique<server::SimServer>(
            std::move(server_config), params));
        shard.agents.push_back(std::make_unique<core::DynamoAgent>(
            shard.sim, shard.transport, *shard.servers.back(),
            "agent:" + name));
        leaf_agents_[l].push_back(shard.agents.size() - 1);

        core::AgentInfo info;
        info.endpoint = shard.agents.back()->endpoint();
        info.service = services[i % 4];
        info.priority_group = static_cast<int>(i % 3);
        info.sla_min_cap = 70.0 + static_cast<double>(i % 3) * 15.0;
        lf.AddAgent(std::move(info));
    }
}

void
ShardedFleet::ApplyRemoveSubtree(const ReconfigOp& op)
{
    const std::size_t l = LeafIndex(op.target);
    if (leaf_alive_[l] == 0) {
        throw std::runtime_error("sharded reconfig: \"" + op.target +
                                 "\" was already decommissioned");
    }
    leaf_alive_[l] = 0;

    // Parent drops the child before teardown, so no poll or contract
    // routes to the proxy while it disappears.
    control_->uppers[leaf_parent_[l]]->RemoveChild(
        control_->proxies[l].endpoint);
    control_->transport.Deregister(control_->proxies[l].endpoint);
    control_->proxies[l].valid = false;

    leaf(l).Deactivate();
    WorkerShard& shard = *shards_[plan_.shard_of_leaf(l)];
    for (const std::size_t idx : leaf_agents_[l]) {
        shard.agents[idx]->Crash();
    }
    leaf_agents_[l].clear();
    // Server and agent objects stay, dormant: their snapshot bytes are
    // part of the checkpoint, and dropping them would make the state
    // layout depend on reconfiguration history in fragile ways.
}

void
ShardedFleet::ApplyReparent(const ReconfigOp& op)
{
    const std::size_t l = LeafIndex(op.target);
    const std::size_t s = UpperIndex(op.new_parent);
    if (leaf_alive_[l] == 0) {
        throw std::runtime_error("sharded reconfig: reparent target \"" +
                                 op.target + "\" was decommissioned");
    }
    if (leaf_parent_[l] == s) {
        throw std::runtime_error("sharded reconfig: \"" + op.target +
                                 "\" is already fed from \"" + op.new_parent +
                                 "\"");
    }
    // Roster-only: the leaf's shard placement never changes (the proxy
    // is the only cross-shard edge), so re-homing is two roster edits.
    // The leaf keeps its standing contract; the new parent discovers
    // it through the adoption path on its next read.
    control_->uppers[leaf_parent_[l]]->RemoveChild(
        control_->proxies[l].endpoint);
    control_->uppers[s]->AddChild(control_->proxies[l].endpoint);
    leaf_parent_[l] = s;
}

void
ShardedFleet::ApplyRestartController(const ReconfigOp& op)
{
    const std::size_t l = LeafIndex(op.target);
    if (leaf_alive_[l] == 0) {
        throw std::runtime_error("sharded reconfig: restart target \"" +
                                 op.target + "\" was decommissioned");
    }
    // Planned rolling restart: in-place bounce with the build-time
    // phase. Object state — including the contractual limit — survives,
    // mirroring the serial engine's warm swap (no uncap glitch).
    core::LeafController& lf = leaf(l);
    lf.Deactivate();
    lf.Activate(static_cast<SimTime>((l * 37) % 3000));
}

void
ShardedFleet::ApplyPromoteUpper(const ReconfigOp& op)
{
    const std::size_t s = UpperIndex(op.target);

    // Kill the SB and promote a contract-blank replacement on the same
    // endpoint (same interned id, so the MSB's roster is untouched).
    // The replacement re-learns child contracts via reaffirmation and
    // the adoption path — the sharded analogue of backup promotion.
    control_->uppers[s]->Deactivate();

    core::ControllerBuilder builder(control_->sim, control_->transport);
    builder.Endpoint("ctl:sb:" + std::to_string(s))
        .Limits(sb_rated_[s], /*quota=*/0.95 * sb_rated_[s])
        .Policy(config_.policy);
    for (std::size_t l = 0; l < plan_.n_leaves; ++l) {
        if (leaf_alive_[l] != 0 && leaf_parent_[l] == s) {
            builder.Child(control_->proxies[l].endpoint);
        }
    }
    control_->uppers[s] = builder.BuildUpper();
    control_->uppers[s]->AttachEpoch(&spec_epoch_);
    control_->uppers[s]->Activate(static_cast<SimTime>((s * 113) % 9000));
}

void
ShardedFleet::RunWindows(std::uint64_t n)
{
    kernel_->RunWindows(n);
}

void
ShardedFleet::RunFor(SimTime duration_ms)
{
    kernel_->RunFor(duration_ms);
}

SimTime
ShardedFleet::Now() const
{
    return kernel_->Now();
}

std::size_t
ShardedFleet::thread_count() const
{
    return pool_->thread_count();
}

std::uint64_t
ShardedFleet::windows_completed() const
{
    return kernel_->windows_completed();
}

std::uint64_t
ShardedFleet::events_executed() const
{
    std::uint64_t total = control_->sim.events_executed();
    for (const auto& shard : shards_) total += shard->sim.events_executed();
    return total;
}

std::uint64_t
ShardedFleet::reads_proxied() const
{
    return control_->reads_proxied;
}

std::uint64_t
ShardedFleet::contracts_forwarded() const
{
    return control_->contracts_forwarded;
}

std::uint64_t
ShardedFleet::mailbox_delivered() const
{
    return mailbox_delivered_;
}

BarrierProfile
ShardedFleet::barrier_profile() const
{
    BarrierProfile profile = profile_;
    profile.window_run_s = kernel_->window_wall_s();
    profile.barrier_total_s = kernel_->barrier_wall_s();
    profile.windows = kernel_->windows_completed();
    return profile;
}

void
ShardedFleet::PublishBarrierProfile(telemetry::MetricsRegistry* registry) const
{
    if (registry == nullptr) return;
    const BarrierProfile p = barrier_profile();
    registry->GetGauge("barrier.window_run_s")->Set(p.window_run_s);
    registry->GetGauge("barrier.record_s")->Set(p.record_s);
    registry->GetGauge("barrier.reconfig_s")->Set(p.reconfig_s);
    registry->GetGauge("barrier.proxy_publish_s")->Set(p.proxy_publish_s);
    registry->GetGauge("barrier.mailbox_drain_s")->Set(p.mailbox_drain_s);
    registry->GetGauge("barrier.checkpoint_s")->Set(p.checkpoint_s);
    registry->GetGauge("barrier.total_s")->Set(p.barrier_total_s);
    registry->GetGauge("barrier.serial_share")->Set(p.serial_share());
    // Counters are cumulative; publish-once semantics match the gauges
    // (call after the run, not per window).
    registry->GetCounter("barrier.windows")->Inc(p.windows);
    registry->GetCounter("barrier.proxy_leaves_published")
        ->Inc(p.proxy_leaves_published);
    registry->GetCounter("barrier.mailbox_messages")
        ->Inc(p.mailbox_messages);
}

void
ShardedFleet::InjectContract(std::size_t global_leaf,
                             std::optional<Watts> limit)
{
    control_->transport.Call(
        control_->proxies[global_leaf].endpoint,
        api::ContractUpdate{limit, /*span_id=*/0},
        [](const rpc::Payload&) {}, [](const std::string&) {});
}

core::LeafController&
ShardedFleet::leaf(std::size_t global_leaf)
{
    WorkerShard& shard = *shards_[plan_.shard_of_leaf(global_leaf)];
    return *shard.leaves[global_leaf - plan_.shards[shard.index].first_leaf];
}

core::UpperController&
ShardedFleet::sb(std::size_t index)
{
    return *control_->uppers[index];
}

std::size_t
ShardedFleet::mailbox_pending(std::size_t shard) const
{
    return shards_[shard]->mailbox.pending();
}

}  // namespace dynamo::fleet
