/**
 * @file
 * Sharded parallel fleet: the Dynamo control plane partitioned by
 * leaf-controller subtree and executed on a worker pool.
 *
 * Partitioning follows the power topology, which is also the RPC
 * topology: agents talk only to their leaf controller, and a leaf
 * talks only to its SB parent. Each SB subtree (its leaves, their
 * agents, their servers) therefore forms a closed RPC domain and
 * becomes one *worker shard* — a fully private Simulation, transport,
 * server population, and leaf-controller set. The SB and MSB upper
 * controllers run unmodified on a separate *control shard*; they can't
 * tell they're in a sharded world because the control transport serves
 * their children through per-leaf proxy endpoints.
 *
 * Cross-shard traffic exists only at the upper↔leaf edge and flows
 * through the barrier:
 *
 *   - upper → leaf power reads are answered instantly by the proxy
 *     from a per-leaf state snapshot refreshed at every barrier
 *     (power, validity, quota, floor — exactly the fields a real leaf
 *     serves its parent);
 *   - upper → leaf contract updates are enqueued into the target
 *     shard's mailbox and re-issued on that shard's transport at the
 *     barrier, so a contract decided in window W reaches its leaf in
 *     window W+1 regardless of shard placement.
 *
 * The barrier fires every 9 s of sim time — the upper-controller
 * cycle — so the one-window visibility lag is exactly one upper
 * decision, matching the staleness a real deployment already absorbs
 * from its pull cadence.
 *
 * Determinism: the shard count and every seed derive from the config
 * (never from the thread count), shards share nothing during windows,
 * and all barrier work runs single-threaded in shard-index order.
 * Thread count is therefore pure scheduling; the DYNJRNL1 journal a
 * run emits is byte-identical for any `threads` value, which the CI
 * determinism gate enforces. See DESIGN.md §10.
 */
#ifndef DYNAMO_FLEET_SHARDING_H_
#define DYNAMO_FLEET_SHARDING_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/units.h"
#include "core/agent.h"
#include "core/leaf_controller.h"
#include "core/upper_controller.h"
#include "fleet/reconfig.h"
#include "power/device.h"
#include "replay/journal.h"
#include "rpc/mailbox.h"
#include "rpc/transport.h"
#include "server/sim_server.h"
#include "sim/parallel_kernel.h"
#include "sim/simulation.h"

namespace dynamo::telemetry {
class MetricsRegistry;
}  // namespace dynamo::telemetry

namespace dynamo::fleet {

/** Fan-out constants of the synthetic scale fleet (bench topology). */
inline constexpr std::size_t kShardServersPerLeaf = 240;
inline constexpr std::size_t kShardLeavesPerSb = 8;
inline constexpr std::size_t kShardSbsPerMsb = 4;

/** Barrier period: the upper-controller pull cycle, ms. */
inline constexpr SimTime kShardWindowMs = 9000;

/**
 * The partition: one worker shard per SB subtree. Derived purely from
 * the fleet size, so every thread count runs the identical plan.
 */
struct ShardPlan
{
    struct Shard
    {
        /** Global leaf indices owned by this shard: [first, last). */
        std::size_t first_leaf = 0;
        std::size_t last_leaf = 0;
    };

    std::size_t n_servers = 0;
    std::size_t n_leaves = 0;
    std::size_t n_sbs = 0;
    std::size_t n_msbs = 0;

    /** Worker shards in canonical order (shards[i] is SB i's subtree). */
    std::vector<Shard> shards;

    static ShardPlan For(std::size_t n_servers);

    std::size_t shard_of_leaf(std::size_t leaf) const
    {
        return leaf / kShardLeavesPerSb;
    }
};

/**
 * Per-stage wall-clock accounting of the barrier pipeline, accumulated
 * across every window of a run. This is the instrument the multicore
 * work is judged with: Amdahl's law says the serial barrier bounds
 * speedup, so the profile splits the barrier into its stages and
 * reports the serial share directly. Stage times are measured inside
 * Barrier(); the parallel window time and the barrier envelope come
 * from the kernel's own clocks, so `barrier_total_s` can slightly
 * exceed the sum of the stages (loop overhead is real time too).
 */
struct BarrierProfile
{
    /** Wall time inside the parallel window region (all shards). */
    double window_run_s = 0.0;

    /** Stage: per-shard digest merge + journal cycle record. */
    double record_s = 0.0;

    /** Stage: reconfiguration transaction commits. */
    double reconfig_s = 0.0;

    /** Stage: publishing dirty staged leaf snapshots to the proxies. */
    double proxy_publish_s = 0.0;

    /** Stage: batched mailbox re-issue onto worker transports. */
    double mailbox_drain_s = 0.0;

    /** Stage: checkpoint snapshot (parallel fill + ordered merge). */
    double checkpoint_s = 0.0;

    /** Whole barrier hook envelope (≥ sum of the stages). */
    double barrier_total_s = 0.0;

    std::uint64_t windows = 0;

    /** Dirty leaf snapshots actually copied to proxies (not n_leaves
     *  × windows: the staged refresh only publishes changes). */
    std::uint64_t proxy_leaves_published = 0;

    /** Mailbox messages re-issued across all barriers. */
    std::uint64_t mailbox_messages = 0;

    /** Serial fraction: barrier time over total run time, the `s` in
     *  Amdahl's 1/(s + (1-s)/N). Zero before any window completes. */
    double serial_share() const
    {
        const double total = window_run_s + barrier_total_s;
        return total > 0.0 ? barrier_total_s / total : 0.0;
    }
};

struct ShardedFleetConfig
{
    std::size_t n_servers = 1000;

    /** Worker pool size; affects wall time only, never results. */
    std::size_t threads = 1;

    std::uint64_t seed = 1234;

    /**
     * Fraction of servers without a power sensor. Default 0 draws
     * nothing from the construction RNG, so pre-catalog seeds keep
     * their exact per-server streams.
     */
    double sensorless_fraction = 0.0;

    /** Fraction of kGpuTrain2024 training nodes; same default-0 rule. */
    double gpu_fraction = 0.0;

    /** Record a DYNJRNL1 journal of the run (see journal()). */
    bool record_journal = false;

    /** Windows per journal checkpoint; 0 disables checkpoints. */
    std::uint64_t checkpoint_every = 0;

    /** Scenario label stamped into the journal header. */
    std::string scenario = "sharded-scale";

    /**
     * Capping brain for every controller (leaves and uppers alike),
     * stamped into the journal spec text when non-default so replay
     * artifacts are attributable to the brain that produced them.
     */
    policy::PolicyKind policy = policy::PolicyKind::kThreeBand;
};

/**
 * A sharded, parallel instantiation of the scale fleet: servers,
 * agents, leaf controllers on worker shards; SB/MSB uppers on the
 * control shard; barrier-synchronized execution on a fixed-size pool.
 */
class ShardedFleet
{
  public:
    explicit ShardedFleet(ShardedFleetConfig config);
    ~ShardedFleet();

    ShardedFleet(const ShardedFleet&) = delete;
    ShardedFleet& operator=(const ShardedFleet&) = delete;

    /** Run exactly `n` window+barrier rounds. */
    void RunWindows(std::uint64_t n);

    /** Run whole windows covering at least `duration_ms` (rounded up). */
    void RunFor(SimTime duration_ms);

    /** Common sim time across every shard (advances in 9 s steps). */
    SimTime Now() const;

    const ShardPlan& plan() const { return plan_; }
    std::size_t shard_count() const { return plan_.shards.size(); }
    std::size_t thread_count() const;
    std::uint64_t windows_completed() const;

    /** Events executed, summed over every shard kernel. */
    std::uint64_t events_executed() const;

    /** Upper→leaf power reads answered by barrier-snapshot proxies. */
    std::uint64_t reads_proxied() const;

    /** Contract updates accepted by proxies for cross-shard delivery. */
    std::uint64_t contracts_forwarded() const;

    /** Mailbox messages re-issued on worker transports at barriers. */
    std::uint64_t mailbox_delivered() const;

    /**
     * Per-stage barrier timing for the run so far. The window/envelope
     * clocks live in the kernel; stage clocks accumulate in Barrier().
     * Cheap to call (copies a small struct).
     */
    BarrierProfile barrier_profile() const;

    /**
     * Export the profile as gauges (`barrier.window_run_s`,
     * `barrier.record_s`, `barrier.reconfig_s`,
     * `barrier.proxy_publish_s`, `barrier.mailbox_drain_s`,
     * `barrier.checkpoint_s`, `barrier.total_s`,
     * `barrier.serial_share`) plus counters
     * (`barrier.windows`, `barrier.proxy_leaves_published`,
     * `barrier.mailbox_messages`). Call after a run; gauges hold the
     * cumulative values at call time.
     */
    void PublishBarrierProfile(telemetry::MetricsRegistry* registry) const;

    /**
     * The recorded journal (header is valid from construction; cycle
     * records accrue per window). Only meaningful with record_journal.
     */
    const replay::Journal& journal() const { return journal_; }

    /**
     * Schedule a reconfiguration transaction to commit at the barrier
     * that closes window `window` (0-based). Commits run
     * single-threaded between the window's journal record and the
     * proxy refresh, so window W hashes pre-mutation state and window
     * W+1 runs wholly post-mutation — the schedule, not the thread
     * count, decides what every journal byte contains.
     *
     * Targets name the synthetic topology: leaves as "rpp<N>" (global
     * leaf index), uppers as "sb<N>" (SB index). Semantics per op:
     * add-servers grows a leaf's shard in place; remove-subtree
     * deactivates the leaf, crashes its agents, and drops it from its
     * SB's roster (server objects stay dormant so snapshots remain
     * thread-count independent); reparent re-homes a leaf's proxy onto
     * another SB (shard placement is unchanged — the control roster is
     * the only cross-shard edge); restart-controller bounces a leaf in
     * place; promote-upper rebuilds an SB contract-blank on the same
     * endpoint, which then re-learns child contracts via
     * reaffirmation/adoption exactly like a promoted backup.
     *
     * Throws std::invalid_argument for malformed transactions or
     * already-closed windows; structural conflicts with earlier
     * pending transactions surface as std::runtime_error at commit.
     */
    void ScheduleReconfig(std::uint64_t window, ReconfigTxn txn);

    /**
     * Schedule an arbitrary fleet mutation (a scenario step) to run at
     * the barrier that closes window `window`, after any reconfig
     * commits. Actions run single-threaded while every worker is idle,
     * in (window, schedule) order, so the schedule — never the thread
     * count — decides what state the next window starts from. Each
     * executed action is journaled as a fault record under
     * `description`, giving the 1t-vs-N-t byte-compare gate coverage
     * of the scenario script itself. Throws std::invalid_argument for
     * an already-closed window.
     */
    void ScheduleAction(std::uint64_t window, std::string description,
                        std::function<void()> action);

    /**
     * Visit every server, shard-index order outside and construction
     * order inside — the canonical deterministic order. Call only
     * between windows (typically from a ScheduleAction body).
     */
    void ForEachServer(const std::function<void(server::SimServer&)>& fn);

    /** Spec epoch: bumped once per committed transaction, from 0. */
    std::uint64_t spec_epoch() const { return spec_epoch_; }

    std::uint64_t reconfigs_applied() const { return reconfigs_applied_; }

    /** False once the leaf has been decommissioned. */
    bool leaf_alive(std::size_t global_leaf) const
    {
        return leaf_alive_[global_leaf] != 0;
    }

    /**
     * Test hook: issue a contract update to one leaf exactly the way
     * a parent controller would — a call on the control transport to
     * the leaf's proxy endpoint. Call only between windows (the
     * barrier protocol owns the shards while a window runs). An empty
     * `limit` lifts the contract.
     */
    void InjectContract(std::size_t global_leaf, std::optional<Watts> limit);

    /** Test access: leaf controller by global leaf index. */
    core::LeafController& leaf(std::size_t global_leaf);

    /** Test access: SB upper controller by SB index. */
    core::UpperController& sb(std::size_t index);

    /** Test access: pending mailbox messages for one worker shard. */
    std::size_t mailbox_pending(std::size_t shard) const;

  private:
    struct WorkerShard;
    struct ControlShard;

    void BuildWorkerShards();
    void BuildControlShard(const std::vector<Watts>& leaf_rated);

    /** Proxy handler body for leaf `global_leaf` on the control shard. */
    rpc::Payload ProxyHandle(std::size_t global_leaf,
                             const rpc::Payload& request);

    /** The single-threaded cross-shard step after every window. */
    void Barrier(SimTime barrier_time);

    void RecordWindow(SimTime barrier_time);
    void RecordCheckpoint(SimTime barrier_time);

    void ApplyReconfig(SimTime barrier_time, const ReconfigTxn& txn);
    void ApplyAddServers(const ReconfigOp& op);
    void ApplyRemoveSubtree(const ReconfigOp& op);
    void ApplyReparent(const ReconfigOp& op);
    void ApplyRestartController(const ReconfigOp& op);
    void ApplyPromoteUpper(const ReconfigOp& op);

    /** Global leaf index from an "rpp<N>" target; validates range. */
    std::size_t LeafIndex(const std::string& target) const;

    /** SB index from an "sb<N>" target; validates range. */
    std::size_t UpperIndex(const std::string& target) const;

    ShardedFleetConfig config_;
    ShardPlan plan_;

    /**
     * Mailbox target per global leaf: the leaf's endpoint id interned
     * in its *own shard's* transport. Precomputed so the proxy (which
     * runs while worker shards execute) never reads shard objects.
     */
    std::vector<rpc::EndpointId> leaf_targets_;

    std::vector<std::unique_ptr<WorkerShard>> shards_;
    std::unique_ptr<ControlShard> control_;

    std::unique_ptr<sim::WorkerPool> pool_;
    std::vector<sim::ShardRunner*> runners_;
    std::unique_ptr<sim::ParallelKernel> kernel_;

    replay::Journal journal_;
    std::uint64_t mailbox_delivered_ = 0;

    /** Stage clocks and counters filled by Barrier(); the accessor
     *  overlays the kernel's window/envelope clocks on a copy. */
    BarrierProfile profile_;

    /**
     * Elasticity state. The epoch variable is written only inside the
     * barrier (workers idle) and read by controllers mid-window, so it
     * needs no synchronization beyond the barrier itself.
     */
    std::uint64_t spec_epoch_ = 0;
    std::uint64_t reconfigs_applied_ = 0;
    std::uint64_t barriers_completed_ = 0;
    std::vector<std::pair<std::uint64_t, ReconfigTxn>> pending_reconfigs_;

    /** Scenario steps awaiting their window's barrier. */
    struct PendingAction
    {
        std::uint64_t window;
        std::string description;
        std::function<void()> action;
    };
    std::vector<PendingAction> pending_actions_;

    /** 1 while the leaf is in service; 0 after remove-subtree. */
    std::vector<std::uint8_t> leaf_alive_;

    /** Current SB parent per global leaf (reparent moves it). */
    std::vector<std::size_t> leaf_parent_;

    /** Shard-local agent indices per global leaf (grown by add-servers). */
    std::vector<std::vector<std::size_t>> leaf_agents_;

    /** SB rated power, kept for rebuilding a promoted upper. */
    std::vector<Watts> sb_rated_;
};

}  // namespace dynamo::fleet

#endif  // DYNAMO_FLEET_SHARDING_H_
