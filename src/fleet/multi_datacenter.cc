#include "fleet/multi_datacenter.h"

#include <algorithm>

#include "fleet/scenarios.h"

namespace dynamo::fleet {

MultiDatacenter::MultiDatacenter(Config config) : config_(std::move(config))
{
    for (std::size_t i = 0; i < config_.sites; ++i) {
        FleetSpec spec = config_.site_spec;
        spec.seed = config_.site_spec.seed + i * 0x9e37ULL;
        sites_.push_back(std::make_unique<Fleet>(std::move(spec)));
    }
}

void
MultiDatacenter::ScriptGlobalSurge(SimTime start, SimTime ramp, SimTime hold,
                                   double factor)
{
    for (const auto& site : sites_) {
        ScriptLoadTest(&site->scenario(), start, ramp, hold, factor);
    }
}

double
MultiDatacenter::SiteAliveFraction(Fleet& site)
{
    if (!site.root().IsEnergized()) return 0.0;
    std::size_t alive = 0;
    for (const auto& srv : site.servers()) {
        if (!srv->dark()) ++alive;
    }
    return static_cast<double>(alive) /
           static_cast<double>(site.servers().size());
}

void
MultiDatacenter::Rebalance()
{
    // Each site nominally serves 1 unit of demand; the balancer
    // reapportions the total in proportion to surviving capacity.
    std::vector<double> alive(sites_.size());
    double alive_total = 0.0;
    for (std::size_t i = 0; i < sites_.size(); ++i) {
        alive[i] = SiteAliveFraction(*sites_[i]);
        alive_total += alive[i];
    }
    const double demand = static_cast<double>(sites_.size());
    for (std::size_t i = 0; i < sites_.size(); ++i) {
        double share;
        if (alive_total <= 0.0) {
            share = 0.0;  // everything is dark; nowhere to send traffic
        } else {
            share = demand * alive[i] / alive_total;
        }
        // A site cannot usefully absorb unbounded spillover; real
        // balancers shed load beyond ~2x capacity.
        sites_[i]->set_global_traffic_factor(std::min(share, 2.0));
    }
}

void
MultiDatacenter::RunFor(SimTime duration)
{
    SimTime remaining = duration;
    while (remaining > 0) {
        const SimTime slice = std::min(remaining, config_.rebalance_period);
        for (const auto& site : sites_) site->RunFor(slice);
        Rebalance();
        remaining -= slice;
    }
}

std::size_t
MultiDatacenter::TotalOutages() const
{
    std::size_t total = 0;
    for (const auto& site : sites_) total += site->outage_count();
    return total;
}

double
MultiDatacenter::AliveFraction() const
{
    double sum = 0.0;
    for (const auto& site : sites_) sum += SiteAliveFraction(*site);
    return sum / static_cast<double>(sites_.size());
}

std::size_t
MultiDatacenter::DarkSites() const
{
    std::size_t dark = 0;
    for (const auto& site : sites_) {
        if (!site->root().IsEnergized()) ++dark;
    }
    return dark;
}

double
MultiDatacenter::MaxSiteTrafficFactor() const
{
    double max_factor = 0.0;
    for (const auto& site : sites_) {
        max_factor = std::max(max_factor, site->global_traffic_factor());
    }
    return max_factor;
}

}  // namespace dynamo::fleet
