/**
 * @file
 * Catalog scenarios mapped onto the sharded parallel fleet.
 *
 * The single-fleet scenario bodies script faults through the chaos
 * campaign engine; the sharded world has no campaign engine, but it
 * has the same lever set (controller physical limits, server load
 * knobs, estimator bias) plus ScheduleAction — barrier-synchronized
 * mutations that are journaled and therefore covered by the
 * thread-count byte-identity gate. This translation applies a parsed
 * catalog scenario to a ShardedFleet by scheduling the equivalent
 * steps on window boundaries (9 s granularity instead of the
 * campaign's millisecond clock; everything else is the same script).
 *
 * Only the fleet-state scenarios translate: RPC fault injection
 * (partitions, flaps, latency storms) has no sharded analog because
 * the upper↔leaf edge is already a barrier-mediated proxy.
 */
#ifndef DYNAMO_FLEET_SHARDED_SCENARIOS_H_
#define DYNAMO_FLEET_SHARDED_SCENARIOS_H_

#include "fleet/sharding.h"
#include "replay/scenario.h"

namespace dynamo::fleet {

/**
 * Schedule the sharded translation of `spec` onto `fleet`. Returns
 * true if the scenario has a sharded analog (grid-dr,
 * thermal-emergency, gpu-surge, estimator-drift, qos-downgrade;
 * "quiet" is a true no-op); false — scheduling nothing — for the
 * RPC-fault scenarios that only exist in the single-fleet world.
 * Call before the first window runs.
 */
bool ApplyShardedScenario(ShardedFleet& fleet,
                          const replay::ScenarioSpec& spec);

}  // namespace dynamo::fleet

#endif  // DYNAMO_FLEET_SHARDED_SCENARIOS_H_
