/**
 * @file
 * End-to-end fleet harness.
 *
 * Builds a complete simulated data-center slice from a declarative
 * spec: the power-delivery tree, servers with per-service workloads on
 * a shared traffic model (diurnal curve × scriptable scenario curve),
 * top-of-rack switches as non-cappable loads, breaker integration, and
 * (optionally) the full Dynamo control plane. This is the object the
 * experiments and examples drive.
 */
#ifndef DYNAMO_FLEET_FLEET_H_
#define DYNAMO_FLEET_FLEET_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <functional>

#include "common/rng.h"
#include "core/deployment.h"
#include "core/load_shed.h"
#include "fleet/reconfig.h"
#include "power/breaker_monitor.h"
#include "power/breaker_telemetry.h"
#include "power/device.h"
#include "power/topology.h"
#include "rpc/transport.h"
#include "server/sim_server.h"
#include "sim/simulation.h"
#include "workload/service.h"
#include "workload/traffic.h"

namespace dynamo::fleet {

/** Proportions of services across a fleet's servers. */
struct ServiceMix
{
    struct Share
    {
        workload::ServiceType service;
        double weight;
    };

    std::vector<Share> shares;

    /** Every server runs `service`. */
    static ServiceMix Single(workload::ServiceType service)
    {
        return ServiceMix{{{service, 1.0}}};
    }

    /** The paper's front-end row: web + cache + feed (Fig. 15 ratios). */
    static ServiceMix FrontEndRow()
    {
        return ServiceMix{{{workload::ServiceType::kWeb, 200.0},
                           {workload::ServiceType::kCache, 200.0},
                           {workload::ServiceType::kNewsfeed, 40.0}}};
    }

    /** A varied data-center mix over all six services. */
    static ServiceMix Datacenter()
    {
        return ServiceMix{{{workload::ServiceType::kWeb, 0.30},
                           {workload::ServiceType::kCache, 0.15},
                           {workload::ServiceType::kHadoop, 0.20},
                           {workload::ServiceType::kDatabase, 0.10},
                           {workload::ServiceType::kNewsfeed, 0.10},
                           {workload::ServiceType::kF4Storage, 0.15}}};
    }
};

/**
 * Deterministic service assignment for `n` servers: contiguous blocks
 * proportional to the mix weights, in mix order. Shared by Fleet and
 * the deployment daemons (which must derive byte-identical rosters
 * from the same spec).
 */
std::vector<workload::ServiceType> AssignServices(const ServiceMix& mix,
                                                  std::size_t n);

/** How much of the hierarchy to instantiate. */
enum class FleetScope { kRpp, kSb, kMsb };

/** Declarative description of a simulated fleet. */
struct FleetSpec
{
    FleetScope scope = FleetScope::kSb;

    /** Device shape/ratings (rpps-per-SB etc. read from here). */
    power::TopologySpec topology;

    /** Servers attached to each RPP (leaf domain size). */
    std::size_t servers_per_rpp = 240;

    ServiceMix mix = ServiceMix::Datacenter();

    /** Fraction of 2015-generation (Haswell) servers; rest are 2011. */
    double haswell_fraction = 0.7;

    /** Fraction of servers without a power sensor (agent estimates). */
    double sensorless_fraction = 0.02;

    /**
     * Fraction of GPU training nodes (kGpuTrain2024). Drawn before the
     * CPU-generation split; 0 (the default) draws nothing, so existing
     * seeds keep their exact RNG streams.
     */
    double gpu_fraction = 0.0;

    /** Turbo Boost enabled fleet-wide (Section IV-B experiments). */
    bool turbo_enabled = false;

    /** Optional per-server power-spec override (custom SKU). */
    std::optional<server::ServerPowerSpec> spec_override;

    /** Non-cappable switch power attached to each RPP. */
    Watts tor_switch_power = 300.0;

    /** Diurnal traffic amplitude (0 disables the diurnal component). */
    double diurnal_amplitude = 0.25;

    std::uint64_t seed = 42;

    /** Build the Dynamo control plane (false = uncontrolled baseline). */
    bool with_dynamo = true;

    /**
     * Attach coarse breaker telemetry to every leaf controller so
     * aggregations are validated and sensorless servers' estimation
     * models are dynamically tuned (Section VI lessons).
     */
    bool with_breaker_validation = false;

    /**
     * Wire a traffic shedder to every leaf controller: when capping
     * bottoms out at the SLA floors, the controller drains part of its
     * domain's traffic instead of letting the breaker trip.
     */
    bool with_load_shedding = false;

    core::DeploymentConfig deployment;

    SimTime breaker_monitor_period = 1000;

    /**
     * Default replay scenario for this spec, as a scenario-spec string
     * ("grid-dr(drop_frac=0.2)"). The fleet itself never reads it —
     * replay-layer tools (replay_cli, benches) resolve it against the
     * scenario catalog; the parser only validates the structure.
     * Empty = no default (tools fall back to their own).
     */
    std::string scenario;
};

/** The instantiated fleet; owns everything it builds. */
class Fleet
{
  public:
    explicit Fleet(FleetSpec spec);

    Fleet(const Fleet&) = delete;
    Fleet& operator=(const Fleet&) = delete;

    sim::Simulation& sim() { return sim_; }
    rpc::SimTransport& transport() { return transport_; }
    power::PowerDevice& root() { return *root_; }
    power::BreakerMonitor& breaker_monitor() { return *monitor_; }

    /** Dynamo control plane; nullptr when spec.with_dynamo is false. */
    core::Deployment* dynamo() { return deployment_.get(); }

    /** Event log (empty when Dynamo is disabled). */
    telemetry::EventLog* event_log()
    {
        return deployment_ ? &deployment_->event_log() : nullptr;
    }

    /** Metrics registry (nullptr when Dynamo is disabled). */
    telemetry::MetricsRegistry* metrics()
    {
        return deployment_ ? &deployment_->metrics() : nullptr;
    }

    /** Decision-trace log (nullptr when Dynamo is disabled). */
    telemetry::TraceLog* trace_log()
    {
        return deployment_ ? &deployment_->trace_log() : nullptr;
    }

    /**
     * Copy the simulation kernel's internal counters into gauges on
     * the deployment registry (`sim.cascades`, `sim.far_drains`,
     * `sim.purges`, `sim.slot_sorts`, `sim.events_executed`). The sim
     * layer sits below telemetry, so the harness snapshots on demand
     * rather than the kernel pushing. No-op without a deployment.
     */
    void PublishKernelStats();

    const FleetSpec& spec() const { return spec_; }

    /** All servers (owned by the fleet), in construction order. */
    const std::vector<std::unique_ptr<server::SimServer>>& servers() const
    {
        return servers_;
    }

    /** Servers attached under a given device subtree. */
    std::vector<server::SimServer*> ServersUnder(const std::string& device_name);

    /** Servers of one service. */
    std::vector<server::SimServer*> ServersOf(workload::ServiceType service);

    /**
     * Campaign hooks: RPC endpoint rosters for a device subtree, so
     * chaos campaigns can target correlated faults ("partition this
     * RPP's agents", "storm this SB's controllers") without knowing
     * how the fleet names things.
     */
    std::vector<std::string> AgentEndpointsUnder(const std::string& device_name);

    /** Controller endpoints (leaf + upper) in a device subtree. */
    std::vector<std::string> ControllerEndpointsUnder(
        const std::string& device_name);

    /** Breaker telemetry feeds (empty unless with_breaker_validation). */
    const std::vector<std::unique_ptr<power::BreakerTelemetry>>&
    breaker_telemetry()
    {
        return breaker_telemetry_;
    }

    /**
     * The scriptable scenario traffic curve shared by every server;
     * add breakpoints to drive load tests and surges.
     */
    workload::PiecewiseTraffic& scenario() { return scenario_; }

    /**
     * Multiplier applied by an external (global) load balancer on top
     * of the diurnal and scenario curves — the knob a cross-data-center
     * balancer turns when it shifts traffic between sites.
     */
    void set_global_traffic_factor(double factor) { balancer_.set_factor(factor); }

    double global_traffic_factor() const { return balancer_.factor(); }

    /**
     * Current fleet-spec epoch: 0 at boot, bumped once per committed
     * reconfiguration transaction. Controllers observe it through
     * AttachEpoch and reject contract traffic from older epochs.
     */
    std::uint64_t spec_epoch() const { return spec_epoch_; }

    /**
     * Validate `txn` against the current topology and schedule it to
     * commit atomically at the next upper-cycle window barrier (the
     * next multiple of the upper pull cycle, 9 s by default). Ops in
     * one transaction apply in order with no control cycle in between;
     * the spec epoch bumps exactly once per transaction.
     *
     * @throws std::invalid_argument on a structurally invalid
     *         transaction (unknown device, wrong level, re-parent onto
     *         itself, restart without a standby, ...). Validation runs
     *         against the *current* topology; a transaction invalidated
     *         by an earlier pending one fails at commit with
     *         std::runtime_error instead.
     */
    void ScheduleReconfig(ReconfigTxn txn);

    /** Observer invoked after each committed transaction (journaling). */
    using ReconfigObserver = std::function<void(
        std::uint64_t epoch, SimTime time, const std::string& description)>;

    void set_reconfig_observer(ReconfigObserver observer)
    {
        reconfig_observer_ = std::move(observer);
    }

    /** Reconfiguration transactions committed so far (== spec_epoch). */
    std::uint64_t reconfigs_applied() const { return spec_epoch_; }

    /** Total draw at the root right now. */
    Watts TotalPower() { return root_->TotalPower(sim_.Now()); }

    /** Breaker trips observed so far (outages). */
    std::size_t outage_count() const { return monitor_->trip_count(); }

    /** Advance the simulation. */
    void RunFor(SimTime duration) { sim_.RunFor(duration); }

    /**
     * Serialize the complete fleet state into `ar`: the simulation
     * kernel counters, transport/failure-injector RNG position, every
     * breaker's thermal state (deterministic pre-order device walk),
     * every server (workload position, RAPL, work accounting, RNG),
     * the global balancer factor, and the full control plane. The
     * resulting byte string — and its FNV digest — is bit-exact across
     * runs of the same seed, which is what replay checkpoints compare.
     */
    void Snapshot(Archive& ar) const;

  private:
    void BuildServersFor(power::PowerDevice& rpp, Rng& rng, std::size_t* counter);

    void ValidateReconfig(const ReconfigTxn& txn) const;
    void ApplyReconfig(const ReconfigTxn& txn);
    void ApplyAddServers(const ReconfigOp& op);
    void ApplyRemoveSubtree(const ReconfigOp& op);
    void ApplyReparent(const ReconfigOp& op);
    void ApplyRestartController(const ReconfigOp& op);
    void ApplyPromoteUpper(const ReconfigOp& op);

    /** Fleet-side LoadShedder: scales shed factors of a domain's servers. */
    class Shedder : public core::LoadShedder
    {
      public:
        explicit Shedder(Fleet& fleet) : fleet_(fleet) {}

        void RequestShed(const std::string& domain, double fraction) override;
        void ClearShed(const std::string& domain) override;

      private:
        Fleet& fleet_;
    };

    FleetSpec spec_;
    sim::Simulation sim_;
    rpc::SimTransport transport_;
    workload::DiurnalTraffic diurnal_;
    workload::PiecewiseTraffic scenario_;
    workload::ConstantTraffic balancer_{1.0};
    workload::CompositeTraffic traffic_;
    std::unique_ptr<power::PowerDevice> root_;
    std::vector<std::unique_ptr<server::SimServer>> servers_;
    std::vector<std::unique_ptr<power::FixedLoad>> switches_;
    std::unique_ptr<power::BreakerMonitor> monitor_;
    std::unique_ptr<core::Deployment> deployment_;
    std::vector<std::unique_ptr<power::BreakerTelemetry>> breaker_telemetry_;
    std::unique_ptr<Shedder> shedder_;

    /** Bumped once per committed reconfiguration transaction. */
    std::uint64_t spec_epoch_ = 0;

    ReconfigObserver reconfig_observer_;

    /**
     * Decommissioned subtrees are detached from the tree but kept
     * alive: attached FixedLoads (and any breaker-telemetry samplers)
     * still point into them, and keeping the objects dormant is
     * cheaper and safer than chasing every reference.
     */
    std::vector<std::unique_ptr<power::PowerDevice>> retired_devices_;
};

}  // namespace dynamo::fleet

#endif  // DYNAMO_FLEET_FLEET_H_
