/**
 * @file
 * Run reports: the summary a data-center operator reads after a
 * scenario — peak/mean/energy, outage and capping counts, throughput
 * delivered vs demanded, and a per-service power breakdown.
 */
#ifndef DYNAMO_FLEET_REPORT_H_
#define DYNAMO_FLEET_REPORT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "fleet/fleet.h"
#include "telemetry/recorder.h"
#include "telemetry/timeseries.h"
#include "workload/service.h"

namespace dynamo::fleet {

/** Aggregated outcome of one fleet run. */
struct FleetReport
{
    SimTime start = 0;
    SimTime end = 0;

    Watts peak_power = 0.0;
    Watts mean_power = 0.0;
    double energy_kwh = 0.0;

    std::size_t outages = 0;
    std::size_t capping_episodes = 0;
    std::size_t cap_starts = 0;
    std::size_t cap_updates = 0;
    std::size_t uncaps = 0;
    std::size_t alarms = 0;

    double demanded_work = 0.0;
    double delivered_work = 0.0;

    /** Work lost to capping/outages, percent of demand. */
    double WorkLossPercent() const
    {
        if (demanded_work <= 0.0) return 0.0;
        return 100.0 * (1.0 - delivered_work / demanded_work);
    }

    struct ServiceRow
    {
        workload::ServiceType service;
        std::size_t servers = 0;
        Watts mean_power = 0.0;
    };

    std::vector<ServiceRow> services;

    /** Render a human-readable multi-line summary. */
    std::string ToString() const;
};

/**
 * Samples the fleet while it runs and assembles the report.
 *
 * Construct before driving the simulation, run the scenario, then call
 * Finish() once. The collector must not outlive the fleet.
 */
class ReportCollector
{
  public:
    explicit ReportCollector(Fleet& fleet, SimTime sample_period = 3000);

    /** Stop sampling and compute the report. */
    FleetReport Finish();

    /** Recorded root power series (for custom analysis/export). */
    const telemetry::TimeSeries& power_series() const { return power_series_; }

  private:
    Fleet& fleet_;
    SimTime start_;
    telemetry::TimeSeries power_series_;
    std::unique_ptr<telemetry::Recorder> recorder_;
    std::vector<double> base_demanded_;
    std::vector<double> base_delivered_;
};

}  // namespace dynamo::fleet

#endif  // DYNAMO_FLEET_REPORT_H_
