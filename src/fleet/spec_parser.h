/**
 * @file
 * Text configuration for fleet specs.
 *
 * A small "key = value" format (one per line, '#' comments) so
 * scenarios can be described in files and driven from the CLI without
 * recompiling:
 *
 *     scope = rpp             # rpp | sb | msb
 *     servers_per_rpp = 520
 *     rpp_rated_kw = 127.5
 *     mix = web:200, cache:200, newsfeed:40   # or: datacenter | frontend
 *     turbo = false
 *     diurnal_amplitude = 0.25
 *     leaf_pull_cycle_ms = 3000
 *     cap_threshold = 0.99
 *     dry_run = false
 *
 * Unknown keys and malformed values raise std::runtime_error with the
 * offending line, so a typo'd config fails loudly rather than running
 * a different experiment than intended.
 */
#ifndef DYNAMO_FLEET_SPEC_PARSER_H_
#define DYNAMO_FLEET_SPEC_PARSER_H_

#include <iosfwd>
#include <string>

#include "fleet/fleet.h"

namespace dynamo::fleet {

/** Parse a spec from a stream; throws std::runtime_error on errors. */
FleetSpec ParseFleetSpec(std::istream& in);

/** Parse a spec from a string. */
FleetSpec ParseFleetSpecString(const std::string& text);

/** Load a spec from a file; throws std::runtime_error if unreadable. */
FleetSpec LoadFleetSpec(const std::string& path);

/** Parse a service mix ("web:200,cache:200" or "datacenter"/"frontend"). */
ServiceMix ParseServiceMix(const std::string& text);

/**
 * Canonical text form of a spec: fixed key order, doubles at 17
 * significant digits, ratings in watt-denominated keys (`rpp_rated_w`)
 * so no unit conversion rounds. Serialize→parse→serialize is
 * byte-identical — replay journals embed this form so a recorded run
 * rebuilds the exact same fleet.
 */
std::string SerializeFleetSpec(const FleetSpec& spec);

/** SerializeFleetSpec to a stream. */
void WriteFleetSpec(std::ostream& out, const FleetSpec& spec);

}  // namespace dynamo::fleet

#endif  // DYNAMO_FLEET_SPEC_PARSER_H_
