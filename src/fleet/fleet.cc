#include "fleet/fleet.h"

#include <cassert>
#include <cmath>
#include <utility>

#include "workload/load_process.h"

namespace dynamo::fleet {
namespace {

/** Assign services to `n` servers in contiguous blocks per the mix. */
std::vector<workload::ServiceType>
AssignServices(const ServiceMix& mix, std::size_t n)
{
    assert(!mix.shares.empty() && "service mix must not be empty");
    double total = 0.0;
    for (const auto& share : mix.shares) total += share.weight;

    std::vector<workload::ServiceType> assignment;
    assignment.reserve(n);
    double cumulative = 0.0;
    for (const auto& share : mix.shares) {
        cumulative += share.weight;
        const auto upto = static_cast<std::size_t>(
            std::llround(cumulative / total * static_cast<double>(n)));
        while (assignment.size() < upto) assignment.push_back(share.service);
    }
    while (assignment.size() < n) assignment.push_back(mix.shares.back().service);
    return assignment;
}

}  // namespace

Fleet::Fleet(FleetSpec spec)
    : spec_(std::move(spec)),
      transport_(sim_, spec_.seed ^ 0x7a77ULL),
      diurnal_(spec_.diurnal_amplitude)
{
    traffic_.Add(&diurnal_);
    traffic_.Add(&scenario_);
    traffic_.Add(&balancer_);

    switch (spec_.scope) {
      case FleetScope::kRpp:
        root_ = power::BuildRpp("rpp0", spec_.topology.rpp_rated,
                                spec_.topology.rpp_rated);
        break;
      case FleetScope::kSb:
        root_ = power::BuildSbTree("sb0", spec_.topology.rpps_per_sb,
                                   spec_.topology);
        break;
      case FleetScope::kMsb:
        root_ = power::BuildMsbTree(spec_.topology);
        break;
    }

    Rng rng(spec_.seed);
    std::size_t counter = 0;
    // DevicesAtLevel includes the root itself, so a bare-RPP fleet
    // gets its servers attached directly to the root.
    for (power::PowerDevice* rpp :
         root_->DevicesAtLevel(power::DeviceLevel::kRpp)) {
        BuildServersFor(*rpp, rng, &counter);
    }

    monitor_ = std::make_unique<power::BreakerMonitor>(
        sim_, *root_, spec_.breaker_monitor_period);

    if (spec_.with_dynamo) {
        deployment_ =
            core::BuildDeployment(sim_, transport_, *root_, spec_.deployment);
        if (spec_.deployment.with_telemetry) {
            transport_.AttachMetrics(&deployment_->metrics());
        }
        if (spec_.with_load_shedding) {
            shedder_ = std::make_unique<Shedder>(*this);
            for (const auto& leaf : deployment_->leaf_controllers()) {
                leaf->SetLoadShedder(shedder_.get());
            }
        }
        if (spec_.with_breaker_validation) {
            for (const auto& leaf : deployment_->leaf_controllers()) {
                breaker_telemetry_.push_back(
                    std::make_unique<power::BreakerTelemetry>(
                        sim_, leaf->device(), /*period=*/60000,
                        /*noise_frac=*/0.02,
                        spec_.seed ^ breaker_telemetry_.size()));
                leaf->AttachBreakerTelemetry(breaker_telemetry_.back().get());
            }
        }
    }
}

void
Fleet::PublishKernelStats()
{
    if (!deployment_) return;
    telemetry::MetricsRegistry& registry = deployment_->metrics();
    const sim::KernelStats& stats = sim_.kernel_stats();
    registry.GetGauge("sim.cascades")
        ->Set(static_cast<double>(stats.cascades));
    registry.GetGauge("sim.far_drains")
        ->Set(static_cast<double>(stats.far_drains));
    registry.GetGauge("sim.purges")->Set(static_cast<double>(stats.purges));
    registry.GetGauge("sim.slot_sorts")
        ->Set(static_cast<double>(stats.slot_sorts));
    registry.GetGauge("sim.events_executed")
        ->Set(static_cast<double>(sim_.events_executed()));
}

void
Fleet::BuildServersFor(power::PowerDevice& rpp, Rng& rng, std::size_t* counter)
{
    const std::vector<workload::ServiceType> services =
        AssignServices(spec_.mix, spec_.servers_per_rpp);

    if (spec_.tor_switch_power > 0.0) {
        switches_.push_back(
            std::make_unique<power::FixedLoad>(spec_.tor_switch_power));
        rpp.AttachLoad(switches_.back().get());
    }

    for (std::size_t i = 0; i < spec_.servers_per_rpp; ++i) {
        server::SimServer::Config config;
        config.name = rpp.name() + "/s" + std::to_string(i);
        config.generation = rng.Bernoulli(spec_.haswell_fraction)
                                ? server::ServerGeneration::kHaswell2015
                                : server::ServerGeneration::kWestmere2011;
        config.service = services[i];
        config.has_sensor = !rng.Bernoulli(spec_.sensorless_fraction);
        config.turbo_enabled = spec_.turbo_enabled;
        config.spec_override = spec_.spec_override;
        ++*counter;
        config.seed = rng.NextU64();
        servers_.push_back(std::make_unique<server::SimServer>(
            config, workload::LoadProcessParams::For(config.service), &traffic_));
        rpp.AttachLoad(servers_.back().get());
    }
}

void
Fleet::Shedder::RequestShed(const std::string& domain, double fraction)
{
    // Domains are controller endpoints ("ctl:<device>").
    const std::string device =
        domain.rfind("ctl:", 0) == 0 ? domain.substr(4) : domain;
    for (server::SimServer* srv : fleet_.ServersUnder(device)) {
        srv->load().set_shed_factor(1.0 - fraction);
    }
}

void
Fleet::Shedder::ClearShed(const std::string& domain)
{
    const std::string device =
        domain.rfind("ctl:", 0) == 0 ? domain.substr(4) : domain;
    for (server::SimServer* srv : fleet_.ServersUnder(device)) {
        srv->load().set_shed_factor(1.0);
    }
}

std::vector<server::SimServer*>
Fleet::ServersUnder(const std::string& device_name)
{
    std::vector<server::SimServer*> result;
    power::PowerDevice* device = root_->Find(device_name);
    if (device == nullptr) return result;
    device->ForEach([&](power::PowerDevice& d) {
        for (power::PowerLoad* load : d.loads()) {
            if (auto* srv = dynamic_cast<server::SimServer*>(load)) {
                result.push_back(srv);
            }
        }
    });
    return result;
}

std::vector<std::string>
Fleet::AgentEndpointsUnder(const std::string& device_name)
{
    std::vector<std::string> endpoints;
    for (server::SimServer* srv : ServersUnder(device_name)) {
        endpoints.push_back(core::Deployment::AgentEndpoint(srv->name()));
    }
    return endpoints;
}

std::vector<std::string>
Fleet::ControllerEndpointsUnder(const std::string& device_name)
{
    std::vector<std::string> endpoints;
    power::PowerDevice* device = root_->Find(device_name);
    if (device == nullptr || deployment_ == nullptr) return endpoints;
    device->ForEach([&](power::PowerDevice& d) {
        const std::string endpoint = core::Deployment::ControllerEndpoint(d.name());
        if (deployment_->FindLeaf(endpoint) != nullptr ||
            deployment_->FindUpper(endpoint) != nullptr) {
            endpoints.push_back(endpoint);
        }
    });
    return endpoints;
}

std::vector<server::SimServer*>
Fleet::ServersOf(workload::ServiceType service)
{
    std::vector<server::SimServer*> result;
    for (const auto& srv : servers_) {
        if (srv->service() == service) result.push_back(srv.get());
    }
    return result;
}

void
Fleet::Snapshot(Archive& ar) const
{
    sim_.Snapshot(ar);
    transport_.Snapshot(ar);
    ar.F64(balancer_.factor());
    // Pre-order device walk: construction order is deterministic, so
    // the visit order (and hence the byte stream) is too.
    std::uint64_t device_count = 0;
    root_->ForEach([&](power::PowerDevice&) { ++device_count; });
    ar.U64(device_count);
    root_->ForEach([&](power::PowerDevice& dev) {
        ar.Str(dev.name());
        ar.F64(dev.quota());
        dev.breaker().Snapshot(ar);
    });
    ar.U64(monitor_ ? monitor_->trip_count() : 0);
    ar.U64(servers_.size());
    for (const auto& s : servers_) s->Snapshot(ar);
    if (deployment_) deployment_->Snapshot(ar);
}

}  // namespace dynamo::fleet
