#include "fleet/fleet.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "workload/load_process.h"

namespace dynamo::fleet {

std::vector<workload::ServiceType>
AssignServices(const ServiceMix& mix, std::size_t n)
{
    assert(!mix.shares.empty() && "service mix must not be empty");
    double total = 0.0;
    for (const auto& share : mix.shares) total += share.weight;

    std::vector<workload::ServiceType> assignment;
    assignment.reserve(n);
    double cumulative = 0.0;
    for (const auto& share : mix.shares) {
        cumulative += share.weight;
        const auto upto = static_cast<std::size_t>(
            std::llround(cumulative / total * static_cast<double>(n)));
        while (assignment.size() < upto) assignment.push_back(share.service);
    }
    while (assignment.size() < n) assignment.push_back(mix.shares.back().service);
    return assignment;
}

Fleet::Fleet(FleetSpec spec)
    : spec_(std::move(spec)),
      transport_(sim_, spec_.seed ^ 0x7a77ULL),
      diurnal_(spec_.diurnal_amplitude)
{
    traffic_.Add(&diurnal_);
    traffic_.Add(&scenario_);
    traffic_.Add(&balancer_);

    switch (spec_.scope) {
      case FleetScope::kRpp:
        root_ = power::BuildRpp("rpp0", spec_.topology.rpp_rated,
                                spec_.topology.rpp_rated);
        break;
      case FleetScope::kSb:
        root_ = power::BuildSbTree("sb0", spec_.topology.rpps_per_sb,
                                   spec_.topology);
        break;
      case FleetScope::kMsb:
        root_ = power::BuildMsbTree(spec_.topology);
        break;
    }

    Rng rng(spec_.seed);
    std::size_t counter = 0;
    // DevicesAtLevel includes the root itself, so a bare-RPP fleet
    // gets its servers attached directly to the root.
    for (power::PowerDevice* rpp :
         root_->DevicesAtLevel(power::DeviceLevel::kRpp)) {
        BuildServersFor(*rpp, rng, &counter);
    }

    monitor_ = std::make_unique<power::BreakerMonitor>(
        sim_, *root_, spec_.breaker_monitor_period);

    if (spec_.with_dynamo) {
        deployment_ =
            core::BuildDeployment(sim_, transport_, *root_, spec_.deployment);
        if (spec_.deployment.with_telemetry) {
            transport_.AttachMetrics(&deployment_->metrics());
        }
        if (spec_.with_load_shedding) {
            shedder_ = std::make_unique<Shedder>(*this);
            for (const auto& leaf : deployment_->leaf_controllers()) {
                leaf->SetLoadShedder(shedder_.get());
            }
        }
        if (spec_.with_breaker_validation) {
            for (const auto& leaf : deployment_->leaf_controllers()) {
                breaker_telemetry_.push_back(
                    std::make_unique<power::BreakerTelemetry>(
                        sim_, leaf->device(), /*period=*/60000,
                        /*noise_frac=*/0.02,
                        spec_.seed ^ breaker_telemetry_.size()));
                leaf->AttachBreakerTelemetry(breaker_telemetry_.back().get());
            }
        }
        // Every controller — standbys included, since a promoted backup
        // must enforce the same epoch — observes the fleet's spec epoch.
        for (const auto& leaf : deployment_->leaf_controllers()) {
            leaf->AttachEpoch(&spec_epoch_);
        }
        for (const auto& upper : deployment_->upper_controllers()) {
            upper->AttachEpoch(&spec_epoch_);
        }
        for (const auto& leaf : deployment_->leaf_backups()) {
            leaf->AttachEpoch(&spec_epoch_);
        }
        for (const auto& upper : deployment_->upper_backups()) {
            upper->AttachEpoch(&spec_epoch_);
        }
    }
}

void
Fleet::PublishKernelStats()
{
    if (!deployment_) return;
    telemetry::MetricsRegistry& registry = deployment_->metrics();
    const sim::KernelStats& stats = sim_.kernel_stats();
    registry.GetGauge("sim.cascades")
        ->Set(static_cast<double>(stats.cascades));
    registry.GetGauge("sim.far_drains")
        ->Set(static_cast<double>(stats.far_drains));
    registry.GetGauge("sim.purges")->Set(static_cast<double>(stats.purges));
    registry.GetGauge("sim.slot_sorts")
        ->Set(static_cast<double>(stats.slot_sorts));
    registry.GetGauge("sim.events_executed")
        ->Set(static_cast<double>(sim_.events_executed()));
}

void
Fleet::BuildServersFor(power::PowerDevice& rpp, Rng& rng, std::size_t* counter)
{
    const std::vector<workload::ServiceType> services =
        AssignServices(spec_.mix, spec_.servers_per_rpp);

    if (spec_.tor_switch_power > 0.0) {
        switches_.push_back(
            std::make_unique<power::FixedLoad>(spec_.tor_switch_power));
        rpp.AttachLoad(switches_.back().get());
    }

    for (std::size_t i = 0; i < spec_.servers_per_rpp; ++i) {
        server::SimServer::Config config;
        config.name = rpp.name() + "/s" + std::to_string(i);
        // The GPU draw only exists when gpu_fraction is set: a zero
        // fraction must not consume an RNG draw, or every pre-GPU seed
        // (and every committed golden journal) would shift streams.
        config.generation =
            (spec_.gpu_fraction > 0.0 && rng.Bernoulli(spec_.gpu_fraction))
                ? server::ServerGeneration::kGpuTrain2024
            : rng.Bernoulli(spec_.haswell_fraction)
                ? server::ServerGeneration::kHaswell2015
                : server::ServerGeneration::kWestmere2011;
        config.service = services[i];
        config.has_sensor = !rng.Bernoulli(spec_.sensorless_fraction);
        config.turbo_enabled = spec_.turbo_enabled;
        config.spec_override = spec_.spec_override;
        ++*counter;
        config.seed = rng.NextU64();
        servers_.push_back(std::make_unique<server::SimServer>(
            config, workload::LoadProcessParams::For(config.service), &traffic_));
        rpp.AttachLoad(servers_.back().get());
    }
}

void
Fleet::Shedder::RequestShed(const std::string& domain, double fraction)
{
    // Domains are controller endpoints ("ctl:<device>").
    const std::string device =
        domain.rfind("ctl:", 0) == 0 ? domain.substr(4) : domain;
    for (server::SimServer* srv : fleet_.ServersUnder(device)) {
        srv->load().set_shed_factor(1.0 - fraction);
    }
}

void
Fleet::Shedder::ClearShed(const std::string& domain)
{
    const std::string device =
        domain.rfind("ctl:", 0) == 0 ? domain.substr(4) : domain;
    for (server::SimServer* srv : fleet_.ServersUnder(device)) {
        srv->load().set_shed_factor(1.0);
    }
}

std::vector<server::SimServer*>
Fleet::ServersUnder(const std::string& device_name)
{
    std::vector<server::SimServer*> result;
    power::PowerDevice* device = root_->Find(device_name);
    if (device == nullptr) return result;
    device->ForEach([&](power::PowerDevice& d) {
        for (power::PowerLoad* load : d.loads()) {
            if (auto* srv = dynamic_cast<server::SimServer*>(load)) {
                result.push_back(srv);
            }
        }
    });
    return result;
}

std::vector<std::string>
Fleet::AgentEndpointsUnder(const std::string& device_name)
{
    std::vector<std::string> endpoints;
    for (server::SimServer* srv : ServersUnder(device_name)) {
        endpoints.push_back(core::Deployment::AgentEndpoint(srv->name()));
    }
    return endpoints;
}

std::vector<std::string>
Fleet::ControllerEndpointsUnder(const std::string& device_name)
{
    std::vector<std::string> endpoints;
    power::PowerDevice* device = root_->Find(device_name);
    if (device == nullptr || deployment_ == nullptr) return endpoints;
    device->ForEach([&](power::PowerDevice& d) {
        const std::string endpoint = core::Deployment::ControllerEndpoint(d.name());
        if (deployment_->FindLeaf(endpoint) != nullptr ||
            deployment_->FindUpper(endpoint) != nullptr) {
            endpoints.push_back(endpoint);
        }
    });
    return endpoints;
}

std::vector<server::SimServer*>
Fleet::ServersOf(workload::ServiceType service)
{
    std::vector<server::SimServer*> result;
    for (const auto& srv : servers_) {
        if (srv->service() == service) result.push_back(srv.get());
    }
    return result;
}

void
Fleet::ScheduleReconfig(ReconfigTxn txn)
{
    ValidateReconfig(txn);
    // Commit at the next upper-cycle window barrier: the 9 s cadence is
    // the coarsest control period, so every controller sees either the
    // old topology or the new one, never a mix mid-decision.
    const SimTime window = spec_.deployment.upper.base.pull_cycle;
    const SimTime at = (sim_.Now() / window + 1) * window;
    sim_.ScheduleAt(at, [this, txn = std::move(txn)]() { ApplyReconfig(txn); });
}

void
Fleet::ValidateReconfig(const ReconfigTxn& txn) const
{
    if (txn.empty()) {
        throw std::invalid_argument("reconfig: empty transaction");
    }
    const power::DeviceLevel leaf_level = spec_.deployment.leaf_level;
    for (const ReconfigOp& op : txn.ops) {
        power::PowerDevice* dev = root_->Find(op.target);
        const std::string ctl = core::Deployment::ControllerEndpoint(op.target);
        switch (op.kind) {
          case ReconfigOp::Kind::kAddServers:
            if (op.count == 0) {
                throw std::invalid_argument("reconfig: add-servers(" +
                                            op.target + ") with count 0");
            }
            if (dev == nullptr || dev->level() != leaf_level) {
                throw std::invalid_argument(
                    "reconfig: add-servers target \"" + op.target +
                    "\" is not a leaf-level device");
            }
            if (deployment_ && deployment_->FindLeaf(ctl) == nullptr) {
                throw std::invalid_argument(
                    "reconfig: no leaf controller for \"" + op.target + "\"");
            }
            break;
          case ReconfigOp::Kind::kRemoveSubtree:
            if (dev == nullptr || dev->level() != leaf_level) {
                throw std::invalid_argument(
                    "reconfig: remove-subtree target \"" + op.target +
                    "\" is not a leaf-level device");
            }
            if (dev->parent() == nullptr) {
                throw std::invalid_argument(
                    "reconfig: cannot remove the root device \"" + op.target +
                    "\"");
            }
            break;
          case ReconfigOp::Kind::kReparent: {
            if (dev == nullptr || dev->level() != leaf_level ||
                dev->parent() == nullptr) {
                throw std::invalid_argument(
                    "reconfig: reparent target \"" + op.target +
                    "\" is not a non-root leaf-level device");
            }
            power::PowerDevice* np = root_->Find(op.new_parent);
            if (np == nullptr) {
                throw std::invalid_argument("reconfig: unknown new parent \"" +
                                            op.new_parent + "\"");
            }
            if (np == dev->parent()) {
                throw std::invalid_argument("reconfig: \"" + op.target +
                                            "\" is already fed from \"" +
                                            op.new_parent + "\"");
            }
            if (dev->Find(op.new_parent) != nullptr) {
                throw std::invalid_argument(
                    "reconfig: new parent \"" + op.new_parent +
                    "\" lies inside the re-parented subtree");
            }
            if (deployment_ != nullptr) {
                const std::string old_ctl = core::Deployment::ControllerEndpoint(
                    dev->parent()->name());
                const std::string new_ctl =
                    core::Deployment::ControllerEndpoint(op.new_parent);
                if (deployment_->FindUpper(old_ctl) == nullptr ||
                    deployment_->FindUpper(new_ctl) == nullptr) {
                    throw std::invalid_argument(
                        "reconfig: reparent requires upper controllers on "
                        "both the old and new parent of \"" +
                        op.target + "\"");
                }
            }
            break;
          }
          case ReconfigOp::Kind::kRestartController:
          case ReconfigOp::Kind::kPromoteUpper: {
            if (op.kind == ReconfigOp::Kind::kPromoteUpper &&
                (deployment_ == nullptr ||
                 deployment_->FindUpper(ctl) == nullptr)) {
                throw std::invalid_argument(
                    "reconfig: promote-upper target \"" + op.target +
                    "\" has no upper controller");
            }
            core::FailoverManager* mgr =
                deployment_ ? deployment_->FindFailover(ctl) : nullptr;
            if (mgr == nullptr) {
                throw std::invalid_argument(
                    "reconfig: \"" + op.target +
                    "\" has no standby controller (build the fleet with "
                    "with_backup_controllers)");
            }
            if (mgr->switched()) {
                throw std::invalid_argument(
                    "reconfig: standby for \"" + op.target +
                    "\" was already consumed");
            }
            break;
          }
        }
    }
}

void
Fleet::ApplyReconfig(const ReconfigTxn& txn)
{
    ++spec_epoch_;
    for (const ReconfigOp& op : txn.ops) {
        switch (op.kind) {
          case ReconfigOp::Kind::kAddServers: ApplyAddServers(op); break;
          case ReconfigOp::Kind::kRemoveSubtree: ApplyRemoveSubtree(op); break;
          case ReconfigOp::Kind::kReparent: ApplyReparent(op); break;
          case ReconfigOp::Kind::kRestartController:
            ApplyRestartController(op);
            break;
          case ReconfigOp::Kind::kPromoteUpper: ApplyPromoteUpper(op); break;
        }
    }
    const SimTime now = sim_.Now();
    if (deployment_) {
        telemetry::Event event;
        event.time = now;
        event.kind = telemetry::EventKind::kReconfig;
        event.source = "fleet";
        event.servers_affected = static_cast<int>(txn.ops.size());
        event.detail = txn.Describe();
        deployment_->event_log().Record(std::move(event));
    }
    if (reconfig_observer_) {
        reconfig_observer_(spec_epoch_, now, txn.Describe());
    }
}

void
Fleet::ApplyAddServers(const ReconfigOp& op)
{
    power::PowerDevice* rpp = root_->Find(op.target);
    if (rpp == nullptr) {
        throw std::runtime_error("reconfig: device \"" + op.target +
                                 "\" vanished before commit");
    }
    // A fresh deterministic stream per (seed, epoch): provisioning must
    // not perturb the boot-time RNG positions of existing servers.
    Rng rng(spec_.seed ^ (0x9e3779b97f4a7c15ULL * spec_epoch_));
    const std::vector<workload::ServiceType> services =
        AssignServices(spec_.mix, op.count);
    core::LeafController* leaf = nullptr;
    core::LeafController* leaf_backup = nullptr;
    if (deployment_) {
        const std::string ep = core::Deployment::ControllerEndpoint(op.target);
        leaf = deployment_->FindLeaf(ep);
        leaf_backup = deployment_->FindLeafBackup(ep);
    }
    for (std::size_t i = 0; i < op.count; ++i) {
        server::SimServer::Config config;
        // Epoch-qualified names keep provisioned servers unique across
        // repeated expansions of the same leaf.
        config.name = op.target + "/e" + std::to_string(spec_epoch_) + "s" +
                      std::to_string(i);
        // Mirrors BuildServersFor: the GPU draw happens only when the
        // fraction is set, keeping pre-GPU provisioning streams exact.
        config.generation =
            (spec_.gpu_fraction > 0.0 && rng.Bernoulli(spec_.gpu_fraction))
                ? server::ServerGeneration::kGpuTrain2024
            : rng.Bernoulli(spec_.haswell_fraction)
                ? server::ServerGeneration::kHaswell2015
                : server::ServerGeneration::kWestmere2011;
        config.service = services[i];
        config.has_sensor = !rng.Bernoulli(spec_.sensorless_fraction);
        config.turbo_enabled = spec_.turbo_enabled;
        config.spec_override = spec_.spec_override;
        config.seed = rng.NextU64();
        servers_.push_back(std::make_unique<server::SimServer>(
            config, workload::LoadProcessParams::For(config.service),
            &traffic_));
        server::SimServer* srv = servers_.back().get();
        rpp->AttachLoad(srv);
        if (deployment_) {
            deployment_->AdoptServer(sim_, transport_, *srv);
            // Both leaf instances learn the roster: after a failover
            // the standby must keep controlling the grown domain.
            const core::AgentInfo info = core::AgentInfoFor(*srv);
            if (leaf != nullptr) leaf->AddAgent(info);
            if (leaf_backup != nullptr) leaf_backup->AddAgent(info);
        }
    }
}

void
Fleet::ApplyRemoveSubtree(const ReconfigOp& op)
{
    power::PowerDevice* dev = root_->Find(op.target);
    if (dev == nullptr || dev->parent() == nullptr) {
        throw std::runtime_error("reconfig: device \"" + op.target +
                                 "\" vanished before commit");
    }
    const SimTime now = sim_.Now();
    const std::string ctl_ep = core::Deployment::ControllerEndpoint(op.target);

    // Decommission order matters: caps come off the servers while the
    // subtree is still powered (a decommission is a drain, not a
    // crash), then the agents, then the controllers, then the metal.
    const std::vector<server::SimServer*> doomed = ServersUnder(op.target);
    for (server::SimServer* srv : doomed) {
        srv->ClearPowerLimit(now);
        if (deployment_) {
            deployment_->RemoveAgent(core::Deployment::AgentEndpoint(srv->name()),
                                     transport_);
        }
    }
    dev->ForEach([&](power::PowerDevice& d) {
        const std::vector<power::PowerLoad*> attached = d.loads();
        for (power::PowerLoad* load : attached) {
            if (dynamic_cast<server::SimServer*>(load) != nullptr) {
                d.DetachLoad(load);
            }
        }
    });
    const std::unordered_set<const server::SimServer*> gone(doomed.begin(),
                                                            doomed.end());
    servers_.erase(
        std::remove_if(servers_.begin(), servers_.end(),
                       [&](const std::unique_ptr<server::SimServer>& s) {
                           return gone.count(s.get()) != 0;
                       }),
        servers_.end());

    if (deployment_) {
        const std::string parent_ep =
            core::Deployment::ControllerEndpoint(dev->parent()->name());
        if (auto* upper = deployment_->FindUpper(parent_ep)) {
            upper->RemoveChild(ctl_ep);
        }
        if (auto* backup = deployment_->FindUpperBackup(parent_ep)) {
            backup->RemoveChild(ctl_ep);
        }
        deployment_->RemoveLeaf(ctl_ep, transport_);
    }
    retired_devices_.push_back(dev->parent()->RemoveChild(op.target));
}

void
Fleet::ApplyReparent(const ReconfigOp& op)
{
    power::PowerDevice* dev = root_->Find(op.target);
    power::PowerDevice* new_parent = root_->Find(op.new_parent);
    if (dev == nullptr || new_parent == nullptr ||
        dev->parent() == nullptr || dev->parent() == new_parent) {
        throw std::runtime_error("reconfig: reparent of \"" + op.target +
                                 "\" no longer applies");
    }
    const std::string ctl_ep = core::Deployment::ControllerEndpoint(op.target);
    if (deployment_) {
        const std::string old_ep =
            core::Deployment::ControllerEndpoint(dev->parent()->name());
        const std::string new_ep =
            core::Deployment::ControllerEndpoint(op.new_parent);
        if (auto* upper = deployment_->FindUpper(old_ep)) {
            upper->RemoveChild(ctl_ep);
        }
        if (auto* backup = deployment_->FindUpperBackup(old_ep)) {
            backup->RemoveChild(ctl_ep);
        }
        // The leaf keeps its standing contractual limit across the
        // move; the new parent discovers it through contract adoption
        // on its next pull, so no capping headroom is ever lost.
        if (auto* upper = deployment_->FindUpper(new_ep)) {
            upper->AddChild(ctl_ep);
        }
        if (auto* backup = deployment_->FindUpperBackup(new_ep)) {
            backup->AddChild(ctl_ep);
        }
    }
    new_parent->AddChild(dev->parent()->RemoveChild(op.target));
}

void
Fleet::ApplyRestartController(const ReconfigOp& op)
{
    const std::string ep = core::Deployment::ControllerEndpoint(op.target);
    if (!deployment_ || !deployment_->SwapController(ep)) {
        throw std::runtime_error("reconfig: no unswitched standby for \"" +
                                 op.target + "\"");
    }
}

void
Fleet::ApplyPromoteUpper(const ReconfigOp& op)
{
    const std::string ep = core::Deployment::ControllerEndpoint(op.target);
    core::FailoverManager* mgr =
        deployment_ ? deployment_->FindFailover(ep) : nullptr;
    if (mgr == nullptr) {
        throw std::runtime_error("reconfig: no failover manager for \"" +
                                 op.target + "\"");
    }
    mgr->ForceSwitch();
}

void
Fleet::Snapshot(Archive& ar) const
{
    sim_.Snapshot(ar);
    transport_.Snapshot(ar);
    ar.U64(spec_epoch_);
    ar.F64(balancer_.factor());
    // Pre-order device walk: construction order is deterministic, so
    // the visit order (and hence the byte stream) is too.
    std::uint64_t device_count = 0;
    root_->ForEach([&](power::PowerDevice&) { ++device_count; });
    ar.U64(device_count);
    root_->ForEach([&](power::PowerDevice& dev) {
        ar.Str(dev.name());
        ar.F64(dev.quota());
        dev.breaker().Snapshot(ar);
    });
    ar.U64(monitor_ ? monitor_->trip_count() : 0);
    ar.U64(servers_.size());
    for (const auto& s : servers_) s->Snapshot(ar);
    if (deployment_) deployment_->Snapshot(ar);
}

}  // namespace dynamo::fleet
