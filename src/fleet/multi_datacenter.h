/**
 * @file
 * Multiple data centers behind a global load balancer.
 *
 * The paper's introduction motivates data-center-wide power safety
 * with the cascade risk: "a power failure in one data center could
 * cause a redistribution of load to other data centers, tripping their
 * power breakers and leading to a cascading power failure event." This
 * harness instantiates N independent site fleets and a balancer that
 * periodically redistributes the global demand in proportion to each
 * site's surviving capacity — so one tripped site raises every
 * survivor's traffic, which without capping can take the whole region
 * down in sequence.
 *
 * Sites run on independent simulation clocks advanced in lockstep
 * slices; they interact only through the balancer at slice boundaries,
 * which mirrors the minutes-scale reaction time of real cross-site
 * traffic engineering.
 */
#ifndef DYNAMO_FLEET_MULTI_DATACENTER_H_
#define DYNAMO_FLEET_MULTI_DATACENTER_H_

#include <memory>
#include <vector>

#include "fleet/fleet.h"

namespace dynamo::fleet {

/** N sites plus the global balancer. */
class MultiDatacenter
{
  public:
    struct Config
    {
        /** Number of sites. */
        std::size_t sites = 3;

        /** Per-site fleet spec (seed is offset per site). */
        FleetSpec site_spec;

        /** Balancer reaction period (lockstep slice length). */
        SimTime rebalance_period = 30000;
    };

    explicit MultiDatacenter(Config config);

    std::size_t site_count() const { return sites_.size(); }
    Fleet& site(std::size_t i) { return *sites_[i]; }

    /** Advance all sites in lockstep, rebalancing between slices. */
    void RunFor(SimTime duration);

    /** Script the same surge onto every site's scenario curve. */
    void ScriptGlobalSurge(SimTime start, SimTime ramp, SimTime hold,
                           double factor);

    /** Breaker trips across all sites. */
    std::size_t TotalOutages() const;

    /** Fraction of all servers still energized. */
    double AliveFraction() const;

    /** Sites whose root device is de-energized. */
    std::size_t DarkSites() const;

    /** Largest balancer multiplier currently applied to any site. */
    double MaxSiteTrafficFactor() const;

  private:
    /** Recompute per-site traffic shares from surviving capacity. */
    void Rebalance();

    /** Fraction of one site's servers that are energized. */
    static double SiteAliveFraction(Fleet& site);

    Config config_;
    std::vector<std::unique_ptr<Fleet>> sites_;
};

}  // namespace dynamo::fleet

#endif  // DYNAMO_FLEET_MULTI_DATACENTER_H_
