#include "fleet/spec_parser.h"

#include "policy/capping_policy.h"

#include <cstdio>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace dynamo::fleet {
namespace {

std::string
Strip(const std::string& s)
{
    const auto first = s.find_first_not_of(" \t\r\n");
    if (first == std::string::npos) return "";
    const auto last = s.find_last_not_of(" \t\r\n");
    return s.substr(first, last - first + 1);
}

/** Structural errors (bad syntax, unknown key): std::runtime_error. */
[[noreturn]] void
Fail(std::size_t line_no, const std::string& line, const std::string& why)
{
    throw std::runtime_error("fleet spec line " + std::to_string(line_no) +
                             ": " + why + ": '" + line + "'");
}

/**
 * Numeric-value errors: std::invalid_argument naming the offending
 * key and line, so "servers_per_rpp = -5" and "seed = 99999…9" fail
 * with WHERE and WHY instead of a raw std::out_of_range from the
 * bowels of std::stoull.
 */
[[noreturn]] void
FailNumeric(const std::string& key, std::size_t line_no,
            const std::string& line, const std::string& why)
{
    throw std::invalid_argument("fleet spec line " + std::to_string(line_no) +
                                ": key '" + key + "': " + why + ": '" + line +
                                "'");
}

double
ParseDouble(const std::string& key, const std::string& value,
            std::size_t line_no, const std::string& line)
{
    std::size_t used = 0;
    double parsed = 0.0;
    try {
        parsed = std::stod(value, &used);
    } catch (const std::out_of_range&) {
        FailNumeric(key, line_no, line, "number out of range");
    } catch (const std::exception&) {
        FailNumeric(key, line_no, line, "expected a number");
    }
    if (!Strip(value.substr(used)).empty()) {
        FailNumeric(key, line_no, line,
                    "trailing garbage after number '" + value.substr(0, used) +
                        "'");
    }
    return parsed;
}

/** A double that must be >= 0 (watts, fractions, amplitudes). */
double
ParseNonNegDouble(const std::string& key, const std::string& value,
                  std::size_t line_no, const std::string& line)
{
    const double parsed = ParseDouble(key, value, line_no, line);
    if (parsed < 0.0) {
        FailNumeric(key, line_no, line, "must not be negative");
    }
    return parsed;
}

std::uint64_t
ParseU64(const std::string& key, const std::string& value, std::size_t line_no,
         const std::string& line)
{
    // Parsed as an integer, not via ParseDouble: seeds above 2^53
    // would silently lose low bits in a double round trip. std::stoull
    // happily *wraps* "-5" to 18446744073709551611, so negatives are
    // rejected up front.
    if (!value.empty() && value[0] == '-') {
        FailNumeric(key, line_no, line, "must not be negative");
    }
    std::size_t used = 0;
    std::uint64_t parsed = 0;
    try {
        parsed = std::stoull(value, &used);
    } catch (const std::out_of_range&) {
        FailNumeric(key, line_no, line, "integer out of range (max 2^64-1)");
    } catch (const std::exception&) {
        FailNumeric(key, line_no, line, "expected an unsigned integer");
    }
    if (!Strip(value.substr(used)).empty()) {
        FailNumeric(key, line_no, line,
                    "trailing garbage after integer '" + value.substr(0, used) +
                        "'");
    }
    return parsed;
}

/** A count (servers, rpps): an exact unsigned integer, not a double —
 *  "240.7" and "-5" fail loudly instead of truncating or wrapping. */
std::size_t
ParseCount(const std::string& key, const std::string& value,
           std::size_t line_no, const std::string& line)
{
    const std::uint64_t parsed = ParseU64(key, value, line_no, line);
    if (parsed > std::numeric_limits<std::size_t>::max()) {
        FailNumeric(key, line_no, line, "count out of range");
    }
    return static_cast<std::size_t>(parsed);
}

/** A millisecond period: a positive integer that fits in SimTime. */
SimTime
ParsePeriodMs(const std::string& key, const std::string& value,
              std::size_t line_no, const std::string& line)
{
    const std::uint64_t parsed = ParseU64(key, value, line_no, line);
    if (parsed == 0 ||
        parsed > static_cast<std::uint64_t>(
                     std::numeric_limits<SimTime>::max())) {
        FailNumeric(key, line_no, line,
                    "period must be a positive millisecond count");
    }
    return static_cast<SimTime>(parsed);
}

/**
 * Structural validation of a `scenario = name(k=v,...)` value. The
 * fleet layer cannot see the replay-scenario catalog (replay depends
 * on fleet, not vice versa), so this checks shape only: a well-formed
 * name, balanced parentheses, `k=v` pairs with numeric values. Whether
 * the name and parameter keys exist is checked at use time by
 * replay::ParseScenarioSpec.
 */
void
ValidateScenarioValue(const std::string& key, const std::string& value,
                      std::size_t line_no, const std::string& line)
{
    const auto paren = value.find('(');
    const std::string name =
        Strip(paren == std::string::npos ? value : value.substr(0, paren));
    if (name.empty()) {
        FailNumeric(key, line_no, line, "missing scenario name");
    }
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                        c == '-' || c == '_';
        if (!ok) {
            FailNumeric(key, line_no, line,
                        "bad character in scenario name '" + name + "'");
        }
    }
    if (paren == std::string::npos) return;
    if (value.back() != ')') {
        FailNumeric(key, line_no, line, "unbalanced '(' in scenario value");
    }
    const std::string args =
        value.substr(paren + 1, value.size() - paren - 2);
    if (Strip(args).empty()) return;
    std::istringstream parts(args);
    std::string part;
    while (std::getline(parts, part, ',')) {
        const auto eq = part.find('=');
        if (eq == std::string::npos) {
            FailNumeric(key, line_no, line,
                        "scenario parameter '" + Strip(part) +
                            "' is not k=v");
        }
        const std::string pkey = Strip(part.substr(0, eq));
        if (pkey.empty()) {
            FailNumeric(key, line_no, line, "empty scenario parameter name");
        }
        ParseDouble(key, Strip(part.substr(eq + 1)), line_no, line);
    }
}

bool
ParseBool(const std::string& value, std::size_t line_no, const std::string& line)
{
    if (value == "true" || value == "1" || value == "yes" || value == "on") {
        return true;
    }
    if (value == "false" || value == "0" || value == "no" || value == "off") {
        return false;
    }
    Fail(line_no, line, "expected a boolean");
}

}  // namespace

ServiceMix
ParseServiceMix(const std::string& text)
{
    const std::string trimmed = Strip(text);
    if (trimmed == "datacenter") return ServiceMix::Datacenter();
    if (trimmed == "frontend") return ServiceMix::FrontEndRow();

    ServiceMix mix;
    std::istringstream parts(trimmed);
    std::string part;
    while (std::getline(parts, part, ',')) {
        part = Strip(part);
        if (part.empty()) continue;
        const auto colon = part.find(':');
        std::string name = part;
        double weight = 1.0;
        if (colon != std::string::npos) {
            name = Strip(part.substr(0, colon));
            const std::string weight_text = Strip(part.substr(colon + 1));
            std::size_t used = 0;
            try {
                weight = std::stod(weight_text, &used);
            } catch (const std::exception&) {
                throw std::invalid_argument("service mix share '" + part +
                                            "': expected a numeric weight");
            }
            if (used != weight_text.size() || weight < 0.0) {
                throw std::invalid_argument(
                    "service mix share '" + part +
                    "': weight must be a non-negative number");
            }
        }
        mix.shares.push_back(
            ServiceMix::Share{workload::ParseServiceType(name), weight});
    }
    if (mix.shares.empty()) {
        throw std::runtime_error("empty service mix: '" + text + "'");
    }
    return mix;
}

FleetSpec
ParseFleetSpec(std::istream& in)
{
    FleetSpec spec;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const auto comment = line.find('#');
        std::string body =
            Strip(comment == std::string::npos ? line : line.substr(0, comment));
        if (body.empty()) continue;
        const auto eq = body.find('=');
        if (eq == std::string::npos) Fail(line_no, line, "expected key = value");
        const std::string key = Strip(body.substr(0, eq));
        const std::string value = Strip(body.substr(eq + 1));
        if (value.empty()) Fail(line_no, line, "missing value");

        if (key == "scope") {
            if (value == "rpp") {
                spec.scope = FleetScope::kRpp;
            } else if (value == "sb") {
                spec.scope = FleetScope::kSb;
            } else if (value == "msb") {
                spec.scope = FleetScope::kMsb;
            } else {
                Fail(line_no, line, "scope must be rpp|sb|msb");
            }
        } else if (key == "servers_per_rpp") {
            spec.servers_per_rpp = ParseCount(key, value, line_no, line);
        } else if (key == "rpps_per_sb") {
            spec.topology.rpps_per_sb = ParseCount(key, value, line_no, line);
        } else if (key == "sbs_per_msb") {
            spec.topology.sbs_per_msb = ParseCount(key, value, line_no, line);
        } else if (key == "rpp_rated_kw") {
            spec.topology.rpp_rated =
                ParseNonNegDouble(key, value, line_no, line) * 1000.0;
        } else if (key == "sb_rated_kw") {
            spec.topology.sb_rated =
                ParseNonNegDouble(key, value, line_no, line) * 1000.0;
        } else if (key == "msb_rated_kw") {
            spec.topology.msb_rated =
                ParseNonNegDouble(key, value, line_no, line) * 1000.0;
        } else if (key == "rpp_rated_w") {
            spec.topology.rpp_rated =
                ParseNonNegDouble(key, value, line_no, line);
        } else if (key == "sb_rated_w") {
            spec.topology.sb_rated = ParseNonNegDouble(key, value, line_no, line);
        } else if (key == "msb_rated_w") {
            spec.topology.msb_rated =
                ParseNonNegDouble(key, value, line_no, line);
        } else if (key == "quota_fill") {
            spec.topology.quota_fill =
                ParseNonNegDouble(key, value, line_no, line);
        } else if (key == "mix") {
            spec.mix = ParseServiceMix(value);
        } else if (key == "haswell_fraction") {
            spec.haswell_fraction = ParseNonNegDouble(key, value, line_no, line);
        } else if (key == "sensorless_fraction") {
            spec.sensorless_fraction =
                ParseNonNegDouble(key, value, line_no, line);
        } else if (key == "gpu_fraction") {
            spec.gpu_fraction = ParseNonNegDouble(key, value, line_no, line);
        } else if (key == "scenario") {
            ValidateScenarioValue(key, value, line_no, line);
            spec.scenario = value;
        } else if (key == "turbo") {
            spec.turbo_enabled = ParseBool(value, line_no, line);
        } else if (key == "tor_switch_power_w") {
            spec.tor_switch_power = ParseNonNegDouble(key, value, line_no, line);
        } else if (key == "diurnal_amplitude") {
            spec.diurnal_amplitude =
                ParseNonNegDouble(key, value, line_no, line);
        } else if (key == "seed") {
            spec.seed = ParseU64(key, value, line_no, line);
        } else if (key == "with_dynamo") {
            spec.with_dynamo = ParseBool(value, line_no, line);
        } else if (key == "with_breaker_validation") {
            spec.with_breaker_validation = ParseBool(value, line_no, line);
        } else if (key == "with_load_shedding") {
            spec.with_load_shedding = ParseBool(value, line_no, line);
        } else if (key == "allocation_policy") {
            if (value == "high-bucket-first") {
                spec.deployment.leaf.allocation_policy =
                    core::AllocationPolicy::kHighBucketFirst;
            } else if (value == "proportional") {
                spec.deployment.leaf.allocation_policy =
                    core::AllocationPolicy::kProportional;
            } else if (value == "water-fill") {
                spec.deployment.leaf.allocation_policy =
                    core::AllocationPolicy::kWaterFill;
            } else {
                Fail(line_no, line,
                     "allocation_policy must be high-bucket-first|"
                     "proportional|water-fill");
            }
        } else if (key == "leaf_pull_cycle_ms") {
            spec.deployment.leaf.base.pull_cycle =
                ParsePeriodMs(key, value, line_no, line);
        } else if (key == "upper_pull_cycle_ms") {
            spec.deployment.upper.base.pull_cycle =
                ParsePeriodMs(key, value, line_no, line);
        } else if (key == "response_wait_ms") {
            // Shared by both levels: the window between issuing pulls
            // and aggregating. Deployment-mode specs shrink it together
            // with the pull cycles to run fast control loops.
            const SimTime wait = ParsePeriodMs(key, value, line_no, line);
            spec.deployment.leaf.base.response_wait = wait;
            spec.deployment.upper.base.response_wait = wait;
        } else if (key == "rpc_timeout_ms") {
            const SimTime timeout = ParsePeriodMs(key, value, line_no, line);
            spec.deployment.leaf.base.rpc_timeout = timeout;
            spec.deployment.upper.base.rpc_timeout = timeout;
        } else if (key == "bucket_w") {
            spec.deployment.leaf.bucket_size =
                ParseNonNegDouble(key, value, line_no, line);
        } else if (key == "cap_threshold") {
            const double frac = ParseNonNegDouble(key, value, line_no, line);
            spec.deployment.leaf.base.bands.cap_threshold_frac = frac;
            spec.deployment.upper.base.bands.cap_threshold_frac = frac;
        } else if (key == "cap_target") {
            const double frac = ParseNonNegDouble(key, value, line_no, line);
            spec.deployment.leaf.base.bands.cap_target_frac = frac;
            spec.deployment.upper.base.bands.cap_target_frac = frac;
        } else if (key == "uncap_threshold") {
            const double frac = ParseNonNegDouble(key, value, line_no, line);
            spec.deployment.leaf.base.bands.uncap_threshold_frac = frac;
            spec.deployment.upper.base.bands.uncap_threshold_frac = frac;
        } else if (key == "dry_run") {
            const bool dry = ParseBool(value, line_no, line);
            spec.deployment.leaf.base.dry_run = dry;
            spec.deployment.upper.base.dry_run = dry;
        } else if (key == "with_backup_controllers") {
            spec.deployment.with_backup_controllers =
                ParseBool(value, line_no, line);
        } else if (key == "capping_policy") {
            // The capping brain is fleet-wide: both levels run the same
            // policy so the judge compares like against like. Unknown
            // names fail as invalid_argument (a value error, not a
            // syntax error) naming the key and line.
            policy::PolicyKind kind = policy::PolicyKind::kThreeBand;
            if (!policy::ParsePolicyKind(value, &kind)) {
                FailNumeric(key, line_no, line,
                            "must be three_band|predictive|waterfill|"
                            "fairshare");
            }
            spec.deployment.leaf.capping_policy = kind;
            spec.deployment.upper.capping_policy = kind;
        } else {
            Fail(line_no, line, "unknown key '" + key + "'");
        }
    }
    if (!spec.deployment.leaf.base.bands.Valid()) {
        throw std::runtime_error(
            "invalid three-band thresholds: need threshold > target > uncap");
    }
    // Mirror the controller-constructor validation here so a bad spec
    // fails at parse time with the file in hand, not at fleet build.
    if (spec.deployment.leaf.base.rpc_timeout >=
        spec.deployment.leaf.base.response_wait) {
        throw std::runtime_error(
            "rpc_timeout_ms must be < response_wait_ms; got " +
            std::to_string(spec.deployment.leaf.base.rpc_timeout) + " >= " +
            std::to_string(spec.deployment.leaf.base.response_wait));
    }
    return spec;
}

FleetSpec
ParseFleetSpecString(const std::string& text)
{
    std::istringstream in(text);
    return ParseFleetSpec(in);
}

FleetSpec
LoadFleetSpec(const std::string& path)
{
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open fleet spec: " + path);
    return ParseFleetSpec(in);
}

namespace {

/** 17-significant-digit form: round-trips any double bit-exactly. */
std::string
CanonicalDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::string
MixToString(const ServiceMix& mix)
{
    std::string out;
    for (const auto& share : mix.shares) {
        if (!out.empty()) out += ",";
        out += workload::ServiceName(share.service);
        out += ":";
        out += CanonicalDouble(share.weight);
    }
    return out;
}

const char*
PolicyName(core::AllocationPolicy policy)
{
    switch (policy) {
      case core::AllocationPolicy::kHighBucketFirst: return "high-bucket-first";
      case core::AllocationPolicy::kProportional: return "proportional";
      case core::AllocationPolicy::kWaterFill: return "water-fill";
    }
    return "high-bucket-first";
}

}  // namespace

void
WriteFleetSpec(std::ostream& out, const FleetSpec& spec)
{
    const auto kv = [&out](const char* key, const std::string& value) {
        out << key << " = " << value << "\n";
    };
    const char* scope = spec.scope == FleetScope::kRpp   ? "rpp"
                        : spec.scope == FleetScope::kSb ? "sb"
                                                        : "msb";
    kv("scope", scope);
    kv("servers_per_rpp", std::to_string(spec.servers_per_rpp));
    kv("rpps_per_sb", std::to_string(spec.topology.rpps_per_sb));
    kv("sbs_per_msb", std::to_string(spec.topology.sbs_per_msb));
    // Watt-denominated keys: the kw forms multiply by 1000 on parse,
    // which is not an exact inverse of dividing here.
    kv("rpp_rated_w", CanonicalDouble(spec.topology.rpp_rated));
    kv("sb_rated_w", CanonicalDouble(spec.topology.sb_rated));
    kv("msb_rated_w", CanonicalDouble(spec.topology.msb_rated));
    kv("quota_fill", CanonicalDouble(spec.topology.quota_fill));
    kv("mix", MixToString(spec.mix));
    kv("haswell_fraction", CanonicalDouble(spec.haswell_fraction));
    kv("sensorless_fraction", CanonicalDouble(spec.sensorless_fraction));
    kv("turbo", spec.turbo_enabled ? "true" : "false");
    kv("tor_switch_power_w", CanonicalDouble(spec.tor_switch_power));
    kv("diurnal_amplitude", CanonicalDouble(spec.diurnal_amplitude));
    kv("seed", std::to_string(spec.seed));
    kv("with_dynamo", spec.with_dynamo ? "true" : "false");
    kv("with_breaker_validation",
       spec.with_breaker_validation ? "true" : "false");
    kv("with_load_shedding", spec.with_load_shedding ? "true" : "false");
    kv("allocation_policy", PolicyName(spec.deployment.leaf.allocation_policy));
    kv("leaf_pull_cycle_ms",
       std::to_string(spec.deployment.leaf.base.pull_cycle));
    kv("upper_pull_cycle_ms",
       std::to_string(spec.deployment.upper.base.pull_cycle));
    kv("response_wait_ms",
       std::to_string(spec.deployment.leaf.base.response_wait));
    kv("rpc_timeout_ms", std::to_string(spec.deployment.leaf.base.rpc_timeout));
    kv("bucket_w", CanonicalDouble(spec.deployment.leaf.bucket_size));
    kv("cap_threshold",
       CanonicalDouble(spec.deployment.leaf.base.bands.cap_threshold_frac));
    kv("cap_target",
       CanonicalDouble(spec.deployment.leaf.base.bands.cap_target_frac));
    kv("uncap_threshold",
       CanonicalDouble(spec.deployment.leaf.base.bands.uncap_threshold_frac));
    kv("dry_run", spec.deployment.leaf.base.dry_run ? "true" : "false");
    kv("with_backup_controllers",
       spec.deployment.with_backup_controllers ? "true" : "false");
    // Emitted only when non-default so the serialized form of every
    // pre-policy-lab spec — including the canonical text embedded in
    // committed golden journals — stays byte-identical.
    if (spec.deployment.leaf.capping_policy !=
        policy::PolicyKind::kThreeBand) {
        kv("capping_policy",
           policy::PolicyKindName(spec.deployment.leaf.capping_policy));
    }
    if (spec.gpu_fraction != 0.0) {
        kv("gpu_fraction", CanonicalDouble(spec.gpu_fraction));
    }
    if (!spec.scenario.empty()) {
        kv("scenario", spec.scenario);
    }
}

std::string
SerializeFleetSpec(const FleetSpec& spec)
{
    std::ostringstream out;
    WriteFleetSpec(out, spec);
    return out.str();
}

}  // namespace dynamo::fleet
