/**
 * @file
 * Transactional fleet reconfiguration.
 *
 * The FleetSpec describes a fleet at boot; production fleets do not
 * hold still. A ReconfigTxn is an ordered batch of topology mutations
 * — provision servers, decommission a leaf breaker subtree, re-parent
 * a leaf under a different SB, restart or promote controllers — that
 * the engines validate up front and then apply *atomically at a 9 s
 * window barrier* (the upper-controller cadence): no control cycle
 * ever observes half a transaction. Each commit bumps the fleet's
 * spec epoch; contract traffic stamped with an older epoch was
 * computed against a topology that no longer exists and is rejected
 * by the receiving controller.
 */
#ifndef DYNAMO_FLEET_RECONFIG_H_
#define DYNAMO_FLEET_RECONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dynamo::fleet {

/** One topology mutation inside a ReconfigTxn. */
struct ReconfigOp
{
    /**
     * Numeric values are part of the journal encoding (DYNJRNL1
     * reconfiguration records describe committed transactions); do
     * not renumber.
     */
    enum class Kind : std::uint8_t {
        /** Provision `count` servers under leaf device `target`. */
        kAddServers = 1,

        /** Decommission leaf device `target` and everything under it. */
        kRemoveSubtree = 2,

        /** Re-feed leaf device `target` from device `new_parent`. */
        kReparent = 3,

        /** Planned warm restart of the controller on `target`. */
        kRestartController = 4,

        /** Kill the upper controller on `target`; promote its backup. */
        kPromoteUpper = 5,
    };

    Kind kind = Kind::kAddServers;

    /** Device name the op acts on (serial engine) or shard-engine id. */
    std::string target;

    /** Destination device for kReparent; unused otherwise. */
    std::string new_parent;

    /** Server count for kAddServers; unused otherwise. */
    std::size_t count = 0;
};

/** Readable name for an op kind ("add-servers", "reparent", ...). */
const char* ReconfigOpKindName(ReconfigOp::Kind kind);

/**
 * An ordered batch of reconfiguration ops applied as one atomic unit
 * at a window barrier. Build with the fluent helpers:
 *
 *   fleet.ScheduleReconfig(ReconfigTxn()
 *       .AddServers("sb0/rpp1", 24)
 *       .Reparent("sb0/rpp2", "sb1")
 *       .PromoteUpper("sb0"));
 */
struct ReconfigTxn
{
    std::vector<ReconfigOp> ops;

    ReconfigTxn& AddServers(std::string leaf_device, std::size_t count)
    {
        ReconfigOp op;
        op.kind = ReconfigOp::Kind::kAddServers;
        op.target = std::move(leaf_device);
        op.count = count;
        ops.push_back(std::move(op));
        return *this;
    }

    ReconfigTxn& RemoveSubtree(std::string leaf_device)
    {
        ReconfigOp op;
        op.kind = ReconfigOp::Kind::kRemoveSubtree;
        op.target = std::move(leaf_device);
        ops.push_back(std::move(op));
        return *this;
    }

    ReconfigTxn& Reparent(std::string leaf_device, std::string new_parent)
    {
        ReconfigOp op;
        op.kind = ReconfigOp::Kind::kReparent;
        op.target = std::move(leaf_device);
        op.new_parent = std::move(new_parent);
        ops.push_back(std::move(op));
        return *this;
    }

    ReconfigTxn& RestartController(std::string device)
    {
        ReconfigOp op;
        op.kind = ReconfigOp::Kind::kRestartController;
        op.target = std::move(device);
        ops.push_back(std::move(op));
        return *this;
    }

    ReconfigTxn& PromoteUpper(std::string device)
    {
        ReconfigOp op;
        op.kind = ReconfigOp::Kind::kPromoteUpper;
        op.target = std::move(device);
        ops.push_back(std::move(op));
        return *this;
    }

    bool empty() const { return ops.empty(); }

    /**
     * Canonical one-line description, e.g.
     * "add-servers(sb0/rpp1,24); reparent(sb0/rpp2->sb1)". Stable —
     * journaled reconfiguration records carry it, so replay compares
     * it byte-for-byte.
     */
    std::string Describe() const;
};

}  // namespace dynamo::fleet

#endif  // DYNAMO_FLEET_RECONFIG_H_
