#include "fleet/reconfig.h"

namespace dynamo::fleet {

const char*
ReconfigOpKindName(ReconfigOp::Kind kind)
{
    switch (kind) {
      case ReconfigOp::Kind::kAddServers: return "add-servers";
      case ReconfigOp::Kind::kRemoveSubtree: return "remove-subtree";
      case ReconfigOp::Kind::kReparent: return "reparent";
      case ReconfigOp::Kind::kRestartController: return "restart-controller";
      case ReconfigOp::Kind::kPromoteUpper: return "promote-upper";
    }
    return "unknown";
}

std::string
ReconfigTxn::Describe() const
{
    std::string out;
    for (const ReconfigOp& op : ops) {
        if (!out.empty()) out += "; ";
        out += ReconfigOpKindName(op.kind);
        out += '(';
        out += op.target;
        switch (op.kind) {
          case ReconfigOp::Kind::kAddServers:
            out += ',';
            out += std::to_string(op.count);
            break;
          case ReconfigOp::Kind::kReparent:
            out += "->";
            out += op.new_parent;
            break;
          default:
            break;
        }
        out += ')';
    }
    return out;
}

}  // namespace dynamo::fleet
