#include "fleet/report.h"

#include <map>
#include <sstream>

#include "telemetry/event_log.h"

namespace dynamo::fleet {

ReportCollector::ReportCollector(Fleet& fleet, SimTime sample_period)
    : fleet_(fleet), start_(fleet.sim().Now())
{
    recorder_ = std::make_unique<telemetry::Recorder>(
        fleet_.sim(), sample_period, [this]() { return fleet_.TotalPower(); },
        &power_series_);
    base_demanded_.reserve(fleet_.servers().size());
    base_delivered_.reserve(fleet_.servers().size());
    for (const auto& srv : fleet_.servers()) {
        base_demanded_.push_back(srv->demanded_work());
        base_delivered_.push_back(srv->delivered_work());
    }
}

FleetReport
ReportCollector::Finish()
{
    recorder_->Stop();

    FleetReport report;
    report.start = start_;
    report.end = fleet_.sim().Now();
    report.peak_power = power_series_.Max();
    report.mean_power = power_series_.MeanValue();
    report.energy_kwh = report.mean_power *
                        ToSeconds(report.end - report.start) / 3600.0 / 1000.0;
    report.outages = fleet_.outage_count();

    if (const telemetry::EventLog* log = fleet_.event_log()) {
        report.capping_episodes = log->CappingEpisodes();
        report.cap_starts = log->CountOf(telemetry::EventKind::kCapStart);
        report.cap_updates = log->CountOf(telemetry::EventKind::kCapUpdate);
        report.uncaps = log->CountOf(telemetry::EventKind::kUncap);
        report.alarms = log->CountOf(telemetry::EventKind::kAlarm);
    }

    struct ServiceAccumulator
    {
        std::size_t servers = 0;
        Watts power = 0.0;
    };
    std::map<workload::ServiceType, ServiceAccumulator> by_service;
    const SimTime now = fleet_.sim().Now();
    for (std::size_t i = 0; i < fleet_.servers().size(); ++i) {
        const auto& srv = fleet_.servers()[i];
        report.demanded_work += srv->demanded_work() - base_demanded_[i];
        report.delivered_work += srv->delivered_work() - base_delivered_[i];
        ServiceAccumulator& acc = by_service[srv->service()];
        ++acc.servers;
        acc.power += srv->PowerAt(now);
    }
    for (const auto& [service, acc] : by_service) {
        report.services.push_back(FleetReport::ServiceRow{
            service, acc.servers,
            acc.power / static_cast<double>(acc.servers)});
    }
    return report;
}

std::string
FleetReport::ToString() const
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(1);
    os << "=== fleet report (" << ToSeconds(end - start) / 60.0
       << " min simulated) ===\n";
    os << "power: peak " << peak_power / 1000.0 << " KW, mean "
       << mean_power / 1000.0 << " KW, energy ";
    os.precision(2);
    os << energy_kwh << " KWh\n";
    os << "safety: " << outages << " outages, " << alarms << " alarms\n";
    os << "capping: " << capping_episodes << " episodes (" << cap_starts
       << " starts, " << cap_updates << " updates, " << uncaps << " uncaps)\n";
    os << "work: " << WorkLossPercent() << "% lost to throttling/outages\n";
    for (const ServiceRow& row : services) {
        os.precision(1);
        os << "  " << workload::ServiceName(row.service) << ": " << row.servers
           << " servers, mean " << row.mean_power << " W each\n";
    }
    return os.str();
}

}  // namespace dynamo::fleet
