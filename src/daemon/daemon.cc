#include "daemon/daemon.h"

#include <csignal>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "core/api.h"
#include "core/controller_builder.h"
#include "fleet/spec_parser.h"
#include "workload/load_process.h"

namespace dynamo::daemon {

namespace {

volatile std::sig_atomic_t g_stop_requested = 0;

void HandleStopSignal(int)
{
    g_stop_requested = 1;
}

}  // namespace

// ---------------------------------------------------------------------------
// FleetLayout
// ---------------------------------------------------------------------------

FleetLayout::FleetLayout(fleet::FleetSpec s)
    : spec(std::move(s)), diurnal(spec.diurnal_amplitude)
{
    traffic.Add(&diurnal);
    traffic.Add(&scenario);
    traffic.Add(&balancer);

    switch (spec.scope) {
      case fleet::FleetScope::kRpp:
        root = power::BuildRpp("rpp0", spec.topology.rpp_rated,
                               spec.topology.rpp_rated);
        break;
      case fleet::FleetScope::kSb:
        root = power::BuildSbTree("sb0", spec.topology.rpps_per_sb,
                                  spec.topology);
        break;
      case fleet::FleetScope::kMsb:
        root = power::BuildMsbTree(spec.topology);
        break;
    }

    // Replicate fleet::Fleet::BuildServersFor byte-for-byte: one Rng
    // walk over every RPP in pre-order, same draw sequence per server.
    // Every daemon therefore derives identical server configs — the
    // shared-spec contract that replaces a discovery protocol.
    Rng rng(spec.seed);
    for (power::PowerDevice* rpp :
         root->DevicesAtLevel(power::DeviceLevel::kRpp)) {
        const std::vector<workload::ServiceType> services =
            fleet::AssignServices(spec.mix, spec.servers_per_rpp);

        if (spec.tor_switch_power > 0.0) {
            switches.push_back(
                std::make_unique<power::FixedLoad>(spec.tor_switch_power));
            rpp->AttachLoad(switches.back().get());
        }

        for (std::size_t i = 0; i < spec.servers_per_rpp; ++i) {
            server::SimServer::Config config;
            config.name = rpp->name() + "/s" + std::to_string(i);
            config.generation = rng.Bernoulli(spec.haswell_fraction)
                                    ? server::ServerGeneration::kHaswell2015
                                    : server::ServerGeneration::kWestmere2011;
            config.service = services[i];
            config.has_sensor = !rng.Bernoulli(spec.sensorless_fraction);
            config.turbo_enabled = spec.turbo_enabled;
            config.spec_override = spec.spec_override;
            config.seed = rng.NextU64();
            servers.push_back(std::make_unique<server::SimServer>(
                config, workload::LoadProcessParams::For(config.service),
                &traffic));
            rpp->AttachLoad(servers.back().get());
        }
    }
}

std::vector<server::SimServer*>
FleetLayout::ServersUnder(const std::string& device_name) const
{
    std::vector<server::SimServer*> result;
    power::PowerDevice* device = root->Find(device_name);
    if (device == nullptr) return result;
    device->ForEach([&](power::PowerDevice& d) {
        for (power::PowerLoad* load : d.loads()) {
            if (auto* srv = dynamic_cast<server::SimServer*>(load)) {
                result.push_back(srv);
            }
        }
    });
    return result;
}

power::PowerDevice&
FleetLayout::DeviceOrThrow(const std::string& device_name) const
{
    power::PowerDevice* device = root->Find(device_name);
    if (device == nullptr) {
        throw std::invalid_argument("no device named '" + device_name +
                                    "' in the fleet spec topology");
    }
    return *device;
}

// ---------------------------------------------------------------------------
// Daemon
// ---------------------------------------------------------------------------

Daemon::Daemon(Options options)
    : options_(std::move(options)),
      transport_(rpc::SocketTransport::Options{options_.epoch,
                                               std::chrono::milliseconds(1000)})
{
    fleet::FleetSpec spec = fleet::ParseFleetSpecString(options_.spec_text);
    layout_ = std::make_unique<FleetLayout>(std::move(spec));

    if (options_.device.empty()) {
        throw std::invalid_argument("daemon requires a --device to serve");
    }
    layout_->DeviceOrThrow(options_.device);  // fail fast on typos

    transport_.AttachMetrics(&metrics_);
    transport_.Listen(rpc::SocketAddress::Parse(options_.listen));
    for (const auto& [endpoint, address] : options_.routes) {
        transport_.AddRoute(endpoint, rpc::SocketAddress::Parse(address));
    }

    switch (options_.role) {
      case Role::kAgent: BuildAgentRole(); break;
      case Role::kLeaf: BuildLeafRole(); break;
      case Role::kUpper: BuildUpperRole(); break;
    }
    RegisterStatusEndpoint();
    start_ = std::chrono::steady_clock::now();
}

Daemon::~Daemon() = default;

void
Daemon::BuildAgentRole()
{
    const std::vector<server::SimServer*> mine =
        layout_->ServersUnder(options_.device);
    if (mine.empty()) {
        throw std::invalid_argument("no servers under device '" +
                                    options_.device + "'");
    }
    for (server::SimServer* srv : mine) {
        agents_.push_back(std::make_unique<core::DynamoAgent>(
            sim_, transport_, *srv,
            core::Deployment::AgentEndpoint(srv->name())));
        agents_.back()->AttachMetrics(&metrics_);
    }
    endpoint_ = "agentd:" + options_.device;
}

void
Daemon::BuildLeafRole()
{
    power::PowerDevice& device = layout_->DeviceOrThrow(options_.device);
    endpoint_ = core::Deployment::ControllerEndpoint(options_.device);

    core::ControllerBuilder builder(sim_, transport_);
    builder.Endpoint(endpoint_)
        .ForDevice(device)
        .LeafConfig(layout_->spec.deployment.leaf)
        .Telemetry(&metrics_, nullptr);
    for (server::SimServer* srv : layout_->ServersUnder(options_.device)) {
        builder.Agent(core::AgentInfoFor(*srv));
        if (!options_.agents_at.empty()) {
            transport_.AddRoute(core::Deployment::AgentEndpoint(srv->name()),
                                rpc::SocketAddress::Parse(options_.agents_at));
        }
    }
    leaf_ = builder.BuildLeaf();
    leaf_->Activate();
}

void
Daemon::BuildUpperRole()
{
    power::PowerDevice& device = layout_->DeviceOrThrow(options_.device);
    endpoint_ = core::Deployment::ControllerEndpoint(options_.device);

    core::ControllerBuilder builder(sim_, transport_);
    builder.Endpoint(endpoint_)
        .ForDevice(device)
        .UpperConfig(layout_->spec.deployment.upper)
        .Telemetry(&metrics_, nullptr);
    for (const auto& [child_device, address] : options_.children) {
        layout_->DeviceOrThrow(child_device);
        const std::string child =
            core::Deployment::ControllerEndpoint(child_device);
        builder.Child(child);
        transport_.AddRoute(child, rpc::SocketAddress::Parse(address));
    }
    upper_ = builder.BuildUpper();
    upper_->Activate();
}

void
Daemon::RegisterStatusEndpoint()
{
    transport_.Register(endpoint_ + ".status",
                        [this](const rpc::Payload& request) {
                            return HandleStatus(request);
                        });
}

rpc::Payload
Daemon::HandleStatus(const rpc::Payload& request)
{
    if (std::any_cast<api::StatusRequest>(&request) == nullptr) {
        api::StatusResult nack;
        nack.status = api::Status::Unimplemented("expected StatusRequest");
        nack.endpoint = endpoint_;
        return nack;
    }
    api::StatusResult result;
    result.status = api::Status::Ok();
    result.endpoint = endpoint_;
    if (leaf_ != nullptr) {
        result.health = core::HealthStateName(leaf_->health());
        result.cycles = leaf_->aggregations();
        result.caps_adopted = leaf_->caps_adopted();
        result.power = leaf_->last_aggregated_power();
        result.capping = leaf_->capping();
    } else if (upper_ != nullptr) {
        result.health = core::HealthStateName(upper_->health());
        result.cycles = upper_->aggregations();
        result.contracts_adopted = upper_->contracts_adopted();
        result.power = upper_->last_aggregated_power();
        result.capping = upper_->capping();
    } else {
        // Agent daemon: report liveness and the subtree's true power.
        result.health = "normal";
        std::uint64_t reads = 0;
        for (const auto& agent : agents_) reads += agent->reads_served();
        result.cycles = reads;
        result.power =
            layout_->DeviceOrThrow(options_.device).TotalPower(sim_.Now());
    }
    return result;
}

std::size_t
Daemon::Step()
{
    const std::size_t dispatched = transport_.PollOnce(options_.poll_budget_ms);
    const auto wall = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
    sim_.RunUntil(static_cast<SimTime>(wall));
    return dispatched;
}

void
Daemon::Run(std::int64_t run_for_ms)
{
    for (;;) {
        if (StopRequested()) return;
        Step();
        if (run_for_ms > 0) {
            const auto wall =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
            if (wall >= run_for_ms) return;
        }
    }
}

void
Daemon::InstallSignalHandlers()
{
    std::signal(SIGTERM, HandleStopSignal);
    std::signal(SIGINT, HandleStopSignal);
}

bool
Daemon::StopRequested()
{
    return g_stop_requested != 0;
}

// ---------------------------------------------------------------------------
// DaemonMain
// ---------------------------------------------------------------------------

namespace {

/** Split "key=value" (first '='); throws on missing separator. */
std::pair<std::string, std::string>
SplitKeyValue(const std::string& text, const char* flag)
{
    const std::size_t eq = text.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == text.size()) {
        throw std::invalid_argument(std::string(flag) +
                                    " expects KEY=VALUE, got \"" + text + "\"");
    }
    return {text.substr(0, eq), text.substr(eq + 1)};
}

void
PrintUsage(const char* binary_name, bool with_level)
{
    std::cerr
        << "usage: " << binary_name << " --spec FILE --device NAME"
        << " --listen ADDR" << (with_level ? " --level leaf|upper" : "")
        << " [options]\n"
           "  --spec FILE        fleet spec file (shared by all daemons)\n"
           "  --device NAME      device subtree to serve (e.g. sb0/rpp0)\n"
           "  --listen ADDR      unix:/path.sock or tcp:host:port\n"
           "  --route EP=ADDR    explicit route for one endpoint\n"
           "  --agents ADDR      (leaf) address serving this device's "
           "agents\n"
           "  --child DEV=ADDR   (upper) add child controller + route\n"
           "  --epoch N          fleet-spec epoch stamp (default 0)\n"
           "  --poll-ms N        poll budget per loop pass (default 10)\n"
           "  --run-for-ms N     exit after N wall ms (default: run until "
           "SIGTERM)\n";
}

}  // namespace

int
DaemonMain(int argc, char** argv, const char* binary_name,
           std::optional<Daemon::Role> fixed_role)
{
    Daemon::Options options;
    std::int64_t run_for_ms = 0;
    std::string spec_path;
    std::optional<Daemon::Role> role = fixed_role;
    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc) {
                    throw std::invalid_argument(arg + " needs a value");
                }
                return argv[++i];
            };
            if (arg == "--spec") {
                spec_path = next();
            } else if (arg == "--device") {
                options.device = next();
            } else if (arg == "--listen") {
                options.listen = next();
            } else if (arg == "--route") {
                options.routes.push_back(SplitKeyValue(next(), "--route"));
            } else if (arg == "--agents") {
                options.agents_at = next();
            } else if (arg == "--child") {
                options.children.push_back(SplitKeyValue(next(), "--child"));
            } else if (arg == "--epoch") {
                options.epoch = std::stoull(next());
            } else if (arg == "--poll-ms") {
                options.poll_budget_ms = std::stoi(next());
            } else if (arg == "--run-for-ms") {
                run_for_ms = std::stoll(next());
            } else if (arg == "--level" && !fixed_role.has_value()) {
                const std::string level = next();
                if (level == "leaf") {
                    role = Daemon::Role::kLeaf;
                } else if (level == "upper") {
                    role = Daemon::Role::kUpper;
                } else {
                    throw std::invalid_argument(
                        "--level must be leaf or upper, got \"" + level +
                        "\"");
                }
            } else if (arg == "--help" || arg == "-h") {
                PrintUsage(binary_name, !fixed_role.has_value());
                return 0;
            } else {
                throw std::invalid_argument("unknown flag " + arg);
            }
        }
        if (spec_path.empty() || options.listen.empty() ||
            options.device.empty() || !role.has_value()) {
            PrintUsage(binary_name, !fixed_role.has_value());
            return 2;
        }
        options.role = *role;

        std::ifstream in(spec_path);
        if (!in) {
            throw std::runtime_error("cannot open spec file: " + spec_path);
        }
        std::ostringstream text;
        text << in.rdbuf();
        options.spec_text = text.str();

        Daemon daemon(std::move(options));
        Daemon::InstallSignalHandlers();
        std::cerr << binary_name << ": serving " << daemon.controller_endpoint()
                  << " on " << daemon.transport().listen_address().ToString()
                  << "\n";
        daemon.Run(run_for_ms);
        return 0;
    } catch (const std::exception& e) {
        std::cerr << binary_name << ": error: " << e.what() << "\n";
        return 1;
    }
}

}  // namespace dynamo::daemon
