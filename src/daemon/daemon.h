/**
 * @file
 * Deployment-mode daemon harness: the piece that runs the *unchanged*
 * Agent / LeafController / UpperController classes as real processes
 * over SocketTransport (tools/dynamo_agentd, tools/dynamo_controllerd).
 *
 * Each daemon loads the same fleet spec and deterministically derives
 * the full fleet layout exactly as fleet::Fleet would — same topology
 * walk, same RNG draw order for per-server generation / sensor /
 * seed — then instantiates only the component it hosts:
 *
 *   - an **agent daemon** hosts the simulated servers of one leaf
 *     device and their DynamoAgents (in production the "server" is the
 *     host hardware; here the SimServer stands in for it);
 *   - a **leaf controller daemon** hosts one LeafController whose
 *     agent roster (endpoints, services, SLA floors) is derived from
 *     the shared spec, with pulls routed to the agent daemon;
 *   - an **upper controller daemon** hosts one UpperController whose
 *     children route to the leaf daemons.
 *
 * Because every daemon derives the layout from the same spec text, no
 * discovery protocol is needed: endpoint names are the deterministic
 * "agent:<server>" / "ctl:<device>" names the simulator uses, and
 * routing is explicit (--route / --agents / --child flags).
 *
 * The run loop bridges wall time onto the simulation clock: controllers
 * schedule their 3 s / 9 s cycles on `sim::Simulation` as always, and
 * the daemon advances the sim clock to elapsed wall milliseconds
 * between socket poll passes, so the same control logic that runs
 * simulated runs in real time.
 *
 * Each hosted controller also serves "<endpoint>.status" (an
 * api::StatusRequest -> api::StatusResult handler) so operators and
 * the multi-process integration test can observe health, capping, and
 * adoption counters without adding any surface to the controllers.
 */
#ifndef DYNAMO_DAEMON_DAEMON_H_
#define DYNAMO_DAEMON_DAEMON_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/agent.h"
#include "core/deployment.h"
#include "fleet/fleet.h"
#include "rpc/socket_transport.h"
#include "sim/simulation.h"
#include "telemetry/metrics.h"

namespace dynamo::daemon {

/**
 * The deterministically derived fleet layout: topology tree plus every
 * server, constructed with byte-identical configs to fleet::Fleet
 * (same Rng(seed) draw order). Daemons build the whole layout — it is
 * cheap relative to a process — and pick their subtree out of it.
 */
struct FleetLayout
{
    fleet::FleetSpec spec;
    std::unique_ptr<power::PowerDevice> root;
    std::vector<std::unique_ptr<server::SimServer>> servers;
    std::vector<std::unique_ptr<power::FixedLoad>> switches;

    // Traffic components wired exactly as fleet::Fleet wires them;
    // owned here so the servers' pointers stay valid.
    workload::DiurnalTraffic diurnal;
    workload::PiecewiseTraffic scenario;
    workload::ConstantTraffic balancer{1.0};
    workload::CompositeTraffic traffic;

    explicit FleetLayout(fleet::FleetSpec s);

    FleetLayout(const FleetLayout&) = delete;
    FleetLayout& operator=(const FleetLayout&) = delete;

    /** Servers attached under the named device subtree. */
    std::vector<server::SimServer*> ServersUnder(
        const std::string& device_name) const;

    /** Device by name; throws std::invalid_argument when unknown. */
    power::PowerDevice& DeviceOrThrow(const std::string& device_name) const;
};

/** One Dynamo deployment-mode process. */
class Daemon
{
  public:
    enum class Role { kAgent, kLeaf, kUpper };

    struct Options
    {
        Role role = Role::kAgent;

        /** Fleet spec text (the canonical contract shared by peers). */
        std::string spec_text;

        /** Device subtree this daemon serves ("sb0/rpp0", "sb0"). */
        std::string device;

        /** Listen address ("unix:/run/a.sock" / "tcp:127.0.0.1:7100"). */
        std::string listen;

        /** Explicit endpoint routes (endpoint -> address text). */
        std::vector<std::pair<std::string, std::string>> routes;

        /** Leaf: address serving every agent under `device`. */
        std::string agents_at;

        /** Upper: child device -> address of the leaf daemon. */
        std::vector<std::pair<std::string, std::string>> children;

        /** Fleet-spec epoch stamped into outgoing frames. */
        std::uint64_t epoch = 0;

        /** poll(2) budget per loop pass, ms (sim clock granularity). */
        int poll_budget_ms = 10;
    };

    /**
     * Build the daemon: derive the layout, bind the listen socket,
     * construct + activate the hosted component, register the status
     * endpoint. Throws on a bad spec, unknown device, or bind failure.
     */
    explicit Daemon(Options options);
    ~Daemon();

    Daemon(const Daemon&) = delete;
    Daemon& operator=(const Daemon&) = delete;

    /**
     * One loop pass: poll sockets, then advance the sim clock to the
     * wall-clock milliseconds elapsed since construction. Returns the
     * number of frames dispatched.
     */
    std::size_t Step();

    /**
     * Pump Step() until `run_for_ms` wall milliseconds have elapsed
     * (0 = until StopRequested(), i.e. SIGTERM/SIGINT after
     * InstallSignalHandlers).
     */
    void Run(std::int64_t run_for_ms = 0);

    /** Install SIGTERM/SIGINT handlers that make Run() return. */
    static void InstallSignalHandlers();

    /** True once a termination signal was received. */
    static bool StopRequested();

    rpc::SocketTransport& transport() { return transport_; }
    sim::Simulation& sim() { return sim_; }
    const FleetLayout& layout() const { return *layout_; }

    /** Hosted controller endpoint name ("" for agent daemons). */
    const std::string& controller_endpoint() const { return endpoint_; }

  private:
    void BuildAgentRole();
    void BuildLeafRole();
    void BuildUpperRole();
    void RegisterStatusEndpoint();
    rpc::Payload HandleStatus(const rpc::Payload& request);

    Options options_;
    sim::Simulation sim_;
    rpc::SocketTransport transport_;
    telemetry::MetricsRegistry metrics_;
    std::unique_ptr<FleetLayout> layout_;

    /** Hosted components (per role; the others stay empty). */
    std::vector<std::unique_ptr<core::DynamoAgent>> agents_;
    std::unique_ptr<core::LeafController> leaf_;
    std::unique_ptr<core::UpperController> upper_;

    std::string endpoint_;  // controller endpoint or "agentd:<device>"
    std::chrono::steady_clock::time_point start_;
};

/**
 * Shared main() body for the two daemon binaries: parse flags, build
 * the daemon, install signal handlers, run. `fixed_role` pins agentd;
 * controllerd passes nullopt and requires --level leaf|upper.
 * Returns the process exit code; prints usage/errors to stderr.
 */
int DaemonMain(int argc, char** argv, const char* binary_name,
               std::optional<Daemon::Role> fixed_role);

}  // namespace dynamo::daemon

#endif  // DYNAMO_DAEMON_DAEMON_H_
