/**
 * @file
 * RAPL (running average power limit) model.
 *
 * The Dynamo agent enforces server power caps through Intel RAPL
 * (via an MSR write or the node-manager IPMI API). Fig. 9 measures the
 * closed-loop behaviour: after a cap or uncap command is issued it
 * takes about two seconds for server power to settle at the new level
 * — the reason the leaf controller must sample slower than 2 s. We
 * model the settling as a first-order exponential toward
 * min(demand, limit) with a ~0.5 s time constant (≈98 % settled at
 * 2 s).
 */
#ifndef DYNAMO_SERVER_RAPL_H_
#define DYNAMO_SERVER_RAPL_H_

#include "common/units.h"

namespace dynamo::server {

/** Per-server power-limit actuator with first-order settling. */
class RaplModel
{
  public:
    /** @param settle_tau_s first-order time constant in seconds. */
    explicit RaplModel(double settle_tau_s = 0.5) : tau_s_(settle_tau_s) {}

    /** Install (or move) the power limit. Takes effect over ~4 tau. */
    void SetLimit(Watts limit) { has_limit_ = true; limit_ = limit; }

    /** Remove the power limit; power recovers toward demand. */
    void ClearLimit() { has_limit_ = false; }

    bool has_limit() const { return has_limit_; }

    /** Current limit; meaningful only when has_limit(). */
    Watts limit() const { return limit_; }

    /**
     * Advance to time `now` under demanded power `demanded` and return
     * the actual power drawn. Reads must be at non-decreasing times.
     */
    Watts Apply(Watts demanded, SimTime now);

    /** Actual power at the last Apply() call. */
    Watts actual() const { return actual_; }

  private:
    double tau_s_;
    bool has_limit_ = false;
    Watts limit_ = 0.0;
    Watts actual_ = 0.0;
    SimTime last_time_ = 0;
    bool started_ = false;
};

}  // namespace dynamo::server

#endif  // DYNAMO_SERVER_RAPL_H_
