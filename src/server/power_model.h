/**
 * @file
 * Server power-vs-utilization models.
 *
 * Fig. 1 of the paper plots measured power against CPU utilization for
 * two generations of Facebook web servers: a 2011 24-core Westmere
 * machine peaking near 200 W and a 2015 48-core Haswell machine
 * peaking near 350 W — peak power nearly doubled in four years, which
 * is the density trend motivating oversubscription. We model power as
 * idle + span * f(util) with a slightly convex f, and expose a Turbo
 * Boost mode that raises dynamic power (~+20 %) in exchange for higher
 * performance (~+13 % for Hadoop, per Section IV-B).
 */
#ifndef DYNAMO_SERVER_POWER_MODEL_H_
#define DYNAMO_SERVER_POWER_MODEL_H_

#include <string>

#include "common/units.h"

namespace dynamo::server {

/**
 * Hardware generation of a simulated server. kGpuTrain2024 models an
 * AI-training GPU node: far wider dynamic range than the Fig. 1 CPU
 * curves (idle ~350 W, peak ~1100 W), which is what makes synchronized
 * training surges the stress case for oversubscribed breakers.
 */
enum class ServerGeneration { kWestmere2011, kHaswell2015, kGpuTrain2024 };

/** Name of a generation ("westmere2011" / "haswell2015" / "gputrain2024"). */
const char* GenerationName(ServerGeneration generation);

/**
 * Parse a generation name; throws std::invalid_argument naming the
 * token and the accepted values on an unknown name.
 */
ServerGeneration ParseGeneration(const std::string& name);

/** Parameters of the power curve for one generation. */
struct ServerPowerSpec
{
    /** Power at zero utilization. */
    Watts idle = 95.0;

    /** Power at full utilization, Turbo off. */
    Watts peak = 205.0;

    /**
     * Curve mix: power = idle + span * (mix*u + (1-mix)*u^2). 1.0 is
     * fully linear; lower values bend the curve convex (the Haswell
     * part ramps harder at high utilization).
     */
    double curve_mix = 0.70;

    /** Multiplier on dynamic power when Turbo Boost is active. */
    double turbo_power_mult = 1.20;

    /** Multiplier on delivered performance when Turbo Boost is active. */
    double turbo_perf_mult = 1.13;

    /** Reference spec per generation (fitted to Fig. 1). */
    static ServerPowerSpec For(ServerGeneration generation);

    /** Peak power with Turbo active (the worst-case draw planners fear). */
    Watts TurboPeak() const { return idle + (peak - idle) * turbo_power_mult; }
};

/**
 * Demanded (unconstrained) power at `util` in [0, 1]. With `turbo`
 * set, dynamic power scales by the spec's turbo multiplier.
 */
Watts PowerAtUtil(const ServerPowerSpec& spec, double util, bool turbo = false);

/**
 * Inverse of PowerAtUtil: the utilization a given power corresponds
 * to (clamped into [0, 1]); used by the estimation model calibration.
 */
double UtilAtPower(const ServerPowerSpec& spec, Watts power, bool turbo = false);

}  // namespace dynamo::server

#endif  // DYNAMO_SERVER_POWER_MODEL_H_
