/**
 * @file
 * The simulated server: workload, power curve, RAPL actuator, sensor,
 * Turbo Boost, and performance accounting in one object.
 *
 * Servers advance lazily — all state has exact closed-form updates for
 * arbitrary time steps — so a 30 K-server characterization sweep needs
 * no per-server periodic events. Reads must use non-decreasing times.
 */
#ifndef DYNAMO_SERVER_SIM_SERVER_H_
#define DYNAMO_SERVER_SIM_SERVER_H_

#include <optional>
#include <string>

#include "common/rng.h"
#include "common/units.h"
#include "power/device.h"
#include "server/platform.h"
#include "server/power_model.h"
#include "server/rapl.h"
#include "server/sensor.h"
#include "workload/load_process.h"
#include "workload/perf_model.h"
#include "workload/service.h"

namespace dynamo {
class Archive;
}  // namespace dynamo

namespace dynamo::server {

/** One simulated server. Implements power::PowerLoad for device trees. */
class SimServer : public power::PowerLoad
{
  public:
    struct Config
    {
        std::string name = "srv";
        ServerGeneration generation = ServerGeneration::kHaswell2015;
        workload::ServiceType service = workload::ServiceType::kWeb;

        /** False for the small sensorless population (agent estimates). */
        bool has_sensor = true;

        /** Turbo Boost enabled in BIOS (Section IV-B experiments). */
        bool turbo_enabled = false;

        /** RAPL settle time constant, seconds (Fig. 9: ~2 s to settle). */
        double rapl_tau_s = 0.5;

        /** Seed for this server's private random stream. */
        std::uint64_t seed = 1;

        /**
         * Optional power-spec override (e.g. a search SKU whose Turbo
         * uplift differs from the stock generation specs). When unset,
         * ServerPowerSpec::For(generation) applies.
         */
        std::optional<ServerPowerSpec> spec_override;

        /**
         * RAPL access path. Defaults per generation: Westmere uses
         * direct MSR writes; Haswell exposes the node-manager API.
         */
        std::optional<RaplAccess> rapl_access;
    };

    /**
     * @param config   Static configuration.
     * @param params   Utilization process parameters (usually
     *                 LoadProcessParams::For(config.service)).
     * @param traffic  Optional shared traffic model (not owned).
     */
    SimServer(Config config, workload::LoadProcessParams params,
              const workload::TrafficModel* traffic = nullptr);

    const std::string& name() const { return config_.name; }
    workload::ServiceType service() const { return config_.service; }
    ServerGeneration generation() const { return config_.generation; }
    const ServerPowerSpec& spec() const { return spec_; }
    const Config& config() const { return config_; }
    bool has_sensor() const { return config_.has_sensor; }

    // --- power::PowerLoad ---

    /** Actual electrical draw at `now`; 0 while de-energized. */
    Watts PowerAt(SimTime now) override;

    bool Cappable() const override { return true; }

    void OnPowerLost(SimTime now) override;
    void OnPowerRestored(SimTime now) override;

    /** True while an upstream breaker trip has this server dark. */
    bool dark() const { return dark_; }

    // --- control surface (driven by the Dynamo agent) ---

    /**
     * Install a RAPL power limit. The platform layer quantizes the
     * value and (on the IPMI path) delays actuation; the power then
     * settles over ~2 s.
     */
    void SetPowerLimit(Watts limit, SimTime now);

    /** Remove the RAPL limit; power recovers over ~2 s. */
    void ClearPowerLimit(SimTime now);

    /** True once a cap command is accepted (even if still actuating). */
    bool capped() const
    {
        if (pending_ == PendingCommand::kSet) return true;
        if (pending_ == PendingCommand::kClear) return false;
        return rapl_.has_limit();
    }

    /** The commanded limit (quantized); meaningful when capped(). */
    Watts power_limit() const
    {
        return pending_ == PendingCommand::kSet ? pending_limit_ : rapl_.limit();
    }

    /** Platform (RAPL access path) this server exposes. */
    const PlatformSpec& platform() const { return platform_; }

    /** Enable/disable Turbo Boost at runtime (Section IV-B). */
    void set_turbo_enabled(bool on) { config_.turbo_enabled = on; }
    bool turbo_enabled() const { return config_.turbo_enabled; }

    // --- measurement paths used by the agent ---

    /** Sensor reading (true power + sensor noise); requires has_sensor(). */
    Watts SensorRead(SimTime now);

    /** Estimation-model reading from observed utilization. */
    Watts EstimateRead(SimTime now);

    /** The estimator, exposed for dynamic tuning against breaker data. */
    PowerEstimator& estimator() { return estimator_; }

    /** Power breakdown the agent can report (CPU / memory / other / loss). */
    struct Breakdown
    {
        Watts cpu;
        Watts memory;
        Watts other;
        Watts conversion_loss;
    };

    Breakdown BreakdownAt(SimTime now);

    // --- observability for experiments ---

    /** Demanded utilization (what the workload wants) at `now`. */
    double UtilAt(SimTime now);

    /** Unconstrained power demand at `now`. */
    Watts DemandedPowerAt(SimTime now);

    /** Instantaneous latency slowdown percent due to capping (Fig. 13). */
    double SlowdownPercentAt(SimTime now);

    /** Cumulative work the workload asked for (util-seconds x perf). */
    double demanded_work() const { return demanded_work_; }

    /** Cumulative work actually delivered under capping/outages. */
    double delivered_work() const { return delivered_work_; }

    /** The utilization process, for scenario modulation. */
    workload::LoadProcess& load() { return load_; }

    /**
     * Serialize the server's full dynamic state: workload position,
     * RAPL limit/settling, pending platform-delayed commands, outage
     * darkness, lazily-advanced caches, work accounting, and the
     * private RNG stream. Reads nothing through the lazy-advance path,
     * so snapshotting never perturbs the run.
     */
    void Snapshot(dynamo::Archive& ar) const;

  private:
    /** Advance all internal state to `now` and refresh the cache. */
    void AdvanceTo(SimTime now);

    /** Apply a platform-delayed cap/uncap that has become effective. */
    void ApplyPendingCommand(SimTime now);

    enum class PendingCommand { kNone, kSet, kClear };

    Config config_;
    ServerPowerSpec spec_;
    PlatformSpec platform_;
    workload::PerfModelParams perf_;
    Rng rng_;
    workload::LoadProcess load_;
    RaplModel rapl_;
    PowerSensor sensor_;
    PowerEstimator estimator_;

    PendingCommand pending_ = PendingCommand::kNone;
    Watts pending_limit_ = 0.0;
    SimTime pending_effective_ = 0;

    bool dark_ = false;
    SimTime last_time_ = -1;
    double cached_util_ = 0.0;
    Watts cached_demand_ = 0.0;
    Watts cached_actual_ = 0.0;
    double demanded_work_ = 0.0;
    double delivered_work_ = 0.0;
};

}  // namespace dynamo::server

#endif  // DYNAMO_SERVER_SIM_SERVER_H_
