#include "server/rapl.h"

#include <algorithm>
#include <cmath>

namespace dynamo::server {

Watts
RaplModel::Apply(Watts demanded, SimTime now)
{
    const Watts target = has_limit_ ? std::min(demanded, limit_) : demanded;
    if (!started_) {
        started_ = true;
        last_time_ = now;
        actual_ = target;
        return actual_;
    }
    const double dt_s = ToSeconds(std::max<SimTime>(0, now - last_time_));
    last_time_ = std::max(last_time_, now);
    const double blend = 1.0 - std::exp(-dt_s / tau_s_);
    actual_ += (target - actual_) * blend;
    return actual_;
}

}  // namespace dynamo::server
