#include "server/platform.h"

namespace dynamo::server {

const char*
RaplAccessName(RaplAccess access)
{
    switch (access) {
      case RaplAccess::kMsr: return "msr";
      case RaplAccess::kIpmiNodeManager: return "ipmi-nm";
    }
    return "?";
}

PlatformSpec
PlatformSpec::For(RaplAccess access)
{
    switch (access) {
      case RaplAccess::kMsr:
        // Direct MSR write: effectively instantaneous, 1/8 W units.
        return PlatformSpec{RaplAccess::kMsr, 0, 0.125};
      case RaplAccess::kIpmiNodeManager:
        // BMC round-trip plus node-manager policy programming: a few
        // hundred milliseconds, whole-watt granularity.
        return PlatformSpec{RaplAccess::kIpmiNodeManager, 250, 1.0};
    }
    return PlatformSpec{};
}

}  // namespace dynamo::server
