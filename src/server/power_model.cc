#include "server/power_model.h"

#include <algorithm>
#include <cmath>

#include "common/names.h"

namespace dynamo::server {
namespace {

constexpr NameEntry<ServerGeneration> kGenerationNames[] = {
    {ServerGeneration::kWestmere2011, "westmere2011"},
    {ServerGeneration::kHaswell2015, "haswell2015"},
    {ServerGeneration::kGpuTrain2024, "gputrain2024"},
};

}  // namespace

const char*
GenerationName(ServerGeneration generation)
{
    return NameOf(kGenerationNames, generation);
}

ServerGeneration
ParseGeneration(const std::string& name)
{
    return ParseName(kGenerationNames, "server generation", name);
}

ServerPowerSpec
ServerPowerSpec::For(ServerGeneration generation)
{
    switch (generation) {
      case ServerGeneration::kWestmere2011:
        // 24-core Westmere web server, measured with a Yokogawa meter.
        return ServerPowerSpec{92.0, 204.0, 0.72, 1.18, 1.10};
      case ServerGeneration::kHaswell2015:
        // 48-core Haswell web server with an on-board power sensor.
        return ServerPowerSpec{105.0, 345.0, 0.62, 1.20, 1.13};
      case ServerGeneration::kGpuTrain2024:
        // 8-GPU training node: HBM + accelerators idle high and the
        // all-reduce-synchronized compute phases swing ~750 W, a 3x
        // wider dynamic span than the Haswell part. Turbo headroom is
        // thinner (clocks already near thermal limits).
        return ServerPowerSpec{350.0, 1100.0, 0.55, 1.15, 1.08};
    }
    return ServerPowerSpec{};
}

Watts
PowerAtUtil(const ServerPowerSpec& spec, double util, bool turbo)
{
    util = std::clamp(util, 0.0, 1.0);
    const double shaped =
        spec.curve_mix * util + (1.0 - spec.curve_mix) * util * util;
    double span = spec.peak - spec.idle;
    if (turbo) span *= spec.turbo_power_mult;
    return spec.idle + span * shaped;
}

double
UtilAtPower(const ServerPowerSpec& spec, Watts power, bool turbo)
{
    double span = spec.peak - spec.idle;
    if (turbo) span *= spec.turbo_power_mult;
    if (span <= 0.0) return 0.0;
    const double shaped = std::clamp((power - spec.idle) / span, 0.0, 1.0);
    // Solve mix*u + (1-mix)*u^2 = shaped for u in [0, 1].
    const double a = 1.0 - spec.curve_mix;
    const double b = spec.curve_mix;
    if (a < 1e-12) return std::clamp(shaped / b, 0.0, 1.0);
    const double disc = b * b + 4.0 * a * shaped;
    const double u = (-b + std::sqrt(std::max(0.0, disc))) / (2.0 * a);
    return std::clamp(u, 0.0, 1.0);
}

}  // namespace dynamo::server
