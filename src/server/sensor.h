/**
 * @file
 * Power measurement paths.
 *
 * Nearly all Facebook servers from 2011 on carry an on-board power
 * sensor the agent reads through the sensor firmware; for the small
 * sensorless population, the agent estimates power on-the-fly from
 * system statistics using a model calibrated once against a Yokogawa
 * meter (Section III-B). We model both: an accurate-but-noisy sensor,
 * and a utilization-driven estimator whose calibration can be biased
 * to exercise the validation/tuning loop the paper describes.
 */
#ifndef DYNAMO_SERVER_SENSOR_H_
#define DYNAMO_SERVER_SENSOR_H_

#include "common/rng.h"
#include "common/units.h"
#include "server/power_model.h"

namespace dynamo::server {

/** On-board power sensor: true power plus small multiplicative noise. */
class PowerSensor
{
  public:
    /** @param noise_frac 1-sigma relative reading noise (default 0.5 %). */
    explicit PowerSensor(double noise_frac = 0.005) : noise_frac_(noise_frac) {}

    /** One reading of `true_power`. */
    Watts Read(Watts true_power, Rng& rng) const
    {
        return true_power * (1.0 + rng.Normal(0.0, noise_frac_));
    }

    double noise_frac() const { return noise_frac_; }

  private:
    double noise_frac_;
};

/**
 * Model-based power estimator for sensorless servers: maps observed
 * CPU utilization through a calibrated power curve. `bias_frac`
 * captures calibration drift; `noise_frac` the residual model error.
 */
class PowerEstimator
{
  public:
    PowerEstimator(ServerPowerSpec calibrated_spec, double bias_frac = 0.0,
                   double noise_frac = 0.04)
        : spec_(calibrated_spec), bias_frac_(bias_frac), noise_frac_(noise_frac)
    {
    }

    /** Estimate power from an observed utilization sample. */
    Watts Estimate(double util, Rng& rng) const
    {
        const Watts model = PowerAtUtil(spec_, util);
        return model * (1.0 + bias_frac_ + rng.Normal(0.0, noise_frac_));
    }

    /**
     * Dynamic re-calibration against a trusted aggregate reading, per
     * the paper's lesson "use the (coarse-grained) power readings from
     * the power breaker to validate and dynamically tune the server
     * power estimation": nudges the bias toward making the estimate
     * match the reference.
     */
    void Tune(Watts estimated_aggregate, Watts reference_aggregate,
              double gain = 0.5)
    {
        if (estimated_aggregate <= 0.0 || reference_aggregate <= 0.0) return;
        const double ratio = reference_aggregate / estimated_aggregate;
        bias_frac_ = (1.0 + bias_frac_) * (1.0 + gain * (ratio - 1.0)) - 1.0;
    }

    double bias_frac() const { return bias_frac_; }

    /**
     * Force the model bias (estimator-drift scenarios: an uncalibrated
     * model walks away from the true curve until Tune() pulls it back).
     */
    void set_bias_frac(double bias_frac) { bias_frac_ = bias_frac; }

  private:
    ServerPowerSpec spec_;
    double bias_frac_;
    double noise_frac_;
};

}  // namespace dynamo::server

#endif  // DYNAMO_SERVER_SENSOR_H_
