#include "server/sensor.h"

// Header-only implementations; this translation unit exists so the
// header stays exercised by a dedicated compile and future out-of-line
// growth has a home.
