#include "server/sim_server.h"

#include <algorithm>

#include "common/archive.h"

namespace dynamo::server {

SimServer::SimServer(Config config, workload::LoadProcessParams params,
                     const workload::TrafficModel* traffic)
    : config_(std::move(config)),
      spec_(config_.spec_override.value_or(
          ServerPowerSpec::For(config_.generation))),
      platform_(PlatformSpec::For(config_.rapl_access.value_or(
          config_.generation == ServerGeneration::kWestmere2011
              ? RaplAccess::kMsr
              : RaplAccess::kIpmiNodeManager))),
      perf_(workload::PerfModelParams::For(config_.service)),
      rng_(config_.seed),
      load_(params, rng_.Split(0x10ad), traffic),
      rapl_(config_.rapl_tau_s),
      sensor_(),
      estimator_(spec_)
{
    // Anchor the lazy clock at t=0 so the first external read accrues
    // work over a well-defined interval.
    AdvanceTo(0);
}

void
SimServer::ApplyPendingCommand(SimTime now)
{
    if (pending_ == PendingCommand::kNone || now < pending_effective_) return;
    if (pending_ == PendingCommand::kSet) {
        rapl_.SetLimit(pending_limit_);
    } else {
        rapl_.ClearLimit();
    }
    pending_ = PendingCommand::kNone;
}

void
SimServer::AdvanceTo(SimTime now)
{
    if (now <= last_time_ && last_time_ >= 0) return;
    ApplyPendingCommand(now);
    const SimTime prev = last_time_;
    last_time_ = now;

    cached_util_ = load_.UtilAt(now);
    if (dark_) {
        cached_demand_ = 0.0;
        cached_actual_ = 0.0;
        // Demanded work keeps accruing while dark: the outage costs it.
        if (prev >= 0) {
            const double dt_s = ToSeconds(now - prev);
            demanded_work_ +=
                cached_util_ * dt_s *
                (config_.turbo_enabled ? spec_.turbo_perf_mult : 1.0);
        }
        return;
    }

    cached_demand_ = PowerAtUtil(spec_, cached_util_, config_.turbo_enabled);
    cached_actual_ = rapl_.Apply(cached_demand_, now);

    if (prev >= 0) {
        const double dt_s = ToSeconds(now - prev);
        const double perf_mult =
            config_.turbo_enabled ? spec_.turbo_perf_mult : 1.0;
        const double demanded_rate = cached_util_ * perf_mult;
        const double reduction =
            cached_demand_ > 0.0
                ? std::max(0.0, 1.0 - cached_actual_ / cached_demand_)
                : 0.0;
        const double throttle = workload::ThrottleFactor(perf_, reduction);
        demanded_work_ += demanded_rate * dt_s;
        delivered_work_ += demanded_rate * throttle * dt_s;
    }
}

Watts
SimServer::PowerAt(SimTime now)
{
    AdvanceTo(now);
    return cached_actual_;
}

void
SimServer::OnPowerLost(SimTime now)
{
    AdvanceTo(now);
    dark_ = true;
    cached_demand_ = 0.0;
    cached_actual_ = 0.0;
}

void
SimServer::OnPowerRestored(SimTime now)
{
    AdvanceTo(now);
    dark_ = false;
}

void
SimServer::SetPowerLimit(Watts limit, SimTime now)
{
    AdvanceTo(now);
    const Watts quantized = platform_.Quantize(limit);
    if (platform_.actuation_delay_ms <= 0) {
        rapl_.SetLimit(quantized);
        pending_ = PendingCommand::kNone;
        return;
    }
    pending_ = PendingCommand::kSet;
    pending_limit_ = quantized;
    pending_effective_ = now + platform_.actuation_delay_ms;
}

void
SimServer::ClearPowerLimit(SimTime now)
{
    AdvanceTo(now);
    if (platform_.actuation_delay_ms <= 0) {
        rapl_.ClearLimit();
        pending_ = PendingCommand::kNone;
        return;
    }
    pending_ = PendingCommand::kClear;
    pending_effective_ = now + platform_.actuation_delay_ms;
}

Watts
SimServer::SensorRead(SimTime now)
{
    AdvanceTo(now);
    return sensor_.Read(cached_actual_, rng_);
}

Watts
SimServer::EstimateRead(SimTime now)
{
    AdvanceTo(now);
    return estimator_.Estimate(cached_util_, rng_);
}

SimServer::Breakdown
SimServer::BreakdownAt(SimTime now)
{
    AdvanceTo(now);
    // Synthetic but stable decomposition: the conversion loss tracks
    // total draw; the CPU share grows with utilization.
    const Watts total = cached_actual_;
    const Watts loss = total * 0.06;
    const Watts usable = total - loss;
    const double cpu_share = 0.35 + 0.35 * cached_util_;
    const Watts cpu = usable * cpu_share;
    const Watts memory = usable * 0.18;
    return Breakdown{cpu, memory, usable - cpu - memory, loss};
}

double
SimServer::UtilAt(SimTime now)
{
    AdvanceTo(now);
    return cached_util_;
}

Watts
SimServer::DemandedPowerAt(SimTime now)
{
    AdvanceTo(now);
    return cached_demand_;
}

double
SimServer::SlowdownPercentAt(SimTime now)
{
    AdvanceTo(now);
    if (cached_demand_ <= 0.0) return 0.0;
    const double reduction_pct =
        std::max(0.0, 1.0 - cached_actual_ / cached_demand_) * 100.0;
    return workload::SlowdownPercent(perf_, reduction_pct);
}

void
SimServer::Snapshot(dynamo::Archive& ar) const
{
    ar.Str(config_.name);
    ar.Bool(config_.turbo_enabled);
    load_.Snapshot(ar);
    // RAPL actuator: limit plus the settled output (the settling
    // trajectory is fully determined by `actual` and subsequent reads).
    ar.Bool(rapl_.has_limit());
    ar.F64(rapl_.limit());
    ar.F64(rapl_.actual());
    ar.U8(static_cast<std::uint8_t>(pending_));
    ar.F64(pending_limit_);
    ar.I64(pending_effective_);
    ar.Bool(dark_);
    ar.I64(last_time_);
    ar.F64(cached_util_);
    ar.F64(cached_demand_);
    ar.F64(cached_actual_);
    ar.F64(demanded_work_);
    ar.F64(delivered_work_);
    ar.F64(estimator_.bias_frac());
    for (const std::uint64_t w : rng_.state()) ar.U64(w);
    ar.U64(rng_.draws());
}

}  // namespace dynamo::server
