/**
 * @file
 * Platform-specific RAPL access paths.
 *
 * "Communicating with RAPL is platform-specific — we either update a
 * machine status register (MSR) directly or, when available, call the
 * API provided by the on-board node manager through IPMI." Dynamo's
 * lesson is to keep the control logic platform-agnostic behind a thin
 * platform layer; we model the two access paths' observable
 * differences: the MSR write is immediate and fine-grained (RAPL's
 * 1/8 W units), while the IPMI/node-manager path quantizes to whole
 * watts and takes an extra fraction of a second to actuate.
 */
#ifndef DYNAMO_SERVER_PLATFORM_H_
#define DYNAMO_SERVER_PLATFORM_H_

#include <cmath>

#include "common/units.h"

namespace dynamo::server {

/** How the agent reaches the RAPL power-limit controls. */
enum class RaplAccess {
    kMsr,             ///< Direct MSR write (older platforms).
    kIpmiNodeManager  ///< Node-manager API over IPMI (newer platforms).
};

/** Name of an access path ("msr" / "ipmi-nm"). */
const char* RaplAccessName(RaplAccess access);

/** Observable properties of one access path. */
struct PlatformSpec
{
    RaplAccess access = RaplAccess::kMsr;

    /** Delay between the agent's command and the limit taking hold. */
    SimTime actuation_delay_ms = 0;

    /** Power-limit granularity in watts (commands are rounded to it). */
    Watts limit_quantum = 0.125;

    /** Reference spec for each access path. */
    static PlatformSpec For(RaplAccess access);

    /** Quantize a requested limit to this platform's granularity. */
    Watts Quantize(Watts limit) const
    {
        if (limit_quantum <= 0.0) return limit;
        return std::round(limit / limit_quantum) * limit_quantum;
    }
};

}  // namespace dynamo::server

#endif  // DYNAMO_SERVER_PLATFORM_H_
