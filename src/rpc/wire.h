/**
 * @file
 * Canonical wire serialization for the `dynamo::api` control plane.
 *
 * Production Dynamo speaks Thrift between daemons; this repo's
 * deployment mode (SocketTransport + dynamo_agentd/dynamo_controllerd)
 * needs the same property Thrift provides — a versioned, self-framing,
 * corruption-detecting byte format — built on the canonical-bytes
 * guarantees of common/archive.h:
 *
 *   - every api message type has exactly ONE byte representation
 *     (fixed little-endian widths, length-prefixed strings), so
 *     serialize→parse→serialize is a byte-identical fixed point,
 *     mirroring the fleet-spec round-trip invariant;
 *   - every frame is integrity-checked: a trailing FNV-1a digest over
 *     the frame body catches bit flips, and explicit length fields
 *     catch truncation. A torn, short, or corrupted frame decodes to a
 *     thrown WireError naming the byte offset and what failed — never
 *     to UB or a silently wrong message.
 *
 * Frame layout (all integers little-endian):
 *
 *   offset  size  field
 *   0       4     magic "DYNW" (0x57 0x4e 0x59 0x44 on the wire)
 *   4       4     frame_len: total frame size in bytes, magic included
 *   8       4     api version (kWireVersion; currently 1)
 *   12      1     message type (MessageType)
 *   13      1     frame kind (FrameKind: request / response / error)
 *   14      8     epoch (fleet-spec epoch observed by the sender)
 *   22      8     call id (pairs responses with requests on one conn)
 *   30      8+n   target: length-prefixed endpoint name (requests),
 *                 empty for responses; error reason for error frames
 *   ...     8+m   payload: length-prefixed encoded api message body
 *   end-8   8     FNV-1a digest of bytes [0, end-8)
 *
 * `frame_len` makes the format self-framing on a byte stream: a
 * FrameReader needs only the first 8 bytes to know how much to wait
 * for, and a length exceeding kMaxFrameBytes (or a bad magic) marks
 * the connection poisoned rather than waiting forever on garbage.
 */
#ifndef DYNAMO_RPC_WIRE_H_
#define DYNAMO_RPC_WIRE_H_

#include <any>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace dynamo::rpc::wire {

/** Wire protocol version; bumped on any frame- or body-layout change. */
inline constexpr std::uint32_t kWireVersion = 1;

/** "DYNW" read as a little-endian u32. */
inline constexpr std::uint32_t kWireMagic = 0x574e5944u;

/**
 * Upper bound on a single frame. Control-plane messages are tiny
 * (largest is a PowerReadResult, well under 1 KiB); anything larger is
 * a corrupted length field or a stray writer, and the reader reports
 * it instead of buffering unboundedly.
 */
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

/** Size of the fixed-width prefix through call_id (before `target`). */
inline constexpr std::size_t kFrameFixedHeaderBytes = 30;

/** Wire tag for each api message type. Values are wire format — append
 *  only, never renumber. */
enum class MessageType : std::uint8_t {
    kNone = 0,  // error frames carry no body
    kPowerReadRequest = 1,
    kPowerReadResult = 2,
    kCapRequest = 3,
    kCapResult = 4,
    kContractUpdate = 5,
    kTuneEstimate = 6,
    kHealthProbe = 7,
    kHealthResult = 8,
    kStatusRequest = 9,
    kStatusResult = 10,
};

/** Readable name for diagnostics ("PowerReadResult", ...). */
const char* MessageTypeName(MessageType type);

/** Role of a frame on the stream. Values are wire format. */
enum class FrameKind : std::uint8_t {
    kRequest = 0,
    kResponse = 1,

    /** The peer could not serve the paired request; `target` holds the
     *  reason string delivered to the caller's ErrorCallback. */
    kError = 2,
};

/**
 * Decode-side failure: truncated, corrupted, oversized, or
 * unrecognized bytes. `offset` is the byte position within the frame
 * (or stream buffer) where decoding failed.
 */
class WireError : public std::runtime_error
{
  public:
    WireError(std::string what, std::size_t offset)
        : std::runtime_error("wire: " + what + " (at byte offset " +
                             std::to_string(offset) + ")"),
          offset_(offset)
    {
    }

    std::size_t offset() const { return offset_; }

  private:
    std::size_t offset_ = 0;
};

/** One decoded frame. */
struct Frame
{
    FrameKind kind = FrameKind::kRequest;
    MessageType type = MessageType::kNone;

    /** Fleet-spec epoch the sender observed (0 = unversioned). */
    std::uint64_t epoch = 0;

    /** Pairs a response/error with its request on one connection. */
    std::uint64_t call_id = 0;

    /** Endpoint name (requests) / error reason (error frames). */
    std::string target;

    /** Encoded message body (EncodeBody output). */
    std::string payload;
};

// ---------------------------------------------------------------------------
// Message body codec
// ---------------------------------------------------------------------------

/**
 * Classify a transport payload (std::any holding one api struct).
 * Throws WireError for types outside the api surface — the wire layer
 * must refuse what it cannot re-materialize on the far side.
 */
MessageType TypeOf(const std::any& message);

/** Serialize one api message to canonical body bytes. */
std::string EncodeBody(const std::any& message);

/**
 * Parse canonical body bytes back into the api struct for `type`.
 * Throws WireError on truncation, trailing garbage, or out-of-range
 * enum values.
 */
std::any DecodeBody(MessageType type, std::string_view body);

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

/** Serialize a frame, including header, lengths, and digest. */
std::string EncodeFrame(const Frame& frame);

/**
 * Decode exactly one complete frame from `bytes` (which must be
 * exactly one frame, as cut by FrameReader). Verifies magic, version,
 * length consistency, enum ranges, and the trailing digest; throws
 * WireError naming the first check that failed and the offset.
 */
Frame DecodeFrame(std::string_view bytes);

/**
 * Incremental stream cutter: feed arbitrary byte chunks as they
 * arrive off a socket; complete frames become available in order.
 *
 * The reader validates magic and frame_len as soon as the first 8
 * bytes of a frame are buffered, so a poisoned stream (bad magic,
 * absurd length) is detected without waiting for more bytes; after a
 * throw the reader is permanently poisoned and the connection must be
 * dropped (stream sync cannot be re-established mid-garbage).
 */
class FrameReader
{
  public:
    /** Append raw bytes from the stream. Throws WireError on a bad
     *  magic or oversized/undersized frame length. */
    void Feed(std::string_view bytes);

    /** True when at least one complete frame is buffered. */
    bool HasFrame() const;

    /** Pop and decode the next complete frame (HasFrame() must be
     *  true). Throws WireError if the frame fails validation. */
    Frame Next();

    /** Bytes consumed from the stream so far (diagnostics). */
    std::uint64_t bytes_consumed() const { return consumed_; }

    bool poisoned() const { return poisoned_; }

  private:
    /** Validate the buffered header prefix; throws when poisoned. */
    void CheckHeader();

    std::string buffer_;
    std::uint64_t consumed_ = 0;
    bool poisoned_ = false;
};

}  // namespace dynamo::rpc::wire

#endif  // DYNAMO_RPC_WIRE_H_
