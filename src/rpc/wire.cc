#include "rpc/wire.h"

#include <utility>

#include "common/archive.h"
#include "core/api.h"

namespace dynamo::rpc::wire {

namespace {

// --- body encode helpers ---------------------------------------------------

void PutStatus(Archive& ar, const api::Status& s)
{
    ar.U8(static_cast<std::uint8_t>(s.code));
    ar.Bool(s.retriable);
    ar.Str(s.detail);
}

void PutOptWatts(Archive& ar, const std::optional<Watts>& w)
{
    ar.Bool(w.has_value());
    ar.F64(w.has_value() ? *w : 0.0);
}

// --- body decode helpers ---------------------------------------------------
//
// ArchiveReader throws std::runtime_error with the offset on
// truncation; Get* additionally range-check enums, and DecodeBody
// wraps everything in WireError so callers see one exception type.

api::Status GetStatus(ArchiveReader& r)
{
    api::Status s;
    const std::uint8_t code = r.U8();
    if (code > static_cast<std::uint8_t>(api::StatusCode::kUnimplemented)) {
        throw WireError("status code " + std::to_string(code) +
                            " out of range",
                        r.pos() - 1);
    }
    s.code = static_cast<api::StatusCode>(code);
    s.retriable = r.Bool();
    s.detail = r.Str();
    return s;
}

std::optional<Watts> GetOptWatts(ArchiveReader& r)
{
    const bool has = r.Bool();
    const Watts w = r.F64();  // always present, keeps the layout fixed-width
    if (!has) return std::nullopt;
    return w;
}

workload::ServiceType GetService(ArchiveReader& r)
{
    const std::uint8_t v = r.U8();
    if (v >= workload::kAllServices.size()) {
        throw WireError("service type " + std::to_string(v) + " out of range",
                        r.pos() - 1);
    }
    return static_cast<workload::ServiceType>(v);
}

// --- per-type body codecs --------------------------------------------------

void EncodePowerReadResult(Archive& ar, const api::PowerReadResult& m)
{
    PutStatus(ar, m.status);
    ar.Str(m.source);
    ar.F64(m.power);
    ar.Bool(m.estimated);
    ar.U8(static_cast<std::uint8_t>(m.service));
    ar.Bool(m.capped);
    ar.F64(m.power_limit);
    ar.F64(m.cpu_power);
    ar.F64(m.memory_power);
    ar.F64(m.other_power);
    ar.F64(m.conversion_loss);
    ar.F64(m.quota);
    ar.F64(m.floor);
    PutOptWatts(ar, m.contract);
}

api::PowerReadResult DecodePowerReadResult(ArchiveReader& r)
{
    api::PowerReadResult m;
    m.status = GetStatus(r);
    m.source = r.Str();
    m.power = r.F64();
    m.estimated = r.Bool();
    m.service = GetService(r);
    m.capped = r.Bool();
    m.power_limit = r.F64();
    m.cpu_power = r.F64();
    m.memory_power = r.F64();
    m.other_power = r.F64();
    m.conversion_loss = r.F64();
    m.quota = r.F64();
    m.floor = r.F64();
    m.contract = GetOptWatts(r);
    return m;
}

void EncodeStatusResult(Archive& ar, const api::StatusResult& m)
{
    PutStatus(ar, m.status);
    ar.Str(m.endpoint);
    ar.Str(m.health);
    ar.U64(m.cycles);
    ar.U64(m.caps_adopted);
    ar.U64(m.contracts_adopted);
    ar.F64(m.power);
    ar.Bool(m.capping);
}

api::StatusResult DecodeStatusResult(ArchiveReader& r)
{
    api::StatusResult m;
    m.status = GetStatus(r);
    m.endpoint = r.Str();
    m.health = r.Str();
    m.cycles = r.U64();
    m.caps_adopted = r.U64();
    m.contracts_adopted = r.U64();
    m.power = r.F64();
    m.capping = r.Bool();
    return m;
}

}  // namespace

const char*
MessageTypeName(MessageType type)
{
    switch (type) {
      case MessageType::kNone: return "None";
      case MessageType::kPowerReadRequest: return "PowerReadRequest";
      case MessageType::kPowerReadResult: return "PowerReadResult";
      case MessageType::kCapRequest: return "CapRequest";
      case MessageType::kCapResult: return "CapResult";
      case MessageType::kContractUpdate: return "ContractUpdate";
      case MessageType::kTuneEstimate: return "TuneEstimate";
      case MessageType::kHealthProbe: return "HealthProbe";
      case MessageType::kHealthResult: return "HealthResult";
      case MessageType::kStatusRequest: return "StatusRequest";
      case MessageType::kStatusResult: return "StatusResult";
    }
    return "?";
}

MessageType
TypeOf(const std::any& message)
{
    if (message.type() == typeid(api::PowerReadRequest)) {
        return MessageType::kPowerReadRequest;
    }
    if (message.type() == typeid(api::PowerReadResult)) {
        return MessageType::kPowerReadResult;
    }
    if (message.type() == typeid(api::CapRequest)) {
        return MessageType::kCapRequest;
    }
    if (message.type() == typeid(api::CapResult)) {
        return MessageType::kCapResult;
    }
    if (message.type() == typeid(api::ContractUpdate)) {
        return MessageType::kContractUpdate;
    }
    if (message.type() == typeid(api::TuneEstimate)) {
        return MessageType::kTuneEstimate;
    }
    if (message.type() == typeid(api::HealthProbe)) {
        return MessageType::kHealthProbe;
    }
    if (message.type() == typeid(api::HealthResult)) {
        return MessageType::kHealthResult;
    }
    if (message.type() == typeid(api::StatusRequest)) {
        return MessageType::kStatusRequest;
    }
    if (message.type() == typeid(api::StatusResult)) {
        return MessageType::kStatusResult;
    }
    throw WireError(std::string("unserializable payload type ") +
                        message.type().name(),
                    0);
}

std::string
EncodeBody(const std::any& message)
{
    Archive ar;
    switch (TypeOf(message)) {
      case MessageType::kNone:
        break;
      case MessageType::kPowerReadRequest:
        break;  // empty body
      case MessageType::kPowerReadResult:
        EncodePowerReadResult(ar,
                              std::any_cast<const api::PowerReadResult&>(message));
        break;
      case MessageType::kCapRequest:
        PutOptWatts(ar, std::any_cast<const api::CapRequest&>(message).limit);
        break;
      case MessageType::kCapResult:
        PutStatus(ar, std::any_cast<const api::CapResult&>(message).status);
        break;
      case MessageType::kContractUpdate: {
        const auto& m = std::any_cast<const api::ContractUpdate&>(message);
        PutOptWatts(ar, m.limit);
        ar.U64(m.span_id);
        ar.U64(m.spec_epoch);
        break;
      }
      case MessageType::kTuneEstimate:
        ar.F64(std::any_cast<const api::TuneEstimate&>(message).reference_ratio);
        break;
      case MessageType::kHealthProbe:
        break;  // empty body
      case MessageType::kHealthResult:
        PutStatus(ar, std::any_cast<const api::HealthResult&>(message).status);
        break;
      case MessageType::kStatusRequest:
        break;  // empty body
      case MessageType::kStatusResult:
        EncodeStatusResult(ar, std::any_cast<const api::StatusResult&>(message));
        break;
    }
    return ar.bytes();
}

std::any
DecodeBody(MessageType type, std::string_view body)
{
    ArchiveReader r(body);
    std::any message;
    try {
        switch (type) {
          case MessageType::kNone:
            break;
          case MessageType::kPowerReadRequest:
            message = api::PowerReadRequest{};
            break;
          case MessageType::kPowerReadResult:
            message = DecodePowerReadResult(r);
            break;
          case MessageType::kCapRequest:
            message = api::CapRequest{GetOptWatts(r)};
            break;
          case MessageType::kCapResult:
            message = api::CapResult{GetStatus(r)};
            break;
          case MessageType::kContractUpdate: {
            api::ContractUpdate m;
            m.limit = GetOptWatts(r);
            m.span_id = r.U64();
            m.spec_epoch = r.U64();
            message = std::move(m);
            break;
          }
          case MessageType::kTuneEstimate:
            message = api::TuneEstimate{r.F64()};
            break;
          case MessageType::kHealthProbe:
            message = api::HealthProbe{};
            break;
          case MessageType::kHealthResult:
            message = api::HealthResult{GetStatus(r)};
            break;
          case MessageType::kStatusRequest:
            message = api::StatusRequest{};
            break;
          case MessageType::kStatusResult:
            message = DecodeStatusResult(r);
            break;
        }
    } catch (const WireError&) {
        throw;
    } catch (const std::runtime_error& e) {
        // ArchiveReader truncation → uniform WireError with context.
        throw WireError(std::string(MessageTypeName(type)) +
                            " body truncated: " + e.what(),
                        r.pos());
    }
    if (!r.AtEnd()) {
        throw WireError(std::string(MessageTypeName(type)) + " body has " +
                            std::to_string(body.size() - r.pos()) +
                            " trailing bytes",
                        r.pos());
    }
    return message;
}

std::string
EncodeFrame(const Frame& frame)
{
    // Header + variable sections first; the length field at offset 4
    // is patched once the total (body + 8-byte digest) is known.
    Archive ar;
    ar.U32(kWireMagic);
    ar.U32(0);  // frame_len placeholder
    ar.U32(kWireVersion);
    ar.U8(static_cast<std::uint8_t>(frame.type));
    ar.U8(static_cast<std::uint8_t>(frame.kind));
    ar.U64(frame.epoch);
    ar.U64(frame.call_id);
    ar.Str(frame.target);
    ar.Str(frame.payload);

    std::string bytes = ar.bytes();
    const std::uint32_t total = static_cast<std::uint32_t>(bytes.size() + 8);
    for (int i = 0; i < 4; ++i) {
        bytes[4 + i] = static_cast<char>((total >> (8 * i)) & 0xffu);
    }

    // Digest covers everything before it, length field included.
    const std::uint64_t digest = Fnv1a64(bytes);
    for (int i = 0; i < 8; ++i) {
        bytes.push_back(static_cast<char>((digest >> (8 * i)) & 0xffu));
    }
    return bytes;
}

Frame
DecodeFrame(std::string_view bytes)
{
    if (bytes.size() < kFrameFixedHeaderBytes + 8) {
        throw WireError("frame truncated: " + std::to_string(bytes.size()) +
                            " bytes, need at least " +
                            std::to_string(kFrameFixedHeaderBytes + 8),
                        bytes.size());
    }

    // Verify the digest before trusting ANY field: a bit flip anywhere
    // (including in the length or type bytes) must be reported as
    // corruption, not as whatever that field now happens to mean.
    ArchiveReader tail(bytes.substr(bytes.size() - 8));
    const std::uint64_t stored_digest = tail.U64();
    const std::uint64_t computed_digest =
        Fnv1a64(bytes.substr(0, bytes.size() - 8));
    if (stored_digest != computed_digest) {
        throw WireError("frame digest mismatch (corrupted frame)",
                        bytes.size() - 8);
    }

    ArchiveReader r(bytes);
    Frame frame;
    const std::uint32_t magic = r.U32();
    if (magic != kWireMagic) {
        throw WireError("bad magic", 0);
    }
    const std::uint32_t frame_len = r.U32();
    if (frame_len != bytes.size()) {
        throw WireError("frame length field " + std::to_string(frame_len) +
                            " does not match actual size " +
                            std::to_string(bytes.size()),
                        4);
    }
    const std::uint32_t version = r.U32();
    if (version != kWireVersion) {
        throw WireError("unsupported wire version " + std::to_string(version),
                        8);
    }
    const std::uint8_t type = r.U8();
    if (type > static_cast<std::uint8_t>(MessageType::kStatusResult)) {
        throw WireError("message type " + std::to_string(type) +
                            " out of range",
                        12);
    }
    frame.type = static_cast<MessageType>(type);
    const std::uint8_t kind = r.U8();
    if (kind > static_cast<std::uint8_t>(FrameKind::kError)) {
        throw WireError("frame kind " + std::to_string(kind) + " out of range",
                        13);
    }
    frame.kind = static_cast<FrameKind>(kind);
    frame.epoch = r.U64();
    frame.call_id = r.U64();
    try {
        frame.target = r.Str();
        frame.payload = r.Str();
    } catch (const std::runtime_error& e) {
        throw WireError(std::string("frame sections truncated: ") + e.what(),
                        r.pos());
    }
    if (r.pos() != bytes.size() - 8) {
        throw WireError("frame has " +
                            std::to_string(bytes.size() - 8 - r.pos()) +
                            " trailing bytes before digest",
                        r.pos());
    }
    return frame;
}

void
FrameReader::Feed(std::string_view bytes)
{
    if (poisoned_) {
        throw WireError("stream poisoned by an earlier framing error",
                        consumed_);
    }
    buffer_.append(bytes.data(), bytes.size());
    CheckHeader();
}

void
FrameReader::CheckHeader()
{
    if (buffer_.size() < 8) return;
    ArchiveReader r(buffer_);
    const std::uint32_t magic = r.U32();
    if (magic != kWireMagic) {
        poisoned_ = true;
        throw WireError("bad magic on stream", consumed_);
    }
    const std::uint32_t frame_len = r.U32();
    if (frame_len < kFrameFixedHeaderBytes + 8 + 16 ||
        frame_len > kMaxFrameBytes) {
        poisoned_ = true;
        throw WireError("frame length " + std::to_string(frame_len) +
                            " outside [" +
                            std::to_string(kFrameFixedHeaderBytes + 8 + 16) +
                            ", " + std::to_string(kMaxFrameBytes) + "]",
                        consumed_ + 4);
    }
}

bool
FrameReader::HasFrame() const
{
    if (poisoned_ || buffer_.size() < 8) return false;
    ArchiveReader r(buffer_);
    r.U32();  // magic, validated by CheckHeader
    return buffer_.size() >= r.U32();
}

Frame
FrameReader::Next()
{
    if (!HasFrame()) {
        throw WireError("Next() without a complete frame", consumed_);
    }
    ArchiveReader r(buffer_);
    r.U32();
    const std::uint32_t frame_len = r.U32();
    const std::string_view frame_bytes =
        std::string_view(buffer_).substr(0, frame_len);
    Frame frame;
    try {
        frame = DecodeFrame(frame_bytes);
    } catch (const WireError&) {
        poisoned_ = true;
        throw;
    }
    buffer_.erase(0, frame_len);
    consumed_ += frame_len;
    if (!buffer_.empty()) CheckHeader();
    return frame;
}

}  // namespace dynamo::rpc::wire
