/**
 * @file
 * Endpoint interning.
 *
 * A 10k-server suite routes millions of RPCs per simulated hour; keying
 * transport routing and fault state by `std::string` makes every call
 * hash and compare a heap string. Endpoints are instead interned once
 * into a dense 32-bit `EndpointId`, and every hot lookup (handler
 * dispatch, fault decision, latency override) becomes a vector index.
 * Human-readable names survive in the table for construction-time
 * resolution and logging edges.
 */
#ifndef DYNAMO_RPC_ENDPOINT_H_
#define DYNAMO_RPC_ENDPOINT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace dynamo::rpc {

/** Dense interned endpoint identity; index into per-endpoint vectors. */
using EndpointId = std::uint32_t;

/** Sentinel for "no such endpoint". */
inline constexpr EndpointId kInvalidEndpoint = 0xffffffffu;

/**
 * Bidirectional name <-> id intern table. Ids are assigned densely in
 * interning order; a Released id stays valid as a vector index (its
 * per-endpoint state slots survive) and is recycled for the next
 * Intern of a *new* name. Reuse is LIFO, so identical intern/release
 * sequences produce identical id assignments on every run — fleet
 * reconfiguration stays deterministic across thread counts.
 */
class EndpointTable
{
  public:
    /** Return the id for `name`, interning it on first sight. */
    EndpointId Intern(const std::string& name)
    {
        const auto it = by_name_.find(name);
        if (it != by_name_.end()) return it->second;
        EndpointId id;
        if (!free_ids_.empty()) {
            id = free_ids_.back();
            free_ids_.pop_back();
            names_[id] = name;
        } else {
            id = static_cast<EndpointId>(names_.size());
            names_.push_back(name);
        }
        by_name_.emplace(name, id);
        return id;
    }

    /**
     * Forget `name` and queue its id for reuse. The id remains a valid
     * vector index until re-assigned; Find(name) misses immediately.
     * No-op for names never interned or already released.
     */
    void Release(const std::string& name)
    {
        const auto it = by_name_.find(name);
        if (it == by_name_.end()) return;
        free_ids_.push_back(it->second);
        by_name_.erase(it);
    }

    /** Id for `name`, or kInvalidEndpoint if never interned. */
    EndpointId Find(const std::string& name) const
    {
        const auto it = by_name_.find(name);
        return it == by_name_.end() ? kInvalidEndpoint : it->second;
    }

    /** Name for a valid id (logging / error edges). */
    const std::string& Name(EndpointId id) const { return names_[id]; }

    std::size_t size() const { return names_.size(); }

    /** Released ids awaiting reuse. */
    std::size_t free_count() const { return free_ids_.size(); }

  private:
    std::unordered_map<std::string, EndpointId> by_name_;
    std::vector<std::string> names_;
    std::vector<EndpointId> free_ids_;
};

}  // namespace dynamo::rpc

#endif  // DYNAMO_RPC_ENDPOINT_H_
