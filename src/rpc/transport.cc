#include "rpc/transport.h"

#include <memory>
#include <utility>

namespace dynamo::rpc {

FailureInjector::FailureInjector(std::uint64_t seed) : rng_(seed) {}

void
FailureInjector::SetEndpointFailureProbability(const std::string& endpoint, double p)
{
    endpoint_failure_p_[endpoint] = p;
}

void
FailureInjector::ClearEndpointFailureProbability(const std::string& endpoint)
{
    endpoint_failure_p_.erase(endpoint);
}

void
FailureInjector::SetEndpointDown(const std::string& endpoint, bool down)
{
    if (down) {
        down_.insert(endpoint);
    } else {
        down_.erase(endpoint);
    }
}

bool
FailureInjector::IsEndpointDown(const std::string& endpoint) const
{
    return down_.count(endpoint) > 0;
}

void
FailureInjector::SetEndpointExtraLatency(const std::string& endpoint,
                                         SimTime extra)
{
    extra_latency_[endpoint] = extra;
}

void
FailureInjector::ClearEndpointExtraLatency(const std::string& endpoint)
{
    extra_latency_.erase(endpoint);
}

SimTime
FailureInjector::ExtraLatency(const std::string& endpoint) const
{
    const auto it = extra_latency_.find(endpoint);
    return it == extra_latency_.end() ? 0 : it->second;
}

CallFate
FailureInjector::Decide(const std::string& endpoint)
{
    if (down_.count(endpoint) > 0) return CallFate::kFail;
    double p = default_failure_p_;
    const auto it = endpoint_failure_p_.find(endpoint);
    if (it != endpoint_failure_p_.end()) p = it->second;
    if (p <= 0.0) return CallFate::kOk;
    if (!rng_.Bernoulli(p)) return CallFate::kOk;
    return rng_.Bernoulli(0.5) ? CallFate::kFail : CallFate::kBlackhole;
}

SimTransport::SimTransport(sim::Simulation& sim, std::uint64_t seed, Options options)
    : sim_(sim), rng_(seed), options_(options), failures_(seed ^ 0xfeedULL)
{
}

void
SimTransport::Register(const std::string& endpoint, RequestHandler handler)
{
    handlers_[endpoint] = std::move(handler);
}

void
SimTransport::Unregister(const std::string& endpoint)
{
    handlers_.erase(endpoint);
}

bool
SimTransport::IsRegistered(const std::string& endpoint) const
{
    return handlers_.count(endpoint) > 0;
}

void
SimTransport::Call(const std::string& endpoint, Payload request,
                   ResponseCallback on_ok, ErrorCallback on_err, SimTime timeout_ms)
{
    ++calls_issued_;

    // `done` arbitrates between the response path and the timeout path
    // so exactly one continuation fires per call.
    auto done = std::make_shared<bool>(false);

    const CallFate fate = failures_.Decide(endpoint);
    if (fate == CallFate::kBlackhole) {
        sim_.ScheduleAfter(timeout_ms,
                           [this, done, on_err = std::move(on_err)]() {
                               if (*done) return;
                               *done = true;
                               ++calls_failed_;
                               on_err("timeout");
                           });
        return;
    }
    if (fate == CallFate::kFail || handlers_.count(endpoint) == 0) {
        const SimTime latency = options_.request_latency.Sample(rng_);
        sim_.ScheduleAfter(latency, [this, done, on_err = std::move(on_err)]() {
            if (*done) return;
            *done = true;
            ++calls_failed_;
            on_err("connection failed");
        });
        return;
    }

    // Arm the timeout first; delivery below may still race it if the
    // sampled latencies exceed the deadline, exactly as on a real
    // network.
    sim_.ScheduleAfter(timeout_ms, [this, done, on_err]() {
        if (*done) return;
        *done = true;
        ++calls_failed_;
        on_err("timeout");
    });

    const SimTime request_latency =
        options_.request_latency.Sample(rng_) + failures_.ExtraLatency(endpoint);
    sim_.ScheduleAfter(
        request_latency,
        [this, endpoint, request = std::move(request), on_ok = std::move(on_ok),
         done]() mutable {
            // Re-resolve the handler at delivery time: the endpoint may
            // have crashed while the request was in flight, in which
            // case the caller only learns via the timeout.
            const auto it = handlers_.find(endpoint);
            if (it == handlers_.end()) return;
            Payload response = it->second(request);
            const SimTime response_latency = options_.response_latency.Sample(rng_);
            sim_.ScheduleAfter(response_latency,
                               [this, response = std::move(response),
                                on_ok = std::move(on_ok), done]() {
                                   if (*done) return;
                                   *done = true;
                                   ++calls_succeeded_;
                                   on_ok(response);
                               });
        });
}

}  // namespace dynamo::rpc
