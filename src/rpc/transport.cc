#include "rpc/transport.h"

#include <memory>
#include <stdexcept>
#include <utility>

#include "common/archive.h"
#include "telemetry/metrics.h"

namespace dynamo::rpc {

namespace {

void SnapshotRng(Archive& ar, const Rng& rng)
{
    for (const std::uint64_t w : rng.state()) ar.U64(w);
    ar.U64(rng.draws());
}

}  // namespace

// ---------------------------------------------------------------------------
// Transport (shared registry + accounting)
// ---------------------------------------------------------------------------

void
Transport::Register(EndpointId id, RequestHandler handler)
{
    if (id >= handlers_.size()) handlers_.resize(id + 1);
    if (handlers_[id] != nullptr) {
        throw std::logic_error("Transport::Register: endpoint \"" +
                               endpoints_.Name(id) +
                               "\" already has a handler; Unregister first");
    }
    handlers_[id] = std::move(handler);
}

void
Transport::Register(const std::string& endpoint, RequestHandler handler)
{
    Register(endpoints_.Intern(endpoint), std::move(handler));
}

void
Transport::Unregister(EndpointId id)
{
    if (id < handlers_.size()) handlers_[id] = nullptr;
}

void
Transport::Unregister(const std::string& endpoint)
{
    const EndpointId id = endpoints_.Find(endpoint);
    if (id != kInvalidEndpoint) Unregister(id);
}

void
Transport::Deregister(EndpointId id)
{
    Unregister(id);
    endpoints_.Release(endpoints_.Name(id));
}

void
Transport::Deregister(const std::string& endpoint)
{
    const EndpointId id = endpoints_.Find(endpoint);
    if (id != kInvalidEndpoint) Deregister(id);
}

bool
Transport::IsRegistered(const std::string& endpoint) const
{
    const EndpointId id = endpoints_.Find(endpoint);
    return id != kInvalidEndpoint && IsRegistered(id);
}

void
Transport::Call(const std::string& endpoint, Payload request,
                ResponseCallback on_ok, ErrorCallback on_err,
                SimTime timeout_ms)
{
    Call(endpoints_.Intern(endpoint), std::move(request), std::move(on_ok),
         std::move(on_err), timeout_ms);
}

void
Transport::AttachMetrics(telemetry::MetricsRegistry* registry)
{
    if (registry == nullptr) {
        m_calls_ = m_ok_ = m_failed_ = m_errors_ = m_timeouts_ = nullptr;
        return;
    }
    m_calls_ = registry->GetCounter("rpc.calls");
    m_ok_ = registry->GetCounter("rpc.ok");
    m_failed_ = registry->GetCounter("rpc.failed");
    m_errors_ = registry->GetCounter("rpc.errors");
    m_timeouts_ = registry->GetCounter("rpc.timeouts");
}

void
Transport::CountIssued(std::uint64_t n)
{
    calls_issued_ += n;
    if (m_calls_ != nullptr) m_calls_->Inc(n);
}

void
Transport::CountOk()
{
    ++calls_succeeded_;
    if (m_ok_ != nullptr) m_ok_->Inc();
}

void
Transport::CountError()
{
    ++calls_failed_;
    ++calls_errored_;
    if (m_failed_ != nullptr) m_failed_->Inc();
    if (m_errors_ != nullptr) m_errors_->Inc();
}

void
Transport::CountTimeout()
{
    ++calls_failed_;
    ++calls_timed_out_;
    if (m_failed_ != nullptr) m_failed_->Inc();
    if (m_timeouts_ != nullptr) m_timeouts_->Inc();
}

// ---------------------------------------------------------------------------
// FailureInjector
// ---------------------------------------------------------------------------

FailureInjector::FailureInjector(std::uint64_t seed, EndpointTable* endpoints)
    : rng_(seed), endpoints_(endpoints)
{
}

void
FailureInjector::Snapshot(Archive& ar) const
{
    SnapshotRng(ar, rng_);
    ar.F64(default_failure_p_);
    ar.U64(override_count_);
    ar.U64(latency_count_);
    ar.U64(down_count_);
    // Per-endpoint fault state, dense by id (ids are interned in a
    // deterministic order, so this is canonical).
    ar.U64(failure_p_.size());
    for (std::size_t i = 0; i < failure_p_.size(); ++i) {
        ar.F64(failure_p_[i]);
        ar.I64(extra_latency_[i]);
        ar.U8(down_[i]);
    }
}

void
FailureInjector::EnsureSize(EndpointId id)
{
    if (id >= failure_p_.size()) {
        failure_p_.resize(id + 1, -1.0);
        extra_latency_.resize(id + 1, 0);
        down_.resize(id + 1, 0);
    }
}

void
FailureInjector::SetEndpointFailureProbability(EndpointId id, double p)
{
    EnsureSize(id);
    if (failure_p_[id] < 0.0) ++override_count_;
    failure_p_[id] = p;
}

void
FailureInjector::SetEndpointFailureProbability(const std::string& endpoint,
                                               double p)
{
    SetEndpointFailureProbability(endpoints_->Intern(endpoint), p);
}

void
FailureInjector::ClearEndpointFailureProbability(EndpointId id)
{
    if (id >= failure_p_.size() || failure_p_[id] < 0.0) return;
    failure_p_[id] = -1.0;
    --override_count_;
}

void
FailureInjector::ClearEndpointFailureProbability(const std::string& endpoint)
{
    const EndpointId id = endpoints_->Find(endpoint);
    if (id != kInvalidEndpoint) ClearEndpointFailureProbability(id);
}

void
FailureInjector::SetEndpointDown(EndpointId id, bool down)
{
    EnsureSize(id);
    if (down && !down_[id]) ++down_count_;
    if (!down && down_[id]) --down_count_;
    down_[id] = down ? 1 : 0;
}

void
FailureInjector::SetEndpointDown(const std::string& endpoint, bool down)
{
    SetEndpointDown(endpoints_->Intern(endpoint), down);
}

bool
FailureInjector::IsEndpointDown(EndpointId id) const
{
    if (down_count_ == 0) return false;
    return id < down_.size() && down_[id] != 0;
}

bool
FailureInjector::IsEndpointDown(const std::string& endpoint) const
{
    const EndpointId id = endpoints_->Find(endpoint);
    return id != kInvalidEndpoint && IsEndpointDown(id);
}

void
FailureInjector::SetEndpointExtraLatency(EndpointId id, SimTime extra)
{
    EnsureSize(id);
    if (extra != 0 && extra_latency_[id] == 0) ++latency_count_;
    if (extra == 0 && extra_latency_[id] != 0) --latency_count_;
    extra_latency_[id] = extra;
}

void
FailureInjector::SetEndpointExtraLatency(const std::string& endpoint,
                                         SimTime extra)
{
    SetEndpointExtraLatency(endpoints_->Intern(endpoint), extra);
}

void
FailureInjector::ClearEndpointExtraLatency(EndpointId id)
{
    SetEndpointExtraLatency(id, 0);
}

void
FailureInjector::ClearEndpointExtraLatency(const std::string& endpoint)
{
    const EndpointId id = endpoints_->Find(endpoint);
    if (id != kInvalidEndpoint) SetEndpointExtraLatency(id, 0);
}

SimTime
FailureInjector::ExtraLatency(const std::string& endpoint) const
{
    if (latency_count_ == 0) return 0;
    const EndpointId id = endpoints_->Find(endpoint);
    return id == kInvalidEndpoint ? 0 : ExtraLatency(id);
}

CallFate
FailureInjector::Decide(EndpointId id)
{
    // Fast path: nothing configured, nothing to look up. This is the
    // steady state of every non-chaos run.
    if (down_count_ == 0 && override_count_ == 0 && default_failure_p_ <= 0.0) {
        return CallFate::kOk;
    }
    if (IsEndpointDown(id)) return CallFate::kFail;
    double p = default_failure_p_;
    if (override_count_ > 0 && id < failure_p_.size() && failure_p_[id] >= 0.0) {
        p = failure_p_[id];
    }
    if (p <= 0.0) return CallFate::kOk;
    if (!rng_.Bernoulli(p)) return CallFate::kOk;
    return rng_.Bernoulli(0.5) ? CallFate::kFail : CallFate::kBlackhole;
}

void
FailureInjector::ClearEndpoint(EndpointId id)
{
    if (id >= failure_p_.size()) return;
    ClearEndpointFailureProbability(id);
    SetEndpointExtraLatency(id, 0);
    SetEndpointDown(id, false);
}

// ---------------------------------------------------------------------------
// SimTransport
// ---------------------------------------------------------------------------

SimTransport::SimTransport(sim::Simulation& sim, std::uint64_t seed, Options options)
    : sim_(sim), rng_(seed), options_(options),
      failures_(seed ^ 0xfeedULL, &endpoints_)
{
}

void
SimTransport::Deregister(EndpointId id)
{
    failures_.ClearEndpoint(id);
    Transport::Deregister(id);
}

void
SimTransport::Call(EndpointId id, Payload request, ResponseCallback on_ok,
                   ErrorCallback on_err, SimTime timeout_ms)
{
    CountIssued();

    // `done` arbitrates between the response path and the timeout path
    // so exactly one continuation fires per call.
    auto done = std::make_shared<bool>(false);

    const CallFate fate = failures_.Decide(id);
    if (call_observer_) call_observer_(id, fate, sim_.Now());
    if (fate == CallFate::kBlackhole) {
        sim_.ScheduleAfter(timeout_ms,
                           [this, done, on_err = std::move(on_err)]() {
                               if (*done) return;
                               *done = true;
                               CountTimeout();
                               on_err("timeout");
                           });
        return;
    }
    if (fate == CallFate::kFail || !IsRegistered(id)) {
        const SimTime latency = options_.request_latency.Sample(rng_);
        sim_.ScheduleAfter(latency, [this, done, on_err = std::move(on_err)]() {
            if (*done) return;
            *done = true;
            CountError();
            on_err("connection failed");
        });
        return;
    }

    // Arm the timeout first; delivery below may still race it if the
    // sampled latencies exceed the deadline, exactly as on a real
    // network.
    sim_.ScheduleAfter(timeout_ms, [this, done, on_err]() {
        if (*done) return;
        *done = true;
        CountTimeout();
        on_err("timeout");
    });

    const SimTime request_latency =
        options_.request_latency.Sample(rng_) + failures_.ExtraLatency(id);
    sim_.ScheduleAfter(
        request_latency,
        [this, id, request = std::move(request), on_ok = std::move(on_ok),
         done]() mutable {
            // Re-resolve the handler at delivery time: the endpoint may
            // have crashed while the request was in flight, in which
            // case the caller only learns via the timeout.
            if (!IsRegistered(id)) return;
            Payload response = handlers_[id](request);
            const SimTime response_latency = options_.response_latency.Sample(rng_);
            sim_.ScheduleAfter(response_latency,
                               [this, response = std::move(response),
                                on_ok = std::move(on_ok), done]() {
                                   if (*done) return;
                                   *done = true;
                                   CountOk();
                                   on_ok(response);
                               });
        });
}

std::size_t
SimTransport::CallBatch(std::vector<BatchItem> batch)
{
    if (batch.empty()) return 0;
    const std::size_t n = batch.size();
    CountIssued(n);

    // Decide every fate at issue time (as Call does) so the injector's
    // RNG stream and the observer's record reflect issue order.
    std::vector<CallFate> fates(n);
    for (std::size_t i = 0; i < n; ++i) {
        fates[i] = failures_.Decide(batch[i].target);
        if (call_observer_) {
            call_observer_(batch[i].target, fates[i], sim_.Now());
        }
    }

    const SimTime latency = options_.request_latency.Sample(rng_);
    sim_.ScheduleAfter(
        latency,
        [this, batch = std::move(batch), fates = std::move(fates)]() {
            for (std::size_t i = 0; i < batch.size(); ++i) {
                // Re-resolve at delivery time, exactly like Call: an
                // endpoint that crashed while the batch was in flight
                // drops its items.
                if (fates[i] != CallFate::kOk ||
                    !IsRegistered(batch[i].target)) {
                    CountError();
                    continue;
                }
                handlers_[batch[i].target](batch[i].payload);
                CountOk();
            }
        });
    return n;
}

void
SimTransport::Snapshot(Archive& ar) const
{
    ar.U64(calls_issued());
    ar.U64(calls_succeeded());
    ar.U64(calls_failed());
    ar.U64(endpoints_.size());
    SnapshotRng(ar, rng_);
    failures_.Snapshot(ar);
}

}  // namespace dynamo::rpc
