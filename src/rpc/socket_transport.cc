#include "rpc/socket_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace dynamo::rpc {

namespace {

/** The two failure reasons shared with SimTransport (parity contract). */
constexpr const char* kConnectionFailed = "connection failed";
constexpr const char* kTimeout = "timeout";

void SetNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
        throw std::runtime_error(std::string("fcntl(O_NONBLOCK): ") +
                                 std::strerror(errno));
    }
}

/** Build the sockaddr for an address; returns the length used. */
socklen_t FillSockaddr(const SocketAddress& address, sockaddr_storage* out)
{
    std::memset(out, 0, sizeof *out);
    if (address.family == SocketAddress::Family::kUnix) {
        auto* sun = reinterpret_cast<sockaddr_un*>(out);
        sun->sun_family = AF_UNIX;
        if (address.path.size() >= sizeof sun->sun_path) {
            throw std::invalid_argument("unix socket path too long: " +
                                        address.path);
        }
        std::memcpy(sun->sun_path, address.path.c_str(),
                    address.path.size() + 1);
        return static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                      address.path.size() + 1);
    }
    auto* sin = reinterpret_cast<sockaddr_in*>(out);
    sin->sin_family = AF_INET;
    sin->sin_port = htons(address.port);
    if (::inet_pton(AF_INET, address.host.c_str(), &sin->sin_addr) != 1) {
        throw std::invalid_argument("bad IPv4 address: " + address.host);
    }
    return sizeof(sockaddr_in);
}

int DomainOf(const SocketAddress& address)
{
    return address.family == SocketAddress::Family::kUnix ? AF_UNIX : AF_INET;
}

}  // namespace

// ---------------------------------------------------------------------------
// SocketAddress
// ---------------------------------------------------------------------------

SocketAddress
SocketAddress::Parse(const std::string& text)
{
    SocketAddress a;
    if (text.rfind("unix:", 0) == 0) {
        a.family = Family::kUnix;
        a.path = text.substr(5);
        if (a.path.empty()) {
            throw std::invalid_argument("empty unix socket path in \"" + text +
                                        "\"");
        }
        return a;
    }
    if (text.rfind("tcp:", 0) == 0) {
        a.family = Family::kTcp;
        const std::string rest = text.substr(4);
        const std::size_t colon = rest.rfind(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 == rest.size()) {
            throw std::invalid_argument("expected tcp:host:port, got \"" +
                                        text + "\"");
        }
        a.host = rest.substr(0, colon);
        const std::string port_text = rest.substr(colon + 1);
        std::size_t used = 0;
        unsigned long port = 0;
        try {
            port = std::stoul(port_text, &used);
        } catch (const std::exception&) {
            throw std::invalid_argument("bad port \"" + port_text + "\" in \"" +
                                        text + "\"");
        }
        if (used != port_text.size() || port > 65535) {
            throw std::invalid_argument("bad port \"" + port_text + "\" in \"" +
                                        text + "\"");
        }
        a.port = static_cast<std::uint16_t>(port);
        return a;
    }
    throw std::invalid_argument(
        "address must start with unix: or tcp:, got \"" + text + "\"");
}

std::string
SocketAddress::ToString() const
{
    if (family == Family::kUnix) return "unix:" + path;
    return "tcp:" + host + ":" + std::to_string(port);
}

// ---------------------------------------------------------------------------
// SocketTransport
// ---------------------------------------------------------------------------

SocketTransport::SocketTransport() : SocketTransport(Options{}) {}

SocketTransport::SocketTransport(Options options) : options_(options) {}

SocketTransport::~SocketTransport()
{
    if (listen_fd_ >= 0) ::close(listen_fd_);
    for (Connection& conn : connections_) {
        if (conn.fd >= 0) ::close(conn.fd);
    }
}

void
SocketTransport::Listen(const SocketAddress& address)
{
    if (listen_fd_ >= 0) {
        throw std::logic_error("SocketTransport::Listen: already listening on " +
                               listen_address_.ToString());
    }
    const int fd = ::socket(DomainOf(address), SOCK_STREAM, 0);
    if (fd < 0) {
        throw std::runtime_error(std::string("socket(): ") +
                                 std::strerror(errno));
    }
    const int one = 1;
    if (address.family == SocketAddress::Family::kTcp) {
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    } else {
        // A crashed predecessor leaves its socket file behind; a
        // restarted daemon must be able to rebind the same path.
        ::unlink(address.path.c_str());
    }
    sockaddr_storage ss;
    const socklen_t len = FillSockaddr(address, &ss);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&ss), len) < 0) {
        const int err = errno;
        ::close(fd);
        throw std::runtime_error("bind(" + address.ToString() +
                                 "): " + std::strerror(err));
    }
    if (::listen(fd, 64) < 0) {
        const int err = errno;
        ::close(fd);
        throw std::runtime_error("listen(" + address.ToString() +
                                 "): " + std::strerror(err));
    }
    SetNonBlocking(fd);
    listen_fd_ = fd;
    listen_address_ = address;
    if (address.family == SocketAddress::Family::kTcp && address.port == 0) {
        sockaddr_in bound;
        socklen_t bound_len = sizeof bound;
        if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound),
                          &bound_len) == 0) {
            listen_address_.port = ntohs(bound.sin_port);
        }
    }
}

void
SocketTransport::AddRoute(const std::string& endpoint,
                          const SocketAddress& address)
{
    routes_[endpoint] = address;
}

void
SocketTransport::RemoveRoute(const std::string& endpoint)
{
    routes_.erase(endpoint);
}

SocketTransport::Connection*
SocketTransport::ConnectionFor(const SocketAddress& address)
{
    for (Connection& conn : connections_) {
        if (conn.fd >= 0 && !conn.inbound &&
            conn.peer.ToString() == address.ToString()) {
            return &conn;
        }
    }
    const int fd = ::socket(DomainOf(address), SOCK_STREAM, 0);
    if (fd < 0) return nullptr;
    SetNonBlocking(fd);
    if (address.family == SocketAddress::Family::kTcp) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    }
    sockaddr_storage ss;
    socklen_t len = 0;
    try {
        len = FillSockaddr(address, &ss);
    } catch (const std::invalid_argument&) {
        ::close(fd);
        return nullptr;
    }
    Connection conn;
    conn.fd = fd;
    conn.peer = address;
    const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&ss), len);
    if (rc < 0 && errno != EINPROGRESS) {
        // Prompt refusal (common for unix sockets with no listener):
        // keep the connection object so the caller's pending entry has
        // somewhere to live; the next poll pass fails it cleanly.
        conn.connecting = true;
        conn.connect_deadline = std::chrono::steady_clock::now();
    } else if (rc < 0) {
        conn.connecting = true;
        conn.connect_deadline =
            std::chrono::steady_clock::now() + options_.connect_timeout;
    }
    connections_.push_back(std::move(conn));
    return &connections_.back();
}

void
SocketTransport::QueueFrame(Connection& conn, const wire::Frame& frame)
{
    conn.write_buffer += wire::EncodeFrame(frame);
}

void
SocketTransport::Call(EndpointId id, Payload request, ResponseCallback on_ok,
                      ErrorCallback on_err, SimTime timeout_ms)
{
    CountIssued();

    // Loopback: locally registered endpoints are served in-process,
    // exactly as SimTransport serves co-simulated components.
    if (IsRegistered(id)) {
        local_calls_.push_back(LocalCall{id, std::move(request),
                                         std::move(on_ok), std::move(on_err),
                                         false});
        return;
    }

    const std::string& name = endpoints_.Name(id);
    const auto route = routes_.find(name);
    Connection* conn =
        route == routes_.end() ? nullptr : ConnectionFor(route->second);
    if (conn == nullptr) {
        // No route / no socket: prompt failure at the next poll pass
        // (never re-entrant from Call).
        local_calls_.push_back(LocalCall{kInvalidEndpoint, Payload{},
                                         std::move(on_ok), std::move(on_err),
                                         false});
        return;
    }

    wire::Frame frame;
    frame.kind = wire::FrameKind::kRequest;
    frame.type = wire::TypeOf(request);
    frame.epoch = options_.epoch;
    frame.call_id = next_call_id_++;
    frame.target = name;
    frame.payload = wire::EncodeBody(request);
    QueueFrame(*conn, frame);

    PendingCall pending;
    pending.call_id = frame.call_id;
    pending.on_ok = std::move(on_ok);
    pending.on_err = std::move(on_err);
    pending.deadline = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(timeout_ms);
    conn->pending.push_back(std::move(pending));
}

std::size_t
SocketTransport::CallBatch(std::vector<BatchItem> batch)
{
    if (batch.empty()) return 0;
    const std::size_t n = batch.size();
    CountIssued(n);
    for (BatchItem& item : batch) {
        if (IsRegistered(item.target)) {
            local_calls_.push_back(LocalCall{item.target,
                                             std::move(item.payload), nullptr,
                                             nullptr, true});
            continue;
        }
        const std::string& name = endpoints_.Name(item.target);
        const auto route = routes_.find(name);
        Connection* conn =
            route == routes_.end() ? nullptr : ConnectionFor(route->second);
        if (conn == nullptr) {
            CountError();
            continue;
        }
        wire::Frame frame;
        frame.kind = wire::FrameKind::kRequest;
        frame.type = wire::TypeOf(item.payload);
        frame.epoch = options_.epoch;
        frame.call_id = 0;  // fire-and-forget: peer skips the response
        frame.target = name;
        frame.payload = wire::EncodeBody(item.payload);
        QueueFrame(*conn, frame);
        // Best-effort delivery counts as ok at queue time; a torn
        // connection later cannot retroactively fail a forgotten call.
        CountOk();
    }
    return n;
}

std::size_t
SocketTransport::pending_calls() const
{
    std::size_t n = local_calls_.size();
    for (const Connection& conn : connections_) n += conn.pending.size();
    return n;
}

void
SocketTransport::ServeRequest(Connection& conn, const wire::Frame& frame)
{
    wire::Frame reply;
    reply.epoch = options_.epoch;
    reply.call_id = frame.call_id;

    const EndpointId id = endpoints_.Find(frame.target);
    const RequestHandler* handler =
        id == kInvalidEndpoint ? nullptr : HandlerFor(id);
    if (handler == nullptr) {
        if (frame.call_id == 0) return;  // fire-and-forget, nothing to say
        reply.kind = wire::FrameKind::kError;
        reply.target = kConnectionFailed;  // same reason an unregistered
                                           // SimTransport endpoint produces
        QueueFrame(conn, reply);
        return;
    }

    Payload request;
    try {
        request = wire::DecodeBody(frame.type, frame.payload);
    } catch (const wire::WireError& e) {
        if (frame.call_id == 0) return;
        reply.kind = wire::FrameKind::kError;
        reply.target = e.what();
        QueueFrame(conn, reply);
        return;
    }

    Payload response = (*handler)(request);
    if (frame.call_id == 0) return;
    try {
        reply.kind = wire::FrameKind::kResponse;
        reply.type = wire::TypeOf(response);
        reply.payload = wire::EncodeBody(response);
    } catch (const wire::WireError& e) {
        reply.kind = wire::FrameKind::kError;
        reply.target = e.what();
        reply.type = wire::MessageType::kNone;
        reply.payload.clear();
    }
    QueueFrame(conn, reply);
}

void
SocketTransport::HandleReply(Connection& conn, const wire::Frame& frame,
                             std::vector<Completion>& done)
{
    const auto it = std::find_if(conn.pending.begin(), conn.pending.end(),
                                 [&](const PendingCall& p) {
                                     return p.call_id == frame.call_id;
                                 });
    if (it == conn.pending.end()) return;  // raced its own timeout; drop

    Completion completion;
    completion.on_ok = std::move(it->on_ok);
    completion.on_err = std::move(it->on_err);
    conn.pending.erase(it);

    if (frame.kind == wire::FrameKind::kError) {
        completion.ok = false;
        completion.reason = frame.target.empty() ? kConnectionFailed
                                                 : frame.target;
        completion.timed_out = false;
        done.push_back(std::move(completion));
        return;
    }
    try {
        completion.response = wire::DecodeBody(frame.type, frame.payload);
        completion.ok = true;
    } catch (const wire::WireError&) {
        completion.ok = false;
        completion.reason = kConnectionFailed;
        completion.timed_out = false;
    }
    done.push_back(std::move(completion));
}

bool
SocketTransport::ReadAndDispatch(Connection& conn,
                                 std::vector<Completion>& done)
{
    char buffer[65536];
    for (;;) {
        const ssize_t n = ::read(conn.fd, buffer, sizeof buffer);
        if (n > 0) {
            try {
                conn.reader.Feed(std::string_view(buffer,
                                                  static_cast<std::size_t>(n)));
            } catch (const wire::WireError&) {
                return false;  // poisoned stream: drop the connection
            }
            continue;
        }
        if (n == 0) return false;  // peer closed
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        return false;  // reset or other hard error
    }
    while (conn.reader.HasFrame()) {
        wire::Frame frame;
        try {
            frame = conn.reader.Next();
        } catch (const wire::WireError&) {
            return false;
        }
        if (frame.kind == wire::FrameKind::kRequest) {
            ServeRequest(conn, frame);
        } else {
            HandleReply(conn, frame, done);
        }
    }
    return true;
}

void
SocketTransport::FailConnection(std::size_t index,
                                std::vector<Completion>& done)
{
    Connection& conn = connections_[index];
    if (conn.fd >= 0) ::close(conn.fd);
    conn.fd = -1;
    for (PendingCall& pending : conn.pending) {
        Completion completion;
        completion.ok = false;
        completion.reason = kConnectionFailed;
        completion.timed_out = false;
        completion.on_ok = std::move(pending.on_ok);
        completion.on_err = std::move(pending.on_err);
        done.push_back(std::move(completion));
    }
    conn.pending.clear();
}

std::size_t
SocketTransport::FireCompletions(std::vector<Completion>& done)
{
    for (Completion& completion : done) {
        if (completion.ok) {
            CountOk();
            if (completion.on_ok) completion.on_ok(completion.response);
        } else {
            if (completion.timed_out) {
                CountTimeout();
            } else {
                CountError();
            }
            if (completion.on_err) completion.on_err(completion.reason);
        }
    }
    const std::size_t n = done.size();
    done.clear();
    return n;
}

std::size_t
SocketTransport::PollOnce(int budget_ms)
{
    std::vector<Completion> done;

    // 1. Loopback calls queued since the last pass.
    std::size_t dispatched = 0;
    while (!local_calls_.empty()) {
        LocalCall call = std::move(local_calls_.front());
        local_calls_.pop_front();
        ++dispatched;
        if (call.target == kInvalidEndpoint) {
            // Unroutable Call captured for prompt failure.
            Completion completion;
            completion.ok = false;
            completion.reason = kConnectionFailed;
            completion.on_ok = std::move(call.on_ok);
            completion.on_err = std::move(call.on_err);
            done.push_back(std::move(completion));
            continue;
        }
        const RequestHandler* handler = HandlerFor(call.target);
        if (handler == nullptr) {
            if (call.fire_and_forget) {
                CountError();
                continue;
            }
            Completion completion;
            completion.ok = false;
            completion.reason = kConnectionFailed;
            completion.on_ok = std::move(call.on_ok);
            completion.on_err = std::move(call.on_err);
            done.push_back(std::move(completion));
            continue;
        }
        Payload response = (*handler)(call.request);
        if (call.fire_and_forget) {
            CountOk();
            continue;
        }
        Completion completion;
        completion.ok = true;
        completion.response = std::move(response);
        completion.on_ok = std::move(call.on_ok);
        completion.on_err = std::move(call.on_err);
        done.push_back(std::move(completion));
    }

    // 2. Build the poll set.
    std::vector<pollfd> fds;
    std::vector<std::size_t> conn_of_fd;  // parallel: index into connections_
    if (listen_fd_ >= 0) {
        fds.push_back(pollfd{listen_fd_, POLLIN, 0});
        conn_of_fd.push_back(static_cast<std::size_t>(-1));
    }
    for (std::size_t i = 0; i < connections_.size(); ++i) {
        Connection& conn = connections_[i];
        if (conn.fd < 0) continue;
        short events = POLLIN;
        if (conn.connecting || !conn.write_buffer.empty()) events |= POLLOUT;
        fds.push_back(pollfd{conn.fd, events, 0});
        conn_of_fd.push_back(i);
    }

    // 3. Don't sleep past the earliest deadline (or at all, if
    // completions are already captured).
    int timeout_ms = done.empty() ? budget_ms : 0;
    const auto now = std::chrono::steady_clock::now();
    for (const Connection& conn : connections_) {
        if (conn.fd < 0) continue;
        auto consider = [&](std::chrono::steady_clock::time_point deadline) {
            const auto delta =
                std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                      now)
                    .count();
            const int clamped = delta <= 0 ? 0 : static_cast<int>(
                                                     std::min<long long>(
                                                         delta, budget_ms));
            timeout_ms = std::min(timeout_ms, clamped);
        };
        if (conn.connecting) consider(conn.connect_deadline);
        for (const PendingCall& pending : conn.pending) {
            consider(pending.deadline);
        }
    }

    const int rc = ::poll(fds.data(), fds.size(),
                          fds.empty() ? std::min(timeout_ms, budget_ms)
                                      : timeout_ms);
    if (rc < 0 && errno != EINTR) {
        throw std::runtime_error(std::string("poll(): ") +
                                 std::strerror(errno));
    }

    // 4. Accept new inbound connections.
    if (listen_fd_ >= 0 && !fds.empty() && (fds[0].revents & POLLIN) != 0) {
        for (;;) {
            const int fd = ::accept(listen_fd_, nullptr, nullptr);
            if (fd < 0) break;
            SetNonBlocking(fd);
            Connection conn;
            conn.fd = fd;
            conn.inbound = true;
            connections_.push_back(std::move(conn));
        }
    }

    // 5. Service every ready connection. connections_ may have grown
    // via accept (those fds are not in this poll set yet — next pass).
    for (std::size_t pi = 0; pi < fds.size(); ++pi) {
        const std::size_t ci = conn_of_fd[pi];
        if (ci == static_cast<std::size_t>(-1)) continue;
        Connection& conn = connections_[ci];
        if (conn.fd < 0) continue;

        if (conn.connecting && (fds[pi].revents & (POLLOUT | POLLERR | POLLHUP))
                                   != 0) {
            int err = 0;
            socklen_t err_len = sizeof err;
            ::getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &err, &err_len);
            if (err != 0) {
                FailConnection(ci, done);
                continue;
            }
            conn.connecting = false;
        }

        if ((fds[pi].revents & (POLLERR | POLLHUP)) != 0 &&
            (fds[pi].revents & POLLIN) == 0) {
            FailConnection(ci, done);
            continue;
        }

        if ((fds[pi].revents & POLLIN) != 0) {
            if (!ReadAndDispatch(conn, done)) {
                FailConnection(ci, done);
                continue;
            }
        }

        if (!conn.connecting && !conn.write_buffer.empty() &&
            (fds[pi].revents & POLLOUT) != 0) {
            const ssize_t n = ::write(conn.fd, conn.write_buffer.data(),
                                      conn.write_buffer.size());
            if (n > 0) {
                conn.write_buffer.erase(0, static_cast<std::size_t>(n));
            } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                       errno != EINTR) {
                FailConnection(ci, done);
                continue;
            }
        }
    }

    // 6. Expire deadlines (connects and calls).
    const auto after = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < connections_.size(); ++i) {
        Connection& conn = connections_[i];
        if (conn.fd < 0) continue;
        if (conn.connecting && after >= conn.connect_deadline) {
            FailConnection(i, done);
            continue;
        }
        for (std::size_t p = 0; p < conn.pending.size();) {
            if (after >= conn.pending[p].deadline) {
                Completion completion;
                completion.ok = false;
                completion.reason = kTimeout;
                completion.timed_out = true;
                completion.on_ok = std::move(conn.pending[p].on_ok);
                completion.on_err = std::move(conn.pending[p].on_err);
                done.push_back(std::move(completion));
                conn.pending.erase(conn.pending.begin() +
                                   static_cast<std::ptrdiff_t>(p));
            } else {
                ++p;
            }
        }
    }

    // 7. Sweep closed connections (safe now: no iteration in flight).
    connections_.erase(
        std::remove_if(connections_.begin(), connections_.end(),
                       [](const Connection& conn) {
                           return conn.fd < 0 && conn.pending.empty();
                       }),
        connections_.end());

    // 8. Fire captured completions last, so callbacks (which may issue
    // new Calls) see a consistent transport.
    return dispatched + FireCompletions(done);
}

}  // namespace dynamo::rpc
