/**
 * @file
 * Cross-shard message mailbox.
 *
 * Shards in the parallel engine share nothing during a window; the
 * only cross-shard channel is this mailbox, drained at the barrier.
 * A proxy handler on one shard's transport pushes payloads addressed
 * to endpoints living on another shard; the barrier thread drains the
 * queue in FIFO order and hands the whole batch to the target shard's
 * transport as ONE `CallBatch` delivery pass at the window boundary —
 * one kernel event per destination shard per window, never one
 * three-event Call (timeout + delivery + response) per message. A
 * message produced in window W is therefore delivered in window W+1 —
 * the contract-visibility latency DESIGN.md §10 documents.
 *
 * Synchronization contract (why there are no atomics here): at most
 * one thread executes a given shard inside a window, so pushes are
 * single-producer; drains happen only on the barrier thread after the
 * worker pool has joined. The pool's handshake orders every push
 * before every drain and every drain before the next window's pushes,
 * so plain vector operations are sufficient and TSan-clean.
 */
#ifndef DYNAMO_RPC_MAILBOX_H_
#define DYNAMO_RPC_MAILBOX_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "rpc/endpoint.h"
#include "rpc/transport.h"

namespace dynamo::rpc {

/**
 * One queued cross-shard request. The mailbox stores the transport's
 * batch-delivery item directly, so a drained queue feeds
 * `SimTransport::CallBatch` without re-packing: the `target` is the
 * endpoint id interned in the *destination* shard's transport.
 */
using ShardMessage = BatchItem;

/** FIFO mailbox of requests bound for one shard. */
class ShardMailbox
{
  public:
    /** Enqueue a request (producer side: the sending shard's window). */
    void Push(EndpointId target, Payload payload)
    {
        queue_.push_back(ShardMessage{target, std::move(payload)});
        ++total_pushed_;
    }

    /**
     * Take every queued message, leaving the mailbox empty (consumer
     * side: the barrier thread). FIFO order is part of the determinism
     * contract — the drain replays the sender's issue order, and
     * CallBatch preserves it through delivery.
     */
    std::vector<ShardMessage> Drain()
    {
        std::vector<ShardMessage> out;
        out.swap(queue_);
        return out;
    }

    std::size_t pending() const { return queue_.size(); }

    /** Messages ever pushed (monotonic; survives drains). */
    std::uint64_t total_pushed() const { return total_pushed_; }

  private:
    std::vector<ShardMessage> queue_;
    std::uint64_t total_pushed_ = 0;
};

}  // namespace dynamo::rpc

#endif  // DYNAMO_RPC_MAILBOX_H_
