/**
 * @file
 * RPC transport: the abstract channel interface plus the simulated
 * implementation.
 *
 * Production Dynamo uses Thrift between controllers and agents; the
 * control logic only depends on the *semantics* of that channel:
 * asynchronous request/response, millisecond-scale latency, and the
 * possibility of failures and timeouts. `Transport` captures exactly
 * those semantics, so agents and controllers run unchanged against
 * either implementation:
 *
 *   - `SimTransport` (this file) reproduces them on the simulation
 *     kernel with an injectable failure policy, so tests can exercise
 *     the paper's resilience behaviours deterministically; and
 *   - `SocketTransport` (socket_transport.h) carries the same calls
 *     over real TCP / Unix-domain sockets for the daemonized
 *     deployment mode (tools/dynamo_agentd, tools/dynamo_controllerd).
 *
 * Both implementations share the accounting contract: every call ends
 * in exactly one of ok / error / timeout, errors ("connection failed")
 * and timeouts ("timeout") are counted separately, and the same
 * `rpc.*` metric names are exported — a capping episode debugged
 * against the simulator reads identically in production telemetry.
 *
 * Endpoints are interned (see endpoint.h): the hot path — handler
 * dispatch and fault decisions on every call — indexes dense vectors
 * by `EndpointId`. String-keyed overloads remain for construction and
 * test edges and resolve through the intern table.
 */
#ifndef DYNAMO_RPC_TRANSPORT_H_
#define DYNAMO_RPC_TRANSPORT_H_

#include <any>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "rpc/endpoint.h"
#include "sim/simulation.h"

namespace dynamo {
class Archive;
}  // namespace dynamo

namespace dynamo::telemetry {
class Counter;
class MetricsRegistry;
}  // namespace dynamo::telemetry

namespace dynamo::rpc {

/** Opaque request/response payload (concrete types defined by callers). */
using Payload = std::any;

/** Server-side handler: consumes a request, produces a response. */
using RequestHandler = std::function<Payload(const Payload&)>;

/** Client-side success continuation. */
using ResponseCallback = std::function<void(const Payload&)>;

/** Client-side failure continuation; `reason` is human-readable. */
using ErrorCallback = std::function<void(const std::string& reason)>;

/** One element of a batched delivery (see Transport::CallBatch). */
struct BatchItem
{
    /** Target endpoint, interned in *this* transport. */
    EndpointId target = kInvalidEndpoint;

    Payload payload;
};

/**
 * Abstract RPC channel: endpoint registry, handler dispatch, and
 * asynchronous call issue with shared success/error/timeout
 * accounting. Implementations decide how a call travels (simulated
 * kernel events vs. real sockets); the failure vocabulary is fixed:
 *
 *   - `on_err("connection failed")` — the endpoint refused, reset, or
 *     does not serve (counted in `rpc.errors`);
 *   - `on_err("timeout")` — no response within the deadline (counted
 *     in `rpc.timeouts`).
 *
 * Exactly one of `on_ok` / `on_err` fires per call, always at a later
 * point of the owning event loop — never re-entrantly from Call().
 */
class Transport
{
  public:
    Transport() = default;
    virtual ~Transport() = default;

    Transport(const Transport&) = delete;
    Transport& operator=(const Transport&) = delete;

    /** Intern `name`, returning its dense id (stable for this transport). */
    EndpointId Resolve(const std::string& name)
    {
        return endpoints_.Intern(name);
    }

    /** The intern table (name lookups for logging edges). */
    const EndpointTable& endpoints() const { return endpoints_; }

    /**
     * Register a handler under an endpoint. Registering over a live
     * handler throws std::logic_error: two components claiming one
     * endpoint is always a wiring bug (the old behaviour silently
     * dropped the first handler). Unregister first to hand over.
     */
    void Register(EndpointId id, RequestHandler handler);
    void Register(const std::string& endpoint, RequestHandler handler);

    /** Remove an endpoint; subsequent calls to it fail. */
    void Unregister(EndpointId id);
    void Unregister(const std::string& endpoint);

    /**
     * Fully retire an endpoint: drop its handler, reset any
     * implementation state (fault injection, routes), and release its
     * name so the id can be recycled. Unlike Unregister (a crash: the
     * name remains routable and can come back), Deregister is
     * decommissioning — a later Register of the same name succeeds and
     * may receive a recycled id. No-op for names never interned.
     */
    virtual void Deregister(EndpointId id);
    void Deregister(const std::string& endpoint);

    /** True if a handler is registered under the endpoint. */
    bool IsRegistered(EndpointId id) const
    {
        return id < handlers_.size() && static_cast<bool>(handlers_[id]);
    }
    bool IsRegistered(const std::string& endpoint) const;

    /**
     * Issue an asynchronous call. Exactly one of `on_ok` / `on_err`
     * fires, at a later event-loop time; `on_err` fires with reason
     * "timeout" if no response arrives within `timeout_ms`.
     */
    virtual void Call(EndpointId id, Payload request, ResponseCallback on_ok,
                      ErrorCallback on_err, SimTime timeout_ms = 1000) = 0;
    void Call(const std::string& endpoint, Payload request,
              ResponseCallback on_ok, ErrorCallback on_err,
              SimTime timeout_ms = 1000);

    /**
     * Batched fire-and-forget delivery: issue every request in `batch`
     * with responses discarded and no timeout armed. A failed or
     * unserved item simply counts as an error at delivery time.
     * Returns the number of items issued (== batch.size()).
     */
    virtual std::size_t CallBatch(std::vector<BatchItem> batch) = 0;

    /**
     * Wire transport counters (`rpc.calls`, `rpc.ok`, `rpc.failed`,
     * `rpc.errors`, `rpc.timeouts`) into `registry`. Handles are
     * resolved once here; the per-call path increments through cached
     * pointers. Pass nullptr to detach.
     */
    void AttachMetrics(telemetry::MetricsRegistry* registry);

    /** Total calls issued (for test assertions). */
    std::uint64_t calls_issued() const { return calls_issued_; }

    /** Total calls that completed successfully. */
    std::uint64_t calls_succeeded() const { return calls_succeeded_; }

    /** Total calls that ended in error or timeout (the sum of the two). */
    std::uint64_t calls_failed() const { return calls_failed_; }

    /** Calls that ended in a prompt error ("connection failed"). */
    std::uint64_t calls_errored() const { return calls_errored_; }

    /** Calls that ended by exhausting their deadline ("timeout"). */
    std::uint64_t calls_timed_out() const { return calls_timed_out_; }

  protected:
    /** Account `n` issued calls. */
    void CountIssued(std::uint64_t n = 1);

    /** Account one successful completion. */
    void CountOk();

    /**
     * Account one prompt failure (connection refused / reset /
     * unserved endpoint). Feeds `rpc.failed` + `rpc.errors`, never
     * `rpc.timeouts` — the split SocketTransport debugging relies on.
     */
    void CountError();

    /** Account one deadline expiry. Feeds `rpc.failed` + `rpc.timeouts`. */
    void CountTimeout();

    /** Handler for `id`, or nullptr when not registered. */
    const RequestHandler* HandlerFor(EndpointId id) const
    {
        return IsRegistered(id) ? &handlers_[id] : nullptr;
    }

    EndpointTable endpoints_;

    /** Handler per EndpointId; empty function == not registered. */
    std::vector<RequestHandler> handlers_;

  private:
    std::uint64_t calls_issued_ = 0;
    std::uint64_t calls_succeeded_ = 0;
    std::uint64_t calls_failed_ = 0;
    std::uint64_t calls_errored_ = 0;
    std::uint64_t calls_timed_out_ = 0;

    /** Cached metric handles; null when no registry is attached. */
    telemetry::Counter* m_calls_ = nullptr;
    telemetry::Counter* m_ok_ = nullptr;
    telemetry::Counter* m_failed_ = nullptr;
    telemetry::Counter* m_errors_ = nullptr;
    telemetry::Counter* m_timeouts_ = nullptr;
};

/** Latency model for one direction of an RPC: base + uniform jitter. */
struct LatencyModel
{
    SimTime base_ms = 2;
    SimTime jitter_ms = 4;

    /** Sample one latency value. */
    SimTime Sample(Rng& rng) const
    {
        if (jitter_ms <= 0) return base_ms;
        return base_ms + static_cast<SimTime>(rng.UniformInt(
                             static_cast<std::uint64_t>(jitter_ms) + 1));
    }
};

/**
 * Fault-injection policy evaluated per call.
 *
 * `kFail` produces a prompt error (connection refused); `kBlackhole`
 * produces no response at all, so the caller only learns via timeout.
 */
enum class CallFate { kOk, kFail, kBlackhole };

/**
 * Per-endpoint failure injector.
 *
 * Endpoints marked down always fail; otherwise each call independently
 * fails with the endpoint-specific (or default) probability, split
 * evenly between prompt failures and blackholes. Endpoints may also be
 * made slow responders: an extra latency override is added to request
 * delivery, so calls to them time out when the override exceeds the
 * caller's deadline (latency storms in chaos campaigns).
 *
 * State is held in vectors indexed by EndpointId, with live counters
 * per fault class so the common no-faults-configured case decides
 * without touching per-endpoint state at all.
 */
class FailureInjector
{
  public:
    FailureInjector(std::uint64_t seed, EndpointTable* endpoints);

    /** Probability applied to endpoints with no specific setting. */
    void SetDefaultFailureProbability(double p) { default_failure_p_ = p; }

    /** Override failure probability for one endpoint. */
    void SetEndpointFailureProbability(EndpointId id, double p);
    void SetEndpointFailureProbability(const std::string& endpoint, double p);

    /** Remove a per-endpoint override. */
    void ClearEndpointFailureProbability(EndpointId id);
    void ClearEndpointFailureProbability(const std::string& endpoint);

    /** Mark an endpoint hard-down (every call fails) or back up. */
    void SetEndpointDown(EndpointId id, bool down);
    void SetEndpointDown(const std::string& endpoint, bool down);

    /** True if the endpoint is currently marked hard-down. */
    bool IsEndpointDown(EndpointId id) const;
    bool IsEndpointDown(const std::string& endpoint) const;

    /** Decide the fate of one call to an endpoint. */
    CallFate Decide(EndpointId id);

    /**
     * Reset every fault setting for one endpoint (probability
     * override, extra latency, down mark) back to the fresh state.
     * Used when an endpoint is deregistered so a later tenant of the
     * recycled id doesn't inherit a removed component's faults.
     */
    void ClearEndpoint(EndpointId id);

    /** Add `extra` ms to request delivery toward one endpoint. */
    void SetEndpointExtraLatency(EndpointId id, SimTime extra);
    void SetEndpointExtraLatency(const std::string& endpoint, SimTime extra);

    /** Remove a slow-responder override. */
    void ClearEndpointExtraLatency(EndpointId id);
    void ClearEndpointExtraLatency(const std::string& endpoint);

    /** Extra request latency for an endpoint (0 when none set). */
    SimTime ExtraLatency(EndpointId id) const
    {
        if (latency_count_ == 0) return 0;  // common case: no storms
        return id < extra_latency_.size() ? extra_latency_[id] : 0;
    }
    SimTime ExtraLatency(const std::string& endpoint) const;

    /** True when no fault of any kind is configured. */
    bool quiescent() const
    {
        return down_count_ == 0 && override_count_ == 0 &&
               latency_count_ == 0 && default_failure_p_ <= 0.0;
    }

    /** Serialize fault configuration and the fault RNG position. */
    void Snapshot(Archive& ar) const;

  private:
    /** Grow per-endpoint vectors to cover `id`. */
    void EnsureSize(EndpointId id);

    Rng rng_;
    EndpointTable* endpoints_;
    double default_failure_p_ = 0.0;

    /** Per-endpoint failure probability; < 0 means "no override". */
    std::vector<double> failure_p_;
    std::vector<SimTime> extra_latency_;
    std::vector<std::uint8_t> down_;

    std::size_t override_count_ = 0;
    std::size_t latency_count_ = 0;
    std::size_t down_count_ = 0;
};

/**
 * The simulated transport: asynchronous call delivery on the
 * simulation clock with injectable faults.
 *
 * A call to an unregistered endpoint (e.g. a crashed agent whose
 * handler was unregistered) behaves like a connection failure.
 */
class SimTransport final : public Transport
{
  public:
    struct Options
    {
        LatencyModel request_latency;
        LatencyModel response_latency;
    };

    SimTransport(sim::Simulation& sim, std::uint64_t seed = 11,
                 Options options = Options{});

    /** Deregister plus fault-state reset for the recycled id. */
    void Deregister(EndpointId id) override;
    using Transport::Deregister;

    void Call(EndpointId id, Payload request, ResponseCallback on_ok,
              ErrorCallback on_err, SimTime timeout_ms = 1000) override;
    using Transport::Call;

    /**
     * Batched fire-and-forget delivery: issue every request in `batch`
     * as ONE scheduled delivery pass instead of one Call per item.
     * Designed for the sharded engine's barrier mailbox re-issue,
     * where a window's cross-shard contract updates all enter the
     * destination shard at the same boundary and every ack is ignored.
     *
     * Semantics relative to per-item Call:
     *   - one request-latency sample covers the whole batch, and
     *     handlers run in item order inside a single kernel event —
     *     strict FIFO (per-item Call jitter could reorder messages);
     *   - the failure injector and the call observer still see every
     *     item individually, so chaos faults fire and replay digests
     *     fold the full stream;
     *   - responses are discarded and no timeout is armed: a failed,
     *     blackholed, or unregistered item simply counts as failed at
     *     delivery time. Per-item Call schedules 2-3 kernel events
     *     (timeout + delivery + response); a batch schedules exactly
     *     one, which is what keeps the barrier's event bill O(1) per
     *     destination shard instead of O(messages).
     *   - per-endpoint extra latency (slow responders) does not delay
     *     the batch; it only matters for calls that await responses.
     *
     * Returns the number of items issued (== batch.size()).
     */
    std::size_t CallBatch(std::vector<BatchItem> batch) override;

    /** Fault injection knobs. */
    FailureInjector& failures() { return failures_; }

    /**
     * Record/inject shim for replay: called once per issued call with
     * the target endpoint, the fate the failure injector decided, and
     * the issue time. This observes every RPC delivery and every
     * chaos-injected failure in schedule order, so the replay recorder
     * can fold the call stream into per-cycle digests. Must not issue
     * calls itself. Pass a default-constructed function to detach.
     */
    using CallObserver = std::function<void(EndpointId, CallFate, SimTime)>;
    void set_call_observer(CallObserver observer)
    {
        call_observer_ = std::move(observer);
    }

    /**
     * Serialize transport progress: call counters, the latency/fault
     * RNG stream positions, and the injector's configured-fault
     * counts. Handlers are closures and are rebuilt by replay, not
     * serialized.
     */
    void Snapshot(Archive& ar) const;

  private:
    sim::Simulation& sim_;
    Rng rng_;
    Options options_;
    FailureInjector failures_;

    /** Replay record shim; empty when no recorder is attached. */
    CallObserver call_observer_;
};

}  // namespace dynamo::rpc

#endif  // DYNAMO_RPC_TRANSPORT_H_
