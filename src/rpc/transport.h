/**
 * @file
 * Simulated RPC transport.
 *
 * Production Dynamo uses Thrift between controllers and agents; the
 * control logic only depends on the *semantics* of that channel:
 * asynchronous request/response, millisecond-scale latency, and the
 * possibility of failures and timeouts. This module reproduces those
 * semantics on the simulation kernel, with an injectable failure
 * policy so tests can exercise the paper's resilience behaviours
 * (estimating power for failed pulls, alarming past the 20 % failure
 * threshold, failing over dead controllers).
 */
#ifndef DYNAMO_RPC_TRANSPORT_H_
#define DYNAMO_RPC_TRANSPORT_H_

#include <any>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/rng.h"
#include "common/units.h"
#include "sim/simulation.h"

namespace dynamo::rpc {

/** Opaque request/response payload (concrete types defined by callers). */
using Payload = std::any;

/** Server-side handler: consumes a request, produces a response. */
using RequestHandler = std::function<Payload(const Payload&)>;

/** Client-side success continuation. */
using ResponseCallback = std::function<void(const Payload&)>;

/** Client-side failure continuation; `reason` is human-readable. */
using ErrorCallback = std::function<void(const std::string& reason)>;

/** Latency model for one direction of an RPC: base + uniform jitter. */
struct LatencyModel
{
    SimTime base_ms = 2;
    SimTime jitter_ms = 4;

    /** Sample one latency value. */
    SimTime Sample(Rng& rng) const
    {
        if (jitter_ms <= 0) return base_ms;
        return base_ms + static_cast<SimTime>(rng.UniformInt(
                             static_cast<std::uint64_t>(jitter_ms) + 1));
    }
};

/**
 * Fault-injection policy evaluated per call.
 *
 * `kFail` produces a prompt error (connection refused); `kBlackhole`
 * produces no response at all, so the caller only learns via timeout.
 */
enum class CallFate { kOk, kFail, kBlackhole };

/**
 * Per-endpoint failure injector.
 *
 * Endpoints marked down always fail; otherwise each call independently
 * fails with the endpoint-specific (or default) probability, split
 * evenly between prompt failures and blackholes. Endpoints may also be
 * made slow responders: an extra latency override is added to request
 * delivery, so calls to them time out when the override exceeds the
 * caller's deadline (latency storms in chaos campaigns).
 */
class FailureInjector
{
  public:
    explicit FailureInjector(std::uint64_t seed = 7);

    /** Probability applied to endpoints with no specific setting. */
    void SetDefaultFailureProbability(double p) { default_failure_p_ = p; }

    /** Override failure probability for one endpoint. */
    void SetEndpointFailureProbability(const std::string& endpoint, double p);

    /** Remove a per-endpoint override. */
    void ClearEndpointFailureProbability(const std::string& endpoint);

    /** Mark an endpoint hard-down (every call fails) or back up. */
    void SetEndpointDown(const std::string& endpoint, bool down);

    /** True if the endpoint is currently marked hard-down. */
    bool IsEndpointDown(const std::string& endpoint) const;

    /** Decide the fate of one call to `endpoint`. */
    CallFate Decide(const std::string& endpoint);

    /** Add `extra` ms to request delivery toward one endpoint. */
    void SetEndpointExtraLatency(const std::string& endpoint, SimTime extra);

    /** Remove a slow-responder override. */
    void ClearEndpointExtraLatency(const std::string& endpoint);

    /** Extra request latency for `endpoint` (0 when none set). */
    SimTime ExtraLatency(const std::string& endpoint) const;

  private:
    Rng rng_;
    double default_failure_p_ = 0.0;
    std::unordered_map<std::string, double> endpoint_failure_p_;
    std::unordered_map<std::string, SimTime> extra_latency_;
    std::unordered_set<std::string> down_;
};

/**
 * The transport: endpoint registry plus asynchronous call delivery on
 * the simulation clock.
 *
 * A call to an unregistered endpoint (e.g. a crashed agent whose
 * handler was unregistered) behaves like a connection failure.
 */
class SimTransport
{
  public:
    struct Options
    {
        LatencyModel request_latency;
        LatencyModel response_latency;
    };

    SimTransport(sim::Simulation& sim, std::uint64_t seed = 11,
                 Options options = Options{});

    /** Register a handler under `endpoint`, replacing any existing one. */
    void Register(const std::string& endpoint, RequestHandler handler);

    /** Remove an endpoint; subsequent calls to it fail. */
    void Unregister(const std::string& endpoint);

    /** True if a handler is registered under `endpoint`. */
    bool IsRegistered(const std::string& endpoint) const;

    /**
     * Issue an asynchronous call. Exactly one of `on_ok` / `on_err`
     * fires, at a later simulation time; `on_err` fires with reason
     * "timeout" if no response arrives within `timeout_ms`.
     */
    void Call(const std::string& endpoint, Payload request,
              ResponseCallback on_ok, ErrorCallback on_err,
              SimTime timeout_ms = 1000);

    /** Fault injection knobs. */
    FailureInjector& failures() { return failures_; }

    /** Total calls issued (for test assertions). */
    std::uint64_t calls_issued() const { return calls_issued_; }

    /** Total calls that completed successfully. */
    std::uint64_t calls_succeeded() const { return calls_succeeded_; }

    /** Total calls that ended in error or timeout. */
    std::uint64_t calls_failed() const { return calls_failed_; }

  private:
    sim::Simulation& sim_;
    Rng rng_;
    Options options_;
    FailureInjector failures_;
    std::unordered_map<std::string, RequestHandler> handlers_;
    std::uint64_t calls_issued_ = 0;
    std::uint64_t calls_succeeded_ = 0;
    std::uint64_t calls_failed_ = 0;
};

}  // namespace dynamo::rpc

#endif  // DYNAMO_RPC_TRANSPORT_H_
