/**
 * @file
 * `SocketTransport`: the deployment-mode implementation of the
 * `Transport` interface over real TCP / Unix-domain sockets.
 *
 * This is the piece that lets the daemons (tools/dynamo_agentd,
 * tools/dynamo_controllerd) run the *unchanged* Agent / LeafController
 * / UpperController classes outside the simulator: the controllers see
 * the same asynchronous Call/Register surface, the same two error
 * strings, and the same `rpc.*` metric names as under SimTransport.
 *
 * Structure:
 *
 *   - **Routes**: a call targets an endpoint *name* (e.g.
 *     "agent:sb0/rpp0/s3"); `AddRoute` maps names to peer addresses.
 *     Endpoints registered locally are served in-process (loopback),
 *     matching SimTransport, so a daemon hosting several components
 *     needs no special casing.
 *   - **Connections**: one multiplexed, lazily-dialed, nonblocking
 *     connection per peer address, carrying wire::Frame streams in
 *     both directions; call_ids pair responses with requests.
 *   - **Event loop**: the owner pumps `PollOnce(budget_ms)` — a single
 *     poll(2) pass over the listener and every connection. All
 *     callbacks (handlers, on_ok, on_err) fire from inside PollOnce,
 *     never re-entrantly from Call, preserving the SimTransport
 *     ordering contract.
 *
 * Failure-semantics parity with SimTransport (the table DESIGN.md §12
 * documents):
 *
 *   SimTransport fate          SocketTransport condition        on_err
 *   kFail / unregistered       no route; connect refused/reset; "connection
 *                              peer error-frame; torn stream     failed"
 *   kBlackhole / slow peer     no response within deadline      "timeout"
 *
 * Both implementations count the former in `rpc.errors` and the
 * latter in `rpc.timeouts` (and both in `rpc.failed`).
 */
#ifndef DYNAMO_RPC_SOCKET_TRANSPORT_H_
#define DYNAMO_RPC_SOCKET_TRANSPORT_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "rpc/transport.h"
#include "rpc/wire.h"

namespace dynamo::rpc {

/**
 * A peer address: "unix:/path/to.sock" or "tcp:host:port" (host is a
 * numeric IPv4 address; the control plane uses addresses from the
 * fleet spec, not DNS).
 */
struct SocketAddress
{
    enum class Family { kUnix, kTcp };

    Family family = Family::kUnix;
    std::string path;  // unix: filesystem path
    std::string host;  // tcp: numeric IPv4
    std::uint16_t port = 0;

    /** Parse "unix:..." / "tcp:host:port"; throws std::invalid_argument. */
    static SocketAddress Parse(const std::string& text);

    /** Canonical text form (inverse of Parse). */
    std::string ToString() const;

    bool operator<(const SocketAddress& o) const
    {
        return ToString() < o.ToString();
    }
};

class SocketTransport final : public Transport
{
  public:
    struct Options
    {
        /** Stamped into every outgoing frame header. */
        std::uint64_t epoch = 0;

        /** Deadline granularity; expired calls are failed on the next
         *  PollOnce, so worst-case timeout slack is one poll budget. */
        std::chrono::milliseconds connect_timeout{1000};
    };

    SocketTransport();
    explicit SocketTransport(Options options);
    ~SocketTransport() override;

    /**
     * Bind and listen on `address`; inbound requests are dispatched to
     * locally registered handlers. A daemon calls this once at boot.
     * Throws std::runtime_error on bind/listen failure (address in
     * use, bad path).
     */
    void Listen(const SocketAddress& address);

    /** The bound listen address (for specs with port 0 — TCP only). */
    const SocketAddress& listen_address() const { return listen_address_; }

    /** Map an endpoint name to the peer daemon serving it. */
    void AddRoute(const std::string& endpoint, const SocketAddress& address);

    /** Remove a route (e.g. after a decommission). */
    void RemoveRoute(const std::string& endpoint);

    /**
     * One event-loop pass: accept, connect-complete, read, write,
     * dispatch complete frames, expire deadlines. Blocks in poll(2)
     * for at most `budget_ms` (0 = nonblocking pass). Returns the
     * number of frames dispatched (requests served + responses/errors
     * delivered + timeouts fired) — 0 means the pass was idle.
     */
    std::size_t PollOnce(int budget_ms);

    /** Calls issued and not yet completed (test/shutdown drains). */
    std::size_t pending_calls() const;

    void Call(EndpointId id, Payload request, ResponseCallback on_ok,
              ErrorCallback on_err, SimTime timeout_ms = 1000) override;
    using Transport::Call;

    /**
     * Fire-and-forget batch, as SimTransport::CallBatch: responses are
     * not awaited (frames carry call_id 0, which tells the peer to
     * skip the response), no timeout is armed, and an unroutable item
     * counts as an error at issue time.
     */
    std::size_t CallBatch(std::vector<BatchItem> batch) override;

    /** Update the epoch stamped into outgoing frames. */
    void set_epoch(std::uint64_t epoch) { options_.epoch = epoch; }

  private:
    struct PendingCall
    {
        std::uint64_t call_id = 0;
        ResponseCallback on_ok;
        ErrorCallback on_err;
        std::chrono::steady_clock::time_point deadline;
    };

    struct Connection
    {
        int fd = -1;
        bool connecting = false;   // nonblocking connect in flight
        bool inbound = false;      // accepted, not dialed
        SocketAddress peer;        // dial target (outbound only)
        wire::FrameReader reader;
        std::string write_buffer;
        std::vector<PendingCall> pending;
        std::chrono::steady_clock::time_point connect_deadline;
    };

    /** A completion captured during a poll pass; fired at the end of
     *  the pass so callbacks never mutate the fd set mid-iteration. */
    struct Completion
    {
        bool ok = false;
        Payload response;          // ok
        std::string reason;        // !ok: "connection failed" / "timeout"
        bool timed_out = false;    // !ok: counts rpc.timeouts vs rpc.errors
        ResponseCallback on_ok;
        ErrorCallback on_err;
    };

    /** Find or dial the connection for a peer address. */
    Connection* ConnectionFor(const SocketAddress& address);

    /** Queue an encoded frame on a connection. */
    void QueueFrame(Connection& conn, const wire::Frame& frame);

    /** Drain readable bytes; dispatch complete frames. Returns false
     *  when the connection died (caller must FailConnection). */
    bool ReadAndDispatch(Connection& conn, std::vector<Completion>& done);

    /** Serve one inbound request frame (invoke handler, queue reply). */
    void ServeRequest(Connection& conn, const wire::Frame& frame);

    /** Complete one pending call from a response/error frame. */
    void HandleReply(Connection& conn, const wire::Frame& frame,
                     std::vector<Completion>& done);

    /** Fail every pending call on a dead connection and drop it. */
    void FailConnection(std::size_t index, std::vector<Completion>& done);

    /** Fire captured completions (end of a poll pass). */
    std::size_t FireCompletions(std::vector<Completion>& done);

    Options options_;
    int listen_fd_ = -1;
    SocketAddress listen_address_;

    /** Endpoint name → peer address (names, not ids: routes can be
     *  added before the endpoint is ever interned by a call). */
    std::map<std::string, SocketAddress> routes_;

    std::vector<Connection> connections_;
    std::uint64_t next_call_id_ = 1;

    /** Calls to locally registered endpoints, served next PollOnce. */
    struct LocalCall
    {
        EndpointId target = kInvalidEndpoint;
        Payload request;
        ResponseCallback on_ok;
        ErrorCallback on_err;
        bool fire_and_forget = false;
    };
    std::deque<LocalCall> local_calls_;
};

}  // namespace dynamo::rpc

#endif  // DYNAMO_RPC_SOCKET_TRANSPORT_H_
