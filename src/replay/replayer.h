/**
 * @file
 * The replayer: re-executes a journaled run and verifies equivalence.
 *
 * The simulation kernel's queue holds closures, so a checkpoint cannot
 * be deserialized into a live fleet. Replay is *reconstructive*: the
 * fleet is rebuilt from the spec text embedded in the journal, the
 * named scenario re-applies the identical fault script, and the run is
 * re-executed under a fresh recorder. Verification then compares the
 * new journal window-by-window against the recorded one — RPC-stream
 * hash, kernel-event hash, and every TraceSpan field bit-exactly.
 *
 * `ReplayFromCheckpoint(i)` additionally proves the checkpoint itself:
 * at the checkpoint's window the rebuilt fleet's Snapshot bytes must
 * equal the stored state byte-for-byte, after which only the tail
 * windows are compared (window hashes reset per window, so the tail
 * stands alone). This is what "restore any checkpoint and re-execute"
 * means in a world where state includes closures: the checkpoint is
 * the proof anchor, the spec + event sources are the restore medium.
 *
 * For divergence experiments the replayer accepts a spec override —
 * the moral equivalent of running a modified binary against an old
 * journal — which the bisector uses to pinpoint the first divergent
 * window a policy change causes.
 */
#ifndef DYNAMO_REPLAY_REPLAYER_H_
#define DYNAMO_REPLAY_REPLAYER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "replay/journal.h"
#include "replay/scenario.h"

namespace dynamo::replay {

/** Outcome of one replay comparison. */
struct ReplayResult
{
    /** True when every compared window matched bit-exactly. */
    bool ok = false;

    /** Windows compared (tail windows only in from-checkpoint mode). */
    std::uint64_t cycles_compared = 0;

    /** First divergent window, or kNoDivergence. */
    std::uint64_t first_divergent_cycle = kNoDivergence;

    /** Checkpoint state verified bit-exactly (from-checkpoint mode). */
    bool checkpoint_verified = false;

    /** Human-readable account of the first difference (empty when ok). */
    std::string detail;

    static constexpr std::uint64_t kNoDivergence = ~0ULL;
};

/** The replay journal produced during verification (for bisection). */
class Replayer
{
  public:
    /** `journal` must outlive the replayer. */
    explicit Replayer(const Journal& journal);
    ~Replayer();

    Replayer(const Replayer&) = delete;
    Replayer& operator=(const Replayer&) = delete;

    /**
     * Run with this spec text instead of the journal's — simulates
     * replaying an old journal under a changed policy/binary.
     */
    void set_spec_override(std::string spec_text);

    /**
     * Re-execute the whole run and compare every window. The scenario
     * comes from the journal header unless `scenario_override` is set.
     */
    ReplayResult ReplayFromStart();

    /**
     * Re-execute, verify the `index`-th checkpoint's state bytes
     * bit-exactly, then compare only the windows after it.
     */
    ReplayResult ReplayFromCheckpoint(std::size_t index);

    /** The journal recorded during the last Replay* call. */
    const Journal& replayed() const { return replayed_; }

  private:
    ReplayResult Run(std::optional<std::size_t> checkpoint_index);

    const Journal& journal_;
    std::optional<std::string> spec_override_;
    Journal replayed_;
};

/**
 * Window-level equality: hashes, missed-span counts, and every span
 * field-exactly. On mismatch returns false and describes the first
 * difference in `why` (if non-null).
 */
bool CyclesEqual(const CycleRecord& recorded, const CycleRecord& replayed,
                 std::string* why);

/** Field-by-field diff of two spans, one "field: a != b" line each. */
std::string DescribeSpanDiff(const telemetry::TraceSpan& a,
                             const telemetry::TraceSpan& b);

}  // namespace dynamo::replay

#endif  // DYNAMO_REPLAY_REPLAYER_H_
