#include "replay/recorder.h"

#include <utility>

#include "fleet/spec_parser.h"
#include "telemetry/trace.h"

namespace dynamo::replay {

Recorder::Recorder(fleet::Fleet& fleet, RecorderConfig config)
    : fleet_(fleet), config_(std::move(config))
{
    journal_.spec_text = fleet::SerializeFleetSpec(fleet_.spec());
    journal_.scenario = config_.scenario;
    journal_.cycle_period = config_.cycle_period;
    journal_.checkpoint_every = config_.checkpoint_every;
    journal_.invariants_checked = config_.invariants_checked;

    if (telemetry::TraceLog* traces = fleet_.trace_log()) {
        span_watermark_ = traces->next_id();
    }

    fleet_.transport().set_call_observer(
        [this](rpc::EndpointId id, rpc::CallFate fate, SimTime now) {
            rpc_hash_.Mix(id);
            rpc_hash_.Mix(static_cast<std::uint64_t>(fate));
            rpc_hash_.Mix(static_cast<std::uint64_t>(now));
        });
    fleet_.sim().set_event_observer([this](SimTime t, std::uint64_t seq) {
        kernel_hash_.Mix(static_cast<std::uint64_t>(t));
        kernel_hash_.Mix(seq);
    });
    fleet_.set_reconfig_observer([this](std::uint64_t epoch, SimTime time,
                                        const std::string& description) {
        journal_.reconfigs.push_back(ReconfigRecord{epoch, time, description});
    });

    // Phase the window close at the end of each period; the first
    // window covers (start, start + period].
    task_ = fleet_.sim().SchedulePeriodic(config_.cycle_period,
                                          [this]() { CloseWindow(); });
}

Recorder::~Recorder()
{
    task_.Cancel();
    fleet_.transport().set_call_observer({});
    fleet_.sim().set_event_observer({});
    fleet_.set_reconfig_observer({});
}

void
Recorder::RecordFault(SimTime time, const std::string& description)
{
    journal_.faults.push_back(FaultRecord{time, description});
}

void
Recorder::CloseWindow()
{
    CycleRecord rec;
    rec.cycle = window_index_;
    rec.time = fleet_.sim().Now();
    rec.rpc_hash = rpc_hash_.value();
    rec.kernel_hash = kernel_hash_.value();
    rpc_hash_.Reset();
    kernel_hash_.Reset();

    if (telemetry::TraceLog* traces = fleet_.trace_log()) {
        // Drain spans appended since the last window by id watermark.
        // Eviction can outrun a slow cadence; count what was lost so
        // comparisons know the window is incomplete rather than empty.
        const telemetry::SpanId first = traces->first_id();
        if (first > span_watermark_ && traces->evicted() > 0) {
            rec.spans_missed = first - span_watermark_;
            span_watermark_ = first;
        }
        for (telemetry::SpanId id = span_watermark_; id < traces->next_id();
             ++id) {
            if (const telemetry::TraceSpan* span = traces->Find(id)) {
                rec.spans.push_back(*span);
            }
        }
        span_watermark_ = traces->next_id();
    }
    journal_.cycles.push_back(std::move(rec));

    if (config_.checkpoint_every > 0 &&
        (window_index_ + 1) % config_.checkpoint_every == 0) {
        Archive state;
        fleet_.Snapshot(state);
        CheckpointRecord cp;
        cp.cycle = window_index_;
        cp.time = fleet_.sim().Now();
        cp.digest = state.digest();
        cp.state = state.bytes();
        journal_.checkpoints.push_back(std::move(cp));
    }
    ++window_index_;
}

}  // namespace dynamo::replay
