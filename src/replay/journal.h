/**
 * @file
 * The replay journal: a compact binary record of one simulated run.
 *
 * A journal captures everything needed to (a) re-verify a run
 * cycle-by-cycle and (b) restore any mid-run checkpoint:
 *
 *   - a header embedding the canonical fleet-spec text (so the exact
 *     fleet rebuilds from the journal alone) plus the recording
 *     cadence and the scenario label;
 *   - one kCycle record per recording window: rolling FNV hashes of
 *     the RPC stream (endpoint, fate, time of every transport call)
 *     and of the kernel event stream ((time, seq) of every executed
 *     event), both reset at each window boundary so any tail of the
 *     journal can be compared independently, plus the decision
 *     TraceSpans appended during the window in canonical binary form;
 *   - periodic kCheckpoint records carrying the full fleet state
 *     (Fleet::Snapshot bytes) and its digest;
 *   - kFault records for every chaos action that fired.
 *
 * Controllers, servers, and the kernel hold closures, so a checkpoint
 * is not deserialized directly; the replayer rebuilds the fleet from
 * the embedded spec, re-executes to the checkpoint cycle, and asserts
 * the rebuilt state's bytes equal the stored ones bit-exactly. The
 * checkpoint is the verification anchor that makes "restore" honest.
 */
#ifndef DYNAMO_REPLAY_JOURNAL_H_
#define DYNAMO_REPLAY_JOURNAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.h"
#include "telemetry/trace.h"

namespace dynamo::replay {

/** File magic; bump the trailing digit on format changes. */
inline constexpr char kJournalMagic[8] = {'D', 'Y', 'N', 'J',
                                          'R', 'N', 'L', '1'};

/**
 * Journal format version written into the header.
 *
 * Version 2 appends a trailing little-endian u64 FNV-1a digest over
 * every preceding byte (magic through the kEnd record). The decoder
 * verifies the digest *before* parsing any record, so a truncated or
 * bit-flipped file is rejected with a diagnostic instead of being
 * misread. Version-1 journals (no digest) are still accepted.
 */
inline constexpr std::uint32_t kJournalVersion = 2;

/** Record tags. */
enum class RecordType : std::uint8_t {
    kCycle = 1,
    kCheckpoint = 2,
    kFault = 3,
    kEnd = 4,
    kReconfig = 5,
};

/** One recording window: hashes + the spans the window produced. */
struct CycleRecord
{
    std::uint64_t cycle = 0;          ///< Window index, from 0.
    SimTime time = 0;                 ///< Sim time at window close.
    std::uint64_t rpc_hash = 0;       ///< FNV over this window's RPC stream.
    std::uint64_t kernel_hash = 0;    ///< FNV over this window's events.
    std::uint64_t spans_missed = 0;   ///< Spans evicted before collection.
    std::vector<telemetry::TraceSpan> spans;
};

/** Full fleet state at a window boundary. */
struct CheckpointRecord
{
    std::uint64_t cycle = 0;  ///< Window index the state was taken at.
    SimTime time = 0;
    std::uint64_t digest = 0;  ///< FNV digest of `state`.
    std::string state;         ///< Fleet::Snapshot bytes.
};

/** One chaos fault application. */
struct FaultRecord
{
    SimTime time = 0;
    std::string description;
};

/**
 * One committed fleet reconfiguration transaction. Like faults these
 * are audit records, not instructions: the scenario script re-issues
 * the transaction during replay, and the replayer asserts the
 * committed (epoch, time, description) triple matches bit-exactly.
 */
struct ReconfigRecord
{
    std::uint64_t epoch = 0;  ///< Spec epoch after the commit.
    SimTime time = 0;         ///< Window-barrier commit time.
    std::string description;  ///< ReconfigTxn::Describe() text.
};

/** A complete recorded run. */
struct Journal
{
    std::uint32_t version = kJournalVersion;
    std::string spec_text;            ///< SerializeFleetSpec output.
    std::string scenario;             ///< Named scenario that was driven.
    SimTime cycle_period = 3000;      ///< Recording window, ms.
    std::uint64_t checkpoint_every = 10;  ///< Windows per checkpoint.

    /**
     * True when a chaos InvariantChecker (default config) was armed
     * during recording. The checker's periodic sampling advances lazy
     * server state at its own times, which changes the RNG draw
     * schedule — so replay must recreate it to reproduce the run.
     */
    bool invariants_checked = false;

    std::vector<CycleRecord> cycles;
    std::vector<CheckpointRecord> checkpoints;
    std::vector<FaultRecord> faults;
    std::vector<ReconfigRecord> reconfigs;

    /** Checkpoint at exactly `cycle`, or nullptr. */
    const CheckpointRecord* CheckpointAtCycle(std::uint64_t cycle) const;
};

/** Serialize to the binary on-disk format. */
std::string EncodeJournal(const Journal& journal);

/** Inverse of EncodeJournal; throws std::runtime_error on malformed input. */
Journal DecodeJournal(std::string_view bytes);

/** Write a journal file; throws std::runtime_error on I/O failure. */
void WriteJournalFile(const std::string& path, const Journal& journal);

/** Read a journal file; throws std::runtime_error on I/O or format error. */
Journal ReadJournalFile(const std::string& path);

}  // namespace dynamo::replay

#endif  // DYNAMO_REPLAY_JOURNAL_H_
