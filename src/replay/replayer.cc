#include "replay/replayer.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "chaos/campaign.h"
#include "chaos/invariants.h"
#include "fleet/fleet.h"
#include "fleet/spec_parser.h"
#include "replay/recorder.h"

namespace dynamo::replay {
namespace {

std::string
Num(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

/** Append a "name: a != b" line when the values differ. */
template <typename T>
void
DiffField(std::ostringstream& out, const char* name, const T& a, const T& b)
{
    if (a == b) return;
    if constexpr (std::is_same_v<T, double>) {
        out << "  " << name << ": " << Num(a) << " != " << Num(b) << "\n";
    } else {
        out << "  " << name << ": " << a << " != " << b << "\n";
    }
}

}  // namespace

std::string
DescribeSpanDiff(const telemetry::TraceSpan& a, const telemetry::TraceSpan& b)
{
    std::ostringstream out;
    DiffField(out, "id", a.id, b.id);
    DiffField(out, "parent", a.parent, b.parent);
    DiffField(out, "time", a.time, b.time);
    DiffField(out, "kind", static_cast<int>(a.kind), static_cast<int>(b.kind));
    DiffField(out, "source", a.source, b.source);
    DiffField(out, "band", static_cast<int>(a.band), static_cast<int>(b.band));
    DiffField(out, "was_capping", static_cast<int>(a.was_capping),
              static_cast<int>(b.was_capping));
    DiffField(out, "epoch", a.epoch, b.epoch);
    DiffField(out, "measured", a.measured, b.measured);
    DiffField(out, "limit", a.limit, b.limit);
    DiffField(out, "threshold", a.threshold, b.threshold);
    DiffField(out, "target", a.target, b.target);
    DiffField(out, "cut", a.cut, b.cut);
    DiffField(out, "planned_cut", a.planned_cut, b.planned_cut);
    DiffField(out, "satisfied", static_cast<int>(a.satisfied),
              static_cast<int>(b.satisfied));
    DiffField(out, "dry_run", static_cast<int>(a.dry_run),
              static_cast<int>(b.dry_run));
    DiffField(out, "groups.size", a.groups.size(), b.groups.size());
    for (std::size_t i = 0; i < a.groups.size() && i < b.groups.size(); ++i) {
        const auto& ga = a.groups[i];
        const auto& gb = b.groups[i];
        const std::string p = "groups[" + std::to_string(i) + "].";
        DiffField(out, (p + "priority_group").c_str(), ga.priority_group,
                  gb.priority_group);
        DiffField(out, (p + "cut").c_str(), ga.cut, gb.cut);
        DiffField(out, (p + "servers").c_str(), ga.servers, gb.servers);
    }
    DiffField(out, "allocs.size", a.allocs.size(), b.allocs.size());
    for (std::size_t i = 0; i < a.allocs.size() && i < b.allocs.size(); ++i) {
        const auto& aa = a.allocs[i];
        const auto& ab = b.allocs[i];
        const std::string p = "allocs[" + std::to_string(i) + "].";
        DiffField(out, (p + "target").c_str(), aa.target, ab.target);
        DiffField(out, (p + "power").c_str(), aa.power, ab.power);
        DiffField(out, (p + "floor").c_str(), aa.floor, ab.floor);
        DiffField(out, (p + "quota").c_str(), aa.quota, ab.quota);
        DiffField(out, (p + "cut").c_str(), aa.cut, ab.cut);
        DiffField(out, (p + "limit_sent").c_str(), aa.limit_sent,
                  ab.limit_sent);
        DiffField(out, (p + "bucket").c_str(), aa.bucket, ab.bucket);
        DiffField(out, (p + "offender").c_str(), static_cast<int>(aa.offender),
                  static_cast<int>(ab.offender));
    }
    return out.str();
}

bool
CyclesEqual(const CycleRecord& recorded, const CycleRecord& replayed,
            std::string* why)
{
    // Collect every differing aspect, not just the first: a policy
    // change usually perturbs the kernel/rpc hashes AND the decision
    // spans together, and the span diff is the part a human can read.
    std::vector<std::string> reasons;
    if (recorded.time != replayed.time) {
        reasons.push_back("window close time " +
                          std::to_string(recorded.time) + " != " +
                          std::to_string(replayed.time));
    }
    if (recorded.kernel_hash != replayed.kernel_hash) {
        reasons.push_back("kernel event-stream hash differs");
    }
    if (recorded.rpc_hash != replayed.rpc_hash) {
        reasons.push_back("rpc stream hash differs");
    }
    if (recorded.spans_missed != replayed.spans_missed) {
        reasons.push_back("spans_missed " +
                          std::to_string(recorded.spans_missed) + " != " +
                          std::to_string(replayed.spans_missed));
    }
    if (recorded.spans.size() != replayed.spans.size()) {
        reasons.push_back("span count " +
                          std::to_string(recorded.spans.size()) + " != " +
                          std::to_string(replayed.spans.size()));
    } else {
        for (std::size_t i = 0; i < recorded.spans.size(); ++i) {
            if (telemetry::SpansIdentical(recorded.spans[i],
                                          replayed.spans[i])) {
                continue;
            }
            reasons.push_back(
                "span " + std::to_string(i) + " (id=" +
                std::to_string(recorded.spans[i].id) + ") differs:\n" +
                DescribeSpanDiff(recorded.spans[i], replayed.spans[i]));
            break;  // One span diff is enough to read; don't flood.
        }
    }
    if (reasons.empty()) return true;
    if (why != nullptr) {
        std::string joined;
        for (const auto& reason : reasons) {
            if (!joined.empty()) joined += "; ";
            joined += reason;
        }
        *why = joined;
    }
    return false;
}

Replayer::Replayer(const Journal& journal) : journal_(journal) {}

Replayer::~Replayer() = default;

void
Replayer::set_spec_override(std::string spec_text)
{
    spec_override_ = std::move(spec_text);
}

ReplayResult
Replayer::ReplayFromStart()
{
    return Run(std::nullopt);
}

ReplayResult
Replayer::ReplayFromCheckpoint(std::size_t index)
{
    return Run(index);
}

ReplayResult
Replayer::Run(std::optional<std::size_t> checkpoint_index)
{
    ReplayResult result;
    if (checkpoint_index && *checkpoint_index >= journal_.checkpoints.size()) {
        result.detail = "checkpoint index " +
                        std::to_string(*checkpoint_index) +
                        " out of range (journal has " +
                        std::to_string(journal_.checkpoints.size()) + ")";
        return result;
    }
    ScenarioSpec scenario;
    try {
        scenario = ParseScenarioSpec(journal_.scenario);
    } catch (const std::invalid_argument& e) {
        result.detail = e.what();
        return result;
    }

    const std::string& spec_text =
        spec_override_ ? *spec_override_ : journal_.spec_text;
    fleet::Fleet fleet(fleet::ParseFleetSpecString(spec_text));
    chaos::CampaignEngine campaign(fleet.sim(), fleet.transport(),
                                   fleet.event_log());
    scenario.Apply(fleet, campaign);

    RecorderConfig config;
    config.cycle_period = journal_.cycle_period;
    config.checkpoint_every = journal_.checkpoint_every;
    config.scenario = journal_.scenario;
    config.invariants_checked = journal_.invariants_checked;
    Recorder recorder(fleet, config);

    // Recreate the invariant checker in the same construction order
    // as `replay_cli record --check`: its periodic sampling advances
    // lazy server state, so omitting it would change the RNG draw
    // schedule and diverge the run.
    std::optional<chaos::InvariantChecker> checker;
    if (journal_.invariants_checked) checker.emplace(fleet);

    fleet.RunFor(static_cast<SimTime>(journal_.cycles.size()) *
                 journal_.cycle_period);
    replayed_ = recorder.Finish();

    // From-checkpoint mode: the rebuilt run must reproduce the stored
    // state byte-for-byte at the checkpoint's window, which anchors
    // the tail comparison to a proven-identical mid-run state.
    std::uint64_t start_cycle = 0;
    if (checkpoint_index) {
        const CheckpointRecord& want = journal_.checkpoints[*checkpoint_index];
        const CheckpointRecord* got = replayed_.CheckpointAtCycle(want.cycle);
        if (got == nullptr) {
            result.detail = "replay produced no checkpoint at cycle " +
                            std::to_string(want.cycle);
            return result;
        }
        if (got->digest != want.digest || got->state != want.state) {
            result.detail = "checkpoint state at cycle " +
                            std::to_string(want.cycle) +
                            " is not bit-identical (recorded digest " +
                            std::to_string(want.digest) + ", replayed " +
                            std::to_string(got->digest) + ")";
            return result;
        }
        result.checkpoint_verified = true;
        start_cycle = want.cycle + 1;
    }

    if (replayed_.cycles.size() < journal_.cycles.size()) {
        result.detail = "replay recorded " +
                        std::to_string(replayed_.cycles.size()) +
                        " windows, journal has " +
                        std::to_string(journal_.cycles.size());
        return result;
    }

    for (std::uint64_t c = start_cycle; c < journal_.cycles.size(); ++c) {
        ++result.cycles_compared;
        std::string why;
        if (!CyclesEqual(journal_.cycles[c], replayed_.cycles[c], &why)) {
            result.first_divergent_cycle = c;
            result.detail = "cycle " + std::to_string(c) + ": " + why;
            return result;
        }
    }

    // The reconfiguration audit trail must reproduce exactly: same
    // transactions, same epochs, same barrier commit times. (The
    // scenario re-issued them; these records prove the replayed fleet
    // mutated identically.)
    if (replayed_.reconfigs.size() != journal_.reconfigs.size()) {
        result.detail = "replay committed " +
                        std::to_string(replayed_.reconfigs.size()) +
                        " reconfigurations, journal has " +
                        std::to_string(journal_.reconfigs.size());
        return result;
    }
    for (std::size_t i = 0; i < journal_.reconfigs.size(); ++i) {
        const ReconfigRecord& want = journal_.reconfigs[i];
        const ReconfigRecord& got = replayed_.reconfigs[i];
        if (want.epoch != got.epoch || want.time != got.time ||
            want.description != got.description) {
            result.detail =
                "reconfig " + std::to_string(i) + " differs: recorded epoch " +
                std::to_string(want.epoch) + " t=" + std::to_string(want.time) +
                " \"" + want.description + "\", replayed epoch " +
                std::to_string(got.epoch) + " t=" + std::to_string(got.time) +
                " \"" + got.description + "\"";
            return result;
        }
    }
    result.ok = true;
    return result;
}

}  // namespace dynamo::replay
