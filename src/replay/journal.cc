#include "replay/journal.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "common/archive.h"

namespace dynamo::replay {
namespace {

void
EncodeCycle(Archive& ar, const CycleRecord& rec)
{
    ar.U8(static_cast<std::uint8_t>(RecordType::kCycle));
    ar.U64(rec.cycle);
    ar.I64(rec.time);
    ar.U64(rec.rpc_hash);
    ar.U64(rec.kernel_hash);
    ar.U64(rec.spans_missed);
    ar.U64(rec.spans.size());
    for (const auto& span : rec.spans) telemetry::WriteSpan(ar, span);
}

CycleRecord
DecodeCycle(ArchiveReader& ar)
{
    CycleRecord rec;
    rec.cycle = ar.U64();
    rec.time = ar.I64();
    rec.rpc_hash = ar.U64();
    rec.kernel_hash = ar.U64();
    rec.spans_missed = ar.U64();
    const std::uint64_t n = ar.U64();
    // Every span occupies at least one byte, so a count exceeding the
    // remaining bytes is corruption — reject it before reserve() turns
    // a flipped length bit into a multi-gigabyte allocation.
    if (n > ar.remaining()) {
        throw std::runtime_error("span count " + std::to_string(n) +
                                 " exceeds remaining " +
                                 std::to_string(ar.remaining()) + " bytes");
    }
    rec.spans.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        rec.spans.push_back(telemetry::ReadSpan(ar));
    }
    return rec;
}

const char*
RecordTypeName(RecordType type)
{
    switch (type) {
      case RecordType::kCycle: return "cycle";
      case RecordType::kCheckpoint: return "checkpoint";
      case RecordType::kFault: return "fault";
      case RecordType::kEnd: return "end";
      case RecordType::kReconfig: return "reconfig";
    }
    return "unknown";
}

void
EncodeCheckpoint(Archive& ar, const CheckpointRecord& rec)
{
    ar.U8(static_cast<std::uint8_t>(RecordType::kCheckpoint));
    ar.U64(rec.cycle);
    ar.I64(rec.time);
    ar.U64(rec.digest);
    ar.Str(rec.state);
}

CheckpointRecord
DecodeCheckpoint(ArchiveReader& ar)
{
    CheckpointRecord rec;
    rec.cycle = ar.U64();
    rec.time = ar.I64();
    rec.digest = ar.U64();
    rec.state = ar.Str();
    return rec;
}

}  // namespace

const CheckpointRecord*
Journal::CheckpointAtCycle(std::uint64_t cycle) const
{
    for (const auto& cp : checkpoints) {
        if (cp.cycle == cycle) return &cp;
    }
    return nullptr;
}

std::string
EncodeJournal(const Journal& journal)
{
    Archive ar;
    for (const char c : kJournalMagic) ar.U8(static_cast<std::uint8_t>(c));
    // Always encode the current format; `journal.version` records what
    // a *decoded* file declared, not what re-encoding should emit.
    ar.U32(kJournalVersion);
    ar.Str(journal.spec_text);
    ar.Str(journal.scenario);
    ar.I64(journal.cycle_period);
    ar.U64(journal.checkpoint_every);
    ar.Bool(journal.invariants_checked);

    // Records interleave in run order: cycles ascending, each
    // checkpoint immediately after its cycle record, faults and
    // reconfigurations by time (reconfigs after faults at a tie —
    // faults fire at arbitrary times, commits only at barriers).
    std::size_t cp = 0;
    std::size_t fault = 0;
    std::size_t reconfig = 0;
    for (const auto& cycle : journal.cycles) {
        while (fault < journal.faults.size() &&
               journal.faults[fault].time <= cycle.time) {
            const auto& f = journal.faults[fault++];
            ar.U8(static_cast<std::uint8_t>(RecordType::kFault));
            ar.I64(f.time);
            ar.Str(f.description);
        }
        while (reconfig < journal.reconfigs.size() &&
               journal.reconfigs[reconfig].time <= cycle.time) {
            const auto& r = journal.reconfigs[reconfig++];
            ar.U8(static_cast<std::uint8_t>(RecordType::kReconfig));
            ar.U64(r.epoch);
            ar.I64(r.time);
            ar.Str(r.description);
        }
        EncodeCycle(ar, cycle);
        while (cp < journal.checkpoints.size() &&
               journal.checkpoints[cp].cycle <= cycle.cycle) {
            EncodeCheckpoint(ar, journal.checkpoints[cp++]);
        }
    }
    while (fault < journal.faults.size()) {
        const auto& f = journal.faults[fault++];
        ar.U8(static_cast<std::uint8_t>(RecordType::kFault));
        ar.I64(f.time);
        ar.Str(f.description);
    }
    while (reconfig < journal.reconfigs.size()) {
        const auto& r = journal.reconfigs[reconfig++];
        ar.U8(static_cast<std::uint8_t>(RecordType::kReconfig));
        ar.U64(r.epoch);
        ar.I64(r.time);
        ar.Str(r.description);
    }
    while (cp < journal.checkpoints.size()) {
        EncodeCheckpoint(ar, journal.checkpoints[cp++]);
    }
    ar.U8(static_cast<std::uint8_t>(RecordType::kEnd));

    // Version 2: trailing integrity digest over every byte written so
    // far. Capture before the U64 below folds the digest into itself.
    const std::uint64_t digest = ar.digest();
    ar.U64(digest);
    return ar.bytes();
}

Journal
DecodeJournal(std::string_view bytes)
{
    // Magic + version come first; anything shorter cannot be a journal.
    constexpr std::size_t kHeaderBytes = sizeof(kJournalMagic) + 4;
    if (bytes.size() < kHeaderBytes) {
        throw std::runtime_error(
            "replay journal: truncated: " + std::to_string(bytes.size()) +
            " bytes, need at least " + std::to_string(kHeaderBytes) +
            " for magic + version");
    }
    for (std::size_t i = 0; i < sizeof(kJournalMagic); ++i) {
        if (bytes[i] != kJournalMagic[i]) {
            throw std::runtime_error(
                "replay journal: bad magic at offset " + std::to_string(i) +
                " (not a DYNJRNL1 file)");
        }
    }

    ArchiveReader header(bytes.substr(sizeof(kJournalMagic), 4));
    const std::uint32_t version = header.U32();
    if (version != 1 && version != kJournalVersion) {
        throw std::runtime_error("replay journal: unsupported version " +
                                 std::to_string(version));
    }

    std::string_view body = bytes;
    if (version >= 2) {
        // Verify the trailing digest before trusting a single record:
        // any truncation or bit flip anywhere in the file surfaces
        // here, with the mismatch localized to the whole file rather
        // than wherever the parse happened to derail.
        if (bytes.size() < kHeaderBytes + 8) {
            throw std::runtime_error(
                "replay journal: truncated: " + std::to_string(bytes.size()) +
                " bytes, version-2 journals end with an 8-byte digest");
        }
        const std::size_t digest_at = bytes.size() - 8;
        const std::uint64_t expected = Fnv1a64(bytes.substr(0, digest_at));
        ArchiveReader tail(bytes.substr(digest_at));
        const std::uint64_t stored = tail.U64();
        if (stored != expected) {
            char hex[64];
            std::snprintf(hex, sizeof hex, "%016llx, computed %016llx",
                          static_cast<unsigned long long>(stored),
                          static_cast<unsigned long long>(expected));
            throw std::runtime_error(
                "replay journal: integrity digest mismatch over " +
                std::to_string(digest_at) + " bytes: stored " + hex +
                " (file truncated or corrupted)");
        }
        body = bytes.substr(0, digest_at);
    }

    ArchiveReader ar(body);
    for (std::size_t i = 0; i < sizeof(kJournalMagic); ++i) ar.U8();
    Journal journal;
    journal.version = ar.U32();
    try {
        journal.spec_text = ar.Str();
        journal.scenario = ar.Str();
        journal.cycle_period = ar.I64();
        journal.checkpoint_every = ar.U64();
        journal.invariants_checked = ar.Bool();
    } catch (const std::exception& e) {
        throw std::runtime_error(
            "replay journal: header at offset " + std::to_string(ar.pos()) +
            ": " + e.what());
    }

    bool ended = false;
    std::size_t record = 0;
    while (!ended) {
        const std::size_t at = ar.pos();
        RecordType type{};  // 0 = "unknown" if the tag read itself throws
        try {
            type = static_cast<RecordType>(ar.U8());
            switch (type) {
              case RecordType::kCycle:
                journal.cycles.push_back(DecodeCycle(ar));
                break;
              case RecordType::kCheckpoint:
                journal.checkpoints.push_back(DecodeCheckpoint(ar));
                break;
              case RecordType::kFault: {
                FaultRecord f;
                f.time = ar.I64();
                f.description = ar.Str();
                journal.faults.push_back(std::move(f));
                break;
              }
              case RecordType::kReconfig: {
                ReconfigRecord r;
                r.epoch = ar.U64();
                r.time = ar.I64();
                r.description = ar.Str();
                journal.reconfigs.push_back(std::move(r));
                break;
              }
              case RecordType::kEnd:
                ended = true;
                break;
              default:
                throw std::runtime_error(
                    "unknown record type " +
                    std::to_string(static_cast<unsigned>(type)));
            }
        } catch (const std::exception& e) {
            throw std::runtime_error(
                "replay journal: record " + std::to_string(record) + " (" +
                RecordTypeName(type) + ") at offset " + std::to_string(at) +
                ": " + e.what());
        }
        ++record;
    }
    return journal;
}

void
WriteJournalFile(const std::string& path, const Journal& journal)
{
    const std::string bytes = EncodeJournal(journal);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open journal for write: " + path);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) throw std::runtime_error("journal write failed: " + path);
}

Journal
ReadJournalFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open journal: " + path);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    return DecodeJournal(bytes);
}

}  // namespace dynamo::replay
