#include "replay/journal.h"

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "common/archive.h"

namespace dynamo::replay {
namespace {

void
EncodeCycle(Archive& ar, const CycleRecord& rec)
{
    ar.U8(static_cast<std::uint8_t>(RecordType::kCycle));
    ar.U64(rec.cycle);
    ar.I64(rec.time);
    ar.U64(rec.rpc_hash);
    ar.U64(rec.kernel_hash);
    ar.U64(rec.spans_missed);
    ar.U64(rec.spans.size());
    for (const auto& span : rec.spans) telemetry::WriteSpan(ar, span);
}

CycleRecord
DecodeCycle(ArchiveReader& ar)
{
    CycleRecord rec;
    rec.cycle = ar.U64();
    rec.time = ar.I64();
    rec.rpc_hash = ar.U64();
    rec.kernel_hash = ar.U64();
    rec.spans_missed = ar.U64();
    const std::uint64_t n = ar.U64();
    rec.spans.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        rec.spans.push_back(telemetry::ReadSpan(ar));
    }
    return rec;
}

void
EncodeCheckpoint(Archive& ar, const CheckpointRecord& rec)
{
    ar.U8(static_cast<std::uint8_t>(RecordType::kCheckpoint));
    ar.U64(rec.cycle);
    ar.I64(rec.time);
    ar.U64(rec.digest);
    ar.Str(rec.state);
}

CheckpointRecord
DecodeCheckpoint(ArchiveReader& ar)
{
    CheckpointRecord rec;
    rec.cycle = ar.U64();
    rec.time = ar.I64();
    rec.digest = ar.U64();
    rec.state = ar.Str();
    return rec;
}

}  // namespace

const CheckpointRecord*
Journal::CheckpointAtCycle(std::uint64_t cycle) const
{
    for (const auto& cp : checkpoints) {
        if (cp.cycle == cycle) return &cp;
    }
    return nullptr;
}

std::string
EncodeJournal(const Journal& journal)
{
    Archive ar;
    for (const char c : kJournalMagic) ar.U8(static_cast<std::uint8_t>(c));
    ar.U32(journal.version);
    ar.Str(journal.spec_text);
    ar.Str(journal.scenario);
    ar.I64(journal.cycle_period);
    ar.U64(journal.checkpoint_every);
    ar.Bool(journal.invariants_checked);

    // Records interleave in run order: cycles ascending, each
    // checkpoint immediately after its cycle record, faults and
    // reconfigurations by time (reconfigs after faults at a tie —
    // faults fire at arbitrary times, commits only at barriers).
    std::size_t cp = 0;
    std::size_t fault = 0;
    std::size_t reconfig = 0;
    for (const auto& cycle : journal.cycles) {
        while (fault < journal.faults.size() &&
               journal.faults[fault].time <= cycle.time) {
            const auto& f = journal.faults[fault++];
            ar.U8(static_cast<std::uint8_t>(RecordType::kFault));
            ar.I64(f.time);
            ar.Str(f.description);
        }
        while (reconfig < journal.reconfigs.size() &&
               journal.reconfigs[reconfig].time <= cycle.time) {
            const auto& r = journal.reconfigs[reconfig++];
            ar.U8(static_cast<std::uint8_t>(RecordType::kReconfig));
            ar.U64(r.epoch);
            ar.I64(r.time);
            ar.Str(r.description);
        }
        EncodeCycle(ar, cycle);
        while (cp < journal.checkpoints.size() &&
               journal.checkpoints[cp].cycle <= cycle.cycle) {
            EncodeCheckpoint(ar, journal.checkpoints[cp++]);
        }
    }
    while (fault < journal.faults.size()) {
        const auto& f = journal.faults[fault++];
        ar.U8(static_cast<std::uint8_t>(RecordType::kFault));
        ar.I64(f.time);
        ar.Str(f.description);
    }
    while (reconfig < journal.reconfigs.size()) {
        const auto& r = journal.reconfigs[reconfig++];
        ar.U8(static_cast<std::uint8_t>(RecordType::kReconfig));
        ar.U64(r.epoch);
        ar.I64(r.time);
        ar.Str(r.description);
    }
    while (cp < journal.checkpoints.size()) {
        EncodeCheckpoint(ar, journal.checkpoints[cp++]);
    }
    ar.U8(static_cast<std::uint8_t>(RecordType::kEnd));
    return ar.bytes();
}

Journal
DecodeJournal(std::string_view bytes)
{
    ArchiveReader ar(bytes);
    for (const char c : kJournalMagic) {
        if (ar.U8() != static_cast<std::uint8_t>(c)) {
            throw std::runtime_error("replay journal: bad magic");
        }
    }
    Journal journal;
    journal.version = ar.U32();
    if (journal.version != kJournalVersion) {
        throw std::runtime_error("replay journal: unsupported version " +
                                 std::to_string(journal.version));
    }
    journal.spec_text = ar.Str();
    journal.scenario = ar.Str();
    journal.cycle_period = ar.I64();
    journal.checkpoint_every = ar.U64();
    journal.invariants_checked = ar.Bool();

    bool ended = false;
    while (!ended) {
        const auto type = static_cast<RecordType>(ar.U8());
        switch (type) {
          case RecordType::kCycle:
            journal.cycles.push_back(DecodeCycle(ar));
            break;
          case RecordType::kCheckpoint:
            journal.checkpoints.push_back(DecodeCheckpoint(ar));
            break;
          case RecordType::kFault: {
            FaultRecord f;
            f.time = ar.I64();
            f.description = ar.Str();
            journal.faults.push_back(std::move(f));
            break;
          }
          case RecordType::kReconfig: {
            ReconfigRecord r;
            r.epoch = ar.U64();
            r.time = ar.I64();
            r.description = ar.Str();
            journal.reconfigs.push_back(std::move(r));
            break;
          }
          case RecordType::kEnd:
            ended = true;
            break;
          default:
            throw std::runtime_error("replay journal: unknown record type");
        }
    }
    return journal;
}

void
WriteJournalFile(const std::string& path, const Journal& journal)
{
    const std::string bytes = EncodeJournal(journal);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open journal for write: " + path);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) throw std::runtime_error("journal write failed: " + path);
}

Journal
ReadJournalFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open journal: " + path);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    return DecodeJournal(bytes);
}

}  // namespace dynamo::replay
