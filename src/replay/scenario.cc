#include "replay/scenario.h"

#include <algorithm>

namespace dynamo::replay {
namespace {

/** First device at `level` in pre-order, or nullptr. */
power::PowerDevice*
FirstDeviceAt(fleet::Fleet& fleet, power::DeviceLevel level)
{
    const auto devices = fleet.root().DevicesAtLevel(level);
    return devices.empty() ? nullptr : devices.front();
}

/**
 * Partition one RPP's agents for a minute mid-run, then heal — the
 * paper's "sub-tree loses its network segment" case.
 */
void
PartitionHeal(fleet::Fleet& fleet, chaos::CampaignEngine& campaign)
{
    power::PowerDevice* rpp = FirstDeviceAt(fleet, power::DeviceLevel::kRpp);
    if (rpp == nullptr) return;
    campaign.Partition(Seconds(30), Seconds(90),
                       fleet.AgentEndpointsUnder(rpp->name()));
}

/**
 * Mixed campaign: a partition, agent flapping, a latency storm over
 * the controllers, and a degraded-pull window — all targets derived
 * from the fleet's own device tree in construction order.
 */
void
MixedFaults(fleet::Fleet& fleet, chaos::CampaignEngine& campaign)
{
    const auto rpps = fleet.root().DevicesAtLevel(power::DeviceLevel::kRpp);
    if (rpps.empty()) return;

    campaign.Partition(Seconds(20), Seconds(70),
                       fleet.AgentEndpointsUnder(rpps.front()->name()));

    const auto agents = fleet.AgentEndpointsUnder(rpps.back()->name());
    if (!agents.empty()) {
        campaign.Flap(Seconds(35), Seconds(95), agents.front(), Seconds(5));
    }

    campaign.LatencyStorm(Seconds(50), Seconds(110),
                          fleet.ControllerEndpointsUnder(fleet.root().name()),
                          400);

    if (rpps.size() > 1) {
        campaign.DegradePulls(Seconds(80), Seconds(130),
                              fleet.AgentEndpointsUnder(rpps[1]->name()), 0.4);
    }
}

/**
 * Load surge under degraded pulls: scenario traffic ramps to 130 %
 * while a third of the fleet's agents answer unreliably — the shape
 * that drives capping decisions while inputs are stale.
 */
void
SurgeDegraded(fleet::Fleet& fleet, chaos::CampaignEngine& campaign)
{
    fleet.scenario().AddPoint(Seconds(25), 1.0);
    fleet.scenario().AddPoint(Seconds(45), 1.3);
    fleet.scenario().AddPoint(Seconds(120), 1.3);
    fleet.scenario().AddPoint(Seconds(140), 1.0);

    auto agents = fleet.AgentEndpointsUnder(fleet.root().name());
    agents.resize(agents.size() / 3);
    campaign.DegradePulls(Seconds(40), Seconds(120), std::move(agents), 0.5);
}

/**
 * Elasticity under fire: server churn, a breaker re-parent, a leaf
 * warm swap, and an upper promotion — all while a surge keeps the
 * hierarchy capping. Every transaction rides `CampaignEngine::At`, so
 * the journal carries the schedule and replay re-issues the identical
 * transactions against the rebuilt fleet.
 *
 * Requires a fleet built with backup controllers, at least two upper
 * subtrees, and at least three leaves; degrades to a no-op otherwise
 * (mirroring the other scenarios' "missing target" behaviour).
 */
void
ReconfigStorm(fleet::Fleet& fleet, chaos::CampaignEngine& campaign)
{
    core::Deployment* deployment = fleet.dynamo();
    if (deployment == nullptr) return;
    const auto leaves =
        fleet.root().DevicesAtLevel(fleet.spec().deployment.leaf_level);
    if (leaves.size() < 3) return;

    power::PowerDevice* grow = leaves.front();    // Gains 10 % servers.
    power::PowerDevice* doomed = leaves.back();   // Decommissioned.
    power::PowerDevice* home = grow->parent();    // Upper that is promoted.
    power::PowerDevice* moved = nullptr;          // Re-homed onto `home`.
    for (power::PowerDevice* leaf : leaves) {
        if (leaf->parent() != home && leaf != doomed) {
            moved = leaf;
            break;
        }
    }
    if (moved == nullptr || home == nullptr || doomed->parent() == home ||
        doomed == grow) {
        return;
    }

    // The swap/promotion ops need unconsumed standbys; bail out early
    // rather than throwing from inside the kernel mid-run.
    const auto has_standby = [deployment](const std::string& device) {
        core::FailoverManager* mgr = deployment->FindFailover(
            core::Deployment::ControllerEndpoint(device));
        return mgr != nullptr && !mgr->switched();
    };
    if (!has_standby(grow->name()) || !has_standby(home->name())) return;

    // Surge keeps the tree capping across the re-parent and promotion,
    // so contract preservation is actually exercised, not vacuous.
    fleet.scenario().AddPoint(Seconds(20), 1.0);
    fleet.scenario().AddPoint(Seconds(40), 1.3);
    fleet.scenario().AddPoint(Seconds(130), 1.3);
    fleet.scenario().AddPoint(Seconds(145), 1.0);

    const std::size_t added =
        std::max<std::size_t>(1, fleet.AgentEndpointsUnder(grow->name()).size() / 10);

    campaign.At(Seconds(30), "reconfig: grow " + grow->name(),
                [&fleet, grow, added] {
                    fleet.ScheduleReconfig(
                        fleet::ReconfigTxn().AddServers(grow->name(), added));
                });
    campaign.At(Seconds(48), "reconfig: warm-swap leaf " + grow->name(),
                [&fleet, grow] {
                    fleet.ScheduleReconfig(
                        fleet::ReconfigTxn().RestartController(grow->name()));
                });
    campaign.At(Seconds(60),
                "reconfig: re-parent " + moved->name() + " onto " +
                    home->name(),
                [&fleet, moved, home] {
                    fleet.ScheduleReconfig(fleet::ReconfigTxn().Reparent(
                        moved->name(), home->name()));
                });
    campaign.At(Seconds(85), "reconfig: promote upper " + home->name(),
                [&fleet, home] {
                    fleet.ScheduleReconfig(
                        fleet::ReconfigTxn().PromoteUpper(home->name()));
                });
    campaign.At(Seconds(120), "reconfig: decommission " + doomed->name(),
                [&fleet, doomed] {
                    fleet.ScheduleReconfig(
                        fleet::ReconfigTxn().RemoveSubtree(doomed->name()));
                });

    // A degraded-pull window overlapping the promotion: the storm is
    // not just topology churn, the inputs are unreliable too.
    campaign.DegradePulls(Seconds(70), Seconds(110),
                          fleet.AgentEndpointsUnder(moved->name()), 0.3);
}

}  // namespace

const std::vector<std::string>&
ScenarioNames()
{
    static const std::vector<std::string> names = {
        "quiet",
        "partition-heal",
        "mixed-faults",
        "surge-degraded",
        "reconfig-storm",
    };
    return names;
}

ScenarioFn
FindScenario(const std::string& name)
{
    if (name == "quiet") return [](fleet::Fleet&, chaos::CampaignEngine&) {};
    if (name == "partition-heal") return PartitionHeal;
    if (name == "mixed-faults") return MixedFaults;
    if (name == "surge-degraded") return SurgeDegraded;
    if (name == "reconfig-storm") return ReconfigStorm;
    return ScenarioFn();
}

}  // namespace dynamo::replay
