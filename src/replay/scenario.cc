#include "replay/scenario.h"

#include <algorithm>

namespace dynamo::replay {
namespace {

/** First device at `level` in pre-order, or nullptr. */
power::PowerDevice*
FirstDeviceAt(fleet::Fleet& fleet, power::DeviceLevel level)
{
    const auto devices = fleet.root().DevicesAtLevel(level);
    return devices.empty() ? nullptr : devices.front();
}

/**
 * Partition one RPP's agents for a minute mid-run, then heal — the
 * paper's "sub-tree loses its network segment" case.
 */
void
PartitionHeal(fleet::Fleet& fleet, chaos::CampaignEngine& campaign)
{
    power::PowerDevice* rpp = FirstDeviceAt(fleet, power::DeviceLevel::kRpp);
    if (rpp == nullptr) return;
    campaign.Partition(Seconds(30), Seconds(90),
                       fleet.AgentEndpointsUnder(rpp->name()));
}

/**
 * Mixed campaign: a partition, agent flapping, a latency storm over
 * the controllers, and a degraded-pull window — all targets derived
 * from the fleet's own device tree in construction order.
 */
void
MixedFaults(fleet::Fleet& fleet, chaos::CampaignEngine& campaign)
{
    const auto rpps = fleet.root().DevicesAtLevel(power::DeviceLevel::kRpp);
    if (rpps.empty()) return;

    campaign.Partition(Seconds(20), Seconds(70),
                       fleet.AgentEndpointsUnder(rpps.front()->name()));

    const auto agents = fleet.AgentEndpointsUnder(rpps.back()->name());
    if (!agents.empty()) {
        campaign.Flap(Seconds(35), Seconds(95), agents.front(), Seconds(5));
    }

    campaign.LatencyStorm(Seconds(50), Seconds(110),
                          fleet.ControllerEndpointsUnder(fleet.root().name()),
                          400);

    if (rpps.size() > 1) {
        campaign.DegradePulls(Seconds(80), Seconds(130),
                              fleet.AgentEndpointsUnder(rpps[1]->name()), 0.4);
    }
}

/**
 * Load surge under degraded pulls: scenario traffic ramps to 130 %
 * while a third of the fleet's agents answer unreliably — the shape
 * that drives capping decisions while inputs are stale.
 */
void
SurgeDegraded(fleet::Fleet& fleet, chaos::CampaignEngine& campaign)
{
    fleet.scenario().AddPoint(Seconds(25), 1.0);
    fleet.scenario().AddPoint(Seconds(45), 1.3);
    fleet.scenario().AddPoint(Seconds(120), 1.3);
    fleet.scenario().AddPoint(Seconds(140), 1.0);

    auto agents = fleet.AgentEndpointsUnder(fleet.root().name());
    agents.resize(agents.size() / 3);
    campaign.DegradePulls(Seconds(40), Seconds(120), std::move(agents), 0.5);
}

}  // namespace

const std::vector<std::string>&
ScenarioNames()
{
    static const std::vector<std::string> names = {
        "quiet",
        "partition-heal",
        "mixed-faults",
        "surge-degraded",
    };
    return names;
}

ScenarioFn
FindScenario(const std::string& name)
{
    if (name == "quiet") return [](fleet::Fleet&, chaos::CampaignEngine&) {};
    if (name == "partition-heal") return PartitionHeal;
    if (name == "mixed-faults") return MixedFaults;
    if (name == "surge-degraded") return SurgeDegraded;
    return ScenarioFn();
}

}  // namespace dynamo::replay
