#include "replay/scenario.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>

#include "core/deployment.h"
#include "server/power_model.h"
#include "server/sensor.h"
#include "server/sim_server.h"
#include "workload/load_process.h"
#include "workload/service.h"

namespace dynamo::replay {
namespace {

/** First device at `level` in pre-order, or nullptr. */
power::PowerDevice*
FirstDeviceAt(fleet::Fleet& fleet, power::DeviceLevel level)
{
    const auto devices = fleet.root().DevicesAtLevel(level);
    return devices.empty() ? nullptr : devices.front();
}

/** Shortest decimal that strtod parses back to exactly `value`. */
std::string
CanonicalParamValue(double value)
{
    char buf[64];
    // Integral values print as plain integers ("120", never "1.2e+02":
    // %g at low precision would pick scientific notation).
    const auto as_int = static_cast<long long>(
        std::fabs(value) < 9.0e15 ? value : 0.0);
    if (value == static_cast<double>(as_int)) {
        std::snprintf(buf, sizeof buf, "%lld", as_int);
        return buf;
    }
    for (int precision = 1; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof buf, "%.*g", precision, value);
        if (std::strtod(buf, nullptr) == value) break;
    }
    return buf;
}

std::string
JoinNames(const std::vector<std::string>& names)
{
    std::string out;
    for (const std::string& name : names) {
        if (!out.empty()) out += "|";
        out += name;
    }
    return out;
}

/**
 * Partition one RPP's agents for a minute mid-run, then heal — the
 * paper's "sub-tree loses its network segment" case.
 */
void
PartitionHeal(fleet::Fleet& fleet, chaos::CampaignEngine& campaign)
{
    power::PowerDevice* rpp = FirstDeviceAt(fleet, power::DeviceLevel::kRpp);
    if (rpp == nullptr) return;
    campaign.Partition(Seconds(30), Seconds(90),
                       fleet.AgentEndpointsUnder(rpp->name()));
}

/**
 * Mixed campaign: a partition, agent flapping, a latency storm over
 * the controllers, and a degraded-pull window — all targets derived
 * from the fleet's own device tree in construction order.
 */
void
MixedFaults(fleet::Fleet& fleet, chaos::CampaignEngine& campaign)
{
    const auto rpps = fleet.root().DevicesAtLevel(power::DeviceLevel::kRpp);
    if (rpps.empty()) return;

    campaign.Partition(Seconds(20), Seconds(70),
                       fleet.AgentEndpointsUnder(rpps.front()->name()));

    const auto agents = fleet.AgentEndpointsUnder(rpps.back()->name());
    if (!agents.empty()) {
        campaign.Flap(Seconds(35), Seconds(95), agents.front(), Seconds(5));
    }

    campaign.LatencyStorm(Seconds(50), Seconds(110),
                          fleet.ControllerEndpointsUnder(fleet.root().name()),
                          400);

    if (rpps.size() > 1) {
        campaign.DegradePulls(Seconds(80), Seconds(130),
                              fleet.AgentEndpointsUnder(rpps[1]->name()), 0.4);
    }
}

/**
 * Load surge under degraded pulls: scenario traffic ramps to 130 %
 * while a third of the fleet's agents answer unreliably — the shape
 * that drives capping decisions while inputs are stale.
 */
void
SurgeDegraded(fleet::Fleet& fleet, chaos::CampaignEngine& campaign)
{
    fleet.scenario().AddPoint(Seconds(25), 1.0);
    fleet.scenario().AddPoint(Seconds(45), 1.3);
    fleet.scenario().AddPoint(Seconds(120), 1.3);
    fleet.scenario().AddPoint(Seconds(140), 1.0);

    auto agents = fleet.AgentEndpointsUnder(fleet.root().name());
    agents.resize(agents.size() / 3);
    campaign.DegradePulls(Seconds(40), Seconds(120), std::move(agents), 0.5);
}

/**
 * Elasticity under fire: server churn, a breaker re-parent, a leaf
 * warm swap, and an upper promotion — all while a surge keeps the
 * hierarchy capping. Every transaction rides `CampaignEngine::At`, so
 * the journal carries the schedule and replay re-issues the identical
 * transactions against the rebuilt fleet.
 *
 * Requires a fleet built with backup controllers, at least two upper
 * subtrees, and at least three leaves; degrades to a no-op otherwise
 * (mirroring the other scenarios' "missing target" behaviour).
 */
void
ReconfigStorm(fleet::Fleet& fleet, chaos::CampaignEngine& campaign)
{
    core::Deployment* deployment = fleet.dynamo();
    if (deployment == nullptr) return;
    const auto leaves =
        fleet.root().DevicesAtLevel(fleet.spec().deployment.leaf_level);
    if (leaves.size() < 3) return;

    power::PowerDevice* grow = leaves.front();    // Gains 10 % servers.
    power::PowerDevice* doomed = leaves.back();   // Decommissioned.
    power::PowerDevice* home = grow->parent();    // Upper that is promoted.
    power::PowerDevice* moved = nullptr;          // Re-homed onto `home`.
    for (power::PowerDevice* leaf : leaves) {
        if (leaf->parent() != home && leaf != doomed) {
            moved = leaf;
            break;
        }
    }
    if (moved == nullptr || home == nullptr || doomed->parent() == home ||
        doomed == grow) {
        return;
    }

    // The swap/promotion ops need unconsumed standbys; bail out early
    // rather than throwing from inside the kernel mid-run.
    const auto has_standby = [deployment](const std::string& device) {
        core::FailoverManager* mgr = deployment->FindFailover(
            core::Deployment::ControllerEndpoint(device));
        return mgr != nullptr && !mgr->switched();
    };
    if (!has_standby(grow->name()) || !has_standby(home->name())) return;

    // Surge keeps the tree capping across the re-parent and promotion,
    // so contract preservation is actually exercised, not vacuous.
    fleet.scenario().AddPoint(Seconds(20), 1.0);
    fleet.scenario().AddPoint(Seconds(40), 1.3);
    fleet.scenario().AddPoint(Seconds(130), 1.3);
    fleet.scenario().AddPoint(Seconds(145), 1.0);

    const std::size_t added =
        std::max<std::size_t>(1, fleet.AgentEndpointsUnder(grow->name()).size() / 10);

    campaign.At(Seconds(30), "reconfig: grow " + grow->name(),
                [&fleet, grow, added] {
                    fleet.ScheduleReconfig(
                        fleet::ReconfigTxn().AddServers(grow->name(), added));
                });
    campaign.At(Seconds(48), "reconfig: warm-swap leaf " + grow->name(),
                [&fleet, grow] {
                    fleet.ScheduleReconfig(
                        fleet::ReconfigTxn().RestartController(grow->name()));
                });
    campaign.At(Seconds(60),
                "reconfig: re-parent " + moved->name() + " onto " +
                    home->name(),
                [&fleet, moved, home] {
                    fleet.ScheduleReconfig(fleet::ReconfigTxn().Reparent(
                        moved->name(), home->name()));
                });
    campaign.At(Seconds(85), "reconfig: promote upper " + home->name(),
                [&fleet, home] {
                    fleet.ScheduleReconfig(
                        fleet::ReconfigTxn().PromoteUpper(home->name()));
                });
    campaign.At(Seconds(120), "reconfig: decommission " + doomed->name(),
                [&fleet, doomed] {
                    fleet.ScheduleReconfig(
                        fleet::ReconfigTxn().RemoveSubtree(doomed->name()));
                });

    // A degraded-pull window overlapping the promotion: the storm is
    // not just topology churn, the inputs are unreliable too.
    campaign.DegradePulls(Seconds(70), Seconds(110),
                          fleet.AgentEndpointsUnder(moved->name()), 0.3);
}

/**
 * Derate one device's breaker and the controller protecting it, saving
 * the originals into `saved` so a later restore action can undo the
 * derate exactly. Accumulated breaker stress is deliberately kept: a
 * derate mid-overdraw does not forgive heat already in the metal.
 */
void
DerateDevice(fleet::Fleet& fleet, power::PowerDevice& device, double keep,
             std::pair<Watts, Watts>& saved)
{
    saved.first = device.breaker().rated();
    device.breaker().set_rated(saved.first * keep);
    core::Deployment* deployment = fleet.dynamo();
    if (deployment == nullptr) return;
    const std::string endpoint =
        core::Deployment::ControllerEndpoint(device.name());
    core::Controller* controller = deployment->FindUpper(endpoint);
    if (controller == nullptr) controller = deployment->FindLeaf(endpoint);
    if (controller == nullptr) return;
    saved.second = controller->physical_limit();
    controller->SetPhysicalLimit(saved.second * keep);
}

/** Undo a DerateDevice using the saved originals. */
void
RestoreDevice(fleet::Fleet& fleet, power::PowerDevice& device,
              const std::pair<Watts, Watts>& saved)
{
    if (saved.first > 0.0) device.breaker().set_rated(saved.first);
    core::Deployment* deployment = fleet.dynamo();
    if (deployment == nullptr || saved.second <= 0.0) return;
    const std::string endpoint =
        core::Deployment::ControllerEndpoint(device.name());
    core::Controller* controller = deployment->FindUpper(endpoint);
    if (controller == nullptr) controller = deployment->FindLeaf(endpoint);
    if (controller != nullptr) controller->SetPhysicalLimit(saved.second);
}

/**
 * Grid demand-response: the utility curtails the whole data center by
 * `drop_frac` for `hold_s`. The root breaker is re-rated and the root
 * controller's physical limit follows, so the reduced budget cascades
 * top-down through contractual limits — the Dynamo mechanism, not a
 * side channel. A mild demand surge runs across the window so the
 * derated budget actually binds instead of being slack.
 */
void
GridDemandResponse(fleet::Fleet& fleet, chaos::CampaignEngine& campaign,
                   const ScenarioParams& p)
{
    const SimTime start = Seconds(p.at("start_s"));
    const SimTime hold = Seconds(p.at("hold_s"));
    const double keep = 1.0 - p.at("drop_frac");
    const double surge = p.at("surge_factor");
    if (start <= 0 || hold <= 0) return;

    if (surge != 1.0) {
        // Ramp fractions of the window keep breakpoints monotonic for
        // any start/hold combination.
        fleet.scenario().AddPoint(start / 2, 1.0);
        fleet.scenario().AddPoint(start, surge);
        fleet.scenario().AddPoint(start + hold, surge);
        fleet.scenario().AddPoint(start + hold + start / 2, 1.0);
    }

    auto saved = std::make_shared<std::pair<Watts, Watts>>(0.0, 0.0);
    campaign.At(start,
                "grid-dr: derate " + fleet.root().name() + " budget by " +
                    CanonicalParamValue(p.at("drop_frac")),
                [&fleet, saved, keep] {
                    DerateDevice(fleet, fleet.root(), keep, *saved);
                });
    campaign.At(start + hold, "grid-dr: restore " + fleet.root().name(),
                [&fleet, saved] {
                    RestoreDevice(fleet, fleet.root(), *saved);
                });
}

/**
 * Thermal emergency: cooling degrades room by room, so each leaf
 * device is derated on a stagger — room i loses `drop_frac` of its
 * rating at start + i*stagger and recovers `hold_s` later. Exercises
 * many *local* budget cuts (leaf controllers capping their own
 * subtrees) rather than one global one.
 */
void
ThermalEmergency(fleet::Fleet& fleet, chaos::CampaignEngine& campaign,
                 const ScenarioParams& p)
{
    const SimTime start = Seconds(p.at("start_s"));
    const SimTime stagger = Seconds(p.at("stagger_s"));
    const SimTime hold = Seconds(p.at("hold_s"));
    const double keep = 1.0 - p.at("drop_frac");
    if (start <= 0 || hold <= 0) return;

    const auto leaves =
        fleet.root().DevicesAtLevel(fleet.spec().deployment.leaf_level);
    for (std::size_t i = 0; i < leaves.size(); ++i) {
        power::PowerDevice* device = leaves[i];
        auto saved = std::make_shared<std::pair<Watts, Watts>>(0.0, 0.0);
        const SimTime at = start + static_cast<SimTime>(i) * stagger;
        campaign.At(at, "thermal: derate " + device->name(),
                    [&fleet, device, saved, keep] {
                        DerateDevice(fleet, *device, keep, *saved);
                    });
        campaign.At(at + hold, "thermal: restore " + device->name(),
                    [&fleet, device, saved] {
                        RestoreDevice(fleet, *device, *saved);
                    });
    }
}

/**
 * AI-training power surge: every kGpuTrain2024 server steps between a
 * compute phase (`high`) and an all-reduce stall (`low`) in lockstep —
 * the synchronized step-function load that makes training fleets a
 * power-quality problem, not just a capacity one. The GPU server list
 * is computed inside each action at fire time, so record and replay
 * see the identical roster even across reconfigurations. No-op on a
 * fleet with gpu_fraction = 0.
 */
void
GpuTrainingSurge(fleet::Fleet& fleet, chaos::CampaignEngine& campaign,
                 const ScenarioParams& p)
{
    const SimTime start = Seconds(p.at("start_s"));
    const SimTime period = Seconds(p.at("period_s"));
    const auto pulses = static_cast<int>(p.at("pulses"));
    const double high = p.at("high");
    const double low = p.at("low");
    if (start <= 0 || period <= 0 || pulses <= 0) return;

    const auto set_gpu_factor = [&fleet](double factor) {
        for (const auto& srv : fleet.servers()) {
            if (srv->generation() == server::ServerGeneration::kGpuTrain2024) {
                srv->load().set_balancer_factor(factor);
            }
        }
    };
    for (int k = 0; k < pulses; ++k) {
        const SimTime rise = start + k * period;
        campaign.At(rise, "gpu-surge: compute step " + std::to_string(k + 1),
                    [set_gpu_factor, high] { set_gpu_factor(high); });
        campaign.At(rise + period / 2,
                    "gpu-surge: all-reduce stall " + std::to_string(k + 1),
                    [set_gpu_factor, low] { set_gpu_factor(low); });
    }
    campaign.At(start + pulses * period, "gpu-surge: training job done",
                [set_gpu_factor] { set_gpu_factor(1.0); });
}

/**
 * Sensorless-estimator drift: the power model feeding every
 * sensorless server's estimate picks up bias in steps, so the leaves
 * aggregate numbers that are increasingly wrong about true draw.
 * Exercises the estimator-tuning/validation path; with
 * with_breaker_validation the leaves audit estimates against breaker
 * truth and re-tune. The final action clears the bias.
 */
void
EstimatorDrift(fleet::Fleet& fleet, chaos::CampaignEngine& campaign,
               const ScenarioParams& p)
{
    const SimTime start = Seconds(p.at("start_s"));
    const SimTime step = Seconds(p.at("step_s"));
    const auto steps = static_cast<int>(p.at("steps"));
    const double step_bias = p.at("step_bias");
    if (start <= 0 || step <= 0 || steps <= 0) return;

    const auto set_bias = [&fleet](double bias) {
        for (const auto& srv : fleet.servers()) {
            if (!srv->has_sensor()) srv->estimator().set_bias_frac(bias);
        }
    };
    for (int k = 0; k < steps; ++k) {
        const double bias = (k + 1) * step_bias;
        campaign.At(start + k * step,
                    "drift: sensorless bias " + CanonicalParamValue(bias),
                    [set_bias, bias] { set_bias(bias); });
    }
    campaign.At(start + steps * step, "drift: bias cleared",
                [set_bias] { set_bias(0.0); });
}

/**
 * Multi-tenant QoS downgrade: a tenant surge drives the fleet over
 * budget, and the sheddable tier gives up `shed_frac` of its load at
 * onset — before any protected tenant is power-capped. The invariant
 * checker's opt-in shed-order audit (Config::audit_qos_shed_order)
 * verifies exactly that ordering.
 */
void
QosDowngrade(fleet::Fleet& fleet, chaos::CampaignEngine& campaign,
             const ScenarioParams& p)
{
    const SimTime start = Seconds(p.at("start_s"));
    const SimTime hold = Seconds(p.at("hold_s"));
    const double surge = p.at("surge_factor");
    const double shed_frac = p.at("shed_frac");
    if (start <= 0 || hold <= Seconds(1)) return;

    const SimTime rise = start + Seconds(5);
    fleet.scenario().AddSquarePulse(rise, rise + hold, 1.0, surge);

    const auto set_sheddable = [&fleet](double factor) {
        for (const auto& srv : fleet.servers()) {
            if (workload::TraitsFor(srv->service()).qos_tier ==
                workload::QosTier::kSheddable) {
                srv->load().set_shed_factor(factor);
            }
        }
    };
    campaign.At(start, "qos: shed sheddable tier",
                [set_sheddable, shed_frac] {
                    set_sheddable(1.0 - shed_frac);
                });
    campaign.At(rise + hold + Seconds(10), "qos: restore sheddable tier",
                [set_sheddable] { set_sheddable(1.0); });
}

/** Adapt a parameterless scenario body to the catalog signature. */
Scenario::ApplyFn
NoParams(void (*body)(fleet::Fleet&, chaos::CampaignEngine&))
{
    return [body](fleet::Fleet& fleet, chaos::CampaignEngine& campaign,
                  const ScenarioParams&) { body(fleet, campaign); };
}

std::vector<Scenario>
BuildCatalog()
{
    std::vector<Scenario> catalog;
    catalog.push_back({"quiet",
                       "No faults; nominal load only.",
                       {},
                       [](fleet::Fleet&, chaos::CampaignEngine&,
                          const ScenarioParams&) {}});
    catalog.push_back({"partition-heal",
                       "Partition one RPP's agents for a minute, then heal.",
                       {},
                       NoParams(PartitionHeal)});
    catalog.push_back({"mixed-faults",
                       "Partition, agent flap, latency storm, and degraded "
                       "pulls in one campaign.",
                       {},
                       NoParams(MixedFaults)});
    catalog.push_back({"surge-degraded",
                       "Traffic surges to 130 % while a third of the agents "
                       "answer unreliably.",
                       {},
                       NoParams(SurgeDegraded)});
    catalog.push_back({"reconfig-storm",
                       "Five live reconfiguration transactions land under a "
                       "sustained surge.",
                       {},
                       NoParams(ReconfigStorm)});
    catalog.push_back(
        {"grid-dr",
         "Grid demand-response: the fleet-wide budget is derated while "
         "demand stays high.",
         {{"start_s", "curtailment start, s", 60.0},
          {"hold_s", "curtailment duration, s", 7200.0},
          {"drop_frac", "fraction of the budget curtailed", 0.15},
          {"surge_factor", "demand factor held across the window", 1.12}},
         GridDemandResponse});
    catalog.push_back(
        {"thermal-emergency",
         "Cooling fails room by room: staggered per-leaf derates, then "
         "recovery.",
         {{"start_s", "first room derate, s", 40.0},
          {"stagger_s", "delay between room derates, s", 15.0},
          {"hold_s", "per-room derate duration, s", 120.0},
          {"drop_frac", "fraction of each room's rating lost", 0.25}},
         ThermalEmergency});
    catalog.push_back(
        {"gpu-surge",
         "AI-training fleet steps between compute and all-reduce phases "
         "in lockstep.",
         {{"start_s", "training job start, s", 30.0},
          {"period_s", "full compute+stall period, s", 24.0},
          {"pulses", "number of training steps", 3.0},
          {"high", "balancer factor in the compute phase", 1.35},
          {"low", "balancer factor in the all-reduce stall", 0.75}},
         GpuTrainingSurge});
    catalog.push_back(
        {"estimator-drift",
         "Sensorless power estimates pick up bias in steps until leaves "
         "mis-aggregate.",
         {{"start_s", "first bias step, s", 30.0},
          {"step_s", "interval between bias steps, s", 15.0},
          {"steps", "number of bias steps", 6.0},
          {"step_bias", "bias fraction added per step", 0.04}},
         EstimatorDrift});
    catalog.push_back(
        {"qos-downgrade",
         "Tenant surge: the sheddable tier sheds load before any "
         "protected tenant is capped.",
         {{"start_s", "shed onset, s", 25.0},
          {"hold_s", "surge hold duration, s", 90.0},
          {"surge_factor", "tenant demand factor at peak", 1.3},
          {"shed_frac", "load fraction shed from sheddable tenants", 0.6}},
         QosDowngrade});
    return catalog;
}

}  // namespace

ScenarioParams
Scenario::Defaults() const
{
    ScenarioParams out;
    for (const ScenarioParam& param : params) out[param.key] = param.def;
    return out;
}

const std::vector<Scenario>&
ScenarioCatalog()
{
    static const std::vector<Scenario> catalog = BuildCatalog();
    return catalog;
}

const std::vector<std::string>&
ScenarioNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const Scenario& scenario : ScenarioCatalog()) {
            out.push_back(scenario.name);
        }
        return out;
    }();
    return names;
}

const Scenario*
FindScenario(const std::string& name)
{
    for (const Scenario& scenario : ScenarioCatalog()) {
        if (scenario.name == name) return &scenario;
    }
    return nullptr;
}

ScenarioSpec
ParseScenarioSpec(const std::string& text)
{
    std::string name = text;
    std::string arglist;
    const std::size_t open = text.find('(');
    if (open != std::string::npos) {
        if (text.size() < 2 || text.back() != ')') {
            throw std::invalid_argument("scenario spec '" + text +
                                        "' has an unterminated parameter list");
        }
        name = text.substr(0, open);
        arglist = text.substr(open + 1, text.size() - open - 2);
    }

    const Scenario* scenario = FindScenario(name);
    if (scenario == nullptr) {
        throw std::invalid_argument("unknown scenario '" + name +
                                    "' (expected " +
                                    JoinNames(ScenarioNames()) + ")");
    }
    ScenarioSpec spec{scenario, scenario->Defaults()};
    if (arglist.empty()) return spec;

    std::vector<std::string> declared;
    for (const ScenarioParam& param : scenario->params) {
        declared.push_back(param.key);
    }

    std::size_t pos = 0;
    while (pos <= arglist.size()) {
        std::size_t comma = arglist.find(',', pos);
        if (comma == std::string::npos) comma = arglist.size();
        const std::string part = arglist.substr(pos, comma - pos);
        pos = comma + 1;

        const std::size_t eq = part.find('=');
        if (part.empty() || eq == std::string::npos || eq == 0) {
            throw std::invalid_argument("scenario '" + name +
                                        "': malformed parameter '" + part +
                                        "' (expected key=value)");
        }
        const std::string key = part.substr(0, eq);
        const std::string value = part.substr(eq + 1);
        if (spec.params.find(key) == spec.params.end()) {
            throw std::invalid_argument(
                "scenario '" + name + "' has no parameter '" + key +
                "' (expected " + JoinNames(declared) + ")");
        }
        char* end = nullptr;
        const double parsed = std::strtod(value.c_str(), &end);
        if (value.empty() || end != value.c_str() + value.size()) {
            throw std::invalid_argument("scenario '" + name +
                                        "': parameter '" + key +
                                        "' has non-numeric value '" + value +
                                        "'");
        }
        spec.params[key] = parsed;
    }
    return spec;
}

std::string
FormatScenarioSpec(const ScenarioSpec& spec)
{
    std::string args;
    for (const ScenarioParam& param : spec.scenario->params) {
        const double value = spec.params.at(param.key);
        if (value == param.def) continue;
        if (!args.empty()) args += ",";
        args += param.key + "=" + CanonicalParamValue(value);
    }
    if (args.empty()) return spec.scenario->name;
    return spec.scenario->name + "(" + args + ")";
}

}  // namespace dynamo::replay
