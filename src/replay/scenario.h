/**
 * @file
 * Named deterministic chaos scenarios.
 *
 * A journal can embed the fleet spec as text, but a chaos campaign is
 * built from closures and cannot be serialized. Replay therefore
 * requires the campaign to be *reconstructible by name*: the recorder
 * stamps the scenario's name into the journal header, and the replayer
 * looks the name up here and re-applies the identical fault script to
 * the rebuilt fleet. Scenarios must derive everything (targets, times)
 * deterministically from the fleet itself — no wall clock, no ambient
 * randomness — so record and replay build byte-identical campaigns.
 */
#ifndef DYNAMO_REPLAY_SCENARIO_H_
#define DYNAMO_REPLAY_SCENARIO_H_

#include <functional>
#include <string>
#include <vector>

#include "chaos/campaign.h"
#include "fleet/fleet.h"

namespace dynamo::replay {

/** Applies one fault script to a fleet via its campaign engine. */
using ScenarioFn = std::function<void(fleet::Fleet&, chaos::CampaignEngine&)>;

/** Catalog names, in a stable order ("quiet" first). */
const std::vector<std::string>& ScenarioNames();

/**
 * Scenario by name; returns an empty function for unknown names (the
 * caller decides whether that is an error).
 */
ScenarioFn FindScenario(const std::string& name);

}  // namespace dynamo::replay

#endif  // DYNAMO_REPLAY_SCENARIO_H_
