/**
 * @file
 * The scenario catalog: named, typed, parameterized chaos scenarios.
 *
 * A journal can embed the fleet spec as text, but a chaos campaign is
 * built from closures and cannot be serialized. Replay therefore
 * requires the campaign to be *reconstructible by name*: the recorder
 * stamps the scenario spec ("name" or "name(k=v,...)") into the
 * journal header, and the replayer parses it here and re-applies the
 * identical fault script to the rebuilt fleet. Scenarios must derive
 * everything (targets, times) deterministically from the fleet and
 * their resolved parameters — no wall clock, no ambient randomness —
 * so record and replay build byte-identical campaigns.
 *
 * Each catalog entry is a `Scenario` descriptor: a stable name, a
 * one-line description, a typed parameter table with defaults, and the
 * apply function. The descriptor makes the catalog enumerable
 * (`replay_cli list`), self-documenting, and parameterizable without
 * new journal format machinery: parameters ride inside the scenario
 * string, serialized only when non-default, so an all-defaults run
 * stamps the bare name and every pre-catalog journal parses unchanged.
 */
#ifndef DYNAMO_REPLAY_SCENARIO_H_
#define DYNAMO_REPLAY_SCENARIO_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "chaos/campaign.h"
#include "fleet/fleet.h"

namespace dynamo::replay {

/** One tunable of a scenario. All parameters are doubles. */
struct ScenarioParam
{
    std::string key;
    std::string description;
    double def = 0.0;
};

/**
 * Fully resolved parameter values: every key the scenario declares is
 * present (defaults filled in), so apply functions use `.at(key)`
 * without existence checks. std::map keeps iteration (and therefore
 * formatting) deterministic.
 */
using ScenarioParams = std::map<std::string, double>;

/** A catalog entry. */
struct Scenario
{
    std::string name;

    /** One line for `replay_cli list` and docs. */
    std::string description;

    /** Declared parameters, in display order. Empty = not tunable. */
    std::vector<ScenarioParam> params;

    using ApplyFn = std::function<void(fleet::Fleet&, chaos::CampaignEngine&,
                                       const ScenarioParams&)>;

    /** Applies the fault script; `p` is fully resolved. */
    ApplyFn apply;

    /** Every declared parameter at its default. */
    ScenarioParams Defaults() const;
};

/** The full catalog, in stable display order ("quiet" first). */
const std::vector<Scenario>& ScenarioCatalog();

/** Catalog names, in catalog order. */
const std::vector<std::string>& ScenarioNames();

/**
 * Descriptor by bare name (no parameter list); nullptr for unknown
 * names — the caller decides whether that is an error.
 */
const Scenario* FindScenario(const std::string& name);

/** A parsed scenario reference: the descriptor + resolved parameters. */
struct ScenarioSpec
{
    const Scenario* scenario = nullptr;

    /** Resolved values for every declared parameter. */
    ScenarioParams params;

    void Apply(fleet::Fleet& fleet, chaos::CampaignEngine& campaign) const
    {
        scenario->apply(fleet, campaign, params);
    }
};

/**
 * Parse "name" or "name(k=v,...)" against the catalog. Unknown
 * scenario names, unknown parameter keys, and malformed values all
 * throw std::invalid_argument naming the offender and the accepted
 * alternatives (spec-parser hardening style). Omitted parameters take
 * their defaults.
 */
ScenarioSpec ParseScenarioSpec(const std::string& text);

/**
 * Canonical text form: the bare name when every parameter is at its
 * default, otherwise "name(k=v,...)" listing only non-default
 * parameters in declaration order, values in shortest exact-round-trip
 * decimal. ParseScenarioSpec(FormatScenarioSpec(s)) == s.
 */
std::string FormatScenarioSpec(const ScenarioSpec& spec);

}  // namespace dynamo::replay

#endif  // DYNAMO_REPLAY_SCENARIO_H_
