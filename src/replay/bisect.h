/**
 * @file
 * Divergence bisection between two journals of "the same" run.
 *
 * When a replay diverges from a recording (typically: the binary
 * changed — a policy tweak, a refactor that reordered RNG draws), the
 * interesting question is *where it first went wrong*. Scanning every
 * window's spans is linear in run length; checkpoints make it
 * logarithmic: checkpoint digests are compared by binary search to
 * bracket the first divergent state (divergence is persistent — once
 * the state differs, every later checkpoint differs), then only the
 * windows inside the bracket are compared record-by-record to find the
 * first divergent window, and the first differing span is diffed
 * field-by-field.
 */
#ifndef DYNAMO_REPLAY_BISECT_H_
#define DYNAMO_REPLAY_BISECT_H_

#include <cstdint>
#include <string>

#include "replay/journal.h"

namespace dynamo::replay {

/** Where two journals first disagree. */
struct BisectReport
{
    /** False when the journals are equivalent end-to-end. */
    bool diverged = false;

    /** First window whose records differ (valid when diverged). */
    std::uint64_t first_divergent_cycle = 0;

    /** Cycle of the last checkpoint whose state digests match; -1 if
     * the very first checkpoint already differs. */
    std::int64_t last_good_checkpoint_cycle = -1;

    /** Cycle of the first checkpoint whose digests differ; -1 when
     * every common checkpoint matches (divergence is after the last
     * one, or in a window between matching checkpoints). */
    std::int64_t first_bad_checkpoint_cycle = -1;

    /** Checkpoint digest comparisons the binary search spent. */
    std::size_t checkpoint_probes = 0;

    /** Windows compared record-by-record inside the bracket. */
    std::size_t cycles_scanned = 0;

    /** What differed at the divergent window (hash kind, span diff). */
    std::string diff;
};

/**
 * Locate the first divergence between `recorded` and `replayed`.
 * Both must come from the same cadence (cycle_period,
 * checkpoint_every); throws std::invalid_argument otherwise.
 */
BisectReport BisectDivergence(const Journal& recorded,
                              const Journal& replayed);

/** Multi-line human-readable rendering of a report. */
std::string FormatBisectReport(const BisectReport& report);

}  // namespace dynamo::replay

#endif  // DYNAMO_REPLAY_BISECT_H_
