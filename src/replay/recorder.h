/**
 * @file
 * The run recorder: hooks a live fleet and captures a replay journal.
 *
 * The recorder installs three observers —
 *
 *   - `SimTransport::set_call_observer`: every RPC delivery/failure
 *     (endpoint, fate, time) is folded into a per-window rolling hash,
 *     so any divergence in the message stream is caught at the exact
 *     window it first occurs;
 *   - `Simulation::set_event_observer`: every timing-wheel firing
 *     ((time, seq)) is folded into a second per-window hash, catching
 *     scheduling-order divergence even when it has no RPC effect yet;
 *   - `CampaignEngine::set_fault_observer` (wired by the caller via
 *     `RecordFault`): the chaos fault stream is journaled verbatim —
 *
 * and a periodic task on the simulation clock that closes a recording
 * window every `cycle_period` ms: it drains newly appended TraceSpans
 * from the deployment's trace ring (by id watermark), emits a
 * kCycle record, and every `checkpoint_every` windows also emits a
 * kCheckpoint carrying the complete `Fleet::Snapshot` bytes + digest.
 *
 * Both hashes reset at each window boundary, so a replay started from
 * a mid-run checkpoint compares its tail windows against the journal
 * without needing the hash state of earlier windows.
 */
#ifndef DYNAMO_REPLAY_RECORDER_H_
#define DYNAMO_REPLAY_RECORDER_H_

#include <cstdint>
#include <string>

#include "common/archive.h"
#include "fleet/fleet.h"
#include "replay/journal.h"
#include "sim/simulation.h"

namespace dynamo::replay {

/** Recording cadence. */
struct RecorderConfig
{
    /** Window length, ms. Align with the leaf pull cycle for legible
     * journals; any value works. */
    SimTime cycle_period = 3000;

    /** Take a full fleet checkpoint every this many windows. */
    std::uint64_t checkpoint_every = 10;

    /** Scenario name stamped into the journal header. */
    std::string scenario = "quiet";

    /** Stamped into the journal: an InvariantChecker is armed, and
     * replay must recreate one (see Journal::invariants_checked). */
    bool invariants_checked = false;
};

/**
 * Captures one fleet run into a Journal. Must outlive neither the
 * fleet nor the run: construct before RunFor, call Finish() after.
 */
class Recorder
{
  public:
    /** Installs observers and schedules the window task. */
    Recorder(fleet::Fleet& fleet, RecorderConfig config);

    /** Uninstalls the observers. */
    ~Recorder();

    Recorder(const Recorder&) = delete;
    Recorder& operator=(const Recorder&) = delete;

    /** Journal a chaos fault (wire to CampaignEngine::set_fault_observer). */
    void RecordFault(SimTime time, const std::string& description);

    /** Windows recorded so far. */
    std::uint64_t cycles_recorded() const { return journal_.cycles.size(); }

    /**
     * Close out the recording and return the journal. The recorder
     * stays attached (a longer run can keep recording), but the
     * returned copy is complete as of now.
     */
    Journal Finish() const { return journal_; }

    /** The journal built so far (no copy). */
    const Journal& journal() const { return journal_; }

  private:
    void CloseWindow();

    fleet::Fleet& fleet_;
    RecorderConfig config_;
    Journal journal_;
    HashAccumulator rpc_hash_;
    HashAccumulator kernel_hash_;
    std::uint64_t window_index_ = 0;
    telemetry::SpanId span_watermark_ = 1;
    sim::TaskHandle task_;
};

}  // namespace dynamo::replay

#endif  // DYNAMO_REPLAY_RECORDER_H_
