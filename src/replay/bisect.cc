#include "replay/bisect.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "replay/replayer.h"

namespace dynamo::replay {

BisectReport
BisectDivergence(const Journal& recorded, const Journal& replayed)
{
    if (recorded.cycle_period != replayed.cycle_period ||
        recorded.checkpoint_every != replayed.checkpoint_every) {
        throw std::invalid_argument(
            "bisect: journals use different recording cadences");
    }

    BisectReport report;

    // Binary search the common checkpoints for the first digest
    // mismatch. State divergence is persistent, so the predicate
    // "checkpoint i differs" is monotone in i.
    const std::size_t common_cps =
        std::min(recorded.checkpoints.size(), replayed.checkpoints.size());
    std::size_t lo = 0;          // First index possibly divergent.
    std::size_t hi = common_cps; // First index known divergent (or end).
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        ++report.checkpoint_probes;
        const bool differs = recorded.checkpoints[mid].digest !=
                                 replayed.checkpoints[mid].digest ||
                             recorded.checkpoints[mid].cycle !=
                                 replayed.checkpoints[mid].cycle;
        if (differs) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    if (lo > 0) {
        report.last_good_checkpoint_cycle =
            static_cast<std::int64_t>(recorded.checkpoints[lo - 1].cycle);
    }
    if (lo < common_cps) {
        report.first_bad_checkpoint_cycle =
            static_cast<std::int64_t>(recorded.checkpoints[lo].cycle);
    }

    // Scan only the bracketed windows. The first divergent window is
    // strictly after the last good checkpoint and at or before the
    // first bad one (when there is one).
    const std::uint64_t scan_begin =
        report.last_good_checkpoint_cycle < 0
            ? 0
            : static_cast<std::uint64_t>(report.last_good_checkpoint_cycle) + 1;
    const std::uint64_t common_cycles = std::min(recorded.cycles.size(),
                                                 replayed.cycles.size());
    const std::uint64_t scan_end =
        report.first_bad_checkpoint_cycle < 0
            ? common_cycles
            : std::min<std::uint64_t>(
                  common_cycles,
                  static_cast<std::uint64_t>(
                      report.first_bad_checkpoint_cycle) +
                      1);

    for (std::uint64_t c = scan_begin; c < scan_end; ++c) {
        ++report.cycles_scanned;
        std::string why;
        if (!CyclesEqual(recorded.cycles[c], replayed.cycles[c], &why)) {
            report.diverged = true;
            report.first_divergent_cycle = c;
            report.diff = why;
            return report;
        }
    }

    // A checkpoint differed but every bracketed window record agreed:
    // the divergence is in state the windows do not sample (possible
    // but unusual). Surface the checkpoint itself.
    if (report.first_bad_checkpoint_cycle >= 0) {
        report.diverged = true;
        report.first_divergent_cycle =
            static_cast<std::uint64_t>(report.first_bad_checkpoint_cycle);
        report.diff =
            "checkpoint state digests differ at cycle " +
            std::to_string(report.first_bad_checkpoint_cycle) +
            " but no window record in the bracket differs";
        return report;
    }
    if (recorded.cycles.size() != replayed.cycles.size()) {
        report.diverged = true;
        report.first_divergent_cycle = common_cycles;
        report.diff = "journal lengths differ: " +
                      std::to_string(recorded.cycles.size()) + " vs " +
                      std::to_string(replayed.cycles.size()) + " windows";
    }
    return report;
}

std::string
FormatBisectReport(const BisectReport& report)
{
    std::ostringstream out;
    if (!report.diverged) {
        out << "journals are equivalent (" << report.checkpoint_probes
            << " checkpoint probes, " << report.cycles_scanned
            << " windows scanned)\n";
        return out.str();
    }
    out << "first divergent cycle: " << report.first_divergent_cycle << "\n";
    if (report.last_good_checkpoint_cycle >= 0) {
        out << "last bit-identical checkpoint: cycle "
            << report.last_good_checkpoint_cycle << "\n";
    } else {
        out << "no checkpoint precedes the divergence\n";
    }
    if (report.first_bad_checkpoint_cycle >= 0) {
        out << "first divergent checkpoint: cycle "
            << report.first_bad_checkpoint_cycle << "\n";
    }
    out << "search cost: " << report.checkpoint_probes
        << " checkpoint probes + " << report.cycles_scanned
        << " window comparisons\n";
    out << "difference:\n" << report.diff;
    if (!report.diff.empty() && report.diff.back() != '\n') out << "\n";
    return out.str();
}

}  // namespace dynamo::replay
