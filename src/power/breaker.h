/**
 * @file
 * Circuit-breaker trip model.
 *
 * The paper (Fig. 3) measures breaker trip time as a function of
 * power overdraw for each level of the Facebook/OCP power hierarchy:
 * breakers trip quickly under large spikes but sustain small overdraw
 * for minutes, and lower-level devices (racks, RPPs) tolerate
 * relatively more overdraw than higher-level ones (SBs, MSBs). Both
 * facts drive Dynamo's 3 s sampling / ≤2 min reaction requirements.
 *
 * We model each device class with an inverse-time curve
 *
 *     trip_time(r) = k / (r - 1)^alpha        for overdraw ratio r > 1
 *
 * fitted to the envelope the paper reports (e.g. RPP sustains 40 %
 * overdraw ≈ 60 s and 10 % ≈ 17 min; MSB sustains 15 % ≈ 60 s and
 * trips on ~5 % in about 2 min). Trip state integrates like a thermal
 * accumulator so brief spikes are tolerated and sustained overdraw
 * trips on the curve's schedule.
 */
#ifndef DYNAMO_POWER_BREAKER_H_
#define DYNAMO_POWER_BREAKER_H_

#include <limits>
#include <string>

#include "common/archive.h"
#include "common/units.h"

namespace dynamo::power {

/** Level of a device in the power-delivery hierarchy (Fig. 2). */
enum class DeviceLevel { kRack, kRpp, kSb, kMsb };

/** Human-readable level name ("Rack", "RPP", "SB", "MSB"). */
const char* DeviceLevelName(DeviceLevel level);

/**
 * Inverse-time trip curve parameters for one breaker class.
 * trip_time_s(r) = max(k / (r-1)^alpha, min_trip_s).
 */
struct BreakerCurve
{
    double k = 10.0;
    double alpha = 2.0;
    double min_trip_s = 2.0;

    /** Reference curve for each hierarchy level, fitted to Fig. 3. */
    static BreakerCurve ForLevel(DeviceLevel level);

    /**
     * Time (seconds) the breaker sustains a constant overdraw ratio
     * `r` (= draw / rating) before tripping; +inf when r <= 1.
     */
    double TripTimeSeconds(double overdraw_ratio) const;
};

/**
 * Stateful breaker: integrates overdraw over time and trips when the
 * accumulated "thermal" stress reaches 1. When the draw is at or below
 * rating the stress decays with `cooling_tau_s`, so short separated
 * spikes do not add up indefinitely.
 */
class BreakerModel
{
  public:
    BreakerModel(Watts rated, BreakerCurve curve, double cooling_tau_s = 120.0);

    /** Rated (trip-threshold) power of this breaker. */
    Watts rated() const { return rated_; }

    /**
     * Re-rate the breaker in place (scenario-driven derates: a grid
     * demand-response or thermal event lowers the safe envelope).
     * Accumulated stress is kept — a derate mid-overdraw should not
     * forgive heat already in the metal.
     */
    void set_rated(Watts rated) { rated_ = rated; }

    /** Trip curve in use. */
    const BreakerCurve& curve() const { return curve_; }

    /**
     * Advance the breaker state assuming `draw` watts flowed for `dt`
     * milliseconds. Returns true if the breaker tripped during this
     * interval (and latches the tripped state).
     */
    bool Advance(Watts draw, SimTime dt);

    /** True once tripped; stays true until Reset(). */
    bool tripped() const { return tripped_; }

    /** Simulated time at which the breaker tripped (valid if tripped). */
    SimTime trip_time() const { return trip_time_; }

    /** Fraction of trip stress accumulated, in [0, 1]. */
    double stress() const { return stress_; }

    /** Close the breaker again and clear accumulated stress. */
    void Reset();

    /** Advance the bookkeeping clock without flowing power (rarely needed). */
    void set_clock(SimTime now) { clock_ = now; }

    SimTime clock() const { return clock_; }

    /** Serialize thermal state (stress integral, trip latch, clock). */
    void Snapshot(Archive& ar) const
    {
        ar.F64(stress_);
        ar.Bool(tripped_);
        ar.I64(trip_time_);
        ar.I64(clock_);
    }

  private:
    Watts rated_;
    BreakerCurve curve_;
    double cooling_tau_s_;
    double stress_ = 0.0;
    bool tripped_ = false;
    SimTime trip_time_ = -1;
    SimTime clock_ = 0;
};

}  // namespace dynamo::power

#endif  // DYNAMO_POWER_BREAKER_H_
