/**
 * @file
 * Builders for power-delivery topologies.
 *
 * The reference shape follows the OCP-based Facebook data center of
 * Fig. 2: MSB (2.5 MW) → up to 4 SBs (1.25 MW) → RPPs (190 KW) → racks
 * (12.6 KW). Note the intentional oversubscription at every level: a
 * parent's rating is less than the sum of its children's ratings.
 * Quotas (planned peaks) are assigned as a configurable fraction of
 * the parent rating split across children.
 */
#ifndef DYNAMO_POWER_TOPOLOGY_H_
#define DYNAMO_POWER_TOPOLOGY_H_

#include <cstddef>
#include <memory>
#include <string>

#include "power/device.h"

namespace dynamo::power {

/** Parameters for the reference OCP-style topology. */
struct TopologySpec
{
    std::string name = "msb0";
    std::size_t sbs_per_msb = 4;
    std::size_t rpps_per_sb = 8;
    std::size_t racks_per_rpp = 6;

    Watts msb_rated = 2.5e6;
    Watts sb_rated = 1.25e6;
    Watts rpp_rated = 190.0e3;
    Watts rack_rated = 12.6e3;

    /**
     * Fraction of a parent's rated power divided evenly among the
     * children as their planned-peak quotas. 1.0 means the children's
     * quotas exactly fill the parent rating.
     */
    double quota_fill = 1.0;

    /** Include rack-level devices. Facebook's deployment configures
     * RPPs as the leaves and skips rack-level monitoring (Section IV);
     * set true to model rack breakers anyway. */
    bool include_racks = false;
};

/** Build the full MSB-rooted tree described by `spec`. */
std::unique_ptr<PowerDevice> BuildMsbTree(const TopologySpec& spec);

/**
 * Build a single-SB tree (one SB feeding `rpps` RPPs). Convenient for
 * experiments at Fig. 12 scale.
 */
std::unique_ptr<PowerDevice> BuildSbTree(const std::string& name, std::size_t rpps,
                                         const TopologySpec& spec);

/**
 * Build a single RPP/PDU-breaker device (a leaf domain of a few
 * hundred servers), as in the Fig. 11 and Fig. 15 experiments.
 */
std::unique_ptr<PowerDevice> BuildRpp(const std::string& name, Watts rated,
                                      Watts quota);

}  // namespace dynamo::power

#endif  // DYNAMO_POWER_TOPOLOGY_H_
