#include "power/breaker.h"

#include <algorithm>
#include <cmath>

namespace dynamo::power {

const char*
DeviceLevelName(DeviceLevel level)
{
    switch (level) {
      case DeviceLevel::kRack: return "Rack";
      case DeviceLevel::kRpp: return "RPP";
      case DeviceLevel::kSb: return "SB";
      case DeviceLevel::kMsb: return "MSB";
    }
    return "?";
}

BreakerCurve
BreakerCurve::ForLevel(DeviceLevel level)
{
    // Fitted to the Fig. 3 envelope:
    //   Rack: ~10 % overdraw sustained ≈ 18 min, very tolerant.
    //   RPP:  10 % ≈ 17 min, 40 % ≈ 60 s.
    //   SB:   between RPP and MSB.
    //   MSB:  ~5 % trips ≈ 2 min, 15 % ≈ 60 s.
    switch (level) {
      case DeviceLevel::kRack: return BreakerCurve{11.0, 2.0, 2.0};
      case DeviceLevel::kRpp: return BreakerCurve{9.35, 2.03, 2.0};
      case DeviceLevel::kSb: return BreakerCurve{10.5, 1.40, 2.0};
      case DeviceLevel::kMsb: return BreakerCurve{18.2, 0.63, 2.0};
    }
    return BreakerCurve{};
}

double
BreakerCurve::TripTimeSeconds(double overdraw_ratio) const
{
    if (overdraw_ratio <= 1.0) return std::numeric_limits<double>::infinity();
    const double t = k / std::pow(overdraw_ratio - 1.0, alpha);
    return std::max(t, min_trip_s);
}

BreakerModel::BreakerModel(Watts rated, BreakerCurve curve, double cooling_tau_s)
    : rated_(rated), curve_(curve), cooling_tau_s_(cooling_tau_s)
{
}

bool
BreakerModel::Advance(Watts draw, SimTime dt)
{
    clock_ += dt;
    if (tripped_) return false;
    const double dt_s = ToSeconds(dt);
    const double ratio = rated_ > 0.0 ? draw / rated_ : 0.0;
    if (ratio > 1.0) {
        const double trip_s = curve_.TripTimeSeconds(ratio);
        stress_ += dt_s / trip_s;
        if (stress_ >= 1.0) {
            stress_ = 1.0;
            tripped_ = true;
            trip_time_ = clock_;
            return true;
        }
    } else {
        stress_ *= std::exp(-dt_s / cooling_tau_s_);
    }
    return false;
}

void
BreakerModel::Reset()
{
    tripped_ = false;
    stress_ = 0.0;
    trip_time_ = -1;
}

}  // namespace dynamo::power
