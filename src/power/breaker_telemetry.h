/**
 * @file
 * Coarse power readings from the breaker itself.
 *
 * Some power breakers report power directly, but only at minute
 * granularity — far too slow to drive capping (Section III-C1). Dynamo
 * instead uses these readings to *validate* the server-side
 * aggregation and to dynamically tune the power-estimation models of
 * sensorless servers (Section VI, "use accurate estimation for missing
 * power information"). This class models that telemetry feed: a
 * periodic, slightly noisy sample of the device's true draw.
 */
#ifndef DYNAMO_POWER_BREAKER_TELEMETRY_H_
#define DYNAMO_POWER_BREAKER_TELEMETRY_H_

#include <optional>

#include "common/rng.h"
#include "common/units.h"
#include "power/device.h"
#include "sim/simulation.h"

namespace dynamo::power {

/** Minute-granularity power readings from a breaker. */
class BreakerTelemetry
{
  public:
    struct Reading
    {
        SimTime time;
        Watts power;
    };

    /**
     * @param period      Reading period (default one minute).
     * @param noise_frac  1-sigma relative metering error (default 2 %).
     */
    BreakerTelemetry(sim::Simulation& sim, PowerDevice& device,
                     SimTime period = 60000, double noise_frac = 0.02,
                     std::uint64_t seed = 3);

    ~BreakerTelemetry() { task_.Cancel(); }

    BreakerTelemetry(const BreakerTelemetry&) = delete;
    BreakerTelemetry& operator=(const BreakerTelemetry&) = delete;

    /** Most recent reading, if any has been taken yet. */
    std::optional<Reading> last() const { return last_; }

    SimTime period() const { return period_; }

    /**
     * Telemetry blackout (chaos campaigns): while set, no new readings
     * are taken, so consumers see the last one go stale — exactly how
     * a metering outage presents in production.
     */
    void set_blackout(bool blackout) { blackout_ = blackout; }

    bool blackout() const { return blackout_; }

  private:
    sim::Simulation& sim_;
    PowerDevice& device_;
    SimTime period_;
    double noise_frac_;
    Rng rng_;
    bool blackout_ = false;
    std::optional<Reading> last_;
    sim::TaskHandle task_;
};

}  // namespace dynamo::power

#endif  // DYNAMO_POWER_BREAKER_TELEMETRY_H_
