#include "power/device.h"

#include <utility>

namespace dynamo::power {

PowerDevice::PowerDevice(std::string name, DeviceLevel level, Watts rated_power,
                         Watts quota)
    : name_(std::move(name)),
      level_(level),
      rated_power_(rated_power),
      quota_(quota),
      breaker_(rated_power, BreakerCurve::ForLevel(level))
{
}

PowerDevice*
PowerDevice::AddChild(std::unique_ptr<PowerDevice> child)
{
    child->parent_ = this;
    children_.push_back(std::move(child));
    return children_.back().get();
}

std::unique_ptr<PowerDevice>
PowerDevice::RemoveChild(const std::string& name)
{
    for (auto it = children_.begin(); it != children_.end(); ++it) {
        if ((*it)->name_ == name) {
            std::unique_ptr<PowerDevice> child = std::move(*it);
            children_.erase(it);
            child->parent_ = nullptr;
            return child;
        }
    }
    return nullptr;
}

void
PowerDevice::AttachLoad(PowerLoad* load)
{
    loads_.push_back(load);
}

bool
PowerDevice::DetachLoad(PowerLoad* load)
{
    for (auto it = loads_.begin(); it != loads_.end(); ++it) {
        if (*it == load) {
            loads_.erase(it);
            return true;
        }
    }
    return false;
}

Watts
PowerDevice::TotalPower(SimTime now)
{
    if (!IsEnergized()) return 0.0;
    Watts total = 0.0;
    for (PowerLoad* load : loads_) total += load->PowerAt(now);
    for (const auto& child : children_) total += child->TotalPower(now);
    return total;
}

Watts
PowerDevice::NonCappableLoadPower(SimTime now)
{
    Watts total = 0.0;
    for (PowerLoad* load : loads_) {
        if (!load->Cappable()) total += load->PowerAt(now);
    }
    return total;
}

bool
PowerDevice::IsEnergized() const
{
    for (const PowerDevice* d = this; d != nullptr; d = d->parent_) {
        if (d->breaker_.tripped()) return false;
    }
    return true;
}

void
PowerDevice::NotifyPowerLost(SimTime now)
{
    for (PowerLoad* load : loads_) load->OnPowerLost(now);
    for (const auto& child : children_) child->NotifyPowerLost(now);
}

void
PowerDevice::NotifyPowerRestored(SimTime now)
{
    for (PowerLoad* load : loads_) load->OnPowerRestored(now);
    for (const auto& child : children_) child->NotifyPowerRestored(now);
}

void
PowerDevice::ForEach(const std::function<void(PowerDevice&)>& fn)
{
    fn(*this);
    for (const auto& child : children_) child->ForEach(fn);
}

PowerDevice*
PowerDevice::Find(const std::string& name)
{
    if (name_ == name) return this;
    for (const auto& child : children_) {
        if (PowerDevice* found = child->Find(name)) return found;
    }
    return nullptr;
}

std::vector<PowerDevice*>
PowerDevice::DevicesAtLevel(DeviceLevel level)
{
    std::vector<PowerDevice*> result;
    ForEach([&](PowerDevice& d) {
        if (d.level() == level) result.push_back(&d);
    });
    return result;
}

std::size_t
PowerDevice::SubtreeSize() const
{
    std::size_t n = 1;
    for (const auto& child : children_) n += child->SubtreeSize();
    return n;
}

}  // namespace dynamo::power
