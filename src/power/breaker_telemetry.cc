#include "power/breaker_telemetry.h"

namespace dynamo::power {

BreakerTelemetry::BreakerTelemetry(sim::Simulation& sim, PowerDevice& device,
                                   SimTime period, double noise_frac,
                                   std::uint64_t seed)
    : sim_(sim), device_(device), period_(period), noise_frac_(noise_frac),
      rng_(seed)
{
    task_ = sim_.SchedulePeriodic(period_, [this]() {
        if (blackout_) return;
        const Watts truth = device_.TotalPower(sim_.Now());
        last_ = Reading{sim_.Now(), truth * (1.0 + rng_.Normal(0.0, noise_frac_))};
    });
}

}  // namespace dynamo::power
