/**
 * @file
 * Periodic breaker integration.
 *
 * Breakers are physical devices: their thermal trip state evolves with
 * the actual current, independent of whether Dynamo is watching. The
 * monitor samples every device's draw on a fixed period, advances the
 * breaker accumulators, and reports trips (de-energizing subtrees and
 * invoking an optional callback so experiments can count outages).
 */
#ifndef DYNAMO_POWER_BREAKER_MONITOR_H_
#define DYNAMO_POWER_BREAKER_MONITOR_H_

#include <functional>
#include <vector>

#include "power/device.h"
#include "sim/simulation.h"

namespace dynamo::power {

/** Advances every breaker in a device tree on the simulation clock. */
class BreakerMonitor
{
  public:
    using TripCallback = std::function<void(PowerDevice&, SimTime)>;

    /**
     * @param sim     Simulation to schedule on.
     * @param root    Device tree whose breakers to integrate.
     * @param period  Sampling period in milliseconds (default 1 s).
     */
    BreakerMonitor(sim::Simulation& sim, PowerDevice& root, SimTime period = 1000);

    ~BreakerMonitor() { task_.Cancel(); }

    BreakerMonitor(const BreakerMonitor&) = delete;
    BreakerMonitor& operator=(const BreakerMonitor&) = delete;

    /** Invoke `cb` whenever any breaker trips. */
    void SetTripCallback(TripCallback cb) { on_trip_ = std::move(cb); }

    /** Number of trips observed so far. */
    std::size_t trip_count() const { return trip_count_; }

  private:
    void Tick();

    /**
     * Propagate power loss to a tripped device's loads, honoring
     * DCUPS battery ride-through on battery-backed subtrees.
     */
    void NotifyLostRespectingBatteries(PowerDevice& device, SimTime now);

    sim::Simulation& sim_;
    PowerDevice& root_;
    SimTime period_;
    SimTime last_tick_ = 0;
    std::size_t trip_count_ = 0;
    TripCallback on_trip_;
    sim::TaskHandle task_;
};

}  // namespace dynamo::power

#endif  // DYNAMO_POWER_BREAKER_MONITOR_H_
