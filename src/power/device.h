/**
 * @file
 * The power-delivery device tree (Fig. 2 of the paper).
 *
 * A PowerDevice is one node in the hierarchy (MSB, SB, RPP, or rack),
 * owning its children and referencing the electrical loads (servers,
 * top-of-rack switches) attached directly to it. Power draw is
 * computed bottom-up on demand; a tripped breaker de-energizes its
 * whole subtree, which is how the fleet harness measures outages.
 */
#ifndef DYNAMO_POWER_DEVICE_H_
#define DYNAMO_POWER_DEVICE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "power/breaker.h"

namespace dynamo::power {

/**
 * Anything that draws power from a device: servers implement this, and
 * FixedLoad models non-server equipment such as network switches
 * (which Dynamo monitors but cannot cap).
 */
class PowerLoad
{
  public:
    virtual ~PowerLoad() = default;

    /** Instantaneous draw at simulated time `now` (advances internal state). */
    virtual Watts PowerAt(SimTime now) = 0;

    /** True if this load can be power-capped (servers yes, switches no). */
    virtual bool Cappable() const { return false; }

    /** Called when the feeding breaker trips (load loses power). */
    virtual void OnPowerLost(SimTime now) { (void)now; }

    /** Called when power is restored after a trip. */
    virtual void OnPowerRestored(SimTime now) { (void)now; }
};

/** Constant-draw load, e.g. a top-of-rack switch. */
class FixedLoad : public PowerLoad
{
  public:
    explicit FixedLoad(Watts draw) : draw_(draw) {}

    Watts PowerAt(SimTime) override { return draw_; }

  private:
    Watts draw_;
};

/**
 * One node of the power hierarchy.
 *
 * `rated_power` is the physical breaker limit; `quota` is the planned
 * peak power assigned during capacity planning — the basis for the
 * upper-level controllers' punish-offender-first decisions. Because
 * the data center is oversubscribed, the sum of children's quotas may
 * not exceed the parent's rating even though the sum of their ratings
 * does.
 */
class PowerDevice
{
  public:
    PowerDevice(std::string name, DeviceLevel level, Watts rated_power,
                Watts quota);

    PowerDevice(const PowerDevice&) = delete;
    PowerDevice& operator=(const PowerDevice&) = delete;

    const std::string& name() const { return name_; }
    DeviceLevel level() const { return level_; }
    Watts rated_power() const { return rated_power_; }
    Watts quota() const { return quota_; }
    void set_quota(Watts quota) { quota_ = quota; }

    /**
     * DCUPS battery backup (Fig. 2: each DCUPS provides 90 s of power
     * to six racks). When > 0, loads in this subtree ride through an
     * upstream breaker trip for this long before going dark, giving
     * traffic engineering time to drain the domain.
     */
    void set_battery_backup(SimTime duration) { battery_backup_ = duration; }
    SimTime battery_backup() const { return battery_backup_; }

    /** Attach a child device; returns a non-owning pointer to it. */
    PowerDevice* AddChild(std::unique_ptr<PowerDevice> child);

    /**
     * Detach the direct child named `name`, returning ownership of it
     * (with its parent pointer cleared) so a reconfiguration can
     * re-attach it under a different feed, or drop it to decommission
     * the subtree. Returns nullptr if `name` is not a direct child.
     */
    std::unique_ptr<PowerDevice> RemoveChild(const std::string& name);

    /** Attach a directly-fed load (not owned). */
    void AttachLoad(PowerLoad* load);

    /** Detach a directly-fed load; returns false if it was not attached. */
    bool DetachLoad(PowerLoad* load);

    const std::vector<std::unique_ptr<PowerDevice>>& children() const
    {
        return children_;
    }

    const std::vector<PowerLoad*>& loads() const { return loads_; }

    PowerDevice* parent() const { return parent_; }

    /**
     * Total draw through this device at `now`: all directly attached
     * loads plus all children, or 0 if the subtree is de-energized.
     */
    Watts TotalPower(SimTime now);

    /** Draw of non-cappable loads attached directly to this device. */
    Watts NonCappableLoadPower(SimTime now);

    /** Breaker protecting this device. */
    BreakerModel& breaker() { return breaker_; }
    const BreakerModel& breaker() const { return breaker_; }

    /**
     * True if every breaker from here to the root is closed; a false
     * value means this subtree is dark.
     */
    bool IsEnergized() const;

    /** Notify the subtree's loads that power was lost / restored. */
    void NotifyPowerLost(SimTime now);
    void NotifyPowerRestored(SimTime now);

    /** Depth-first visit of this device and all descendants. */
    void ForEach(const std::function<void(PowerDevice&)>& fn);

    /** Find a descendant (or self) by name; nullptr if absent. */
    PowerDevice* Find(const std::string& name);

    /** Collect all devices at a given level in this subtree. */
    std::vector<PowerDevice*> DevicesAtLevel(DeviceLevel level);

    /** Number of devices in this subtree including self. */
    std::size_t SubtreeSize() const;

  private:
    std::string name_;
    DeviceLevel level_;
    Watts rated_power_;
    Watts quota_;
    SimTime battery_backup_ = 0;
    BreakerModel breaker_;
    PowerDevice* parent_ = nullptr;
    std::vector<std::unique_ptr<PowerDevice>> children_;
    std::vector<PowerLoad*> loads_;
};

}  // namespace dynamo::power

#endif  // DYNAMO_POWER_DEVICE_H_
