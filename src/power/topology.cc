#include "power/topology.h"

#include <utility>

namespace dynamo::power {
namespace {

std::string
ChildName(const std::string& parent, const char* kind, std::size_t index)
{
    return parent + "/" + kind + std::to_string(index);
}

}  // namespace

std::unique_ptr<PowerDevice>
BuildRpp(const std::string& name, Watts rated, Watts quota)
{
    return std::make_unique<PowerDevice>(name, DeviceLevel::kRpp, rated, quota);
}

std::unique_ptr<PowerDevice>
BuildSbTree(const std::string& name, std::size_t rpps, const TopologySpec& spec)
{
    const Watts sb_quota = spec.sb_rated;  // standalone tree: quota = rating
    auto sb = std::make_unique<PowerDevice>(name, DeviceLevel::kSb, spec.sb_rated,
                                            sb_quota);
    const Watts rpp_quota =
        spec.quota_fill * spec.sb_rated / static_cast<double>(rpps);
    for (std::size_t r = 0; r < rpps; ++r) {
        auto rpp = BuildRpp(ChildName(name, "rpp", r), spec.rpp_rated, rpp_quota);
        if (spec.include_racks) {
            const Watts rack_quota = spec.quota_fill * spec.rpp_rated /
                                     static_cast<double>(spec.racks_per_rpp);
            for (std::size_t k = 0; k < spec.racks_per_rpp; ++k) {
                rpp->AddChild(std::make_unique<PowerDevice>(
                    ChildName(rpp->name(), "rack", k), DeviceLevel::kRack,
                    spec.rack_rated, rack_quota));
            }
        }
        sb->AddChild(std::move(rpp));
    }
    return sb;
}

std::unique_ptr<PowerDevice>
BuildMsbTree(const TopologySpec& spec)
{
    auto msb = std::make_unique<PowerDevice>(spec.name, DeviceLevel::kMsb,
                                             spec.msb_rated, spec.msb_rated);
    const Watts sb_quota =
        spec.quota_fill * spec.msb_rated / static_cast<double>(spec.sbs_per_msb);
    for (std::size_t s = 0; s < spec.sbs_per_msb; ++s) {
        auto sb = BuildSbTree(ChildName(spec.name, "sb", s), spec.rpps_per_sb, spec);
        sb->set_quota(sb_quota);
        msb->AddChild(std::move(sb));
    }
    return msb;
}

}  // namespace dynamo::power
