#include "power/breaker_monitor.h"

namespace dynamo::power {

BreakerMonitor::BreakerMonitor(sim::Simulation& sim, PowerDevice& root,
                               SimTime period)
    : sim_(sim), root_(root), period_(period), last_tick_(sim.Now())
{
    task_ = sim_.SchedulePeriodic(period_, [this]() { Tick(); });
}

void
BreakerMonitor::Tick()
{
    const SimTime now = sim_.Now();
    const SimTime dt = now - last_tick_;
    last_tick_ = now;
    if (dt <= 0) return;

    // Integrate bottom-up so a child's trip this tick zeroes its
    // contribution to ancestors on the next tick (physical breakers do
    // not all react in the same instant either).
    root_.ForEach([&](PowerDevice& device) {
        if (device.breaker().tripped()) return;
        const Watts draw = device.TotalPower(now);
        if (device.breaker().Advance(draw, dt)) {
            ++trip_count_;
            NotifyLostRespectingBatteries(device, now);
            if (on_trip_) on_trip_(device, now);
        }
    });
}

void
BreakerMonitor::NotifyLostRespectingBatteries(PowerDevice& device, SimTime now)
{
    if (device.battery_backup() > 0) {
        // DCUPS ride-through: the subtree keeps serving on battery; it
        // only goes dark if upstream power has not returned when the
        // battery is exhausted.
        sim_.ScheduleAfter(device.battery_backup(), [this, &device]() {
            if (!device.IsEnergized()) device.NotifyPowerLost(sim_.Now());
        });
        return;
    }
    for (PowerLoad* load : device.loads()) load->OnPowerLost(now);
    for (const auto& child : device.children()) {
        NotifyLostRespectingBatteries(*child, now);
    }
}

}  // namespace dynamo::power
