/**
 * @file
 * `predictive`: Holt-style demand prediction over the arena planner.
 *
 * A purely reactive controller caps against the *last* reading; when
 * demand is still climbing the cut is already stale by the time RAPL
 * settles, the next cycle caps again, and near the uncap threshold the
 * controller flaps. This brain keeps a per-roster-slot Holt
 * (level + slope) exponential smoother updated on every valid cycle
 * and, when the predicted next-window aggregate exceeds the measured
 * one, widens the requested cut by the difference before delegating
 * the *split* to the paper's arena planner.
 *
 * The widening is one-sided by design: the effective cut is
 * `cut + max(0, predicted − measured)`, never less than the reactive
 * cut. Under-cutting on an optimistic forecast could leave the breaker
 * above its limit (and would violate the chaos auditor's
 * satisfied ⇒ planned ≥ cut rule); over-cutting merely lands deeper in
 * the hysteresis band, which is exactly the anti-flap effect wanted.
 *
 * State is keyed by roster index and resets whenever the roster size
 * changes (reconfiguration); all updates are plain double arithmetic
 * in roster order, so journals stay byte-identical across --threads.
 */
#ifndef DYNAMO_POLICY_PREDICTIVE_PLANNER_H_
#define DYNAMO_POLICY_PREDICTIVE_PLANNER_H_

#include "policy/capping_policy.h"

namespace dynamo::policy {

/** `predictive`: EWMA/slope forecast widening the reactive cut. */
class PredictivePlanner final : public CappingPolicy
{
  public:
    /** Level smoothing factor (weight of the newest reading). */
    static constexpr double kAlpha = 0.5;

    /** Trend smoothing factor. */
    static constexpr double kBeta = 0.3;

    PolicyKind kind() const override { return PolicyKind::kPredictive; }

    bool WantsObservations() const override { return true; }

    void ObserveServers(const std::vector<core::ServerPowerInfo>& servers,
                        const PolicyContext& ctx) override;

    void ObserveChildren(const std::vector<core::ChildPowerInfo>& children,
                         const PolicyContext& ctx) override;

    void PlanServerCuts(const std::vector<core::ServerPowerInfo>& servers,
                        Watts cut, const PolicyContext& ctx,
                        core::CappingWorkspace& ws,
                        core::CappingPlan* plan) override;

    void PlanChildLimits(const std::vector<core::ChildPowerInfo>& children,
                         Watts cut, const PolicyContext& ctx,
                         core::CappingWorkspace& ws,
                         core::OffenderPlan* plan) override;

    void Reset() override;

    /** Forecast state (level/slope per slot, both levels). */
    void Snapshot(Archive& ar) const override;

  private:
    /** Leaf-level forecast, one slot per roster index. */
    std::vector<double> level_;
    std::vector<double> slope_;

    /** Upper-level forecast, one slot per fresh-child index. */
    std::vector<double> child_level_;
    std::vector<double> child_slope_;
};

}  // namespace dynamo::policy

#endif  // DYNAMO_POLICY_PREDICTIVE_PLANNER_H_
