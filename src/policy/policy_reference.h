/**
 * @file
 * By-value reference oracles for the policy-lab brains.
 *
 * The PR 2 pattern, extended to the new brains: each oracle is a
 * plain, allocation-happy implementation of the same math with the
 * same floating-point operation order, so equivalence tests can use
 * exact EXPECT_EQ on every double — any drift between a brain and its
 * oracle (reordered sums, a "clever" refactor changing rounding) fails
 * loudly instead of silently invalidating recorded journals.
 *
 * three_band needs no oracle here: ThreeBandPlanner delegates to the
 * arena planner, which core/capping_policy_reference.h already pins.
 */
#ifndef DYNAMO_POLICY_POLICY_REFERENCE_H_
#define DYNAMO_POLICY_POLICY_REFERENCE_H_

#include <vector>

#include "core/capping_policy.h"

namespace dynamo::policy::reference {

/** Oracle for WaterfillPlanner::PlanServerCuts. */
core::CappingPlan WaterfillServerPlan(
    const std::vector<core::ServerPowerInfo>& servers, Watts cut);

/** Oracle for WaterfillPlanner::PlanChildLimits. */
core::OffenderPlan WaterfillChildPlan(
    const std::vector<core::ChildPowerInfo>& children, Watts cut);

/** Oracle for FairSharePlanner::PlanServerCuts. */
core::CappingPlan FairShareServerPlan(
    const std::vector<core::ServerPowerInfo>& servers, Watts cut);

/** Oracle for FairSharePlanner::PlanChildLimits. */
core::OffenderPlan FairShareChildPlan(
    const std::vector<core::ChildPowerInfo>& children, Watts cut);

/**
 * Oracle for the PredictivePlanner forecast: feed it the same power
 * sequences and it reproduces the brain's Holt state and cut widening
 * bit for bit. The brain then delegates the split to the arena
 * planner, so PredictivePlanner::PlanServerCuts must equal
 * core::ComputeCappingPlan(servers, WidenedCut(powers, cut)) exactly.
 */
struct HoltForecast
{
    std::vector<double> level;
    std::vector<double> slope;

    /** One observation pass (mirrors the brain's per-cycle update). */
    void Observe(const std::vector<double>& powers);

    /** cut + max(0, predicted aggregate − measured aggregate). */
    Watts WidenedCut(const std::vector<double>& powers, Watts cut) const;
};

}  // namespace dynamo::policy::reference

#endif  // DYNAMO_POLICY_POLICY_REFERENCE_H_
