#include "policy/predictive_planner.h"

namespace dynamo::policy {
namespace {

/** One Holt update pass over a roster's powers, in roster order. */
template <typename Roster, typename GetPower>
void
HoltUpdate(const Roster& roster, GetPower power_of, std::vector<double>* level,
           std::vector<double>* slope)
{
    const std::size_t n = roster.size();
    if (level->size() != n) {
        // Roster changed (reconfiguration, fresh-set churn): restart
        // the forecast from the current readings with zero trend. A
        // cold forecast predicts exactly the measured power, so the
        // brain degrades to reactive until the trend re-learns.
        level->assign(n, 0.0);
        slope->assign(n, 0.0);
        for (std::size_t i = 0; i < n; ++i) {
            (*level)[i] = power_of(roster[i]);
        }
        return;
    }
    for (std::size_t i = 0; i < n; ++i) {
        const double p = power_of(roster[i]);
        const double prev_level = (*level)[i];
        (*level)[i] = PredictivePlanner::kAlpha * p +
                      (1.0 - PredictivePlanner::kAlpha) *
                          (prev_level + (*slope)[i]);
        (*slope)[i] =
            PredictivePlanner::kBeta * ((*level)[i] - prev_level) +
            (1.0 - PredictivePlanner::kBeta) * (*slope)[i];
    }
}

/** cut + max(0, predicted-next-window aggregate − measured aggregate). */
template <typename Roster, typename GetPower>
Watts
WidenedCut(const Roster& roster, GetPower power_of,
           const std::vector<double>& level, const std::vector<double>& slope,
           Watts cut)
{
    if (level.size() != roster.size()) return cut;
    double predicted = 0.0;
    double measured = 0.0;
    for (std::size_t i = 0; i < roster.size(); ++i) {
        predicted += level[i] + slope[i];
        measured += power_of(roster[i]);
    }
    const double anticipatory = predicted - measured;
    if (anticipatory > 0.0) return cut + anticipatory;
    return cut;
}

}  // namespace

void
PredictivePlanner::ObserveServers(
    const std::vector<core::ServerPowerInfo>& servers, const PolicyContext&)
{
    HoltUpdate(
        servers, [](const core::ServerPowerInfo& s) { return s.power; },
        &level_, &slope_);
}

void
PredictivePlanner::ObserveChildren(
    const std::vector<core::ChildPowerInfo>& children, const PolicyContext&)
{
    HoltUpdate(
        children, [](const core::ChildPowerInfo& c) { return c.power; },
        &child_level_, &child_slope_);
}

void
PredictivePlanner::PlanServerCuts(
    const std::vector<core::ServerPowerInfo>& servers, Watts cut,
    const PolicyContext& ctx, core::CappingWorkspace& ws,
    core::CappingPlan* plan)
{
    const Watts eff = WidenedCut(
        servers, [](const core::ServerPowerInfo& s) { return s.power; },
        level_, slope_, cut);
    core::ComputeCappingPlan(servers, eff, ctx.bucket_size,
                             ctx.allocation_policy, ws, plan);
}

void
PredictivePlanner::PlanChildLimits(
    const std::vector<core::ChildPowerInfo>& children, Watts cut,
    const PolicyContext& ctx, core::CappingWorkspace& ws,
    core::OffenderPlan* plan)
{
    const Watts eff = WidenedCut(
        children, [](const core::ChildPowerInfo& c) { return c.power; },
        child_level_, child_slope_, cut);
    core::ComputeOffenderPlan(children, eff, ctx.bucket_size, ws, plan);
}

void
PredictivePlanner::Reset()
{
    level_.clear();
    slope_.clear();
    child_level_.clear();
    child_slope_.clear();
}

void
PredictivePlanner::Snapshot(Archive& ar) const
{
    ar.U64(level_.size());
    for (std::size_t i = 0; i < level_.size(); ++i) {
        ar.F64(level_[i]);
        ar.F64(slope_[i]);
    }
    ar.U64(child_level_.size());
    for (std::size_t i = 0; i < child_level_.size(); ++i) {
        ar.F64(child_level_[i]);
        ar.F64(child_slope_[i]);
    }
}

}  // namespace dynamo::policy
