#include "policy/policy_reference.h"

#include "policy/fairshare_planner.h"
#include "policy/predictive_planner.h"
#include "policy/waterfill_planner.h"

namespace dynamo::policy::reference {
namespace {

/** Mirrors SolveWaterfill in waterfill_planner.cc, by value. */
std::vector<double>
ReferenceWaterfill(const std::vector<double>& headroom,
                   const std::vector<double>& weight, Watts cut,
                   double* planned_out)
{
    const std::size_t n = headroom.size();
    std::vector<double> cuts(n, 0.0);
    double total_headroom = 0.0;
    for (std::size_t i = 0; i < n; ++i) total_headroom += headroom[i];
    if (total_headroom <= cut) {
        for (std::size_t i = 0; i < n; ++i) cuts[i] = headroom[i];
        *planned_out = total_headroom;
        return cuts;
    }
    double lo = 0.0;
    double hi = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double top = weight[i] * headroom[i];
        if (top > hi) hi = top;
    }
    for (int iter = 0; iter < 64 && hi - lo > 1e-9; ++iter) {
        const double mid = 0.5 * (lo + hi);
        double alloc = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            const double c = mid / weight[i];
            alloc += c < headroom[i] ? c : headroom[i];
        }
        if (alloc < cut) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    double planned = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double c = hi / weight[i];
        cuts[i] = c < headroom[i] ? c : headroom[i];
        planned += cuts[i];
    }
    *planned_out = planned;
    return cuts;
}

/** Mirrors SolveFairShare in fairshare_planner.cc, by value. */
std::vector<double>
ReferenceFairShare(const std::vector<double>& headroom,
                   const std::vector<double>& weight, Watts cut,
                   bool* satisfied)
{
    const std::size_t n = headroom.size();
    std::vector<double> cuts(n, 0.0);
    double total_headroom = 0.0;
    for (std::size_t i = 0; i < n; ++i) total_headroom += headroom[i];
    *satisfied = total_headroom >= cut;
    if (total_headroom <= cut) {
        for (std::size_t i = 0; i < n; ++i) cuts[i] = headroom[i];
        return cuts;
    }
    std::vector<std::uint32_t> active;
    for (std::size_t i = 0; i < n; ++i) {
        if (headroom[i] > 0.0) active.push_back(static_cast<std::uint32_t>(i));
    }
    double remaining = cut;
    for (std::size_t round = 0;
         round <= n && remaining > 1e-12 && !active.empty(); ++round) {
        double basis = 0.0;
        for (const std::uint32_t idx : active) {
            basis += weight[idx] * (headroom[idx] - cuts[idx]);
        }
        if (basis <= 0.0) break;
        bool clipped = false;
        double given = 0.0;
        std::vector<std::uint32_t> survivors;
        for (const std::uint32_t idx : active) {
            const double room = headroom[idx] - cuts[idx];
            double share = remaining * (weight[idx] * room) / basis;
            if (share >= room) {
                share = room;
                clipped = true;
            } else {
                survivors.push_back(idx);
            }
            cuts[idx] += share;
            given += share;
        }
        remaining -= given;
        active.swap(survivors);
        if (!clipped) break;
    }
    return cuts;
}

core::CappingPlan
ServerPlanFromCuts(const std::vector<core::ServerPowerInfo>& servers,
                   const std::vector<double>& cuts, bool satisfied)
{
    core::CappingPlan plan;
    plan.satisfied = satisfied;
    for (std::size_t i = 0; i < servers.size(); ++i) {
        if (cuts[i] <= 0.0) continue;
        core::CapAssignment assignment;
        assignment.index = i;
        assignment.cap = servers[i].power - cuts[i];
        assignment.cut = cuts[i];
        plan.planned_cut += cuts[i];
        plan.assignments.push_back(std::move(assignment));
    }
    return plan;
}

core::OffenderPlan
ChildPlanFromCuts(const std::vector<core::ChildPowerInfo>& children,
                  const std::vector<double>& cuts, bool satisfied)
{
    core::OffenderPlan plan;
    plan.satisfied = satisfied;
    for (std::size_t i = 0; i < children.size(); ++i) {
        if (cuts[i] <= 0.0) continue;
        core::ChildLimit limit;
        limit.index = i;
        limit.contractual_limit = children[i].power - cuts[i];
        limit.cut = cuts[i];
        plan.planned_cut += cuts[i];
        plan.limits.push_back(std::move(limit));
    }
    return plan;
}

}  // namespace

core::CappingPlan
WaterfillServerPlan(const std::vector<core::ServerPowerInfo>& servers,
                    Watts cut)
{
    const std::size_t n = servers.size();
    if (n == 0 || cut <= 0.0) {
        core::CappingPlan plan;
        plan.satisfied = cut <= 0.0;
        return plan;
    }
    std::vector<double> headroom(n);
    std::vector<double> weight(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double h = servers[i].power - servers[i].sla_min_cap;
        headroom[i] = h > 0.0 ? h : 0.0;
        double w = 1.0 + static_cast<double>(servers[i].priority_group);
        if (w < 1.0) w = 1.0;
        weight[i] = w;
    }
    double planned = 0.0;
    const std::vector<double> cuts =
        ReferenceWaterfill(headroom, weight, cut, &planned);
    return ServerPlanFromCuts(servers, cuts, planned >= cut);
}

core::OffenderPlan
WaterfillChildPlan(const std::vector<core::ChildPowerInfo>& children,
                   Watts cut)
{
    const std::size_t n = children.size();
    if (n == 0 || cut <= 0.0) {
        core::OffenderPlan plan;
        plan.satisfied = cut <= 0.0;
        return plan;
    }
    std::vector<double> headroom(n);
    std::vector<double> weight(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double h = children[i].power - children[i].floor;
        headroom[i] = h > 0.0 ? h : 0.0;
        weight[i] = children[i].power > children[i].quota
                        ? 1.0
                        : WaterfillPlanner::kInnocentWeight;
    }
    double planned = 0.0;
    const std::vector<double> cuts =
        ReferenceWaterfill(headroom, weight, cut, &planned);
    return ChildPlanFromCuts(children, cuts, planned >= cut);
}

core::CappingPlan
FairShareServerPlan(const std::vector<core::ServerPowerInfo>& servers,
                    Watts cut)
{
    const std::size_t n = servers.size();
    if (n == 0 || cut <= 0.0) {
        core::CappingPlan plan;
        plan.satisfied = cut <= 0.0;
        return plan;
    }
    std::vector<double> headroom(n);
    std::vector<double> weight(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double h = servers[i].power - servers[i].sla_min_cap;
        headroom[i] = h > 0.0 ? h : 0.0;
        double group = static_cast<double>(servers[i].priority_group);
        if (group < 0.0) group = 0.0;
        weight[i] = 1.0 / (1.0 + group);
    }
    bool satisfied = false;
    const std::vector<double> cuts =
        ReferenceFairShare(headroom, weight, cut, &satisfied);
    return ServerPlanFromCuts(servers, cuts, satisfied);
}

core::OffenderPlan
FairShareChildPlan(const std::vector<core::ChildPowerInfo>& children,
                   Watts cut)
{
    const std::size_t n = children.size();
    if (n == 0 || cut <= 0.0) {
        core::OffenderPlan plan;
        plan.satisfied = cut <= 0.0;
        return plan;
    }
    std::vector<double> headroom(n);
    std::vector<double> weight(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double h = children[i].power - children[i].floor;
        headroom[i] = h > 0.0 ? h : 0.0;
        weight[i] = children[i].power > children[i].quota
                        ? FairSharePlanner::kOffenderWeight
                        : 1.0;
    }
    bool satisfied = false;
    const std::vector<double> cuts =
        ReferenceFairShare(headroom, weight, cut, &satisfied);
    return ChildPlanFromCuts(children, cuts, satisfied);
}

void
HoltForecast::Observe(const std::vector<double>& powers)
{
    const std::size_t n = powers.size();
    if (level.size() != n) {
        level.assign(n, 0.0);
        slope.assign(n, 0.0);
        for (std::size_t i = 0; i < n; ++i) level[i] = powers[i];
        return;
    }
    for (std::size_t i = 0; i < n; ++i) {
        const double p = powers[i];
        const double prev_level = level[i];
        level[i] = PredictivePlanner::kAlpha * p +
                   (1.0 - PredictivePlanner::kAlpha) * (prev_level + slope[i]);
        slope[i] = PredictivePlanner::kBeta * (level[i] - prev_level) +
                   (1.0 - PredictivePlanner::kBeta) * slope[i];
    }
}

Watts
HoltForecast::WidenedCut(const std::vector<double>& powers, Watts cut) const
{
    if (level.size() != powers.size()) return cut;
    double predicted = 0.0;
    double measured = 0.0;
    for (std::size_t i = 0; i < powers.size(); ++i) {
        predicted += level[i] + slope[i];
        measured += powers[i];
    }
    const double anticipatory = predicted - measured;
    if (anticipatory > 0.0) return cut + anticipatory;
    return cut;
}

}  // namespace dynamo::policy::reference
