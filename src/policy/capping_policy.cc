#include "policy/capping_policy.h"

#include "common/names.h"
#include "policy/fairshare_planner.h"
#include "policy/predictive_planner.h"
#include "policy/three_band_planner.h"
#include "policy/waterfill_planner.h"

namespace dynamo::policy {
namespace {

constexpr NameEntry<PolicyKind> kPolicyNames[] = {
    {PolicyKind::kThreeBand, "three_band"},
    {PolicyKind::kPredictive, "predictive"},
    {PolicyKind::kWaterfill, "waterfill"},
    {PolicyKind::kFairShare, "fairshare"},
};

}  // namespace

const char*
PolicyKindName(PolicyKind kind)
{
    return NameOf(kPolicyNames, kind);
}

bool
ParsePolicyKind(const std::string& name, PolicyKind* out)
{
    return TryParseName(kPolicyNames, name, out);
}

std::vector<PolicyKind>
AllPolicyKinds()
{
    std::vector<PolicyKind> kinds;
    for (const auto& entry : kPolicyNames) kinds.push_back(entry.value);
    return kinds;
}

std::unique_ptr<CappingPolicy>
MakeCappingPolicy(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::kThreeBand: return std::make_unique<ThreeBandPlanner>();
      case PolicyKind::kPredictive:
        return std::make_unique<PredictivePlanner>();
      case PolicyKind::kWaterfill: return std::make_unique<WaterfillPlanner>();
      case PolicyKind::kFairShare: return std::make_unique<FairSharePlanner>();
    }
    return std::make_unique<ThreeBandPlanner>();
}

}  // namespace dynamo::policy
