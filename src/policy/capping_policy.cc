#include "policy/capping_policy.h"

#include "policy/fairshare_planner.h"
#include "policy/predictive_planner.h"
#include "policy/three_band_planner.h"
#include "policy/waterfill_planner.h"

namespace dynamo::policy {

const char*
PolicyKindName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::kThreeBand: return "three_band";
      case PolicyKind::kPredictive: return "predictive";
      case PolicyKind::kWaterfill: return "waterfill";
      case PolicyKind::kFairShare: return "fairshare";
    }
    return "?";
}

bool
ParsePolicyKind(const std::string& name, PolicyKind* out)
{
    for (const PolicyKind kind : AllPolicyKinds()) {
        if (name == PolicyKindName(kind)) {
            *out = kind;
            return true;
        }
    }
    return false;
}

std::vector<PolicyKind>
AllPolicyKinds()
{
    return {PolicyKind::kThreeBand, PolicyKind::kPredictive,
            PolicyKind::kWaterfill, PolicyKind::kFairShare};
}

std::unique_ptr<CappingPolicy>
MakeCappingPolicy(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::kThreeBand: return std::make_unique<ThreeBandPlanner>();
      case PolicyKind::kPredictive:
        return std::make_unique<PredictivePlanner>();
      case PolicyKind::kWaterfill: return std::make_unique<WaterfillPlanner>();
      case PolicyKind::kFairShare: return std::make_unique<FairSharePlanner>();
    }
    return std::make_unique<ThreeBandPlanner>();
}

}  // namespace dynamo::policy
