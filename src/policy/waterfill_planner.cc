#include "policy/waterfill_planner.h"

namespace dynamo::policy {
namespace {

/**
 * Solve cut_i = clamp(λ / w_i, 0, h_i) with Σ cut_i = cut by water-
 * level bisection. Headroom in ws.headroom[0..n), weights in
 * ws.stage[0..n); per-item cuts land in ws.cuts. Returns the total
 * allocated (index-order sum; ≥ cut unless headroom saturates).
 *
 * NOTE: the by-value oracle in policy_reference.cc mirrors this loop
 * structure operation for operation — keep them in lockstep.
 */
double
SolveWaterfill(std::size_t n, Watts cut, core::CappingWorkspace& ws)
{
    double total_headroom = 0.0;
    for (std::size_t i = 0; i < n; ++i) total_headroom += ws.headroom[i];
    if (total_headroom <= cut) {
        // Floors saturate: everyone is cut to its floor.
        for (std::size_t i = 0; i < n; ++i) ws.cuts[i] = ws.headroom[i];
        return total_headroom;
    }
    double lo = 0.0;
    double hi = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double top = ws.stage[i] * ws.headroom[i];
        if (top > hi) hi = top;
    }
    // Invariant: allocated(hi) >= cut (true initially: at the top
    // level every item sits at its headroom and total_headroom > cut).
    for (int iter = 0; iter < 64 && hi - lo > 1e-9; ++iter) {
        const double mid = 0.5 * (lo + hi);
        double alloc = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            const double c = mid / ws.stage[i];
            alloc += c < ws.headroom[i] ? c : ws.headroom[i];
        }
        if (alloc < cut) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    double planned = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double c = hi / ws.stage[i];
        ws.cuts[i] = c < ws.headroom[i] ? c : ws.headroom[i];
        planned += ws.cuts[i];
    }
    return planned;
}

}  // namespace

void
WaterfillPlanner::PlanServerCuts(
    const std::vector<core::ServerPowerInfo>& servers, Watts cut,
    const PolicyContext&, core::CappingWorkspace& ws, core::CappingPlan* plan)
{
    plan->assignments.clear();
    plan->planned_cut = 0.0;
    const std::size_t n = servers.size();
    if (n == 0 || cut <= 0.0) {
        plan->satisfied = cut <= 0.0;
        return;
    }
    ws.Prepare(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double h = servers[i].power - servers[i].sla_min_cap;
        ws.headroom[i] = h > 0.0 ? h : 0.0;
        double w = 1.0 + static_cast<double>(servers[i].priority_group);
        if (w < 1.0) w = 1.0;
        ws.stage[i] = w;
    }
    const double planned = SolveWaterfill(n, cut, ws);
    plan->satisfied = planned >= cut;
    for (std::size_t i = 0; i < n; ++i) {
        if (ws.cuts[i] <= 0.0) continue;
        core::CapAssignment assignment;
        assignment.index = i;
        assignment.cap = servers[i].power - ws.cuts[i];
        assignment.cut = ws.cuts[i];
        plan->planned_cut += ws.cuts[i];
        plan->assignments.push_back(std::move(assignment));
    }
}

void
WaterfillPlanner::PlanChildLimits(
    const std::vector<core::ChildPowerInfo>& children, Watts cut,
    const PolicyContext&, core::CappingWorkspace& ws, core::OffenderPlan* plan)
{
    plan->limits.clear();
    plan->planned_cut = 0.0;
    const std::size_t n = children.size();
    if (n == 0 || cut <= 0.0) {
        plan->satisfied = cut <= 0.0;
        return;
    }
    ws.Prepare(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double h = children[i].power - children[i].floor;
        ws.headroom[i] = h > 0.0 ? h : 0.0;
        ws.stage[i] =
            children[i].power > children[i].quota ? 1.0 : kInnocentWeight;
    }
    const double planned = SolveWaterfill(n, cut, ws);
    plan->satisfied = planned >= cut;
    for (std::size_t i = 0; i < n; ++i) {
        if (ws.cuts[i] <= 0.0) continue;
        core::ChildLimit limit;
        limit.index = i;
        limit.contractual_limit = children[i].power - ws.cuts[i];
        limit.cut = ws.cuts[i];
        plan->planned_cut += ws.cuts[i];
        plan->limits.push_back(std::move(limit));
    }
}

}  // namespace dynamo::policy
