/**
 * @file
 * `fairshare`: FastCap-style proportional-fairness cut split.
 *
 * Every item absorbs cut in proportion to its priority-weighted
 * cappable headroom, so relative slowdown is equalized across the
 * roster instead of concentrated on the hottest bucket: a server
 * drawing twice the cappable power gives up twice the watts, and all
 * servers in a group see roughly the same fractional squeeze. Server
 * weights fall with priority (group g shares at 1 / (1 + g), so lower
 * groups absorb proportionally more); children weight offenders at 2×
 * an innocent's share.
 *
 * Floors clip: when an item's proportional share exceeds its
 * remaining headroom it saturates at the floor and drops out, and the
 * unplaced remainder is redistributed proportionally over the still-
 * active items (at most n rounds — each round saturates at least one
 * item or ends the split). Stateless, allocation-free (scratch in the
 * caller's CappingWorkspace), and pinned bit-identical to the
 * by-value oracle in policy/policy_reference.h.
 */
#ifndef DYNAMO_POLICY_FAIRSHARE_PLANNER_H_
#define DYNAMO_POLICY_FAIRSHARE_PLANNER_H_

#include "policy/capping_policy.h"

namespace dynamo::policy {

/** `fairshare`: weighted proportional split with floor redistribution. */
class FairSharePlanner final : public CappingPolicy
{
  public:
    /** Share multiplier for over-quota children. */
    static constexpr double kOffenderWeight = 2.0;

    PolicyKind kind() const override { return PolicyKind::kFairShare; }

    void PlanServerCuts(const std::vector<core::ServerPowerInfo>& servers,
                        Watts cut, const PolicyContext& ctx,
                        core::CappingWorkspace& ws,
                        core::CappingPlan* plan) override;

    void PlanChildLimits(const std::vector<core::ChildPowerInfo>& children,
                         Watts cut, const PolicyContext& ctx,
                         core::CappingWorkspace& ws,
                         core::OffenderPlan* plan) override;
};

}  // namespace dynamo::policy

#endif  // DYNAMO_POLICY_FAIRSHARE_PLANNER_H_
