/**
 * @file
 * `waterfill`: nvPAX-style constrained-optimization cut split.
 *
 * The split is the exact solution of a small quadratic program,
 *
 *     min  Σ w_i · cut_i² / 2
 *     s.t. Σ cut_i = C,   0 ≤ cut_i ≤ h_i
 *
 * where h_i is the cappable headroom above the hard floor (SLA min cap
 * for servers, contractual floor for children) and w_i is a priority
 * weight: heavier weight → quadratically more expensive to cut. The
 * KKT conditions give cut_i = clamp(λ / w_i, 0, h_i) for a single
 * water level λ, found by monotone bisection (64 iterations, the same
 * idiom as the arena planner's level search). Servers weight by
 * priority group (group g costs 1 + g); children weight offenders
 * (power above quota) at 1 and innocents at 4, a soft version of
 * punish-offender-first — innocents *can* be cut when the offenders'
 * headroom runs out, but at four times the marginal cost.
 *
 * Unlike three_band, every server with headroom shares the cut (the
 * level spreads it smoothly instead of draining the hottest bucket
 * first), so per-server cuts are smaller at equal total — the nvPAX
 * trade: more servers slightly slowed instead of a few heavily capped.
 *
 * Stateless and allocation-free: scratch lives in the caller's
 * CappingWorkspace (headroom in ws.headroom, weights in ws.stage,
 * per-item cuts in ws.cuts). Pinned bit-identical to the by-value
 * oracle in policy/policy_reference.h.
 */
#ifndef DYNAMO_POLICY_WATERFILL_PLANNER_H_
#define DYNAMO_POLICY_WATERFILL_PLANNER_H_

#include "policy/capping_policy.h"

namespace dynamo::policy {

/** `waterfill`: weighted QP water-fill with SLA floors. */
class WaterfillPlanner final : public CappingPolicy
{
  public:
    /** Marginal-cost weight of cutting an innocent (in-quota) child. */
    static constexpr double kInnocentWeight = 4.0;

    PolicyKind kind() const override { return PolicyKind::kWaterfill; }

    void PlanServerCuts(const std::vector<core::ServerPowerInfo>& servers,
                        Watts cut, const PolicyContext& ctx,
                        core::CappingWorkspace& ws,
                        core::CappingPlan* plan) override;

    void PlanChildLimits(const std::vector<core::ChildPowerInfo>& children,
                         Watts cut, const PolicyContext& ctx,
                         core::CappingWorkspace& ws,
                         core::OffenderPlan* plan) override;
};

}  // namespace dynamo::policy

#endif  // DYNAMO_POLICY_WATERFILL_PLANNER_H_
