#include "policy/three_band_planner.h"

namespace dynamo::policy {

void
ThreeBandPlanner::PlanServerCuts(
    const std::vector<core::ServerPowerInfo>& servers, Watts cut,
    const PolicyContext& ctx, core::CappingWorkspace& ws,
    core::CappingPlan* plan)
{
    core::ComputeCappingPlan(servers, cut, ctx.bucket_size,
                             ctx.allocation_policy, ws, plan);
}

void
ThreeBandPlanner::PlanChildLimits(
    const std::vector<core::ChildPowerInfo>& children, Watts cut,
    const PolicyContext& ctx, core::CappingWorkspace& ws,
    core::OffenderPlan* plan)
{
    core::ComputeOffenderPlan(children, cut, ctx.bucket_size, ws, plan);
}

}  // namespace dynamo::policy
