#include "policy/fairshare_planner.h"

namespace dynamo::policy {
namespace {

/**
 * Weighted proportional split with floor redistribution. Headroom in
 * ws.headroom[0..n), weights in ws.stage[0..n); per-item cuts land in
 * ws.cuts. `*satisfied` reports whether the full cut fits within the
 * floors. Returns the total allocated (index-order sum).
 *
 * NOTE: the by-value oracle in policy_reference.cc mirrors this loop
 * structure operation for operation — keep them in lockstep.
 */
double
SolveFairShare(std::size_t n, Watts cut, core::CappingWorkspace& ws,
               bool* satisfied)
{
    double total_headroom = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        ws.cuts[i] = 0.0;
        total_headroom += ws.headroom[i];
    }
    *satisfied = total_headroom >= cut;
    if (total_headroom <= cut) {
        // Floors saturate: everyone is cut to its floor.
        for (std::size_t i = 0; i < n; ++i) ws.cuts[i] = ws.headroom[i];
        return total_headroom;
    }
    ws.active.clear();
    for (std::size_t i = 0; i < n; ++i) {
        if (ws.headroom[i] > 0.0) {
            ws.active.push_back(static_cast<std::uint32_t>(i));
        }
    }
    double remaining = cut;
    // Each round either clips at least one item at its floor (and
    // drops it from the active set) or places the full remainder, so
    // n + 1 rounds always suffice.
    for (std::size_t round = 0;
         round <= n && remaining > 1e-12 && !ws.active.empty(); ++round) {
        double basis = 0.0;
        for (const std::uint32_t idx : ws.active) {
            basis += ws.stage[idx] * (ws.headroom[idx] - ws.cuts[idx]);
        }
        if (basis <= 0.0) break;
        bool clipped = false;
        double given = 0.0;
        ws.items.clear();  // survivors for the next round
        for (const std::uint32_t idx : ws.active) {
            const double room = ws.headroom[idx] - ws.cuts[idx];
            double share = remaining * (ws.stage[idx] * room) / basis;
            if (share >= room) {
                share = room;
                clipped = true;
            } else {
                ws.items.push_back(idx);
            }
            ws.cuts[idx] += share;
            given += share;
        }
        remaining -= given;
        ws.active.swap(ws.items);
        // No clip means every share fit: the split is complete up to
        // rounding residue, which stays unallocated (harmlessly small
        // against the auditor's SLA epsilon).
        if (!clipped) break;
    }
    double planned = 0.0;
    for (std::size_t i = 0; i < n; ++i) planned += ws.cuts[i];
    return planned;
}

}  // namespace

void
FairSharePlanner::PlanServerCuts(
    const std::vector<core::ServerPowerInfo>& servers, Watts cut,
    const PolicyContext&, core::CappingWorkspace& ws, core::CappingPlan* plan)
{
    plan->assignments.clear();
    plan->planned_cut = 0.0;
    const std::size_t n = servers.size();
    if (n == 0 || cut <= 0.0) {
        plan->satisfied = cut <= 0.0;
        return;
    }
    ws.Prepare(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double h = servers[i].power - servers[i].sla_min_cap;
        ws.headroom[i] = h > 0.0 ? h : 0.0;
        double group = static_cast<double>(servers[i].priority_group);
        if (group < 0.0) group = 0.0;
        ws.stage[i] = 1.0 / (1.0 + group);
    }
    bool satisfied = false;
    SolveFairShare(n, cut, ws, &satisfied);
    plan->satisfied = satisfied;
    for (std::size_t i = 0; i < n; ++i) {
        if (ws.cuts[i] <= 0.0) continue;
        core::CapAssignment assignment;
        assignment.index = i;
        assignment.cap = servers[i].power - ws.cuts[i];
        assignment.cut = ws.cuts[i];
        plan->planned_cut += ws.cuts[i];
        plan->assignments.push_back(std::move(assignment));
    }
}

void
FairSharePlanner::PlanChildLimits(
    const std::vector<core::ChildPowerInfo>& children, Watts cut,
    const PolicyContext&, core::CappingWorkspace& ws, core::OffenderPlan* plan)
{
    plan->limits.clear();
    plan->planned_cut = 0.0;
    const std::size_t n = children.size();
    if (n == 0 || cut <= 0.0) {
        plan->satisfied = cut <= 0.0;
        return;
    }
    ws.Prepare(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double h = children[i].power - children[i].floor;
        ws.headroom[i] = h > 0.0 ? h : 0.0;
        ws.stage[i] =
            children[i].power > children[i].quota ? kOffenderWeight : 1.0;
    }
    bool satisfied = false;
    SolveFairShare(n, cut, ws, &satisfied);
    plan->satisfied = satisfied;
    for (std::size_t i = 0; i < n; ++i) {
        if (ws.cuts[i] <= 0.0) continue;
        core::ChildLimit limit;
        limit.index = i;
        limit.contractual_limit = children[i].power - ws.cuts[i];
        limit.cut = ws.cuts[i];
        plan->planned_cut += ws.cuts[i];
        plan->limits.push_back(std::move(limit));
    }
}

}  // namespace dynamo::policy
