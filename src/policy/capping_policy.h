/**
 * @file
 * Pluggable capping brains (the policy lab).
 *
 * The paper ships exactly one brain: three-band hysteresis plus the
 * high-bucket-first arena planner (core/capping_policy.*). ROADMAP
 * item 3 asks for competing brains judged side by side, so the plan
 * computation is carved out behind this strategy interface:
 *
 *   three_band  — the paper's planner, verbatim (delegates to the
 *                 arena entry points; bit-identical to the pre-
 *                 interface call path, pinned by the golden journals).
 *   predictive  — Holt-style level+slope demand predictor; when
 *                 demand is rising it widens the cut to where power
 *                 is *about to be* next window, damping the cap →
 *                 release → re-cap flapping of a purely reactive
 *                 controller. Never cuts less than reactive.
 *   waterfill   — nvPAX-style constrained allocator: the cut split is
 *                 the exact KKT solution of a small quadratic program
 *                 with per-server SLA floors as box constraints and
 *                 priority groups as weights, solved by water-level
 *                 bisection.
 *   fairshare   — FastCap-style proportional fairness: every server
 *                 absorbs cut in proportion to its cappable headroom
 *                 (equalizing relative slowdown), priority-weighted,
 *                 with iterative redistribution when floors clip.
 *
 * Contract, shared by all brains:
 *  - allocation-free on the steady path (scratch in the caller's
 *    CappingWorkspace or brain-owned reused vectors);
 *  - deterministic: same inputs in the same order → bit-identical
 *    plans (no RNG, no wall clock), so DYNJRNL1 journals stay
 *    byte-identical across --threads;
 *  - floors are hard: no plan caps a server below sla_min_cap or
 *    contracts a child below its floor;
 *  - each brain has a by-value reference oracle
 *    (policy/policy_reference.h) pinned bit-identical by tests.
 *
 * The brain is selected per controller via ControllerBuilder::Policy
 * or fleet-wide via the `capping_policy` spec key; the name rides in
 * the canonical fleet spec and therefore in every recorded journal,
 * so replay and bisection reconstruct under the same brain.
 */
#ifndef DYNAMO_POLICY_CAPPING_POLICY_H_
#define DYNAMO_POLICY_CAPPING_POLICY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/archive.h"
#include "common/units.h"
#include "core/capping_policy.h"

namespace dynamo::policy {

/** The selectable capping brains. */
enum class PolicyKind {
    kThreeBand,
    kPredictive,
    kWaterfill,
    kFairShare,
};

/** Canonical spec-key token ("three_band", "predictive", ...). */
const char* PolicyKindName(PolicyKind kind);

/**
 * Parse a spec-key token; returns false (leaving *out untouched) on an
 * unknown name. Callers that need a diagnostic add their own context
 * (the spec parser names the key and line).
 */
bool ParsePolicyKind(const std::string& name, PolicyKind* out);

/** All brains, in spec-token order (for judges and test sweeps). */
std::vector<PolicyKind> AllPolicyKinds();

/**
 * Per-decision context handed to a brain alongside the roster. All
 * fields are derived from controller state the pre-interface planner
 * already saw implicitly; none of them aliases the workspace.
 */
struct PolicyContext
{
    /** High-bucket-first width (three_band only; others ignore it). */
    Watts bucket_size = 20.0;

    /** Within-group rule for the three_band arena planner. */
    core::AllocationPolicy allocation_policy =
        core::AllocationPolicy::kHighBucketFirst;

    /** This cycle's aggregated power (sum over the roster view). */
    Watts aggregated = 0.0;

    /** The controller's effective limit min(physical, contractual). */
    Watts limit = 0.0;

    /** Band target the cut aims at (0 during observation calls). */
    Watts target = 0.0;

    /** Simulation now, ms. */
    SimTime now = 0;

    /** The controller's pull cycle, ms (prediction horizon). */
    SimTime cycle_ms = 3000;
};

/**
 * Strategy interface: one instance lives inside each controller and
 * computes the cut split whenever the band decision says kCap.
 *
 * Observation hooks fire on every *valid* aggregation (not just while
 * capping) so stateful brains can track demand between episodes —
 * but only when WantsObservations() is true, so stateless brains pay
 * nothing extra on the hot path (the leaf skips building its roster
 * view on non-capping cycles, exactly as before the interface).
 */
class CappingPolicy
{
  public:
    virtual ~CappingPolicy() = default;

    virtual PolicyKind kind() const = 0;

    /** True if Observe* must run every valid cycle (stateful brains). */
    virtual bool WantsObservations() const { return false; }

    /** Leaf-level demand observation (roster view, every valid cycle). */
    virtual void ObserveServers(
        const std::vector<core::ServerPowerInfo>& servers,
        const PolicyContext& ctx)
    {
        (void)servers;
        (void)ctx;
    }

    /** Upper-level demand observation (fresh children, every valid cycle). */
    virtual void ObserveChildren(
        const std::vector<core::ChildPowerInfo>& children,
        const PolicyContext& ctx)
    {
        (void)children;
        (void)ctx;
    }

    /**
     * Split `cut` watts across `servers` (leaf level). Scratch lives
     * in `ws`; the result lands in `plan` (vectors reused; assignments
     * carry indices into `servers`, names stay empty). Must allocate
     * nothing in steady state.
     */
    virtual void PlanServerCuts(
        const std::vector<core::ServerPowerInfo>& servers, Watts cut,
        const PolicyContext& ctx, core::CappingWorkspace& ws,
        core::CappingPlan* plan) = 0;

    /** Split `cut` across child controllers (upper level). */
    virtual void PlanChildLimits(
        const std::vector<core::ChildPowerInfo>& children, Watts cut,
        const PolicyContext& ctx, core::CappingWorkspace& ws,
        core::OffenderPlan* plan) = 0;

    /** Drop accumulated state (controller deactivation / adoption). */
    virtual void Reset() {}

    /**
     * Serialize brain state into a controller checkpoint. The default
     * writes nothing — deliberately: the three_band brain must keep
     * controller Snapshot bytes identical to the pre-interface layout
     * so the committed golden journals replay byte-exactly.
     */
    virtual void Snapshot(Archive& ar) const { (void)ar; }
};

/** Factory: the one place a PolicyKind becomes a brain instance. */
std::unique_ptr<CappingPolicy> MakeCappingPolicy(PolicyKind kind);

}  // namespace dynamo::policy

#endif  // DYNAMO_POLICY_CAPPING_POLICY_H_
