/**
 * @file
 * The paper's brain behind the CappingPolicy interface.
 *
 * A pure delegation shim: PlanServerCuts forwards to the arena
 * planner's workspace entry point with the context's bucket size and
 * allocation policy, PlanChildLimits to the punish-offender-first
 * planner. No state, no observations, zero Snapshot bytes — the
 * refactored call path is bit-identical to the pre-interface one,
 * which the committed golden journals pin.
 */
#ifndef DYNAMO_POLICY_THREE_BAND_PLANNER_H_
#define DYNAMO_POLICY_THREE_BAND_PLANNER_H_

#include "policy/capping_policy.h"

namespace dynamo::policy {

/** `three_band`: priority-group-first / high-bucket-first (paper). */
class ThreeBandPlanner final : public CappingPolicy
{
  public:
    PolicyKind kind() const override { return PolicyKind::kThreeBand; }

    void PlanServerCuts(const std::vector<core::ServerPowerInfo>& servers,
                        Watts cut, const PolicyContext& ctx,
                        core::CappingWorkspace& ws,
                        core::CappingPlan* plan) override;

    void PlanChildLimits(const std::vector<core::ChildPowerInfo>& children,
                         Watts cut, const PolicyContext& ctx,
                         core::CappingWorkspace& ws,
                         core::OffenderPlan* plan) override;
};

}  // namespace dynamo::policy

#endif  // DYNAMO_POLICY_THREE_BAND_PLANNER_H_
