/**
 * @file
 * Portable binary archive for snapshots and replay journals.
 *
 * The checkpoint/record-replay subsystem needs a serialization layer
 * with two properties the usual text formats lack:
 *
 *   - **bit-exactness**: doubles are stored as their IEEE-754 bit
 *     pattern, so a value that survives a snapshot→restore→snapshot
 *     round trip is *identical*, not merely close; and
 *   - **canonical bytes**: the same logical state always produces the
 *     same byte sequence (fixed little-endian widths, no padding, no
 *     pointer-dependent ordering), so state equality can be decided by
 *     comparing bytes or 64-bit digests.
 *
 * `Archive` is the write side: an append-only byte sink that also
 * maintains a running FNV-1a digest, so callers can either keep the
 * full bytes (checkpoints, journals) or just the digest (cheap
 * divergence probes). `ArchiveReader` is the read side; it throws
 * `std::runtime_error` on truncated input rather than returning
 * garbage, because a corrupt journal must fail loudly.
 *
 * Layer note: this header lives in common/ so every layer (sim, rpc,
 * power, server, workload, core, fleet, telemetry) can implement a
 * `Snapshot(Archive&)` visitor without depending on src/replay.
 */
#ifndef DYNAMO_COMMON_ARCHIVE_H_
#define DYNAMO_COMMON_ARCHIVE_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>

namespace dynamo {

/** FNV-1a 64-bit offset basis / prime (stable across platforms). */
inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/** FNV-1a over a byte string; used for stable name→seed derivation. */
constexpr std::uint64_t Fnv1a64(std::string_view bytes)
{
    std::uint64_t h = kFnvOffset;
    for (const char c : bytes) {
        h ^= static_cast<std::uint8_t>(c);
        h *= kFnvPrime;
    }
    return h;
}

/**
 * Order-sensitive 64-bit rolling hash (FNV-1a over u64 words). Used
 * for per-cycle event/RPC digests where keeping the full stream would
 * dwarf the journal.
 */
class HashAccumulator
{
  public:
    void Mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h_ ^= (v >> (8 * i)) & 0xffu;
            h_ *= kFnvPrime;
        }
    }

    std::uint64_t value() const { return h_; }

    void Reset() { h_ = kFnvOffset; }

  private:
    std::uint64_t h_ = kFnvOffset;
};

/** Append-only little-endian byte sink with a running FNV-1a digest. */
class Archive
{
  public:
    void U8(std::uint8_t v) { Put(&v, 1); }

    void U32(std::uint32_t v)
    {
        std::uint8_t b[4];
        for (int i = 0; i < 4; ++i) b[i] = (v >> (8 * i)) & 0xffu;
        Put(b, sizeof b);
    }

    void U64(std::uint64_t v)
    {
        std::uint8_t b[8];
        for (int i = 0; i < 8; ++i) b[i] = (v >> (8 * i)) & 0xffu;
        Put(b, sizeof b);
    }

    void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }

    void Bool(bool v) { U8(v ? 1 : 0); }

    /** IEEE-754 bit pattern; bit-exact round trip by construction. */
    void F64(double v) { U64(std::bit_cast<std::uint64_t>(v)); }

    /** Length-prefixed byte string. */
    void Str(std::string_view s)
    {
        U64(s.size());
        Put(s.data(), s.size());
    }

    /**
     * Append another archive's bytes verbatim (no length prefix),
     * folding them into this archive's digest byte-for-byte. The
     * result — bytes and digest — is identical to having written
     * `other`'s fields into this archive directly, which is what lets
     * per-shard snapshot archives be filled in parallel and then
     * merged in canonical shard order without changing the output.
     */
    void Append(const Archive& other)
    {
        Put(other.bytes_.data(), other.bytes_.size());
    }

    const std::string& bytes() const { return bytes_; }

    /** Digest of everything appended so far. */
    std::uint64_t digest() const { return digest_; }

    std::size_t size() const { return bytes_.size(); }

  private:
    void Put(const void* data, std::size_t n)
    {
        const auto* p = static_cast<const std::uint8_t*>(data);
        bytes_.append(reinterpret_cast<const char*>(p), n);
        for (std::size_t i = 0; i < n; ++i) {
            digest_ ^= p[i];
            digest_ *= kFnvPrime;
        }
    }

    std::string bytes_;
    std::uint64_t digest_ = kFnvOffset;
};

/** Reader over Archive bytes; throws std::runtime_error on truncation. */
class ArchiveReader
{
  public:
    explicit ArchiveReader(std::string_view bytes) : bytes_(bytes) {}

    std::uint8_t U8()
    {
        Need(1);
        return static_cast<std::uint8_t>(bytes_[pos_++]);
    }

    std::uint32_t U32()
    {
        Need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) {
            v |= std::uint32_t{static_cast<std::uint8_t>(bytes_[pos_ + i])}
                 << (8 * i);
        }
        pos_ += 4;
        return v;
    }

    std::uint64_t U64()
    {
        Need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) {
            v |= std::uint64_t{static_cast<std::uint8_t>(bytes_[pos_ + i])}
                 << (8 * i);
        }
        pos_ += 8;
        return v;
    }

    std::int64_t I64() { return static_cast<std::int64_t>(U64()); }

    bool Bool() { return U8() != 0; }

    double F64() { return std::bit_cast<double>(U64()); }

    std::string Str()
    {
        const std::uint64_t n = U64();
        Need(n);
        std::string s(bytes_.substr(pos_, n));
        pos_ += n;
        return s;
    }

    bool AtEnd() const { return pos_ == bytes_.size(); }

    std::size_t pos() const { return pos_; }

    /** Bytes left to read; lets decoders sanity-check element counts
     *  against the physical input before reserving memory for them. */
    std::size_t remaining() const { return bytes_.size() - pos_; }

  private:
    void Need(std::uint64_t n) const
    {
        if (pos_ + n > bytes_.size()) {
            throw std::runtime_error("archive truncated: need " +
                                     std::to_string(n) + " bytes at offset " +
                                     std::to_string(pos_));
        }
    }

    std::string_view bytes_;
    std::size_t pos_ = 0;
};

}  // namespace dynamo

#endif  // DYNAMO_COMMON_ARCHIVE_H_
