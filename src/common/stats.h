/**
 * @file
 * Statistics helpers used by the power-variation characterization and
 * by the experiment harnesses: percentiles, empirical CDFs, running
 * moments, and fixed-width histograms.
 */
#ifndef DYNAMO_COMMON_STATS_H_
#define DYNAMO_COMMON_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace dynamo {

/**
 * Percentile of a sample set (p in [0, 100]), linear interpolation
 * between order statistics. Returns 0 for an empty sample.
 */
double Percentile(std::vector<double> samples, double p);

/** Percentile for data that is already sorted ascending. */
double PercentileSorted(const std::vector<double>& sorted, double p);

/** Arithmetic mean; 0 for an empty sample. */
double Mean(const std::vector<double>& samples);

/** Sample standard deviation; 0 for fewer than two samples. */
double StdDev(const std::vector<double>& samples);

/**
 * Empirical cumulative distribution function over a sample set.
 *
 * Stores the sorted samples once and answers quantile and
 * fraction-below queries; used to reproduce the CDF figures.
 */
class EmpiricalCdf
{
  public:
    explicit EmpiricalCdf(std::vector<double> samples);

    /** Number of samples. */
    std::size_t size() const { return sorted_.size(); }

    /** Quantile (p in [0, 100]). */
    double Quantile(double p) const { return PercentileSorted(sorted_, p); }

    /** Fraction of samples <= x, in [0, 1]. */
    double FractionBelow(double x) const;

    /**
     * Render the CDF as "value cdf" rows at evenly spaced quantiles,
     * one row per step, for experiment output.
     */
    std::string ToTable(int steps = 20) const;

  private:
    std::vector<double> sorted_;
};

/** Streaming mean/variance/min/max accumulator (Welford). */
class RunningStats
{
  public:
    /** Fold one observation into the accumulator. */
    void Add(double x);

    std::size_t count() const { return count_; }
    double mean() const { return mean_; }
    double min() const { return min_; }
    double max() const { return max_; }

    /** Sample variance; 0 with fewer than two observations. */
    double Variance() const;

    /** Sample standard deviation. */
    double StdDevValue() const;

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Fixed-width histogram over [lo, hi) with out-of-range clamping. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    /** Record one observation (clamped into range). */
    void Add(double x);

    std::size_t bin_count() const { return counts_.size(); }
    std::size_t total() const { return total_; }

    /** Count in bin i. */
    std::size_t CountAt(std::size_t i) const { return counts_[i]; }

    /** Midpoint value of bin i. */
    double BinCenter(std::size_t i) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

}  // namespace dynamo

#endif  // DYNAMO_COMMON_STATS_H_
