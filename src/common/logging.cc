#include "common/logging.h"

#include <cstdio>
#include <mutex>

namespace dynamo {
namespace {

struct LoggingState
{
    std::mutex mutex;
    LogLevel threshold = LogLevel::kWarning;
    Logging::Sink sink;
};

LoggingState&
State()
{
    static LoggingState state;
    return state;
}

void
DefaultSink(LogLevel level, const std::string& message)
{
    std::fprintf(stderr, "[dynamo %s] %s\n", LogLevelName(level), message.c_str());
}

}  // namespace

const char*
LogLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarning: return "WARN";
      case LogLevel::kError: return "ERROR";
    }
    return "?";
}

void
Logging::SetThreshold(LogLevel level)
{
    std::lock_guard<std::mutex> lock(State().mutex);
    State().threshold = level;
}

LogLevel
Logging::Threshold()
{
    std::lock_guard<std::mutex> lock(State().mutex);
    return State().threshold;
}

void
Logging::SetSink(Sink sink)
{
    std::lock_guard<std::mutex> lock(State().mutex);
    State().sink = std::move(sink);
}

void
Logging::Log(LogLevel level, const std::string& message)
{
    Sink sink;
    {
        std::lock_guard<std::mutex> lock(State().mutex);
        if (level < State().threshold) return;
        sink = State().sink;
    }
    if (sink) {
        sink(level, message);
    } else {
        DefaultSink(level, message);
    }
}

void LogDebug(const std::string& message) { Logging::Log(LogLevel::kDebug, message); }
void LogInfo(const std::string& message) { Logging::Log(LogLevel::kInfo, message); }
void LogWarning(const std::string& message) { Logging::Log(LogLevel::kWarning, message); }
void LogError(const std::string& message) { Logging::Log(LogLevel::kError, message); }

}  // namespace dynamo
