/**
 * @file
 * Core unit types shared across the Dynamo reproduction.
 *
 * Power is carried as watts in doubles, simulation time as integer
 * milliseconds. Keeping a single convention at every module boundary
 * avoids the classic W-vs-KW and s-vs-ms confusion in control loops.
 */
#ifndef DYNAMO_COMMON_UNITS_H_
#define DYNAMO_COMMON_UNITS_H_

#include <cstdint>

namespace dynamo {

/** Simulation timestamp / duration in milliseconds. */
using SimTime = std::int64_t;

/** Electric power in watts. */
using Watts = double;

/** Energy in joules. */
using Joules = double;

/** Convert seconds (fractional allowed) to a SimTime duration. */
constexpr SimTime Seconds(double s) { return static_cast<SimTime>(s * 1000.0); }

/** Convert minutes to a SimTime duration. */
constexpr SimTime Minutes(double m) { return Seconds(m * 60.0); }

/** Convert hours to a SimTime duration. */
constexpr SimTime Hours(double h) { return Minutes(h * 60.0); }

/** Convert days to a SimTime duration. */
constexpr SimTime Days(double d) { return Hours(d * 24.0); }

/** Convert a SimTime duration to fractional seconds. */
constexpr double ToSeconds(SimTime t) { return static_cast<double>(t) / 1000.0; }

/** Convert kilowatts to watts. */
constexpr Watts Kilowatts(double kw) { return kw * 1000.0; }

/** Convert megawatts to watts. */
constexpr Watts Megawatts(double mw) { return mw * 1.0e6; }

}  // namespace dynamo

#endif  // DYNAMO_COMMON_UNITS_H_
