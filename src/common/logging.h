/**
 * @file
 * Minimal leveled logger.
 *
 * Production Dynamo logs to Facebook's fleet logging; here we keep a
 * tiny global sink so library code can emit warnings/alarms without
 * depending on any particular frontend. Tests and benches can silence
 * or capture it.
 */
#ifndef DYNAMO_COMMON_LOGGING_H_
#define DYNAMO_COMMON_LOGGING_H_

#include <functional>
#include <string>

namespace dynamo {

/** Severity of a log line. */
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/** Human-readable name for a level ("DEBUG", "INFO", ...). */
const char* LogLevelName(LogLevel level);

/**
 * Global log configuration. Messages below `threshold` are dropped;
 * everything else is passed to `sink` (stderr by default).
 */
class Logging
{
  public:
    using Sink = std::function<void(LogLevel, const std::string&)>;

    /** Set minimum level that is emitted. */
    static void SetThreshold(LogLevel level);

    /** Current minimum emitted level. */
    static LogLevel Threshold();

    /** Replace the output sink; pass nullptr to restore the default. */
    static void SetSink(Sink sink);

    /** Emit one message (subject to threshold filtering). */
    static void Log(LogLevel level, const std::string& message);
};

/** Convenience wrappers. */
void LogDebug(const std::string& message);
void LogInfo(const std::string& message);
void LogWarning(const std::string& message);
void LogError(const std::string& message);

}  // namespace dynamo

#endif  // DYNAMO_COMMON_LOGGING_H_
