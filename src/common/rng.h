/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The simulator must be reproducible run-to-run, so all stochastic
 * components draw from explicitly seeded Rng instances rather than from
 * global std engines. The generator is xoshiro256++ seeded via
 * splitmix64, which is fast, high quality, and trivially splittable so
 * each server/service can own an independent stream.
 */
#ifndef DYNAMO_COMMON_RNG_H_
#define DYNAMO_COMMON_RNG_H_

#include <array>
#include <cmath>
#include <cstdint>
#include <string_view>

namespace dynamo {

/** splitmix64 step, used for seeding and stream splitting. */
constexpr std::uint64_t SplitMix64(std::uint64_t& state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * xoshiro256++ generator with convenience distributions.
 *
 * Not thread-safe; each simulated entity owns its own instance.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded through splitmix64). */
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL)
    {
        std::uint64_t sm = seed;
        for (auto& w : state_) w = SplitMix64(sm);
    }

    /** Derive an independent child stream; deterministic in (parent seed, salt). */
    Rng Split(std::uint64_t salt)
    {
        std::uint64_t mix = NextU64() ^ (salt * 0x9e3779b97f4a7c15ULL);
        return Rng(mix);
    }

    /**
     * Named substream: a stream fully determined by (root seed, name),
     * independent of how many draws or Splits happened elsewhere.
     * Every stochastic component is seeded through here (or through a
     * value transitively derived from here), so a run's seed alone
     * pins every random draw — the determinism contract the replay
     * subsystem relies on. The name hash is FNV-1a, which is stable
     * across platforms and standard libraries (unlike std::hash).
     */
    static Rng ForStream(std::uint64_t root_seed, std::string_view name)
    {
        std::uint64_t h = 0xcbf29ce484222325ULL;
        for (const char c : name) {
            h ^= static_cast<std::uint8_t>(c);
            h *= 0x100000001b3ULL;
        }
        std::uint64_t mix = root_seed;
        return Rng(h ^ SplitMix64(mix));
    }

    /** Next raw 64-bit value. */
    std::uint64_t NextU64()
    {
        ++draws_;
        const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = Rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double Uniform() { return (NextU64() >> 11) * 0x1.0p-53; }

    /** Uniform double in [lo, hi). */
    double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t UniformInt(std::uint64_t n) { return NextU64() % n; }

    /** Standard normal via Box-Muller (no cached spare; simple and stateless). */
    double Normal()
    {
        double u1 = Uniform();
        double u2 = Uniform();
        if (u1 < 1e-300) u1 = 1e-300;
        return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    }

    /** Normal with the given mean and standard deviation. */
    double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

    /** Exponential with the given rate (mean 1/rate). */
    double Exponential(double rate)
    {
        double u = Uniform();
        if (u < 1e-300) u = 1e-300;
        return -std::log(u) / rate;
    }

    /** Bernoulli trial with probability p of returning true. */
    bool Bernoulli(double p) { return Uniform() < p; }

    /** Pareto(scale, shape) draw; heavy-tailed spike magnitudes. */
    double Pareto(double scale, double shape)
    {
        double u = Uniform();
        if (u < 1e-300) u = 1e-300;
        return scale / std::pow(u, 1.0 / shape);
    }

    /**
     * Raw generator state, exposed for snapshotting. Together with
     * draws() this fully describes the stream's position, so replay
     * checkpoints can prove two runs consumed randomness identically.
     */
    std::array<std::uint64_t, 4> state() const
    {
        return {state_[0], state_[1], state_[2], state_[3]};
    }

    /** Restore a snapshotted state (draw counter restored separately). */
    void set_state(const std::array<std::uint64_t, 4>& s)
    {
        for (int i = 0; i < 4; ++i) state_[i] = s[i];
    }

    /** Values drawn from this stream since construction. */
    std::uint64_t draws() const { return draws_; }

  private:
    static constexpr std::uint64_t Rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
    std::uint64_t draws_ = 0;
};

}  // namespace dynamo

#endif  // DYNAMO_COMMON_RNG_H_
