/**
 * @file
 * Small-buffer-optimized move-only callable, `void()` signature.
 *
 * The event kernel stores millions of short-lived callbacks; wrapping
 * each in `std::function` costs a heap allocation for anything larger
 * than the implementation's tiny inline buffer (typically 16 bytes —
 * smaller than a single captured `std::shared_ptr` plus `this`).
 * `InlineFunction` raises the inline capacity so the kernel's dominant
 * closures (controller cycle ticks, RPC delivery/timeout
 * continuations) are stored directly inside the event slab, falling
 * back to the heap only for outsized captures.
 */
#ifndef DYNAMO_COMMON_INLINE_FUNCTION_H_
#define DYNAMO_COMMON_INLINE_FUNCTION_H_

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace dynamo {

/**
 * Move-only `void()` callable with `Capacity` bytes of inline storage.
 *
 * Callables that fit in `Capacity` bytes (and are nothrow
 * move-constructible) are stored inline; larger ones are heap-backed.
 * Invoking an empty InlineFunction is undefined (assert in debug via
 * the null vtable check at the call site).
 */
template <std::size_t Capacity>
class InlineFunction
{
  public:
    InlineFunction() = default;

    template <typename F,
              typename = std::enable_if_t<!std::is_same_v<
                  std::decay_t<F>, InlineFunction>>>
    InlineFunction(F&& fn)  // NOLINT(google-explicit-constructor)
    {
        using Decayed = std::decay_t<F>;
        static_assert(std::is_invocable_r_v<void, Decayed&>,
                      "InlineFunction requires a void() callable");
        if constexpr (sizeof(Decayed) <= Capacity &&
                      alignof(Decayed) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Decayed>) {
            ::new (static_cast<void*>(storage_)) Decayed(std::forward<F>(fn));
            vtable_ = &kInlineVtable<Decayed>;
        } else {
            ::new (static_cast<void*>(storage_))
                Decayed*(new Decayed(std::forward<F>(fn)));
            vtable_ = &kHeapVtable<Decayed>;
        }
    }

    InlineFunction(InlineFunction&& other) noexcept { MoveFrom(other); }

    InlineFunction& operator=(InlineFunction&& other) noexcept
    {
        if (this != &other) {
            Reset();
            MoveFrom(other);
        }
        return *this;
    }

    InlineFunction(const InlineFunction&) = delete;
    InlineFunction& operator=(const InlineFunction&) = delete;

    ~InlineFunction() { Reset(); }

    explicit operator bool() const { return vtable_ != nullptr; }

    void operator()() { vtable_->invoke(storage_); }

    /** True if the wrapped callable lives in the inline buffer. */
    bool is_inline() const { return vtable_ != nullptr && vtable_->inline_storage; }

  private:
    struct VTable
    {
        void (*invoke)(void* storage);
        void (*move)(void* dst, void* src);  // move-construct dst from src
        void (*destroy)(void* storage);
        bool inline_storage;
    };

    template <typename F>
    static constexpr VTable kInlineVtable = {
        [](void* storage) { (*std::launder(reinterpret_cast<F*>(storage)))(); },
        [](void* dst, void* src) {
            ::new (dst) F(std::move(*std::launder(reinterpret_cast<F*>(src))));
        },
        [](void* storage) { std::launder(reinterpret_cast<F*>(storage))->~F(); },
        /*inline_storage=*/true,
    };

    template <typename F>
    static constexpr VTable kHeapVtable = {
        [](void* storage) {
            (**std::launder(reinterpret_cast<F**>(storage)))();
        },
        [](void* dst, void* src) {
            ::new (dst) F*(*std::launder(reinterpret_cast<F**>(src)));
            *std::launder(reinterpret_cast<F**>(src)) = nullptr;
        },
        [](void* storage) {
            delete *std::launder(reinterpret_cast<F**>(storage));
        },
        /*inline_storage=*/false,
    };

    void MoveFrom(InlineFunction& other) noexcept
    {
        vtable_ = other.vtable_;
        if (vtable_ != nullptr) {
            vtable_->move(storage_, other.storage_);
            other.Reset();
        }
    }

    void Reset() noexcept
    {
        if (vtable_ != nullptr) {
            vtable_->destroy(storage_);
            vtable_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage_[Capacity];
    const VTable* vtable_ = nullptr;
};

}  // namespace dynamo

#endif  // DYNAMO_COMMON_INLINE_FUNCTION_H_
