#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace dynamo {

double
PercentileSorted(const std::vector<double>& sorted, double p)
{
    if (sorted.empty()) return 0.0;
    if (sorted.size() == 1) return sorted.front();
    p = std::clamp(p, 0.0, 100.0);
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double
Percentile(std::vector<double> samples, double p)
{
    std::sort(samples.begin(), samples.end());
    return PercentileSorted(samples, p);
}

double
Mean(const std::vector<double>& samples)
{
    if (samples.empty()) return 0.0;
    double sum = 0.0;
    for (double x : samples) sum += x;
    return sum / static_cast<double>(samples.size());
}

double
StdDev(const std::vector<double>& samples)
{
    if (samples.size() < 2) return 0.0;
    const double m = Mean(samples);
    double acc = 0.0;
    for (double x : samples) acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(samples.size() - 1));
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples) : sorted_(std::move(samples))
{
    std::sort(sorted_.begin(), sorted_.end());
}

double
EmpiricalCdf::FractionBelow(double x) const
{
    if (sorted_.empty()) return 0.0;
    const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
    return static_cast<double>(it - sorted_.begin()) /
           static_cast<double>(sorted_.size());
}

std::string
EmpiricalCdf::ToTable(int steps) const
{
    std::ostringstream os;
    for (int i = 0; i <= steps; ++i) {
        const double p = 100.0 * i / steps;
        os << Quantile(p) << " " << (p / 100.0) << "\n";
    }
    return os.str();
}

void
RunningStats::Add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::Variance() const
{
    if (count_ < 2) return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::StdDevValue() const
{
    return std::sqrt(Variance());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0)
{
}

void
Histogram::Add(double x)
{
    x = std::clamp(x, lo_, std::nextafter(hi_, lo_));
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;
    ++counts_[idx];
    ++total_;
}

double
Histogram::BinCenter(std::size_t i) const
{
    return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

}  // namespace dynamo
