/**
 * @file
 * Table-driven enum<->name maps with hardened diagnostics.
 *
 * Three subsystems grew their own ad-hoc name maps (server
 * generations, capping-policy kinds, service types), each with its own
 * failure behavior on an unknown token. This header unifies them: a
 * map is a plain constexpr-able array of {value, name} entries, and
 * the parse helpers fail the way the spec-parser hardening style
 * demands — std::invalid_argument naming what was being parsed, the
 * offending token, and the full list of accepted values.
 */
#ifndef DYNAMO_COMMON_NAMES_H_
#define DYNAMO_COMMON_NAMES_H_

#include <cstddef>
#include <stdexcept>
#include <string>

namespace dynamo {

/** One row of an enum-name table. */
template <typename Enum>
struct NameEntry
{
    Enum value;
    const char* name;
};

/**
 * Canonical name of `value`, or "?" if the table misses it (a table
 * bug, not user input — callers keep the switch-default convention).
 */
template <typename Enum, std::size_t N>
const char*
NameOf(const NameEntry<Enum> (&table)[N], Enum value)
{
    for (const NameEntry<Enum>& entry : table) {
        if (entry.value == value) return entry.name;
    }
    return "?";
}

/** Parse without throwing: true and *out set iff `name` is known. */
template <typename Enum, std::size_t N>
bool
TryParseName(const NameEntry<Enum> (&table)[N], const std::string& name,
             Enum* out)
{
    for (const NameEntry<Enum>& entry : table) {
        if (name == entry.name) {
            *out = entry.value;
            return true;
        }
    }
    return false;
}

/** Accepted values as "a|b|c" for diagnostics. */
template <typename Enum, std::size_t N>
std::string
AcceptedNames(const NameEntry<Enum> (&table)[N])
{
    std::string joined;
    for (const NameEntry<Enum>& entry : table) {
        if (!joined.empty()) joined += "|";
        joined += entry.name;
    }
    return joined;
}

/**
 * Parse or throw std::invalid_argument naming the kind of key being
 * parsed ("service type", "capping policy", ...), the rejected token,
 * and every accepted value.
 */
template <typename Enum, std::size_t N>
Enum
ParseName(const NameEntry<Enum> (&table)[N], const std::string& what,
          const std::string& name)
{
    Enum value{};
    if (TryParseName(table, name, &value)) return value;
    throw std::invalid_argument("unknown " + what + " '" + name +
                                "' (expected " + AcceptedNames(table) + ")");
}

}  // namespace dynamo

#endif  // DYNAMO_COMMON_NAMES_H_
