#include "sim/parallel_kernel.h"

namespace dynamo::sim {

WorkerPool::WorkerPool(std::size_t threads)
    : threads_(threads < 1 ? 1 : threads)
{
    if (threads_ == 1) return;  // serial mode: run inline, spawn nothing
    workers_.reserve(threads_);
    for (std::size_t i = 0; i < threads_; ++i) {
        workers_.emplace_back([this] { WorkerLoop(); });
    }
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_start_.notify_all();
    for (std::thread& w : workers_) w.join();
}

void
WorkerPool::DrainShards()
{
    // Claim shards from the shared cursor until none remain. Claiming
    // order is racy on purpose; it only decides *which thread* runs a
    // shard, never what the shard computes.
    const std::vector<ShardRunner*>& shards = *job_shards_;
    const SimTime until = job_until_;
    for (;;) {
        const std::size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
        if (i >= shards.size()) return;
        shards[i]->RunWindow(until);
    }
}

void
WorkerPool::WorkerLoop()
{
    std::uint64_t seen_gen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_start_.wait(lock,
                           [&] { return stop_ || job_gen_ != seen_gen; });
            if (stop_) return;
            seen_gen = job_gen_;
        }
        DrainShards();
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++idle_workers_;
        }
        cv_done_.notify_one();
    }
}

void
WorkerPool::RunWindow(const std::vector<ShardRunner*>& shards, SimTime until)
{
    if (threads_ == 1) {
        for (ShardRunner* shard : shards) shard->RunWindow(until);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        job_shards_ = &shards;
        job_until_ = until;
        cursor_.store(0, std::memory_order_relaxed);
        idle_workers_ = 0;
        ++job_gen_;
    }
    cv_start_.notify_all();
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return idle_workers_ == threads_; });
}

ParallelKernel::ParallelKernel(WorkerPool& pool,
                               std::vector<ShardRunner*> shards,
                               SimTime window_ms, BarrierHook barrier)
    : pool_(pool),
      shards_(std::move(shards)),
      window_ms_(window_ms),
      barrier_(std::move(barrier))
{
}

void
ParallelKernel::RunWindows(std::uint64_t n)
{
    for (std::uint64_t i = 0; i < n; ++i) {
        const SimTime until = now_ + window_ms_;
        pool_.RunWindow(shards_, until);
        now_ = until;
        ++windows_;
        if (barrier_) barrier_(now_);
    }
}

void
ParallelKernel::RunFor(SimTime duration_ms)
{
    const std::uint64_t n = static_cast<std::uint64_t>(
        (duration_ms + window_ms_ - 1) / window_ms_);
    RunWindows(n);
}

}  // namespace dynamo::sim
