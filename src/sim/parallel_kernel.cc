#include "sim/parallel_kernel.h"

#include <chrono>

namespace dynamo::sim {

WorkerPool::WorkerPool(std::size_t threads)
    : threads_(threads < 1 ? 1 : threads)
{
    if (threads_ == 1) return;  // serial mode: run inline, spawn nothing
    workers_.reserve(threads_);
    for (std::size_t i = 0; i < threads_; ++i) {
        workers_.emplace_back([this] { WorkerLoop(); });
    }
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_.store(true, std::memory_order_relaxed);
    }
    cv_start_.notify_all();
    for (std::thread& w : workers_) w.join();
}

void
WorkerPool::DrainItems()
{
    // Claim items from the shared cursor until none remain. Claiming
    // order is racy on purpose; it only decides *which thread* runs an
    // item, never what the item computes.
    const StageFn& fn = *job_fn_;
    const std::size_t n = job_items_;
    for (;;) {
        const std::size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
    }
}

void
WorkerPool::WorkerLoop()
{
    std::uint64_t seen_gen = 0;
    for (;;) {
        // Bounded spin on the stage generation: short stages dispatch
        // without parking. The acquire load pairs with the caller's
        // generation bump, ordering the stage fields it published.
        bool job_ready = false;
        for (int spin = 0; spin < kSpinIterations; ++spin) {
            if (stop_.load(std::memory_order_acquire)) return;
            if (job_gen_.load(std::memory_order_acquire) != seen_gen) {
                job_ready = true;
                break;
            }
        }
        if (!job_ready) {
            std::unique_lock<std::mutex> lock(mu_);
            cv_start_.wait(lock, [&] {
                return stop_.load(std::memory_order_relaxed) ||
                       job_gen_.load(std::memory_order_relaxed) != seen_gen;
            });
            if (stop_.load(std::memory_order_relaxed)) return;
        }
        seen_gen = job_gen_.load(std::memory_order_acquire);
        DrainItems();
        // The release increment publishes this worker's stage writes;
        // the caller's acquire read of the final count (directly or
        // through the release sequence) synchronizes with every one.
        const std::size_t done =
            1 + done_workers_.fetch_add(1, std::memory_order_acq_rel);
        if (done == threads_) {
            // Empty critical section: pins the notify after the
            // caller either saw the count or entered cv_done_.wait.
            { std::lock_guard<std::mutex> lock(mu_); }
            cv_done_.notify_one();
        }
    }
}

void
WorkerPool::RunStage(const StageFn& fn, std::size_t n_items)
{
    if (threads_ == 1) {
        for (std::size_t i = 0; i < n_items; ++i) fn(i);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        job_fn_ = &fn;
        job_items_ = n_items;
        cursor_.store(0, std::memory_order_relaxed);
        done_workers_.store(0, std::memory_order_relaxed);
        // Release: a worker that spots the new generation on its spin
        // path (no mutex) still sees the fields above.
        job_gen_.fetch_add(1, std::memory_order_release);
    }
    cv_start_.notify_all();

    // Bounded spin for completion before parking, mirroring the
    // workers' dispatch spin: sub-millisecond stages complete without
    // a single syscall on either side.
    for (int spin = 0; spin < kSpinIterations; ++spin) {
        if (done_workers_.load(std::memory_order_acquire) == threads_) {
            return;
        }
    }
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] {
        return done_workers_.load(std::memory_order_acquire) == threads_;
    });
}

void
WorkerPool::RunWindow(const std::vector<ShardRunner*>& shards, SimTime until)
{
    if (threads_ == 1) {
        for (ShardRunner* shard : shards) shard->RunWindow(until);
        return;
    }
    const StageFn advance = [&shards, until](std::size_t i) {
        shards[i]->RunWindow(until);
    };
    RunStage(advance, shards.size());
}

ParallelKernel::ParallelKernel(WorkerPool& pool,
                               std::vector<ShardRunner*> shards,
                               SimTime window_ms, BarrierHook barrier)
    : pool_(pool),
      shards_(std::move(shards)),
      window_ms_(window_ms),
      barrier_(std::move(barrier))
{
}

void
ParallelKernel::RunWindows(std::uint64_t n)
{
    using Clock = std::chrono::steady_clock;
    for (std::uint64_t i = 0; i < n; ++i) {
        const SimTime until = now_ + window_ms_;
        const Clock::time_point t0 = Clock::now();
        pool_.RunWindow(shards_, until);
        const Clock::time_point t1 = Clock::now();
        window_wall_s_ += std::chrono::duration<double>(t1 - t0).count();
        now_ = until;
        ++windows_;
        if (barrier_) {
            barrier_(now_);
            barrier_wall_s_ +=
                std::chrono::duration<double>(Clock::now() - t1).count();
        }
    }
}

void
ParallelKernel::RunFor(SimTime duration_ms)
{
    const std::uint64_t n = static_cast<std::uint64_t>(
        (duration_ms + window_ms_ - 1) / window_ms_);
    RunWindows(n);
}

}  // namespace dynamo::sim
