/**
 * @file
 * Discrete-event simulation kernel.
 *
 * All Dynamo timing behaviour under test — 3 s leaf pull cycles, 9 s
 * upper-level cycles, ~2 s RAPL settling, RPC latency, breaker thermal
 * integration — runs against this kernel. Events are closures ordered
 * by (time, insertion sequence), so same-timestamp events run in
 * schedule order and runs are fully deterministic.
 */
#ifndef DYNAMO_SIM_SIMULATION_H_
#define DYNAMO_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/units.h"

namespace dynamo::sim {

class Simulation;

/**
 * Handle to a scheduled event or periodic task; allows cancellation.
 * Cancelling an already-fired one-shot event is a harmless no-op.
 */
class TaskHandle
{
  public:
    TaskHandle() = default;

    /** True if the handle refers to a live (not cancelled) task. */
    bool active() const { return state_ && !state_->cancelled; }

    /** Cancel the task; pending firings are dropped. */
    void Cancel()
    {
        if (state_) state_->cancelled = true;
    }

  private:
    friend class Simulation;

    struct State
    {
        bool cancelled = false;
    };

    explicit TaskHandle(std::shared_ptr<State> state) : state_(std::move(state)) {}

    std::shared_ptr<State> state_;
};

/**
 * The event loop: a clock plus a priority queue of timed closures.
 *
 * Not thread-safe; the whole simulated data center runs on one thread,
 * mirroring the paper's consolidated controller deployment (all
 * controller instances for a suite share one binary).
 */
class Simulation
{
  public:
    using Callback = std::function<void()>;

    Simulation() = default;
    Simulation(const Simulation&) = delete;
    Simulation& operator=(const Simulation&) = delete;

    /** Current simulated time in milliseconds. */
    SimTime Now() const { return now_; }

    /** Schedule `fn` to run at absolute time `when` (>= Now()). */
    TaskHandle ScheduleAt(SimTime when, Callback fn);

    /** Schedule `fn` to run `delay` milliseconds from now. */
    TaskHandle ScheduleAfter(SimTime delay, Callback fn);

    /**
     * Schedule `fn` every `period` milliseconds, first firing after
     * `initial_delay` (defaults to one full period). The task re-arms
     * itself until cancelled.
     */
    TaskHandle SchedulePeriodic(SimTime period, Callback fn,
                                SimTime initial_delay = -1);

    /** Run until the event queue is empty or `deadline` is reached. */
    void RunUntil(SimTime deadline);

    /** Run `duration` milliseconds past the current time. */
    void RunFor(SimTime duration) { RunUntil(now_ + duration); }

    /** Process every queued event regardless of time (use with care). */
    void RunAll();

    /** Number of events executed since construction. */
    std::uint64_t events_executed() const { return events_executed_; }

    /** Number of events currently pending. */
    std::size_t pending_events() const { return queue_.size(); }

  private:
    struct Event
    {
        SimTime when;
        std::uint64_t seq;
        Callback fn;
        std::shared_ptr<TaskHandle::State> state;
    };

    struct EventLater
    {
        bool operator()(const Event& a, const Event& b) const
        {
            if (a.when != b.when) return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Pop and execute one event; returns false if queue empty. */
    bool Step();

    SimTime now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t events_executed_ = 0;
    std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
};

}  // namespace dynamo::sim

#endif  // DYNAMO_SIM_SIMULATION_H_
