/**
 * @file
 * Discrete-event simulation kernel.
 *
 * All Dynamo timing behaviour under test — 3 s leaf pull cycles, 9 s
 * upper-level cycles, ~2 s RAPL settling, RPC latency, breaker thermal
 * integration — runs against this kernel. Events are closures ordered
 * by (time, insertion sequence), so same-timestamp events run in
 * schedule order and runs are fully deterministic.
 *
 * Implementation: a hierarchical timing wheel (1 ms near wheel plus
 * four overflow levels and a far-future heap) over a slab/free-list
 * event pool. Callbacks are stored in small-buffer-optimized
 * `InlineFunction` slots directly inside the slab, periodic tasks
 * re-arm by relinking their existing slab node (no allocation per
 * firing), and cancellation is lazy: cancelled events are dropped when
 * popped, with a compaction sweep when the cancelled backlog outgrows
 * the live queue. See DESIGN.md §7 for the layout rationale.
 */
#ifndef DYNAMO_SIM_SIMULATION_H_
#define DYNAMO_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/inline_function.h"
#include "common/units.h"

namespace dynamo {
class Archive;
}  // namespace dynamo

namespace dynamo::sim {

class Simulation;

namespace detail {

/**
 * Cancellation/liveness state shared between the kernel and task
 * handles. Kept apart from the event slab (which owns the callbacks)
 * so handles remain safe to cancel after the Simulation is destroyed.
 */
struct TaskTable
{
    enum State : std::uint8_t { kFree = 0, kQueued = 1, kExecuting = 2 };

    struct Slot
    {
        std::uint32_t gen = 0;
        std::uint8_t state = kFree;
        bool cancelled = false;
    };

    std::vector<Slot> slots;

    /** Events queued and not cancelled (what pending_events reports). */
    std::size_t live = 0;

    /** Cancelled-but-unpopped events awaiting lazy purge. */
    std::size_t lazy_cancelled = 0;
};

}  // namespace detail

/**
 * Kernel internals counters, exposed for observability. The sim layer
 * sits below telemetry in the library graph, so these are plain
 * integers here; the fleet/bench layer copies them into gauges.
 */
struct KernelStats
{
    std::uint64_t cascades = 0;    ///< Upper-level slots cascaded down.
    std::uint64_t far_drains = 0;  ///< Events drained from the far heap.
    std::uint64_t purges = 0;      ///< Eager cancelled-backlog purges.
    std::uint64_t slot_sorts = 0;  ///< L0 chains re-sorted for seq order.
};

/**
 * Handle to a scheduled event or periodic task; allows cancellation.
 * Cancelling an already-fired one-shot event is a harmless no-op.
 */
class TaskHandle
{
  public:
    TaskHandle() = default;

    /** True if the handle refers to a live (not cancelled, not yet
     *  completed) task. */
    bool active() const
    {
        if (!table_) return false;
        const detail::TaskTable::Slot& slot = table_->slots[index_];
        return slot.gen == gen_ && !slot.cancelled &&
               slot.state != detail::TaskTable::kFree;
    }

    /** Cancel the task; pending firings are dropped. */
    void Cancel()
    {
        if (!table_) return;
        detail::TaskTable::Slot& slot = table_->slots[index_];
        if (slot.gen != gen_ || slot.cancelled ||
            slot.state == detail::TaskTable::kFree) {
            return;
        }
        slot.cancelled = true;
        if (slot.state == detail::TaskTable::kQueued) {
            --table_->live;
            ++table_->lazy_cancelled;
        }
    }

  private:
    friend class Simulation;

    TaskHandle(std::shared_ptr<detail::TaskTable> table, std::uint32_t index,
               std::uint32_t gen)
        : table_(std::move(table)), index_(index), gen_(gen)
    {
    }

    std::shared_ptr<detail::TaskTable> table_;
    std::uint32_t index_ = 0;
    std::uint32_t gen_ = 0;
};

/**
 * The event loop: a clock plus a hierarchical timing wheel of timed
 * closures.
 *
 * Not thread-safe: one Simulation is always driven by one thread at a
 * time. Fleet-scale runs parallelize *above* this class — the sharded
 * engine (sim/parallel_kernel.h, fleet/sharding.h) gives each shard a
 * private Simulation and hands whole shards to worker threads, with
 * barriers ordering the hand-offs — so the kernel itself stays
 * lock-free and deterministic.
 */
class Simulation
{
  public:
    /**
     * Event callback. 80 bytes of inline storage covers the kernel's
     * dominant closures (controller ticks, RPC continuations) without
     * a heap allocation per event.
     */
    using Callback = InlineFunction<80>;

    Simulation();
    ~Simulation();
    Simulation(const Simulation&) = delete;
    Simulation& operator=(const Simulation&) = delete;

    /** Current simulated time in milliseconds. */
    SimTime Now() const { return now_; }

    /** Schedule `fn` to run at absolute time `when` (>= Now()). */
    TaskHandle ScheduleAt(SimTime when, Callback fn);

    /** Schedule `fn` to run `delay` milliseconds from now. */
    TaskHandle ScheduleAfter(SimTime delay, Callback fn);

    /**
     * Schedule `fn` every `period` milliseconds, first firing after
     * `initial_delay` (defaults to one full period). The task re-arms
     * itself until cancelled.
     */
    TaskHandle SchedulePeriodic(SimTime period, Callback fn,
                                SimTime initial_delay = -1);

    /** Run until the event queue is empty or `deadline` is reached. */
    void RunUntil(SimTime deadline);

    /** Run `duration` milliseconds past the current time. */
    void RunFor(SimTime duration) { RunUntil(now_ + duration); }

    /** Process every queued event regardless of time (use with care). */
    void RunAll();

    /** Number of events executed since construction. */
    std::uint64_t events_executed() const { return events_executed_; }

    /**
     * Number of live (not cancelled) events currently pending.
     * Cancelled-but-unpopped events are excluded, so re-arming timers
     * under churn does not inflate the reported queue depth.
     */
    std::size_t pending_events() const { return table_->live; }

    /** Cancelled events still occupying queue slots (purged lazily). */
    std::size_t lazily_cancelled() const { return table_->lazy_cancelled; }

    /** Slab size in nodes (diagnostics; bounded under cancel churn). */
    std::size_t event_pool_size() const { return pool_.size(); }

    /** Timing-wheel internals counters (cascades, far drains, …). */
    const KernelStats& kernel_stats() const { return kernel_stats_; }

    /**
     * Deterministic event-capture hook: called immediately before each
     * event callback runs, with the event's firing time and kernel
     * sequence number. The (time, seq) stream is a complete order
     * witness for the run — the replay recorder folds it into
     * per-cycle digests to prove two executions fired identical event
     * schedules. The observer must not schedule or cancel events.
     * Pass a default-constructed function to detach.
     */
    using EventObserver = std::function<void(SimTime, std::uint64_t)>;
    void set_event_observer(EventObserver observer)
    {
        event_observer_ = std::move(observer);
    }

    /**
     * Serialize kernel progress (clock, event/seq counters, queue
     * depth, wheel stats) into `ar`. Pending closures are not
     * serializable; replay restores them by re-executing from the run
     * start, and uses these counters to prove the rebuilt kernel is in
     * the same position.
     */
    void Snapshot(Archive& ar) const;

    /**
     * Eagerly drop every cancelled-but-unpopped event and return their
     * slab nodes to the free list. Called automatically when the
     * cancelled backlog outgrows the live queue.
     */
    void PurgeCancelled();

  private:
    static constexpr std::uint32_t kNil = 0xffffffffu;

    // Near wheel: 1024 slots of 1 ms. Upper levels: 64 slots each,
    // every level's slot spanning the whole level below (1.024 s,
    // ~65.5 s, ~70 min, ~3.1 days). Beyond ~199 days: far heap.
    static constexpr int kL0Bits = 10;
    static constexpr int kL0Slots = 1 << kL0Bits;
    static constexpr int kLevelBits = 6;
    static constexpr int kLevelSlots = 1 << kLevelBits;
    static constexpr int kLevels = 4;

    /** Shift of upper level `k` in [1, kLevels]. */
    static constexpr int LevelShift(int k)
    {
        return kL0Bits + (k - 1) * kLevelBits;
    }

    struct EventNode
    {
        SimTime when = 0;
        std::uint64_t seq = 0;

        /** > 0 for periodic tasks (re-armed after each firing). */
        SimTime period = 0;

        /** Intrusive link: wheel-slot list or free list. */
        std::uint32_t next = kNil;

        Callback fn;
    };

    /** One wheel slot: FIFO list of slab node indices. */
    struct Bucket
    {
        std::uint32_t head = kNil;
        std::uint32_t tail = kNil;
    };

    struct FarEntry
    {
        SimTime when;
        std::uint64_t seq;
        std::uint32_t idx;
    };

    /** Min-heap comparator for the far heap: later entries sink. */
    static bool FarLater(const FarEntry& a, const FarEntry& b);

    std::uint32_t AllocNode();
    void FreeNode(std::uint32_t idx);

    TaskHandle Schedule(SimTime when, Callback fn, SimTime period);

    /** Place a node into the wheel (or far heap) relative to wheel_time_. */
    void InsertNode(std::uint32_t idx);

    void Append(Bucket& bucket, std::uint32_t idx);

    /**
     * Advance the wheel position to `target`, cascading upper-level
     * slots whose window the position enters and draining newly
     * eligible far-heap events. No-op if `target` is not ahead.
     */
    void SetWheelTime(SimTime target);

    void CascadeBucket(Bucket& bucket);
    void DrainFarHeap();

    /**
     * Find the earliest pending event time <= `limit`, advancing the
     * wheel position to it. Returns false if there is none.
     */
    bool FindNext(SimTime limit, SimTime* out_time);

    /** Execute every event in the level-0 slot at time `t`. */
    void ExecuteSlot(SimTime t);

    /** First occupied L0 slot index >= `from`, or -1. */
    int ScanL0(int from) const;

    void MaybePurge();
    void PurgeBucket(Bucket& bucket);

    bool IsCancelled(std::uint32_t idx) const
    {
        return table_->slots[idx].cancelled;
    }

    SimTime now_ = 0;

    /** Wheel position; invariant: no queued event is earlier. */
    SimTime wheel_time_ = 0;

    std::uint64_t next_seq_ = 0;
    std::uint64_t events_executed_ = 0;
    KernelStats kernel_stats_;
    EventObserver event_observer_;

    std::vector<EventNode> pool_;
    std::uint32_t free_head_ = kNil;
    std::shared_ptr<detail::TaskTable> table_;

    Bucket l0_[kL0Slots];
    std::uint64_t l0_bitmap_[kL0Slots / 64] = {};
    Bucket up_[kLevels][kLevelSlots];
    std::uint64_t up_bitmap_[kLevels] = {};

    /** Min-heap on (when, seq) of events beyond the top wheel level. */
    std::vector<FarEntry> far_;
};

}  // namespace dynamo::sim

#endif  // DYNAMO_SIM_SIMULATION_H_
