/**
 * @file
 * Parallel execution of independent simulation shards.
 *
 * The kernel in simulation.h is single-threaded by design; fleet-scale
 * runs parallelize *above* it by partitioning the world into shards
 * that each own a private Simulation (plus transport, servers, and
 * controllers) and share nothing. This file provides the generic
 * machinery — it knows nothing about Dynamo:
 *
 *   - `ShardRunner`: the unit of parallel work. One call advances a
 *     shard's private kernel to a common deadline.
 *   - `WorkerPool`: a fixed-size thread pool that runs every shard to
 *     the deadline and *joins* before returning. The join is the
 *     synchronization barrier: everything a shard wrote during the
 *     window happens-before anything the caller does after RunWindow
 *     returns, and everything the caller does between windows
 *     happens-before the next window's shard execution.
 *   - `ParallelKernel`: the barrier loop. It alternates pool windows
 *     with a single-threaded barrier hook in which the owner performs
 *     all cross-shard work (mailbox drains, snapshot refreshes, hash
 *     merges) in a fixed order.
 *
 * Determinism contract: shards must not touch shared mutable state
 * during a window (each runs purely against its own kernel), and the
 * barrier hook must iterate shards in a fixed order (by shard index,
 * never completion order). Under that contract the thread count is
 * pure scheduling — results are byte-identical for any pool size,
 * which the replay journal gate verifies (DESIGN.md §10).
 */
#ifndef DYNAMO_SIM_PARALLEL_KERNEL_H_
#define DYNAMO_SIM_PARALLEL_KERNEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/units.h"

namespace dynamo::sim {

/**
 * One unit of parallel work: a self-contained sub-world that can be
 * advanced to a deadline on any thread, provided no two windows for
 * the same runner overlap (the pool guarantees this).
 */
class ShardRunner
{
  public:
    virtual ~ShardRunner() = default;

    /**
     * Advance this shard's private kernel to `until` (absolute sim
     * time). Must leave the shard's clock exactly at `until` so every
     * shard agrees on "now" at the barrier. Must not touch any state
     * owned by another shard.
     */
    virtual void RunWindow(SimTime until) = 0;
};

/**
 * Fixed-size worker pool with a barrier-complete RunWindow.
 *
 * With `threads == 1` no workers are spawned and shards run inline on
 * the calling thread — the true serial baseline, with zero pool
 * overhead. With more, exactly `threads` workers execute shards while
 * the caller blocks; work is claimed from a shared atomic cursor so
 * an expensive shard never serializes behind a cheap one.
 */
class WorkerPool
{
  public:
    /** @param threads  Pool size; clamped to >= 1. */
    explicit WorkerPool(std::size_t threads);
    ~WorkerPool();

    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

    std::size_t thread_count() const { return threads_; }

    /**
     * Run every shard to `until` and block until all have finished.
     * The internal mutex/condvar handshake orders each worker's writes
     * before this call's return (and the caller's writes before the
     * next call's shard execution) — the happens-before edge the
     * shared-nothing shard contract relies on.
     */
    void RunWindow(const std::vector<ShardRunner*>& shards, SimTime until);

  private:
    void WorkerLoop();

    /** Claim-and-run shards from the shared cursor until none remain. */
    void DrainShards();

    const std::size_t threads_;
    std::vector<std::thread> workers_;

    std::mutex mu_;
    std::condition_variable cv_start_;
    std::condition_variable cv_done_;

    /** Incremented per window; workers wake when it moves. */
    std::uint64_t job_gen_ = 0;

    /** Workers that have finished draining the current window. */
    std::size_t idle_workers_ = 0;

    bool stop_ = false;

    /** Current window (valid while job_gen_ names it). */
    const std::vector<ShardRunner*>* job_shards_ = nullptr;
    SimTime job_until_ = 0;

    /** Next unclaimed shard index in the current window. */
    std::atomic<std::size_t> cursor_{0};
};

/**
 * The barrier loop: windows of parallel shard execution alternating
 * with single-threaded cross-shard barriers.
 */
class ParallelKernel
{
  public:
    /**
     * Called on the driving thread after every window, with the
     * window's closing time. All cross-shard work belongs here, in
     * fixed shard-index order.
     */
    using BarrierHook = std::function<void(SimTime barrier_time)>;

    /**
     * @param pool       Worker pool (not owned; reusable across kernels).
     * @param shards     Shard set, in canonical index order (not owned).
     * @param window_ms  Barrier period — the upper-controller cycle in
     *                   the Dynamo fleet, so cross-shard effects land
     *                   exactly one controller decision later.
     */
    ParallelKernel(WorkerPool& pool, std::vector<ShardRunner*> shards,
                   SimTime window_ms, BarrierHook barrier);

    /** Common shard time: every shard's clock after the last barrier. */
    SimTime Now() const { return now_; }

    std::uint64_t windows_completed() const { return windows_; }

    /** Run exactly `n` window+barrier rounds. */
    void RunWindows(std::uint64_t n);

    /**
     * Run whole windows covering at least `duration_ms` (rounded up:
     * the barrier protocol has no mid-window state).
     */
    void RunFor(SimTime duration_ms);

  private:
    WorkerPool& pool_;
    std::vector<ShardRunner*> shards_;
    const SimTime window_ms_;
    BarrierHook barrier_;
    SimTime now_ = 0;
    std::uint64_t windows_ = 0;
};

}  // namespace dynamo::sim

#endif  // DYNAMO_SIM_PARALLEL_KERNEL_H_
