/**
 * @file
 * Parallel execution of independent simulation shards.
 *
 * The kernel in simulation.h is single-threaded by design; fleet-scale
 * runs parallelize *above* it by partitioning the world into shards
 * that each own a private Simulation (plus transport, servers, and
 * controllers) and share nothing. This file provides the generic
 * machinery — it knows nothing about Dynamo:
 *
 *   - `ShardRunner`: the unit of parallel work. One call advances a
 *     shard's private kernel to a common deadline.
 *   - `WorkerPool`: a fixed-size thread pool with a generic
 *     barrier-complete parallel-for (`RunStage`). `RunWindow` is the
 *     shard-advance instance of it. Each stage *joins* before
 *     returning: everything a worker wrote during the stage
 *     happens-before anything the caller does after the call returns,
 *     and everything the caller does between stages happens-before the
 *     next stage's work.
 *   - `ParallelKernel`: the barrier loop. It alternates pool windows
 *     with a barrier hook in which the owner performs all cross-shard
 *     work in a fixed order. Barrier *stages* that are themselves
 *     data-parallel (per-shard checkpoint serialization, staged
 *     snapshot publication) may re-enter the pool via RunStage; the
 *     ordering-sensitive merge steps stay on the driving thread.
 *
 * Determinism contract: shards must not touch shared mutable state
 * during a window (each runs purely against its own kernel), stage
 * items must not touch each other's state, and every merge must
 * iterate in a fixed order (by shard/item index, never completion
 * order). Under that contract the thread count is pure scheduling —
 * results are byte-identical for any pool size, which the replay
 * journal gate verifies (DESIGN.md §10).
 */
#ifndef DYNAMO_SIM_PARALLEL_KERNEL_H_
#define DYNAMO_SIM_PARALLEL_KERNEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/units.h"

namespace dynamo::sim {

/**
 * One unit of parallel work: a self-contained sub-world that can be
 * advanced to a deadline on any thread, provided no two windows for
 * the same runner overlap (the pool guarantees this).
 */
class ShardRunner
{
  public:
    virtual ~ShardRunner() = default;

    /**
     * Advance this shard's private kernel to `until` (absolute sim
     * time). Must leave the shard's clock exactly at `until` so every
     * shard agrees on "now" at the barrier. Must not touch any state
     * owned by another shard.
     */
    virtual void RunWindow(SimTime until) = 0;
};

/**
 * Fixed-size worker pool with barrier-complete parallel stages.
 *
 * With `threads == 1` no workers are spawned and stage items run
 * inline on the calling thread — the true serial baseline, with zero
 * pool overhead. With more, exactly `threads` workers execute items
 * while the caller blocks; work is claimed from a shared atomic cursor
 * so an expensive item never serializes behind a cheap one.
 *
 * Wakeup latency matters at fleet barriers: a 9 s window at small
 * sizes runs in well under a millisecond of wall time, so a pure
 * condvar handshake would spend a meaningful fraction of every window
 * parking and unparking threads. Workers therefore *spin briefly* on
 * the job generation before sleeping, and the caller spins briefly on
 * the completion count before sleeping — bounded, so an idle pool
 * still parks (no busy-waiting between benchmarks), but short stages
 * dispatch without a syscall in the common case.
 */
class WorkerPool
{
  public:
    /** Work item body: called once per index in [0, n_items). */
    using StageFn = std::function<void(std::size_t)>;

    /** @param threads  Pool size; clamped to >= 1. */
    explicit WorkerPool(std::size_t threads);
    ~WorkerPool();

    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

    std::size_t thread_count() const { return threads_; }

    /**
     * Generic barrier-complete parallel-for: run `fn(i)` for every
     * i in [0, n_items) across the pool and block until all items have
     * finished. Items must be mutually independent; completion order
     * is unspecified (claim order is racy on purpose — it only decides
     * *which thread* runs an item, never what the item computes).
     * Stages never overlap: the pool runs one stage at a time, so a
     * stage may reuse buffers the previous stage wrote. Reentrant
     * calls (fn itself calling RunStage) are not supported.
     */
    void RunStage(const StageFn& fn, std::size_t n_items);

    /**
     * Run every shard to `until` and block until all have finished —
     * the shard-advance stage. The join orders each worker's writes
     * before this call's return (and the caller's writes before the
     * next stage's execution) — the happens-before edge the
     * shared-nothing shard contract relies on.
     */
    void RunWindow(const std::vector<ShardRunner*>& shards, SimTime until);

  private:
    void WorkerLoop();

    /** Claim-and-run items from the shared cursor until none remain. */
    void DrainItems();

    /** Spin iterations before a waiter falls back to the condvar. */
    static constexpr int kSpinIterations = 2048;

    const std::size_t threads_;
    std::vector<std::thread> workers_;

    std::mutex mu_;
    std::condition_variable cv_start_;
    std::condition_variable cv_done_;

    /**
     * Incremented per stage; workers wake when it moves. Atomic so the
     * bounded-spin fast path can watch it without taking `mu_`; the
     * slow path still waits on `cv_start_` (writers bump it while
     * holding `mu_`, so the predicate cannot miss a wakeup).
     */
    std::atomic<std::uint64_t> job_gen_{0};

    /** Workers that have finished draining the current stage. */
    std::atomic<std::size_t> done_workers_{0};

    std::atomic<bool> stop_{false};

    /** Current stage (valid while job_gen_ names it). */
    const StageFn* job_fn_ = nullptr;
    std::size_t job_items_ = 0;

    /** Next unclaimed item index in the current stage. */
    std::atomic<std::size_t> cursor_{0};
};

/**
 * The barrier loop: windows of parallel shard execution alternating
 * with cross-shard barriers on the driving thread.
 */
class ParallelKernel
{
  public:
    /**
     * Called on the driving thread after every window, with the
     * window's closing time. All cross-shard work belongs here; merges
     * in fixed shard-index order, data-parallel stages via the pool.
     */
    using BarrierHook = std::function<void(SimTime barrier_time)>;

    /**
     * @param pool       Worker pool (not owned; reusable across kernels).
     * @param shards     Shard set, in canonical index order (not owned).
     * @param window_ms  Barrier period — the upper-controller cycle in
     *                   the Dynamo fleet, so cross-shard effects land
     *                   exactly one controller decision later.
     */
    ParallelKernel(WorkerPool& pool, std::vector<ShardRunner*> shards,
                   SimTime window_ms, BarrierHook barrier);

    /** Common shard time: every shard's clock after the last barrier. */
    SimTime Now() const { return now_; }

    std::uint64_t windows_completed() const { return windows_; }

    /** Run exactly `n` window+barrier rounds. */
    void RunWindows(std::uint64_t n);

    /**
     * Run whole windows covering at least `duration_ms` (rounded up:
     * the barrier protocol has no mid-window state).
     */
    void RunFor(SimTime duration_ms);

    /**
     * Accumulated wall time inside pool window execution / inside the
     * barrier hook, over every window this kernel has run. The split
     * is the serial-fraction measurement the barrier profiler builds
     * on: window time parallelizes with the pool, hook time is the
     * driving thread (minus any RunStage the hook issues itself).
     */
    double window_wall_s() const { return window_wall_s_; }
    double barrier_wall_s() const { return barrier_wall_s_; }

  private:
    WorkerPool& pool_;
    std::vector<ShardRunner*> shards_;
    const SimTime window_ms_;
    BarrierHook barrier_;
    SimTime now_ = 0;
    std::uint64_t windows_ = 0;
    double window_wall_s_ = 0.0;
    double barrier_wall_s_ = 0.0;
};

}  // namespace dynamo::sim

#endif  // DYNAMO_SIM_PARALLEL_KERNEL_H_
