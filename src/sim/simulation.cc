#include "sim/simulation.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>

#include "common/archive.h"

namespace dynamo::sim {

namespace {

/** A purge sweep is worth it only past this cancelled backlog. */
constexpr std::size_t kPurgeThreshold = 1024;

}  // namespace

bool Simulation::FarLater(const FarEntry& a, const FarEntry& b)
{
    return a.when > b.when || (a.when == b.when && a.seq > b.seq);
}

Simulation::Simulation() : table_(std::make_shared<detail::TaskTable>()) {}

void Simulation::Snapshot(Archive& ar) const
{
    ar.I64(now_);
    ar.I64(wheel_time_);
    ar.U64(next_seq_);
    ar.U64(events_executed_);
    ar.U64(table_->live);
    ar.U64(table_->lazy_cancelled);
    ar.U64(kernel_stats_.cascades);
    ar.U64(kernel_stats_.far_drains);
    ar.U64(kernel_stats_.purges);
    ar.U64(kernel_stats_.slot_sorts);
}

Simulation::~Simulation() = default;

std::uint32_t Simulation::AllocNode()
{
    if (free_head_ != kNil) {
        const std::uint32_t idx = free_head_;
        free_head_ = pool_[idx].next;
        return idx;
    }
    const std::uint32_t idx = static_cast<std::uint32_t>(pool_.size());
    pool_.emplace_back();
    table_->slots.emplace_back();
    return idx;
}

void Simulation::FreeNode(std::uint32_t idx)
{
    EventNode& node = pool_[idx];
    node.fn = Callback{};
    node.next = free_head_;
    free_head_ = idx;
    detail::TaskTable::Slot& slot = table_->slots[idx];
    ++slot.gen;  // invalidates outstanding handles (ABA guard)
    slot.state = detail::TaskTable::kFree;
    slot.cancelled = false;
}

TaskHandle Simulation::ScheduleAt(SimTime when, Callback fn)
{
    assert(when >= now_ && "cannot schedule in the past");
    return Schedule(when, std::move(fn), /*period=*/0);
}

TaskHandle Simulation::ScheduleAfter(SimTime delay, Callback fn)
{
    return Schedule(now_ + delay, std::move(fn), /*period=*/0);
}

TaskHandle Simulation::SchedulePeriodic(SimTime period, Callback fn,
                                        SimTime initial_delay)
{
    assert(period > 0 && "periodic task needs positive period");
    if (initial_delay < 0) initial_delay = period;
    return Schedule(now_ + initial_delay, std::move(fn), period);
}

TaskHandle Simulation::Schedule(SimTime when, Callback fn, SimTime period)
{
    // The wheel position can lag `now_` after an idle RunUntil; catch
    // up before inserting so level selection sees a current origin.
    if (now_ > wheel_time_) SetWheelTime(now_);
    MaybePurge();

    const std::uint32_t idx = AllocNode();
    EventNode& node = pool_[idx];
    node.when = when;
    node.seq = next_seq_++;
    node.period = period;
    node.fn = std::move(fn);

    detail::TaskTable::Slot& slot = table_->slots[idx];
    slot.state = detail::TaskTable::kQueued;
    slot.cancelled = false;
    ++table_->live;

    InsertNode(idx);
    return TaskHandle(table_, idx, slot.gen);
}

void Simulation::Append(Bucket& bucket, std::uint32_t idx)
{
    pool_[idx].next = kNil;
    if (bucket.head == kNil) {
        bucket.head = bucket.tail = idx;
    } else {
        pool_[bucket.tail].next = idx;
        bucket.tail = idx;
    }
}

void Simulation::InsertNode(std::uint32_t idx)
{
    const SimTime when = pool_[idx].when;
    if ((when >> kL0Bits) == (wheel_time_ >> kL0Bits)) {
        const int slot = static_cast<int>(when & (kL0Slots - 1));
        Append(l0_[slot], idx);
        l0_bitmap_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
        return;
    }
    for (int k = 1; k <= kLevels; ++k) {
        const int shift = LevelShift(k);
        if ((when >> (shift + kLevelBits)) ==
            (wheel_time_ >> (shift + kLevelBits))) {
            const int slot =
                static_cast<int>((when >> shift) & (kLevelSlots - 1));
            Append(up_[k - 1][slot], idx);
            up_bitmap_[k - 1] |= std::uint64_t{1} << slot;
            return;
        }
    }
    far_.push_back({when, pool_[idx].seq, idx});
    std::push_heap(far_.begin(), far_.end(), FarLater);
}

void Simulation::CascadeBucket(Bucket& bucket)
{
    ++kernel_stats_.cascades;
    std::uint32_t idx = bucket.head;
    bucket.head = bucket.tail = kNil;
    while (idx != kNil) {
        const std::uint32_t next = pool_[idx].next;
        InsertNode(idx);
        idx = next;
    }
}

void Simulation::DrainFarHeap()
{
    const int top = LevelShift(kLevels) + kLevelBits;
    while (!far_.empty() &&
           (far_.front().when >> top) == (wheel_time_ >> top)) {
        const std::uint32_t idx = far_.front().idx;
        std::pop_heap(far_.begin(), far_.end(), FarLater);
        far_.pop_back();
        InsertNode(idx);
        ++kernel_stats_.far_drains;
    }
}

void Simulation::SetWheelTime(SimTime target)
{
    if (target <= wheel_time_) return;
    const SimTime old = wheel_time_;
    wheel_time_ = target;

    const int top = LevelShift(kLevels) + kLevelBits;
    if ((target >> top) != (old >> top)) DrainFarHeap();

    // Entering a new window at level k means the slot now containing
    // the wheel position must cascade down. Top-down, so every event
    // reaches its final level in one pass. Slots skipped by a
    // multi-window jump are provably empty: FindNext advances
    // window-start by window-start in event order, and idle catch-up
    // jumps only to times at or before every queued event.
    for (int k = kLevels; k >= 1; --k) {
        const int shift = LevelShift(k);
        if ((target >> shift) != (old >> shift)) {
            const int slot =
                static_cast<int>((target >> shift) & (kLevelSlots - 1));
            up_bitmap_[k - 1] &= ~(std::uint64_t{1} << slot);
            CascadeBucket(up_[k - 1][slot]);
        }
    }
}

int Simulation::ScanL0(int from) const
{
    int word = from >> 6;
    std::uint64_t bits = l0_bitmap_[word] & (~std::uint64_t{0} << (from & 63));
    while (true) {
        if (bits != 0) return (word << 6) + std::countr_zero(bits);
        if (++word >= kL0Slots / 64) return -1;
        bits = l0_bitmap_[word];
    }
}

bool Simulation::FindNext(SimTime limit, SimTime* out_time)
{
    while (true) {
        // Nearest occupied 1 ms slot in the current level-0 block.
        const int cursor = static_cast<int>(wheel_time_ & (kL0Slots - 1));
        const int slot = ScanL0(cursor);
        if (slot >= 0) {
            const SimTime t =
                (wheel_time_ & ~static_cast<SimTime>(kL0Slots - 1)) + slot;
            if (t > limit) return false;
            wheel_time_ = t;  // same block: no cascades needed
            *out_time = t;
            return true;
        }

        // Otherwise: the earliest candidate window across upper levels
        // and the far heap. A level's own-cursor slot is always empty
        // (those times map to a lower level), so scan past it; the
        // lowest level with a hit bounds all higher levels' windows.
        SimTime best = std::numeric_limits<SimTime>::max();
        bool found = false;
        for (int k = 1; k <= kLevels; ++k) {
            const int shift = LevelShift(k);
            const int cur =
                static_cast<int>((wheel_time_ >> shift) & (kLevelSlots - 1));
            std::uint64_t bits = up_bitmap_[k - 1];
            bits = (cur + 1 < kLevelSlots)
                       ? bits & (~std::uint64_t{0} << (cur + 1))
                       : 0;
            if (bits == 0) continue;
            const int s = std::countr_zero(bits);
            const SimTime base = (wheel_time_ >> (shift + kLevelBits))
                                 << (shift + kLevelBits);
            best = base + (static_cast<SimTime>(s) << shift);
            found = true;
            break;
        }
        if (!far_.empty() && (!found || far_.front().when < best)) {
            best = far_.front().when;
            found = true;
        }
        if (!found || best > limit) return false;
        SetWheelTime(best);  // cascades the chosen window; loop rescans
    }
}

void Simulation::ExecuteSlot(SimTime t)
{
    const int slot = static_cast<int>(t & (kL0Slots - 1));
    Bucket& bucket = l0_[slot];

    // Callbacks can schedule new events for this same millisecond;
    // they land in the (now empty) bucket and the outer loop re-runs.
    while (bucket.head != kNil) {
        std::uint32_t head = bucket.head;
        bucket.head = bucket.tail = kNil;
        l0_bitmap_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));

        // Wheel slots are FIFO, so a chain is almost always already in
        // seq order; a cascade merging behind direct inserts can break
        // that, so verify before executing (determinism pin).
        bool sorted = true;
        std::uint64_t prev_seq = 0;
        bool first = true;
        for (std::uint32_t i = head; i != kNil; i = pool_[i].next) {
            if (!first && pool_[i].seq < prev_seq) {
                sorted = false;
                break;
            }
            prev_seq = pool_[i].seq;
            first = false;
        }
        if (!sorted) {
            ++kernel_stats_.slot_sorts;
            std::vector<std::uint32_t> order;
            for (std::uint32_t i = head; i != kNil; i = pool_[i].next) {
                order.push_back(i);
            }
            std::sort(order.begin(), order.end(),
                      [this](std::uint32_t a, std::uint32_t b) {
                          return pool_[a].seq < pool_[b].seq;
                      });
            for (std::size_t i = 0; i + 1 < order.size(); ++i) {
                pool_[order[i]].next = order[i + 1];
            }
            pool_[order.back()].next = kNil;
            head = order.front();
        }

        for (std::uint32_t idx = head; idx != kNil;) {
            // Read the link first: executing can free/reuse this node.
            const std::uint32_t next = pool_[idx].next;
            detail::TaskTable::Slot& state = table_->slots[idx];
            if (state.cancelled) {
                --table_->lazy_cancelled;
                FreeNode(idx);
                idx = next;
                continue;
            }
            state.state = detail::TaskTable::kExecuting;
            --table_->live;
            now_ = t;
            ++events_executed_;
            if (event_observer_) event_observer_(t, pool_[idx].seq);

            // Move the callback out before invoking: the callback may
            // schedule events and grow the slab, invalidating every
            // reference into it — including its own storage.
            Callback fn = std::move(pool_[idx].fn);
            const SimTime period = pool_[idx].period;
            fn();

            detail::TaskTable::Slot& after = table_->slots[idx];
            if (period > 0 && !after.cancelled) {
                // Periodic fast path: relink the same node. Seq is
                // assigned after the callback, matching the seed
                // kernel's re-push order for same-timestamp events.
                EventNode& node = pool_[idx];
                node.when = t + period;
                node.seq = next_seq_++;
                node.fn = std::move(fn);
                after.state = detail::TaskTable::kQueued;
                ++table_->live;
                InsertNode(idx);
            } else {
                FreeNode(idx);
            }
            idx = next;
        }
    }
}

void Simulation::RunUntil(SimTime deadline)
{
    SimTime t = 0;
    while (FindNext(deadline, &t)) ExecuteSlot(t);
    // Advance the clock to the deadline even if the queue drained early
    // so callers can interleave RunFor() with direct state inspection.
    if (now_ < deadline) now_ = deadline;
}

void Simulation::RunAll()
{
    constexpr SimTime kForever = std::numeric_limits<SimTime>::max();
    SimTime t = 0;
    while (FindNext(kForever, &t)) ExecuteSlot(t);
}

void Simulation::MaybePurge()
{
    if (table_->lazy_cancelled >= kPurgeThreshold &&
        table_->lazy_cancelled > table_->live) {
        PurgeCancelled();
    }
}

void Simulation::PurgeBucket(Bucket& bucket)
{
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
    std::uint32_t idx = bucket.head;
    while (idx != kNil) {
        const std::uint32_t next = pool_[idx].next;
        if (table_->slots[idx].cancelled) {
            --table_->lazy_cancelled;
            FreeNode(idx);
        } else if (head == kNil) {
            head = tail = idx;
            pool_[idx].next = kNil;
        } else {
            pool_[tail].next = idx;
            pool_[idx].next = kNil;
            tail = idx;
        }
        idx = next;
    }
    bucket.head = head;
    bucket.tail = tail;
}

void Simulation::PurgeCancelled()
{
    ++kernel_stats_.purges;
    for (int slot = 0; slot < kL0Slots; ++slot) {
        if (l0_[slot].head == kNil) continue;
        PurgeBucket(l0_[slot]);
        if (l0_[slot].head == kNil) {
            l0_bitmap_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
        }
    }
    for (int k = 0; k < kLevels; ++k) {
        for (int slot = 0; slot < kLevelSlots; ++slot) {
            if (up_[k][slot].head == kNil) continue;
            PurgeBucket(up_[k][slot]);
            if (up_[k][slot].head == kNil) {
                up_bitmap_[k] &= ~(std::uint64_t{1} << slot);
            }
        }
    }
    const auto cancelled = [this](const FarEntry& e) {
        return table_->slots[e.idx].cancelled;
    };
    if (std::any_of(far_.begin(), far_.end(), cancelled)) {
        for (const FarEntry& e : far_) {
            if (cancelled(e)) {
                --table_->lazy_cancelled;
                FreeNode(e.idx);
            }
        }
        far_.erase(std::remove_if(far_.begin(), far_.end(), cancelled),
                   far_.end());
        std::make_heap(far_.begin(), far_.end(), FarLater);
    }
}

}  // namespace dynamo::sim
