#include "sim/simulation.h"

#include <cassert>
#include <utility>

namespace dynamo::sim {

TaskHandle
Simulation::ScheduleAt(SimTime when, Callback fn)
{
    assert(when >= now_ && "cannot schedule in the past");
    auto state = std::make_shared<TaskHandle::State>();
    queue_.push(Event{when, next_seq_++, std::move(fn), state});
    return TaskHandle(std::move(state));
}

TaskHandle
Simulation::ScheduleAfter(SimTime delay, Callback fn)
{
    return ScheduleAt(now_ + delay, std::move(fn));
}

TaskHandle
Simulation::SchedulePeriodic(SimTime period, Callback fn, SimTime initial_delay)
{
    assert(period > 0 && "periodic task needs positive period");
    if (initial_delay < 0) initial_delay = period;
    auto state = std::make_shared<TaskHandle::State>();

    // The re-arming closure captures the shared cancellation state, so
    // cancelling the returned handle stops all future firings.
    auto tick = std::make_shared<Callback>();
    *tick = [this, period, fn = std::move(fn), state, tick]() {
        if (state->cancelled) return;
        fn();
        if (state->cancelled) return;
        queue_.push(Event{now_ + period, next_seq_++, *tick, state});
    };
    queue_.push(Event{now_ + initial_delay, next_seq_++, *tick, state});
    return TaskHandle(std::move(state));
}

bool
Simulation::Step()
{
    while (!queue_.empty()) {
        Event ev = queue_.top();
        queue_.pop();
        if (ev.state && ev.state->cancelled) continue;
        now_ = ev.when;
        ++events_executed_;
        ev.fn();
        return true;
    }
    return false;
}

void
Simulation::RunUntil(SimTime deadline)
{
    while (!queue_.empty() && queue_.top().when <= deadline) {
        if (!Step()) break;
    }
    // Advance the clock to the deadline even if the queue drained early
    // so callers can interleave RunFor() with direct state inspection.
    if (now_ < deadline) now_ = deadline;
}

void
Simulation::RunAll()
{
    while (Step()) {
    }
}

}  // namespace dynamo::sim
