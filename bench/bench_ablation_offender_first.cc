/**
 * @file
 * Ablation A4: punish-offender-first vs uniform child cuts.
 *
 * An SB exceeds its limit because one row runs far over its power
 * quota while three innocent rows stay within theirs. Offender-first
 * sends the whole cut to the offending row; the uniform alternative
 * spreads it over every row, throttling workloads that kept their
 * side of the plan. We measure per-row work loss under both policies.
 */
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/units.h"
#include "core/capping_policy.h"
#include "fleet/fleet.h"

using namespace dynamo;

namespace {

struct RowLoss
{
    double offender_pct;
    double innocent_pct;
};

/**
 * Build the SB fleet with one hot row; if `offender_first` is false,
 * emulate a uniform policy by imposing proportional contractual
 * limits directly (bypassing the upper controller's planner).
 */
RowLoss
Run(bool offender_first)
{
    fleet::FleetSpec spec;
    spec.scope = fleet::FleetScope::kSb;
    spec.topology.rpps_per_sb = 4;
    spec.topology.sb_rated = 330e3;
    spec.topology.quota_fill = 0.95;
    spec.servers_per_rpp = 420;
    spec.mix = fleet::ServiceMix::Single(workload::ServiceType::kWeb);
    spec.diurnal_amplitude = 0.0;
    spec.seed = 91;
    if (!offender_first) {
        // Disable the SB controller; we'll hand out uniform cuts.
        spec.deployment.upper.base.bands.cap_threshold_frac = 0.999;
        spec.deployment.upper.base.bands.cap_target_frac = 0.99;
        spec.deployment.upper.base.bands.uncap_threshold_frac = 0.90;
    }
    fleet::Fleet fleet(spec);

    // Row 0 goes hot: a regression doubles its load.
    for (auto* srv : fleet.ServersUnder("sb0/rpp0")) {
        srv->load().set_balancer_factor(1.9);
    }
    fleet.RunFor(Seconds(15));

    if (!offender_first) {
        // Uniform policy: every row gets the same fractional cut so
        // the SB lands on its capping target.
        const Watts aggregated = fleet.TotalPower();
        const Watts target = 0.95 * 330e3;
        if (aggregated > target) {
            const double scale = target / aggregated;
            for (const auto& leaf : fleet.dynamo()->leaf_controllers()) {
                leaf->SetContractualLimit(leaf->last_aggregated_power() * scale);
            }
        }
    }

    // Measure work over the throttled hour (delta from the snapshot
    // taken just before it starts).
    std::vector<double> demanded(4, 0.0);
    std::vector<double> delivered(4, 0.0);
    auto accumulate = [&](double sign) {
        for (int row = 0; row < 4; ++row) {
            for (auto* srv :
                 fleet.ServersUnder("sb0/rpp" + std::to_string(row))) {
                demanded[row] += sign * srv->demanded_work();
                delivered[row] += sign * srv->delivered_work();
            }
        }
    };
    accumulate(-1.0);
    fleet.RunFor(Hours(1));
    accumulate(+1.0);

    RowLoss loss;
    loss.offender_pct = 100.0 * (1.0 - delivered[0] / demanded[0]);
    double innocent_demanded = 0.0;
    double innocent_delivered = 0.0;
    for (int row = 1; row < 4; ++row) {
        innocent_demanded += demanded[row];
        innocent_delivered += delivered[row];
    }
    loss.innocent_pct = 100.0 * (1.0 - innocent_delivered / innocent_demanded);
    return loss;
}

}  // namespace

int
main()
{
    bench::Banner("Ablation A4", "punish-offender-first vs uniform cuts");

    const RowLoss offender = Run(/*offender_first=*/true);
    const RowLoss uniform = Run(/*offender_first=*/false);

    std::printf("%-24s %18s %18s\n", "policy", "offender row loss",
                "innocent rows loss");
    std::printf("%-24s %17.2f%% %17.2f%%\n", "punish-offender-first",
                offender.offender_pct, offender.innocent_pct);
    std::printf("%-24s %17.2f%% %17.2f%%\n", "uniform", uniform.offender_pct,
                uniform.innocent_pct);

    std::printf("\nHeadline comparison:\n");
    bench::Compare("innocent-row work loss, offender-first", 0.0,
                   offender.innocent_pct, "%");
    bench::Compare("innocent-row loss penalty of uniform policy", 1.0,
                   uniform.innocent_pct - offender.innocent_pct,
                   "%-points (should be > 0)");
    return 0;
}
