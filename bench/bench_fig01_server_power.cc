/**
 * @file
 * Figure 1: measured server power vs CPU utilization for the 2011
 * Westmere and 2015 Haswell web servers.
 *
 * Regenerates the two curves (plus our Turbo variants) and checks the
 * headline observation: peak server power nearly doubled between
 * generations.
 */
#include <cstdio>

#include "bench_util.h"
#include "server/power_model.h"

using namespace dynamo;

int
main()
{
    bench::Banner("Fig. 1", "server power vs CPU utilization, two generations");

    const server::ServerPowerSpec w2011 =
        server::ServerPowerSpec::For(server::ServerGeneration::kWestmere2011);
    const server::ServerPowerSpec h2015 =
        server::ServerPowerSpec::For(server::ServerGeneration::kHaswell2015);

    std::printf("%8s %14s %14s %14s\n", "util(%)", "2011(W)", "2015(W)",
                "2015+turbo(W)");
    for (int u = 0; u <= 100; u += 5) {
        const double util = u / 100.0;
        std::printf("%8d %14.1f %14.1f %14.1f\n", u,
                    server::PowerAtUtil(w2011, util),
                    server::PowerAtUtil(h2015, util),
                    server::PowerAtUtil(h2015, util, /*turbo=*/true));
    }

    std::printf("\nHeadline comparison:\n");
    bench::Compare("2011 server peak power", 200.0, w2011.peak, "W");
    bench::Compare("2015 server peak power", 350.0, h2015.peak, "W");
    bench::Compare("peak power growth factor (\"nearly doubled\")", 1.75,
                   h2015.peak / w2011.peak, "x");
    return 0;
}
