/**
 * @file
 * Chaos campaign catalogue (robustness evaluation, Sections III-C1 and
 * III-E).
 *
 * Each campaign drives one scripted control-plane fault pattern —
 * correlated sub-tree partition, agent flapping, latency storm,
 * controller crash mid-capping-event, telemetry blackout plus lossy
 * pulls — against the same tightly-rated SB fleet while a surge keeps
 * capping active, and reports what the safety machinery did: degraded
 * entries, frozen releases, retries, invariant violations, time spent
 * over limit, peak breaker stress, and the time from fault clearance
 * to full cap release.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "chaos/campaign.h"
#include "chaos/invariants.h"
#include "common/units.h"
#include "core/deployment.h"
#include "fleet/fleet.h"
#include "fleet/scenarios.h"
#include "telemetry/event_log.h"

using namespace dynamo;

namespace {

constexpr SimTime kFaultStart = Seconds(60);
constexpr SimTime kFaultEnd = Seconds(180);
constexpr SimTime kRunEnd = Seconds(420);

struct Outcome
{
    std::string name;
    std::uint64_t faults = 0;
    std::uint64_t degraded_entries = 0;
    std::uint64_t frozen_releases = 0;
    std::uint64_t invalid_aggregations = 0;
    std::uint64_t retries = 0;
    std::uint64_t violations = 0;
    SimTime over_limit_ms = 0;
    double max_stress = 0.0;
    SimTime recovery_ms = -1;
    std::size_t outages = 0;
    std::size_t episodes = 0;
};

fleet::FleetSpec
Spec(bool with_backups, bool with_breaker_validation)
{
    fleet::FleetSpec spec;
    spec.scope = fleet::FleetScope::kSb;
    spec.topology.rpps_per_sb = 3;
    // Tight ratings (baseline ~94 KW): the ×1.6 surge forces capping
    // at both hierarchy levels during every campaign.
    spec.topology.sb_rated = 120e3;
    spec.topology.rpp_rated = 45e3;
    spec.topology.quota_fill = 0.95;
    spec.servers_per_rpp = 180;
    spec.mix = fleet::ServiceMix::Datacenter();
    spec.diurnal_amplitude = 0.0;
    spec.sensorless_fraction = 0.0;
    spec.seed = 17;
    spec.deployment.with_backup_controllers = with_backups;
    spec.with_breaker_validation = with_breaker_validation;
    return spec;
}

/** Run one campaign; `script` schedules its faults before the run. */
template <typename Script>
Outcome
RunCampaign(const std::string& name, fleet::FleetSpec spec, Script script)
{
    fleet::Fleet fleet(spec);
    chaos::InvariantChecker checker(fleet);
    chaos::CampaignEngine engine(fleet.sim(), fleet.transport(),
                                 fleet.event_log());
    // Surge ×1.6 forces capping before the faults hit; it recedes
    // mid-window (t=120 s), so the release becomes due while inputs
    // are still unreliable — the freeze path, not just the cap path.
    fleet::ScriptSurgeHold(&fleet.scenario(), Seconds(30), Seconds(20),
                           Seconds(120), 1.6);
    script(fleet, engine);

    fleet.RunFor(kFaultEnd);
    checker.NoteFaultsCleared();
    fleet.RunFor(kRunEnd - kFaultEnd);

    Outcome out;
    out.name = name;
    out.faults = engine.faults_applied();
    const auto account = [&out](const core::Controller& c) {
        out.degraded_entries += c.degraded_entries();
        out.frozen_releases += c.frozen_releases();
        out.invalid_aggregations += c.invalid_aggregations();
        out.retries += c.retries_issued();
    };
    core::Deployment& dynamo = *fleet.dynamo();
    for (const auto& leaf : dynamo.leaf_controllers()) account(*leaf);
    for (const auto& leaf : dynamo.leaf_backups()) account(*leaf);
    for (const auto& upper : dynamo.upper_controllers()) account(*upper);
    for (const auto& upper : dynamo.upper_backups()) account(*upper);
    out.violations = checker.violation_count();
    out.over_limit_ms = checker.over_limit_ms();
    out.max_stress = checker.max_breaker_stress();
    out.recovery_ms = checker.recovery_time();
    out.outages = fleet.outage_count();
    out.episodes = fleet.event_log()->CappingEpisodes();
    if (!checker.violations().empty()) {
        std::printf("  [%s] first violation: %s\n", name.c_str(),
                    checker.violations().front().c_str());
    }
    return out;
}

void
Report(const std::vector<Outcome>& outcomes)
{
    std::printf("%-16s %7s %9s %9s %8s %8s %8s %6s %9s %8s %9s\n", "campaign",
                "faults", "episodes", "degraded", "frozen", "invalid",
                "retries", "viol", "over(ms)", "stress", "recov(s)");
    for (const Outcome& o : outcomes) {
        std::printf(
            "%-16s %7llu %9zu %9llu %8llu %8llu %8llu %6llu %9lld %8.3f %9.1f\n",
            o.name.c_str(), static_cast<unsigned long long>(o.faults),
            o.episodes,
            static_cast<unsigned long long>(o.degraded_entries),
            static_cast<unsigned long long>(o.frozen_releases),
            static_cast<unsigned long long>(o.invalid_aggregations),
            static_cast<unsigned long long>(o.retries),
            static_cast<unsigned long long>(o.violations),
            static_cast<long long>(o.over_limit_ms), o.max_stress,
            o.recovery_ms < 0 ? -1.0 : o.recovery_ms / 1000.0);
    }
}

}  // namespace

int
main()
{
    bench::Banner("Chaos", "fault-campaign catalogue with invariant checking");

    std::vector<Outcome> outcomes;

    outcomes.push_back(RunCampaign(
        "partition", Spec(false, false),
        [](fleet::Fleet& fleet, chaos::CampaignEngine& engine) {
            // One RPP's agents drop off the network together.
            std::vector<std::string> agents =
                fleet.AgentEndpointsUnder("sb0/rpp0");
            engine.Partition(kFaultStart, kFaultEnd, agents);
        }));

    outcomes.push_back(RunCampaign(
        "flapping", Spec(false, false),
        [](fleet::Fleet& fleet, chaos::CampaignEngine& engine) {
            // A third of one RPP's agents flap up and down.
            std::vector<std::string> agents =
                fleet.AgentEndpointsUnder("sb0/rpp1");
            agents.resize(agents.size() / 3);
            for (const std::string& a : agents) {
                engine.Flap(kFaultStart, kFaultEnd, a, Seconds(9));
            }
        }));

    outcomes.push_back(RunCampaign(
        "latency-storm", Spec(false, false),
        [](fleet::Fleet& fleet, chaos::CampaignEngine& engine) {
            // Slow responders: beyond every retry attempt's timeout.
            std::vector<std::string> agents =
                fleet.AgentEndpointsUnder("sb0/rpp2");
            engine.LatencyStorm(kFaultStart, kFaultEnd, agents, Seconds(2));
        }));

    outcomes.push_back(RunCampaign(
        "ctl-crash", Spec(/*with_backups=*/true, false),
        [](fleet::Fleet& fleet, chaos::CampaignEngine& engine) {
            // Leaf controller dies mid-capping-event; failover promotes
            // its backup, which adopts the orphaned caps.
            engine.CrashController(
                kFaultStart, *fleet.dynamo()->leaf_controllers()[0]);
        }));

    outcomes.push_back(RunCampaign(
        "blackout+lossy", Spec(false, /*with_breaker_validation=*/true),
        [](fleet::Fleet& fleet, chaos::CampaignEngine& engine) {
            // Breaker telemetry goes dark while pulls get lossy.
            for (const auto& feed : fleet.breaker_telemetry()) {
                engine.TelemetryBlackout(kFaultStart, kFaultEnd, *feed);
            }
            engine.DegradePulls(kFaultStart, kFaultEnd,
                                fleet.AgentEndpointsUnder("sb0"), 0.15);
        }));

    Report(outcomes);

    std::printf("\nHeadline:\n");
    std::uint64_t total_violations = 0;
    std::size_t total_outages = 0;
    SimTime worst_recovery = 0;
    for (const Outcome& o : outcomes) {
        total_violations += o.violations;
        total_outages += o.outages;
        if (o.recovery_ms > worst_recovery) worst_recovery = o.recovery_ms;
    }
    bench::Compare("invariant violations across catalogue", 0.0,
                   static_cast<double>(total_violations), "violations");
    bench::Compare("breaker trips across catalogue", 0.0,
                   static_cast<double>(total_outages), "trips");
    bench::Compare("worst-case release after faults clear (<180 s)", 180.0,
                   worst_recovery / 1000.0, "s");
    return 0;
}
