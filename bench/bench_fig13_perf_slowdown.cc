/**
 * @file
 * Figure 13: web-server performance slowdown vs power reduction.
 *
 * Reproduces the controlled experiment: a group of three web servers
 * is capped at successively deeper levels while a control group of
 * three runs uncapped; the y-axis is relative slowdown in server-side
 * latency. The shape to reproduce: slow degradation within ~20 % power
 * reduction, much steeper beyond it (CPU frequency becomes the
 * bottleneck).
 */
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/units.h"
#include "server/sim_server.h"

using namespace dynamo;

namespace {

std::vector<std::unique_ptr<server::SimServer>>
MakeGroup(int n, std::uint64_t seed_base)
{
    std::vector<std::unique_ptr<server::SimServer>> group;
    for (int i = 0; i < n; ++i) {
        server::SimServer::Config config;
        config.name = "web" + std::to_string(i);
        config.service = workload::ServiceType::kWeb;
        config.seed = seed_base + static_cast<std::uint64_t>(i);
        group.push_back(std::make_unique<server::SimServer>(
            config, bench::SteadyLoad(0.75)));
    }
    return group;
}

}  // namespace

int
main()
{
    bench::Banner("Fig. 13", "web-server slowdown vs power reduction");

    std::printf("%16s %16s %16s\n", "power cut(%)", "slowdown(%)",
                "work loss(%)");
    double slow_at_20 = 0.0;
    double slow_at_40 = 0.0;
    for (int cut_pct = 0; cut_pct <= 50; cut_pct += 5) {
        auto capped = MakeGroup(3, 100);
        auto control = MakeGroup(3, 100);  // identical seeds: true control

        // Warm up, then cap the test group to (1 - cut) x current power.
        double avg_slowdown = 0.0;
        double capped_work = 0.0;
        double control_work = 0.0;
        std::vector<double> capped_base(3);
        std::vector<double> control_base(3);
        for (int i = 0; i < 3; ++i) {
            const Watts p = capped[i]->PowerAt(Minutes(1));
            capped[i]->SetPowerLimit(p * (1.0 - cut_pct / 100.0), Minutes(1));
            control[i]->PowerAt(Minutes(1));
            capped_base[i] = capped[i]->delivered_work();
            control_base[i] = control[i]->delivered_work();
        }
        for (int i = 0; i < 3; ++i) {
            avg_slowdown += capped[i]->SlowdownPercentAt(Minutes(10)) / 3.0;
            control[i]->PowerAt(Minutes(10));
            capped_work += capped[i]->delivered_work() - capped_base[i];
            control_work += control[i]->delivered_work() - control_base[i];
        }
        const double work_loss = 100.0 * (1.0 - capped_work / control_work);
        std::printf("%16d %16.1f %16.1f\n", cut_pct, avg_slowdown, work_loss);
        if (cut_pct == 20) slow_at_20 = avg_slowdown;
        if (cut_pct == 40) slow_at_40 = avg_slowdown;
    }

    std::printf("\nHeadline comparison:\n");
    bench::Compare("slowdown at 20%% power reduction (slow regime)", 10.0,
                   slow_at_20, "%");
    bench::Compare("slowdown at 40%% power reduction (fast regime)", 80.0,
                   slow_at_40, "%");
    bench::Compare("steepening factor beyond the knee", 8.0,
                   slow_at_40 / std::max(slow_at_20, 1e-9), "x");
    return 0;
}
