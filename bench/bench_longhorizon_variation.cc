/**
 * @file
 * Long-horizon characterization (Section II-B's second dataset).
 *
 * Besides the 3 s suite-level study, the paper examines coarse
 * 1-minute power data across all data centers for nearly three years.
 * We scale that to a week of simulated time over a 480-server RPP with
 * diurnal + weekly traffic structure, and extend the variation-vs-
 * window analysis past the paper's 600 s into the hours range —
 * showing how the diurnal cycle dominates once windows reach a
 * meaningful fraction of a day (the regime where capacity planning,
 * not capping, is the right tool).
 */
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/units.h"
#include "server/sim_server.h"
#include "telemetry/timeseries.h"
#include "telemetry/variation.h"
#include "workload/load_process.h"
#include "workload/traffic.h"

using namespace dynamo;

int
main()
{
    bench::Banner("Long horizon",
                  "1-minute fleet data over a simulated week");

    workload::DiurnalTraffic diurnal(0.25);
    workload::WeeklyTraffic weekly(0.85);
    workload::CompositeTraffic traffic;
    traffic.Add(&diurnal);
    traffic.Add(&weekly);

    std::vector<std::unique_ptr<server::SimServer>> servers;
    for (int i = 0; i < 480; ++i) {
        server::SimServer::Config config;
        config.name = "s";
        config.service =
            workload::kAllServices[static_cast<std::size_t>(i) % 6];
        config.seed = 9000 + static_cast<std::uint64_t>(i) * 13;
        servers.push_back(std::make_unique<server::SimServer>(
            config, workload::LoadProcessParams::For(config.service),
            &traffic));
    }

    telemetry::TimeSeries rpp;
    for (SimTime t = 0; t < Days(7); t += Minutes(1)) {
        double sum = 0.0;
        for (auto& srv : servers) sum += srv->PowerAt(t);
        rpp.Add(t, sum);
    }

    std::printf("%12s %12s %12s %14s\n", "window", "p50(%)", "p99(%)",
                "windows");
    const SimTime windows[] = {Minutes(1),  Minutes(5),  Minutes(15),
                               Minutes(60), Hours(4),    Hours(12)};
    double p99_1m = 0.0;
    double p99_12h = 0.0;
    for (SimTime w : windows) {
        const auto summary = telemetry::SummarizeVariation(rpp, w);
        std::printf("%11llds %12.1f %12.1f %14zu\n",
                    static_cast<long long>(w / 1000), summary.p50, summary.p99,
                    summary.window_count);
        if (w == Minutes(1)) p99_1m = summary.p99;
        if (w == Hours(12)) p99_12h = summary.p99;
    }

    const std::vector<double> weekday = rpp.ValuesBetween(Days(1), Days(2));
    const std::vector<double> weekend = rpp.ValuesBetween(Days(5), Days(6));
    const double weekday_peak =
        weekday.empty() ? 0.0
                        : *std::max_element(weekday.begin(), weekday.end());
    const double weekend_peak =
        weekend.empty() ? 0.0
                        : *std::max_element(weekend.begin(), weekend.end());

    std::printf("\nStructure checks:\n");
    bench::Compare("12 h window variation dwarfs 1 min (diurnal swing)", 10.0,
                   p99_12h / p99_1m, "x");
    bench::Compare("weekend peak vs weekday peak", 0.88,
                   weekend_peak / weekday_peak, "ratio");
    std::printf("  (capping handles the left end of this curve; the right\n"
                "   end is the provisioning problem of Fan et al. [1])\n");
    return 0;
}
