/**
 * @file
 * Ablation A3: leaf controller pull cycle (paper: 3 s).
 *
 * Section II-C derives two requirements: sub-minute sampling (power
 * can swing 30 % at rack level within 60 s, enough to trip a breaker
 * in minutes) and >2 s (RAPL needs ~2 s to settle, so faster sampling
 * reads mid-transition values). We replay the same fast surge under
 * pull cycles from 1 s to 60 s and measure how deep into the breaker's
 * trip budget each configuration lets the device go.
 */
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/units.h"
#include "fleet/fleet.h"
#include "telemetry/event_log.h"

using namespace dynamo;

namespace {

struct Outcome
{
    double max_stress;     // peak breaker trip-budget consumption [0,1]
    std::size_t outages;
    std::size_t cap_events;
};

Outcome
Run(SimTime pull_cycle)
{
    fleet::FleetSpec spec;
    spec.scope = fleet::FleetScope::kRpp;
    spec.topology.rpp_rated = 127.5e3;
    spec.servers_per_rpp = 600;
    spec.mix = fleet::ServiceMix::Single(workload::ServiceType::kWeb);
    spec.diurnal_amplitude = 0.0;
    spec.seed = 83;
    spec.deployment.leaf.base.pull_cycle = pull_cycle;
    spec.deployment.leaf.base.response_wait = std::min<SimTime>(1000, pull_cycle);
    spec.deployment.leaf.base.rpc_timeout =
        std::min<SimTime>(900, pull_cycle - 50);
    fleet::Fleet fleet(spec);
    // A violent surge: full swing within ~40 s (the paper's rationale
    // for sub-minute sampling).
    fleet.scenario().AddPoint(0, 1.0);
    fleet.scenario().AddPoint(Minutes(2), 1.0);
    fleet.scenario().AddPoint(Minutes(2) + Seconds(40), 2.2);
    fleet.scenario().AddPoint(Minutes(25), 2.2);

    Outcome out{0.0, 0, 0};
    for (SimTime t = 0; t < Minutes(25); t += Seconds(5)) {
        fleet.RunFor(Seconds(5));
        out.max_stress =
            std::max(out.max_stress, fleet.root().breaker().stress());
    }
    out.outages = fleet.outage_count();
    const auto* log = fleet.event_log();
    out.cap_events = log->CountOf(telemetry::EventKind::kCapStart) +
                     log->CountOf(telemetry::EventKind::kCapUpdate);
    return out;
}

}  // namespace

int
main()
{
    bench::Banner("Ablation A3", "leaf pull cycle vs breaker safety");

    std::printf("%14s %18s %10s %12s\n", "pull cycle", "max trip budget",
                "outages", "cap events");
    double stress_3s = 0.0;
    double stress_60s = 0.0;
    for (SimTime cycle : {Seconds(1), Seconds(3), Seconds(9), Seconds(30),
                          Seconds(60)}) {
        const Outcome out = Run(cycle);
        std::printf("%12llds %17.1f%% %10zu %12zu\n",
                    static_cast<long long>(cycle / 1000),
                    100.0 * out.max_stress, out.outages, out.cap_events);
        if (cycle == Seconds(3)) stress_3s = out.max_stress;
        if (cycle == Seconds(60)) stress_60s = out.max_stress;
    }

    std::printf("\nHeadline comparison:\n");
    bench::Compare("trip budget consumed, 3 s cycle (safe ~0)", 0.0,
                   100.0 * stress_3s, "%");
    bench::Compare("trip budget consumed, 60 s cycle (unsafe)", 20.0,
                   100.0 * stress_60s, "%");
    std::printf("  (the paper picks 3 s: fast enough for sub-minute power\n"
                "   swings, slower than the ~2 s RAPL settling time)\n");
    return 0;
}
