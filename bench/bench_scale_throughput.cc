/**
 * @file
 * Fleet-scale control-plane throughput benchmark.
 *
 * Instantiates the full Dynamo control plane — agents, leaf
 * controllers (3 s pull cycles), SB/MSB upper controllers (9 s
 * cycles) — over 1 k / 10 k / 100 k servers and measures how fast the
 * event kernel and the controller hot paths execute it:
 *
 *   - events/sec through the timing-wheel kernel,
 *   - sim-time / wall-time ratio (how many times faster than real
 *     time the suite simulates),
 *   - p50/p99 wall cost of one leaf / upper RunCycle dispatch (the
 *     pull fan-out, the per-cycle hot path).
 *
 * Modes:
 *   bench_scale_throughput                      # full 1k/10k/100k suite
 *   bench_scale_throughput --servers 10000      # one size only
 *   bench_scale_throughput --out BENCH_SCALE.json
 *   bench_scale_throughput --servers 1000 --check BENCH_SCALE.json
 *   bench_scale_throughput --metrics            # instrumented run
 *   bench_scale_throughput --servers 10000 --overhead-check 5
 *   bench_scale_throughput --servers 10000 --threads 4   # sharded engine
 *   bench_scale_throughput --threads 4 --journal run.jrnl
 *   bench_scale_throughput --parallel-suite     # BENCH_PARALLEL.json
 *   bench_scale_throughput --servers 10000 --parallel-check 2.5
 *   bench_scale_throughput --servers 100000 --threads 1 --barrier-breakdown
 *   bench_scale_throughput --mega-smoke         # 1M-server smoke
 *   bench_scale_throughput --threads 4 --scenario "grid-dr(hold_s=120)"
 *
 * --check is the CI perf smoke: it compares measured events/sec
 * against the committed baseline and exits non-zero on a >3x
 * regression (generous enough to absorb shared-runner noise, tight
 * enough to catch an accidental O(n log n) -> O(n^2) slip).
 *
 * --threads N runs the sharded parallel engine (fleet/sharding.h)
 * instead of the single-kernel fleet: one shard per SB subtree on an
 * N-thread pool, barrier-synchronized every 9 s of sim time. The run
 * records a DYNJRNL1 journal; --journal writes it to disk.
 *
 * --parallel-suite measures the 1/2/4/8-thread scaling curves at 10 k
 * and 100 k servers and writes BENCH_PARALLEL.json (path via --out).
 *
 * --parallel-check MIN is the CI determinism + scaling gate: for each
 * size it runs the sharded engine at 1 and 4 threads, requires the two
 * journals byte-identical, and requires the 4-thread run to reach MIN
 * times the single-thread throughput. The speedup assertion is
 * core-aware: on hosts with fewer than 4 cores the 4-thread arm is
 * time-sliced, so the gate prints a visible notice and skips the
 * throughput floor while still enforcing the byte-identical journals
 * (determinism never depends on core count).
 *
 * --barrier-breakdown prints the per-stage barrier profile after each
 * sharded run (window-run / record / reconfig / proxy-publish /
 * mailbox-drain / checkpoint wall times and the serial share) — the
 * Amdahl instrument for the parallel engine.
 *
 * --checkpoint-every N makes sharded runs checkpoint every N windows,
 * so the parallel checkpoint stage shows up in the breakdown and the
 * determinism gates cover checkpoint bytes.
 *
 * --mega-smoke is the 1,000,000-server arm: constructs the ~4.2 k-leaf
 * topology, runs two windows at 1 and 2 threads with checkpoints on,
 * and requires byte-identical journals. It is a build-and-run
 * feasibility gate (minutes), not a throughput measurement.
 *
 * --reconfig schedules the canonical elastic storm (grow, re-parent,
 * upper promotion + leaf bounce, decommission) onto the sharded run,
 * so the determinism comparison also covers mid-run topology changes.
 *
 * --scenario NAME[(k=v,...)] runs a catalog scenario (replay/scenario.h)
 * on the sharded fleet: the resolved spec is stamped into the journal
 * header and the scenario's barrier-scheduled mutations are journaled
 * as fault records, so --parallel-check also gates the scenario script.
 * --gpu-fraction / --sensorless-fraction seed the server populations
 * that gpu-surge and estimator-drift act on.
 *
 * --metrics wires the telemetry registry + decision-trace log into the
 * transport, every agent, and every controller — the instrumented
 * configuration the fleet harness runs with by default.
 *
 * --overhead-check PCT measures instrumentation cost: for each size it
 * runs metrics-off and metrics-on suites alternating (best-of-3 each,
 * interleaved so thermal/scheduler drift hits both arms equally) and
 * exits non-zero when metrics-on throughput lands more than PCT
 * percent below metrics-off.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <thread>

#include "common/archive.h"
#include "core/agent.h"
#include "core/leaf_controller.h"
#include "core/upper_controller.h"
#include "fleet/sharded_scenarios.h"
#include "fleet/sharding.h"
#include "policy/capping_policy.h"
#include "power/topology.h"
#include "replay/journal.h"
#include "replay/scenario.h"
#include "rpc/transport.h"
#include "server/sim_server.h"
#include "sim/simulation.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "workload/load_process.h"

namespace dynamo {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kServersPerLeaf = 240;
constexpr std::size_t kLeavesPerSb = 8;
constexpr std::size_t kSbsPerMsb = 4;

/** Capping brain for every controller in the run (--policy). */
policy::PolicyKind g_policy = policy::PolicyKind::kThreeBand;

/** Catalog scenario for sharded runs (--scenario), if any. */
replay::ScenarioSpec g_scenario;
bool g_scenario_set = false;

/** Server-population knobs for sharded runs (--gpu-fraction etc.). */
double g_gpu_fraction = 0.0;
double g_sensorless_fraction = 0.0;

/** Leaf controller that wall-times each pull-cycle dispatch. */
class TimedLeaf : public core::LeafController
{
  public:
    // Explicit forwarding ctor: the base ctor is protected (builder is
    // the production path), and inherited ctors keep base access.
    TimedLeaf(sim::Simulation& sim, rpc::SimTransport& transport,
              std::string endpoint, power::PowerDevice& device, Config config,
              telemetry::EventLog* log)
        : core::LeafController(sim, transport, std::move(endpoint), device,
                               config, log)
    {
    }

    void set_samples(std::vector<double>* samples) { samples_ = samples; }

  protected:
    void RunCycle() override
    {
        const Clock::time_point t0 = Clock::now();
        core::LeafController::RunCycle();
        samples_->push_back(
            std::chrono::duration<double, std::micro>(Clock::now() - t0)
                .count());
    }

  private:
    std::vector<double>* samples_ = nullptr;
};

/** Upper controller that wall-times each pull-cycle dispatch. */
class TimedUpper : public core::UpperController
{
  public:
    TimedUpper(sim::Simulation& sim, rpc::SimTransport& transport,
               std::string endpoint, Watts physical_limit, Watts quota,
               Config config, telemetry::EventLog* log)
        : core::UpperController(sim, transport, std::move(endpoint),
                                physical_limit, quota, config, log)
    {
    }

    void set_samples(std::vector<double>* samples) { samples_ = samples; }

  protected:
    void RunCycle() override
    {
        const Clock::time_point t0 = Clock::now();
        core::UpperController::RunCycle();
        samples_->push_back(
            std::chrono::duration<double, std::micro>(Clock::now() - t0)
                .count());
    }

  private:
    std::vector<double>* samples_ = nullptr;
};

double
Percentile(std::vector<double> values, double p)
{
    if (values.empty()) return 0.0;
    std::sort(values.begin(), values.end());
    const std::size_t idx = std::min(
        values.size() - 1,
        static_cast<std::size_t>(p * static_cast<double>(values.size())));
    return values[idx];
}

struct SuiteResult
{
    std::size_t servers = 0;
    std::size_t leaf_controllers = 0;
    std::size_t upper_controllers = 0;
    double sim_seconds = 0.0;
    double wall_seconds = 0.0;
    std::uint64_t events = 0;
    double events_per_sec = 0.0;
    double realtime_ratio = 0.0;
    double leaf_p50_us = 0.0;
    double leaf_p99_us = 0.0;
    double upper_p50_us = 0.0;
    double upper_p99_us = 0.0;
    bool metrics_on = false;
    std::uint64_t rpc_calls = 0;
    std::uint64_t spans = 0;
};

SuiteResult
RunSuite(std::size_t n_servers, SimTime measure_ms, bool with_metrics)
{
    sim::Simulation sim;
    rpc::SimTransport transport(sim, /*seed=*/1234);
    telemetry::MetricsRegistry registry;
    telemetry::TraceLog traces;
    if (with_metrics) transport.AttachMetrics(&registry);
    Rng rng(n_servers * 0x9e3779b97f4a7c15ULL + 7);

    const std::size_t n_leaves =
        (n_servers + kServersPerLeaf - 1) / kServersPerLeaf;
    const std::size_t n_sbs = (n_leaves + kLeavesPerSb - 1) / kLeavesPerSb;
    const std::size_t n_msbs =
        n_sbs > 1 ? (n_sbs + kSbsPerMsb - 1) / kSbsPerMsb : 0;

    // --- Servers and agents ---
    std::vector<std::unique_ptr<server::SimServer>> servers;
    std::vector<std::unique_ptr<core::DynamoAgent>> agents;
    servers.reserve(n_servers);
    agents.reserve(n_servers);
    const workload::ServiceType services[] = {
        workload::ServiceType::kWeb, workload::ServiceType::kCache,
        workload::ServiceType::kHadoop, workload::ServiceType::kDatabase};
    for (std::size_t i = 0; i < n_servers; ++i) {
        server::SimServer::Config config;
        config.name = "srv" + std::to_string(i);
        config.service = services[i % 4];
        config.generation = (i % 10 < 7)
                                ? server::ServerGeneration::kHaswell2015
                                : server::ServerGeneration::kWestmere2011;
        config.seed = rng.NextU64();
        workload::LoadProcessParams params =
            workload::LoadProcessParams::For(config.service);
        params.base_util = rng.Uniform(0.35, 0.75);
        params.spike_rate_per_hour = 0.0;  // steady-state throughput run
        servers.push_back(std::make_unique<server::SimServer>(
            std::move(config), params));
        agents.push_back(std::make_unique<core::DynamoAgent>(
            sim, transport, *servers.back(), "agent:" + std::to_string(i)));
        if (with_metrics) agents.back()->AttachMetrics(&registry);
    }

    // --- Leaf controllers, one per RPP ---
    std::vector<std::unique_ptr<power::PowerDevice>> devices;
    std::vector<std::unique_ptr<TimedLeaf>> leaves;
    std::vector<double> leaf_samples;
    std::vector<Watts> leaf_rated;
    devices.reserve(n_leaves);
    leaves.reserve(n_leaves);
    for (std::size_t l = 0; l < n_leaves; ++l) {
        const std::size_t first = l * kServersPerLeaf;
        const std::size_t last = std::min(first + kServersPerLeaf, n_servers);

        // Size the breaker just above the domain's initial draw so the
        // three-band policy works near its thresholds: OU load noise
        // pushes the aggregate across the cap/uncap bands and the
        // capping hot path (plan + RAPL fan-out) actually runs.
        Watts draw = 0.0;
        for (std::size_t i = first; i < last; ++i) draw += servers[i]->PowerAt(0);
        const Watts rated = draw / 0.965;
        leaf_rated.push_back(rated);
        devices.push_back(power::BuildRpp("rpp" + std::to_string(l), rated,
                                          /*quota=*/0.95 * rated));

        core::LeafController::Config config;
        config.capping_policy = g_policy;
        auto leaf = std::make_unique<TimedLeaf>(
            sim, transport, "ctl:rpp:" + std::to_string(l), *devices.back(),
            config, /*log=*/nullptr);
        leaf->set_samples(&leaf_samples);
        for (std::size_t i = first; i < last; ++i) {
            core::AgentInfo info;
            info.endpoint = agents[i]->endpoint();
            info.service = servers[i]->service();
            info.priority_group = static_cast<int>(i % 3);
            info.sla_min_cap = 70.0 + static_cast<double>(i % 3) * 15.0;
            leaf->AddAgent(std::move(info));
        }
        if (with_metrics) leaf->AttachTelemetry(&registry, &traces);
        // Stagger activation so hundreds of controllers don't pull in
        // lock-step (the deployment does the same).
        leaf->Activate(static_cast<SimTime>((l * 37) % 3000));
        leaves.push_back(std::move(leaf));
    }

    // --- Upper controllers: SBs over leaves, MSBs over SBs ---
    std::vector<std::unique_ptr<TimedUpper>> uppers;
    std::vector<double> upper_samples;
    std::vector<Watts> sb_rated;
    for (std::size_t s = 0; s < n_sbs; ++s) {
        const std::size_t first = s * kLeavesPerSb;
        const std::size_t last = std::min(first + kLeavesPerSb, n_leaves);
        Watts rated = 0.0;
        for (std::size_t l = first; l < last; ++l) rated += leaf_rated[l];
        rated *= 0.99;  // slightly oversubscribed, as real SBs are
        sb_rated.push_back(rated);

        core::UpperController::Config config;
        config.capping_policy = g_policy;
        auto sb = std::make_unique<TimedUpper>(
            sim, transport, "ctl:sb:" + std::to_string(s), rated,
            /*quota=*/0.95 * rated, config, /*log=*/nullptr);
        sb->set_samples(&upper_samples);
        for (std::size_t l = first; l < last; ++l) {
            sb->AddChild("ctl:rpp:" + std::to_string(l));
        }
        if (with_metrics) sb->AttachTelemetry(&registry, &traces);
        sb->Activate(static_cast<SimTime>((s * 113) % 9000));
        uppers.push_back(std::move(sb));
    }
    for (std::size_t m = 0; m < n_msbs; ++m) {
        const std::size_t first = m * kSbsPerMsb;
        const std::size_t last = std::min(first + kSbsPerMsb, n_sbs);
        Watts rated = 0.0;
        for (std::size_t s = first; s < last; ++s) rated += sb_rated[s];
        rated *= 0.99;

        core::UpperController::Config config;
        config.capping_policy = g_policy;
        auto msb = std::make_unique<TimedUpper>(
            sim, transport, "ctl:msb:" + std::to_string(m), rated,
            /*quota=*/0.95 * rated, config, /*log=*/nullptr);
        msb->set_samples(&upper_samples);
        for (std::size_t s = first; s < last; ++s) {
            msb->AddChild("ctl:sb:" + std::to_string(s));
        }
        if (with_metrics) msb->AttachTelemetry(&registry, &traces);
        msb->Activate(static_cast<SimTime>((m * 199) % 9000));
        uppers.push_back(std::move(msb));
    }

    // --- Warm up, then measure ---
    constexpr SimTime kWarmupMs = 15'000;
    sim.RunFor(kWarmupMs);
    leaf_samples.clear();
    upper_samples.clear();

    const std::uint64_t events_before = sim.events_executed();
    const Clock::time_point wall_start = Clock::now();
    sim.RunFor(measure_ms);
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - wall_start).count();
    const std::uint64_t events = sim.events_executed() - events_before;

    SuiteResult result;
    result.servers = n_servers;
    result.leaf_controllers = n_leaves;
    result.upper_controllers = uppers.size();
    result.sim_seconds = static_cast<double>(measure_ms) / 1000.0;
    result.wall_seconds = wall_s;
    result.events = events;
    result.events_per_sec =
        wall_s > 0.0 ? static_cast<double>(events) / wall_s : 0.0;
    result.realtime_ratio = wall_s > 0.0 ? result.sim_seconds / wall_s : 0.0;
    result.leaf_p50_us = Percentile(leaf_samples, 0.50);
    result.leaf_p99_us = Percentile(leaf_samples, 0.99);
    result.upper_p50_us = Percentile(upper_samples, 0.50);
    result.upper_p99_us = Percentile(upper_samples, 0.99);
    result.metrics_on = with_metrics;
    if (with_metrics) {
        // Kernel counters sit below telemetry; snapshot them into
        // gauges here, the way the fleet harness does.
        const sim::KernelStats& ks = sim.kernel_stats();
        registry.GetGauge("sim.cascades")->Set(static_cast<double>(ks.cascades));
        registry.GetGauge("sim.far_drains")
            ->Set(static_cast<double>(ks.far_drains));
        registry.GetGauge("sim.purges")->Set(static_cast<double>(ks.purges));
        registry.GetGauge("sim.slot_sorts")
            ->Set(static_cast<double>(ks.slot_sorts));
        if (telemetry::Counter* calls = registry.GetCounter("rpc.calls")) {
            result.rpc_calls = calls->value();
        }
        result.spans = traces.total_appended();
    }
    return result;
}

/** One sharded-engine measurement. */
struct ParallelResult
{
    std::size_t servers = 0;
    std::size_t threads = 0;
    std::size_t shards = 0;
    double sim_seconds = 0.0;
    double wall_seconds = 0.0;
    std::uint64_t events = 0;
    double events_per_sec = 0.0;

    /** FNV-1a64 of the encoded DYNJRNL1 bytes (determinism witness). */
    std::uint64_t journal_fnv = 0;

    /** Encoded journal, kept when the caller needs to compare/write. */
    std::string journal_bytes;

    /** Per-stage barrier profile for the whole run (warmup included). */
    fleet::BarrierProfile profile;
};

void
PrintBarrierBreakdown(const fleet::BarrierProfile& p)
{
    std::printf(
        "  barrier breakdown over %llu windows (wall seconds, warmup "
        "included):\n"
        "    window-run     %9.4f   parallel region\n"
        "    record         %9.4f\n"
        "    reconfig       %9.4f\n"
        "    proxy-publish  %9.4f   %llu leaf snapshots\n"
        "    mailbox-drain  %9.4f   %llu messages\n"
        "    checkpoint     %9.4f\n"
        "    barrier-total  %9.4f   serial share %.4f%%\n",
        static_cast<unsigned long long>(p.windows), p.window_run_s, p.record_s,
        p.reconfig_s, p.proxy_publish_s,
        static_cast<unsigned long long>(p.proxy_leaves_published),
        p.mailbox_drain_s, static_cast<unsigned long long>(p.mailbox_messages),
        p.checkpoint_s, p.barrier_total_s, 100.0 * p.serial_share());
}

/**
 * The canonical elastic storm for the determinism gate: grow a leaf,
 * re-home the last leaf onto sb0, promote sb0's upper while bouncing
 * a leaf controller, then decommission a subtree — one transaction
 * per window, all landing after the two warm-up windows.
 */
void
ScheduleBenchStorm(fleet::ShardedFleet& fleet)
{
    const fleet::ShardPlan& plan = fleet.plan();
    if (plan.n_leaves < 4 || plan.n_sbs < 2) {
        std::fprintf(stderr, "--reconfig needs >= 4 leaves and >= 2 SBs; "
                             "skipping the storm\n");
        return;
    }
    const std::size_t last = plan.n_leaves - 1;
    fleet.ScheduleReconfig(2, fleet::ReconfigTxn().AddServers("rpp0", 24));
    if (plan.shard_of_leaf(last) != 0) {
        fleet.ScheduleReconfig(
            3, fleet::ReconfigTxn().Reparent("rpp" + std::to_string(last),
                                             "sb0"));
    }
    fleet.ScheduleReconfig(
        4, fleet::ReconfigTxn().PromoteUpper("sb0").RestartController("rpp1"));
    fleet.ScheduleReconfig(
        5, fleet::ReconfigTxn().RemoveSubtree("rpp" +
                                              std::to_string(last - 1)));
}

ParallelResult
RunParallelSuite(std::size_t n_servers, SimTime measure_ms,
                 std::size_t threads, bool reconfig = false,
                 std::uint64_t checkpoint_every = 0)
{
    fleet::ShardedFleetConfig config;
    config.n_servers = n_servers;
    config.threads = threads;
    config.seed = 1234;
    config.record_journal = true;
    // Hash-only journal by default: cycle records cover the full RPC +
    // kernel event streams. Checkpoints serialize every server at the
    // barrier (in parallel, but still barrier time); opt in with
    // --checkpoint-every to measure or gate that stage.
    config.checkpoint_every = checkpoint_every;
    config.scenario =
        g_scenario_set
            ? replay::FormatScenarioSpec(g_scenario)
            : (reconfig ? "bench-scale-parallel-reconfig"
                        : "bench-scale-parallel");
    config.policy = g_policy;
    config.gpu_fraction = g_gpu_fraction;
    config.sensorless_fraction = g_sensorless_fraction;
    fleet::ShardedFleet fleet(config);
    if (reconfig) ScheduleBenchStorm(fleet);
    if (g_scenario_set && !fleet::ApplyShardedScenario(fleet, g_scenario)) {
        std::fprintf(stderr,
                     "notice: scenario '%s' has no sharded analog; running "
                     "quiet\n",
                     g_scenario.scenario->name.c_str());
    }

    // Warm up two windows (18 s: past every activation stagger), then
    // measure whole windows covering measure_ms.
    fleet.RunWindows(2);
    const std::uint64_t events_before = fleet.events_executed();
    const std::uint64_t windows =
        static_cast<std::uint64_t>((measure_ms + fleet::kShardWindowMs - 1) /
                                   fleet::kShardWindowMs);
    const Clock::time_point wall_start = Clock::now();
    fleet.RunWindows(windows);
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - wall_start).count();

    ParallelResult result;
    result.servers = n_servers;
    result.threads = threads;
    result.shards = fleet.shard_count();
    result.sim_seconds =
        static_cast<double>(windows * fleet::kShardWindowMs) / 1000.0;
    result.wall_seconds = wall_s;
    result.events = fleet.events_executed() - events_before;
    result.events_per_sec =
        wall_s > 0.0 ? static_cast<double>(result.events) / wall_s : 0.0;
    result.journal_bytes = replay::EncodeJournal(fleet.journal());
    result.journal_fnv = Fnv1a64(result.journal_bytes);
    result.profile = fleet.barrier_profile();
    return result;
}

/**
 * The 1,000,000-server feasibility smoke: construct the ~4.2 k-leaf /
 * ~520-SB topology, run two windows with a checkpoint, and require the
 * 1-thread and 2-thread journals byte-identical. Returns a process
 * exit code.
 */
int
RunMegaSmoke()
{
    constexpr std::size_t kMegaServers = 1'000'000;
    auto run = [&](std::size_t threads) {
        fleet::ShardedFleetConfig config;
        config.n_servers = kMegaServers;
        config.threads = threads;
        config.seed = 1234;
        config.record_journal = true;
        config.checkpoint_every = 2;  // one parallel checkpoint at window 2
        config.scenario = "mega-smoke";
        std::printf("mega-smoke: constructing %zu servers, %zu thread%s...\n",
                    kMegaServers, threads, threads == 1 ? "" : "s");
        std::fflush(stdout);
        const Clock::time_point t0 = Clock::now();
        fleet::ShardedFleet fleet(config);
        const double build_s =
            std::chrono::duration<double>(Clock::now() - t0).count();
        std::printf("  built %zu shards / %zu leaves / %zu SBs + %zu MSBs "
                    "in %.1f s; running 2 windows...\n",
                    fleet.shard_count(), fleet.plan().n_leaves,
                    fleet.plan().n_sbs, fleet.plan().n_msbs, build_s);
        std::fflush(stdout);
        fleet.RunWindows(2);
        PrintBarrierBreakdown(fleet.barrier_profile());
        return replay::EncodeJournal(fleet.journal());
    };
    const std::string serial = run(1);
    const std::string wide = run(2);
    if (serial != wide) {
        std::fprintf(stderr,
                     "MEGA-SMOKE DETERMINISM FAILURE: 2-thread journal "
                     "(fnv 0x%016llx) differs from 1-thread (fnv 0x%016llx)\n",
                     static_cast<unsigned long long>(Fnv1a64(wide)),
                     static_cast<unsigned long long>(Fnv1a64(serial)));
        return 1;
    }
    std::printf("mega-smoke ok: journals byte-identical across threads "
                "(fnv 0x%016llx, %zu bytes)\n",
                static_cast<unsigned long long>(Fnv1a64(serial)),
                serial.size());
    return 0;
}

std::string
ParallelToJson(const std::vector<ParallelResult>& results)
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"bench\": \"scale_throughput_parallel\",\n";
#ifdef NDEBUG
    out << "  \"build\": \"release\",\n";
#else
    out << "  \"build\": \"debug\",\n";
#endif
    out << "  \"window_ms\": " << fleet::kShardWindowMs << ",\n";
    out << "  \"host_cores\": " << std::thread::hardware_concurrency()
        << ",\n";
    out << "  \"note\": \"speedup_vs_1t compares against the 1-thread "
           "entry of the same size; identical journal_fnv64 across "
           "thread counts is the determinism witness\",\n";
    out << "  \"suites\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ParallelResult& r = results[i];
        // The 1-thread arm of the same size (suite entries are emitted
        // size-major, 1-thread first).
        double base = r.events_per_sec;
        for (const ParallelResult& b : results) {
            if (b.servers == r.servers && b.threads == 1) {
                base = b.events_per_sec;
                break;
            }
        }
        char buf[2048];
        std::snprintf(
            buf, sizeof(buf),
            "    {\n"
            "      \"servers\": %zu,\n"
            "      \"threads\": %zu,\n"
            "      \"shards\": %zu,\n"
            "      \"sim_seconds\": %.1f,\n"
            "      \"wall_seconds\": %.4f,\n"
            "      \"events_executed\": %llu,\n"
            "      \"events_per_sec\": %.0f,\n"
            "      \"speedup_vs_1t\": %.2f,\n"
            "      \"journal_fnv64\": \"0x%016llx\",\n"
            "      \"barrier\": {\n"
            "        \"total_s\": %.6f,\n"
            "        \"serial_share\": %.6f,\n"
            "        \"record_s\": %.6f,\n"
            "        \"reconfig_s\": %.6f,\n"
            "        \"proxy_publish_s\": %.6f,\n"
            "        \"mailbox_drain_s\": %.6f,\n"
            "        \"checkpoint_s\": %.6f,\n"
            "        \"proxy_leaves_published\": %llu,\n"
            "        \"mailbox_messages\": %llu\n"
            "      }\n"
            "    }%s\n",
            r.servers, r.threads, r.shards, r.sim_seconds, r.wall_seconds,
            static_cast<unsigned long long>(r.events), r.events_per_sec,
            base > 0.0 ? r.events_per_sec / base : 0.0,
            static_cast<unsigned long long>(r.journal_fnv),
            r.profile.barrier_total_s, r.profile.serial_share(),
            r.profile.record_s, r.profile.reconfig_s,
            r.profile.proxy_publish_s, r.profile.mailbox_drain_s,
            r.profile.checkpoint_s,
            static_cast<unsigned long long>(r.profile.proxy_leaves_published),
            static_cast<unsigned long long>(r.profile.mailbox_messages),
            i + 1 < results.size() ? "," : "");
        out << buf;
    }
    out << "  ]\n";
    out << "}\n";
    return out.str();
}

std::string
ToJson(const std::vector<SuiteResult>& results)
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"bench\": \"scale_throughput\",\n";
#ifdef NDEBUG
    out << "  \"build\": \"release\",\n";
#else
    out << "  \"build\": \"debug\",\n";
#endif
    out << "  \"cycle_cost_note\": \"leaf/upper cycle cost is the wall time "
           "of one RunCycle pull fan-out dispatch\",\n";
    out << "  \"suites\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SuiteResult& r = results[i];
        char buf[1024];
        std::snprintf(
            buf, sizeof(buf),
            "    {\n"
            "      \"servers\": %zu,\n"
            "      \"leaf_controllers\": %zu,\n"
            "      \"upper_controllers\": %zu,\n"
            "      \"sim_seconds\": %.1f,\n"
            "      \"wall_seconds\": %.4f,\n"
            "      \"events_executed\": %llu,\n"
            "      \"events_per_sec\": %.0f,\n"
            "      \"realtime_ratio\": %.1f,\n"
            "      \"leaf_cycle_us\": {\"p50\": %.1f, \"p99\": %.1f},\n"
            "      \"upper_cycle_us\": {\"p50\": %.1f, \"p99\": %.1f}\n"
            "    }%s\n",
            r.servers, r.leaf_controllers, r.upper_controllers, r.sim_seconds,
            r.wall_seconds, static_cast<unsigned long long>(r.events),
            r.events_per_sec, r.realtime_ratio, r.leaf_p50_us, r.leaf_p99_us,
            r.upper_p50_us, r.upper_p99_us,
            i + 1 < results.size() ? "," : "");
        out << buf;
    }
    out << "  ]\n";
    out << "}\n";
    return out.str();
}

/**
 * Pull one suite's events/sec out of a baseline BENCH_SCALE.json.
 * Hand-rolled scan (no JSON dependency): finds the `"servers": N`
 * entry, then the following `"events_per_sec"` value.
 */
bool
BaselineThroughput(const std::string& json, std::size_t servers, double* out)
{
    const std::string anchor = "\"servers\": " + std::to_string(servers);
    const std::size_t at = json.find(anchor);
    if (at == std::string::npos) return false;
    const std::string key = "\"events_per_sec\": ";
    const std::size_t kat = json.find(key, at);
    if (kat == std::string::npos) return false;
    *out = std::strtod(json.c_str() + kat + key.size(), nullptr);
    return *out > 0.0;
}

}  // namespace
}  // namespace dynamo

int
main(int argc, char** argv)
{
    using namespace dynamo;

    std::vector<std::size_t> sizes = {1'000, 10'000, 100'000};
    SimTime measure_ms = 60'000;
    std::string out_path;
    std::string check_path;
    std::string journal_path;
    bool with_metrics = false;
    double overhead_pct = 0.0;
    std::size_t threads = 0;  // 0 = classic single-kernel fleet
    bool reconfig = false;
    bool parallel_suite = false;
    double parallel_check = 0.0;
    bool barrier_breakdown = false;
    std::uint64_t checkpoint_every = 0;
    bool mega_smoke = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--servers") {
            sizes = {static_cast<std::size_t>(std::strtoull(next(), nullptr, 10))};
        } else if (arg == "--sim-seconds") {
            measure_ms = static_cast<SimTime>(std::strtoll(next(), nullptr, 10)) *
                         1000;
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--check") {
            check_path = next();
        } else if (arg == "--metrics") {
            with_metrics = true;
        } else if (arg == "--overhead-check") {
            overhead_pct = std::strtod(next(), nullptr);
            if (overhead_pct <= 0.0) {
                std::fprintf(stderr, "--overhead-check needs a positive "
                                     "percentage\n");
                return 2;
            }
        } else if (arg == "--threads") {
            threads = static_cast<std::size_t>(
                std::strtoull(next(), nullptr, 10));
            if (threads == 0) {
                std::fprintf(stderr, "--threads needs a positive count\n");
                return 2;
            }
        } else if (arg == "--journal") {
            journal_path = next();
        } else if (arg == "--reconfig") {
            reconfig = true;
        } else if (arg == "--parallel-suite") {
            parallel_suite = true;
        } else if (arg == "--parallel-check") {
            parallel_check = std::strtod(next(), nullptr);
            if (parallel_check <= 0.0) {
                std::fprintf(stderr, "--parallel-check needs a positive "
                                     "minimum speedup\n");
                return 2;
            }
        } else if (arg == "--barrier-breakdown") {
            barrier_breakdown = true;
        } else if (arg == "--checkpoint-every") {
            checkpoint_every = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--mega-smoke") {
            mega_smoke = true;
        } else if (arg == "--policy") {
            const char* name = next();
            if (!policy::ParsePolicyKind(name, &g_policy)) {
                std::fprintf(stderr,
                             "--policy must be three_band|predictive|"
                             "waterfill|fairshare; got '%s'\n",
                             name);
                return 2;
            }
        } else if (arg == "--scenario") {
            try {
                g_scenario = replay::ParseScenarioSpec(next());
            } catch (const std::invalid_argument& e) {
                std::fprintf(stderr, "--scenario: %s\n", e.what());
                return 2;
            }
            g_scenario_set = true;
        } else if (arg == "--gpu-fraction") {
            g_gpu_fraction = std::strtod(next(), nullptr);
            if (g_gpu_fraction < 0.0 || g_gpu_fraction > 1.0) {
                std::fprintf(stderr, "--gpu-fraction must be in [0,1]\n");
                return 2;
            }
        } else if (arg == "--sensorless-fraction") {
            g_sensorless_fraction = std::strtod(next(), nullptr);
            if (g_sensorless_fraction < 0.0 || g_sensorless_fraction > 1.0) {
                std::fprintf(stderr,
                             "--sensorless-fraction must be in [0,1]\n");
                return 2;
            }
        } else {
            std::fprintf(stderr,
                         "usage: %s [--servers N] [--sim-seconds S] "
                         "[--out FILE] [--check BASELINE] [--metrics] "
                         "[--overhead-check PCT] [--threads N] "
                         "[--journal FILE] [--reconfig] [--parallel-suite] "
                         "[--parallel-check MIN_SPEEDUP] "
                         "[--barrier-breakdown] [--checkpoint-every N] "
                         "[--mega-smoke] [--policy NAME] "
                         "[--scenario NAME[(k=v,...)]] [--gpu-fraction F] "
                         "[--sensorless-fraction F]\n",
                         argv[0]);
            return 2;
        }
    }

#ifndef NDEBUG
    std::fprintf(stderr,
                 "warning: debug build; throughput numbers are not "
                 "comparable to the committed Release baseline\n");
#endif

    if (mega_smoke) return RunMegaSmoke();

    if (parallel_check > 0.0) {
        // CI determinism + scaling gate. The scaling half only means
        // something when the host can actually run 4 workers at once;
        // detect that at runtime instead of trusting the CI label.
        const unsigned host_cores = std::thread::hardware_concurrency();
        const bool assert_speedup = host_cores >= 4;
        if (!assert_speedup) {
            std::printf("NOTICE: host reports %u core%s (< 4); the >= %.2fx "
                        "speedup assertion is SKIPPED (4 workers would be "
                        "time-sliced). Determinism byte-compare still "
                        "enforced.\n",
                        host_cores, host_cores == 1 ? "" : "s",
                        parallel_check);
        }
        bool ok = true;
        for (const std::size_t n : sizes) {
            std::printf("parallel check at %zu servers: 1-thread arm...\n", n);
            std::fflush(stdout);
            const ParallelResult serial =
                RunParallelSuite(n, measure_ms, 1, reconfig, checkpoint_every);
            std::printf("  1 thread: %.2fM events/s (%zu shards)\n"
                        "parallel check at %zu servers: 4-thread arm...\n",
                        serial.events_per_sec / 1e6, serial.shards, n);
            std::fflush(stdout);
            const ParallelResult wide =
                RunParallelSuite(n, measure_ms, 4, reconfig, checkpoint_every);
            const double speedup =
                serial.events_per_sec > 0.0
                    ? wide.events_per_sec / serial.events_per_sec
                    : 0.0;
            if (wide.journal_bytes != serial.journal_bytes) {
                std::fprintf(stderr,
                             "DETERMINISM FAILURE: %zu servers, 4-thread "
                             "journal (fnv 0x%016llx) differs from 1-thread "
                             "(fnv 0x%016llx)\n",
                             n,
                             static_cast<unsigned long long>(wide.journal_fnv),
                             static_cast<unsigned long long>(
                                 serial.journal_fnv));
                ok = false;
            }
            if (assert_speedup && speedup < parallel_check) {
                std::fprintf(stderr,
                             "SCALING FAILURE: %zu servers, 4 threads ran "
                             "%.2fx the 1-thread throughput (%.0f vs %.0f "
                             "events/s), need >= %.2fx\n",
                             n, speedup, wide.events_per_sec,
                             serial.events_per_sec, parallel_check);
                ok = false;
            }
            if (ok) {
                std::printf("  4 threads: %.2fM events/s, %.2fx speedup%s, "
                            "journal identical (fnv 0x%016llx)\n",
                            wide.events_per_sec / 1e6, speedup,
                            assert_speedup ? "" : " (not asserted)",
                            static_cast<unsigned long long>(wide.journal_fnv));
            }
            if (barrier_breakdown) {
                PrintBarrierBreakdown(serial.profile);
            }
        }
        return ok ? 0 : 1;
    }

    if (parallel_suite || threads > 0) {
        // Sharded-engine measurements. --parallel-suite sweeps the
        // scaling curves (including the 1 M-server suite, at a shorter
        // measurement so the sweep stays minutes, not hours); plain
        // --threads measures the requested sizes at one pool width.
        if (parallel_suite) sizes = {10'000, 100'000, 1'000'000};
        const std::vector<std::size_t> widths =
            parallel_suite ? std::vector<std::size_t>{1, 2, 4, 8}
                           : std::vector<std::size_t>{threads};
        std::vector<ParallelResult> results;
        for (const std::size_t n : sizes) {
            const SimTime size_measure_ms =
                (parallel_suite && n >= 1'000'000)
                    ? std::min<SimTime>(measure_ms, 27'000)
                    : measure_ms;
            for (const std::size_t t : widths) {
                std::printf("running sharded %zu-server suite, %zu thread%s "
                            "(%lld sim-seconds)...\n",
                            n, t, t == 1 ? "" : "s",
                            static_cast<long long>(size_measure_ms / 1000));
                std::fflush(stdout);
                results.push_back(RunParallelSuite(n, size_measure_ms, t,
                                                   reconfig,
                                                   checkpoint_every));
                const ParallelResult& r = results.back();
                std::printf("  %zu shards: %.2fM events/s, journal fnv "
                            "0x%016llx\n",
                            r.shards, r.events_per_sec / 1e6,
                            static_cast<unsigned long long>(r.journal_fnv));
                if (barrier_breakdown) PrintBarrierBreakdown(r.profile);
                std::fflush(stdout);
            }
        }
        if (!journal_path.empty()) {
            const ParallelResult& last = results.back();
            std::ofstream out(journal_path, std::ios::binary);
            if (!out) {
                std::fprintf(stderr, "cannot write %s\n",
                             journal_path.c_str());
                return 1;
            }
            out << last.journal_bytes;
            std::printf("wrote %s (%zu bytes)\n", journal_path.c_str(),
                        last.journal_bytes.size());
        }
        const std::string json = ParallelToJson(results);
        if (parallel_suite) {
            const std::string path =
                out_path.empty() ? "BENCH_PARALLEL.json" : out_path;
            std::ofstream out(path);
            out << json;
            std::printf("wrote %s\n", path.c_str());
        } else if (!out_path.empty()) {
            std::ofstream out(out_path);
            out << json;
            std::printf("wrote %s\n", out_path.c_str());
        } else {
            std::printf("%s", json.c_str());
        }
        return 0;
    }

    if (overhead_pct > 0.0) {
        // Instrumentation-overhead gate: alternate off/on arms so slow
        // drift (turbo, thermal, noisy neighbours) biases neither.
        bool ok = true;
        for (const std::size_t n : sizes) {
            constexpr int kReps = 3;
            double best_off = 0.0;
            double best_on = 0.0;
            for (int rep = 0; rep < kReps; ++rep) {
                std::printf("overhead rep %d/%d at %zu servers...\n", rep + 1,
                            kReps, n);
                std::fflush(stdout);
                best_off = std::max(
                    best_off,
                    RunSuite(n, measure_ms, /*with_metrics=*/false)
                        .events_per_sec);
                best_on = std::max(
                    best_on,
                    RunSuite(n, measure_ms, /*with_metrics=*/true)
                        .events_per_sec);
            }
            const double floor = best_off * (1.0 - overhead_pct / 100.0);
            const double drop =
                best_off > 0.0 ? 100.0 * (1.0 - best_on / best_off) : 0.0;
            if (best_on < floor) {
                std::fprintf(stderr,
                             "METRICS OVERHEAD: %zu servers ran at %.0f "
                             "events/s with metrics vs %.0f without "
                             "(%.1f%% drop, budget %.1f%%)\n",
                             n, best_on, best_off, drop, overhead_pct);
                ok = false;
            } else {
                std::printf("overhead check ok: %zu servers, metrics-on %.0f "
                            "events/s vs metrics-off %.0f (%.1f%% drop, "
                            "budget %.1f%%)\n",
                            n, best_on, best_off, drop, overhead_pct);
            }
        }
        return ok ? 0 : 1;
    }

    std::vector<SuiteResult> results;
    for (const std::size_t n : sizes) {
        std::printf("running %zu-server suite (%lld sim-seconds)%s...\n", n,
                    static_cast<long long>(measure_ms / 1000),
                    with_metrics ? " with metrics" : "");
        std::fflush(stdout);
        results.push_back(RunSuite(n, measure_ms, with_metrics));
        const SuiteResult& r = results.back();
        std::printf(
            "  %zu servers: %.2fM events/s, %.0fx real-time, "
            "leaf cycle p50/p99 %.0f/%.0f us, upper %.0f/%.0f us\n",
            r.servers, r.events_per_sec / 1e6, r.realtime_ratio, r.leaf_p50_us,
            r.leaf_p99_us, r.upper_p50_us, r.upper_p99_us);
        if (r.metrics_on) {
            std::printf("  telemetry: %llu rpc calls counted, %llu decision "
                        "spans\n",
                        static_cast<unsigned long long>(r.rpc_calls),
                        static_cast<unsigned long long>(r.spans));
        }
        std::fflush(stdout);
    }

    const std::string json = ToJson(results);
    if (!out_path.empty()) {
        std::ofstream out(out_path);
        out << json;
        std::printf("wrote %s\n", out_path.c_str());
    } else {
        std::printf("%s", json.c_str());
    }

    if (!check_path.empty()) {
        std::ifstream in(check_path);
        if (!in) {
            std::fprintf(stderr, "cannot read baseline %s\n",
                         check_path.c_str());
            return 1;
        }
        std::stringstream buffer;
        buffer << in.rdbuf();
        const std::string baseline = buffer.str();
        bool ok = true;
        for (const SuiteResult& r : results) {
            double want = 0.0;
            if (!BaselineThroughput(baseline, r.servers, &want)) {
                std::fprintf(stderr,
                             "baseline has no %zu-server suite; skipping\n",
                             r.servers);
                continue;
            }
            const double floor = want / 3.0;
            if (r.events_per_sec < floor) {
                std::fprintf(stderr,
                             "PERF REGRESSION: %zu servers ran at %.0f "
                             "events/s, baseline %.0f (floor %.0f)\n",
                             r.servers, r.events_per_sec, want, floor);
                ok = false;
            } else {
                std::printf("perf check ok: %zu servers at %.0f events/s "
                            "(baseline %.0f, floor %.0f)\n",
                            r.servers, r.events_per_sec, want, floor);
            }
        }
        if (!ok) return 1;
    }
    return 0;
}
