/**
 * @file
 * Fleet-scale control-plane throughput benchmark.
 *
 * Instantiates the full Dynamo control plane — agents, leaf
 * controllers (3 s pull cycles), SB/MSB upper controllers (9 s
 * cycles) — over 1 k / 10 k / 100 k servers and measures how fast the
 * event kernel and the controller hot paths execute it:
 *
 *   - events/sec through the timing-wheel kernel,
 *   - sim-time / wall-time ratio (how many times faster than real
 *     time the suite simulates),
 *   - p50/p99 wall cost of one leaf / upper RunCycle dispatch (the
 *     pull fan-out, the per-cycle hot path).
 *
 * Modes:
 *   bench_scale_throughput                      # full 1k/10k/100k suite
 *   bench_scale_throughput --servers 10000      # one size only
 *   bench_scale_throughput --out BENCH_SCALE.json
 *   bench_scale_throughput --servers 1000 --check BENCH_SCALE.json
 *   bench_scale_throughput --metrics            # instrumented run
 *   bench_scale_throughput --servers 10000 --overhead-check 5
 *
 * --check is the CI perf smoke: it compares measured events/sec
 * against the committed baseline and exits non-zero on a >3x
 * regression (generous enough to absorb shared-runner noise, tight
 * enough to catch an accidental O(n log n) -> O(n^2) slip).
 *
 * --metrics wires the telemetry registry + decision-trace log into the
 * transport, every agent, and every controller — the instrumented
 * configuration the fleet harness runs with by default.
 *
 * --overhead-check PCT measures instrumentation cost: for each size it
 * runs metrics-off and metrics-on suites alternating (best-of-3 each,
 * interleaved so thermal/scheduler drift hits both arms equally) and
 * exits non-zero when metrics-on throughput lands more than PCT
 * percent below metrics-off.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/agent.h"
#include "core/leaf_controller.h"
#include "core/upper_controller.h"
#include "power/topology.h"
#include "rpc/transport.h"
#include "server/sim_server.h"
#include "sim/simulation.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "workload/load_process.h"

namespace dynamo {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kServersPerLeaf = 240;
constexpr std::size_t kLeavesPerSb = 8;
constexpr std::size_t kSbsPerMsb = 4;

/** Leaf controller that wall-times each pull-cycle dispatch. */
class TimedLeaf : public core::LeafController
{
  public:
    using core::LeafController::LeafController;

    void set_samples(std::vector<double>* samples) { samples_ = samples; }

  protected:
    void RunCycle() override
    {
        const Clock::time_point t0 = Clock::now();
        core::LeafController::RunCycle();
        samples_->push_back(
            std::chrono::duration<double, std::micro>(Clock::now() - t0)
                .count());
    }

  private:
    std::vector<double>* samples_ = nullptr;
};

/** Upper controller that wall-times each pull-cycle dispatch. */
class TimedUpper : public core::UpperController
{
  public:
    using core::UpperController::UpperController;

    void set_samples(std::vector<double>* samples) { samples_ = samples; }

  protected:
    void RunCycle() override
    {
        const Clock::time_point t0 = Clock::now();
        core::UpperController::RunCycle();
        samples_->push_back(
            std::chrono::duration<double, std::micro>(Clock::now() - t0)
                .count());
    }

  private:
    std::vector<double>* samples_ = nullptr;
};

double
Percentile(std::vector<double> values, double p)
{
    if (values.empty()) return 0.0;
    std::sort(values.begin(), values.end());
    const std::size_t idx = std::min(
        values.size() - 1,
        static_cast<std::size_t>(p * static_cast<double>(values.size())));
    return values[idx];
}

struct SuiteResult
{
    std::size_t servers = 0;
    std::size_t leaf_controllers = 0;
    std::size_t upper_controllers = 0;
    double sim_seconds = 0.0;
    double wall_seconds = 0.0;
    std::uint64_t events = 0;
    double events_per_sec = 0.0;
    double realtime_ratio = 0.0;
    double leaf_p50_us = 0.0;
    double leaf_p99_us = 0.0;
    double upper_p50_us = 0.0;
    double upper_p99_us = 0.0;
    bool metrics_on = false;
    std::uint64_t rpc_calls = 0;
    std::uint64_t spans = 0;
};

SuiteResult
RunSuite(std::size_t n_servers, SimTime measure_ms, bool with_metrics)
{
    sim::Simulation sim;
    rpc::SimTransport transport(sim, /*seed=*/1234);
    telemetry::MetricsRegistry registry;
    telemetry::TraceLog traces;
    if (with_metrics) transport.AttachMetrics(&registry);
    Rng rng(n_servers * 0x9e3779b97f4a7c15ULL + 7);

    const std::size_t n_leaves =
        (n_servers + kServersPerLeaf - 1) / kServersPerLeaf;
    const std::size_t n_sbs = (n_leaves + kLeavesPerSb - 1) / kLeavesPerSb;
    const std::size_t n_msbs =
        n_sbs > 1 ? (n_sbs + kSbsPerMsb - 1) / kSbsPerMsb : 0;

    // --- Servers and agents ---
    std::vector<std::unique_ptr<server::SimServer>> servers;
    std::vector<std::unique_ptr<core::DynamoAgent>> agents;
    servers.reserve(n_servers);
    agents.reserve(n_servers);
    const workload::ServiceType services[] = {
        workload::ServiceType::kWeb, workload::ServiceType::kCache,
        workload::ServiceType::kHadoop, workload::ServiceType::kDatabase};
    for (std::size_t i = 0; i < n_servers; ++i) {
        server::SimServer::Config config;
        config.name = "srv" + std::to_string(i);
        config.service = services[i % 4];
        config.generation = (i % 10 < 7)
                                ? server::ServerGeneration::kHaswell2015
                                : server::ServerGeneration::kWestmere2011;
        config.seed = rng.NextU64();
        workload::LoadProcessParams params =
            workload::LoadProcessParams::For(config.service);
        params.base_util = rng.Uniform(0.35, 0.75);
        params.spike_rate_per_hour = 0.0;  // steady-state throughput run
        servers.push_back(std::make_unique<server::SimServer>(
            std::move(config), params));
        agents.push_back(std::make_unique<core::DynamoAgent>(
            sim, transport, *servers.back(), "agent:" + std::to_string(i)));
        if (with_metrics) agents.back()->AttachMetrics(&registry);
    }

    // --- Leaf controllers, one per RPP ---
    std::vector<std::unique_ptr<power::PowerDevice>> devices;
    std::vector<std::unique_ptr<TimedLeaf>> leaves;
    std::vector<double> leaf_samples;
    std::vector<Watts> leaf_rated;
    devices.reserve(n_leaves);
    leaves.reserve(n_leaves);
    for (std::size_t l = 0; l < n_leaves; ++l) {
        const std::size_t first = l * kServersPerLeaf;
        const std::size_t last = std::min(first + kServersPerLeaf, n_servers);

        // Size the breaker just above the domain's initial draw so the
        // three-band policy works near its thresholds: OU load noise
        // pushes the aggregate across the cap/uncap bands and the
        // capping hot path (plan + RAPL fan-out) actually runs.
        Watts draw = 0.0;
        for (std::size_t i = first; i < last; ++i) draw += servers[i]->PowerAt(0);
        const Watts rated = draw / 0.965;
        leaf_rated.push_back(rated);
        devices.push_back(power::BuildRpp("rpp" + std::to_string(l), rated,
                                          /*quota=*/0.95 * rated));

        core::LeafController::Config config;
        auto leaf = std::make_unique<TimedLeaf>(
            sim, transport, "ctl:rpp:" + std::to_string(l), *devices.back(),
            config, /*log=*/nullptr);
        leaf->set_samples(&leaf_samples);
        for (std::size_t i = first; i < last; ++i) {
            core::AgentInfo info;
            info.endpoint = agents[i]->endpoint();
            info.service = servers[i]->service();
            info.priority_group = static_cast<int>(i % 3);
            info.sla_min_cap = 70.0 + static_cast<double>(i % 3) * 15.0;
            leaf->AddAgent(std::move(info));
        }
        if (with_metrics) leaf->AttachTelemetry(&registry, &traces);
        // Stagger activation so hundreds of controllers don't pull in
        // lock-step (the deployment does the same).
        leaf->Activate(static_cast<SimTime>((l * 37) % 3000));
        leaves.push_back(std::move(leaf));
    }

    // --- Upper controllers: SBs over leaves, MSBs over SBs ---
    std::vector<std::unique_ptr<TimedUpper>> uppers;
    std::vector<double> upper_samples;
    std::vector<Watts> sb_rated;
    for (std::size_t s = 0; s < n_sbs; ++s) {
        const std::size_t first = s * kLeavesPerSb;
        const std::size_t last = std::min(first + kLeavesPerSb, n_leaves);
        Watts rated = 0.0;
        for (std::size_t l = first; l < last; ++l) rated += leaf_rated[l];
        rated *= 0.99;  // slightly oversubscribed, as real SBs are
        sb_rated.push_back(rated);

        core::UpperController::Config config;
        auto sb = std::make_unique<TimedUpper>(
            sim, transport, "ctl:sb:" + std::to_string(s), rated,
            /*quota=*/0.95 * rated, config, /*log=*/nullptr);
        sb->set_samples(&upper_samples);
        for (std::size_t l = first; l < last; ++l) {
            sb->AddChild("ctl:rpp:" + std::to_string(l));
        }
        if (with_metrics) sb->AttachTelemetry(&registry, &traces);
        sb->Activate(static_cast<SimTime>((s * 113) % 9000));
        uppers.push_back(std::move(sb));
    }
    for (std::size_t m = 0; m < n_msbs; ++m) {
        const std::size_t first = m * kSbsPerMsb;
        const std::size_t last = std::min(first + kSbsPerMsb, n_sbs);
        Watts rated = 0.0;
        for (std::size_t s = first; s < last; ++s) rated += sb_rated[s];
        rated *= 0.99;

        core::UpperController::Config config;
        auto msb = std::make_unique<TimedUpper>(
            sim, transport, "ctl:msb:" + std::to_string(m), rated,
            /*quota=*/0.95 * rated, config, /*log=*/nullptr);
        msb->set_samples(&upper_samples);
        for (std::size_t s = first; s < last; ++s) {
            msb->AddChild("ctl:sb:" + std::to_string(s));
        }
        if (with_metrics) msb->AttachTelemetry(&registry, &traces);
        msb->Activate(static_cast<SimTime>((m * 199) % 9000));
        uppers.push_back(std::move(msb));
    }

    // --- Warm up, then measure ---
    constexpr SimTime kWarmupMs = 15'000;
    sim.RunFor(kWarmupMs);
    leaf_samples.clear();
    upper_samples.clear();

    const std::uint64_t events_before = sim.events_executed();
    const Clock::time_point wall_start = Clock::now();
    sim.RunFor(measure_ms);
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - wall_start).count();
    const std::uint64_t events = sim.events_executed() - events_before;

    SuiteResult result;
    result.servers = n_servers;
    result.leaf_controllers = n_leaves;
    result.upper_controllers = uppers.size();
    result.sim_seconds = static_cast<double>(measure_ms) / 1000.0;
    result.wall_seconds = wall_s;
    result.events = events;
    result.events_per_sec =
        wall_s > 0.0 ? static_cast<double>(events) / wall_s : 0.0;
    result.realtime_ratio = wall_s > 0.0 ? result.sim_seconds / wall_s : 0.0;
    result.leaf_p50_us = Percentile(leaf_samples, 0.50);
    result.leaf_p99_us = Percentile(leaf_samples, 0.99);
    result.upper_p50_us = Percentile(upper_samples, 0.50);
    result.upper_p99_us = Percentile(upper_samples, 0.99);
    result.metrics_on = with_metrics;
    if (with_metrics) {
        // Kernel counters sit below telemetry; snapshot them into
        // gauges here, the way the fleet harness does.
        const sim::KernelStats& ks = sim.kernel_stats();
        registry.GetGauge("sim.cascades")->Set(static_cast<double>(ks.cascades));
        registry.GetGauge("sim.far_drains")
            ->Set(static_cast<double>(ks.far_drains));
        registry.GetGauge("sim.purges")->Set(static_cast<double>(ks.purges));
        registry.GetGauge("sim.slot_sorts")
            ->Set(static_cast<double>(ks.slot_sorts));
        if (telemetry::Counter* calls = registry.GetCounter("rpc.calls")) {
            result.rpc_calls = calls->value();
        }
        result.spans = traces.total_appended();
    }
    return result;
}

std::string
ToJson(const std::vector<SuiteResult>& results)
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"bench\": \"scale_throughput\",\n";
#ifdef NDEBUG
    out << "  \"build\": \"release\",\n";
#else
    out << "  \"build\": \"debug\",\n";
#endif
    out << "  \"cycle_cost_note\": \"leaf/upper cycle cost is the wall time "
           "of one RunCycle pull fan-out dispatch\",\n";
    out << "  \"suites\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SuiteResult& r = results[i];
        char buf[1024];
        std::snprintf(
            buf, sizeof(buf),
            "    {\n"
            "      \"servers\": %zu,\n"
            "      \"leaf_controllers\": %zu,\n"
            "      \"upper_controllers\": %zu,\n"
            "      \"sim_seconds\": %.1f,\n"
            "      \"wall_seconds\": %.4f,\n"
            "      \"events_executed\": %llu,\n"
            "      \"events_per_sec\": %.0f,\n"
            "      \"realtime_ratio\": %.1f,\n"
            "      \"leaf_cycle_us\": {\"p50\": %.1f, \"p99\": %.1f},\n"
            "      \"upper_cycle_us\": {\"p50\": %.1f, \"p99\": %.1f}\n"
            "    }%s\n",
            r.servers, r.leaf_controllers, r.upper_controllers, r.sim_seconds,
            r.wall_seconds, static_cast<unsigned long long>(r.events),
            r.events_per_sec, r.realtime_ratio, r.leaf_p50_us, r.leaf_p99_us,
            r.upper_p50_us, r.upper_p99_us,
            i + 1 < results.size() ? "," : "");
        out << buf;
    }
    out << "  ]\n";
    out << "}\n";
    return out.str();
}

/**
 * Pull one suite's events/sec out of a baseline BENCH_SCALE.json.
 * Hand-rolled scan (no JSON dependency): finds the `"servers": N`
 * entry, then the following `"events_per_sec"` value.
 */
bool
BaselineThroughput(const std::string& json, std::size_t servers, double* out)
{
    const std::string anchor = "\"servers\": " + std::to_string(servers);
    const std::size_t at = json.find(anchor);
    if (at == std::string::npos) return false;
    const std::string key = "\"events_per_sec\": ";
    const std::size_t kat = json.find(key, at);
    if (kat == std::string::npos) return false;
    *out = std::strtod(json.c_str() + kat + key.size(), nullptr);
    return *out > 0.0;
}

}  // namespace
}  // namespace dynamo

int
main(int argc, char** argv)
{
    using namespace dynamo;

    std::vector<std::size_t> sizes = {1'000, 10'000, 100'000};
    SimTime measure_ms = 60'000;
    std::string out_path;
    std::string check_path;
    bool with_metrics = false;
    double overhead_pct = 0.0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--servers") {
            sizes = {static_cast<std::size_t>(std::strtoull(next(), nullptr, 10))};
        } else if (arg == "--sim-seconds") {
            measure_ms = static_cast<SimTime>(std::strtoll(next(), nullptr, 10)) *
                         1000;
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--check") {
            check_path = next();
        } else if (arg == "--metrics") {
            with_metrics = true;
        } else if (arg == "--overhead-check") {
            overhead_pct = std::strtod(next(), nullptr);
            if (overhead_pct <= 0.0) {
                std::fprintf(stderr, "--overhead-check needs a positive "
                                     "percentage\n");
                return 2;
            }
        } else {
            std::fprintf(stderr,
                         "usage: %s [--servers N] [--sim-seconds S] "
                         "[--out FILE] [--check BASELINE] [--metrics] "
                         "[--overhead-check PCT]\n",
                         argv[0]);
            return 2;
        }
    }

#ifndef NDEBUG
    std::fprintf(stderr,
                 "warning: debug build; throughput numbers are not "
                 "comparable to the committed Release baseline\n");
#endif

    if (overhead_pct > 0.0) {
        // Instrumentation-overhead gate: alternate off/on arms so slow
        // drift (turbo, thermal, noisy neighbours) biases neither.
        bool ok = true;
        for (const std::size_t n : sizes) {
            constexpr int kReps = 3;
            double best_off = 0.0;
            double best_on = 0.0;
            for (int rep = 0; rep < kReps; ++rep) {
                std::printf("overhead rep %d/%d at %zu servers...\n", rep + 1,
                            kReps, n);
                std::fflush(stdout);
                best_off = std::max(
                    best_off,
                    RunSuite(n, measure_ms, /*with_metrics=*/false)
                        .events_per_sec);
                best_on = std::max(
                    best_on,
                    RunSuite(n, measure_ms, /*with_metrics=*/true)
                        .events_per_sec);
            }
            const double floor = best_off * (1.0 - overhead_pct / 100.0);
            const double drop =
                best_off > 0.0 ? 100.0 * (1.0 - best_on / best_off) : 0.0;
            if (best_on < floor) {
                std::fprintf(stderr,
                             "METRICS OVERHEAD: %zu servers ran at %.0f "
                             "events/s with metrics vs %.0f without "
                             "(%.1f%% drop, budget %.1f%%)\n",
                             n, best_on, best_off, drop, overhead_pct);
                ok = false;
            } else {
                std::printf("overhead check ok: %zu servers, metrics-on %.0f "
                            "events/s vs metrics-off %.0f (%.1f%% drop, "
                            "budget %.1f%%)\n",
                            n, best_on, best_off, drop, overhead_pct);
            }
        }
        return ok ? 0 : 1;
    }

    std::vector<SuiteResult> results;
    for (const std::size_t n : sizes) {
        std::printf("running %zu-server suite (%lld sim-seconds)%s...\n", n,
                    static_cast<long long>(measure_ms / 1000),
                    with_metrics ? " with metrics" : "");
        std::fflush(stdout);
        results.push_back(RunSuite(n, measure_ms, with_metrics));
        const SuiteResult& r = results.back();
        std::printf(
            "  %zu servers: %.2fM events/s, %.0fx real-time, "
            "leaf cycle p50/p99 %.0f/%.0f us, upper %.0f/%.0f us\n",
            r.servers, r.events_per_sec / 1e6, r.realtime_ratio, r.leaf_p50_us,
            r.leaf_p99_us, r.upper_p50_us, r.upper_p99_us);
        if (r.metrics_on) {
            std::printf("  telemetry: %llu rpc calls counted, %llu decision "
                        "spans\n",
                        static_cast<unsigned long long>(r.rpc_calls),
                        static_cast<unsigned long long>(r.spans));
        }
        std::fflush(stdout);
    }

    const std::string json = ToJson(results);
    if (!out_path.empty()) {
        std::ofstream out(out_path);
        out << json;
        std::printf("wrote %s\n", out_path.c_str());
    } else {
        std::printf("%s", json.c_str());
    }

    if (!check_path.empty()) {
        std::ifstream in(check_path);
        if (!in) {
            std::fprintf(stderr, "cannot read baseline %s\n",
                         check_path.c_str());
            return 1;
        }
        std::stringstream buffer;
        buffer << in.rdbuf();
        const std::string baseline = buffer.str();
        bool ok = true;
        for (const SuiteResult& r : results) {
            double want = 0.0;
            if (!BaselineThroughput(baseline, r.servers, &want)) {
                std::fprintf(stderr,
                             "baseline has no %zu-server suite; skipping\n",
                             r.servers);
                continue;
            }
            const double floor = want / 3.0;
            if (r.events_per_sec < floor) {
                std::fprintf(stderr,
                             "PERF REGRESSION: %zu servers ran at %.0f "
                             "events/s, baseline %.0f (floor %.0f)\n",
                             r.servers, r.events_per_sec, want, floor);
                ok = false;
            } else {
                std::printf("perf check ok: %zu servers at %.0f events/s "
                            "(baseline %.0f, floor %.0f)\n",
                            r.servers, r.events_per_sec, want, floor);
            }
        }
        if (!ok) return 1;
    }
    return 0;
}
