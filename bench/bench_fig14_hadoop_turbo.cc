/**
 * @file
 * Figure 14: Dynamo-enabled dynamic power oversubscription for a
 * production Hadoop cluster (Prineville).
 *
 * Turbo Boost (+13 % performance / +20 % power) is enabled for every
 * Hadoop server even though the cluster's power plan has no margin for
 * it. Over 24 hours the SB power hugs — but stays below — its limit,
 * with Dynamo capping a few hundred servers during the handful of
 * episodes where Turbo power would have exceeded the budget.
 */
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/units.h"
#include "fleet/fleet.h"
#include "telemetry/event_log.h"

using namespace dynamo;

namespace {

fleet::FleetSpec
HadoopSpec(bool turbo)
{
    fleet::FleetSpec spec;
    spec.scope = fleet::FleetScope::kSb;
    spec.topology.rpps_per_sb = 4;
    spec.topology.sb_rated = 274e3;
    spec.topology.rpp_rated = 95e3;
    spec.topology.quota_fill = 1.0;
    spec.servers_per_rpp = 250;  // 1 K servers (paper: several thousand)
    spec.mix = fleet::ServiceMix::Single(workload::ServiceType::kHadoop);
    spec.haswell_fraction = 1.0;
    spec.diurnal_amplitude = 0.0;
    spec.turbo_enabled = turbo;
    spec.seed = 31;

    return spec;
}

}  // namespace

int
main()
{
    bench::Banner("Fig. 14", "Hadoop + Turbo Boost under the SB power budget");

    // Hadoop job waves: map-reduce stages sweep load up and down every
    // ~45 minutes (the fluctuation that makes Fig. 14's SB power hug
    // its limit and trip capping episodically).
    auto add_waves = [](fleet::Fleet& f) {
        for (int k = 0; k <= 16; ++k) {
            f.scenario().AddPoint(k * Minutes(23), k % 2 == 0 ? 0.87 : 1.07);
        }
    };
    fleet::Fleet fleet(HadoopSpec(/*turbo=*/true));
    add_waves(fleet);
    const Watts limit = 274e3;

    std::printf("SB limit=%.0f KW, %zu Hadoop servers, Turbo ON fleet-wide\n"
                "(scaled from the paper's 1250 KW SB / several thousand servers)\n\n",
                limit / 1000, fleet.servers().size());
    std::printf("%8s %12s %14s\n", "t(h)", "SB(KW)", "capped servers");
    double peak_kw = 0.0;
    std::size_t max_capped = 0;
    for (int half_hour = 1; half_hour <= 24; ++half_hour) {
        fleet.RunFor(Minutes(15));
        const double kw = fleet.TotalPower() / 1000.0;
        peak_kw = std::max(peak_kw, kw);
        std::size_t capped = 0;
        for (const auto& srv : fleet.servers()) {
            if (srv->capped()) ++capped;
        }
        max_capped = std::max(max_capped, capped);
        std::printf("%8.1f %12.1f %14zu\n", half_hour * 0.25, kw, capped);
    }

    const auto* log = fleet.event_log();
    const std::size_t episodes = log->CappingEpisodes("ctl:sb0");

    // Work delivered vs a no-turbo baseline over the same interval.
    double turbo_work = 0.0;
    for (const auto& srv : fleet.servers()) turbo_work += srv->delivered_work();
    fleet::Fleet baseline(HadoopSpec(/*turbo=*/false));
    add_waves(baseline);
    baseline.RunFor(Hours(6));
    double base_work = 0.0;
    for (const auto& srv : baseline.servers()) {
        base_work += srv->delivered_work();
    }

    std::printf("\nHeadline comparison:\n");
    bench::Compare("SB peak power stays below limit", limit / 1000.0, peak_kw,
                   "KW");
    bench::Compare("SB capping episodes (paper: 7 in 24 h; here 6 h)", 7.0,
                   static_cast<double>(episodes), "episodes");
    bench::Compare("servers throttled per episode (paper 600-900 of ~5000)", 150.0,
                   static_cast<double>(max_capped), "servers");
    bench::Compare("map-reduce performance gain from Turbo", 13.0,
                   100.0 * (turbo_work / base_work - 1.0), "%");
    std::printf("  outages: %zu (Dynamo as the safety net for Turbo)\n",
                fleet.outage_count());
    return 0;
}
