/**
 * @file
 * Shared helpers for the experiment benches.
 *
 * Each bench binary regenerates one table or figure from the paper's
 * evaluation and prints (a) the series/rows the figure plots and (b) a
 * PAPER-vs-MEASURED comparison for its headline numbers. Absolute
 * watts differ from Facebook's fleet (our substrate is synthetic); the
 * reproduction target is the shape: who wins, by what factor, where
 * the crossovers fall. See EXPERIMENTS.md.
 */
#ifndef DYNAMO_BENCH_BENCH_UTIL_H_
#define DYNAMO_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "workload/load_process.h"

namespace dynamo::bench {

/** Banner naming the experiment. */
inline void
Banner(const std::string& id, const std::string& title)
{
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", id.c_str(), title.c_str());
    std::printf("==============================================================\n");
}

/** One paper-vs-measured comparison row. */
inline void
Compare(const std::string& metric, double paper, double measured,
        const std::string& unit)
{
    std::printf("  %-46s paper=%10.2f  measured=%10.2f %s\n", metric.c_str(),
                paper, measured, unit.c_str());
}

/** A deterministic steady utilization (no noise, no spikes). */
inline workload::LoadProcessParams
SteadyLoad(double util)
{
    workload::LoadProcessParams p;
    p.base_util = util;
    p.ou_sigma = 0.0;
    p.spike_rate_per_hour = 0.0;
    return p;
}

}  // namespace dynamo::bench

#endif  // DYNAMO_BENCH_BENCH_UTIL_H_
