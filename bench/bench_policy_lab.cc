/**
 * @file
 * Policy-lab judge: ablation + chaos shoot-out across capping brains.
 *
 * Every brain in the policy lab (three_band, predictive, waterfill,
 * fairshare) runs the same two campaigns and is scored on the same
 * four axes, so a brain's claimed advantage is paid for in the open:
 *
 *   - watts of headroom recovered: peak draw of an uncontrolled
 *     (no-dynamo) baseline minus the brain's controlled peak;
 *   - time above threshold: ms any controlled device drew above its
 *     effective limit (from the chaos InvariantChecker);
 *   - per-service performance loss: 1 - delivered/demanded work,
 *     split by service type, so a brain that protects web by starving
 *     hadoop shows it;
 *   - flap count: fresh capping episodes begun within the flap window
 *     of the previous release (the controllers' own flap counters).
 *
 * The *ablation* arm is the sustained-overload row from ablation A1:
 * one RPP held 55% over demand for an hour. The *chaos* arm is the
 * partition campaign from the chaos catalogue: a surge forces capping
 * at both levels while one RPP's agents fall off the network.
 *
 *   bench_policy_lab                       # all brains, both arms
 *   bench_policy_lab --servers 1000        # scaled topology
 *   bench_policy_lab --out BENCH_POLICY.json
 *   bench_policy_lab --check BENCH_POLICY.json
 *
 * --check is the CI regression gate: the measured three_band
 * time-above-threshold in the chaos arm must not exceed the committed
 * baseline's by more than 50% (plus one pull cycle of grace for
 * toolchain jitter; the sim itself is deterministic).
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "chaos/campaign.h"
#include "chaos/invariants.h"
#include "common/units.h"
#include "fleet/fleet.h"
#include "fleet/scenarios.h"
#include "policy/capping_policy.h"
#include "sim/simulation.h"
#include "telemetry/event_log.h"
#include "telemetry/metrics.h"
#include "workload/service.h"

using namespace dynamo;

namespace {

constexpr SimTime kFaultStart = Seconds(60);
constexpr SimTime kFaultEnd = Seconds(180);
constexpr SimTime kChaosEnd = Seconds(420);

/** Periodic peak-draw sampler over the fleet's root device. */
class PeakSampler
{
  public:
    explicit PeakSampler(fleet::Fleet& fleet)
    {
        task_ = fleet.sim().SchedulePeriodic(1000, [this, &fleet]() {
            peak_ = std::max(peak_,
                             fleet.root().TotalPower(fleet.sim().Now()));
        });
    }

    ~PeakSampler() { task_.Cancel(); }

    Watts peak() const { return peak_; }

  private:
    Watts peak_ = 0.0;
    sim::TaskHandle task_;
};

struct ArmResult
{
    SimTime over_limit_ms = 0;
    std::uint64_t flaps = 0;
    std::uint64_t violations = 0;
    std::size_t episodes = 0;
    std::size_t outages = 0;
    Watts peak_w = 0.0;
    Watts headroom_recovered_w = 0.0;
    SimTime recovery_ms = -1;  ///< Chaos arm only.

    /** service name -> 1 - delivered/demanded, in [0, 1]. */
    std::map<std::string, double> perf_loss;
};

struct PolicyResult
{
    policy::PolicyKind kind = policy::PolicyKind::kThreeBand;
    ArmResult ablation;
    ArmResult chaos;
};

std::map<std::string, double>
PerServicePerfLoss(const fleet::Fleet& fleet)
{
    std::map<std::string, double> demanded;
    std::map<std::string, double> delivered;
    for (const auto& srv : fleet.servers()) {
        const char* name = workload::ServiceName(srv->service());
        demanded[name] += srv->demanded_work();
        delivered[name] += srv->delivered_work();
    }
    std::map<std::string, double> loss;
    for (const auto& [name, want] : demanded) {
        loss[name] =
            want > 0.0 ? std::max(0.0, 1.0 - delivered[name] / want) : 0.0;
    }
    return loss;
}

std::uint64_t
FlapCount(fleet::Fleet& fleet)
{
    telemetry::MetricsRegistry* metrics = fleet.metrics();
    if (metrics == nullptr) return 0;
    return metrics->GetCounter("leaf.flaps")->value() +
           metrics->GetCounter("upper.flaps")->value();
}

/**
 * Ablation-arm spec: one RPP held 55% over demand for an hour
 * (ablation A1's sustained-overload configuration), scaled so
 * per-server power stays at the 560-server reference point.
 */
fleet::FleetSpec
AblationSpec(std::size_t n_servers)
{
    fleet::FleetSpec spec;
    spec.scope = fleet::FleetScope::kRpp;
    spec.servers_per_rpp = n_servers;
    spec.topology.rpp_rated =
        127.5e3 * static_cast<double>(n_servers) / 560.0;
    spec.mix = fleet::ServiceMix::Single(workload::ServiceType::kWeb);
    spec.diurnal_amplitude = 0.0;
    spec.seed = 71;
    return spec;
}

/**
 * Chaos-arm spec: the tightly-rated 3-RPP SB from the chaos
 * catalogue, scaled from its 540-server reference point.
 */
fleet::FleetSpec
ChaosSpec(std::size_t n_servers)
{
    const std::size_t per_rpp = std::max<std::size_t>(n_servers / 3, 1);
    fleet::FleetSpec spec;
    spec.scope = fleet::FleetScope::kSb;
    spec.topology.rpps_per_sb = 3;
    spec.topology.sb_rated =
        120e3 * static_cast<double>(3 * per_rpp) / 540.0;
    spec.topology.rpp_rated = 45e3 * static_cast<double>(per_rpp) / 180.0;
    spec.topology.quota_fill = 0.95;
    spec.servers_per_rpp = per_rpp;
    spec.mix = fleet::ServiceMix::Datacenter();
    spec.diurnal_amplitude = 0.0;
    spec.sensorless_fraction = 0.0;
    spec.seed = 17;
    return spec;
}

/** Peak draw of the same spec with Dynamo absent (run once per arm). */
Watts
UncontrolledPeak(fleet::FleetSpec spec, bool chaos_arm)
{
    spec.with_dynamo = false;
    fleet::Fleet fleet(spec);
    PeakSampler peak(fleet);
    if (chaos_arm) {
        fleet::ScriptSurgeHold(&fleet.scenario(), Seconds(30), Seconds(20),
                               Seconds(120), 1.6);
        fleet.RunFor(kChaosEnd);
    } else {
        fleet.scenario().AddPoint(0, 1.0);
        fleet.scenario().AddPoint(Minutes(5), 1.55);
        fleet.scenario().AddPoint(Minutes(60), 1.55);
        fleet.RunFor(Minutes(60));
    }
    return peak.peak();
}

ArmResult
RunAblation(policy::PolicyKind kind, std::size_t n_servers,
            Watts uncontrolled_peak)
{
    fleet::FleetSpec spec = AblationSpec(n_servers);
    spec.deployment.leaf.capping_policy = kind;
    spec.deployment.upper.capping_policy = kind;
    fleet::Fleet fleet(spec);
    chaos::InvariantChecker checker(fleet);
    PeakSampler peak(fleet);
    fleet.scenario().AddPoint(0, 1.0);
    fleet.scenario().AddPoint(Minutes(5), 1.55);
    fleet.scenario().AddPoint(Minutes(60), 1.55);
    fleet.RunFor(Minutes(60));

    ArmResult out;
    out.over_limit_ms = checker.over_limit_ms();
    out.violations = checker.violation_count();
    out.flaps = FlapCount(fleet);
    out.episodes = fleet.event_log()->CappingEpisodes();
    out.outages = fleet.outage_count();
    out.peak_w = peak.peak();
    out.headroom_recovered_w = std::max(0.0, uncontrolled_peak - peak.peak());
    out.perf_loss = PerServicePerfLoss(fleet);
    if (!checker.violations().empty()) {
        std::printf("  [ablation/%s] first violation: %s\n",
                    policy::PolicyKindName(kind),
                    checker.violations().front().c_str());
    }
    return out;
}

ArmResult
RunChaos(policy::PolicyKind kind, std::size_t n_servers,
         Watts uncontrolled_peak)
{
    fleet::FleetSpec spec = ChaosSpec(n_servers);
    spec.deployment.leaf.capping_policy = kind;
    spec.deployment.upper.capping_policy = kind;
    fleet::Fleet fleet(spec);
    chaos::InvariantChecker checker(fleet);
    chaos::CampaignEngine engine(fleet.sim(), fleet.transport(),
                                 fleet.event_log());
    PeakSampler peak(fleet);
    fleet::ScriptSurgeHold(&fleet.scenario(), Seconds(30), Seconds(20),
                           Seconds(120), 1.6);
    engine.Partition(kFaultStart, kFaultEnd,
                     fleet.AgentEndpointsUnder("sb0/rpp0"));

    fleet.RunFor(kFaultEnd);
    checker.NoteFaultsCleared();
    fleet.RunFor(kChaosEnd - kFaultEnd);

    ArmResult out;
    out.over_limit_ms = checker.over_limit_ms();
    out.violations = checker.violation_count();
    out.flaps = FlapCount(fleet);
    out.episodes = fleet.event_log()->CappingEpisodes();
    out.outages = fleet.outage_count();
    out.peak_w = peak.peak();
    out.headroom_recovered_w = std::max(0.0, uncontrolled_peak - peak.peak());
    out.recovery_ms = checker.recovery_time();
    out.perf_loss = PerServicePerfLoss(fleet);
    if (!checker.violations().empty()) {
        std::printf("  [chaos/%s] first violation: %s\n",
                    policy::PolicyKindName(kind),
                    checker.violations().front().c_str());
    }
    return out;
}

void
PrintArmTable(const char* arm, const std::vector<PolicyResult>& results,
              const ArmResult PolicyResult::*member)
{
    std::printf("\n%s arm:\n", arm);
    std::printf("%-12s %9s %6s %5s %9s %10s %9s %8s\n", "policy", "over(ms)",
                "flaps", "viol", "episodes", "headroom", "peak(kW)",
                "recov(s)");
    for (const PolicyResult& r : results) {
        const ArmResult& a = r.*member;
        std::printf("%-12s %9lld %6llu %5llu %9zu %8.1fkW %9.1f %8.1f\n",
                    policy::PolicyKindName(r.kind),
                    static_cast<long long>(a.over_limit_ms),
                    static_cast<unsigned long long>(a.flaps),
                    static_cast<unsigned long long>(a.violations), a.episodes,
                    a.headroom_recovered_w / 1000.0, a.peak_w / 1000.0,
                    a.recovery_ms < 0 ? -1.0 : a.recovery_ms / 1000.0);
    }
    std::printf("%-12s", "perf loss:");
    std::printf("  (per service, %%)\n");
    for (const PolicyResult& r : results) {
        const ArmResult& a = r.*member;
        std::printf("%-12s", policy::PolicyKindName(r.kind));
        for (const auto& [service, loss] : a.perf_loss) {
            std::printf(" %s=%.2f%%", service.c_str(), 100.0 * loss);
        }
        std::printf("\n");
    }
}

void
WriteArmJson(std::ostream& out, const ArmResult& a, bool chaos_arm)
{
    out << "      \"over_limit_ms\": " << a.over_limit_ms << ",\n"
        << "      \"flaps\": " << a.flaps << ",\n"
        << "      \"violations\": " << a.violations << ",\n"
        << "      \"episodes\": " << a.episodes << ",\n"
        << "      \"outages\": " << a.outages << ",\n";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.1f", a.peak_w);
    out << "      \"peak_w\": " << buf << ",\n";
    std::snprintf(buf, sizeof buf, "%.1f", a.headroom_recovered_w);
    out << "      \"headroom_recovered_w\": " << buf << ",\n";
    if (chaos_arm) {
        out << "      \"recovery_ms\": " << a.recovery_ms << ",\n";
    }
    out << "      \"perf_loss\": {";
    bool first = true;
    for (const auto& [service, loss] : a.perf_loss) {
        if (!first) out << ", ";
        first = false;
        std::snprintf(buf, sizeof buf, "%.6f", loss);
        out << "\"" << service << "\": " << buf;
    }
    out << "}\n";
}

std::string
ToJson(const std::vector<PolicyResult>& results, std::size_t n_servers)
{
    std::ostringstream out;
    out << "{\n  \"bench\": \"policy_lab\",\n"
        << "  \"servers\": " << n_servers << ",\n"
        << "  \"policies\": {\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const PolicyResult& r = results[i];
        out << "    \"" << policy::PolicyKindName(r.kind) << "\": {\n"
            << "     \"ablation\": {\n";
        WriteArmJson(out, r.ablation, /*chaos_arm=*/false);
        out << "     },\n     \"chaos\": {\n";
        WriteArmJson(out, r.chaos, /*chaos_arm=*/true);
        out << "     }\n    }" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  }\n}\n";
    return out.str();
}

/**
 * Pull three_band's chaos-arm over_limit_ms out of a committed
 * BENCH_POLICY.json. Hand-rolled scan, same idiom as the
 * BENCH_SCALE baseline: anchor on the policy name, then on the
 * chaos object, then read the value.
 */
bool
BaselineOverLimit(const std::string& json, SimTime* out)
{
    const std::size_t at = json.find("\"three_band\"");
    if (at == std::string::npos) return false;
    const std::size_t chaos = json.find("\"chaos\"", at);
    if (chaos == std::string::npos) return false;
    const std::string key = "\"over_limit_ms\": ";
    const std::size_t kat = json.find(key, chaos);
    if (kat == std::string::npos) return false;
    *out = static_cast<SimTime>(
        std::strtoll(json.c_str() + kat + key.size(), nullptr, 10));
    return true;
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::Banner("Policy lab", "capping-brain ablation + chaos shoot-out");

    std::size_t n_servers = 1000;
    std::string out_path;
    std::string check_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--servers") {
            n_servers = static_cast<std::size_t>(
                std::strtoull(next(), nullptr, 10));
            if (n_servers < 3) {
                std::fprintf(stderr, "--servers needs at least 3\n");
                return 2;
            }
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--check") {
            check_path = next();
        } else {
            std::fprintf(stderr,
                         "usage: %s [--servers N] [--out FILE] "
                         "[--check BASELINE]\n",
                         argv[0]);
            return 2;
        }
    }

    std::printf("baselines: uncontrolled peaks (no dynamo)...\n");
    std::fflush(stdout);
    const Watts ablation_peak =
        UncontrolledPeak(AblationSpec(n_servers), /*chaos_arm=*/false);
    const Watts chaos_peak =
        UncontrolledPeak(ChaosSpec(n_servers), /*chaos_arm=*/true);
    std::printf("  ablation %.1f kW, chaos %.1f kW\n", ablation_peak / 1000.0,
                chaos_peak / 1000.0);

    std::vector<PolicyResult> results;
    for (policy::PolicyKind kind : policy::AllPolicyKinds()) {
        std::printf("judging %s...\n", policy::PolicyKindName(kind));
        std::fflush(stdout);
        PolicyResult r;
        r.kind = kind;
        r.ablation = RunAblation(kind, n_servers, ablation_peak);
        r.chaos = RunChaos(kind, n_servers, chaos_peak);
        results.push_back(std::move(r));
    }

    PrintArmTable("ablation (sustained overload, 1 h)", results,
                  &PolicyResult::ablation);
    PrintArmTable("chaos (surge + partition)", results, &PolicyResult::chaos);

    const std::string json = ToJson(results, n_servers);
    if (!out_path.empty()) {
        std::ofstream out(out_path);
        out << json;
        std::printf("\nwrote %s\n", out_path.c_str());
    }

    std::printf("\nHeadline:\n");
    std::uint64_t total_outages = 0;
    for (const PolicyResult& r : results) {
        total_outages += r.ablation.outages + r.chaos.outages;
    }
    bench::Compare("breaker trips across all brains and arms", 0.0,
                   static_cast<double>(total_outages), "trips");
    bench::Compare(
        "three-band chaos time over limit", 60.0,
        static_cast<double>(results.front().chaos.over_limit_ms) / 1000.0,
        "s");

    if (!check_path.empty()) {
        std::ifstream in(check_path);
        if (!in) {
            std::fprintf(stderr, "cannot read baseline %s\n",
                         check_path.c_str());
            return 1;
        }
        std::stringstream buffer;
        buffer << in.rdbuf();
        SimTime want = 0;
        if (!BaselineOverLimit(buffer.str(), &want)) {
            std::fprintf(stderr,
                         "baseline %s has no three_band chaos "
                         "over_limit_ms\n",
                         check_path.c_str());
            return 1;
        }
        // Deterministic sim: same toolchain reproduces the baseline
        // exactly. The ceiling absorbs cross-toolchain FP jitter while
        // still catching a real regression in the reactive planner.
        const SimTime measured = results.front().chaos.over_limit_ms;
        const SimTime ceiling = want + want / 2 + 9000;
        if (measured > ceiling) {
            std::fprintf(stderr,
                         "POLICY REGRESSION: three_band chaos arm spent "
                         "%lld ms over limit, baseline %lld ms "
                         "(ceiling %lld ms)\n",
                         static_cast<long long>(measured),
                         static_cast<long long>(want),
                         static_cast<long long>(ceiling));
            return 1;
        }
        std::printf("policy check ok: three_band over-limit %lld ms "
                    "(baseline %lld ms, ceiling %lld ms)\n",
                    static_cast<long long>(measured),
                    static_cast<long long>(want),
                    static_cast<long long>(ceiling));
    }
    return 0;
}
